// Command qsys-shell is an interactive keyword-search shell over one of the
// bundled workloads: pose searches as different users and watch the session
// reuse state across queries (§6).
//
// Usage:
//
//	qsys-shell [-workload bio|gus|pfam] [-k 10] [-user name]
//
// Then type keyword queries, one per line (use quotes for phrases):
//
//	> protein "plasma membrane" gene
//	> :user biologist2
//	> protein metabolism
//	> :stats
//	> :quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	qsys "repro"
)

func main() {
	wl := flag.String("workload", "bio", "workload: bio, gus, pfam")
	k := flag.Int("k", 10, "answers per search")
	user := flag.String("user", "user1", "initial user name")
	flag.Parse()

	var (
		w   *qsys.Workload
		err error
	)
	switch *wl {
	case "bio":
		w, err = qsys.Bio()
	case "gus":
		w, err = qsys.GUS(1)
	case "pfam":
		w, err = qsys.Pfam()
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wl)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sys := qsys.NewSystem(w, qsys.Config{K: *k, Seed: 1})
	cur := *user

	fmt.Printf("Q System shell over %q — %d relations indexed. Keywords per line; :help for commands.\n",
		w.Name, len(w.Schema.Nodes()))
	sc := bufio.NewScanner(os.Stdin)
	fmt.Printf("%s> ", cur)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == ":quit" || line == ":q":
			return
		case line == ":help":
			fmt.Println("  <keywords...>   search (quote multi-word phrases)")
			fmt.Println("  :user <name>    switch user (own scoring function)")
			fmt.Println("  :stats          session statistics")
			fmt.Println("  :terms          indexed keywords")
			fmt.Println("  :quit           exit")
		case line == ":stats":
			fmt.Println(" ", sys.Stats())
		case line == ":terms":
			fmt.Println(" ", strings.Join(w.Schema.Terms(), ", "))
		case strings.HasPrefix(line, ":user "):
			cur = strings.TrimSpace(strings.TrimPrefix(line, ":user "))
			fmt.Printf("  now searching as %s\n", cur)
		default:
			keywords := splitKeywords(line)
			res, err := sys.Search(cur, keywords, *k)
			if err != nil {
				fmt.Println("  error:", err)
				break
			}
			fmt.Printf("  %s: %d candidate networks, %d executed, %v\n",
				res.ID, res.CandidateNetworks, res.ExecutedNetworks, res.Latency)
			for _, a := range res.Answers {
				parts := make([]string, len(a.Tuples))
				for i, tp := range a.Tuples {
					parts[i] = tp.String()
				}
				fmt.Printf("  %2d. %.4f  %s\n", a.Rank, a.Score, strings.Join(parts, " ⋈ "))
			}
		}
		fmt.Printf("%s> ", cur)
	}
}

// splitKeywords tokenises a query line, honouring double-quoted phrases.
func splitKeywords(line string) []string {
	var out []string
	var cur strings.Builder
	inQuote := false
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, r := range line {
		switch {
		case r == '"':
			if inQuote {
				flush()
			}
			inQuote = !inQuote
		case r == ' ' && !inQuote:
			flush()
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return out
}
