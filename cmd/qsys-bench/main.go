// Command qsys-bench regenerates every table and figure of the paper's
// evaluation (§7) and prints them in the paper's format.
//
// Usage:
//
//	qsys-bench [-full] [-only table4|fig7|fig8|fig9|fig10|fig11|fig12]
//	qsys-bench -bench [-bench-out BENCH_PR5.json] [-bench-baseline prev.json]
//	           [-bench-rounds N] [-bench-experiments=false] [-bench-budget N]
//	           [-bench-routing N] [-bench-parallel N] [-bench-saturation N]
//	           [-batch-rows N] [-bench-batch-sweep]
//	           [-bench-gate-wall-speedup X] [-bench-gate-max-ns-ratio X]
//	qsys-bench [-cpuprofile cpu.out] [-memprofile mem.out] ...
//
// -cpuprofile / -memprofile write standard Go pprof profiles covering the
// whole run (experiments or -bench), so hot-path and parallel-executor work
// is inspectable with `go tool pprof`.
//
// The default configuration preserves every reported shape at laptop scale;
// -full mirrors the paper's methodology (4 synthetic instances × 3 runs).
//
// -bench switches to the perf-trajectory harness: it runs the fixed seeded
// serving workload (internal/benchrun) plus the §7 drivers and writes a
// machine-readable BENCH_*.json point (wall time, ns/row, allocs/row, tuple
// counters, latency percentiles, output digests). Passing a previous point
// via -bench-baseline embeds it and reports the delta; see DESIGN.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/benchrun"
	"repro/internal/experiments"
)

func main() {
	full := flag.Bool("full", false, "run the paper's full methodology (4 instances × 3 runs; slower)")
	only := flag.String("only", "", "run a single experiment: table4, fig7, fig8, fig9, fig10, fig11, fig12")
	bench := flag.Bool("bench", false, "run the perf-trajectory harness instead of the paper tables")
	benchOut := flag.String("bench-out", "", "where -bench writes its JSON point (default BENCH_<bench-pr>.json)")
	benchBaseline := flag.String("bench-baseline", "", "previous -bench JSON to embed as baseline and diff against")
	benchPR := flag.String("bench-pr", "PR5", "trajectory label recorded in the JSON")
	benchRounds := flag.Int("bench-rounds", 0, "override the serving workload's round count (0 = default)")
	benchExperiments := flag.Bool("bench-experiments", true, "include the §7 driver pass in -bench runs")
	benchBudget := flag.Int("bench-budget", 0, "row budget of the bounded-budget profile (0 = default; negative skips the profile)")
	benchRouting := flag.Int("bench-routing", 0, "shard count of the hash-vs-affinity routing profile (0 = default; negative skips the profile)")
	benchParallel := flag.Int("bench-parallel", 0, "worker count of the serial-vs-parallel executor profile (0 = default; negative skips the profile)")
	benchFleet := flag.Int("bench-fleet", 0, "shard-slot count of the single-vs-multi-process fleet parity profile (0 = default; negative skips the profile)")
	benchSaturation := flag.Int("bench-saturation", 0, "arrival count of the open-loop overload-control profile (0 = default; negative skips the profile)")
	batchRows := flag.Int("batch-rows", 0, "executor mini-batch row target for the serving profile (0 = engine default, 1 = exact per-row path); digests and counters are identical at any value")
	benchBatchSweep := flag.Bool("bench-batch-sweep", false, "add the batch-size sweep profile: the serving workload at batch targets 1/8/64/256, gating batch=1 byte-identical")
	benchGateWallSpeedup := flag.Float64("bench-gate-wall-speedup", 0, "CI gate: exit nonzero unless the parallel profile's multi-topic wall speedup reaches this factor (0 disables)")
	benchGateMaxNSRatio := flag.Float64("bench-gate-max-ns-ratio", 0, "CI gate: exit nonzero when serving ns/row exceeds baseline times this ratio (needs -bench-baseline; 1.0 = no regression allowed; 0 disables)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qsys-bench: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "qsys-bench: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "qsys-bench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "qsys-bench: -memprofile: %v\n", err)
			}
		}()
	}

	if *bench {
		// Negative budget/routing/... values flow through as explicit skips:
		// Defaults only replaces zero, and Run's positivity guards leave the
		// profile out. (Zeroing them here used to be undone when Run re-applied
		// Defaults, silently resurrecting the skipped profiles.)
		cfg := benchrun.Config{
			Rounds:             *benchRounds,
			Experiments:        *benchExperiments,
			BudgetRows:         *benchBudget,
			RoutingShards:      *benchRouting,
			ParallelWorkers:    *benchParallel,
			FleetShards:        *benchFleet,
			SaturationRequests: *benchSaturation,
			BatchRows:          *batchRows,
			BatchSweep:         *benchBatchSweep,
		}
		gates := benchGates{wallSpeedup: *benchGateWallSpeedup, maxNSRatio: *benchGateMaxNSRatio}
		if err := runBench(*benchOut, *benchBaseline, *benchPR, cfg, gates); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	cfg := experiments.Config{}.Defaults()
	if *full {
		cfg = experiments.FullConfig()
	}

	type experiment struct {
		name string
		run  func() (interface{ Format() string }, error)
	}
	all := []experiment{
		{"table4", func() (interface{ Format() string }, error) { return experiments.Table4(cfg) }},
		{"fig7", func() (interface{ Format() string }, error) { return experiments.Figure7(cfg) }},
		{"fig8", func() (interface{ Format() string }, error) { return experiments.Figure8(cfg) }},
		{"fig9", func() (interface{ Format() string }, error) { return experiments.Figure9(cfg) }},
		{"fig10", func() (interface{ Format() string }, error) { return experiments.Figure10(cfg) }},
		{"fig11", func() (interface{ Format() string }, error) { return experiments.Figure11(cfg) }},
		{"fig12", func() (interface{ Format() string }, error) { return experiments.Figure12(cfg) }},
	}

	ran := 0
	for _, e := range all {
		if *only != "" && e.name != *only {
			continue
		}
		start := time.Now()
		res, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Println(res.Format())
		fmt.Printf("(%s regenerated in %v)\n\n", e.name, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *only)
		os.Exit(2)
	}
}

// benchGates are the optional hard pass/fail thresholds applied after a
// -bench run, so CI can turn trajectory numbers into exit codes.
type benchGates struct {
	// wallSpeedup is the minimum multi-topic wall-clock speedup the parallel
	// profile's best worker count must reach over serial (0 disables). Only
	// meaningful on a multi-core runner.
	wallSpeedup float64
	// maxNSRatio is the maximum allowed current/baseline serving ns/row
	// ratio (0 disables; 1.0 forbids any regression).
	maxNSRatio float64
}

// runBench measures one trajectory point and writes it as JSON.
func runBench(outPath, baselinePath, pr string, cfg benchrun.Config, gates benchGates) error {
	if outPath == "" {
		// Derived from the label so a future PR's bare run cannot silently
		// clobber an earlier checked-in trajectory point.
		outPath = fmt.Sprintf("BENCH_%s.json", pr)
	}

	var baseline *benchrun.Point
	if baselinePath != "" {
		f, err := os.Open(baselinePath)
		if err != nil {
			return fmt.Errorf("open baseline: %w", err)
		}
		prev, err := benchrun.Decode(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("decode baseline: %w", err)
		}
		baseline = &prev.Current
	}

	start := time.Now()
	point, err := benchrun.Run(cfg)
	if err != nil {
		return err
	}
	report := benchrun.NewReport(pr, baseline, *point)

	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	if err := report.Encode(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Print(report.Summary())
	fmt.Printf("(point measured in %v, written to %s)\n", time.Since(start).Round(time.Millisecond), outPath)
	return applyGates(report, gates)
}

// applyGates checks the CI thresholds against a finished report. The point
// is already written when this runs, so a failing gate still leaves the
// numbers on disk for the workflow to upload.
func applyGates(report *benchrun.Report, gates benchGates) error {
	if gates.wallSpeedup > 0 {
		p := report.Current.Parallel
		if p == nil {
			return fmt.Errorf("gate: -bench-gate-wall-speedup needs the parallel profile (enable -bench-parallel)")
		}
		if !p.DigestsEqual || !p.CountersEqual {
			return fmt.Errorf("gate: parallel profile semantics diverged (digests_equal=%v counters_equal=%v)", p.DigestsEqual, p.CountersEqual)
		}
		// MultiTopicSpeedup is the serial/best ns-per-row ratio; with equal
		// counters the row counts match, so it is exactly the wall ratio.
		best := p.MultiTopic[len(p.MultiTopic)-1]
		if p.MultiTopicSpeedup < gates.wallSpeedup {
			return fmt.Errorf("gate: multi-topic wall speedup %.2fx at workers=%d < required %.2fx (cpus=%d gomaxprocs=%d)",
				p.MultiTopicSpeedup, best.Workers, gates.wallSpeedup, p.Machine.CPUs, p.Machine.GOMAXPROCS)
		}
		fmt.Printf("gate ok: multi-topic wall speedup %.2fx at workers=%d >= %.2fx\n", p.MultiTopicSpeedup, best.Workers, gates.wallSpeedup)
	}
	if gates.maxNSRatio > 0 {
		if report.Baseline == nil {
			return fmt.Errorf("gate: -bench-gate-max-ns-ratio needs -bench-baseline")
		}
		ratio := report.Current.Serving.NSPerRow / report.Baseline.Serving.NSPerRow
		if ratio > gates.maxNSRatio {
			return fmt.Errorf("gate: serving ns/row %.1f is %.3fx baseline %.1f > allowed %.3fx",
				report.Current.Serving.NSPerRow, ratio, report.Baseline.Serving.NSPerRow, gates.maxNSRatio)
		}
		fmt.Printf("gate ok: serving ns/row ratio %.3fx <= %.3fx\n", ratio, gates.maxNSRatio)
	}
	return nil
}
