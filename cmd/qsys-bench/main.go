// Command qsys-bench regenerates every table and figure of the paper's
// evaluation (§7) and prints them in the paper's format.
//
// Usage:
//
//	qsys-bench [-full] [-only table4|fig7|fig8|fig9|fig10|fig11|fig12]
//	qsys-bench -bench [-bench-out BENCH_PR5.json] [-bench-baseline prev.json]
//	           [-bench-rounds N] [-bench-experiments=false] [-bench-budget N]
//	           [-bench-routing N] [-bench-parallel N] [-bench-saturation N]
//	qsys-bench [-cpuprofile cpu.out] [-memprofile mem.out] ...
//
// -cpuprofile / -memprofile write standard Go pprof profiles covering the
// whole run (experiments or -bench), so hot-path and parallel-executor work
// is inspectable with `go tool pprof`.
//
// The default configuration preserves every reported shape at laptop scale;
// -full mirrors the paper's methodology (4 synthetic instances × 3 runs).
//
// -bench switches to the perf-trajectory harness: it runs the fixed seeded
// serving workload (internal/benchrun) plus the §7 drivers and writes a
// machine-readable BENCH_*.json point (wall time, ns/row, allocs/row, tuple
// counters, latency percentiles, output digests). Passing a previous point
// via -bench-baseline embeds it and reports the delta; see DESIGN.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/benchrun"
	"repro/internal/experiments"
)

func main() {
	full := flag.Bool("full", false, "run the paper's full methodology (4 instances × 3 runs; slower)")
	only := flag.String("only", "", "run a single experiment: table4, fig7, fig8, fig9, fig10, fig11, fig12")
	bench := flag.Bool("bench", false, "run the perf-trajectory harness instead of the paper tables")
	benchOut := flag.String("bench-out", "", "where -bench writes its JSON point (default BENCH_<bench-pr>.json)")
	benchBaseline := flag.String("bench-baseline", "", "previous -bench JSON to embed as baseline and diff against")
	benchPR := flag.String("bench-pr", "PR5", "trajectory label recorded in the JSON")
	benchRounds := flag.Int("bench-rounds", 0, "override the serving workload's round count (0 = default)")
	benchExperiments := flag.Bool("bench-experiments", true, "include the §7 driver pass in -bench runs")
	benchBudget := flag.Int("bench-budget", 0, "row budget of the bounded-budget profile (0 = default; negative skips the profile)")
	benchRouting := flag.Int("bench-routing", 0, "shard count of the hash-vs-affinity routing profile (0 = default; negative skips the profile)")
	benchParallel := flag.Int("bench-parallel", 0, "worker count of the serial-vs-parallel executor profile (0 = default; negative skips the profile)")
	benchFleet := flag.Int("bench-fleet", 0, "shard-slot count of the single-vs-multi-process fleet parity profile (0 = default; negative skips the profile)")
	benchSaturation := flag.Int("bench-saturation", 0, "arrival count of the open-loop overload-control profile (0 = default; negative skips the profile)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qsys-bench: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "qsys-bench: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "qsys-bench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "qsys-bench: -memprofile: %v\n", err)
			}
		}()
	}

	if *bench {
		if err := runBench(*benchOut, *benchBaseline, *benchPR, *benchRounds, *benchExperiments, *benchBudget, *benchRouting, *benchParallel, *benchFleet, *benchSaturation); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	cfg := experiments.Config{}.Defaults()
	if *full {
		cfg = experiments.FullConfig()
	}

	type experiment struct {
		name string
		run  func() (interface{ Format() string }, error)
	}
	all := []experiment{
		{"table4", func() (interface{ Format() string }, error) { return experiments.Table4(cfg) }},
		{"fig7", func() (interface{ Format() string }, error) { return experiments.Figure7(cfg) }},
		{"fig8", func() (interface{ Format() string }, error) { return experiments.Figure8(cfg) }},
		{"fig9", func() (interface{ Format() string }, error) { return experiments.Figure9(cfg) }},
		{"fig10", func() (interface{ Format() string }, error) { return experiments.Figure10(cfg) }},
		{"fig11", func() (interface{ Format() string }, error) { return experiments.Figure11(cfg) }},
		{"fig12", func() (interface{ Format() string }, error) { return experiments.Figure12(cfg) }},
	}

	ran := 0
	for _, e := range all {
		if *only != "" && e.name != *only {
			continue
		}
		start := time.Now()
		res, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Println(res.Format())
		fmt.Printf("(%s regenerated in %v)\n\n", e.name, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *only)
		os.Exit(2)
	}
}

// runBench measures one trajectory point and writes it as JSON.
func runBench(outPath, baselinePath, pr string, rounds int, withExperiments bool, budgetRows, routingShards, parallelWorkers, fleetShards, saturationRequests int) error {
	if outPath == "" {
		// Derived from the label so a future PR's bare run cannot silently
		// clobber an earlier checked-in trajectory point.
		outPath = fmt.Sprintf("BENCH_%s.json", pr)
	}
	// Negative budget/routing values flow through as explicit skips:
	// Defaults only replaces zero, and Run's positivity guards leave the
	// profile out. (Zeroing them here used to be undone when Run re-applied
	// Defaults, silently resurrecting the skipped profiles.)
	cfg := benchrun.Config{Rounds: rounds, Experiments: withExperiments, BudgetRows: budgetRows, RoutingShards: routingShards, ParallelWorkers: parallelWorkers, FleetShards: fleetShards, SaturationRequests: saturationRequests}

	var baseline *benchrun.Point
	if baselinePath != "" {
		f, err := os.Open(baselinePath)
		if err != nil {
			return fmt.Errorf("open baseline: %w", err)
		}
		prev, err := benchrun.Decode(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("decode baseline: %w", err)
		}
		baseline = &prev.Current
	}

	start := time.Now()
	point, err := benchrun.Run(cfg)
	if err != nil {
		return err
	}
	report := benchrun.NewReport(pr, baseline, *point)

	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	if err := report.Encode(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Print(report.Summary())
	fmt.Printf("(point measured in %v, written to %s)\n", time.Since(start).Round(time.Millisecond), outPath)
	return nil
}
