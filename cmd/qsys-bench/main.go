// Command qsys-bench regenerates every table and figure of the paper's
// evaluation (§7) and prints them in the paper's format.
//
// Usage:
//
//	qsys-bench [-full] [-only table4|fig7|fig8|fig9|fig10|fig11|fig12]
//
// The default configuration preserves every reported shape at laptop scale;
// -full mirrors the paper's methodology (4 synthetic instances × 3 runs).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	full := flag.Bool("full", false, "run the paper's full methodology (4 instances × 3 runs; slower)")
	only := flag.String("only", "", "run a single experiment: table4, fig7, fig8, fig9, fig10, fig11, fig12")
	flag.Parse()

	cfg := experiments.Config{}.Defaults()
	if *full {
		cfg = experiments.FullConfig()
	}

	type experiment struct {
		name string
		run  func() (interface{ Format() string }, error)
	}
	all := []experiment{
		{"table4", func() (interface{ Format() string }, error) { return experiments.Table4(cfg) }},
		{"fig7", func() (interface{ Format() string }, error) { return experiments.Figure7(cfg) }},
		{"fig8", func() (interface{ Format() string }, error) { return experiments.Figure8(cfg) }},
		{"fig9", func() (interface{ Format() string }, error) { return experiments.Figure9(cfg) }},
		{"fig10", func() (interface{ Format() string }, error) { return experiments.Figure10(cfg) }},
		{"fig11", func() (interface{ Format() string }, error) { return experiments.Figure11(cfg) }},
		{"fig12", func() (interface{ Format() string }, error) { return experiments.Figure12(cfg) }},
	}

	ran := 0
	for _, e := range all {
		if *only != "" && e.name != *only {
			continue
		}
		start := time.Now()
		res, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Println(res.Format())
		fmt.Printf("(%s regenerated in %v)\n\n", e.name, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *only)
		os.Exit(2)
	}
}
