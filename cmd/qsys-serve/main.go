// Command qsys-serve runs the Q System as a network service: an HTTP JSON
// API over the concurrent admission-and-execution subsystem of
// internal/service. Concurrently arriving searches are collected into
// admission batches, multi-query-optimized together (§3) and executed over
// shared plan graphs (§4–§6) — the paper's middleware as an online daemon.
//
// It serves in one of two modes:
//
//   - Single-process (default): every shard engine lives in this process.
//   - Front-end (-fleet url,url,...): this process is the stateless tier of
//     a distributed fleet — it owns candidate expansion, shard placement
//     (the affinity router over remote endpoints), health-checked routing
//     and live topic migration, while qsys-shard processes own the engines.
//     Result digests are byte-identical across the two modes at equal seed.
//
// Usage:
//
//	qsys-serve [-addr :8080] [-workload bio|gus|pfam] [-instance 1]
//	           [-window 25ms] [-batch 5] [-shards 1] [-workers 0]
//	           [-router affinity|hash] [-k 50] [-memory-budget 0]
//	           [-evict-policy lru|benefit] [-spill-dir DIR] [-realtime]
//	           [-fleet URL,URL,...] [-probe-interval 2s] [-rehome-factor 0]
//	           [-user-rate 0] [-total-rate 0] [-max-pending 0]
//	           [-deadline 0] [-adaptive-window] [-redispatch]
//
// The admission flags enable overload control: per-user token buckets with
// fair arbitration under a global rate (shed as retryable 503 + Retry-After),
// a bounded per-shard queue, deadline shedding that cancels merges past the
// budget, and an adaptive batch window driven by queue depth and recent
// latency. In front-end mode the rate limits run at this process's front desk
// while queue/deadline control runs inside each shard process.
//
// Endpoints:
//
//	POST /search       {"user":"alice","keywords":["protein","gene"],"k":10}
//	GET  /stats        service + per-shard execution counters
//	GET  /healthz      per-shard health/drain state (503 when no shard serves)
//	GET  /debug/pprof  standard Go profiling (CPU, heap, goroutines, ...)
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/admission"
	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/service"
	"repro/internal/state"
	"repro/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	wl := flag.String("workload", "bio", "workload: bio, gus, pfam")
	instance := flag.Int("instance", 1, "GUS instance (1-4)")
	window := flag.Duration("window", 25*time.Millisecond, "admission batch window (0 = admit immediately)")
	batch := flag.Int("batch", 5, "admission batch size trigger (negative = window only)")
	shards := flag.Int("shards", 1, "independent engine shards (single-process mode)")
	workers := flag.Int("workers", 0, "per-shard parallel-executor workers: independent plan-graph components run concurrently (1 = serial engine, 0 = GOMAXPROCS); result digests are identical at any worker count")
	routerMode := flag.String("router", "affinity", "shard placement: affinity (route by overlap with each shard's resident keywords, hash fallback) or hash (fixed keyword hash)")
	k := flag.Int("k", 50, "default answers per search")
	seed := flag.Uint64("seed", 1, "deterministic delay/scoring seed (must match the shard processes' in front-end mode)")
	budget := flag.Int("memory-budget", 0, "global retained-state budget in rows, arbitrated across shards by demand (0 = unbounded)")
	flag.IntVar(budget, "budget", 0, "alias for -memory-budget")
	policy := flag.String("evict-policy", "lru", "eviction policy under the budget: lru or benefit")
	spillDir := flag.String("spill-dir", "", "spill evicted plan segments to per-shard dirs under this path instead of discarding (removed on shutdown)")
	realtime := flag.Bool("realtime", false, "sleep simulated delays for real (live demo pacing)")
	fleetList := flag.String("fleet", "", "comma-separated qsys-shard endpoints; enables front-end mode (this process runs no engine)")
	probeEvery := flag.Duration("probe-interval", 2*time.Second, "front-end health-probe period (0 disables background probing)")
	rehome := flag.Float64("rehome-factor", 0, "front-end live-migration hysteresis: migrate a topic when another shard's affinity mass exceeds its home's by this factor (0 disables; >= 2 sensible)")
	userRate := flag.Float64("user-rate", 0, "admission: per-user token-bucket rate in searches/sec, shed as retryable 503 + Retry-After beyond it (0 = off)")
	totalRate := flag.Float64("total-rate", 0, "admission: global rate fair-arbitrated across active users (0 = off)")
	maxPending := flag.Int("max-pending", 0, "admission: bound each shard's queue, shedding beyond it as retryable 503 (0 = unbounded)")
	deadline := flag.Duration("deadline", 0, "admission: per-search latency budget; a search past it is canceled mid-merge and shed non-retryably (0 = off)")
	adaptiveWindow := flag.Bool("adaptive-window", false, "admission: replace the fixed batch window with a control loop over queue depth and recent latency (bounded by -window)")
	maxInFlight := flag.Int("max-inflight", 0, "admission: bound concurrently executing merges per shard so deadline shedding can trim the queue while admitted searches still finish in budget (0 = unbounded)")
	batchRows := flag.Int("batch-rows", 0, "executor mini-batch target: join outputs flow downstream in columnar chunks of at most this many rows (0 = engine default 64, 1 = exact per-row path); result digests and work counters are identical at any value")
	redispatch := flag.Bool("redispatch", false, "front-end mode: resubmit a search to another healthy shard after confirming its shard crashed with the query in flight (process gone, or journaled as a recovered abort by the restart)")
	flag.Parse()

	adm := admission.Config{
		UserRate:       *userRate,
		TotalRate:      *totalRate,
		MaxPending:     *maxPending,
		Deadline:       *deadline,
		MaxInFlight:    *maxInFlight,
		AdaptiveWindow: *adaptiveWindow,
		WindowMax:      *window,
	}

	if _, err := state.ParsePolicy(*policy); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if _, err := service.ParseRouter(*routerMode); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *spillDir != "" {
		if err := os.MkdirAll(*spillDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "qsys-serve: -spill-dir: %v\n", err)
			os.Exit(2)
		}
	}

	w, err := workload.ByName(*wl, *instance)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var (
		api      serveAPI
		teardown func()
	)
	if *fleetList != "" {
		var backends []fleet.Backend
		fm := &metrics.Fleet{}
		for _, ep := range strings.Split(*fleetList, ",") {
			ep = strings.TrimSpace(ep)
			if ep == "" {
				continue
			}
			backends = append(backends, fleet.NewClient(ep, fleet.ClientConfig{Metrics: fm}))
		}
		fr, err := fleet.NewFrontend(w, fleet.FrontendConfig{
			Service:       service.Config{K: *k, Seed: *seed, Router: *routerMode, Admission: adm},
			ProbeInterval: *probeEvery,
			RehomeFactor:  *rehome,
			Metrics:       fm,
			Redispatch:    *redispatch,
		}, backends)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		api = &frontendAPI{fr: fr}
		teardown = func() {
			if err := fr.Close(); err != nil {
				log.Printf("qsys-serve: front-end close: %v", err)
			}
		}
		log.Printf("qsys-serve: front-end for %d shard endpoints (router=%s rehome=%.1f)",
			len(backends), *routerMode, *rehome)
	} else {
		svc := service.New(w, service.Config{
			K:            *k,
			Seed:         *seed,
			BatchWindow:  *window,
			BatchSize:    *batch,
			Shards:       *shards,
			Workers:      *workers,
			BatchRows:    *batchRows,
			Router:       *routerMode,
			MemoryBudget: *budget,
			EvictPolicy:  *policy,
			SpillDir:     *spillDir,
			RealTime:     *realtime,
			Admission:    adm,
		})
		api = &localAPI{svc: svc, shards: *shards}
		teardown = func() {
			// Surface the per-shard state-teardown errors Close used to
			// swallow: a serving process must log disk problems, not leak
			// spill segments silently.
			if err := svc.Close(); err != nil {
				log.Printf("qsys-serve: close: %v", err)
			}
		}
		log.Printf("qsys-serve: workload %s (window=%v batch=%d shards=%d workers=%d router=%s)",
			w.Name, *window, *batch, *shards, *workers, *routerMode)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /search", func(rw http.ResponseWriter, req *http.Request) {
		var in struct {
			User     string   `json:"user"`
			Keywords []string `json:"keywords"`
			K        int      `json:"k"`
		}
		if err := json.NewDecoder(req.Body).Decode(&in); err != nil {
			httpError(rw, http.StatusBadRequest, err)
			return
		}
		if in.User == "" {
			in.User = "anonymous"
		}
		view, err := api.Search(req.Context(), in.User, in.Keywords, in.K)
		if err != nil {
			if shed := shedOf(err); shed != nil {
				// Overload sheds keep their provenance end to end: reason,
				// Retry-After and the retryable claim reach the public client
				// whether the shed happened at this process's front desk or
				// deep in a shard of the fleet.
				fleet.WriteShedError(rw, shed)
				return
			}
			httpError(rw, searchStatus(err), err)
			return
		}
		writeJSON(rw, view)
	})
	mux.HandleFunc("GET /stats", func(rw http.ResponseWriter, req *http.Request) {
		writeJSON(rw, api.Stats(req.Context()))
	})
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, req *http.Request) {
		hz := api.Healthz(req.Context())
		rw.Header().Set("Content-Type", "application/json")
		if !hz.OK {
			rw.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(rw)
		enc.SetIndent("", "  ")
		enc.Encode(hz) //nolint:errcheck
	})
	// Standard Go profiling endpoints, so parallel-executor wins and
	// contention are inspectable with `go tool pprof` against a live server.
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)

	server := &http.Server{Addr: *addr, Handler: mux}
	go func() {
		log.Printf("qsys-serve: listening on %s", *addr)
		if err := server.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("qsys-serve: draining")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := server.Shutdown(shutdownCtx); err != nil {
		log.Printf("qsys-serve: http shutdown: %v", err)
	}
	teardown()
	log.Print("qsys-serve: bye")
}

// serveAPI is what both modes expose to the HTTP handlers.
type serveAPI interface {
	Search(ctx context.Context, user string, keywords []string, k int) (*fleet.ResultView, error)
	Stats(ctx context.Context) service.Stats
	Healthz(ctx context.Context) fleet.HealthzView
}

// localAPI adapts a single-process service.
type localAPI struct {
	svc    *service.Service
	shards int
}

func (a *localAPI) Search(ctx context.Context, user string, keywords []string, k int) (*fleet.ResultView, error) {
	res, err := a.svc.Search(ctx, user, keywords, k)
	if err != nil {
		return nil, err
	}
	return fleet.ViewOf(res), nil
}

func (a *localAPI) Stats(ctx context.Context) service.Stats { return a.svc.Stats() }

// Healthz reports per-shard state for the single-process mode: every shard is
// in this process, healthy and non-draining as long as it serves, with its
// in-flight count drawn from the service counters.
func (a *localAPI) Healthz(ctx context.Context) fleet.HealthzView {
	st := a.svc.Stats()
	hz := fleet.HealthzView{OK: true}
	for i := 0; i < a.shards; i++ {
		hz.Shards = append(hz.Shards, fleet.ShardHealthView{
			Shard:   i,
			Healthy: true,
		})
	}
	hz.Shards[0].InFlight = int(st.Service.InFlight)
	return hz
}

// frontendAPI adapts the distributed front-end.
type frontendAPI struct {
	fr *fleet.Frontend
}

func (a *frontendAPI) Search(ctx context.Context, user string, keywords []string, k int) (*fleet.ResultView, error) {
	return a.fr.Search(ctx, user, keywords, k)
}

func (a *frontendAPI) Stats(ctx context.Context) service.Stats { return a.fr.Stats(ctx) }

func (a *frontendAPI) Healthz(ctx context.Context) fleet.HealthzView { return a.fr.Healthz(ctx) }

// shedOf extracts the admission shed behind a search failure, if any: either
// the local controller's *admission.ShedError, or a shard's shed relayed by
// the front-end as an *fleet.RPCError that kept the reason and hint.
func shedOf(err error) *admission.ShedError {
	var shed *admission.ShedError
	if errors.As(err, &shed) {
		return shed
	}
	var rpcErr *fleet.RPCError
	if errors.As(err, &rpcErr) && rpcErr.Shed() {
		return &admission.ShedError{Reason: rpcErr.Reason, RetryAfter: rpcErr.RetryAfter}
	}
	return nil
}

func searchStatus(err error) int {
	var rpcErr *fleet.RPCError
	switch {
	case errors.Is(err, service.ErrClosed), errors.Is(err, fleet.ErrCircuitOpen),
		errors.Is(err, fleet.ErrNoHealthyShard):
		return http.StatusServiceUnavailable
	case errors.As(err, &rpcErr):
		return rpcErr.Status
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusRequestTimeout
	default:
		return http.StatusUnprocessableEntity
	}
}

func httpError(rw http.ResponseWriter, code int, err error) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(code)
	json.NewEncoder(rw).Encode(map[string]string{"error": err.Error()}) //nolint:errcheck
}

func writeJSON(rw http.ResponseWriter, v any) {
	rw.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(rw)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("qsys-serve: encode: %v", err)
	}
}
