// Command qsys-serve runs the Q System as a network service: an HTTP JSON
// API over the concurrent admission-and-execution subsystem of
// internal/service. Concurrently arriving searches are collected into
// admission batches, multi-query-optimized together (§3) and executed over
// shared plan graphs (§4–§6) — the paper's middleware as an online daemon.
//
// Usage:
//
//	qsys-serve [-addr :8080] [-workload bio|gus|pfam] [-instance 1]
//	           [-window 25ms] [-batch 5] [-shards 1] [-workers 0]
//	           [-router affinity|hash] [-k 50] [-memory-budget 0]
//	           [-evict-policy lru|benefit] [-spill-dir DIR] [-realtime]
//
// Endpoints:
//
//	POST /search       {"user":"alice","keywords":["protein","gene"],"k":10}
//	GET  /stats        service + per-shard execution counters
//	GET  /healthz      liveness probe
//	GET  /debug/pprof  standard Go profiling (CPU, heap, goroutines, ...)
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
	"repro/internal/state"
	"repro/internal/tuple"
	"repro/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	wl := flag.String("workload", "bio", "workload: bio, gus, pfam")
	instance := flag.Int("instance", 1, "GUS instance (1-4)")
	window := flag.Duration("window", 25*time.Millisecond, "admission batch window (0 = admit immediately)")
	batch := flag.Int("batch", 5, "admission batch size trigger (negative = window only)")
	shards := flag.Int("shards", 1, "independent engine shards")
	workers := flag.Int("workers", 0, "per-shard parallel-executor workers: independent plan-graph components run concurrently (1 = serial engine, 0 = GOMAXPROCS); result digests are identical at any worker count")
	routerMode := flag.String("router", "affinity", "shard placement: affinity (route by overlap with each shard's resident keywords, hash fallback) or hash (fixed keyword hash)")
	k := flag.Int("k", 50, "default answers per search")
	budget := flag.Int("memory-budget", 0, "global retained-state budget in rows, arbitrated across shards by demand (0 = unbounded)")
	flag.IntVar(budget, "budget", 0, "alias for -memory-budget")
	policy := flag.String("evict-policy", "lru", "eviction policy under the budget: lru or benefit")
	spillDir := flag.String("spill-dir", "", "spill evicted plan segments to per-shard dirs under this path instead of discarding (removed on shutdown)")
	realtime := flag.Bool("realtime", false, "sleep simulated delays for real (live demo pacing)")
	flag.Parse()

	if _, err := state.ParsePolicy(*policy); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if _, err := service.ParseRouter(*routerMode); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *spillDir != "" {
		if err := os.MkdirAll(*spillDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "qsys-serve: -spill-dir: %v\n", err)
			os.Exit(2)
		}
	}

	w, err := workload.ByName(*wl, *instance)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	svc := service.New(w, service.Config{
		K:            *k,
		BatchWindow:  *window,
		BatchSize:    *batch,
		Shards:       *shards,
		Workers:      *workers,
		Router:       *routerMode,
		MemoryBudget: *budget,
		EvictPolicy:  *policy,
		SpillDir:     *spillDir,
		RealTime:     *realtime,
	})

	mux := http.NewServeMux()
	mux.HandleFunc("POST /search", func(rw http.ResponseWriter, req *http.Request) {
		var in struct {
			User     string   `json:"user"`
			Keywords []string `json:"keywords"`
			K        int      `json:"k"`
		}
		if err := json.NewDecoder(req.Body).Decode(&in); err != nil {
			httpError(rw, http.StatusBadRequest, err)
			return
		}
		if in.User == "" {
			in.User = "anonymous"
		}
		res, err := svc.Search(req.Context(), in.User, in.Keywords, in.K)
		if err != nil {
			switch {
			case errors.Is(err, service.ErrClosed):
				httpError(rw, http.StatusServiceUnavailable, err)
			case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
				httpError(rw, http.StatusRequestTimeout, err)
			default:
				httpError(rw, http.StatusUnprocessableEntity, err)
			}
			return
		}
		writeJSON(rw, searchView(res))
	})
	mux.HandleFunc("GET /stats", func(rw http.ResponseWriter, req *http.Request) {
		writeJSON(rw, svc.Stats())
	})
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, req *http.Request) {
		rw.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(rw, "ok")
	})
	// Standard Go profiling endpoints, so parallel-executor wins and
	// contention are inspectable with `go tool pprof` against a live server.
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)

	server := &http.Server{Addr: *addr, Handler: mux}
	go func() {
		log.Printf("qsys-serve: workload %s on %s (window=%v batch=%d shards=%d workers=%d router=%s)",
			w.Name, *addr, *window, *batch, *shards, *workers, *routerMode)
		if err := server.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("qsys-serve: draining")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := server.Shutdown(shutdownCtx); err != nil {
		log.Printf("qsys-serve: http shutdown: %v", err)
	}
	svc.Close()
	log.Print("qsys-serve: bye")
}

// answerView flattens an answer for JSON without exposing internal tuple
// structure.
type answerView struct {
	Rank   int      `json:"rank"`
	Score  float64  `json:"score"`
	Query  string   `json:"query"`
	Tuples []string `json:"tuples"`
}

type resultView struct {
	ID                string        `json:"id"`
	Keywords          []string      `json:"keywords"`
	Shard             int           `json:"shard"`
	BatchSize         int           `json:"batchSize"`
	CandidateNetworks int           `json:"candidateNetworks"`
	ExecutedNetworks  int           `json:"executedNetworks"`
	EngineLatency     time.Duration `json:"engineLatencyNS"`
	WallLatency       time.Duration `json:"wallLatencyNS"`
	Answers           []answerView  `json:"answers"`
}

func searchView(res *service.Result) resultView {
	out := resultView{
		ID:                res.ID,
		Keywords:          res.Keywords,
		Shard:             res.Shard,
		BatchSize:         res.BatchSize,
		CandidateNetworks: res.CandidateNetworks,
		ExecutedNetworks:  res.ExecutedNetworks,
		EngineLatency:     res.EngineLatency,
		WallLatency:       res.WallLatency,
	}
	for _, a := range res.Answers {
		v := answerView{Rank: a.Rank, Score: a.Score, Query: a.Query}
		for _, t := range a.Tuples {
			v.Tuples = append(v.Tuples, tupleString(t))
		}
		out.Answers = append(out.Answers, v)
	}
	return out
}

func tupleString(t *tuple.Tuple) string { return t.String() }

func httpError(rw http.ResponseWriter, code int, err error) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(code)
	json.NewEncoder(rw).Encode(map[string]string{"error": err.Error()}) //nolint:errcheck
}

func writeJSON(rw http.ResponseWriter, v any) {
	rw.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(rw)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("qsys-serve: encode: %v", err)
	}
}
