// Command qsys-loadgen drives an in-process internal/service instance with a
// closed-loop multi-user workload and reports throughput, latency percentiles
// and the engine's work counters per admission-window setting — the serving
// analogue of Figure 9's SINGLE-OPT vs BATCH-OPT comparison. The default
// state budget models production serving, where retained plan state is
// bounded and evicted under pressure (§6.3): there, a window of 0 admits
// every query alone and each one re-pays for evicted state, while a window
// > 0 co-admits concurrent arrivals so they drive the same live source
// streams — fewer total source-stream tuples at equal offered load. With
// -budget 0 (unbounded state) the persistent shared plan graph absorbs the
// difference: total source work becomes invariant to batching and only
// latency and optimization amortization separate the settings.
//
// Usage:
//
//	qsys-loadgen [-workload bio|gus|pfam] [-instance 1]
//	             [-users 8] [-requests 12] [-k 20] [-memory-budget 500]
//	             [-evict-policy lru|benefit] [-spill-dir DIR]
//	             [-windows 0,25ms] [-batch 5] [-shards 1] [-workers 0]
//	             [-seed 1] [-router affinity|hash] [-overlap]
//
// -workers sizes each shard's intra-shard parallel executor (1 = serial
// engine, 0 = GOMAXPROCS): independent plan-graph components — unrelated
// topics resident in one shard — execute their scheduling rounds on
// concurrent workers. Each run reports the executor's round-parallelism
// distribution and pool utilization per shard.
//
// With -spill-dir set, evicted plan segments spill to disk and revivals read
// them back as local I/O; the report splits retained-state hits into memory
// vs disk and counts revivals served from spill vs re-paid at the sources.
//
// With -shards > 1 the -router flag selects shard placement — affinity
// (default: route each query to the shard whose decaying resident keyword
// set it overlaps most, §6.1 at serving scale) or hash (fixed keyword hash)
// — and each run reports its routing decisions (affinity hits, hash routes,
// estimated sharing-miss rate, per-shard resident keyword-set sizes).
// -overlap augments the pool with overlapping topic variants of each suite
// query, the workload on which placement visibly moves source-side work.
package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"hash"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/admission"
	"repro/internal/dist"
	"repro/internal/fleet"
	"repro/internal/service"
	"repro/internal/state"
	"repro/internal/workload"
)

// batchRows carries -batch-rows into every in-process service.Config built
// by this command (closed-loop and open-loop paths share it).
var batchRows int

func main() {
	wl := flag.String("workload", "gus", "workload: bio, gus, pfam")
	instance := flag.Int("instance", 1, "GUS instance (1-4)")
	users := flag.Int("users", 8, "concurrent closed-loop users")
	requests := flag.Int("requests", 12, "searches per user")
	k := flag.Int("k", 20, "answers per search")
	windows := flag.String("windows", "0,25ms", "comma-separated admission windows to compare")
	batch := flag.Int("batch", 5, "admission batch size trigger")
	shards := flag.Int("shards", 1, "engine shards")
	workers := flag.Int("workers", 0, "per-shard parallel-executor workers (1 = serial engine, 0 = GOMAXPROCS)")
	routerMode := flag.String("router", "affinity", "shard placement: affinity (route by overlap with each shard's resident keywords, hash fallback) or hash (fixed keyword hash)")
	overlap := flag.Bool("overlap", false, "augment the keyword pool with overlapping topic variants (drop-last and case-folded-duplicate of each suite query) — the workload shard placement is measured on")
	seed := flag.Uint64("seed", 1, "workload draw seed")
	budget := flag.Int("memory-budget", 500, "global retained-state budget in rows, arbitrated across shards by demand (0 = unbounded)")
	flag.IntVar(budget, "budget", 500, "alias for -memory-budget")
	policy := flag.String("evict-policy", "lru", "eviction policy under the budget: lru or benefit")
	spillDir := flag.String("spill-dir", "", "spill evicted plan segments to per-shard dirs under this path instead of discarding (removed on close)")
	target := flag.String("target", "", "drive a running qsys-serve (single-process or front-end) at this base URL over HTTP instead of an in-process service; transient rejections (503, connection refused) are retried with jittered backoff and reported")
	digest := flag.Bool("digest", false, "with -target: print the sha256 result digest of the run (deterministic with -users 1; the multi-process parity gate compares it across serving modes)")
	rate := flag.Float64("rate", 0, "open-loop mode: offered arrival rate in searches/sec (Poisson arrivals from a seeded schedule, independent of completions); 0 = closed loop")
	burst := flag.Int("burst", 1, "open-loop burstiness: arrivals come in clusters of this size at each Poisson epoch (offered rate unchanged)")
	arrivals := flag.Int("arrivals", 0, "open-loop arrival count (0 = users*requests)")
	deadline := flag.Duration("deadline", 0, "per-request latency budget: in-process it configures admission deadline shedding; with -target it bounds each request context")
	maxPending := flag.Int("max-pending", 0, "in-process admission: bound each shard's queue, shedding beyond it (0 = unbounded)")
	userRate := flag.Float64("user-rate", 0, "in-process admission: per-user token-bucket rate in searches/sec (0 = off)")
	totalRate := flag.Float64("total-rate", 0, "in-process admission: global admission rate, fair-arbitrated across active users (0 = off)")
	adaptiveWindow := flag.Bool("adaptive-window", false, "in-process admission: replace the fixed batch window with the queue/latency control loop")
	maxInFlight := flag.Int("max-inflight", 0, "in-process admission: bound concurrently executing merges per shard; excess stays queued (0 = unbounded)")
	userPerRequest := flag.Bool("user-per-request", false, "with -users 1: name a fresh user per request, pinning each request's scoring coefficients independently of arrival interleaving — makes adigest comparable between closed-loop and open-loop runs even when Poisson arrivals overlap")
	batchRowsOpt := flag.Int("batch-rows", 0, "in-process executor mini-batch target: join outputs flow downstream in chunks of at most this many rows (0 = engine default 64, 1 = exact per-row path); results are identical at any value")
	flag.Parse()
	batchRows = *batchRowsOpt

	adm := admission.Config{
		UserRate:       *userRate,
		TotalRate:      *totalRate,
		MaxPending:     *maxPending,
		Deadline:       *deadline,
		MaxInFlight:    *maxInFlight,
		AdaptiveWindow: *adaptiveWindow,
	}

	if *rate > 0 {
		n := *arrivals
		if n <= 0 {
			n = *users * *requests
		}
		runOpenLoop(openLoopConfig{
			target: *target, wl: *wl, instance: *instance,
			rate: *rate, burst: *burst, arrivals: n, users: *users, k: *k,
			seed: *seed, overlap: *overlap, digest: *digest,
			userPerRequest: *userPerRequest,
			deadline:       *deadline, adm: adm,
			window: firstWindow(*windows), batch: *batch, shards: *shards,
			workers: *workers, router: *routerMode, budget: *budget, policy: *policy,
		})
		return
	}

	if *target != "" {
		runTarget(*target, *wl, *instance, *users, *requests, *k, *seed, *overlap, *digest, *userPerRequest)
		return
	}

	if _, err := state.ParsePolicy(*policy); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if _, err := service.ParseRouter(*routerMode); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *spillDir != "" {
		if err := os.MkdirAll(*spillDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "qsys-loadgen: -spill-dir: %v\n", err)
			os.Exit(2)
		}
	}

	var spans []time.Duration
	for _, s := range strings.Split(*windows, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		if s == "0" {
			spans = append(spans, 0)
			continue
		}
		d, err := time.ParseDuration(s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad window %q: %v\n", s, err)
			os.Exit(2)
		}
		spans = append(spans, d)
	}
	if len(spans) == 0 {
		fmt.Fprintln(os.Stderr, "no windows to run")
		os.Exit(2)
	}

	mode := "discard"
	if *spillDir != "" {
		mode = "spill"
	}
	fmt.Printf("closed-loop load: %d users x %d requests, k=%d, batch=%d, shards=%d (router=%s), budget=%d rows (%s, policy=%s), workload=%s\n\n",
		*users, *requests, *k, *batch, *shards, *routerMode, *budget, mode, *policy, *wl)
	fmt.Printf("%-8s %8s %6s %9s %9s %9s %11s %11s %9s %9s %6s %7s %7s %7s %6s\n",
		"window", "qps", "err", "p50", "p95", "p99", "streamTup", "totalTup", "replayed", "spilledR", "evict", "revSp", "revSrc", "mem/dsk", "occ")

	multiShard := *shards > 1
	for _, span := range spans {
		rep, err := run(*wl, *instance, span, *users, *requests, *k, *batch, *shards, *workers, *budget, *seed, *policy, *spillDir, *routerMode, *overlap)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		evictions := 0
		for _, sh := range rep.stats.Shards {
			evictions += sh.Evictions
		}
		split := rep.stats.Shared
		fmt.Printf("%-8v %8.1f %6d %9v %9v %9v %11d %11d %9d %9d %6d %7d %7d %3.0f/%-3.0f %6.2f\n",
			span, rep.qps, rep.errors,
			rep.p(0.50), rep.p(0.95), rep.p(0.99),
			rep.stats.Work.StreamTuples, rep.stats.Work.TuplesConsumed(),
			rep.stats.Work.ReplayTuples, rep.stats.Work.SpillRowsRead,
			evictions, rep.stats.Work.RevivalsFromSpill, rep.stats.Work.RevivalsFromSource,
			100*split.MemoryHit, 100*split.DiskHit,
			rep.stats.Service.BatchOccupancy.Mean)
		if multiShard {
			rt := rep.stats.Router
			kws := make([]int, 0, len(rt.Shards))
			for _, rs := range rt.Shards {
				kws = append(kws, rs.Keywords)
			}
			fmt.Printf("  router[%v]: mode=%s decisions=%d affinity=%d hash=%d missRate=%.2f kwSets=%v\n",
				span, rt.Mode, rt.Decisions, rt.AffinityHits, rt.HashRoutes, rt.MissRate, kws)
		}
		for _, sh := range rep.stats.Shards {
			ps := sh.Parallel
			if ps.Workers == 0 || ps.Rounds == 0 {
				continue
			}
			fmt.Printf("  parallel[%v] shard %d: workers=%d rounds=%d parallel=%d comps(mean=%.1f max=%d) util=%.2f\n",
				span, sh.Shard, ps.Workers, ps.Rounds, ps.ParallelRounds,
				ps.Components.Mean, ps.Components.Max, ps.Utilization)
		}
		if eb := rep.stats.Service.ExecBatch; eb.Count > 0 {
			fmt.Printf("  batch[%v]: flushes=%d rows/flush(mean=%.1f max=%d) full=%d partial=%d\n",
				span, eb.Count, eb.Mean, eb.Max,
				rep.stats.Service.ExecBatchFull, eb.Count-rep.stats.Service.ExecBatchFull)
		}
	}
	fmt.Println("\nstreamTup/totalTup: rows fetched from sources; replayed: rows served from retained memory")
	fmt.Println("state; spilledR: rows read back from the disk tier; revSp/revSrc: evicted segments revived")
	fmt.Println("from spill vs re-derived by source replay; mem/dsk: shared-work split (% of all rows).")
	fmt.Println("Under a bounded state budget, a window > 0 co-admits concurrent arrivals so they share")
	fmt.Println("live source streams before eviction can strike — fewer source tuples at equal load; a")
	fmt.Println("spill dir turns the remaining evictions into local disk reads instead of source re-reads.")
	if multiShard {
		fmt.Println("router lines: affinity = decisions placed by overlap with a shard's resident keywords;")
		fmt.Println("hash = fixed-hash placements (all of them with -router=hash); missRate = fraction of")
		fmt.Println("decisions routed away from the shard whose resident set best covered the query.")
	}
}

type report struct {
	latencies []time.Duration // sorted
	mean      time.Duration
	qps       float64
	errors    int
	stats     service.Stats
}

func (r *report) p(q float64) time.Duration {
	if len(r.latencies) == 0 {
		return 0
	}
	i := int(q*float64(len(r.latencies))) - 1
	if i < 0 {
		i = 0
	}
	return r.latencies[i].Round(time.Microsecond)
}

func run(wl string, instance int, window time.Duration, users, requests, k, batch, shards, workers, budget int, seed uint64, policy, spillDir, routerMode string, overlap bool) (*report, error) {
	// A fresh workload per run keeps the comparison honest: no run inherits
	// another's materialised source views.
	w, err := workload.ByName(wl, instance)
	if err != nil {
		return nil, err
	}
	pool := keywordPool(w)
	if len(pool) == 0 {
		return nil, fmt.Errorf("workload %s has no keyword suite", wl)
	}
	if overlap {
		pool = overlapPool(pool)
	}
	if spillDir != "" {
		// Separate windows must not inherit each other's segments.
		spillDir = filepath.Join(spillDir, fmt.Sprintf("w%d", window/time.Microsecond))
	}
	svc := service.New(w, service.Config{
		K:            k,
		Seed:         seed,
		BatchWindow:  window,
		BatchSize:    batch,
		Shards:       shards,
		Workers:      workers,
		BatchRows:    batchRows,
		Router:       routerMode,
		MemoryBudget: budget,
		EvictPolicy:  policy,
		SpillDir:     spillDir,
	})
	defer svc.Close()

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		lats     []time.Duration
		sum      time.Duration
		errCount int
	)
	start := time.Now()
	for u := 0; u < users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			rng := dist.New(seed + uint64(u)*977 + 3)
			zipf := dist.NewZipf(rng, len(pool), 0.8)
			for i := 0; i < requests; i++ {
				kw := pool[zipf.Next()]
				t0 := time.Now()
				_, err := svc.Search(context.Background(), fmt.Sprintf("user%d", u), kw, k)
				d := time.Since(t0)
				mu.Lock()
				if err != nil {
					errCount++
				} else {
					lats = append(lats, d)
					sum += d
				}
				mu.Unlock()
			}
		}(u)
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	rep := &report{latencies: lats, errors: errCount, stats: svc.Stats()}
	if len(lats) > 0 {
		rep.mean = (sum / time.Duration(len(lats))).Round(time.Microsecond)
	}
	if elapsed > 0 {
		rep.qps = float64(len(lats)) / elapsed.Seconds()
	}
	return rep, nil
}

// targetRetries bounds resubmission of transiently rejected searches in
// -target mode.
const targetRetries = 5

// runTarget drives a running qsys-serve over HTTP with the same seeded
// closed-loop workload the in-process mode uses. Searches rejected before
// admission — 503 from a draining/closed shard, connection refused from a
// restarting one — are retried with jittered exponential backoff; any other
// failure counts as an error, since the query may already have executed.
func runTarget(target, wl string, instance, users, requests, k int, seed uint64, overlap, digest, userPerRequest bool) {
	w, err := workload.ByName(wl, instance)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	pool := keywordPool(w)
	if overlap {
		pool = overlapPool(pool)
	}
	target = strings.TrimRight(target, "/")
	client := &http.Client{Timeout: 60 * time.Second}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		lats     []time.Duration
		errCount int
		retries  int
	)
	h := sha256.New()
	ah := sha256.New()
	start := time.Now()
	for u := 0; u < users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			rng := dist.New(seed + uint64(u)*977 + 3)
			backoffRNG := dist.New(seed + uint64(u)*977 + 4)
			zipf := dist.NewZipf(rng, len(pool), 0.8)
			for i := 0; i < requests; i++ {
				kw := pool[zipf.Next()]
				name := fmt.Sprintf("user%d", u)
				if userPerRequest && users == 1 {
					name = fmt.Sprintf("u%d", i)
				}
				t0 := time.Now()
				view, tries, err := searchHTTP(client, target, name, kw, k, backoffRNG)
				d := time.Since(t0)
				mu.Lock()
				retries += tries
				if err != nil {
					errCount++
				} else {
					lats = append(lats, d)
					if digest {
						fleet.DigestView(h, view)
						if users == 1 {
							foldAnswers(ah, view)
						}
					}
				}
				mu.Unlock()
			}
		}(u)
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	rep := &report{latencies: lats, errors: errCount}
	qps := 0.0
	if elapsed > 0 {
		qps = float64(len(lats)) / elapsed.Seconds()
	}
	fmt.Printf("target %s: %d users x %d requests, k=%d, workload=%s\n",
		target, users, requests, k, wl)
	fmt.Printf("qps=%.1f errors=%d retries=%d p50=%v p95=%v p99=%v\n",
		qps, errCount, retries, rep.p(0.50), rep.p(0.95), rep.p(0.99))
	if digest {
		fmt.Printf("digest=%s\n", hex.EncodeToString(h.Sum(nil)))
		if users == 1 {
			fmt.Printf("adigest=%s\n", hex.EncodeToString(ah.Sum(nil)))
		}
	}
	if errCount > 0 {
		os.Exit(1)
	}
}

// searchHTTP posts one search, retrying transient pre-admission rejections.
func searchHTTP(client *http.Client, target, user string, keywords []string, k int, rng *dist.RNG) (*fleet.ResultView, int, error) {
	body, _ := json.Marshal(map[string]any{"user": user, "keywords": keywords, "k": k})
	tries := 0
	for {
		view, retryableErr, err := postSearch(client, target, body)
		if err == nil {
			return view, tries, nil
		}
		if !retryableErr || tries >= targetRetries {
			return nil, tries, err
		}
		tries++
		base := 25 * time.Millisecond << uint(tries-1)
		time.Sleep(base + time.Duration(rng.Intn(int(base)+1)))
	}
}

// postSearch performs one attempt. The bool reports whether the failure is
// safely retryable: the connection was never established, or the server
// answered 503 (serve-side pre-admission rejection).
func postSearch(client *http.Client, target string, body []byte) (*fleet.ResultView, bool, error) {
	resp, err := client.Post(target+"/search", "application/json", bytes.NewReader(body))
	if err != nil {
		var op *net.OpError
		return nil, errors.As(err, &op) && op.Op == "dial", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		err := fmt.Errorf("search: status %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
		return nil, resp.StatusCode == http.StatusServiceUnavailable, err
	}
	var view fleet.ResultView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return nil, false, err
	}
	return &view, false, nil
}

// overlapPool interleaves each base search with its overlapping topic
// variants (workload.OverlapVariants — the same rules the benchrun routing
// profile measures, so CI's loadgen comparison and BENCH_PR4's routing
// block exercise one workload).
func overlapPool(pool [][]string) [][]string {
	out := make([][]string, 0, 3*len(pool))
	for _, base := range pool {
		out = append(out, base)
		out = append(out, workload.OverlapVariants(base)...)
	}
	return out
}

// firstWindow parses the first entry of the -windows list; open-loop runs
// drive a single admission-window setting.
func firstWindow(spec string) time.Duration {
	for _, s := range strings.Split(spec, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		if s == "0" {
			return 0
		}
		d, err := time.ParseDuration(s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad window %q: %v\n", s, err)
			os.Exit(2)
		}
		return d
	}
	return 0
}

// foldAnswers folds one served result into an answers-only run digest: the
// per-result fleet.DigestAnswers hash, folded in arrival order. Because the
// UQ prefix is stripped and sheds renumber nothing the client sees, a
// below-saturation open-loop run folds to the same adigest as the closed-loop
// run that issued the same keyword stream — the byte-identity half of the
// degradation contract, checked by CI across serving modes.
func foldAnswers(run hash.Hash, view *fleet.ResultView) {
	sub := sha256.New()
	fleet.DigestAnswers(sub, view)
	io.WriteString(run, hex.EncodeToString(sub.Sum(nil)))
}

// openLoopConfig carries one open-loop run's knobs.
type openLoopConfig struct {
	target   string
	wl       string
	instance int
	rate     float64 // offered arrivals/sec
	burst    int     // arrivals per Poisson epoch
	arrivals int
	users    int
	k        int
	seed     uint64
	overlap  bool
	digest   bool
	// userPerRequest names a fresh user per arrival (users == 1 only), so
	// each arrival's scoring coefficients are a function of its index alone
	// and the adigest is independent of how concurrent arrivals interleave.
	userPerRequest bool
	deadline       time.Duration
	adm            admission.Config
	// in-process service shape
	window  time.Duration
	batch   int
	shards  int
	workers int
	router  string
	budget  int
	policy  string
}

// arrivalOutcome records one arrival's fate. Exactly one of ok/shed/err holds.
type arrivalOutcome struct {
	ok     bool
	shed   bool
	reason string // shed reason, or "" / error class
	lat    time.Duration
	view   *fleet.ResultView
}

// runOpenLoop offers load on a fixed seeded schedule, independent of
// completions: Poisson epochs (optionally carrying -burst arrivals each) fire
// whether or not earlier requests finished, which is what makes saturation
// visible — a closed loop self-throttles at capacity, an open loop keeps
// offering and forces the server to shed. Each arrival is a single attempt:
// retrying inside the generator would convert offered load into closed-loop
// feedback and hide the shed rate being measured.
func runOpenLoop(cfg openLoopConfig) {
	w, err := workload.ByName(cfg.wl, cfg.instance)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	pool := keywordPool(w)
	if len(pool) == 0 {
		fmt.Fprintf(os.Stderr, "workload %s has no keyword suite\n", cfg.wl)
		os.Exit(1)
	}
	if cfg.overlap {
		pool = overlapPool(pool)
	}
	if cfg.users < 1 {
		cfg.users = 1
	}
	burst := cfg.burst
	if burst < 1 {
		burst = 1
	}
	n := cfg.arrivals

	// The whole schedule is precomputed from seeded streams before the first
	// request fires, so identical flags replay identical offered load: epoch
	// gaps are exponential with mean burst/rate (burst arrivals per epoch
	// keeps the offered rate at -rate while clustering it), and the keyword
	// stream is drawn in arrival order — with one user it is byte-identical
	// to the closed-loop user0 stream, which is what lets adigest compare
	// across loop disciplines.
	sched := dist.New(cfg.seed + 11)
	times := make([]time.Duration, n)
	var clock float64 // seconds
	for i := 0; i < n; i++ {
		if i%burst == 0 {
			clock += -math.Log(1-sched.Float64()) / (cfg.rate / float64(burst))
		}
		times[i] = time.Duration(clock * float64(time.Second))
	}
	kwRNG := dist.New(cfg.seed + 3)
	zipf := dist.NewZipf(kwRNG, len(pool), 0.8)
	kws := make([][]string, n)
	for i := range kws {
		kws[i] = pool[zipf.Next()]
	}

	var attempt func(ctx context.Context, user string, kw []string) (*fleet.ResultView, *admission.ShedError, error)
	var svc *service.Service
	if cfg.target != "" {
		attempt = openTargetAttempt(cfg)
	} else {
		if _, err := state.ParsePolicy(cfg.policy); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if _, err := service.ParseRouter(cfg.router); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		svc = service.New(w, service.Config{
			K:            cfg.k,
			Seed:         cfg.seed,
			BatchWindow:  cfg.window,
			BatchSize:    cfg.batch,
			Shards:       cfg.shards,
			Workers:      cfg.workers,
			BatchRows:    batchRows,
			Router:       cfg.router,
			MemoryBudget: cfg.budget,
			EvictPolicy:  cfg.policy,
			Admission:    cfg.adm,
		})
		defer svc.Close()
		attempt = func(ctx context.Context, user string, kw []string) (*fleet.ResultView, *admission.ShedError, error) {
			res, err := svc.Search(ctx, user, kw, cfg.k)
			if err != nil {
				var shed *admission.ShedError
				if errors.As(err, &shed) {
					return nil, shed, nil
				}
				return nil, nil, err
			}
			return fleet.ViewOf(res), nil, nil
		}
	}

	outs := make([]arrivalOutcome, n)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			time.Sleep(time.Until(start.Add(times[i])))
			ctx := context.Background()
			if cfg.target != "" && cfg.deadline > 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, cfg.deadline)
				defer cancel()
			}
			t0 := time.Now()
			name := fmt.Sprintf("user%d", i%cfg.users)
			if cfg.userPerRequest && cfg.users == 1 {
				name = fmt.Sprintf("u%d", i)
			}
			view, shed, err := attempt(ctx, name, kws[i])
			d := time.Since(t0)
			switch {
			case shed != nil:
				outs[i] = arrivalOutcome{shed: true, reason: shed.Reason, lat: d}
			case errors.Is(err, context.DeadlineExceeded):
				// The client-side budget expired: same fate as a server-side
				// deadline shed, observed from the other end of the wire.
				outs[i] = arrivalOutcome{shed: true, reason: admission.ReasonDeadline, lat: d}
			case err != nil:
				outs[i] = arrivalOutcome{reason: err.Error(), lat: d}
			default:
				outs[i] = arrivalOutcome{ok: true, lat: d, view: view}
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	// Aggregate in arrival order so the adigest fold is deterministic.
	var (
		served, shedCount, errCount int
		lats                        []time.Duration
		reasons                     = map[string]int{}
		firstErrs                   []string
	)
	ah := sha256.New()
	for i := range outs {
		o := &outs[i]
		switch {
		case o.ok:
			served++
			lats = append(lats, o.lat)
			if cfg.digest && cfg.users == 1 {
				foldAnswers(ah, o.view)
			}
		case o.shed:
			shedCount++
			reasons[o.reason]++
		default:
			errCount++
			if len(firstErrs) < 3 {
				firstErrs = append(firstErrs, fmt.Sprintf("arrival %d: %s", i, o.reason))
			}
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	rep := &report{latencies: lats}

	mode := "in-process"
	if cfg.target != "" {
		mode = cfg.target
	}
	fmt.Printf("open-loop load: rate=%.1f/s burst=%d arrivals=%d users=%d k=%d workload=%s target=%s\n",
		cfg.rate, burst, n, cfg.users, cfg.k, cfg.wl, mode)
	span := times[n-1]
	achieved := 0.0
	if span > 0 {
		achieved = float64(n-1) / span.Seconds()
	}
	goodput := 0.0
	if wall > 0 {
		goodput = float64(served) / wall.Seconds()
	}
	fmt.Printf("offered=%.1f/s achieved=%.1f/s wall=%v\n", cfg.rate, achieved, wall.Round(time.Millisecond))
	shedPct := 0.0
	if n > 0 {
		shedPct = 100 * float64(shedCount) / float64(n)
	}
	fmt.Printf("served=%d goodput=%.1f/s shed=%d (%.1f%%) errors=%d\n", served, goodput, shedCount, shedPct, errCount)
	if len(reasons) > 0 {
		keys := make([]string, 0, len(reasons))
		for r := range reasons {
			keys = append(keys, r)
		}
		sort.Strings(keys)
		parts := make([]string, 0, len(keys))
		for _, r := range keys {
			parts = append(parts, fmt.Sprintf("%s=%d", r, reasons[r]))
		}
		fmt.Printf("shed reasons: %s\n", strings.Join(parts, " "))
	}
	for _, e := range firstErrs {
		fmt.Printf("error: %s\n", e)
	}
	fmt.Printf("latency served: p50=%v p95=%v p99=%v max=%v\n",
		rep.p(0.50), rep.p(0.95), rep.p(0.99), rep.p(1))
	if svc != nil {
		ss := svc.Stats().Service
		fmt.Printf("admission: shed=%d user-rate=%d queue-full=%d deadline-canceled=%d\n",
			ss.Shed, ss.ShedUserRate, ss.ShedQueueFull, ss.DeadlineCanceled)
	}
	if cfg.digest && cfg.users == 1 {
		fmt.Printf("adigest=%s\n", hex.EncodeToString(ah.Sum(nil)))
	}
	if served == 0 {
		fmt.Fprintln(os.Stderr, "open-loop run served nothing")
		os.Exit(1)
	}
}

// openTargetAttempt builds the single-attempt HTTP searcher for -target mode:
// one POST, no retries (the generator must not convert offered load into
// closed-loop feedback), 503 decoded into its admission shed reason.
func openTargetAttempt(cfg openLoopConfig) func(ctx context.Context, user string, kw []string) (*fleet.ResultView, *admission.ShedError, error) {
	target := strings.TrimRight(cfg.target, "/")
	client := &http.Client{Timeout: 60 * time.Second}
	return func(ctx context.Context, user string, kw []string) (*fleet.ResultView, *admission.ShedError, error) {
		body, _ := json.Marshal(map[string]any{"user": user, "keywords": kw, "k": cfg.k})
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, target+"/search", bytes.NewReader(body))
		if err != nil {
			return nil, nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			return nil, nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			shed := &admission.ShedError{Reason: "unavailable"}
			var we struct {
				Reason       string `json:"reason"`
				RetryAfterMS int64  `json:"retry_after_ms"`
			}
			if json.Unmarshal(data, &we) == nil && we.Reason != "" {
				shed.Reason = we.Reason
				shed.RetryAfter = time.Duration(we.RetryAfterMS) * time.Millisecond
			}
			return nil, shed, nil
		}
		if resp.StatusCode != http.StatusOK {
			data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			return nil, nil, fmt.Errorf("search: status %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
		}
		var view fleet.ResultView
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			return nil, nil, err
		}
		return &view, nil, nil
	}
}

// keywordPool collects the searches the load draws from: the workload's
// bundled query suite, or the Figure 1 scenario for the bio schema.
func keywordPool(w *workload.Workload) [][]string {
	var pool [][]string
	for _, s := range w.Submissions {
		if len(s.UQ.Keywords) > 0 {
			pool = append(pool, s.UQ.Keywords)
		}
	}
	if len(pool) == 0 {
		pool = [][]string{
			{"protein", "plasma membrane", "gene"},
			{"protein", "metabolism"},
			{"membrane", "gene"},
			{"metabolism", "gene"},
			{"membrane", "protein"},
		}
	}
	return pool
}
