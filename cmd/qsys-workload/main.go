// Command qsys-workload inspects the bundled workloads: schema graph sizes,
// keyword indexes, and the generated query suites with their candidate
// networks — useful for understanding what the experiments actually execute.
//
// Usage:
//
//	qsys-workload [-workload bio|gus|pfam] [-instance 1] [-queries]
package main

import (
	"flag"
	"fmt"
	"os"

	qsys "repro"
)

func main() {
	wl := flag.String("workload", "gus", "workload: bio, gus, pfam")
	instance := flag.Int("instance", 1, "GUS instance (1-4)")
	queries := flag.Bool("queries", false, "dump every conjunctive query")
	flag.Parse()

	var (
		w   *qsys.Workload
		err error
	)
	switch *wl {
	case "bio":
		w, err = qsys.Bio()
	case "gus":
		w, err = qsys.GUS(*instance)
	case "pfam":
		w, err = qsys.Pfam()
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wl)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("workload %s: %d relations, %d join edges, %d indexed keywords\n",
		w.Name, len(w.Schema.Nodes()), w.Schema.NumEdges(), len(w.Schema.Terms()))
	fmt.Printf("query suite: %d user queries\n\n", len(w.Submissions))
	for _, s := range w.Submissions {
		fmt.Printf("%-5s t=%-12v k=%-3d keywords=%v  (%d candidate networks)\n",
			s.UQ.ID, s.At, s.UQ.K, s.UQ.Keywords, len(s.UQ.CQs))
		if *queries {
			for _, q := range s.UQ.CQs {
				fmt.Printf("    %s\n", q)
			}
		}
	}
}
