// Command qsys-shard runs one shard process of the distributed serving tier:
// a single engine (plan graph, ATC, query state manager) behind the fleet RPC
// surface, fronted by a stateless qsys-serve front-end.
//
// The shard admits only fully expanded user queries — candidate expansion,
// per-user scoring coefficients and UQ ids are front-end state. -shard-id
// sets service.Config.ShardIDOffset, which seeds the engine identically to
// shard <id> of a single-process service with the same -seed: result digests
// are byte-identical whether the fleet lives in one process or N.
//
// Usage:
//
//	qsys-shard [-addr :8091] [-shard-id 0] [-workload bio|gus|pfam]
//	           [-instance 1] [-seed 1] [-window 25ms] [-batch 5]
//	           [-workers 0] [-k 50] [-memory-budget 0]
//	           [-evict-policy lru|benefit] [-spill-dir DIR] [-realtime]
//	           [-max-pending 0] [-deadline 0] [-adaptive-window]
//	           [-drain-deadline 0] [-recover-dir DIR] [-checkpoint-interval 5s]
//
// Endpoints:
//
//	POST /rpc/search          expanded user query → ranked answers
//	GET  /rpc/stats           engine + serving counters
//	GET  /rpc/health          health/drain/recovery state
//	GET  /rpc/recovered       queries journaled in flight at the last crash
//	POST /rpc/migrate/export  serialize + discard a topic's idle state
//	POST /rpc/migrate/import  stage a migrated topic behind the consistency gate
//	POST /rpc/drain           stop admissions, finish in-flight, hand state off
//
// -recover-dir enables the crash-recovery tier: retained plan state is
// checkpointed there every -checkpoint-interval (atomic generation-numbered
// manifests), admissions are journaled, and a restart over the same directory
// warm-starts — the newest checkpoint is imported through the consistency
// gate while /rpc/health reports "recovering", then the shard flips to
// "ready". Queries the journal proves were in flight at the crash surface on
// /rpc/recovered for the front-end's re-dispatch.
//
// SIGTERM/SIGINT drains gracefully: new searches are rejected as retryable,
// in-flight searches finish, and the engine shuts down with its state-teardown
// error logged rather than swallowed. SIGKILL is the crash the recovery tier
// is for.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/admission"
	"repro/internal/fleet"
	"repro/internal/service"
	"repro/internal/state"
	"repro/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8091", "listen address")
	shardID := flag.Int("shard-id", 0, "fleet slot this process serves: seeds the engine as shard <id> of an equivalent single-process service")
	wl := flag.String("workload", "bio", "workload: bio, gus, pfam")
	instance := flag.Int("instance", 1, "GUS instance (1-4)")
	seed := flag.Uint64("seed", 1, "deterministic delay/scoring seed (must match the front-end's)")
	window := flag.Duration("window", 25*time.Millisecond, "admission batch window (0 = admit immediately)")
	batch := flag.Int("batch", 5, "admission batch size trigger (negative = window only)")
	workers := flag.Int("workers", 0, "parallel-executor workers (1 = serial engine, 0 = GOMAXPROCS)")
	k := flag.Int("k", 50, "default answers per search")
	budget := flag.Int("memory-budget", 0, "retained-state budget in rows (0 = unbounded)")
	flag.IntVar(budget, "budget", 0, "alias for -memory-budget")
	policy := flag.String("evict-policy", "lru", "eviction policy under the budget: lru or benefit")
	spillDir := flag.String("spill-dir", "", "spill evicted plan segments under this path instead of discarding (removed on shutdown)")
	realtime := flag.Bool("realtime", false, "sleep simulated delays for real")
	maxPending := flag.Int("max-pending", 0, "admission: bound this shard's queue, shedding beyond it as retryable 503 + Retry-After (0 = unbounded)")
	deadline := flag.Duration("deadline", 0, "admission: per-search latency budget; a search past it is canceled mid-merge and shed non-retryably (0 = off)")
	adaptiveWindow := flag.Bool("adaptive-window", false, "admission: replace the fixed batch window with a control loop over queue depth and recent latency (bounded by -window)")
	maxInFlight := flag.Int("max-inflight", 0, "admission: bound concurrently executing merges so deadline shedding can trim the queue while admitted searches still finish in budget (0 = unbounded)")
	drainDeadline := flag.Duration("drain-deadline", 0, "bound the drain's wait for in-flight searches; past it they are aborted so the state handoff completes (0 = 60s default)")
	recoverDir := flag.String("recover-dir", "", "durable checkpoint + admission-journal directory; enables crash recovery and warm restart over the same path (survives shutdown)")
	cpInterval := flag.Duration("checkpoint-interval", 5*time.Second, "period of the checkpoint loop under -recover-dir (0 = checkpoint only on demand)")
	flag.Parse()

	if _, err := state.ParsePolicy(*policy); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *shardID < 0 {
		fmt.Fprintln(os.Stderr, "qsys-shard: -shard-id must be >= 0")
		os.Exit(2)
	}
	if *spillDir != "" {
		if err := os.MkdirAll(*spillDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "qsys-shard: -spill-dir: %v\n", err)
			os.Exit(2)
		}
	}

	w, err := workload.ByName(*wl, *instance)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	svc := service.New(w, service.Config{
		K:             *k,
		Seed:          *seed,
		BatchWindow:   *window,
		BatchSize:     *batch,
		Shards:        1,
		ShardIDOffset: *shardID,
		Workers:       *workers,
		MemoryBudget:  *budget,
		EvictPolicy:   *policy,
		SpillDir:      *spillDir,
		RealTime:      *realtime,
		CheckpointDir: *recoverDir,
		CheckpointInterval: func() time.Duration {
			if *recoverDir == "" {
				return 0
			}
			return *cpInterval
		}(),
		Admission: admission.Config{
			MaxPending:     *maxPending,
			Deadline:       *deadline,
			MaxInFlight:    *maxInFlight,
			AdaptiveWindow: *adaptiveWindow,
			WindowMax:      *window,
		},
	})
	shard := fleet.NewShardServer(svc)
	shard.DrainDeadline = *drainDeadline
	if *recoverDir != "" {
		// Listen in the recovering state so probes observe the transition:
		// health says "recovering" (unrouted, searches refused as retryable)
		// until the checkpoint import lands, then flips to "ready".
		shard.SetRecovering(true)
	}

	server := &http.Server{Addr: *addr, Handler: shard.Handler()}
	go func() {
		log.Printf("qsys-shard: slot %d, workload %s on %s (window=%v batch=%d workers=%d)",
			*shardID, w.Name, *addr, *window, *batch, *workers)
		if err := server.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()

	if *recoverDir != "" {
		rep, err := shard.Recover()
		if err != nil {
			log.Printf("qsys-shard: recover: %v", err)
		} else if rep.Generation > 0 {
			log.Printf("qsys-shard: slot %d warm-started from checkpoint generation %d: %d segments installed, %d dropped (%d rows); %d journaled aborts",
				*shardID, rep.Generation, rep.Installed, rep.Dropped, rep.Rows, len(svc.RecoveredAborts()))
		} else {
			log.Printf("qsys-shard: slot %d cold start, checkpointing to %s every %v", *shardID, *recoverDir, *cpInterval)
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("qsys-shard: slot %d draining", *shardID)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	// Drain first — new searches 503 as retryable while in-flight ones
	// finish — then stop the listener and tear the engine down.
	if _, err := shard.Drain(shutdownCtx); err != nil {
		log.Printf("qsys-shard: drain: %v", err)
	}
	if err := server.Shutdown(shutdownCtx); err != nil {
		log.Printf("qsys-shard: http shutdown: %v", err)
	}
	if err := svc.Close(); err != nil {
		log.Printf("qsys-shard: state teardown: %v", err)
	}
	log.Printf("qsys-shard: slot %d bye", *shardID)
}
