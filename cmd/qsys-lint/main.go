// qsys-lint is the invariant-lint multichecker: it runs the custom analyzer
// suite in internal/analysis over the tree and exits non-zero on any
// finding. CI runs it before the bench jobs so a broken determinism,
// accounting, or retry-safety contract fails fast instead of surfacing as a
// flaking digest gate an hour later.
//
// Usage:
//
//	go run ./cmd/qsys-lint ./...
//	go run ./cmd/qsys-lint -list
//	go run ./cmd/qsys-lint ./internal/operator ./internal/atc
//
// Intentional exceptions are annotated in source:
//
//	//qsys:allow <analyzer>: <non-empty reason>
//
// on the offending line or the line directly above. An empty reason is
// itself a finding.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "print the analyzer suite and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: qsys-lint [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "qsys-lint:", err)
		os.Exit(2)
	}
	pkgs, err := analysis.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qsys-lint:", err)
		os.Exit(2)
	}

	findings := 0
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg, analyzers, analysis.RunConfig{Strict: true})
		if err != nil {
			fmt.Fprintln(os.Stderr, "qsys-lint:", err)
			os.Exit(2)
		}
		for _, d := range diags {
			findings++
			fmt.Printf("%s: %s: %s\n", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "qsys-lint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}
