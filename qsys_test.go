package qsys

import (
	"testing"
)

// TestSessionScenario replays the paper's §1–§2 running example through the
// public API: two users pose overlapping keyword queries, then the first
// refines theirs (KQ3), which should reuse the session's retained state.
func TestSessionScenario(t *testing.T) {
	w, err := Bio()
	if err != nil {
		t.Fatalf("Bio: %v", err)
	}
	sys := NewSystem(w, Config{K: 20, Seed: 7})

	kq1, err := sys.Search("biologist-1", []string{"protein", "plasma membrane", "gene"}, 20)
	if err != nil {
		t.Fatalf("KQ1: %v", err)
	}
	if len(kq1.Answers) == 0 {
		t.Fatal("KQ1 returned no answers")
	}
	for i := 1; i < len(kq1.Answers); i++ {
		if kq1.Answers[i].Score > kq1.Answers[i-1].Score {
			t.Fatalf("KQ1 answers out of score order at %d", i)
		}
	}
	work1 := sys.Stats().Work

	kq2, err := sys.Search("biologist-2", []string{"protein", "metabolism"}, 20)
	if err != nil {
		t.Fatalf("KQ2: %v", err)
	}
	if len(kq2.Answers) == 0 {
		t.Fatal("KQ2 returned no answers")
	}

	before := sys.Stats().Work
	kq3, err := sys.Search("biologist-1", []string{"membrane", "gene"}, 20)
	if err != nil {
		t.Fatalf("KQ3: %v", err)
	}
	if len(kq3.Answers) == 0 {
		t.Fatal("KQ3 returned no answers")
	}
	after := sys.Stats().Work
	kq3Tuples := after.TuplesConsumed() - before.TuplesConsumed()

	// A cold session answering only KQ3 should consume far more source
	// tuples than the warm session did (§6 state reuse).
	coldW, err := Bio()
	if err != nil {
		t.Fatal(err)
	}
	cold := NewSystem(coldW, Config{K: 20, Seed: 7})
	if _, err := cold.Search("biologist-1", []string{"membrane", "gene"}, 20); err != nil {
		t.Fatalf("cold KQ3: %v", err)
	}
	coldTuples := cold.Stats().Work.TuplesConsumed()
	t.Logf("KQ1 consumed %d tuples; KQ3 warm=%d cold=%d; latencies %v / %v / %v",
		work1.TuplesConsumed(), kq3Tuples, coldTuples, kq1.Latency, kq2.Latency, kq3.Latency)
	// Reuse must save source work. (How much depends on how closely KQ3's
	// chosen input assignment matches what KQ1/KQ2 left behind; the tightly
	// batched runner in internal/exec shows >90% savings, while separately
	// admitted session searches land lower.)
	if kq3Tuples >= coldTuples {
		t.Errorf("KQ3 reuse saved nothing: warm=%d cold=%d", kq3Tuples, coldTuples)
	}
	if kq1.ExecutedNetworks == 0 || kq1.ExecutedNetworks > kq1.CandidateNetworks {
		t.Errorf("executed networks out of range: %d of %d", kq1.ExecutedNetworks, kq1.CandidateNetworks)
	}
}

// TestBuilderWorkload exercises the public Builder: a minimal two-table
// database with a keyword index, searched end to end.
func TestBuilderWorkload(t *testing.T) {
	papers := NewSchema("papers",
		Column{Name: "pid", Type: KindInt, Key: true},
		Column{Name: "topic", Type: KindString},
		Column{Name: "score", Type: KindFloat, Score: true},
	)
	authors := NewSchema("authors",
		Column{Name: "pid", Type: KindInt},
		Column{Name: "name", Type: KindString},
		Column{Name: "sim", Type: KindFloat, Score: true},
	)
	var paperRows, authorRows [][]Value
	topics := []string{"databases", "systems", "theory"}
	names := []string{"ada", "grace", "edsger"}
	for i := 0; i < 60; i++ {
		paperRows = append(paperRows, []Value{Int(int64(i)), Str(topics[i%3]), Float(1 / float64(1+i))})
		authorRows = append(authorRows, []Value{Int(int64(i % 40)), Str(names[i%3]), Float(1 / float64(1+i/2))})
	}
	w, err := NewBuilder().
		AddRelation("dblp", papers, paperRows, 0).
		AddRelation("dblp", authors, authorRows, 0).
		AddJoin("authors", 0, "papers", 0, 0.5).
		IndexKeyword("databases", Match{Rel: "papers", Col: 1, Score: 0.9}).
		IndexKeyword("grace", Match{Rel: "authors", Col: 1, Score: 0.9}).
		Build("dblp-demo")
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	sys := NewSystem(w, Config{K: 5, Seed: 3})
	res, err := sys.Search("u", []string{"databases", "grace"}, 5)
	if err != nil {
		t.Fatalf("search: %v", err)
	}
	if len(res.Answers) == 0 {
		t.Fatal("no answers")
	}
	for _, a := range res.Answers {
		foundTopic, foundName := false, false
		for _, tp := range a.Tuples {
			if v, ok := tp.ValByName("topic"); ok && v.AsString() == "databases" {
				foundTopic = true
			}
			if v, ok := tp.ValByName("name"); ok && v.AsString() == "grace" {
				foundName = true
			}
		}
		if !foundTopic || !foundName {
			t.Errorf("answer %d does not satisfy both keywords: %v", a.Rank, a.Tuples)
		}
	}
	if res.Latency <= 0 {
		t.Errorf("non-positive latency %v", res.Latency)
	}
}
