package qsys

import (
	"repro/internal/exec"
	"repro/internal/experiments"
)

// Experiment re-exports: one driver per table/figure of §7. Each returns a
// result whose Format method prints the same rows/series the paper reports.
type (
	// ExperimentConfig sizes an experiment (instances, seeds, data scale).
	ExperimentConfig = experiments.Config
	// Strategy is a sharing configuration (ATC-CQ / ATC-UQ / ATC-FULL /
	// ATC-CL, §7.1).
	Strategy = exec.Strategy
)

// The four sharing configurations of §7.1.
const (
	ATCCQ   = exec.StrategyCQ
	ATCUQ   = exec.StrategyUQ
	ATCFULL = exec.StrategyFull
	ATCCL   = exec.StrategyCL
)

// FullExperimentConfig mirrors the paper's methodology (4 instances × 3
// runs); the zero ExperimentConfig is a faster shape-preserving default.
func FullExperimentConfig() ExperimentConfig { return experiments.FullConfig() }

// Table4 measures the average number of conjunctive queries executed to
// return each user query's top-50 answers.
func Table4(cfg ExperimentConfig) (*experiments.Table4Result, error) { return experiments.Table4(cfg) }

// Figure7 measures per-user-query running times under all four sharing
// configurations.
func Figure7(cfg ExperimentConfig) (*experiments.Figure7Result, error) {
	return experiments.Figure7(cfg)
}

// Figure8 measures the stream-read / random-access / join time breakdown.
func Figure8(cfg ExperimentConfig) (*experiments.Figure8Result, error) {
	return experiments.Figure8(cfg)
}

// Figure9 compares individually optimized (batch size 1) against
// batch-optimized (batch size 5) execution.
func Figure9(cfg ExperimentConfig) (*experiments.Figure9Result, error) {
	return experiments.Figure9(cfg)
}

// Figure10 measures total input tuples consumed answering the first 5 versus
// all 15 user queries.
func Figure10(cfg ExperimentConfig) (*experiments.Figure10Result, error) {
	return experiments.Figure10(cfg)
}

// Figure11 measures multiple-query-optimization time against the number of
// candidate inputs.
func Figure11(cfg ExperimentConfig) (*experiments.Figure11Result, error) {
	return experiments.Figure11(cfg)
}

// Figure12 measures per-user-query running times over the Pfam/InterPro
// proxy.
func Figure12(cfg ExperimentConfig) (*experiments.Figure12Result, error) {
	return experiments.Figure12(cfg)
}

// RunWorkload executes a bundled workload's query suite under a sharing
// strategy, returning the full execution report (latencies, work counters,
// per-graph stats). This is the batch-experiment counterpart of System.
func RunWorkload(w *Workload, strat Strategy, seed uint64) (*exec.Report, error) {
	return exec.Run(w.Fleet, w.Catalog, w.Submissions, exec.Options{Strategy: strat, Seed: seed})
}
