// Package qsys is a from-scratch Go implementation of the shared, pipelined
// top-k keyword-search query processor of
//
//	Marie Jacob and Zachary G. Ives,
//	"Sharing Work in Keyword Search over Databases", SIGMOD 2011.
//
// The Q System is a middleware layer over remote (simulated) SQL databases:
// keyword queries are expanded into ranked candidate networks (conjunctive
// queries), batches of queries are multi-query-optimized into shared input
// assignments, factored into a query plan graph of split / m-join /
// rank-merge operators, and executed fully pipelined under the ATC
// coordinator. Query plan graphs and their in-memory state persist from one
// execution to the next, so later queries graft onto existing plans and reuse
// buffered results (§6 of the paper).
//
// Two API levels are exposed:
//
//   - System: an interactive session over a database fleet. Pose keyword
//     searches over time; every search benefits from the state earlier
//     searches left behind. See examples/quickstart.
//   - the experiment drivers (Table4, Figure7 … Figure12): regenerate every
//     table and figure of the paper's evaluation. See cmd/qsys-bench and
//     bench_test.go.
//
// All substrates — the simulated remote DBMSs, schema graph, candidate
// network generation, scoring models, optimizer, operators, state manager and
// workload generators — are implemented in this repository with the standard
// library only; see DESIGN.md for the system inventory.
package qsys

import (
	"fmt"
	"time"

	"repro/internal/atc"
	"repro/internal/batcher"
	"repro/internal/candidates"
	"repro/internal/catalog"
	"repro/internal/costmodel"
	"repro/internal/cq"
	"repro/internal/dist"
	"repro/internal/metrics"
	"repro/internal/mqo"
	"repro/internal/operator"
	"repro/internal/plangraph"
	"repro/internal/qsm"
	"repro/internal/remotedb"
	"repro/internal/schemagraph"
	"repro/internal/simclock"
	"repro/internal/tuple"
)

// Config configures a System session.
type Config struct {
	// K is the default number of answers per search (the paper uses 50).
	K int
	// Seed drives the deterministic delay model.
	Seed uint64
	// RealTime makes delays actually sleep (live demos); the default is the
	// deterministic virtual clock used by all experiments.
	RealTime bool
	// MemoryBudget bounds retained middleware state in rows (0 = unbounded);
	// exceeding it triggers LRU eviction (§6.3).
	MemoryBudget int
	// MaxCQs caps candidate networks per search (paper workloads use ≤20).
	MaxCQs int
	// Model selects the scoring model family (§2.1); default QSystem.
	Model ModelFamily
	// ChargeOptimizer adds measured optimization time to the session clock.
	ChargeOptimizer bool
}

// ModelFamily selects a scoring model (§2.1).
type ModelFamily int

const (
	// ModelQSystem is the Q System product model with learned edge costs.
	ModelQSystem ModelFamily = iota
	// ModelDISCOVER is the DISCOVER sum model.
	ModelDISCOVER
	// ModelBANKS is the BANKS/BLINKS-style weighted-sum model.
	ModelBANKS
)

// System is an interactive Q System session over a database fleet: a single
// shared plan graph whose operators and state persist across searches, like
// the paper's continuously running middleware.
type System struct {
	fleet  *remotedb.Fleet
	cat    *catalog.Catalog
	schema *schemagraph.Graph
	genCfg candidates.Config

	env     *operator.Env
	graph   *plangraph.Graph
	atc     *atc.ATC
	manager *qsm.Manager

	users  map[string]*dist.RNG
	nextUQ int
	cfg    Config
}

// NewSystem opens a session over a workload's fleet, catalog and schema
// graph. Most callers obtain those from one of the bundled workloads (Bio,
// GUS, Pfam) or by building databases with NewDatabase.
func NewSystem(w *Workload, cfg Config) *System {
	if cfg.K == 0 {
		cfg.K = 50
	}
	if cfg.MaxCQs == 0 {
		cfg.MaxCQs = 20
	}
	rng := dist.New(cfg.Seed + 1)
	var clock simclock.Clock
	if cfg.RealTime {
		clock = simclock.NewReal()
	} else {
		clock = simclock.NewVirtual(0)
	}
	env := &operator.Env{Clock: clock, Delays: simclock.DefaultDelays(rng), Metrics: &metrics.Counters{}}
	graph := plangraph.New("")
	controller := atc.New(graph, env, w.Fleet)
	cat := w.Catalog.Fork()
	manager := qsm.New(graph, controller, cat, costmodel.New(cat, costmodel.DefaultParams()), qsm.ShareAll)
	manager.MemoryBudget = cfg.MemoryBudget
	manager.ChargeOptimizer = cfg.ChargeOptimizer

	// Ad hoc searches expand the way the workload's bundled suite was built
	// (w.Gen — path lengths, match fan-out); session config overrides the CQ
	// cap and, for non-default choices, the scoring family.
	genCfg := w.Gen
	genCfg.Graph = w.Schema
	genCfg.Catalog = w.Catalog
	genCfg.MaxCQs = cfg.MaxCQs
	switch cfg.Model {
	case ModelDISCOVER:
		genCfg.Family = candidates.FamilyDiscover
	case ModelBANKS:
		genCfg.Family = candidates.FamilyBANKS
	}
	return &System{
		fleet:   w.Fleet,
		cat:     cat,
		schema:  w.Schema,
		genCfg:  genCfg,
		env:     env,
		graph:   graph,
		atc:     controller,
		manager: manager,
		users:   map[string]*dist.RNG{},
		cfg:     cfg,
	}
}

// Answer is one top-k result of a search.
type Answer struct {
	// Rank is the 1-based position in the result list.
	Rank int
	// Score is the answer's score under the user's scoring model.
	Score float64
	// Query identifies the conjunctive query (candidate network) that
	// produced the answer.
	Query string
	// Tuples are the joined base tuples, in the candidate network's atom
	// order.
	Tuples []*tuple.Tuple
	// At is the session time the answer was emitted.
	At time.Duration
}

// SearchResult is a completed search.
type SearchResult struct {
	// ID is the user query id assigned by the session (UQ1, UQ2, …).
	ID string
	// Keywords echo the search.
	Keywords []string
	// Answers are the top-k results in rank order.
	Answers []Answer
	// CandidateNetworks is how many conjunctive queries the search expanded
	// into; ExecutedNetworks how many the ATC actually activated (Table 4).
	CandidateNetworks int
	ExecutedNetworks  int
	// Latency is the (virtual or real) response time.
	Latency time.Duration
}

// Search poses a keyword query for the given user and blocks until its top-k
// answers are known. Each distinct user gets their own scoring-function
// coefficients (§2.1: "different users may have different scoring
// functions"). Earlier searches' plan state is reused automatically.
func (s *System) Search(user string, keywords []string, k int) (*SearchResult, error) {
	if k <= 0 {
		k = s.cfg.K
	}
	userRNG, ok := s.users[user]
	if !ok {
		userRNG = dist.New(s.cfg.Seed + 1000 + uint64(len(s.users))*77)
		s.users[user] = userRNG
	}
	s.nextUQ++
	id := fmt.Sprintf("UQ%d", s.nextUQ)
	uq, err := candidates.Generate(s.genCfg, id, keywords, k, userRNG)
	if err != nil {
		return nil, err
	}
	return s.Submit(uq)
}

// Submit admits a pre-generated user query (advanced use: custom candidate
// networks or scoring models) and runs it to completion.
func (s *System) Submit(uq *cq.UQ) (*SearchResult, error) {
	arrival := s.env.Clock.Now()
	_, err := s.manager.Admit([]batcher.Submission{{At: arrival, UQ: uq}}, mqo.Config{K: uq.K})
	if err != nil {
		return nil, err
	}
	merge := s.atc.MergeByUQ(uq.ID)
	if merge == nil {
		return nil, fmt.Errorf("qsys: submitted query %s not registered", uq.ID)
	}
	for !merge.Done {
		s.atc.RunRound()
	}
	if merge.Err != nil {
		return nil, fmt.Errorf("qsys: query %s failed: %w", uq.ID, merge.Err)
	}
	s.manager.SyncCatalog()
	res := &SearchResult{
		ID:                uq.ID,
		Keywords:          uq.Keywords,
		CandidateNetworks: len(uq.CQs),
		ExecutedNetworks:  merge.RM.ExecutedCQs(),
		Latency:           merge.Latency(),
	}
	for i, r := range merge.RM.Results() {
		res.Answers = append(res.Answers, Answer{
			Rank:   i + 1,
			Score:  r.Score,
			Query:  r.CQID,
			Tuples: r.Row.Parts(),
			At:     r.At,
		})
	}
	return res, nil
}

// Stats reports the session's accumulated execution counters and plan-graph
// shape.
func (s *System) Stats() SessionStats {
	return SessionStats{
		Work:      s.env.Metrics.Snapshot(),
		Graph:     s.graph.Stats(),
		StateRows: s.manager.StateSize(),
		Evictions: s.manager.Evictions(),
		Now:       s.env.Clock.Now(),
	}
}

// SessionStats summarises a session.
type SessionStats struct {
	Work      metrics.Snapshot
	Graph     plangraph.Stats
	StateRows int
	Evictions int
	Now       time.Duration
}

// String renders the stats compactly.
func (st SessionStats) String() string {
	return fmt.Sprintf("t=%v stream=%d probes=%d (cached %d) results=%d | graph: %d sources, %d m-joins, %d splits | state=%d rows (%d evictions)",
		st.Now.Round(time.Millisecond), st.Work.StreamTuples, st.Work.ProbeCalls, st.Work.ProbeCacheHits,
		st.Work.ResultsEmitted, st.Graph.Sources, st.Graph.Joins, st.Graph.Splits, st.StateRows, st.Evictions)
}
