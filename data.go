package qsys

import (
	"fmt"
	"sort"

	"repro/internal/catalog"
	"repro/internal/relationdb"
	"repro/internal/remotedb"
	"repro/internal/schemagraph"
	"repro/internal/tuple"
	"repro/internal/workload"
)

// Re-exported data-model types: downstream users define their own schemas
// and relations with these (the implementations live in internal packages;
// the aliases make them nameable outside the module).
type (
	// Value is a column value (int / float / string / null).
	Value = tuple.Value
	// Schema describes a relation's columns.
	Schema = tuple.Schema
	// Column is one schema column; set Score on the similarity-score
	// attribute and Key on the primary key.
	Column = tuple.Column
	// Tuple is one relation row.
	Tuple = tuple.Tuple
	// Match is a keyword-to-relation match registered in the schema graph.
	Match = schemagraph.Match
	// SchemaGraphNode is a relation node of the schema graph.
	SchemaGraphNode = schemagraph.Node
	// SchemaGraphEdge is a join relationship between two relations.
	SchemaGraphEdge = schemagraph.Edge
)

// Kind is the type of a column/value.
type Kind = tuple.Kind

// Column/value kinds.
const (
	KindNull   = tuple.KindNull
	KindInt    = tuple.KindInt
	KindFloat  = tuple.KindFloat
	KindString = tuple.KindString
)

// Value constructors.
var (
	// Int builds an integer value.
	Int = tuple.Int
	// Float builds a float value.
	Float = tuple.Float
	// Str builds a string value.
	Str = tuple.String
	// Null builds the null value.
	Null = tuple.Null
)

// NewSchema builds a relation schema.
func NewSchema(name string, cols ...Column) *Schema { return tuple.NewSchema(name, cols...) }

// Workload bundles a database fleet, its statistics catalog, the schema
// graph with its keyword index, and (for the bundled experiment workloads) a
// timed query suite.
type Workload = workload.Workload

// Builder assembles a custom workload: simulated remote databases, relations,
// join edges and keyword matches. Finish with Build, then open a session with
// NewSystem.
type Builder struct {
	stores map[string]*relationdb.Store
	cat    *catalog.Catalog
	graph  *schemagraph.Graph
	err    error
}

// NewBuilder creates an empty workload builder.
func NewBuilder() *Builder {
	return &Builder{
		stores: map[string]*relationdb.Store{},
		cat:    catalog.New(),
		graph:  schemagraph.New(),
	}
}

// AddRelation registers a relation in the named database instance. Rows are
// given column-wise per the schema; they are sorted into nonincreasing score
// order automatically. Authority is the Q System node cost (0 = fully
// authoritative).
func (b *Builder) AddRelation(db string, schema *Schema, rows [][]Value, authority float64) *Builder {
	if b.err != nil {
		return b
	}
	store, ok := b.stores[db]
	if !ok {
		store = relationdb.NewStore(db)
		b.stores[db] = store
	}
	ts := make([]*tuple.Tuple, 0, len(rows))
	for _, vals := range rows {
		if len(vals) != schema.NumCols() {
			b.err = fmt.Errorf("qsys: relation %s: row arity %d != %d columns", schema.Name(), len(vals), schema.NumCols())
			return b
		}
		ts = append(ts, tuple.New(schema, vals...))
	}
	rel := relationdb.NewRelation(schema, ts)
	store.Put(rel)
	b.cat.AddRelation(db, rel)
	b.graph.AddNode(&schemagraph.Node{Rel: schema.Name(), DB: db, Schema: schema, Authority: authority})
	return b
}

// AddJoin registers a potential join relationship between two relations'
// columns, with a learned edge cost (lower = preferred by candidate
// generation and scored higher by the Q System model).
func (b *Builder) AddJoin(fromRel string, fromCol int, toRel string, toCol int, cost float64) *Builder {
	if b.err != nil {
		return b
	}
	b.graph.AddEdge(&schemagraph.Edge{From: fromRel, FromCol: fromCol, To: toRel, ToCol: toCol, Cost: cost})
	return b
}

// IndexKeyword registers a keyword match: content matches (Col ≥ 0) add the
// selection rel.col = keyword to generated queries; exact matches (Exact)
// match relation metadata and add no selection.
func (b *Builder) IndexKeyword(keyword string, m Match) *Builder {
	if b.err != nil {
		return b
	}
	b.graph.IndexTerm(keyword, m)
	return b
}

// Build finalises the workload.
func (b *Builder) Build(name string) (*Workload, error) {
	if b.err != nil {
		return nil, b.err
	}
	// Build the fleet in sorted database order: b.stores is a map, and
	// letting its randomized iteration order pick the fleet layout made
	// Builder-defined workloads nondeterministic run to run (qsys-lint
	// maporder).
	names := make([]string, 0, len(b.stores))
	for db := range b.stores {
		names = append(names, db)
	}
	sort.Strings(names)
	dbs := make([]*remotedb.DB, 0, len(names))
	for _, db := range names {
		dbs = append(dbs, remotedb.New(b.stores[db]))
	}
	return &Workload{Name: name, Fleet: remotedb.NewFleet(dbs...), Catalog: b.cat, Schema: b.graph}, nil
}

// --- Bundled workloads (§7, Figure 1) ----------------------------------------

// Bio builds the paper's running example (Figure 1): a bioinformatics portal
// over UniProt, InterPro, GeneOntology and NCBI Entrez, with the KQ1/KQ2/KQ3
// query scenario of §1–§2.
func Bio() (*Workload, error) { return workload.Bio() }

// GUS builds one synthetic Genomics-Unified-Schema instance (§7): 358
// relations, Zipfian scores and join keys, and the 15-user-query suite.
func GUS(instance int) (*Workload, error) { return workload.GUS(instance, workload.GUSScaleDefault()) }

// GUSScaled builds a GUS instance at a custom scale (GUSPaperScale matches
// the published 20k–100k rows per relation).
func GUSScaled(instance int, scale workload.GUSScale) (*Workload, error) {
	return workload.GUS(instance, scale)
}

// GUSDefaultScale returns the test/bench scale; GUSPaperScale the published
// one.
func GUSDefaultScale() workload.GUSScale { return workload.GUSScaleDefault() }

// GUSPaperScale returns the paper's 20k–100k rows-per-relation scale.
func GUSPaperScale() workload.GUSScale { return workload.GUSScalePaper() }

// Pfam builds the Pfam/InterPro real-data proxy workload (§7.5).
func Pfam() (*Workload, error) { return workload.Pfam(workload.PfamScaleDefault()) }
