package qsys

import (
	"testing"

	"repro/internal/experiments"
)

// Benchmarks: one per table/figure of the paper's evaluation (§7). Each
// iteration regenerates the experiment at the default (shape-preserving)
// scale and logs the formatted result, so `go test -bench=.` both times the
// harness and reproduces the published series. cmd/qsys-bench prints the same
// tables at full methodology (4 instances × 3 runs).

func benchConfig() experiments.Config {
	return experiments.Config{Instances: []int{1}, Seeds: []uint64{1}}.Defaults()
}

func BenchmarkTable4_CQsExecuted(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table4(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Format())
		}
	}
}

func BenchmarkFigure7_RunningTimes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure7(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Format())
		}
	}
}

func BenchmarkFigure8_TimeBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure8(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Format())
		}
	}
}

func BenchmarkFigure9_BatchOptimization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure9(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Format())
		}
	}
}

func BenchmarkFigure10_WorkReuse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure10(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Format())
		}
	}
}

func BenchmarkFigure11_OptimizerTimes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure11(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Format())
		}
	}
}

func BenchmarkFigure12_RealData(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure12(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Format())
		}
	}
}
