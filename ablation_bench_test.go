package qsys

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/exec"
	"repro/internal/workload"
)

// Ablation benchmarks for the design choices DESIGN.md calls out: how the
// §6.1 clustering thresholds trade contention against sharing, and how the
// §6.3 memory budget trades eviction-induced recomputation against footprint.

// BenchmarkAblationClusterThresholds sweeps Tm (the source-reliance threshold
// seeding initial clusters): low Tm merges toward one big graph (ATC-FULL
// behaviour: most sharing, most contention); high Tm splits toward per-query
// graphs (ATC-UQ behaviour: least contention, least sharing).
func BenchmarkAblationClusterThresholds(b *testing.B) {
	w, err := workload.GUS(1, workload.GUSScaleDefault())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, tm := range []int{1, 2, 4, 6, 8} {
			rep, err := exec.Run(w.Fleet, w.Catalog, w.Submissions, exec.Options{
				Strategy: exec.StrategyCL,
				Seed:     1,
				Cluster:  cluster.Config{Tm: tm, Tc: 0.5},
			})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				var total time.Duration
				for _, u := range rep.UQs {
					total += u.Latency()
				}
				b.Logf("Tm=%d: %2d graphs, avg latency %8v, %6d tuples consumed",
					tm, len(rep.Groups), (total / time.Duration(len(rep.UQs))).Round(10*time.Millisecond),
					rep.Total().TuplesConsumed())
			}
		}
	}
}

// BenchmarkAblationMemoryBudget sweeps the §6.3 state budget: tight budgets
// force LRU eviction, and later queries re-pay for streams the cache lost.
func BenchmarkAblationMemoryBudget(b *testing.B) {
	w, err := workload.GUS(1, workload.GUSScaleDefault())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, budget := range []int{0, 50000, 10000, 2000} {
			rep, err := exec.Run(w.Fleet, w.Catalog, w.Submissions, exec.Options{
				Strategy:     exec.StrategyFull,
				Seed:         1,
				MemoryBudget: budget,
			})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				evictions, state := 0, 0
				for _, g := range rep.Groups {
					evictions += g.Evictions
					state += g.StateRows
				}
				label := "unbounded"
				if budget > 0 {
					label = fmt.Sprintf("%d rows", budget)
				}
				b.Logf("budget %-10s: %3d evictions, %6d resident rows, %6d tuples consumed",
					label, evictions, state, rep.Total().TuplesConsumed())
			}
		}
	}
}
