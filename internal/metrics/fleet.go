package metrics

// Fleet aggregates the distributed-serving-tier counters of one front-end:
// shard RPC traffic and reliability (retries, circuit breaking), health-probe
// outcomes, routing decisions forced away from unhealthy shards, and live
// topic migrations. All fields are safe for concurrent use.
type Fleet struct {
	// RPCCalls counts shard RPCs issued (first attempts); RPCRetries counts
	// re-sends after a transient failure; RPCFailures counts calls that
	// exhausted their attempts (or were refused by an open circuit).
	RPCCalls    Counter
	RPCRetries  Counter
	RPCFailures Counter
	// RPCLatency measures per-call wall time, successful attempts only.
	RPCLatency LatencyHist

	// HealthProbes counts probe rounds issued per shard; HealthTrips counts
	// healthy→unhealthy transitions observed by the prober.
	HealthProbes Counter
	HealthTrips  Counter
	// CircuitOpens counts closed→open breaker transitions; RouteUnhealthy
	// counts routing decisions redirected because the preferred shard was
	// unhealthy or draining.
	CircuitOpens   Counter
	RouteUnhealthy Counter
	// ShardSheds counts searches a shard turned away with an overload shed
	// (rate/queue/deadline). A shed means the shard is saturated, not down:
	// the front-end surfaces it without marking the shard unhealthy.
	ShardSheds Counter

	// Migrations counts topic migrations executed; MigrationSegs/Rows the
	// segments and rows shipped; MigrationDrops the segments the target's
	// consistency gate rejected (replayed from source there).
	Migrations     Counter
	MigrationSegs  Counter
	MigrationRows  Counter
	MigrationDrops Counter

	// Crash-recovery tier. CheckpointsWritten/Loaded count checkpoint
	// generations published and warm-restart loads; SegmentsRecovered/
	// SegmentsDropped split a restart's segments by whether the consistency
	// gate installed them or dropped them to source replay; Redispatches
	// counts journaled-aborted queries the front-end resubmitted to a
	// healthy shard after confirming the original crashed.
	CheckpointsWritten Counter
	CheckpointsLoaded  Counter
	SegmentsRecovered  Counter
	SegmentsDropped    Counter
	Redispatches       Counter
}

// FleetSnapshot is an immutable copy of a Fleet's state.
type FleetSnapshot struct {
	RPCCalls    int64        `json:"rpc_calls"`
	RPCRetries  int64        `json:"rpc_retries"`
	RPCFailures int64        `json:"rpc_failures"`
	RPCLatency  LatencyStats `json:"rpc_latency"`

	HealthProbes   int64 `json:"health_probes"`
	HealthTrips    int64 `json:"health_trips"`
	CircuitOpens   int64 `json:"circuit_opens"`
	RouteUnhealthy int64 `json:"route_unhealthy"`
	ShardSheds     int64 `json:"shard_sheds"`

	Migrations     int64 `json:"migrations"`
	MigrationSegs  int64 `json:"migration_segs"`
	MigrationRows  int64 `json:"migration_rows"`
	MigrationDrops int64 `json:"migration_drops"`

	CheckpointsWritten int64 `json:"checkpoints_written"`
	CheckpointsLoaded  int64 `json:"checkpoints_loaded"`
	SegmentsRecovered  int64 `json:"segments_recovered"`
	SegmentsDropped    int64 `json:"segments_dropped"`
	Redispatches       int64 `json:"redispatches"`
}

// Snapshot copies the current values.
func (f *Fleet) Snapshot() FleetSnapshot {
	return FleetSnapshot{
		RPCCalls:       f.RPCCalls.Value(),
		RPCRetries:     f.RPCRetries.Value(),
		RPCFailures:    f.RPCFailures.Value(),
		RPCLatency:     f.RPCLatency.Snapshot(),
		HealthProbes:   f.HealthProbes.Value(),
		HealthTrips:    f.HealthTrips.Value(),
		CircuitOpens:   f.CircuitOpens.Value(),
		RouteUnhealthy: f.RouteUnhealthy.Value(),
		ShardSheds:     f.ShardSheds.Value(),
		Migrations:     f.Migrations.Value(),
		MigrationSegs:  f.MigrationSegs.Value(),
		MigrationRows:  f.MigrationRows.Value(),
		MigrationDrops: f.MigrationDrops.Value(),

		CheckpointsWritten: f.CheckpointsWritten.Value(),
		CheckpointsLoaded:  f.CheckpointsLoaded.Value(),
		SegmentsRecovered:  f.SegmentsRecovered.Value(),
		SegmentsDropped:    f.SegmentsDropped.Value(),
		Redispatches:       f.Redispatches.Value(),
	}
}
