package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestLatencyHistQuantiles(t *testing.T) {
	var h LatencyHist
	if h.Quantile(0.5) != 0 {
		t.Error("empty hist quantile != 0")
	}
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	st := h.Snapshot()
	if st.Count != 1000 {
		t.Fatalf("count = %d", st.Count)
	}
	if st.Max != 1000*time.Millisecond {
		t.Errorf("max = %v", st.Max)
	}
	// Power-of-two buckets: estimates may overshoot by at most 2x.
	if st.P50 < 500*time.Millisecond || st.P50 > time.Second {
		t.Errorf("p50 = %v, want within [500ms, 1s]", st.P50)
	}
	if st.P99 < 990*time.Millisecond || st.P99 > 1000*time.Millisecond {
		t.Errorf("p99 = %v", st.P99)
	}
	if st.Mean < 500*time.Millisecond || st.Mean > 501*time.Millisecond {
		t.Errorf("mean = %v", st.Mean)
	}
}

func TestLatencyHistNegativeClamped(t *testing.T) {
	var h LatencyHist
	h.Observe(-time.Second)
	if st := h.Snapshot(); st.Count != 1 || st.Max != 0 {
		t.Errorf("negative observation: %+v", st)
	}
}

func TestSizeHist(t *testing.T) {
	var h SizeHist
	for _, n := range []int{1, 1, 5, 5, 5, 200} {
		h.Observe(n)
	}
	st := h.Snapshot()
	if st.Count != 6 || st.Max != 200 {
		t.Fatalf("count=%d max=%d", st.Count, st.Max)
	}
	if st.Dist[1] != 2 || st.Dist[5] != 3 || st.Dist[sizeBuckets-1] != 1 {
		t.Errorf("dist = %v", st.Dist)
	}
	if st.Mean < 36 || st.Mean > 37 {
		t.Errorf("mean = %v", st.Mean)
	}
}

func TestServiceCountersConcurrent(t *testing.T) {
	var s Service
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				s.Requests.Inc()
				s.InFlight.Inc()
				s.WallLatency.Observe(time.Millisecond)
				s.BatchOccupancy.Observe(j % 10)
				if j%2 == 0 {
					s.RouteAffinity.Inc()
				} else {
					s.RouteHash.Inc()
				}
				if j%100 == 0 {
					s.RouteSharingMiss.Inc()
				}
				s.InFlight.Dec()
				s.Completed.Inc()
			}
		}()
	}
	wg.Wait()
	st := s.Snapshot()
	if st.Requests != 8000 || st.Completed != 8000 || st.InFlight != 0 {
		t.Errorf("snapshot = %+v", st)
	}
	if st.WallLatency.Count != 8000 || st.BatchOccupancy.Count != 8000 {
		t.Errorf("hist counts: %d %d", st.WallLatency.Count, st.BatchOccupancy.Count)
	}
	if st.RouteAffinity != 4000 || st.RouteHash != 4000 || st.RouteSharingMiss != 80 {
		t.Errorf("routing counters: affinity=%d hash=%d miss=%d", st.RouteAffinity, st.RouteHash, st.RouteSharingMiss)
	}
}
