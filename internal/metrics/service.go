package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Gauge is a concurrency-safe integer gauge (e.g. requests in flight).
type Gauge struct{ v atomic.Int64 }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Counter is a concurrency-safe monotonic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reads the counter.
func (c *Counter) Value() int64 { return c.v.Load() }

// LatencyHist is a lock-free histogram of durations with power-of-two
// nanosecond buckets, good for percentile estimates across nine orders of
// magnitude. The zero value is ready to use.
type LatencyHist struct {
	count   atomic.Int64
	sumNS   atomic.Int64
	maxNS   atomic.Int64
	buckets [64]atomic.Int64 // bucket i counts d with bits.Len64(ns) == i
}

// Observe records one duration.
func (h *LatencyHist) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	ns := int64(d)
	h.count.Add(1)
	h.sumNS.Add(ns)
	for {
		cur := h.maxNS.Load()
		if ns <= cur || h.maxNS.CompareAndSwap(cur, ns) {
			break
		}
	}
	h.buckets[bits.Len64(uint64(ns))].Add(1)
}

// Quantile estimates the q-quantile (0 < q <= 1) as the upper bound of the
// bucket holding it, clamped to the observed maximum. Returns 0 when empty.
func (h *LatencyHist) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= target {
			upper := int64(1)<<uint(i) - 1
			if m := h.maxNS.Load(); upper > m {
				upper = m
			}
			return time.Duration(upper)
		}
	}
	return time.Duration(h.maxNS.Load())
}

// LatencyStats is an immutable summary of a LatencyHist.
type LatencyStats struct {
	Count int64
	Mean  time.Duration
	Max   time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
}

// Snapshot summarises the histogram.
func (h *LatencyHist) Snapshot() LatencyStats {
	st := LatencyStats{
		Count: h.count.Load(),
		Max:   time.Duration(h.maxNS.Load()),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
	if st.Count > 0 {
		st.Mean = time.Duration(h.sumNS.Load() / st.Count)
	}
	return st
}

// sizeBuckets caps the linear occupancy histogram; larger sizes clamp into
// the last bucket.
const sizeBuckets = 65

// SizeHist is a lock-free linear histogram of small counts (e.g. how many
// queries each released batch carried). The zero value is ready to use.
type SizeHist struct {
	count   atomic.Int64
	sum     atomic.Int64
	maxSeen atomic.Int64
	buckets [sizeBuckets]atomic.Int64
}

// Observe records one size.
func (h *SizeHist) Observe(n int) {
	if n < 0 {
		n = 0
	}
	h.count.Add(1)
	h.sum.Add(int64(n))
	for {
		cur := h.maxSeen.Load()
		if int64(n) <= cur || h.maxSeen.CompareAndSwap(cur, int64(n)) {
			break
		}
	}
	i := n
	if i >= sizeBuckets {
		i = sizeBuckets - 1
	}
	h.buckets[i].Add(1)
}

// SizeStats is an immutable summary of a SizeHist.
type SizeStats struct {
	Count int64
	Mean  float64
	Max   int64
	// Dist maps observed size -> occurrences (only non-empty buckets).
	Dist map[int]int64
}

// Snapshot summarises the histogram.
func (h *SizeHist) Snapshot() SizeStats {
	st := SizeStats{Count: h.count.Load(), Max: h.maxSeen.Load(), Dist: map[int]int64{}}
	if st.Count > 0 {
		st.Mean = float64(h.sum.Load()) / float64(st.Count)
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			st.Dist[i] = n
		}
	}
	return st
}

// Service aggregates the serving-layer counters of one query service: request
// lifecycle counts, admission-batch occupancy, and latency distributions.
// All fields are safe for concurrent use.
type Service struct {
	// InFlight counts requests accepted into the service and not yet
	// responded to; Queued counts those still waiting in an admission window.
	InFlight Gauge
	Queued   Gauge

	// Requests counts every Search call that produced a candidate-network
	// expansion; Completed / Canceled / Rejected partition their outcomes.
	Requests  Counter
	Completed Counter
	Canceled  Counter
	Rejected  Counter

	// Overload-control outcomes. Shed totals the pre-admission load sheds,
	// split by cause into ShedUserRate (per-user/fair-share token bucket) and
	// ShedQueueFull (shard admission queue at MaxPending); both are safely
	// retryable — the query never reached admission. DeadlineCanceled counts
	// admitted queries whose merge was canceled past its latency budget;
	// those are NOT retryable and are not part of Shed.
	Shed             Counter
	ShedUserRate     Counter
	ShedQueueFull    Counter
	DeadlineCanceled Counter

	// Batches counts admission batches released to the optimizer;
	// BatchOccupancy records how many queries each carried (>1 means the
	// batch was multi-query-optimized together, §3).
	Batches        Counter
	BatchOccupancy SizeHist

	// ExecBatch is the executor's mini-batch occupancy across every shard's
	// engine: how many rows each flushed batch carried through the
	// probe/verify/join core. ExecBatchFlushes counts flushes;
	// ExecBatchFull counts those forced by a full batch (the remainder
	// flushed because the producing cascade ended — the flush reason split).
	// Engines tee into these via Counters.TeeBatch.
	ExecBatch        SizeHist
	ExecBatchFlushes Counter
	ExecBatchFull    Counter

	// Per-decision routing counters (multi-shard services; §6.1's clustering
	// at serving scale). RouteAffinity counts queries placed by measured
	// overlap with a shard's resident keyword set; RouteHash those placed by
	// the fixed keyword hash (all of them in hash mode, the no-affinity
	// fallback otherwise); RouteSharingMiss decisions that landed away from
	// the shard best covering the query — placements that re-pay source
	// reads for state already resident elsewhere.
	RouteAffinity    Counter
	RouteHash        Counter
	RouteSharingMiss Counter

	// WallLatency measures enqueue-to-response wall time (includes admission
	// wait); EngineLatency measures the engine clock's admission-to-finish
	// time (the paper's response-time notion).
	WallLatency   LatencyHist
	EngineLatency LatencyHist
}

// ServiceSnapshot is an immutable copy of a Service's state.
type ServiceSnapshot struct {
	InFlight  int64
	Queued    int64
	Requests  int64
	Completed int64
	Canceled  int64
	Rejected  int64
	Batches   int64

	Shed             int64
	ShedUserRate     int64
	ShedQueueFull    int64
	DeadlineCanceled int64

	RouteAffinity    int64
	RouteHash        int64
	RouteSharingMiss int64

	ExecBatchFlushes int64
	ExecBatchFull    int64

	BatchOccupancy SizeStats
	ExecBatch      SizeStats
	WallLatency    LatencyStats
	EngineLatency  LatencyStats
}

// Snapshot copies the current values.
func (s *Service) Snapshot() ServiceSnapshot {
	return ServiceSnapshot{
		InFlight:         s.InFlight.Value(),
		Queued:           s.Queued.Value(),
		Requests:         s.Requests.Value(),
		Completed:        s.Completed.Value(),
		Canceled:         s.Canceled.Value(),
		Rejected:         s.Rejected.Value(),
		Batches:          s.Batches.Value(),
		Shed:             s.Shed.Value(),
		ShedUserRate:     s.ShedUserRate.Value(),
		ShedQueueFull:    s.ShedQueueFull.Value(),
		DeadlineCanceled: s.DeadlineCanceled.Value(),
		RouteAffinity:    s.RouteAffinity.Value(),
		RouteHash:        s.RouteHash.Value(),
		RouteSharingMiss: s.RouteSharingMiss.Value(),
		ExecBatchFlushes: s.ExecBatchFlushes.Value(),
		ExecBatchFull:    s.ExecBatchFull.Value(),
		BatchOccupancy:   s.BatchOccupancy.Snapshot(),
		ExecBatch:        s.ExecBatch.Snapshot(),
		WallLatency:      s.WallLatency.Snapshot(),
		EngineLatency:    s.EngineLatency.Snapshot(),
	}
}
