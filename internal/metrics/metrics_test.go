package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestCountersAccumulate(t *testing.T) {
	var c Counters
	c.AddStreamRead(2 * time.Millisecond)
	c.AddStreamRead(3 * time.Millisecond)
	c.AddProbe(time.Millisecond, 4)
	c.AddProbeCacheHit()
	c.AddJoin(time.Microsecond)
	c.AddJoinInsert()
	c.AddJoinProbe()
	c.AddResult()
	c.AddReplayTuple()
	s := c.Snapshot()
	if s.StreamTime != 5*time.Millisecond || s.StreamTuples != 2 {
		t.Errorf("stream: %v %d", s.StreamTime, s.StreamTuples)
	}
	if s.ProbeTime != time.Millisecond || s.ProbeCalls != 1 || s.ProbeTuples != 4 || s.ProbeCacheHits != 1 {
		t.Errorf("probe: %+v", s)
	}
	if s.JoinTime != time.Microsecond || s.JoinInserts != 1 || s.JoinProbes != 1 {
		t.Errorf("join: %+v", s)
	}
	if s.ResultsEmitted != 1 || s.ReplayTuples != 1 {
		t.Errorf("results/replay: %+v", s)
	}
	if s.TuplesConsumed() != 6 {
		t.Errorf("consumed = %d, want streamTuples+probeTuples = 6", s.TuplesConsumed())
	}
	if s.TotalTime() != 5*time.Millisecond+time.Millisecond+time.Microsecond {
		t.Errorf("total = %v", s.TotalTime())
	}
}

func TestSnapshotAdd(t *testing.T) {
	var a, b Counters
	a.AddStreamRead(time.Millisecond)
	b.AddProbe(2*time.Millisecond, 3)
	sum := a.Snapshot().Add(b.Snapshot())
	if sum.StreamTuples != 1 || sum.ProbeTuples != 3 || sum.TotalTime() != 3*time.Millisecond {
		t.Errorf("sum = %+v", sum)
	}
}

func TestCountersConcurrent(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.AddStreamRead(time.Microsecond)
				c.AddJoinProbe()
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.StreamTuples != 8000 || s.JoinProbes != 8000 {
		t.Errorf("lost updates: %+v", s)
	}
}
