// Package metrics collects the execution counters the paper's evaluation
// reports: the three-way time breakdown of Figure 8 (stream read time,
// random access time, join time), the total input tuples consumed of
// Figure 10, and per-user-query bookkeeping such as the number of conjunctive
// queries executed (Table 4).
package metrics

import (
	"sync/atomic"
	"time"
)

// Counters aggregates execution work for one plan graph (one ATC). All
// methods are safe for concurrent use; experiment harnesses snapshot and sum
// counters across graphs.
type Counters struct {
	streamTimeNS int64
	probeTimeNS  int64
	joinTimeNS   int64

	streamTuples   int64
	probeCalls     int64
	probeHits      int64
	probeTuples    int64
	joinInserts    int64
	joinProbes     int64
	resultsEmitted int64
	replayTuples   int64

	spillSegsOut  int64
	spillRowsOut  int64
	spillBytesOut int64
	spillSegsIn   int64
	spillRowsIn   int64
	spillBytesIn  int64
	revivalSpill  int64
	revivalSource int64

	migSegsOut  int64
	migRowsOut  int64
	migSegsIn   int64
	migRowsIn   int64
	migRestores int64
	migDrops    int64

	batchFlushes int64
	batchRows    int64
	batchFull    int64
	batchHist    SizeHist

	// teeHist/teeFlushes/teeFull, when set (TeeBatch, once before traffic),
	// mirror batch flushes into a serving-layer Service's exec-batch metrics
	// so GET /stats aggregates occupancy across every shard's engine.
	teeHist    *SizeHist
	teeFlushes *Counter
	teeFull    *Counter
}

// TeeBatch mirrors every AddBatchFlush into the given histogram and
// counters (typically a Service's ExecBatch fields). Call once, before the
// engine runs.
func (c *Counters) TeeBatch(h *SizeHist, flushes, full *Counter) {
	c.teeHist, c.teeFlushes, c.teeFull = h, flushes, full
}

// AddStreamRead records one streaming-source read of duration d.
func (c *Counters) AddStreamRead(d time.Duration) {
	atomic.AddInt64(&c.streamTimeNS, int64(d))
	atomic.AddInt64(&c.streamTuples, 1)
}

// AddProbe records one remote random-access probe returning n tuples.
func (c *Counters) AddProbe(d time.Duration, n int) {
	atomic.AddInt64(&c.probeTimeNS, int64(d))
	atomic.AddInt64(&c.probeCalls, 1)
	atomic.AddInt64(&c.probeTuples, int64(n))
}

// AddProbeCacheHit records a probe served from the middleware probe cache.
func (c *Counters) AddProbeCacheHit() { atomic.AddInt64(&c.probeHits, 1) }

// AddJoin records in-memory join work of duration d.
func (c *Counters) AddJoin(d time.Duration) { atomic.AddInt64(&c.joinTimeNS, int64(d)) }

// AddJoinInsert counts an access-module insert.
func (c *Counters) AddJoinInsert() { atomic.AddInt64(&c.joinInserts, 1) }

// AddJoinProbe counts an access-module probe.
func (c *Counters) AddJoinProbe() { atomic.AddInt64(&c.joinProbes, 1) }

// AddResult counts a result row delivered to a user.
func (c *Counters) AddResult() { atomic.AddInt64(&c.resultsEmitted, 1) }

// AddReplayTuple counts a tuple re-processed from saved state (§6.2); replay
// does not count toward tuples consumed — that is precisely the reuse saving
// Figure 10 measures.
func (c *Counters) AddReplayTuple() { atomic.AddInt64(&c.replayTuples, 1) }

// AddSpillWrite records one evicted plan segment serialized to the disk
// tier (§6.3 spill): rows and bytes written.
func (c *Counters) AddSpillWrite(rows, bytes int64) {
	atomic.AddInt64(&c.spillSegsOut, 1)
	atomic.AddInt64(&c.spillRowsOut, rows)
	atomic.AddInt64(&c.spillBytesOut, bytes)
}

// AddSpillRead records one spilled segment read back during revival. Spill
// reads are local I/O, not source work: they count toward neither
// TuplesConsumed nor ReplayTuples.
func (c *Counters) AddSpillRead(rows, bytes int64) {
	atomic.AddInt64(&c.spillSegsIn, 1)
	atomic.AddInt64(&c.spillRowsIn, rows)
	atomic.AddInt64(&c.spillBytesIn, bytes)
}

// AddRevivalFromSpill counts a re-created node whose state came back from
// the disk tier.
func (c *Counters) AddRevivalFromSpill() { atomic.AddInt64(&c.revivalSpill, 1) }

// AddRevivalFromSource counts a re-created node that had been evicted with
// no spill segment, so its state is re-derived by fresh source reads.
func (c *Counters) AddRevivalFromSource() { atomic.AddInt64(&c.revivalSource, 1) }

// AddMigrationOut records one plan segment exported for live migration to
// another shard (rows serialized and handed off).
func (c *Counters) AddMigrationOut(rows int64) {
	atomic.AddInt64(&c.migSegsOut, 1)
	atomic.AddInt64(&c.migRowsOut, rows)
}

// AddMigrationIn records one migrated segment staged on this shard.
func (c *Counters) AddMigrationIn(rows int64) {
	atomic.AddInt64(&c.migSegsIn, 1)
	atomic.AddInt64(&c.migRowsIn, rows)
}

// AddMigrationRestore counts a staged migrated segment that passed the
// consistency gate and was reinstalled into a node.
func (c *Counters) AddMigrationRestore() { atomic.AddInt64(&c.migRestores, 1) }

// AddMigrationDrop counts a migrated segment rejected by the consistency gate
// (corrupt, structurally stale, or racing locally derived state); its node
// re-derives by source replay instead.
func (c *Counters) AddMigrationDrop() { atomic.AddInt64(&c.migDrops, 1) }

// AddBatchFlush records one executor mini-batch flushed downstream: rows is
// the batch occupancy, full marks a flush forced by the batch filling (as
// opposed to the producing cascade ending). Batch counters describe how work
// was grouped, not how much work was done — they are deliberately excluded
// from the semantic work-counter contract the bench trajectory pins.
func (c *Counters) AddBatchFlush(rows int, full bool) {
	atomic.AddInt64(&c.batchFlushes, 1)
	atomic.AddInt64(&c.batchRows, int64(rows))
	if full {
		atomic.AddInt64(&c.batchFull, 1)
	}
	c.batchHist.Observe(rows)
	if c.teeHist != nil {
		c.teeHist.Observe(rows)
		c.teeFlushes.Inc()
		if full {
			c.teeFull.Inc()
		}
	}
}

// BatchOccupancy returns the distribution of rows per flushed executor batch.
func (c *Counters) BatchOccupancy() SizeStats { return c.batchHist.Snapshot() }

// Snapshot is an immutable copy of the counters.
type Snapshot struct {
	StreamTime time.Duration
	ProbeTime  time.Duration
	JoinTime   time.Duration

	StreamTuples   int64
	ProbeCalls     int64
	ProbeCacheHits int64
	ProbeTuples    int64
	JoinInserts    int64
	JoinProbes     int64
	ResultsEmitted int64
	ReplayTuples   int64

	SpillSegsWritten   int64
	SpillRowsWritten   int64
	SpillBytesWritten  int64
	SpillSegsRead      int64
	SpillRowsRead      int64
	SpillBytesRead     int64
	RevivalsFromSpill  int64
	RevivalsFromSource int64

	MigrationSegsOut  int64
	MigrationRowsOut  int64
	MigrationSegsIn   int64
	MigrationRowsIn   int64
	MigrationRestores int64
	MigrationDrops    int64

	BatchFlushes     int64
	BatchRowsFlushed int64
	BatchFullFlushes int64
}

// Snapshot returns the current counter values.
func (c *Counters) Snapshot() Snapshot {
	return Snapshot{
		StreamTime:     time.Duration(atomic.LoadInt64(&c.streamTimeNS)),
		ProbeTime:      time.Duration(atomic.LoadInt64(&c.probeTimeNS)),
		JoinTime:       time.Duration(atomic.LoadInt64(&c.joinTimeNS)),
		StreamTuples:   atomic.LoadInt64(&c.streamTuples),
		ProbeCalls:     atomic.LoadInt64(&c.probeCalls),
		ProbeCacheHits: atomic.LoadInt64(&c.probeHits),
		ProbeTuples:    atomic.LoadInt64(&c.probeTuples),
		JoinInserts:    atomic.LoadInt64(&c.joinInserts),
		JoinProbes:     atomic.LoadInt64(&c.joinProbes),
		ResultsEmitted: atomic.LoadInt64(&c.resultsEmitted),
		ReplayTuples:   atomic.LoadInt64(&c.replayTuples),

		SpillSegsWritten:   atomic.LoadInt64(&c.spillSegsOut),
		SpillRowsWritten:   atomic.LoadInt64(&c.spillRowsOut),
		SpillBytesWritten:  atomic.LoadInt64(&c.spillBytesOut),
		SpillSegsRead:      atomic.LoadInt64(&c.spillSegsIn),
		SpillRowsRead:      atomic.LoadInt64(&c.spillRowsIn),
		SpillBytesRead:     atomic.LoadInt64(&c.spillBytesIn),
		RevivalsFromSpill:  atomic.LoadInt64(&c.revivalSpill),
		RevivalsFromSource: atomic.LoadInt64(&c.revivalSource),

		MigrationSegsOut:  atomic.LoadInt64(&c.migSegsOut),
		MigrationRowsOut:  atomic.LoadInt64(&c.migRowsOut),
		MigrationSegsIn:   atomic.LoadInt64(&c.migSegsIn),
		MigrationRowsIn:   atomic.LoadInt64(&c.migRowsIn),
		MigrationRestores: atomic.LoadInt64(&c.migRestores),
		MigrationDrops:    atomic.LoadInt64(&c.migDrops),

		BatchFlushes:     atomic.LoadInt64(&c.batchFlushes),
		BatchRowsFlushed: atomic.LoadInt64(&c.batchRows),
		BatchFullFlushes: atomic.LoadInt64(&c.batchFull),
	}
}

// TuplesConsumed is Figure 10's work measure: tuples brought into the
// middleware from sources, by streaming or by probing.
func (s Snapshot) TuplesConsumed() int64 { return s.StreamTuples + s.ProbeTuples }

// TotalTime sums the three buckets of Figure 8.
func (s Snapshot) TotalTime() time.Duration { return s.StreamTime + s.ProbeTime + s.JoinTime }

// Add returns the element-wise sum of two snapshots.
func (s Snapshot) Add(o Snapshot) Snapshot {
	return Snapshot{
		StreamTime:     s.StreamTime + o.StreamTime,
		ProbeTime:      s.ProbeTime + o.ProbeTime,
		JoinTime:       s.JoinTime + o.JoinTime,
		StreamTuples:   s.StreamTuples + o.StreamTuples,
		ProbeCalls:     s.ProbeCalls + o.ProbeCalls,
		ProbeCacheHits: s.ProbeCacheHits + o.ProbeCacheHits,
		ProbeTuples:    s.ProbeTuples + o.ProbeTuples,
		JoinInserts:    s.JoinInserts + o.JoinInserts,
		JoinProbes:     s.JoinProbes + o.JoinProbes,
		ResultsEmitted: s.ResultsEmitted + o.ResultsEmitted,
		ReplayTuples:   s.ReplayTuples + o.ReplayTuples,

		SpillSegsWritten:   s.SpillSegsWritten + o.SpillSegsWritten,
		SpillRowsWritten:   s.SpillRowsWritten + o.SpillRowsWritten,
		SpillBytesWritten:  s.SpillBytesWritten + o.SpillBytesWritten,
		SpillSegsRead:      s.SpillSegsRead + o.SpillSegsRead,
		SpillRowsRead:      s.SpillRowsRead + o.SpillRowsRead,
		SpillBytesRead:     s.SpillBytesRead + o.SpillBytesRead,
		RevivalsFromSpill:  s.RevivalsFromSpill + o.RevivalsFromSpill,
		RevivalsFromSource: s.RevivalsFromSource + o.RevivalsFromSource,

		MigrationSegsOut:  s.MigrationSegsOut + o.MigrationSegsOut,
		MigrationRowsOut:  s.MigrationRowsOut + o.MigrationRowsOut,
		MigrationSegsIn:   s.MigrationSegsIn + o.MigrationSegsIn,
		MigrationRowsIn:   s.MigrationRowsIn + o.MigrationRowsIn,
		MigrationRestores: s.MigrationRestores + o.MigrationRestores,
		MigrationDrops:    s.MigrationDrops + o.MigrationDrops,

		BatchFlushes:     s.BatchFlushes + o.BatchFlushes,
		BatchRowsFlushed: s.BatchRowsFlushed + o.BatchRowsFlushed,
		BatchFullFlushes: s.BatchFullFlushes + o.BatchFullFlushes,
	}
}
