// Package batcher implements the query batcher of §3: incoming keyword
// queries (already expanded into conjunctive queries) collect over a small
// time interval and are released to the optimizer as a batch. The experiments
// use batches of size 5 (§7.1) with arrivals spread over ≤6-second delays;
// Figure 9 compares batch size 1 (SINGLE-OPT) against 5 (BATCH-OPT).
package batcher

import (
	"errors"
	"sort"
	"time"

	"repro/internal/cq"
)

// ErrNoTrigger reports a Batcher with neither a size nor a window trigger:
// such a batcher would collect submissions forever and release nothing.
var ErrNoTrigger = errors.New("batcher: need a size or window trigger")

// Submission is one user query with its arrival time.
type Submission struct {
	At time.Duration
	UQ *cq.UQ
}

// Batch is a group of user queries released together. ReleasedAt is when the
// batcher hands the group to the optimizer: the moment the size limit fills,
// or the window since the first member expires.
type Batch struct {
	ReleasedAt  time.Duration
	Submissions []Submission
}

// UQs returns the batch's user queries in arrival order.
func (b *Batch) UQs() []*cq.UQ {
	out := make([]*cq.UQ, len(b.Submissions))
	for i, s := range b.Submissions {
		out[i] = s.UQ
	}
	return out
}

// Batcher groups submissions.
type Batcher struct {
	// Size releases a batch as soon as this many queries collect (0 = no
	// size trigger).
	Size int
	// Window releases a batch this long after its first member arrives
	// (0 = no time trigger; requires Size > 0).
	Window time.Duration
}

// Plan groups a known set of submissions (the offline form used by the
// experiment harness — arrival times are part of the workload). A batcher
// with neither trigger returns ErrNoTrigger: a bad flag combination must
// surface as a configuration error, not kill the serving process.
func (b *Batcher) Plan(subs []Submission) ([]Batch, error) {
	if b.Size <= 0 && b.Window <= 0 {
		return nil, ErrNoTrigger
	}
	sorted := append([]Submission(nil), subs...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
	var out []Batch
	var cur []Submission
	var deadline time.Duration
	flush := func(at time.Duration) {
		if len(cur) == 0 {
			return
		}
		out = append(out, Batch{ReleasedAt: at, Submissions: cur})
		cur = nil
	}
	for _, s := range sorted {
		if len(cur) > 0 && b.Window > 0 && s.At > deadline {
			flush(deadline)
		}
		if len(cur) == 0 {
			deadline = s.At + b.Window
		}
		cur = append(cur, s)
		if b.Size > 0 && len(cur) >= b.Size {
			flush(s.At)
		}
	}
	if len(cur) > 0 {
		at := cur[len(cur)-1].At
		if b.Window > 0 && deadline > at {
			at = deadline
		}
		flush(at)
	}
	return out, nil
}
