package batcher

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cq"
)

func sub(at time.Duration, id string) Submission {
	return Submission{At: at, UQ: &cq.UQ{ID: id}}
}

func TestSizeTriggeredBatches(t *testing.T) {
	b := &Batcher{Size: 2}
	batches, err := b.Plan([]Submission{
		sub(0, "a"), sub(time.Second, "b"), sub(2*time.Second, "c"),
		sub(3*time.Second, "d"), sub(4*time.Second, "e"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 3 {
		t.Fatalf("batches = %d, want 3", len(batches))
	}
	if len(batches[0].Submissions) != 2 || batches[0].ReleasedAt != time.Second {
		t.Errorf("batch 0: %+v", batches[0])
	}
	if len(batches[2].Submissions) != 1 {
		t.Errorf("final partial batch size %d", len(batches[2].Submissions))
	}
	got := batches[2].UQs()
	if len(got) != 1 || got[0].ID != "e" {
		t.Errorf("UQs() = %v", got)
	}
}

func TestWindowTriggeredBatches(t *testing.T) {
	b := &Batcher{Size: 100, Window: 3 * time.Second}
	batches, err := b.Plan([]Submission{
		sub(0, "a"), sub(time.Second, "b"),
		sub(10*time.Second, "c"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 2 {
		t.Fatalf("batches = %d, want 2", len(batches))
	}
	if batches[0].ReleasedAt != 3*time.Second {
		t.Errorf("window batch released at %v", batches[0].ReleasedAt)
	}
	if batches[1].Submissions[0].UQ.ID != "c" {
		t.Error("late arrival misgrouped")
	}
}

func TestPlanSortsArrivals(t *testing.T) {
	b := &Batcher{Size: 2}
	batches, err := b.Plan([]Submission{sub(5*time.Second, "late"), sub(0, "early")})
	if err != nil {
		t.Fatal(err)
	}
	if batches[0].Submissions[0].UQ.ID != "early" {
		t.Error("arrivals not sorted")
	}
}

func TestBatcherNeedsTrigger(t *testing.T) {
	// A batcher with neither trigger used to panic, which could kill a
	// serving process over a bad flag combination; it must now return a
	// configuration error.
	batches, err := (&Batcher{}).Plan([]Submission{sub(0, "a")})
	if !errors.Is(err, ErrNoTrigger) {
		t.Fatalf("err = %v, want ErrNoTrigger", err)
	}
	if batches != nil {
		t.Fatalf("batches = %v, want nil on configuration error", batches)
	}
}

func TestReleaseNeverBeforeLastMember(t *testing.T) {
	b := &Batcher{Size: 5, Window: 6 * time.Second}
	subs := []Submission{sub(0, "a"), sub(time.Second, "b"), sub(2*time.Second, "c")}
	batches, err := b.Plan(subs)
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range batches {
		for _, s := range batch.Submissions {
			if batch.ReleasedAt < s.At {
				t.Errorf("batch released at %v before member arrival %v", batch.ReleasedAt, s.At)
			}
		}
	}
}
