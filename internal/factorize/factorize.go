// Package factorize builds the query plan graph from an input assignment
// (§5.2): starting from a frontier of source inputs, it greedily applies the
// join operation shared by the most conjunctive queries (breaking ties toward
// the most selective), merging frontier expressions into m-join nodes and
// implicitly inserting split operators wherever a node's consumers diverge.
// Join *ordering* inside each node is deliberately not decided here — it is
// deferred to runtime, where the m-join adapts its probe sequences from
// monitored selectivities (§4.1).
//
// Adjacent joins consumed by exactly the same query set collapse into one
// m-way join node ("as few factored components as possible", §5.2), so the
// resulting graph matches Figure 4: shared components bounded by splits, one
// terminal node per conjunctive query.
package factorize

import (
	"fmt"
	"sort"

	"repro/internal/catalog"
	"repro/internal/costmodel"
	"repro/internal/cq"
	"repro/internal/plangraph"
)

// entry is one frontier element: a plan node plus, per consuming query, the
// mapping from the node's expression atoms to that query's atoms.
type entry struct {
	node  *plangraph.Node
	probe bool
	uses  map[string][]int // cq id -> node expr atom -> cq atom idx
}

// Build factors the batch's input assignment into a plan graph. qs must be
// exactly the queries named by the assignment's use sets.
func Build(g *plangraph.Graph, qs []*cq.CQ, inputs []*costmodel.Input, cat *catalog.Catalog) error {
	byID := map[string]*cq.CQ{}
	for _, q := range qs {
		byID[q.ID] = q
	}
	done := map[string]bool{}
	hasEndpoint := map[*plangraph.Node]bool{}
	for _, ep := range g.Endpoints() {
		hasEndpoint[ep.Node] = true
	}
	// Nodes created by this build: only these may be absorbed into m-way
	// joins or pruned as orphans — pre-existing nodes are reusable state
	// owned by the query state manager.
	created := map[*plangraph.Node]bool{}
	ensure := func(kind plangraph.Kind, expr *cq.Expr, db string) *plangraph.Node {
		existing := g.Node(g.NodeKey(kind, expr.Key()))
		n := g.EnsureNode(kind, expr, db)
		if existing == nil {
			created[n] = true
		}
		return n
	}

	var entries []*entry
	for _, in := range inputs {
		kind := plangraph.SourceStream
		if in.Mode == costmodel.Probe {
			kind = plangraph.SourceProbe
		}
		node := ensure(kind, in.Expr, in.DB)
		e := &entry{node: node, probe: in.Mode == costmodel.Probe, uses: map[string][]int{}}
		for cqID, occ := range in.Uses {
			if byID[cqID] == nil {
				return fmt.Errorf("factorize: input %s names unknown query %s", in.Expr.Key(), cqID)
			}
			e.uses[cqID] = append([]int(nil), occ.AtomOf...)
		}
		entries = append(entries, e)
	}

	// Queries fully covered by a single input terminate immediately.
	for _, e := range entries {
		for cqID, atomOf := range e.uses {
			q := byID[cqID]
			if len(atomOf) == len(q.Atoms) && !done[cqID] {
				if e.probe {
					return fmt.Errorf("factorize: query %s covered entirely by probe input", cqID)
				}
				g.SetEndpoint(q, e.node, atomOf)
				hasEndpoint[e.node] = true
				done[cqID] = true
				delete(e.uses, cqID)
			}
		}
	}

	for !allDone(byID, done) {
		cand := bestMerge(entries, byID, done, cat)
		if cand == nil {
			return fmt.Errorf("factorize: no applicable merge but %d queries unfinished", len(byID)-len(done))
		}
		entries = applyMerge(g, entries, cand, byID, done, hasEndpoint, created, ensure)
	}
	g.PruneOrphans(created)
	return g.Validate()
}

func allDone(byID map[string]*cq.CQ, done map[string]bool) bool {
	return len(done) == len(byID)
}

// merge is one candidate step: join entries a and b for the query group.
type merge struct {
	a, b    int // entry indexes
	exprKey string
	group   []string // cq ids (sorted)
	card    float64
}

// bestMerge scans frontier pairs for the join step shared by the most
// queries, breaking ties toward the smaller estimated result then the key.
func bestMerge(entries []*entry, byID map[string]*cq.CQ, done map[string]bool, cat *catalog.Catalog) *merge {
	var best *merge
	better := func(m *merge) bool {
		if best == nil {
			return true
		}
		if len(m.group) != len(best.group) {
			return len(m.group) > len(best.group)
		}
		if m.card != best.card {
			return m.card < best.card
		}
		return m.exprKey < best.exprKey
	}
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			ea, eb := entries[i], entries[j]
			if ea.probe && eb.probe {
				continue // an m-join needs a streaming side
			}
			// Group shared queries by the canonical combined expression.
			groups := map[string][]string{}
			cards := map[string]float64{}
			for cqID, ua := range ea.uses {
				ub, ok := eb.uses[cqID]
				if !ok || done[cqID] {
					continue
				}
				q := byID[cqID]
				idxs := append(append([]int(nil), ua...), ub...)
				sort.Ints(idxs)
				if !q.Connected(idxs) {
					continue
				}
				expr, _ := q.SubExpr(idxs)
				groups[expr.Key()] = append(groups[expr.Key()], cqID)
				cards[expr.Key()] = cat.EstimateCard(expr)
			}
			for key, ids := range groups {
				sort.Strings(ids)
				m := &merge{a: i, b: j, exprKey: key, group: ids, card: cards[key]}
				if better(m) {
					best = m
				}
			}
		}
	}
	return best
}

// applyMerge executes a merge step: creates (or reuses) the join node,
// wires edges (absorbing exclusive upstream joins into an m-way node),
// updates frontier uses, and registers endpoints for queries now complete.
func applyMerge(g *plangraph.Graph, entries []*entry, m *merge, byID map[string]*cq.CQ, done map[string]bool, hasEndpoint map[*plangraph.Node]bool, created map[*plangraph.Node]bool, ensure func(plangraph.Kind, *cq.Expr, string) *plangraph.Node) []*entry {
	ea, eb := entries[m.a], entries[m.b]
	rep := byID[m.group[0]]
	idxs := append(append([]int(nil), ea.uses[rep.ID]...), eb.uses[rep.ID]...)
	sort.Ints(idxs)
	expr, mapping := rep.SubExpr(idxs) // mapping: expr atom -> rep atom idx
	// invMap: rep atom idx -> expr atom position.
	invMap := map[int]int{}
	for p, ai := range mapping {
		invMap[ai] = p
	}
	refCount := map[*plangraph.Node]int{}
	for _, e := range entries {
		refCount[e.node]++
	}
	node := g.Node(g.NodeKey(plangraph.Join, expr.Key()))
	fresh := node == nil
	if fresh {
		node = ensure(plangraph.Join, expr, "")
		for _, side := range []*entry{ea, eb} {
			atomMap := make([]int, len(side.node.Expr.Atoms))
			for a, repAtom := range side.uses[rep.ID] {
				atomMap[a] = invMap[repAtom]
			}
			if refCount[side.node] == 1 && created[side.node] && absorbable(side, m.group, hasEndpoint) {
				// Collapse the upstream join into this m-way node.
				for _, ie := range side.node.Inputs {
					composed := make([]int, len(ie.AtomMap))
					for fi, mid := range ie.AtomMap {
						composed[fi] = atomMap[mid]
					}
					g.Connect(ie.From, node, composed, ie.Probe)
					removeConsumer(ie.From, ie)
				}
				g.RemoveNode(side.node)
			} else {
				g.Connect(side.node, node, atomMap, side.probe)
			}
		}
	}
	// Build the new frontier entry with per-query atom mappings.
	ne := &entry{node: node, uses: map[string][]int{}}
	for _, cqID := range m.group {
		q := byID[cqID]
		qidxs := append(append([]int(nil), ea.uses[cqID]...), eb.uses[cqID]...)
		sort.Ints(qidxs)
		qexpr, qmap := q.SubExpr(qidxs)
		if qexpr.Key() != expr.Key() {
			// Group membership guaranteed key equality; defensive.
			panic("factorize: group key mismatch for " + cqID)
		}
		ne.uses[cqID] = qmap
		delete(ea.uses, cqID)
		delete(eb.uses, cqID)
		if len(qmap) == len(q.Atoms) {
			g.SetEndpoint(q, node, qmap)
			hasEndpoint[node] = true
			done[cqID] = true
			delete(ne.uses, cqID)
		}
	}
	var out []*entry
	for _, e := range entries {
		if len(e.uses) > 0 {
			out = append(out, e)
		}
	}
	if len(ne.uses) > 0 {
		out = append(out, ne)
	}
	return out
}

// absorbable reports whether a frontier join node can be collapsed into its
// consumer: it must be a join used by exactly the merging group, feed nothing
// else, and serve no endpoint.
func absorbable(side *entry, group []string, hasEndpoint map[*plangraph.Node]bool) bool {
	if side.node.Kind != plangraph.Join || len(side.node.Consumers) > 0 || hasEndpoint[side.node] {
		return false
	}
	if len(side.uses) != len(group) {
		return false
	}
	for _, id := range group {
		if _, ok := side.uses[id]; !ok {
			return false
		}
	}
	return true
}

func removeConsumer(n *plangraph.Node, e *plangraph.Edge) {
	for i, c := range n.Consumers {
		if c == e {
			n.Consumers = append(n.Consumers[:i], n.Consumers[i+1:]...)
			return
		}
	}
}
