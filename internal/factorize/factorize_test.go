package factorize

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/costmodel"
	"repro/internal/cq"
	"repro/internal/dist"
	"repro/internal/mqo"
	"repro/internal/plangraph"
	"repro/internal/relationdb"
	"repro/internal/scoring"
	"repro/internal/tuple"
)

func fixture(t *testing.T, n int) (*costmodel.Model, *catalog.Catalog) {
	t.Helper()
	cat := catalog.New()
	// A large score-less bridge relation: never streamable, never pushable.
	xs := tuple.NewSchema("X",
		tuple.Column{Name: "a", Type: tuple.KindInt},
		tuple.Column{Name: "b", Type: tuple.KindInt},
	)
	xrng := dist.New(999)
	var xrows []*tuple.Tuple
	for r := 0; r < 4000; r++ {
		xrows = append(xrows, tuple.New(xs, tuple.Int(int64(xrng.Intn(300))), tuple.Int(int64(xrng.Intn(300)))))
	}
	cat.AddRelation("db", relationdb.NewRelation(xs, xrows))
	for i := 0; i < n; i++ {
		s := tuple.NewSchema(rel(i),
			tuple.Column{Name: "a", Type: tuple.KindInt},
			tuple.Column{Name: "b", Type: tuple.KindInt},
			tuple.Column{Name: "score", Type: tuple.KindFloat, Score: true},
		)
		rng := dist.New(uint64(i) + 3)
		var rows []*tuple.Tuple
		for r := 0; r < 300; r++ {
			rows = append(rows, tuple.New(s, tuple.Int(int64(rng.Intn(300))), tuple.Int(int64(rng.Intn(300))), tuple.Float(rng.Float64())))
		}
		cat.AddRelation("db", relationdb.NewRelation(s, rows))
	}
	return costmodel.New(cat, costmodel.DefaultParams()), cat
}

func rel(i int) string { return string(rune('P' + i)) }

func chain(id string, start, n int) *cq.CQ {
	atoms := make([]*cq.Atom, n)
	for i := 0; i < n; i++ {
		atoms[i] = &cq.Atom{Rel: rel(start + i), DB: "db", Args: []cq.Term{cq.V(i), cq.V(i + 1), cq.V(50 + i)}}
	}
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return &cq.CQ{ID: id, UQID: "U", Atoms: atoms, Model: scoring.QSystem(0, w)}
}

func buildFor(t *testing.T, qs []*cq.CQ) *plangraph.Graph {
	t.Helper()
	cm, cat := fixture(t, 8)
	res, err := mqo.Optimize(qs, cm, mqo.Config{})
	if err != nil {
		t.Fatal(err)
	}
	g := plangraph.New("")
	if err := Build(g, qs, res.Inputs, cat); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildSingleQuery(t *testing.T) {
	q := chain("q1", 0, 4)
	g := buildFor(t, []*cq.CQ{q})
	ep := g.Endpoint("q1")
	if ep == nil {
		t.Fatal("no endpoint")
	}
	if len(ep.AtomMap) != 4 {
		t.Errorf("endpoint covers %d atoms", len(ep.AtomMap))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildSharesAcrossQueries(t *testing.T) {
	qs := []*cq.CQ{chain("q1", 0, 4), chain("q2", 0, 3), chain("q3", 0, 4)}
	// q3 is structurally identical to q1: same terminal node expected.
	g := buildFor(t, qs)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	e1, e3 := g.Endpoint("q1"), g.Endpoint("q3")
	if e1.Node != e3.Node {
		t.Error("identical queries should share their terminal node")
	}
}

// bridged builds P(x0,x1) ⋈ X(x1,x2) ⋈ last(x2,x3): the score-less X cannot
// join a pushed-down stream, forcing a middleware m-join.
func bridged(id string, last int) *cq.CQ {
	atoms := []*cq.Atom{
		{Rel: rel(0), DB: "db", Args: []cq.Term{cq.V(0), cq.V(1), cq.V(50)}},
		{Rel: "X", DB: "db", Args: []cq.Term{cq.V(1), cq.V(2)}},
		{Rel: rel(last), DB: "db", Args: []cq.Term{cq.V(2), cq.V(3), cq.V(51)}},
	}
	return &cq.CQ{ID: id, UQID: "U", Atoms: atoms, Model: scoring.QSystem(0, []float64{1, 1, 1})}
}

func TestBuildInsertsSplitsForDivergingQueries(t *testing.T) {
	// Two queries share the P ⋈ X prefix and diverge on the last relation:
	// the shared prefix must feed both through a split (Figure 4's shape).
	qs := []*cq.CQ{bridged("q1", 2), bridged("q2", 3)}
	g := buildFor(t, qs)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Stats().Splits == 0 {
		t.Log(g.Dump())
		t.Error("diverging queries with a common prefix produced no split")
	}
	if g.Endpoint("q1").Node == g.Endpoint("q2").Node {
		t.Error("diverging queries must have distinct terminals")
	}
}

func TestBuildMWayCollapse(t *testing.T) {
	// A single 5-atom query with no sharing partners should factor into few
	// m-way joins rather than a deep binary chain.
	q := chain("q1", 0, 5)
	g := buildFor(t, []*cq.CQ{q})
	joins := 0
	maxInputs := 0
	for _, n := range g.Nodes() {
		if n.Kind == plangraph.Join {
			joins++
			if len(n.Inputs) > maxInputs {
				maxInputs = len(n.Inputs)
			}
		}
	}
	if joins > 2 {
		t.Log(g.Dump())
		t.Errorf("expected ≤2 join nodes for an unshared query, got %d", joins)
	}
	if maxInputs < 3 {
		t.Errorf("expected an m-way join (≥3 inputs), got max %d", maxInputs)
	}
}

func TestBuildIntoLiveGraphReusesNodes(t *testing.T) {
	cm, cat := fixture(t, 8)
	g := plangraph.New("")
	q1 := chain("q1", 0, 4)
	res1, err := mqo.Optimize([]*cq.CQ{q1}, cm, mqo.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Build(g, []*cq.CQ{q1}, res1.Inputs, cat); err != nil {
		t.Fatal(err)
	}
	nodesAfterFirst := len(g.Nodes())

	// Identical second query: grafting must add no new computation nodes.
	q2 := chain("q2", 0, 4)
	res2, err := mqo.Optimize([]*cq.CQ{q2}, cm, mqo.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Build(g, []*cq.CQ{q2}, res2.Inputs, cat); err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes()) != nodesAfterFirst {
		t.Log(g.Dump())
		t.Errorf("grafting an identical query grew the graph: %d -> %d", nodesAfterFirst, len(g.Nodes()))
	}
	if g.Endpoint("q2") == nil {
		t.Error("second endpoint missing")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildPropertyRandomBatches(t *testing.T) {
	cm, cat := fixture(t, 8)
	rng := dist.New(17)
	for trial := 0; trial < 40; trial++ {
		var qs []*cq.CQ
		nq := 1 + rng.Intn(4)
		for i := 0; i < nq; i++ {
			start := rng.Intn(4)
			n := 2 + rng.Intn(4)
			qs = append(qs, chain(rel(trial)+"-"+rel(i)+"-q", start, n))
		}
		res, err := mqo.Optimize(qs, cm, mqo.Config{MaxCandidates: 6, SearchNodeBudget: 4000})
		if err != nil {
			t.Fatalf("trial %d optimize: %v", trial, err)
		}
		g := plangraph.New("")
		if err := Build(g, qs, res.Inputs, cat); err != nil {
			t.Fatalf("trial %d build: %v", trial, err)
		}
		for _, q := range qs {
			ep := g.Endpoint(q.ID)
			if ep == nil {
				t.Fatalf("trial %d: no endpoint for %s", trial, q.ID)
			}
			if len(ep.AtomMap) != len(q.Atoms) {
				t.Fatalf("trial %d: endpoint arity %d != %d", trial, len(ep.AtomMap), len(q.Atoms))
			}
		}
	}
}
