// Package core assembles the paper's primary contribution — the shared,
// pipelined, reusable top-k query processor of §3–§6 — from its component
// packages, providing the one-call construction the public qsys facade and
// the execution runner both build upon:
//
//	mqo        multi-query optimization: AND-OR memo, pruning heuristics,
//	           BestPlan (Algorithm 1)                              — §5.1
//	factorize  plan-graph factorization with splits and m-way joins — §5.2
//	plangraph  the query plan graph                                  — §4
//	operator   access modules, m-joins (STeM eddies), rank-merge     — §4.1
//	atc        the execution coordinator                             — §4.2
//	qsm        grafting, epochs, state recovery, eviction            — §6
//
// A Pipeline is one middleware execution thread: one plan graph, one ATC,
// one query state manager, one virtual clock. Everything a pipeline learns
// (stream positions, node output logs, probe caches, observed cardinalities)
// survives between Admit calls — that persistence is the paper's thesis.
package core

import (
	"repro/internal/atc"
	"repro/internal/batcher"
	"repro/internal/catalog"
	"repro/internal/costmodel"
	"repro/internal/cq"
	"repro/internal/dist"
	"repro/internal/metrics"
	"repro/internal/mqo"
	"repro/internal/operator"
	"repro/internal/plangraph"
	"repro/internal/qsm"
	"repro/internal/remotedb"
	"repro/internal/simclock"
)

// Pipeline is one continuously running Q System middleware thread.
type Pipeline struct {
	// Env carries the clock, delay model and work counters.
	Env *operator.Env
	// Graph is the live query plan graph.
	Graph *plangraph.Graph
	// ATC coordinates execution.
	ATC *atc.ATC
	// Manager owns optimization, grafting and state (§6).
	Manager *qsm.Manager
	// Catalog is the pipeline's private statistics fork.
	Catalog *catalog.Catalog
}

// Options configures a pipeline.
type Options struct {
	// Mode selects how much sharing the optimizer exploits (§7.1).
	Mode qsm.ShareMode
	// Seed drives the deterministic delay model.
	Seed uint64
	// MemoryBudget bounds retained state in rows (0 = unbounded, §6.3).
	MemoryBudget int
	// RealTime makes delays sleep instead of advancing a virtual clock.
	RealTime bool
	// ChargeOptimizer adds measured optimization time to the clock (§7.4).
	ChargeOptimizer bool
	// CostParams prices the cost model; zero value uses defaults.
	CostParams costmodel.Params
	// BatchRows is the executor's mini-batch target (0 = the default
	// operator.DefaultBatchRows; <=1 selects the exact per-row engine).
	// Batch size never changes results — digests and work counters are
	// byte-identical at any setting.
	BatchRows int
}

// NewPipeline wires a fresh middleware thread over the fleet. The catalog is
// forked: reuse accounting is pipeline-local (§6.1) while relation statistics
// stay shared.
func NewPipeline(fleet *remotedb.Fleet, cat *catalog.Catalog, opts Options) *Pipeline {
	var clock simclock.Clock
	if opts.RealTime {
		clock = simclock.NewReal()
	} else {
		clock = simclock.NewVirtual(0)
	}
	env := &operator.Env{
		Clock:   clock,
		Delays:  simclock.DefaultDelays(dist.New(opts.Seed + 1)),
		Metrics: &metrics.Counters{},
	}
	graph := plangraph.New("")
	controller := atc.New(graph, env, fleet)
	if opts.BatchRows != 0 {
		controller.SetBatchRows(opts.BatchRows)
	}
	fork := cat.Fork()
	params := opts.CostParams
	if params == (costmodel.Params{}) {
		params = costmodel.DefaultParams()
	}
	mgr := qsm.New(graph, controller, fork, costmodel.New(fork, params), opts.Mode)
	mgr.MemoryBudget = opts.MemoryBudget
	mgr.ChargeOptimizer = opts.ChargeOptimizer
	return &Pipeline{Env: env, Graph: graph, ATC: controller, Manager: mgr, Catalog: fork}
}

// Admit optimizes a batch of user queries against the pipeline's retained
// state and grafts them into the running plan graph (§6).
func (p *Pipeline) Admit(subs []batcher.Submission, opt mqo.Config) (*qsm.AdmitReport, error) {
	return p.Manager.Admit(subs, opt)
}

// RunUntil drives the ATC round-robin (§4.2) until done returns true or all
// admitted queries finish. It returns whether work remains.
func (p *Pipeline) RunUntil(done func() bool) bool {
	for {
		if done != nil && done() {
			return true
		}
		if !p.ATC.RunRound() {
			p.Manager.SyncCatalog()
			return false
		}
	}
}

// Drain runs every admitted query to completion and feeds observed statistics
// back to the catalog.
func (p *Pipeline) Drain() { p.RunUntil(nil) }

// Results returns the finished user queries' rank-merge states.
func (p *Pipeline) Results() []*atc.MergeState { return p.ATC.Merges() }

// Snapshot reports accumulated work (Figure 8/10 counters).
func (p *Pipeline) Snapshot() metrics.Snapshot { return p.Env.Metrics.Snapshot() }

// FindMerge returns the merge state for a user query id, or nil.
func (p *Pipeline) FindMerge(uqID string) *atc.MergeState {
	for _, m := range p.ATC.Merges() {
		if m.RM.UQ.ID == uqID {
			return m
		}
	}
	return nil
}

// UQ re-exports the user-query type for constructors of custom pipelines.
type UQ = cq.UQ
