package core_test

import (
	"testing"

	"repro/internal/batcher"
	"repro/internal/core"
	"repro/internal/mqo"
	"repro/internal/qsm"
	"repro/internal/workload"
)

func TestPipelineEndToEnd(t *testing.T) {
	w, err := workload.Bio()
	if err != nil {
		t.Fatal(err)
	}
	p := core.NewPipeline(w.Fleet, w.Catalog, core.Options{Mode: qsm.ShareAll, Seed: 3})

	// Admit the scenario's first two (concurrent) keyword queries together.
	subs := []batcher.Submission{
		{At: w.Submissions[0].At, UQ: w.Submissions[0].UQ},
		{At: w.Submissions[1].At, UQ: w.Submissions[1].UQ},
	}
	rep, err := p.Admit(subs, mqo.Config{K: 50})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epoch != 1 {
		t.Errorf("first admit epoch = %d", rep.Epoch)
	}
	p.Drain()
	for _, uq := range []string{"UQ1", "UQ2"} {
		m := p.FindMerge(uq)
		if m == nil || !m.Done || len(m.RM.Results()) == 0 {
			t.Fatalf("%s did not finish with results", uq)
		}
	}
	before := p.Snapshot().TuplesConsumed()

	// Graft the refinement (KQ3) onto the warm pipeline.
	if _, err := p.Admit([]batcher.Submission{{At: p.Env.Clock.Now(), UQ: w.Submissions[2].UQ}}, mqo.Config{K: 50}); err != nil {
		t.Fatal(err)
	}
	p.Drain()
	m := p.FindMerge("UQ3")
	if m == nil || len(m.RM.Results()) == 0 {
		t.Fatal("UQ3 did not produce results")
	}
	delta := p.Snapshot().TuplesConsumed() - before
	if delta <= 0 {
		t.Log("UQ3 answered entirely from reused state")
	}
	if p.Graph.Stats().Endpoints != 0 {
		t.Errorf("finished queries should have unlinked endpoints, %d remain", p.Graph.Stats().Endpoints)
	}
}

func TestPipelineRunUntil(t *testing.T) {
	w, err := workload.Bio()
	if err != nil {
		t.Fatal(err)
	}
	p := core.NewPipeline(w.Fleet, w.Catalog, core.Options{Mode: qsm.ShareAll, Seed: 3})
	if _, err := p.Admit([]batcher.Submission{{At: 0, UQ: w.Submissions[0].UQ}}, mqo.Config{K: 10}); err != nil {
		t.Fatal(err)
	}
	calls := 0
	stopped := p.RunUntil(func() bool { calls++; return calls > 3 })
	if !stopped {
		t.Log("pipeline finished before the stop condition — acceptable for tiny queries")
	}
	p.Drain()
	if m := p.FindMerge("UQ1"); m == nil || !m.Done {
		t.Fatal("query did not complete after Drain")
	}
}
