package scoring

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dist"
)

func TestDiscoverModel(t *testing.T) {
	m := Discover(4)
	if m.AggKind != Sum || m.Arity() != 4 {
		t.Fatalf("model: %v", m)
	}
	// C(t) = Σ score/size.
	got := m.Score([]float64{1, 1, 1, 1})
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("all-ones score = %v, want 1", got)
	}
	got = m.Score([]float64{0.4, 0.8, 0, 0})
	if math.Abs(got-0.3) > 1e-12 {
		t.Errorf("score = %v, want 0.3", got)
	}
}

func TestQSystemModel(t *testing.T) {
	// C(t) = 2^{-Σ edge costs} · Π wᵢ·sᵢ.
	m := QSystem(2, []float64{1, 1, 1})
	got := m.Score([]float64{1, 1, 1})
	if math.Abs(got-0.25) > 1e-12 {
		t.Errorf("static component wrong: %v, want 2^-2", got)
	}
	got = m.Score([]float64{0.5, 0.5, 1})
	if math.Abs(got-0.0625) > 1e-12 {
		t.Errorf("score = %v", got)
	}
}

func TestBANKSModel(t *testing.T) {
	m := BANKS(0.8, []float64{1, 2}, 0.5)
	got := m.Score([]float64{1, 1})
	want := 0.8*(1+2) + 0.2*0.5
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("score = %v, want %v", got, want)
	}
}

func TestScoreArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("arity mismatch should panic")
		}
	}()
	Discover(2).Score([]float64{1})
}

// monotone: raising any atom score must not lower the total.
func TestScoreMonotone(t *testing.T) {
	models := []*Model{
		Discover(3),
		QSystem(1.5, []float64{0.9, 1, 0.7}),
		BANKS(0.6, []float64{1, 0.5, 2}, 0.3),
	}
	f := func(a, b, c uint8, idx uint8) bool {
		s := []float64{float64(a) / 255, float64(b) / 255, float64(c) / 255}
		i := int(idx) % 3
		for _, m := range models {
			before := m.Score(s)
			bumped := append([]float64(nil), s...)
			bumped[i] = math.Min(1, bumped[i]+0.1)
			if m.Score(bumped) < before-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Bound must upper-bound Score for every atom-score vector satisfying the
// group constraints — verified against random feasible points.
func TestBoundDominatesFeasibleScores(t *testing.T) {
	rng := dist.New(77)
	models := []*Model{
		Discover(4),
		QSystem(1, []float64{1, 0.8, 1, 0.9}),
		BANKS(0.7, []float64{1, 1, 0.5, 2}, 0.4),
	}
	for trial := 0; trial < 300; trial++ {
		caps := make([]float64, 4)
		for i := range caps {
			caps[i] = 0.05 + 0.95*rng.Float64()
		}
		group := Group{Atoms: []int{0, 1}, ProductCap: 0.02 + rng.Float64()*caps[0]*caps[1]}
		for _, m := range models {
			bound := m.Bound(caps, []Group{group})
			// Sample feasible score vectors and check none exceeds bound.
			for s := 0; s < 40; s++ {
				v := make([]float64, 4)
				for i := range v {
					v[i] = caps[i] * rng.Float64()
				}
				// Enforce the product constraint by scaling if violated.
				if p := v[0] * v[1]; p > group.ProductCap {
					f := math.Sqrt(group.ProductCap / p)
					v[0] *= f
					v[1] *= f
				}
				if got := m.Score(v); got > bound+1e-9 {
					t.Fatalf("%s: score %v exceeds bound %v (caps=%v cap=%v v=%v)",
						m.Label, got, bound, caps, group.ProductCap, v)
				}
			}
		}
	}
}

// The bound must be *tight* when the constraint binds trivially (single-atom
// group): Bound == Score at the capped corner.
func TestBoundTightSingleAtomGroup(t *testing.T) {
	m := QSystem(0, []float64{1, 1, 1})
	caps := []float64{1, 1, 1}
	b := m.Bound(caps, []Group{{Atoms: []int{0}, ProductCap: 0.3}})
	if math.Abs(b-0.3) > 1e-12 {
		t.Errorf("bound = %v, want 0.3", b)
	}
	d := Discover(3)
	b = d.Bound(caps, []Group{{Atoms: []int{0}, ProductCap: 0.3}})
	want := (0.3 + 1 + 1) / 3
	if math.Abs(b-want) > 1e-12 {
		t.Errorf("bound = %v, want %v", b, want)
	}
}

func TestBoundInactiveConstraint(t *testing.T) {
	m := Discover(3)
	caps := []float64{0.2, 0.3, 0.4}
	// Product cap above Π caps: constraint inactive, bound = Score(caps).
	b := m.Bound(caps, []Group{{Atoms: []int{0, 1}, ProductCap: 1}})
	if math.Abs(b-m.Score(caps)) > 1e-12 {
		t.Errorf("inactive bound = %v, want %v", b, m.Score(caps))
	}
}

func TestBoundSingleGroupMatchesBound(t *testing.T) {
	rng := dist.New(5)
	models := []*Model{
		Discover(5),
		QSystem(0.5, []float64{1, 1, 0.9, 1, 0.8}),
		BANKS(0.8, []float64{1, 2, 1, 0.5, 1}, 0.2),
	}
	for trial := 0; trial < 500; trial++ {
		caps := make([]float64, 5)
		for i := range caps {
			caps[i] = 0.1 + 0.9*rng.Float64()
		}
		atoms := []int{1, 3}
		if trial%3 == 0 {
			atoms = []int{0, 2, 4}
		}
		cap := rng.Float64()
		for _, m := range models {
			a := m.Bound(caps, []Group{{Atoms: atoms, ProductCap: cap}})
			b := m.BoundSingleGroup(caps, atoms, cap)
			if math.Abs(a-b) > 1e-12 {
				t.Fatalf("%s: Bound=%v BoundSingleGroup=%v", m.Label, a, b)
			}
		}
	}
}

func TestBoundExhaustedGroupProduct(t *testing.T) {
	m := QSystem(0, []float64{1, 1})
	b := m.Bound([]float64{1, 1}, []Group{{Atoms: []int{0}, ProductCap: 0}})
	if b != 0 {
		t.Errorf("exhausted product bound = %v, want 0", b)
	}
}

func TestMaxScoreEqualsUnconstrainedBound(t *testing.T) {
	m := QSystem(1, []float64{1, 0.5})
	maxima := []float64{0.9, 0.8}
	if m.MaxScore(maxima) != m.Score(maxima) {
		t.Error("MaxScore should equal Score at maxima")
	}
}

func TestModelString(t *testing.T) {
	if Discover(2).String() == "" || Agg(Sum).String() != "sum" || Agg(Product).String() != "product" {
		t.Error("string rendering broken")
	}
}
