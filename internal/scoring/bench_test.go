package scoring

import "testing"

func BenchmarkScoreProduct(b *testing.B) {
	m := QSystem(0.5, []float64{1, 1, 0.9, 0.8, 1})
	s := []float64{0.9, 0.4, 0.7, 0.2, 0.8}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Score(s)
	}
}

func BenchmarkBoundSingleGroup(b *testing.B) {
	m := Discover(5)
	caps := []float64{1, 0.9, 0.8, 1, 0.7}
	atoms := []int{1, 3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.BoundSingleGroup(caps, atoms, 0.35)
	}
}
