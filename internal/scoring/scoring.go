// Package scoring implements the paper's three representative scoring models
// (§2.1) — DISCOVER, the Q System, and BANKS/BLINKS-style — under one
// monotone algebra, together with the upper-bound machinery U(C) that the
// rank-merge operator and the ATC use to maintain thresholds (§4.1–4.2).
//
// Every model maps a result tuple t of a conjunctive query CQ to
//
//	C(t) = static ⊙ w₁·s₁ ⊙ w₂·s₂ ⊙ … ⊙ wₙ·sₙ
//
// where sᵢ is the score-attribute value of the base tuple bound to CQ's i'th
// atom, wᵢ a per-atom weight, static a per-query constant, and ⊙ either + or
// ×. All three published models instantiate this algebra:
//
//   - DISCOVER [12,13]: C(t) = Σᵢ score(tᵢ)/size(CQ) → Sum, wᵢ = 1/size.
//   - Q System [32,33]: C(t) = 2^(−c), c = Σ_e c_e + Σᵢ cost(tᵢ). With
//     cost(tᵢ) = −log₂ sᵢ this is 2^(−Σ c_e) · Πᵢ sᵢ → Product with
//     static = 2^(−Σ edge costs).
//   - BANKS/BLINKS [2,11]: monotone combination of node scores and edge
//     weights → Sum with per-node weights and an edge-derived static term.
//
// Because ⊙ is monotone nondecreasing in every sᵢ, an upper bound on C over
// all *unseen* results follows from upper bounds on the unseen sᵢ. Inputs
// that stream multi-atom pushed-down expressions bound the *product* of their
// atoms' scores (their streams are sorted by score product); Bound solves the
// induced relaxation exactly for both aggregations.
package scoring

import (
	"fmt"
	"math"
)

// Agg selects the monotone aggregation combining per-atom contributions.
type Agg uint8

const (
	// Sum combines contributions additively (DISCOVER, BANKS).
	Sum Agg = iota
	// Product combines contributions multiplicatively (Q System).
	Product
)

// String returns "sum" or "product".
func (a Agg) String() string {
	if a == Product {
		return "product"
	}
	return "sum"
}

// Model is a concrete monotone scoring function for one conjunctive query.
// Atom order matches the CQ's atom order. The zero Model is not valid; use a
// constructor.
type Model struct {
	// AggKind is the aggregation combining atom contributions.
	AggKind Agg
	// Static is the query's static score component: additive for Sum,
	// multiplicative for Product (§2.1 "static component").
	Static float64
	// Weights holds one multiplicative weight per atom.
	Weights []float64
	// Label names the model for diagnostics ("discover", "qsystem", "banks").
	Label string
}

// Discover returns the DISCOVER model for a query with n atoms:
// C(t) = Σ score(tᵢ)/n.
func Discover(n int) *Model {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / float64(n)
	}
	return &Model{AggKind: Sum, Static: 0, Weights: w, Label: "discover"}
}

// QSystem returns the Q System model: C(t) = 2^(−Σ edgeCosts) · Π sᵢ^(wᵢ=1),
// with per-atom authority weights multiplying each tuple score (the paper's
// node costs; weight 1 = fully authoritative).
func QSystem(edgeCostSum float64, atomWeights []float64) *Model {
	w := append([]float64(nil), atomWeights...)
	return &Model{AggKind: Product, Static: math.Exp2(-edgeCostSum), Weights: w, Label: "qsystem"}
}

// BANKS returns a BANKS/BLINKS-style model: C(t) = λ·Σ wᵢ·sᵢ + (1−λ)·E where
// E is the (static) edge-weight term of the result tree.
func BANKS(lambda float64, atomWeights []float64, edgeTerm float64) *Model {
	w := make([]float64, len(atomWeights))
	for i, aw := range atomWeights {
		w[i] = lambda * aw
	}
	return &Model{AggKind: Sum, Static: (1 - lambda) * edgeTerm, Weights: w, Label: "banks"}
}

// Arity returns the number of atoms the model scores.
func (m *Model) Arity() int { return len(m.Weights) }

// Score evaluates C on per-atom scores (len must equal Arity).
func (m *Model) Score(atomScores []float64) float64 {
	if len(atomScores) != len(m.Weights) {
		panic(fmt.Sprintf("scoring: %s arity mismatch: got %d want %d", m.Label, len(atomScores), len(m.Weights)))
	}
	if m.AggKind == Product {
		v := m.Static
		for i, s := range atomScores {
			v *= m.Weights[i] * s
		}
		return v
	}
	v := m.Static
	for i, s := range atomScores {
		v += m.Weights[i] * s
	}
	return v
}

// Group constrains a set of atoms whose joint score product is bounded by an
// input stream's frontier (§4.1): the unseen rows of that input have
// Π_{a∈Atoms} s_a ≤ ProductCap, with each s_a additionally ≤ caps[a].
type Group struct {
	// Atoms indexes the model's atoms covered by the input.
	Atoms []int
	// ProductCap bounds the product of those atoms' scores.
	ProductCap float64
}

// Bound returns the maximum of Score over atom-score vectors s with
// 0 ≤ s_a ≤ caps[a] for every atom and Π_{a∈g.Atoms} s_a ≤ g.ProductCap for
// every group g. Groups must not overlap. Atoms in no group are free up to
// caps[a]. This is U(C) specialised to the current frontier state.
//
// For Product aggregation each group contributes min(cap_g, Π caps) exactly.
// For Sum aggregation the maximum over a product-constrained box is attained
// at a vertex where all atoms but one sit at their caps; Bound takes the max
// over the choice of the one reduced atom (see DESIGN.md).
func (m *Model) Bound(caps []float64, groups []Group) float64 {
	if len(caps) != len(m.Weights) {
		panic(fmt.Sprintf("scoring: %s bound arity mismatch: got %d want %d", m.Label, len(caps), len(m.Weights)))
	}
	if m.AggKind == Product {
		v := m.Static
		grouped := make([]bool, len(caps))
		for _, g := range groups {
			prodCaps := 1.0
			wProd := 1.0
			for _, a := range g.Atoms {
				grouped[a] = true
				prodCaps *= caps[a]
				wProd *= m.Weights[a]
			}
			v *= wProd * math.Min(prodCaps, g.ProductCap)
		}
		for a, c := range caps {
			if !grouped[a] {
				v *= m.Weights[a] * c
			}
		}
		return v
	}
	// Sum aggregation.
	v := m.Static
	grouped := make([]bool, len(caps))
	for _, g := range groups {
		for _, a := range g.Atoms {
			grouped[a] = true
		}
		v += m.sumGroupBound(caps, g)
	}
	for a, c := range caps {
		if !grouped[a] {
			v += m.Weights[a] * c
		}
	}
	return v
}

// sumGroupBound maximises Σ_{a∈g} w_a·s_a subject to s_a ≤ caps[a] and
// Π s_a ≤ g.ProductCap.
func (m *Model) sumGroupBound(caps []float64, g Group) float64 {
	prodAll := 1.0
	for _, a := range g.Atoms {
		prodAll *= caps[a]
	}
	if prodAll <= g.ProductCap || len(g.Atoms) == 1 {
		// Constraint inactive (or single atom: s ≤ min(cap, productCap)).
		if len(g.Atoms) == 1 {
			a := g.Atoms[0]
			return m.Weights[a] * math.Min(caps[a], g.ProductCap)
		}
		total := 0.0
		for _, a := range g.Atoms {
			total += m.Weights[a] * caps[a]
		}
		return total
	}
	// Vertex search: all atoms at caps except one, which absorbs the
	// product constraint.
	best := math.Inf(-1)
	for _, reduced := range g.Atoms {
		othersProd := 1.0
		othersSum := 0.0
		for _, a := range g.Atoms {
			if a == reduced {
				continue
			}
			othersProd *= caps[a]
			othersSum += m.Weights[a] * caps[a]
		}
		var sr float64
		if othersProd <= 0 {
			sr = caps[reduced]
		} else {
			sr = math.Min(caps[reduced], g.ProductCap/othersProd)
		}
		if sr < 0 {
			sr = 0
		}
		if v := othersSum + m.Weights[reduced]*sr; v > best {
			best = v
		}
	}
	return best
}

// MaxScore returns U(C) with every atom at the given per-atom maxima — the
// query's overall score upper bound used to order CQ activation (§3).
func (m *Model) MaxScore(maxima []float64) float64 {
	return m.Score(maxima)
}

// BoundSingleGroup is the allocation-free fast path of Bound for exactly one
// group — the shape the rank-merge threshold evaluates on every scheduling
// step (§4.1). It equals Bound(caps, []Group{{Atoms: atoms, ProductCap:
// productCap}}).
func (m *Model) BoundSingleGroup(caps []float64, atoms []int, productCap float64) float64 {
	inGroup := func(a int) bool {
		for _, g := range atoms {
			if g == a {
				return true
			}
		}
		return false
	}
	if m.AggKind == Product {
		v := m.Static
		groupCaps := 1.0
		for a, c := range caps {
			if inGroup(a) {
				groupCaps *= c
				v *= m.Weights[a]
			} else {
				v *= m.Weights[a] * c
			}
		}
		return v * math.Min(groupCaps, productCap)
	}
	v := m.Static
	for a, c := range caps {
		if !inGroup(a) {
			v += m.Weights[a] * c
		}
	}
	return v + m.sumGroupBound(caps, Group{Atoms: atoms, ProductCap: productCap})
}

// String describes the model.
func (m *Model) String() string {
	return fmt.Sprintf("%s(%s, static=%.4g, %d atoms)", m.Label, m.AggKind, m.Static, len(m.Weights))
}
