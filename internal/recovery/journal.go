package recovery

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// The admission journal is a JSON-lines append log in the shard's recovery
// directory, deliberately independent of checkpoint generations: a crash
// before the first checkpoint ever commits still yields the exact in-flight
// set. Each admitted query appends an "a" record (fsynced before the engine
// sees the query, so a journal gap can never hide an admitted merge); each
// completion appends a "d" record without fsync — losing one only
// over-reports the abort set, and re-dispatch resubmits a query only when
// its own RPC actually failed, so over-reporting is harmless. At every
// checkpoint the journal is rewritten to just the current in-flight set
// (temp + rename), bounding its size.

type journalEntry struct {
	Op       string   `json:"op"` // "a" admitted, "d" done
	ID       string   `json:"id"`
	Keywords []string `json:"kw,omitempty"`
	K        int      `json:"k,omitempty"`
}

// Journal is one shard's admission journal. It is confined to the shard's
// executor goroutine; no locks.
type Journal struct {
	path string
	f    *os.File
	w    *bufio.Writer
}

const journalFile = "journal.log"

// OpenJournal replays the store's existing journal — admit records without a
// matching done record are the queries in flight at the crash — and reopens
// it for appending. Replay stops at the first unparsable line (a torn tail
// from the crash); everything before it is intact because admits are fsynced.
func (s *Store) OpenJournal() (*Journal, []QueryRecord, error) {
	path := filepath.Join(s.dir, journalFile)
	inflight := replayJournal(path)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("recovery: journal: %w", err)
	}
	return &Journal{path: path, f: f, w: bufio.NewWriter(f)}, inflight, nil
}

// replayJournal reads the journal and returns admitted-but-not-done queries
// in admission order. A missing file is an empty journal.
func replayJournal(path string) []QueryRecord {
	f, err := os.Open(path)
	if err != nil {
		return nil
	}
	defer f.Close()
	open := map[string]int{} // UQ id -> index in order
	var order []QueryRecord
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e journalEntry
		if err := json.Unmarshal(line, &e); err != nil {
			break // torn tail
		}
		switch e.Op {
		case "a":
			if _, ok := open[e.ID]; !ok {
				open[e.ID] = len(order)
				order = append(order, QueryRecord{ID: e.ID, Keywords: e.Keywords, K: e.K})
			}
		case "d":
			delete(open, e.ID)
		}
	}
	out := make([]QueryRecord, 0, len(open))
	for _, rec := range order {
		if _, ok := open[rec.ID]; ok {
			out = append(out, rec)
		}
	}
	return out
}

// Admit appends admit records for a batch and fsyncs them durable. It must
// return before the engine executes the batch: a query the journal does not
// know about must not run.
func (j *Journal) Admit(recs []QueryRecord) error {
	if j == nil {
		return nil
	}
	for _, r := range recs {
		if err := j.append(journalEntry{Op: "a", ID: r.ID, Keywords: r.Keywords, K: r.K}); err != nil {
			return err
		}
	}
	if err := j.w.Flush(); err != nil {
		return err
	}
	return j.f.Sync()
}

// Done appends a completion record. No fsync: a lost done only widens the
// reported abort set, never hides an admitted query.
func (j *Journal) Done(id string) error {
	if j == nil {
		return nil
	}
	if err := j.append(journalEntry{Op: "d", ID: id}); err != nil {
		return err
	}
	return j.w.Flush()
}

func (j *Journal) append(e journalEntry) error {
	data, err := json.Marshal(&e)
	if err != nil {
		return err
	}
	if _, err := j.w.Write(data); err != nil {
		return err
	}
	return j.w.WriteByte('\n')
}

// Rewrite compacts the journal to exactly the given in-flight set,
// published atomically (temp + fsync + rename + dir fsync) so a crash
// mid-compaction keeps the old journal. Called at each checkpoint with the
// shard's current in-flight queries, sorted by UQ id.
func (j *Journal) Rewrite(inflight []QueryRecord) error {
	if j == nil {
		return nil
	}
	tmp := j.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for _, r := range inflight {
		data, err := json.Marshal(&journalEntry{Op: "a", ID: r.ID, Keywords: r.Keywords, K: r.K})
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
		w.Write(data)
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, j.path); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	syncDir(filepath.Dir(j.path))
	// Swap the append handle to the new file.
	if j.f != nil {
		j.f.Close()
	}
	j.f = f
	j.w = bufio.NewWriter(f)
	return nil
}

// Close flushes and closes the journal file (the file itself persists — it
// is the crash record).
func (j *Journal) Close() error {
	if j == nil || j.f == nil {
		return nil
	}
	j.w.Flush()
	err := j.f.Close()
	j.f = nil
	return err
}
