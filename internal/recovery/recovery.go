// Package recovery is the crash-recovery tier for one shard: a durable
// checkpoint store plus an admission journal in a per-shard directory that
// survives process death.
//
// Checkpoints reuse the PR3 spill segment format (already the live-migration
// wire format): each retained plan node is one state.EncodeSegment payload,
// written as its own file and committed by an atomically-published
// generation-numbered manifest (temp + rename + dir fsync). A restarted
// shard loads the newest manifest and imports its segments through the same
// consistency gate that protects spill revival and migration — a segment
// that does not match the rebuilt graph's structure is dropped and the state
// is re-derived by source replay, never installed wrong.
//
// The admission journal records which user queries were admitted and which
// completed, so after a crash the shard knows exactly which merges were in
// flight. Those are reported as non-retryable recovered-abort sheds (the PR6
// retry contract forbids re-running a possibly-executed query from inside
// the RPC layer); the front-end's re-dispatch path may resubmit them to a
// healthy shard, where answering is safe because answers are a pure function
// of query and data.
package recovery

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/state"
)

// QueryRecord identifies one admitted user query: everything a front-end
// needs to resubmit it elsewhere.
type QueryRecord struct {
	ID       string   `json:"id"`
	Keywords []string `json:"kw"`
	K        int      `json:"k"`
}

// SegmentMeta describes one checkpointed segment file in a manifest. The
// structural fields mirror state.TopicSegment; SHA256 and Bytes let Load
// verify the file before handing its payload to the decoder.
type SegmentMeta struct {
	File      string  `json:"file"`
	Key       string  `json:"key"`
	ExprKey   string  `json:"expr_key"`
	Kind      int     `json:"kind"`
	StreamPos int     `json:"stream_pos"`
	Card      float64 `json:"card"`
	Rows      int     `json:"rows"`
	Bytes     int     `json:"bytes"`
	SHA256    string  `json:"sha256"`
}

// Manifest is the commit record of one checkpoint generation. Its atomic
// publication (temp + rename) is what makes the generation visible; segment
// files without a manifest are garbage.
type Manifest struct {
	Generation int           `json:"generation"`
	Epoch      int           `json:"epoch"`
	Segments   []SegmentMeta `json:"segments"`
}

// Checkpoint is a loaded generation, decoded back into the migration wire
// shape the engine's import path consumes.
type Checkpoint struct {
	Generation int
	// Dropped counts segment files that failed verification at load (torn,
	// corrupt, missing); their state re-derives from the sources.
	Dropped int
	Export  *state.TopicExport
}

// Store is one shard's checkpoint directory. All methods are called from a
// single goroutine (the shard's checkpoint loop / startup path); the Store
// itself holds no locks.
type Store struct {
	dir string
}

// Open creates (if needed) and opens a shard checkpoint directory.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("recovery: store needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("recovery: store dir: %w", err)
	}
	s := &Store{dir: dir}
	// Orphan temp files are uncommitted work from a crashed writer.
	if tmps, err := filepath.Glob(filepath.Join(dir, "*.tmp")); err == nil {
		for _, t := range tmps {
			os.Remove(t)
		}
	}
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

func manifestName(gen int) string { return fmt.Sprintf("manifest-%09d.json", gen) }
func segmentFile(gen, i int) string {
	return fmt.Sprintf("seg-%09d-%04d.seg", gen, i)
}

// generations lists committed manifest generations, ascending.
func (s *Store) generations() []int {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	var gens []int
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, "manifest-") || !strings.HasSuffix(name, ".json") {
			continue
		}
		g, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "manifest-"), ".json"))
		if err != nil {
			continue
		}
		gens = append(gens, g)
	}
	sort.Ints(gens)
	return gens
}

// Write publishes one checkpoint generation: every segment file is written
// and fsynced first, then the manifest commits the generation atomically
// (temp + fsync + rename + dir fsync). Older generations are garbage
// collected after the new one is durable. A crash at any point leaves
// either the previous generation or the new one loadable — never a torn mix.
func (s *Store) Write(exp *state.TopicExport) (gen int, err error) {
	gens := s.generations()
	gen = 1
	if n := len(gens); n > 0 {
		gen = gens[n-1] + 1
	}
	man := Manifest{Generation: gen, Epoch: exp.Epoch}
	for i := range exp.Segments {
		seg := &exp.Segments[i]
		name := segmentFile(gen, i)
		if err := writeDurable(filepath.Join(s.dir, name), seg.Data); err != nil {
			return 0, fmt.Errorf("recovery: segment %s: %w", name, err)
		}
		sum := sha256.Sum256(seg.Data)
		man.Segments = append(man.Segments, SegmentMeta{
			File:      name,
			Key:       seg.Key,
			ExprKey:   seg.ExprKey,
			Kind:      seg.Kind,
			StreamPos: seg.StreamPos,
			Card:      seg.Card,
			Rows:      seg.Rows,
			Bytes:     len(seg.Data),
			SHA256:    hex.EncodeToString(sum[:]),
		})
	}
	data, err := json.MarshalIndent(&man, "", " ")
	if err != nil {
		return 0, err
	}
	if err := writeDurable(filepath.Join(s.dir, manifestName(gen)), data); err != nil {
		return 0, fmt.Errorf("recovery: manifest: %w", err)
	}
	s.gc(gen)
	return gen, nil
}

// gc removes every committed generation older than keep, and any segment
// files not belonging to keep (uncommitted leftovers included).
func (s *Store) gc(keep int) {
	for _, g := range s.generations() {
		if g < keep {
			os.Remove(filepath.Join(s.dir, manifestName(g)))
		}
	}
	segs, err := filepath.Glob(filepath.Join(s.dir, "seg-*.seg"))
	if err != nil {
		return
	}
	prefix := fmt.Sprintf("seg-%09d-", keep)
	for _, p := range segs {
		if !strings.HasPrefix(filepath.Base(p), prefix) {
			os.Remove(p)
		}
	}
}

// Load opens the newest committed generation, verifying each segment file
// against the manifest's size and digest. A torn or corrupt segment is
// dropped (counted in Checkpoint.Dropped) — its state re-derives from the
// sources; the downstream structural gate re-checks everything that does
// load. An unreadable manifest falls back to the next older generation. No
// generation at all returns (nil, nil): a cold start.
func (s *Store) Load() (*Checkpoint, error) {
	gens := s.generations()
	for i := len(gens) - 1; i >= 0; i-- {
		gen := gens[i]
		data, err := os.ReadFile(filepath.Join(s.dir, manifestName(gen)))
		if err != nil {
			continue
		}
		var man Manifest
		if err := json.Unmarshal(data, &man); err != nil {
			continue
		}
		cp := &Checkpoint{
			Generation: gen,
			Export:     &state.TopicExport{Epoch: man.Epoch},
		}
		for _, m := range man.Segments {
			payload, err := os.ReadFile(filepath.Join(s.dir, m.File))
			if err != nil || len(payload) != m.Bytes {
				cp.Dropped++
				continue
			}
			sum := sha256.Sum256(payload)
			if hex.EncodeToString(sum[:]) != m.SHA256 {
				cp.Dropped++
				continue
			}
			cp.Export.Segments = append(cp.Export.Segments, state.TopicSegment{
				Key:       m.Key,
				ExprKey:   m.ExprKey,
				Kind:      m.Kind,
				StreamPos: m.StreamPos,
				Card:      m.Card,
				Rows:      m.Rows,
				Data:      payload,
			})
		}
		return cp, nil
	}
	return nil, nil
}

// writeDurable writes data to path via a temp file, fsyncs it, renames it
// into place, and fsyncs the directory — the same publish discipline as the
// spill tier's segment writes.
func writeDurable(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(filepath.Dir(path))
	return nil
}

func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// StatsSnapshot is the recovery tier's observable state, surfaced through
// the shard's /stats.
type StatsSnapshot struct {
	Enabled            bool  `json:"enabled"`
	Generation         int   `json:"generation"`
	CheckpointsWritten int64 `json:"checkpoints_written"`
	CheckpointsLoaded  int64 `json:"checkpoints_loaded"`
	SegmentsWritten    int64 `json:"segments_written"`
	SegmentsRecovered  int64 `json:"segments_recovered"`
	SegmentsDropped    int64 `json:"segments_dropped"`
	JournaledAborts    int   `json:"journaled_aborts"`
}
