package recovery

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/state"
)

func testExport(gen int) *state.TopicExport {
	exp := &state.TopicExport{Epoch: gen}
	for i := 0; i < 3; i++ {
		exp.Segments = append(exp.Segments, state.TopicSegment{
			Key:       fmt.Sprintf("node-%d", i),
			ExprKey:   fmt.Sprintf("expr-%d", i),
			Kind:      i % 2,
			StreamPos: 10 * i,
			Card:      float64(100 + i),
			Rows:      5 + i,
			Data:      []byte(fmt.Sprintf("gen%d-segment-%d-payload", gen, i)),
		})
	}
	return exp
}

func TestStoreRoundTripAndGC(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Cold start: no generation at all.
	if cp, err := st.Load(); err != nil || cp != nil {
		t.Fatalf("cold Load = (%v, %v), want (nil, nil)", cp, err)
	}

	for want := 1; want <= 3; want++ {
		gen, err := st.Write(testExport(want))
		if err != nil {
			t.Fatal(err)
		}
		if gen != want {
			t.Fatalf("Write generation = %d, want %d", gen, want)
		}
	}

	// Only the newest generation survives gc: one manifest, its segments.
	if gens := st.generations(); len(gens) != 1 || gens[0] != 3 {
		t.Fatalf("generations after gc = %v, want [3]", gens)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if len(segs) != 3 {
		t.Fatalf("segment files after gc = %d, want 3", len(segs))
	}

	cp, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	if cp == nil || cp.Generation != 3 || cp.Dropped != 0 {
		t.Fatalf("Load = %+v, want generation 3 with 0 dropped", cp)
	}
	want := testExport(3)
	if cp.Export.Epoch != want.Epoch || len(cp.Export.Segments) != len(want.Segments) {
		t.Fatalf("export mismatch: %+v", cp.Export)
	}
	for i, seg := range cp.Export.Segments {
		w := want.Segments[i]
		if seg.Key != w.Key || seg.ExprKey != w.ExprKey || seg.Kind != w.Kind ||
			seg.StreamPos != w.StreamPos || seg.Card != w.Card || seg.Rows != w.Rows ||
			string(seg.Data) != string(w.Data) {
			t.Fatalf("segment %d round-trip mismatch: got %+v want %+v", i, seg, w)
		}
	}
}

func TestLoadDropsCorruptSegment(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Write(testExport(1)); err != nil {
		t.Fatal(err)
	}

	// Flip a byte in one segment (digest mismatch), truncate another (size
	// mismatch): both must be dropped, the intact one must still load.
	bad := filepath.Join(dir, segmentFile(1, 0))
	data, err := os.ReadFile(bad)
	if err != nil {
		t.Fatal(err)
	}
	data[0] ^= 0xff
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(filepath.Join(dir, segmentFile(1, 1)), 3); err != nil {
		t.Fatal(err)
	}

	cp, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	if cp == nil || cp.Dropped != 2 || len(cp.Export.Segments) != 1 {
		t.Fatalf("Load = %+v, want 2 dropped, 1 surviving segment", cp)
	}
	if cp.Export.Segments[0].Key != "node-2" {
		t.Fatalf("surviving segment = %q, want node-2", cp.Export.Segments[0].Key)
	}
}

func TestLoadFallsBackPastTornManifest(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Write(testExport(1)); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-publication of generation 2: a torn manifest on
	// disk, generation 1's manifest intact (gc only runs after a durable
	// commit, so craft the torn file directly).
	if err := os.WriteFile(filepath.Join(dir, manifestName(2)), []byte(`{"generation":2,`), 0o644); err != nil {
		t.Fatal(err)
	}
	cp, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	if cp == nil || cp.Generation != 1 || cp.Dropped != 0 {
		t.Fatalf("Load = %+v, want fallback to generation 1", cp)
	}
}

func TestJournalReplayAdmitsMinusDones(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	jnl, inflight, err := st.OpenJournal()
	if err != nil {
		t.Fatal(err)
	}
	if len(inflight) != 0 {
		t.Fatalf("fresh journal reports %d in flight", len(inflight))
	}
	recs := []QueryRecord{
		{ID: "UQ1", Keywords: []string{"gene", "kinase"}, K: 10},
		{ID: "UQ2", Keywords: []string{"promoter"}, K: 5},
		{ID: "UQ3", Keywords: []string{"ribosome"}, K: 7},
	}
	if err := jnl.Admit(recs); err != nil {
		t.Fatal(err)
	}
	if err := jnl.Done("UQ2"); err != nil {
		t.Fatal(err)
	}
	if err := jnl.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash-append a torn tail: replay must stop there, keeping everything
	// fsynced before it.
	f, err := os.OpenFile(filepath.Join(dir, journalFile), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"op":"d","id":"UQ`)
	f.Close()

	jnl2, inflight, err := st.OpenJournal()
	if err != nil {
		t.Fatal(err)
	}
	defer jnl2.Close()
	if len(inflight) != 2 || inflight[0].ID != "UQ1" || inflight[1].ID != "UQ3" {
		t.Fatalf("replay = %+v, want [UQ1 UQ3] in admission order", inflight)
	}
	if inflight[0].K != 10 || len(inflight[0].Keywords) != 2 {
		t.Fatalf("replay lost admit payload: %+v", inflight[0])
	}
}

func TestJournalRewriteCompacts(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	jnl, _, err := st.OpenJournal()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 50; i++ {
		id := fmt.Sprintf("UQ%d", i)
		if err := jnl.Admit([]QueryRecord{{ID: id, Keywords: []string{"kw"}, K: 3}}); err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if err := jnl.Done(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	before, _ := os.Stat(filepath.Join(dir, journalFile))
	if err := jnl.Rewrite([]QueryRecord{{ID: "UQ49", Keywords: []string{"kw"}, K: 3}}); err != nil {
		t.Fatal(err)
	}
	after, _ := os.Stat(filepath.Join(dir, journalFile))
	if after.Size() >= before.Size() {
		t.Fatalf("rewrite did not shrink the journal: %d -> %d bytes", before.Size(), after.Size())
	}
	// The compacted journal must stay appendable and replay to exactly the
	// rewritten set plus later activity.
	if err := jnl.Admit([]QueryRecord{{ID: "UQ51", K: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := jnl.Close(); err != nil {
		t.Fatal(err)
	}
	_, inflight, err := st.OpenJournal()
	if err != nil {
		t.Fatal(err)
	}
	if len(inflight) != 2 || inflight[0].ID != "UQ49" || inflight[1].ID != "UQ51" {
		t.Fatalf("post-rewrite replay = %+v, want [UQ49 UQ51]", inflight)
	}
}
