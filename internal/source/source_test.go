package source

import (
	"testing"

	"repro/internal/cq"
	"repro/internal/relationdb"
	"repro/internal/remotedb"
	"repro/internal/scoring"
	"repro/internal/tuple"
)

func fixtureDB() *remotedb.DB {
	s := tuple.NewSchema("R",
		tuple.Column{Name: "id", Type: tuple.KindInt, Key: true},
		tuple.Column{Name: "fk", Type: tuple.KindInt},
		tuple.Column{Name: "score", Type: tuple.KindFloat, Score: true},
	)
	var rows []*tuple.Tuple
	for i := 0; i < 20; i++ {
		rows = append(rows, tuple.New(s, tuple.Int(int64(i)), tuple.Int(int64(i%4)), tuple.Float(1/float64(i+1))))
	}
	store := relationdb.NewStore("db")
	store.Put(relationdb.NewRelation(s, rows))
	return remotedb.New(store)
}

func baseExpr() *cq.Expr {
	q := &cq.CQ{ID: "q", Atoms: []*cq.Atom{
		{Rel: "R", DB: "db", Args: []cq.Term{cq.V(0), cq.V(1), cq.V(2)}},
	}, Model: scoring.Discover(1)}
	e, _ := q.SubExpr([]int{0})
	return e
}

func TestStreamOrderAndFrontier(t *testing.T) {
	st, err := OpenStream(fixtureDB(), baseExpr())
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != 20 || st.Pos() != 0 || st.Exhausted() {
		t.Fatalf("fresh stream state wrong: len=%d pos=%d", st.Len(), st.Pos())
	}
	if st.Frontier() != st.MaxProduct() {
		t.Error("initial frontier must equal max product")
	}
	prev := 2.0
	for i := 0; ; i++ {
		before := st.Frontier()
		r := st.Next()
		if r == nil {
			break
		}
		p := r.ScoreProduct()
		if p > before+1e-12 {
			t.Fatalf("row %d product %v exceeds prior frontier %v", i, p, before)
		}
		if p > prev+1e-12 {
			t.Fatalf("rows out of order at %d", i)
		}
		prev = p
		if !st.Exhausted() && st.Frontier() != p {
			t.Fatalf("frontier after read should equal last product")
		}
	}
	if !st.Exhausted() || st.Frontier() != 0 {
		t.Error("exhausted stream should have zero frontier")
	}
}

func TestStreamSkip(t *testing.T) {
	st, _ := OpenStream(fixtureDB(), baseExpr())
	st.Skip(5)
	if st.Pos() != 5 {
		t.Fatalf("pos after skip = %d", st.Pos())
	}
	r := st.Next()
	if r == nil || r.Part(0).Val(0).AsInt() != 5 {
		t.Errorf("skip landed wrong: %v", r)
	}
	st.Skip(1000) // beyond end clamps
	if !st.Exhausted() {
		t.Error("over-skip should exhaust")
	}
}

func TestRandomAccessCaching(t *testing.T) {
	ra := OpenRandomAccess(fixtureDB(), baseExpr())
	rows, cached, err := ra.Probe(1, tuple.Int(2))
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Error("first probe should not be cached")
	}
	if len(rows) != 5 {
		t.Errorf("probe returned %d rows, want 5", len(rows))
	}
	_, cached, _ = ra.Probe(1, tuple.Int(2))
	if !cached {
		t.Error("second identical probe should be cached")
	}
	_, cached, _ = ra.Probe(1, tuple.Int(3))
	if cached {
		t.Error("different key should not be cached")
	}
	if ra.CacheSize() == 0 {
		t.Error("cache size should be positive")
	}
	ra.DropCache()
	_, cached, _ = ra.Probe(1, tuple.Int(2))
	if cached {
		t.Error("probe after DropCache should re-fetch")
	}
}

func TestRandomAccessRequiresSingleAtom(t *testing.T) {
	q := &cq.CQ{ID: "q", Atoms: []*cq.Atom{
		{Rel: "R", DB: "db", Args: []cq.Term{cq.V(0), cq.V(1), cq.V(2)}},
		{Rel: "R2", DB: "db", Args: []cq.Term{cq.V(0), cq.V(3)}},
	}, Model: scoring.Discover(2)}
	e, _ := q.SubExpr([]int{0, 1})
	defer func() {
		if recover() == nil {
			t.Error("multi-atom random access should panic")
		}
	}()
	OpenRandomAccess(fixtureDB(), e)
}
