// Package source wraps remote-database access paths as the two source kinds
// of §3: streaming sources, which deliver a (possibly pushed-down)
// expression's rows one at a time in nonincreasing score order and expose the
// frontier bound the rank-merge thresholds depend on; and random-access
// sources, which answer key probes and memoise them in a middleware-side
// probe cache (§7.1: "we cache tuples from random probes").
package source

import (
	"repro/internal/cq"
	"repro/internal/remotedb"
	"repro/internal/tuple"
)

// Stream delivers a pushed-down expression's rows in nonincreasing
// score-product order. It is single-consumer: in a plan graph one split
// operator fans a stream's rows out to all interested operators.
type Stream struct {
	key   string
	expr  *cq.Expr
	rows  []*tuple.Row
	pos   int
	maxPr float64
}

// OpenStream materialises the expression at its remote database and returns
// a stream over the result. (The per-tuple stream delay is charged by the
// caller on every Next, as the middleware only pays when it reads.)
func OpenStream(db *remotedb.DB, e *cq.Expr) (*Stream, error) {
	rows, err := db.Evaluate(e)
	if err != nil {
		return nil, err
	}
	s := &Stream{key: e.Key(), expr: e, rows: rows, maxPr: 1}
	if len(rows) > 0 {
		s.maxPr = rows[0].ScoreProduct()
	}
	return s, nil
}

// Key returns the stream's canonical expression key.
func (s *Stream) Key() string { return s.key }

// Expr returns the streamed expression.
func (s *Stream) Expr() *cq.Expr { return s.expr }

// Next returns the next row, or nil when exhausted.
func (s *Stream) Next() *tuple.Row {
	if s.pos >= len(s.rows) {
		return nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r
}

// Skip advances past the first n rows without delivering them — used when a
// reused plan already holds those rows in middleware state (§6.1).
func (s *Stream) Skip(n int) {
	if n > len(s.rows) {
		n = len(s.rows)
	}
	s.pos = n
}

// Exhausted reports whether the stream has no more rows.
func (s *Stream) Exhausted() bool { return s.pos >= len(s.rows) }

// Pos returns how many rows have been delivered (or skipped).
func (s *Stream) Pos() int { return s.pos }

// Len returns the total result cardinality.
func (s *Stream) Len() int { return len(s.rows) }

// Frontier returns the score-product upper bound on undelivered rows: the
// score product the next row cannot exceed. It is the stream's maximum before
// any read, the last-delivered row's product afterwards, and 0 at exhaustion.
func (s *Stream) Frontier() float64 {
	if s.pos >= len(s.rows) {
		return 0
	}
	if s.pos == 0 {
		return s.maxPr
	}
	return s.rows[s.pos-1].ScoreProduct()
}

// MaxProduct returns the stream's maximum row score product.
func (s *Stream) MaxProduct() float64 { return s.maxPr }

// RandomAccess probes a single-atom expression by column value, with a
// middleware-side cache so repeated probes with the same key are free of
// remote delay.
type RandomAccess struct {
	key  string
	db   *remotedb.DB
	atom *cq.Atom

	cache map[probeKey][]*tuple.Row
}

// probeKey keys the probe cache on the comparable value form directly; the
// old string form paid a strconv allocation per probe.
type probeKey struct {
	col int
	val tuple.IndexKey
}

// OpenRandomAccess wraps the expression (which must be single-atom) as a
// probeable source.
func OpenRandomAccess(db *remotedb.DB, e *cq.Expr) *RandomAccess {
	if !e.SingleAtom() {
		panic("source: random access requires a single-atom expression")
	}
	return &RandomAccess{key: e.Key(), db: db, atom: e.Atoms[0], cache: map[probeKey][]*tuple.Row{}}
}

// Key returns the source's canonical expression key.
func (r *RandomAccess) Key() string { return r.key }

// Probe returns the rows matching col = v. cached reports whether the result
// came from the middleware cache (no remote round trip).
func (r *RandomAccess) Probe(col int, v tuple.Value) (rows []*tuple.Row, cached bool, err error) {
	pk := probeKey{col, v.IndexKey()}
	if rows, ok := r.cache[pk]; ok {
		return rows, true, nil
	}
	rows, err = r.db.Probe(r.atom, col, v)
	if err != nil {
		return nil, false, err
	}
	r.cache[pk] = rows
	return rows, false, nil
}

// CacheSize returns the number of cached probe results (for memory
// accounting by the query state manager).
func (r *RandomAccess) CacheSize() int {
	n := 0
	for _, rows := range r.cache {
		n += len(rows)
		n++ // the key itself
	}
	return n
}

// DropCache clears the probe cache (eviction path, §6.3).
func (r *RandomAccess) DropCache() { r.cache = map[probeKey][]*tuple.Row{} }
