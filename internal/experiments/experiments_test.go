package experiments

import (
	"strings"
	"testing"

	"repro/internal/exec"
)

func testCfg() Config {
	return Config{Instances: []int{1}, Seeds: []uint64{1}}.Defaults()
}

// TestTable4Shape: far fewer conjunctive queries execute than are generated
// (the paper reports 3.25–13.75 of ≤20).
func TestTable4Shape(t *testing.T) {
	res, err := Table4(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 15; i++ {
		if res.AvgCQs[i] <= 0 {
			t.Errorf("UQ%d executed no CQs", i+1)
		}
		if res.AvgCQs[i] > res.GeneratedCQ[i]+1e-9 {
			t.Errorf("UQ%d executed %v of %v generated", i+1, res.AvgCQs[i], res.GeneratedCQ[i])
		}
	}
	if !strings.Contains(res.Format(), "Table 4") {
		t.Error("format broken")
	}
}

// TestFigure7Shape: ATC-UQ ≤ ATC-CQ on average; ATC-CL is the best shared
// configuration; ATC-FULL wins on some but not most queries (§7.1).
func TestFigure7Shape(t *testing.T) {
	res, err := Figure7(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	var sum [4]float64
	fullWins := 0
	for i := 0; i < 15; i++ {
		for si, s := range Strategies {
			v := res.Seconds[s][i]
			if v <= 0 {
				t.Fatalf("%v UQ%d latency %v", s, i+1, v)
			}
			sum[si] += v
		}
		if res.Seconds[exec.StrategyFull][i] < res.Seconds[exec.StrategyUQ][i] {
			fullWins++
		}
	}
	cqSum, uqSum, fullSum, clSum := sum[0], sum[1], sum[2], sum[3]
	if uqSum > cqSum*1.05 {
		t.Errorf("ATC-UQ total %.1fs should not exceed ATC-CQ %.1fs", uqSum, cqSum)
	}
	if clSum > uqSum*1.10 {
		t.Errorf("ATC-CL total %.1fs should be competitive with ATC-UQ %.1fs", clSum, uqSum)
	}
	if fullWins == 0 || fullWins == 15 {
		t.Errorf("ATC-FULL wins %d/15 queries; the paper reports a minority (5/15)", fullWins)
	}
	_ = fullSum
	t.Logf("totals: CQ=%.1fs UQ=%.1fs FULL=%.1fs CL=%.1fs, FULL wins %d/15", cqSum, uqSum, fullSum, clSum, fullWins)
}

// TestFigure8Shape: shared configurations shift time away from stream reads.
func TestFigure8Shape(t *testing.T) {
	res, err := Figure8(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range Strategies {
		f := res.Fractions[s]
		total := f[0] + f[1] + f[2]
		if total < 0.999 || total > 1.001 {
			t.Errorf("%v fractions sum to %v", s, total)
		}
		if f[0] <= 0 || f[1] <= 0 {
			t.Errorf("%v missing stream/probe time: %v", s, f)
		}
	}
	// Stream-read share highest for ATC-CQ (it re-reads everything).
	cq := res.Fractions[exec.StrategyCQ][0]
	full := res.Fractions[exec.StrategyFull][0]
	if full > cq+0.05 {
		t.Errorf("ATC-FULL stream share %v should not exceed ATC-CQ %v", full, cq)
	}
}

// TestFigure9Shape: both optimization regimes complete every query, and
// neither degenerates (each stays within 2× of the other). The paper found
// batch optimization clearly better; in this implementation cross-time state
// reuse (grafting onto in-flight plans) captures most of proactive batching's
// benefit, so the regimes land close together — EXPERIMENTS.md discusses the
// divergence.
func TestFigure9Shape(t *testing.T) {
	res, err := Figure9(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	var single, batch float64
	for i := 0; i < 15; i++ {
		if res.SingleOpt[i] < 0 || res.BatchOpt[i] < 0 {
			// Zero is legitimate: a query fully answered from reused state
			// completes at its admission instant.
			t.Fatalf("UQ%d negative latency", i+1)
		}
		single += res.SingleOpt[i]
		batch += res.BatchOpt[i]
	}
	if batch > single*2 || single > batch*2 {
		t.Errorf("regimes diverged beyond 2x: single=%.1fs batch=%.1fs", single, batch)
	}
	if res.SingleWork <= 0 || res.BatchWork <= 0 {
		t.Error("missing work counters")
	}
	t.Logf("single=%.1fs (%.0f tuples) batch=%.1fs (%.0f tuples)", single, res.SingleWork, batch, res.BatchWork)
}

// TestFigure10Shape: work ordering FULL < CL < UQ < CQ, with the 15:5 ratio
// largest for the non-reusing configurations (paper: ≈3× for CQ/UQ, ≈1.75×
// for FULL, ≈2× for CL).
func TestFigure10Shape(t *testing.T) {
	res, err := Figure10(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	cq15 := res.Tuples15[exec.StrategyCQ]
	uq15 := res.Tuples15[exec.StrategyUQ]
	full15 := res.Tuples15[exec.StrategyFull]
	cl15 := res.Tuples15[exec.StrategyCL]
	if !(full15 < cl15 && cl15 < uq15 && uq15 < cq15) {
		t.Errorf("work ordering violated: CQ=%v UQ=%v CL=%v FULL=%v", cq15, uq15, cl15, full15)
	}
	ratioCQ := cq15 / res.Tuples5[exec.StrategyCQ]
	ratioFull := full15 / res.Tuples5[exec.StrategyFull]
	if ratioFull >= ratioCQ {
		t.Errorf("reuse should flatten FULL's growth: CQ ratio %.2f vs FULL %.2f", ratioCQ, ratioFull)
	}
	t.Logf("15:5 ratios: CQ=%.2f UQ=%.2f FULL=%.2f CL=%.2f",
		ratioCQ, uq15/res.Tuples5[exec.StrategyUQ], ratioFull, cl15/res.Tuples5[exec.StrategyCL])
}

// TestFigure11Shape: optimization time grows with candidate count.
func TestFigure11Shape(t *testing.T) {
	res, err := Figure11(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) == 0 {
		t.Fatal("no optimizer samples")
	}
	for _, s := range res.Samples {
		if s.Candidates < 0 || s.Wall < 0 || s.SearchNodes <= 0 {
			t.Errorf("bad sample %+v", s)
		}
	}
	// Search effort (nodes) must grow from the smallest to the largest
	// candidate count observed.
	first, last := res.Samples[0], res.Samples[len(res.Samples)-1]
	if last.Candidates > first.Candidates && last.SearchNodes < first.SearchNodes {
		t.Errorf("search effort did not grow: %d cands/%d nodes -> %d cands/%d nodes",
			first.Candidates, first.SearchNodes, last.Candidates, last.SearchNodes)
	}
}

// TestFigure12Shape: on the larger real-data proxy, ATC-UQ ≤ ATC-CQ and
// ATC-CL improves the late queries (§7.5: "especially in queries 7-15").
func TestFigure12Shape(t *testing.T) {
	res, err := Figure12(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters <= 1 || res.Clusters >= 15 {
		t.Errorf("ATC-CL used %d plan graphs; the paper found a handful", res.Clusters)
	}
	var cqSum, uqSum, clLate, uqLate float64
	for i := 0; i < 15; i++ {
		cqSum += res.Seconds[exec.StrategyCQ][i]
		uqSum += res.Seconds[exec.StrategyUQ][i]
		if i >= 7 {
			clLate += res.Seconds[exec.StrategyCL][i]
			uqLate += res.Seconds[exec.StrategyUQ][i]
		}
	}
	if uqSum > cqSum*1.05 {
		t.Errorf("pfam: ATC-UQ %.1fs should not exceed ATC-CQ %.1fs", uqSum, cqSum)
	}
	if clLate > uqLate*1.05 {
		t.Errorf("pfam: ATC-CL late-query total %.1fs should beat ATC-UQ %.1fs", clLate, uqLate)
	}
	t.Logf("pfam: CQ=%.1fs UQ=%.1fs, late: CL=%.1fs UQ=%.1fs (clusters=%d)", cqSum, uqSum, clLate, uqLate, res.Clusters)
}
