// Package experiments regenerates every table and figure of the paper's
// evaluation (§7). Each driver reproduces one experiment's workload,
// parameters and measurement, and returns a result that formats as the same
// rows/series the paper reports. The cmd/qsys-bench binary and the
// repository-root benchmarks call these drivers; EXPERIMENTS.md records the
// measured shapes against the published ones.
package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/costmodel"
	"repro/internal/cq"
	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/mqo"
	"repro/internal/workload"
)

// Config sizes an experiment run. The paper averaged three runs over each of
// four synthetic instances (12 runs); the zero value uses a faster default
// that preserves every reported shape.
type Config struct {
	// Instances lists the synthetic GUS instances (paper: 1-4).
	Instances []int
	// Seeds lists delay-model seeds per instance (paper: 3 runs each).
	Seeds []uint64
	// Scale sizes the synthetic data.
	Scale workload.GUSScale
	// PfamScale sizes the real-data proxy (Figure 12).
	PfamScale workload.PfamScale
	// ChargeOptimizer includes measured optimization time in latencies.
	ChargeOptimizer bool
}

// Defaults fills zero fields. Full fidelity (4 instances × 3 seeds) is what
// cmd/qsys-bench -full uses; the default keeps unit runs quick.
func (c Config) Defaults() Config {
	if len(c.Instances) == 0 {
		c.Instances = []int{1, 2}
	}
	if len(c.Seeds) == 0 {
		c.Seeds = []uint64{1}
	}
	if c.Scale == (workload.GUSScale{}) {
		c.Scale = workload.GUSScaleDefault()
	}
	if c.PfamScale == (workload.PfamScale{}) {
		c.PfamScale = workload.PfamScaleDefault()
	}
	return c
}

// FullConfig mirrors the paper's methodology: four instances, three runs.
func FullConfig() Config {
	return Config{Instances: []int{1, 2, 3, 4}, Seeds: []uint64{1, 2, 3}}.Defaults()
}

// gusOptions builds run options for a strategy over the GUS workload.
func gusOptions(strat exec.Strategy, seed uint64, charge bool) exec.Options {
	return exec.Options{
		Strategy:        strat,
		Seed:            seed,
		ChargeOptimizer: charge,
	}
}

// pfamOptions builds run options for the Pfam/InterPro proxy; its small
// schema needs the lower clustering threshold (§6.1 auto-clustering found 3
// graphs on the paper's real data).
func pfamOptions(strat exec.Strategy, seed uint64, charge bool) exec.Options {
	return exec.Options{
		Strategy:        strat,
		Seed:            seed,
		Cluster:         cluster.Config{Tm: 2, Tc: 0.5},
		ChargeOptimizer: charge,
	}
}

// Strategies lists the four §7.1 configurations in paper order.
var Strategies = []exec.Strategy{exec.StrategyCQ, exec.StrategyUQ, exec.StrategyFull, exec.StrategyCL}

// runGUS executes one strategy over one instance+seed.
func runGUS(cfg Config, instance int, seed uint64, strat exec.Strategy, subs int) (*exec.Report, error) {
	w, err := workload.GUS(instance, cfg.Scale)
	if err != nil {
		return nil, err
	}
	s := w.Submissions
	if subs > 0 && subs < len(s) {
		s = s[:subs]
	}
	return exec.Run(w.Fleet, w.Catalog, s, gusOptions(strat, seed, cfg.ChargeOptimizer))
}

// --- statistics helpers ------------------------------------------------------

// meanCI returns the mean and the 95% confidence half-interval of xs.
func meanCI(xs []float64) (mean, ci float64) {
	n := float64(len(xs))
	if n == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= n
	if n < 2 {
		return mean, 0
	}
	varSum := 0.0
	for _, x := range xs {
		varSum += (x - mean) * (x - mean)
	}
	sd := math.Sqrt(varSum / (n - 1))
	return mean, 1.96 * sd / math.Sqrt(n)
}

func secs(d time.Duration) float64 { return d.Seconds() }

// --- Table 4 -----------------------------------------------------------------

// Table4Result reports the average number of conjunctive queries executed to
// return the top-50 results of each user query (ATC-CL configuration, as the
// QS manager and ATC activate CQs only as needed).
type Table4Result struct {
	AvgCQs      [15]float64
	GeneratedCQ [15]float64
}

// Table4 runs the experiment.
func Table4(cfg Config) (*Table4Result, error) {
	cfg = cfg.Defaults()
	res := &Table4Result{}
	runs := 0
	for _, inst := range cfg.Instances {
		for _, seed := range cfg.Seeds {
			rep, err := runGUS(cfg, inst, seed, exec.StrategyCL, 0)
			if err != nil {
				return nil, err
			}
			for _, u := range rep.UQs {
				var n int
				fmt.Sscanf(u.UQ.ID, "UQ%d", &n)
				if n >= 1 && n <= 15 {
					res.AvgCQs[n-1] += float64(u.ExecutedCQs)
					res.GeneratedCQ[n-1] += float64(len(u.UQ.CQs))
				}
			}
			runs++
		}
	}
	for i := range res.AvgCQs {
		res.AvgCQs[i] /= float64(runs)
		res.GeneratedCQ[i] /= float64(runs)
	}
	return res, nil
}

// Format renders the paper's two-row table.
func (r *Table4Result) Format() string {
	var b strings.Builder
	b.WriteString("Table 4: average number of conjunctive queries executed to return top-50 results\n")
	b.WriteString("UQ:        ")
	for i := 0; i < 15; i++ {
		fmt.Fprintf(&b, "%7d", i+1)
	}
	b.WriteString("\nQueries:   ")
	for i := 0; i < 15; i++ {
		fmt.Fprintf(&b, "%7.2f", r.AvgCQs[i])
	}
	b.WriteString("\n(generated:")
	for i := 0; i < 15; i++ {
		fmt.Fprintf(&b, "%7.2f", r.GeneratedCQ[i])
	}
	b.WriteString(")\n")
	return b.String()
}

// --- Figure 7 ----------------------------------------------------------------

// Figure7Result holds per-user-query running times per strategy, with 95%
// confidence intervals across instances × seeds.
type Figure7Result struct {
	// Seconds[strategy][uq-1] is the mean latency in seconds.
	Seconds map[exec.Strategy][15]float64
	// CI holds the 95% confidence half-intervals.
	CI map[exec.Strategy][15]float64
}

// Figure7 runs the experiment.
func Figure7(cfg Config) (*Figure7Result, error) {
	cfg = cfg.Defaults()
	samples := map[exec.Strategy][15][]float64{}
	for _, strat := range Strategies {
		var per [15][]float64
		for _, inst := range cfg.Instances {
			for _, seed := range cfg.Seeds {
				rep, err := runGUS(cfg, inst, seed, strat, 0)
				if err != nil {
					return nil, err
				}
				for _, u := range rep.UQs {
					var n int
					fmt.Sscanf(u.UQ.ID, "UQ%d", &n)
					if n >= 1 && n <= 15 {
						per[n-1] = append(per[n-1], secs(u.Latency()))
					}
				}
			}
		}
		samples[strat] = per
	}
	res := &Figure7Result{Seconds: map[exec.Strategy][15]float64{}, CI: map[exec.Strategy][15]float64{}}
	for strat, per := range samples {
		var m, c [15]float64
		for i := range per {
			m[i], c[i] = meanCI(per[i])
		}
		res.Seconds[strat] = m
		res.CI[strat] = c
	}
	return res, nil
}

// Format renders the per-query series.
func (r *Figure7Result) Format() string {
	var b strings.Builder
	b.WriteString("Figure 7: running times (seconds) to return the top-50 results for each user query\n")
	fmt.Fprintf(&b, "%-6s", "UQ")
	for _, s := range Strategies {
		fmt.Fprintf(&b, "%18s", s)
	}
	b.WriteString("\n")
	for i := 0; i < 15; i++ {
		fmt.Fprintf(&b, "%-6d", i+1)
		for _, s := range Strategies {
			fmt.Fprintf(&b, "%10.2f ±%5.2f", r.Seconds[s][i], r.CI[s][i])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// --- Figure 8 ----------------------------------------------------------------

// Figure8Result holds the normalized execution-time breakdown per strategy.
type Figure8Result struct {
	// Fractions[strategy] = [stream read, random access, join] fractions.
	Fractions map[exec.Strategy][3]float64
}

// Figure8 runs the experiment (same runs as Figure 7; work re-measured).
func Figure8(cfg Config) (*Figure8Result, error) {
	cfg = cfg.Defaults()
	res := &Figure8Result{Fractions: map[exec.Strategy][3]float64{}}
	for _, strat := range Strategies {
		var tot metrics.Snapshot
		for _, inst := range cfg.Instances {
			for _, seed := range cfg.Seeds {
				rep, err := runGUS(cfg, inst, seed, strat, 0)
				if err != nil {
					return nil, err
				}
				tot = tot.Add(rep.Total())
			}
		}
		sum := secs(tot.StreamTime) + secs(tot.ProbeTime) + secs(tot.JoinTime)
		if sum == 0 {
			sum = 1
		}
		res.Fractions[strat] = [3]float64{
			secs(tot.StreamTime) / sum,
			secs(tot.ProbeTime) / sum,
			secs(tot.JoinTime) / sum,
		}
	}
	return res, nil
}

// Format renders the stacked-bar data.
func (r *Figure8Result) Format() string {
	var b strings.Builder
	b.WriteString("Figure 8: breakdown of execution time (fraction of total)\n")
	fmt.Fprintf(&b, "%-10s %12s %14s %10s\n", "", "stream-read", "random-access", "join")
	for _, s := range Strategies {
		f := r.Fractions[s]
		fmt.Fprintf(&b, "%-10s %12.3f %14.3f %10.3f\n", s, f[0], f[1], f[2])
	}
	return b.String()
}

// --- Figure 9 ----------------------------------------------------------------

// Figure9Result compares individually optimized queries (SINGLE-OPT,
// batch size 1) against batch-optimized ones (BATCH-OPT, batch size 5). The
// paper used ATC-CL with its manual clusters, which kept several same-batch
// queries in one graph; our automatic clusters are finer, so the shared graph
// (ATC-FULL) is where batch size exercises proactive multi-query optimization
// — see EXPERIMENTS.md.
type Figure9Result struct {
	SingleOpt [15]float64
	BatchOpt  [15]float64
	// SingleWork/BatchWork are total input tuples consumed per mode: the
	// work dimension of proactive sharing (see EXPERIMENTS.md).
	SingleWork float64
	BatchWork  float64
}

// Figure9 runs the experiment.
func Figure9(cfg Config) (*Figure9Result, error) {
	cfg = cfg.Defaults()
	res := &Figure9Result{}
	runs := 0
	for _, inst := range cfg.Instances {
		for _, seed := range cfg.Seeds {
			w, err := workload.GUS(inst, cfg.Scale)
			if err != nil {
				return nil, err
			}
			for _, batchSize := range []int{1, 5} {
				opts := gusOptions(exec.StrategyFull, seed, cfg.ChargeOptimizer)
				opts.BatchSize = batchSize
				rep, err := exec.Run(w.Fleet, w.Catalog, w.Submissions, opts)
				if err != nil {
					return nil, err
				}
				if batchSize == 1 {
					res.SingleWork += float64(rep.Total().TuplesConsumed())
				} else {
					res.BatchWork += float64(rep.Total().TuplesConsumed())
				}
				for _, u := range rep.UQs {
					var n int
					fmt.Sscanf(u.UQ.ID, "UQ%d", &n)
					if n < 1 || n > 15 {
						continue
					}
					if batchSize == 1 {
						res.SingleOpt[n-1] += secs(u.Latency())
					} else {
						res.BatchOpt[n-1] += secs(u.Latency())
					}
				}
			}
			runs++
		}
	}
	for i := range res.SingleOpt {
		res.SingleOpt[i] /= float64(runs)
		res.BatchOpt[i] /= float64(runs)
	}
	res.SingleWork /= float64(runs)
	res.BatchWork /= float64(runs)
	return res, nil
}

// Format renders the two series.
func (r *Figure9Result) Format() string {
	var b strings.Builder
	b.WriteString("Figure 9: running times, individually (SINGLE-OPT) versus batch-optimized (BATCH-OPT) queries [s]\n")
	fmt.Fprintf(&b, "%-6s %12s %12s\n", "UQ", "SINGLE-OPT", "BATCH-OPT")
	for i := 0; i < 15; i++ {
		fmt.Fprintf(&b, "%-6d %12.2f %12.2f\n", i+1, r.SingleOpt[i], r.BatchOpt[i])
	}
	fmt.Fprintf(&b, "total input tuples consumed: SINGLE-OPT %.0f, BATCH-OPT %.0f\n", r.SingleWork, r.BatchWork)
	return b.String()
}

// --- Figure 10 ---------------------------------------------------------------

// Figure10Result reports total work (input tuples consumed) answering the
// first 5 user queries versus all 15, per strategy.
type Figure10Result struct {
	Tuples5  map[exec.Strategy]float64
	Tuples15 map[exec.Strategy]float64
}

// Figure10 runs the experiment.
func Figure10(cfg Config) (*Figure10Result, error) {
	cfg = cfg.Defaults()
	res := &Figure10Result{Tuples5: map[exec.Strategy]float64{}, Tuples15: map[exec.Strategy]float64{}}
	runs := 0
	for _, inst := range cfg.Instances {
		for _, seed := range cfg.Seeds {
			for _, strat := range Strategies {
				rep5, err := runGUS(cfg, inst, seed, strat, 5)
				if err != nil {
					return nil, err
				}
				rep15, err := runGUS(cfg, inst, seed, strat, 0)
				if err != nil {
					return nil, err
				}
				res.Tuples5[strat] += float64(rep5.Total().TuplesConsumed())
				res.Tuples15[strat] += float64(rep15.Total().TuplesConsumed())
			}
			runs++
		}
	}
	for _, strat := range Strategies {
		res.Tuples5[strat] /= float64(runs)
		res.Tuples15[strat] /= float64(runs)
	}
	return res, nil
}

// Format renders the grouped bars.
func (r *Figure10Result) Format() string {
	var b strings.Builder
	b.WriteString("Figure 10: total work done (input tuples consumed, thousands), 5 vs 15 user queries\n")
	fmt.Fprintf(&b, "%-10s %10s %10s %8s\n", "", "5-UQ", "15-UQ", "ratio")
	for _, s := range Strategies {
		fmt.Fprintf(&b, "%-10s %10.1f %10.1f %8.2f\n", s, r.Tuples5[s]/1000, r.Tuples15[s]/1000, r.Tuples15[s]/math.Max(r.Tuples5[s], 1))
	}
	return b.String()
}

// --- Figure 11 ---------------------------------------------------------------

// Figure11Result plots multiple-query-optimization time against the number of
// candidate inputs considered for push-down.
type Figure11Result struct {
	Samples []exec.OptSample
}

// Figure11 runs the experiment: the first batch of 5 user queries is
// optimized with the candidate-input cap swept upward (and the search budget
// lifted), measuring plan-generation time against the number of candidates —
// the paper's exponential curve.
func Figure11(cfg Config) (*Figure11Result, error) {
	cfg = cfg.Defaults()
	res := &Figure11Result{}
	for _, inst := range cfg.Instances {
		w, err := workload.GUS(inst, cfg.Scale)
		if err != nil {
			return nil, err
		}
		var qs []*cq.CQ
		for _, s := range w.Submissions[:5] {
			qs = append(qs, s.UQ.CQs...)
		}
		cm := costmodel.New(w.Catalog.Fork(), costmodel.DefaultParams())
		for maxCand := 2; maxCand <= 14; maxCand += 2 {
			start := time.Now()
			opt, err := mqo.Optimize(qs, cm, mqo.Config{
				MaxCandidates:    maxCand,
				SearchNodeBudget: 4_000_000,
			})
			if err != nil {
				return nil, err
			}
			res.Samples = append(res.Samples, exec.OptSample{
				Candidates:  opt.CandidateCount,
				Wall:        time.Since(start),
				SearchNodes: opt.SearchNodes,
			})
		}
	}
	sort.Slice(res.Samples, func(i, j int) bool { return res.Samples[i].Candidates < res.Samples[j].Candidates })
	return res, nil
}

// Format renders the scatter series.
func (r *Figure11Result) Format() string {
	var b strings.Builder
	b.WriteString("Figure 11: optimization time vs number of candidate inputs\n")
	fmt.Fprintf(&b, "%-12s %14s %14s\n", "candidates", "time", "search-nodes")
	for _, s := range r.Samples {
		fmt.Fprintf(&b, "%-12d %14s %14d\n", s.Candidates, s.Wall.Round(10*time.Microsecond), s.SearchNodes)
	}
	return b.String()
}

// --- Figure 12 ---------------------------------------------------------------

// Figure12Result holds per-user-query times over the Pfam/InterPro proxy.
type Figure12Result struct {
	Seconds  map[exec.Strategy][15]float64
	Clusters int
}

// Figure12 runs the real-data experiment.
func Figure12(cfg Config) (*Figure12Result, error) {
	cfg = cfg.Defaults()
	res := &Figure12Result{Seconds: map[exec.Strategy][15]float64{}}
	for _, strat := range Strategies {
		var acc [15]float64
		runs := 0
		for _, seed := range cfg.Seeds {
			w, err := workload.Pfam(cfg.PfamScale)
			if err != nil {
				return nil, err
			}
			rep, err := exec.Run(w.Fleet, w.Catalog, w.Submissions, pfamOptions(strat, seed, cfg.ChargeOptimizer))
			if err != nil {
				return nil, err
			}
			for _, u := range rep.UQs {
				var n int
				fmt.Sscanf(u.UQ.ID, "UQ%d", &n)
				if n >= 1 && n <= 15 {
					acc[n-1] += secs(u.Latency())
				}
			}
			if strat == exec.StrategyCL {
				res.Clusters = len(rep.Groups)
			}
			runs++
		}
		for i := range acc {
			acc[i] /= float64(runs)
		}
		res.Seconds[strat] = acc
	}
	return res, nil
}

// Format renders the per-query series.
func (r *Figure12Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 12: execution times over the Pfam/Interpro dataset [s] (ATC-CL used %d plan graphs)\n", r.Clusters)
	fmt.Fprintf(&b, "%-6s", "UQ")
	for _, s := range Strategies {
		fmt.Fprintf(&b, "%10s", s)
	}
	b.WriteString("\n")
	for i := 0; i < 15; i++ {
		fmt.Fprintf(&b, "%-6d", i+1)
		for _, s := range Strategies {
			fmt.Fprintf(&b, "%10.2f", r.Seconds[s][i])
		}
		b.WriteString("\n")
	}
	return b.String()
}
