// Package admission is the serving tier's overload-control layer: per-user
// token-bucket rate limits with fair arbitration of a global admission rate,
// bounded-queue shedding, per-request latency budgets (deadline shedding),
// and the adaptive admission window that turns the §3 batcher's fixed window
// knob into a control loop.
//
// The package deliberately knows nothing about engines or HTTP. The service
// layer consults a Controller before a query is expanded or enqueued and
// translates a ShedError into its wire form (retryable 503 + Retry-After);
// the executor consults each request's deadline and cancels merges past
// their budget. Everything a shed means for correctness follows from where
// it happens: a rate or queue shed is strictly pre-admission and safe to
// retry elsewhere, while a deadline or drain shed cancels work that was
// already admitted and therefore must never be silently resubmitted.
package admission

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// Shed reasons. Pre-admission reasons (user-rate, queue-full) are retryable;
// post-admission reasons (deadline, drain) are not — the query may have
// executed partially, and the strict idempotency rule of the fleet client
// only resubmits work that provably never reached admission.
const (
	// ReasonUserRate: the user's token bucket (or their fair share of the
	// global admission rate) was empty.
	ReasonUserRate = "user-rate"
	// ReasonQueueFull: the routed shard's admission queue was at MaxPending.
	ReasonQueueFull = "queue-full"
	// ReasonDeadline: the request exceeded its latency budget; its merge was
	// canceled and unlinked from the plan graph.
	ReasonDeadline = "deadline"
	// ReasonDrain: the request was aborted by a drain deadline so the shard
	// could complete its state handoff.
	ReasonDrain = "drain"
	// ReasonRecoveredAbort: the admission journal of a crashed-and-restarted
	// shard proves the query was in flight when the process died. The merge
	// may have partially executed, so the shed is post-admission and
	// non-retryable at the RPC layer; only the front-end's explicit
	// re-dispatch path — which confirms the crash first — may resubmit it.
	ReasonRecoveredAbort = "recovered-abort"
)

// ShedError reports a load-shed decision. It flows from the admission layer
// through the service to the HTTP surface, where it becomes a 503 with a
// Retry-After hint and the retryable flag set only for pre-admission sheds.
type ShedError struct {
	// Reason is one of the Reason* constants.
	Reason string
	// RetryAfter hints when the client should try again (0 = no hint).
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("admission: shed (%s)", e.Reason)
}

// Retryable reports whether the shed happened strictly before admission, so
// a client may safely resubmit the query without risking double execution.
func (e *ShedError) Retryable() bool {
	return e.Reason == ReasonUserRate || e.Reason == ReasonQueueFull
}

// Config tunes the overload-control layer. The zero value disables every
// mechanism (the pre-PR7 closed-loop behavior: senders block on the shard
// queue until the executor drains them).
type Config struct {
	// UserRate is the sustained per-user admission rate in queries/sec
	// (0 = no fixed per-user limit; with TotalRate set each user is still
	// bounded by their fair share of it).
	UserRate float64
	// UserBurst is the per-user bucket capacity (0 = max(1, ceil(rate))).
	UserBurst int
	// TotalRate is the sustained global admission rate in queries/sec,
	// fair-arbitrated across the currently active users: each user may not
	// exceed TotalRate divided by the number of users seen in the last
	// ActiveWindow. 0 = unlimited.
	TotalRate float64
	// TotalBurst is the global bucket capacity (0 = max(1, ceil(rate))).
	TotalBurst int
	// ActiveWindow is how long a user counts as active for fair arbitration
	// after their last request (0 = 1s).
	ActiveWindow time.Duration
	// MaxUsers bounds the tracked per-user buckets; the least recently seen
	// bucket is recycled first (0 = 1024).
	MaxUsers int

	// MaxPending bounds each shard's admission queue (submitted but not yet
	// admitted); arrivals beyond it are shed with ReasonQueueFull instead of
	// blocking the caller (0 = unbounded, closed-loop blocking).
	MaxPending int
	// Deadline is the per-request latency budget: a request still queued or
	// still merging this long after submission is shed with ReasonDeadline
	// and its merge canceled (0 = no budget).
	Deadline time.Duration
	// MaxInFlight bounds how many admitted merges a shard executes
	// concurrently; excess releases stay queued until capacity frees
	// (0 = unbounded). The engine processor-shares its scheduling rounds
	// across every admitted merge, so under sustained overload an unbounded
	// in-flight set slows all of them past any deadline together — bounding
	// it is what lets deadline shedding trim the queue's tail while the
	// head still completes in time.
	MaxInFlight int
	// RetryAfter is the hint attached to pre-admission sheds (0 = 50ms).
	RetryAfter time.Duration

	// AdaptiveWindow replaces the fixed BatchWindow with a per-shard control
	// loop over queue depth and recent latency (see WindowController);
	// WindowMin/WindowMax clamp it (defaults 0 and 25ms).
	AdaptiveWindow bool
	WindowMin      time.Duration
	WindowMax      time.Duration
}

// Enabled reports whether any admission mechanism is configured.
func (c Config) Enabled() bool {
	return c.UserRate > 0 || c.TotalRate > 0 || c.MaxPending > 0 ||
		c.Deadline > 0 || c.MaxInFlight > 0 || c.AdaptiveWindow
}

// RateLimited reports whether the per-user/global token buckets are in play.
func (c Config) RateLimited() bool { return c.UserRate > 0 || c.TotalRate > 0 }

// Normalized fills the zero fields with their defaults; the serving layer
// stores the normalized form so shed hints and window clamps are concrete.
func (c Config) Normalized() Config { return c.withDefaults() }

func (c Config) withDefaults() Config {
	if c.ActiveWindow <= 0 {
		c.ActiveWindow = time.Second
	}
	if c.MaxUsers <= 0 {
		c.MaxUsers = 1024
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 50 * time.Millisecond
	}
	if c.UserBurst <= 0 {
		c.UserBurst = burstFor(c.UserRate)
	}
	if c.TotalBurst <= 0 {
		c.TotalBurst = burstFor(c.TotalRate)
	}
	if c.WindowMax <= 0 {
		c.WindowMax = 25 * time.Millisecond
	}
	if c.WindowMin < 0 {
		c.WindowMin = 0
	}
	return c
}

func burstFor(rate float64) int {
	if rate <= 0 {
		return 1
	}
	b := int(math.Ceil(rate))
	if b < 1 {
		b = 1
	}
	return b
}

// bucket is one token bucket. Tokens refill continuously at rate/sec up to
// burst; taking below zero is never allowed.
type bucket struct {
	tokens float64
	last   time.Time
	seen   time.Time // last admission attempt, for fair-share accounting
}

func (b *bucket) refill(now time.Time, rate float64, burst int) {
	if rate <= 0 {
		return
	}
	if !b.last.IsZero() {
		b.tokens += rate * now.Sub(b.last).Seconds()
	}
	if max := float64(burst); b.tokens > max {
		b.tokens = max
	}
	b.last = now
}

// Controller makes pre-admission shed decisions: per-user token buckets with
// fair arbitration of a global rate. Safe for concurrent use.
type Controller struct {
	cfg Config

	mu     sync.Mutex
	global bucket
	users  map[string]*bucket
	order  []string // insertion order, for MaxUsers recycling

	// activeUsers is the cached fair-share denominator: distinct users seen
	// within ActiveWindow, recomputed lazily at most every activeEvery.
	activeUsers   int
	activeScanned time.Time
}

// activeEvery bounds how often the fair-share denominator is rescanned.
const activeEvery = 100 * time.Millisecond

// NewController builds a controller. Returns nil when cfg configures no
// rate limits — a nil Controller admits everything, so callers can hold one
// unconditionally.
func NewController(cfg Config) *Controller {
	cfg = cfg.withDefaults()
	if !cfg.RateLimited() {
		return nil
	}
	c := &Controller{cfg: cfg, users: map[string]*bucket{}}
	c.global.tokens = float64(cfg.TotalBurst)
	return c
}

// Admit decides whether one request from user may enter at now. On shed it
// returns a ShedError with ReasonUserRate and a Retry-After hint sized to
// when the next token arrives; nil means admitted (tokens consumed).
func (c *Controller) Admit(user string, now time.Time) *ShedError {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	ub := c.userBucket(user, now)
	ub.seen = now

	// Per-user ceiling: the configured fixed rate, or — under a global rate
	// with no fixed per-user limit — the user's fair share of it. Fixed and
	// fair limits combine by the tighter one.
	rate := c.cfg.UserRate
	burst := c.cfg.UserBurst
	if c.cfg.TotalRate > 0 {
		fair := c.cfg.TotalRate / float64(c.active(now))
		if rate <= 0 || fair < rate {
			rate = fair
			if b := burstFor(fair); b < burst || c.cfg.UserRate <= 0 {
				burst = b
			}
		}
	}

	if rate > 0 {
		ub.refill(now, rate, burst)
		if ub.tokens < 1 {
			return &ShedError{Reason: ReasonUserRate, RetryAfter: c.retryAfter(rate, ub.tokens)}
		}
	}
	if c.cfg.TotalRate > 0 {
		c.global.refill(now, c.cfg.TotalRate, c.cfg.TotalBurst)
		if c.global.tokens < 1 {
			return &ShedError{Reason: ReasonUserRate, RetryAfter: c.retryAfter(c.cfg.TotalRate, c.global.tokens)}
		}
		c.global.tokens--
	}
	if rate > 0 {
		ub.tokens--
	}
	return nil
}

// retryAfter sizes the hint to when the bucket next holds a whole token,
// floored at the configured minimum.
func (c *Controller) retryAfter(rate, tokens float64) time.Duration {
	d := c.cfg.RetryAfter
	if rate > 0 {
		if wait := time.Duration((1 - tokens) / rate * float64(time.Second)); wait > d {
			d = wait
		}
	}
	return d
}

// userBucket finds or creates the user's bucket, recycling the oldest entry
// past MaxUsers. A recycled user starts from a full bucket — forgetting is
// generous, never punitive.
func (c *Controller) userBucket(user string, now time.Time) *bucket {
	if b, ok := c.users[user]; ok {
		return b
	}
	if len(c.order) >= c.cfg.MaxUsers {
		delete(c.users, c.order[0])
		c.order = c.order[1:]
	}
	b := &bucket{tokens: float64(c.cfg.UserBurst), last: now}
	c.users[user] = b
	c.order = append(c.order, user)
	return b
}

// active returns the fair-share denominator: users seen within ActiveWindow,
// at least 1. Rescan is amortized to every activeEvery.
func (c *Controller) active(now time.Time) int {
	if now.Sub(c.activeScanned) >= activeEvery || c.activeUsers == 0 {
		n := 0
		for _, b := range c.users {
			if now.Sub(b.seen) <= c.cfg.ActiveWindow {
				n++
			}
		}
		c.activeUsers = n
		c.activeScanned = now
	}
	if c.activeUsers < 1 {
		return 1
	}
	return c.activeUsers
}
