package admission

import (
	"sync"
	"time"
)

// WindowController turns the §3 batcher's fixed admission window into a
// control loop: under queue pressure the window widens so more concurrent
// arrivals are co-admitted (amortizing optimization and sharing live source
// streams), and when the queue is empty — or the observed latency tail
// approaches the deadline budget — it shrinks back toward WindowMin so idle
// traffic is not taxed with batching delay it cannot amortize.
//
// One controller belongs to one shard and is driven from that shard's
// executor: ObserveQueue at every batch release, ObserveLatency at every
// completion. Window may be read from any goroutine.
type WindowController struct {
	min, max time.Duration
	deadline time.Duration

	mu  sync.Mutex
	win time.Duration
	// ewmaNS / devNS track recent completion latency and its deviation; the
	// p99 proxy used against the deadline budget is ewma + 3*dev.
	ewmaNS float64
	devNS  float64
}

// windowStep is the widening increment applied under queue pressure; decay
// halves the window when the queue is empty at a release.
const windowStep = time.Millisecond

// NewWindowController builds a controller clamped to [min, max], starting at
// min. deadline (0 = none) bounds the latency the widening may induce.
func NewWindowController(min, max, deadline time.Duration) *WindowController {
	if max < min {
		max = min
	}
	return &WindowController{min: min, max: max, deadline: deadline, win: min}
}

// Window returns the current admission window.
func (w *WindowController) Window() time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.win
}

// ObserveQueue feeds one batch release: depth is how many requests were
// still waiting (queued or pending) when the batch of size batch released.
func (w *WindowController) ObserveQueue(depth, batch int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	switch {
	case depth > 2*batch && depth > 1:
		// A backlog more than twice what one batch drains: widen so the next
		// window co-admits more of it.
		w.win += w.win/4 + windowStep
	case depth == 0:
		// Idle at release: decay toward immediate admission.
		w.win -= w.win/2 + 1
	}
	w.clampLocked()
}

// ObserveLatency feeds one completion's wall latency. When the tail proxy
// crosses half the deadline budget, the window shrinks: admission wait is
// the one latency component this controller owns, and it must not spend the
// budget the engine needs.
func (w *WindowController) ObserveLatency(d time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	ns := float64(d)
	if w.ewmaNS == 0 {
		w.ewmaNS = ns
	}
	diff := ns - w.ewmaNS
	w.ewmaNS += diff / 8
	if diff < 0 {
		diff = -diff
	}
	w.devNS += (diff - w.devNS) / 8
	if w.deadline > 0 && w.ewmaNS+3*w.devNS > float64(w.deadline)/2 {
		w.win -= w.win/2 + 1
		w.clampLocked()
	}
}

func (w *WindowController) clampLocked() {
	if w.win > w.max {
		w.win = w.max
	}
	if w.win < w.min {
		w.win = w.min
	}
}
