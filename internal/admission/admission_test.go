package admission

import (
	"errors"
	"testing"
	"time"
)

func TestNilControllerAdmitsEverything(t *testing.T) {
	var c *Controller
	if err := c.Admit("anyone", time.Now()); err != nil {
		t.Fatalf("nil controller shed: %v", err)
	}
	if NewController(Config{MaxPending: 10, Deadline: time.Second}) != nil {
		t.Fatal("queue/deadline-only config should not allocate a rate controller")
	}
}

func TestUserRateBucket(t *testing.T) {
	c := NewController(Config{UserRate: 10, UserBurst: 2})
	now := time.Unix(1000, 0)
	for i := 0; i < 2; i++ {
		if err := c.Admit("alice", now); err != nil {
			t.Fatalf("burst admit %d shed: %v", i, err)
		}
	}
	shed := c.Admit("alice", now)
	if shed == nil {
		t.Fatal("third immediate request should shed")
	}
	if shed.Reason != ReasonUserRate {
		t.Fatalf("reason = %q, want %q", shed.Reason, ReasonUserRate)
	}
	if !shed.Retryable() {
		t.Fatal("rate shed must be retryable (strictly pre-admission)")
	}
	if shed.RetryAfter <= 0 {
		t.Fatal("rate shed should hint Retry-After")
	}
	// Another user is unaffected.
	if err := c.Admit("bob", now); err != nil {
		t.Fatalf("bob shed by alice's bucket: %v", err)
	}
	// 100ms refills one token at 10/s.
	if err := c.Admit("alice", now.Add(110*time.Millisecond)); err != nil {
		t.Fatalf("refilled admit shed: %v", err)
	}
}

func TestFairArbitrationOfTotalRate(t *testing.T) {
	// 20/s global, no fixed per-user limit. With two active users each fair
	// share is 10/s: one user alone cannot monopolize the global rate.
	c := NewController(Config{TotalRate: 20, TotalBurst: 40, ActiveWindow: time.Minute})
	now := time.Unix(2000, 0)
	if err := c.Admit("greedy", now); err != nil {
		t.Fatalf("first admit shed: %v", err)
	}
	if err := c.Admit("meek", now); err != nil {
		t.Fatalf("meek admit shed: %v", err)
	}
	// Force the fair-share denominator rescan past the amortization.
	now = now.Add(200 * time.Millisecond)
	admitted := 0
	for i := 0; i < 40; i++ {
		if c.Admit("greedy", now.Add(time.Duration(i)*10*time.Millisecond)) == nil {
			admitted++
		}
	}
	// Over 0.4s at a 10/s fair share, greedy gets ~4 admits (+ small burst);
	// anywhere near the 40 offered would mean fair arbitration is off.
	if admitted > 12 {
		t.Fatalf("greedy admitted %d of 40 under a 10/s fair share", admitted)
	}
	// meek still gets through at the same instants.
	if err := c.Admit("meek", now.Add(400*time.Millisecond)); err != nil {
		t.Fatalf("meek starved: %v", err)
	}
}

func TestMaxUsersRecycling(t *testing.T) {
	c := NewController(Config{UserRate: 1, MaxUsers: 2})
	now := time.Unix(3000, 0)
	c.Admit("a", now)
	c.Admit("b", now)
	c.Admit("c", now) // recycles a
	if len(c.users) != 2 {
		t.Fatalf("tracked users = %d, want 2", len(c.users))
	}
	if _, ok := c.users["a"]; ok {
		t.Fatal("oldest user not recycled")
	}
	// A recycled user returns with a fresh (full) bucket, not a grudge.
	if err := c.Admit("a", now); err != nil {
		t.Fatalf("recycled user shed on return: %v", err)
	}
}

func TestShedErrorClassification(t *testing.T) {
	for reason, retryable := range map[string]bool{
		ReasonUserRate:  true,
		ReasonQueueFull: true,
		ReasonDeadline:  false,
		ReasonDrain:     false,
	} {
		e := &ShedError{Reason: reason}
		if e.Retryable() != retryable {
			t.Errorf("Retryable(%s) = %v, want %v", reason, e.Retryable(), retryable)
		}
		var shed *ShedError
		if !errors.As(error(e), &shed) {
			t.Errorf("errors.As failed for %s", reason)
		}
	}
}

func TestWindowWidensUnderQueuePressureAndDecaysIdle(t *testing.T) {
	w := NewWindowController(0, 25*time.Millisecond, 0)
	if w.Window() != 0 {
		t.Fatalf("initial window = %v, want 0", w.Window())
	}
	for i := 0; i < 50; i++ {
		w.ObserveQueue(40, 5)
	}
	widened := w.Window()
	if widened != 25*time.Millisecond {
		t.Fatalf("window under sustained pressure = %v, want clamp at 25ms", widened)
	}
	for i := 0; i < 50; i++ {
		w.ObserveQueue(0, 1)
	}
	if w.Window() != 0 {
		t.Fatalf("idle window = %v, want decay to 0", w.Window())
	}
}

func TestWindowShrinksWhenLatencyNearsDeadline(t *testing.T) {
	deadline := 100 * time.Millisecond
	w := NewWindowController(0, 25*time.Millisecond, deadline)
	for i := 0; i < 20; i++ {
		w.ObserveQueue(40, 5)
	}
	if w.Window() == 0 {
		t.Fatal("setup: window should be widened")
	}
	// Completions near the budget must pull the window back down even while
	// the queue stays deep: admission wait cannot spend the engine's budget.
	for i := 0; i < 50; i++ {
		w.ObserveLatency(90 * time.Millisecond)
	}
	if w.Window() != 0 {
		t.Fatalf("window with p99 at 90%% of deadline = %v, want 0", w.Window())
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{UserRate: 3.5}.withDefaults()
	if c.UserBurst != 4 {
		t.Fatalf("UserBurst default = %d, want ceil(3.5)=4", c.UserBurst)
	}
	if c.RetryAfter != 50*time.Millisecond || c.MaxUsers != 1024 {
		t.Fatalf("defaults: %+v", c)
	}
	if !c.Enabled() || !c.RateLimited() {
		t.Fatal("UserRate config should be enabled and rate-limited")
	}
	if (Config{}).Enabled() {
		t.Fatal("zero config must be disabled")
	}
	if !(Config{AdaptiveWindow: true}).Enabled() {
		t.Fatal("adaptive-window config should count as enabled")
	}
}
