package tuple

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a relation schema.
type Column struct {
	// Name is the attribute name, unique within its schema.
	Name string
	// Type is the kind of values stored in this column.
	Type Kind
	// Key marks the primary-key column of the relation (at most one).
	Key bool
	// Score marks a scoring attribute: a column whose value contributes to
	// the dynamic component of result scores. Relations with a Score column
	// are "streamable" in the paper's sense (§5.1.1) because reading them in
	// nonincreasing Score order tightens thresholds.
	Score bool
}

// Schema is an ordered list of columns with a relation name. Schemas are
// immutable after construction.
type Schema struct {
	name   string
	cols   []Column
	byName map[string]int
}

// NewSchema builds a schema. Column names must be unique; duplicates panic,
// since schemas are always constructed from trusted generators or literals.
func NewSchema(name string, cols ...Column) *Schema {
	s := &Schema{name: name, cols: append([]Column(nil), cols...), byName: make(map[string]int, len(cols))}
	for i, c := range s.cols {
		if _, dup := s.byName[c.Name]; dup {
			panic(fmt.Sprintf("tuple: schema %q has duplicate column %q", name, c.Name))
		}
		s.byName[c.Name] = i
	}
	return s
}

// Name returns the relation name.
func (s *Schema) Name() string { return s.name }

// NumCols returns the number of columns.
func (s *Schema) NumCols() int { return len(s.cols) }

// Col returns the i'th column.
func (s *Schema) Col(i int) Column { return s.cols[i] }

// Columns returns a copy of the column list.
func (s *Schema) Columns() []Column { return append([]Column(nil), s.cols...) }

// Index returns the position of the named column and whether it exists.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.byName[name]
	return i, ok
}

// ScoreCol returns the index of the scoring attribute, or -1 if the relation
// has none (in which case the relation is a probe-only source unless small,
// per §5.1.1's heuristic).
func (s *Schema) ScoreCol() int {
	for i, c := range s.cols {
		if c.Score {
			return i
		}
	}
	return -1
}

// KeyCol returns the index of the primary-key column, or -1.
func (s *Schema) KeyCol() int {
	for i, c := range s.cols {
		if c.Key {
			return i
		}
	}
	return -1
}

// HasScore reports whether the schema declares a scoring attribute.
func (s *Schema) HasScore() bool { return s.ScoreCol() >= 0 }

// String renders the schema as name(col:type, ...).
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteString(s.name)
	b.WriteByte('(')
	for i, c := range s.cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		b.WriteByte(':')
		b.WriteString(c.Type.String())
		if c.Key {
			b.WriteString("*")
		}
		if c.Score {
			b.WriteString("^")
		}
	}
	b.WriteByte(')')
	return b.String()
}
