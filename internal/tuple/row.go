package tuple

import (
	"sort"
	"strings"
	"sync/atomic"
)

// Row is a (partial or complete) join result: an ordered list of base tuples,
// one per atom of the expression that produced it. Rows flow along plan-graph
// edges; because a shared subexpression may feed conjunctive queries owned by
// different users with different scoring functions (§2.2), a Row does NOT
// carry a final score — each consumer applies its own scoring model to the
// Row's part scores.
type Row struct {
	parts []*Tuple

	// ident caches the canonical identity (and its 64-bit hash): rank-merge
	// dedup, recovery dedup and deterministic tie-breaks all call Identity()
	// per offered row, so it is computed at most once per row. The cache is an
	// atomic pointer because pushed-down result rows are materialised once per
	// expression in the remote-database view cache and then read concurrently
	// by every shard goroutine streaming that expression.
	ident atomic.Pointer[rowIdent]
}

// rowIdent is the computed identity with its precomputed FNV-1a hash.
type rowIdent struct {
	s string
	h uint64
}

// NewRow builds a row over the given parts. The slice is owned by the row.
func NewRow(parts ...*Tuple) *Row { return &Row{parts: parts} }

// Arity returns the number of base tuples in the row.
func (r *Row) Arity() int { return len(r.parts) }

// Part returns the i'th base tuple.
func (r *Row) Part(i int) *Tuple { return r.parts[i] }

// Parts returns the backing slice; callers must not mutate it.
func (r *Row) Parts() []*Tuple { return r.parts }

// Concat returns a new row with o's parts appended after r's. Neither input
// is mutated, so rows buffered in hash tables stay valid (§6 state reuse).
func (r *Row) Concat(o *Row) *Row {
	parts := make([]*Tuple, 0, len(r.parts)+len(o.parts))
	parts = append(parts, r.parts...)
	parts = append(parts, o.parts...)
	return &Row{parts: parts}
}

// Project returns a new row keeping only the parts at the given positions,
// in the given order. It is used to re-order a component's output into a
// consumer CQ's atom order.
func (r *Row) Project(positions []int) *Row {
	parts := make([]*Tuple, len(positions))
	for i, p := range positions {
		parts[i] = r.parts[p]
	}
	return &Row{parts: parts}
}

// PartScores returns the per-part scores in part order, appending into dst.
func (r *Row) PartScores(dst []float64) []float64 {
	for _, p := range r.parts {
		dst = append(dst, p.Score())
	}
	return dst
}

// ScoreProduct returns the product of part scores: the canonical row score
// used to order pushed-down streams (see DESIGN.md §1 note on sharing across
// scoring-model families).
func (r *Row) ScoreProduct() float64 {
	prod := 1.0
	for _, p := range r.parts {
		prod *= p.Score()
	}
	return prod
}

// Identity returns a canonical identity for duplicate elimination: the sorted
// identities of the row's parts, qualified by relation name. Two rows built
// from the same base tuples (possibly in different part orders by different
// plan shapes) share an Identity. The result is computed once and cached.
func (r *Row) Identity() string { return r.identity().s }

// IdentityHash returns a 64-bit FNV-1a hash of Identity(): the cheap set-
// membership fast path used by rank-merge seen-sets and log identity sets.
// Like Identity it is computed at most once per row.
func (r *Row) IdentityHash() uint64 { return r.identity().h }

// InheritIdentity copies o's cached identity into r, avoiding a recompute.
// It must only be used when r is a reordering/projection of exactly o's parts
// (identity is part-order invariant, so the identities are equal by
// construction). A nil or uncached o is a no-op.
func (r *Row) InheritIdentity(o *Row) {
	if o == nil {
		return
	}
	if id := o.ident.Load(); id != nil {
		r.ident.Store(id)
	}
}

func (r *Row) identity() *rowIdent {
	if id := r.ident.Load(); id != nil {
		return id
	}
	keys := make([]string, len(r.parts))
	for i, p := range r.parts {
		keys[i] = p.QualifiedIdentity()
	}
	sort.Strings(keys)
	s := strings.Join(keys, "&")
	id := &rowIdent{s: s, h: fnv1a(s)}
	// Concurrent computations produce the identical value; last store wins.
	r.ident.Store(id)
	return id
}

// fnv1a is the 64-bit FNV-1a hash (inlined to keep the hot path free of
// hash.Hash allocations).
func fnv1a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// String renders the row as part strings joined by " ⋈ ".
func (r *Row) String() string {
	ss := make([]string, len(r.parts))
	for i, p := range r.parts {
		ss[i] = p.String()
	}
	return strings.Join(ss, " & ")
}
