package tuple

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueKindsAndAccessors(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		text string
	}{
		{Null(), KindNull, "NULL"},
		{Int(42), KindInt, "42"},
		{Int(-7), KindInt, "-7"},
		{Float(1.5), KindFloat, "1.5"},
		{String("abc"), KindString, "abc"},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if c.v.Text() != c.text {
			t.Errorf("%v text = %q, want %q", c.v, c.v.Text(), c.text)
		}
	}
	if !Null().IsNull() || Int(0).IsNull() {
		t.Error("IsNull misclassifies")
	}
	if Int(3).AsFloat() != 3.0 {
		t.Error("AsFloat should convert ints")
	}
	if Float(2.5).AsFloat() != 2.5 || String("x").AsString() != "x" || Int(9).AsInt() != 9 {
		t.Error("accessor payloads wrong")
	}
}

func TestValueEqualAndLess(t *testing.T) {
	if Int(1).Equal(Float(1)) {
		t.Error("cross-kind values must not be equal")
	}
	if !Int(5).Equal(Int(5)) || Int(5).Equal(Int(6)) {
		t.Error("int equality wrong")
	}
	if !String("a").Less(String("b")) || String("b").Less(String("a")) {
		t.Error("string order wrong")
	}
	if !Null().Less(Int(0)) {
		t.Error("null should order before int")
	}
}

func TestValueKeyInjective(t *testing.T) {
	// Distinct values must produce distinct hash keys; notably Int(1) vs
	// Float(1) vs String("1").
	vals := []Value{
		Null(), Int(0), Int(1), Int(-1), Float(0), Float(1), Float(-1),
		Float(math.Inf(1)), String(""), String("1"), String("i1"),
	}
	seen := map[string]Value{}
	for _, v := range vals {
		k := v.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("key collision: %v and %v -> %q", prev, v, k)
		}
		seen[k] = v
	}
}

func TestValueKeyEqualIffEqual(t *testing.T) {
	f := func(a, b int64) bool {
		return (Int(a).Key() == Int(b).Key()) == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b string) bool {
		return (String(a).Key() == String(b).Key()) == (a == b)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func testSchema(t *testing.T) *Schema {
	t.Helper()
	return NewSchema("R",
		Column{Name: "id", Type: KindInt, Key: true},
		Column{Name: "name", Type: KindString},
		Column{Name: "score", Type: KindFloat, Score: true},
	)
}

func TestSchemaBasics(t *testing.T) {
	s := testSchema(t)
	if s.Name() != "R" || s.NumCols() != 3 {
		t.Fatalf("schema basics wrong: %v", s)
	}
	if i, ok := s.Index("name"); !ok || i != 1 {
		t.Errorf("Index(name) = %d,%v", i, ok)
	}
	if _, ok := s.Index("missing"); ok {
		t.Error("Index(missing) should fail")
	}
	if s.ScoreCol() != 2 || s.KeyCol() != 0 || !s.HasScore() {
		t.Errorf("score/key cols wrong: %d %d", s.ScoreCol(), s.KeyCol())
	}
	plain := NewSchema("P", Column{Name: "a", Type: KindInt})
	if plain.HasScore() || plain.ScoreCol() != -1 || plain.KeyCol() != -1 {
		t.Error("plain schema misreports score/key")
	}
}

func TestSchemaDuplicateColumnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate column should panic")
		}
	}()
	NewSchema("X", Column{Name: "a"}, Column{Name: "a"})
}

func TestTupleScoreAndIdentity(t *testing.T) {
	s := testSchema(t)
	tp := New(s, Int(7), String("x"), Float(0.25))
	if tp.Score() != 0.25 {
		t.Errorf("score = %v", tp.Score())
	}
	if !tp.Key().Equal(Int(7)) {
		t.Errorf("key = %v", tp.Key())
	}
	if tp.Identity() != Int(7).Key() {
		t.Errorf("identity should be the primary key, got %q", tp.Identity())
	}
	plain := NewSchema("P", Column{Name: "a", Type: KindInt}, Column{Name: "b", Type: KindString})
	p1 := New(plain, Int(1), String("u"))
	p2 := New(plain, Int(1), String("v"))
	if p1.Score() != NeutralScore {
		t.Errorf("score-less tuple score = %v, want neutral", p1.Score())
	}
	if p1.Identity() == p2.Identity() {
		t.Error("keyless identities must cover all columns")
	}
}

func TestTupleArityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("arity mismatch should panic")
		}
	}()
	New(testSchema(t), Int(1))
}

func TestRowConcatProjectScores(t *testing.T) {
	s := testSchema(t)
	a := New(s, Int(1), String("a"), Float(0.5))
	b := New(s, Int(2), String("b"), Float(0.25))
	r := NewRow(a).Concat(NewRow(b))
	if r.Arity() != 2 || r.Part(0) != a || r.Part(1) != b {
		t.Fatalf("concat wrong: %v", r)
	}
	if got := r.ScoreProduct(); math.Abs(got-0.125) > 1e-12 {
		t.Errorf("score product = %v", got)
	}
	proj := r.Project([]int{1, 0})
	if proj.Part(0) != b || proj.Part(1) != a {
		t.Error("project must reorder parts")
	}
	scores := r.PartScores(nil)
	if len(scores) != 2 || scores[0] != 0.5 || scores[1] != 0.25 {
		t.Errorf("part scores = %v", scores)
	}
}

func TestRowIdentityOrderInvariant(t *testing.T) {
	s := testSchema(t)
	a := New(s, Int(1), String("a"), Float(0.5))
	s2 := NewSchema("S", Column{Name: "id", Type: KindInt, Key: true})
	b := New(s2, Int(2))
	r1 := NewRow(a, b)
	r2 := NewRow(b, a)
	if r1.Identity() != r2.Identity() {
		t.Error("row identity must be part-order invariant")
	}
	r3 := NewRow(a, New(s2, Int(3)))
	if r1.Identity() == r3.Identity() {
		t.Error("different rows must differ in identity")
	}
}

func TestRowConcatDoesNotAliasInputs(t *testing.T) {
	s := testSchema(t)
	a := New(s, Int(1), String("a"), Float(0.5))
	b := New(s, Int(2), String("b"), Float(0.5))
	c := New(s, Int(3), String("c"), Float(0.5))
	base := NewRow(a)
	r1 := base.Concat(NewRow(b))
	r2 := base.Concat(NewRow(c))
	if r1.Part(1) != b || r2.Part(1) != c {
		t.Error("concat results alias each other")
	}
}
