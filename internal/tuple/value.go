// Package tuple provides the value, schema and tuple substrate shared by
// every layer of the system: the simulated remote databases, the middleware
// operators, and the scoring models.
//
// Values are small tagged unions (int64 / float64 / string / null) so that
// join keys, similarity scores and text payloads can live in one column
// representation without reflection. Tuples are immutable after construction;
// operators share pointers freely.
package tuple

import (
	"fmt"
	"math"
	"strconv"
)

// Kind enumerates the column/value types understood by the system.
type Kind uint8

const (
	// KindNull is the zero Kind; it marks absent values.
	KindNull Kind = iota
	// KindInt holds 64-bit integers (identifiers, join keys, years).
	KindInt
	// KindFloat holds 64-bit floats (similarity scores).
	KindFloat
	// KindString holds text payloads (names, terms, descriptions).
	KindString
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a tagged union holding a single column value. The zero Value is
// null. Values are comparable with == only through Equal (floats require
// care); they are usable as map keys via Key.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
}

// Null returns the null value.
func Null() Value { return Value{} }

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a float value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// String returns a string value. (Constructor; the fmt.Stringer method is
// named Text to avoid colliding with this constructor's conventional name.)
func String(v string) Value { return Value{kind: KindString, s: v} }

// Kind reports the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsInt returns the integer payload; it is 0 unless Kind is KindInt.
func (v Value) AsInt() int64 { return v.i }

// AsFloat returns the float payload. For KindInt values it converts, which
// lets score attributes be declared as either numeric kind.
func (v Value) AsFloat() float64 {
	if v.kind == KindInt {
		return float64(v.i)
	}
	return v.f
}

// AsString returns the string payload; it is "" unless Kind is KindString.
func (v Value) AsString() string { return v.s }

// Equal reports deep equality of two values (kind and payload).
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindNull:
		return true
	case KindInt:
		return v.i == o.i
	case KindFloat:
		return v.f == o.f
	default:
		return v.s == o.s
	}
}

// Less orders values of the same kind (null < int < float < string across
// kinds, payload order within a kind). It provides the deterministic order
// used by canonicalization and result tie-breaking.
func (v Value) Less(o Value) bool {
	if v.kind != o.kind {
		return v.kind < o.kind
	}
	switch v.kind {
	case KindNull:
		return false
	case KindInt:
		return v.i < o.i
	case KindFloat:
		return v.f < o.f
	default:
		return v.s < o.s
	}
}

// Key returns a compact string usable as a hash-index key. Distinct values
// map to distinct keys within a kind; int and float payloads are prefixed so
// Int(1) and Float(1) do not collide.
func (v Value) Key() string {
	switch v.kind {
	case KindNull:
		return "\x00"
	case KindInt:
		return "i" + strconv.FormatInt(v.i, 36)
	case KindFloat:
		return "f" + strconv.FormatUint(math.Float64bits(v.f), 36)
	default:
		return "s" + v.s
	}
}

// IndexKey is the comparable, allocation-free form of a Value used as a hash
// map key by the middleware's join indexes and probe caches. Distinct values
// map to distinct keys within and across kinds (Int(1), Float(1) and
// String("1") all differ); float payloads are keyed by their bit pattern, so
// NaN keys behave deterministically rather than vanishing the way a NaN map
// key would.
type IndexKey struct {
	kind Kind
	num  uint64
	str  string
}

// IndexKey returns the value's map key. Unlike Key it performs no string
// formatting, which is what keeps per-insert/per-probe work allocation-free.
func (v Value) IndexKey() IndexKey {
	switch v.kind {
	case KindNull:
		return IndexKey{kind: KindNull}
	case KindInt:
		return IndexKey{kind: KindInt, num: uint64(v.i)}
	case KindFloat:
		return IndexKey{kind: KindFloat, num: math.Float64bits(v.f)}
	default:
		return IndexKey{kind: KindString, str: v.s}
	}
}

// Text renders the value for display.
func (v Value) Text() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', 6, 64)
	default:
		return v.s
	}
}
