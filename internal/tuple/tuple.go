package tuple

import (
	"strconv"
	"strings"
	"sync/atomic"
)

// Tuple is one row of a base relation. Tuples carry their schema, their
// column values, and a cached score (the value of the schema's scoring
// attribute, or the neutral score for score-less relations).
//
// Tuples are immutable after construction and shared by pointer throughout
// the middleware: hash-table partitions, join results and ranking queues all
// alias the same backing tuples, which is what makes state reuse (§6) cheap.
type Tuple struct {
	schema *Schema
	vals   []Value
	score  float64
	// seq is the position of the tuple in its source's score order; it gives
	// operators a total order for deterministic tie-breaking.
	seq int64

	// qident caches QualifiedIdentity. Tuples are shared by pointer across
	// every shard goroutine streaming the same cached view, so the lazy cache
	// is an atomic pointer (racing computes store the identical string).
	qident atomic.Pointer[string]
}

// NeutralScore is the score assumed for tuples of relations without a scoring
// attribute: they contribute equally to every result (§5.1.1), so the value
// itself only needs to be the multiplicative/additive identity expected by
// the scoring models, which all treat 1.0 as "full relevance".
const NeutralScore = 1.0

// New constructs a tuple over schema s. vals must have exactly
// s.NumCols() entries; the scoring attribute, if any, supplies the score.
func New(s *Schema, vals ...Value) *Tuple {
	if len(vals) != s.NumCols() {
		panic("tuple: arity mismatch for " + s.Name())
	}
	t := &Tuple{schema: s, vals: vals, score: NeutralScore}
	if sc := s.ScoreCol(); sc >= 0 {
		t.score = vals[sc].AsFloat()
	}
	return t
}

// WithSeq returns the tuple after recording its sequence number in source
// score order. The relation store assigns these at load time. Keyless
// identities embed the sequence number, so changing it invalidates any
// identity cached before assignment (the store sorts by Identity before
// numbering).
func (t *Tuple) WithSeq(seq int64) *Tuple {
	if t.seq != seq {
		t.seq = seq
		t.qident.Store(nil)
	}
	return t
}

// Seq returns the tuple's position in its source's nonincreasing score order.
func (t *Tuple) Seq() int64 { return t.seq }

// Schema returns the tuple's schema.
func (t *Tuple) Schema() *Schema { return t.schema }

// Val returns the i'th column value.
func (t *Tuple) Val(i int) Value { return t.vals[i] }

// ValByName returns the named column value; ok is false if no such column.
func (t *Tuple) ValByName(name string) (Value, bool) {
	i, ok := t.schema.Index(name)
	if !ok {
		return Value{}, false
	}
	return t.vals[i], true
}

// Score returns the tuple's scoring-attribute value (NeutralScore when the
// relation has no scoring attribute).
func (t *Tuple) Score() float64 { return t.score }

// Key returns the primary-key value, or null if the schema declares no key.
func (t *Tuple) Key() Value {
	if k := t.schema.KeyCol(); k >= 0 {
		return t.vals[k]
	}
	return Null()
}

// Identity returns a string that uniquely identifies the tuple within its
// relation: the primary key when present, otherwise the tuple's position in
// its relation's score order (keyless link tables are bags — two rows with
// identical values are distinct tuples and distinct join derivations). It is
// used for duplicate elimination when recovered state is merged with live
// streams (§6.2).
func (t *Tuple) Identity() string {
	q := t.QualifiedIdentity()
	return q[len(t.schema.Name())+1:]
}

// QualifiedIdentity returns "Relation:Identity" — the per-part key row
// identities are built from. It is computed once and cached; many rows share
// each base tuple, so the cache amortises the key formatting across every
// join result the tuple participates in.
func (t *Tuple) QualifiedIdentity() string {
	if q := t.qident.Load(); q != nil {
		return *q
	}
	var b strings.Builder
	b.WriteString(t.schema.Name())
	b.WriteByte(':')
	if k := t.schema.KeyCol(); k >= 0 {
		b.WriteString(t.vals[k].Key())
	} else {
		b.WriteByte('#')
		b.WriteString(strconv.FormatInt(t.seq, 36))
		for _, v := range t.vals {
			b.WriteByte('|')
			b.WriteString(v.Key())
		}
	}
	q := b.String()
	t.qident.Store(&q)
	return q
}

// String renders the tuple as Rel(v1, v2, ...).
func (t *Tuple) String() string {
	var b strings.Builder
	b.WriteString(t.schema.Name())
	b.WriteByte('(')
	for i, v := range t.vals {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.Text())
	}
	b.WriteByte(')')
	return b.String()
}
