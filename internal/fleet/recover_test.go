package fleet_test

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/cq"
	"repro/internal/fleet"
	"repro/internal/fleet/chaos"
	"repro/internal/recovery"
	"repro/internal/service"
	"repro/internal/state"
	"repro/internal/workload"
)

// crashMode selects how the "crashed" backend answers the front-end's
// crash-confirmation probes.
type crashMode int

const (
	// crashDead: the process is gone — health probes fail at the dial.
	crashDead crashMode = iota
	// crashJournaled: the process restarted and its admission journal lists
	// the query as a recovered abort.
	crashJournaled
	// crashAliveUnjournaled: the shard is alive and does not report the query
	// aborted — the wire failure was mere packet loss, and resubmitting could
	// execute the query twice.
	crashAliveUnjournaled
)

// crashState is shared across the fake backends of one test: whichever
// backend the router picks first "crashes" mid-response, so the scenario is
// exercised regardless of placement.
type crashState struct {
	mode crashMode

	mu      sync.Mutex
	crashed int // index of the backend that crashed; -1 until the first search
}

type crashyBackend struct {
	st  *crashState
	idx int
}

func (b *crashyBackend) Search(ctx context.Context, uq *cq.UQ) (*fleet.ResultView, error) {
	b.st.mu.Lock()
	defer b.st.mu.Unlock()
	if b.st.crashed == -1 {
		b.st.crashed = b.idx
	}
	if b.st.crashed == b.idx {
		// The connection died after the request was delivered: a read-op
		// error, exactly what a SIGKILL mid-response surfaces.
		return nil, &net.OpError{Op: "read", Net: "tcp", Err: fmt.Errorf("connection reset")}
	}
	return &fleet.ResultView{ID: uq.ID, Keywords: uq.Keywords}, nil
}

func (b *crashyBackend) Health(ctx context.Context) (fleet.HealthView, error) {
	b.st.mu.Lock()
	crashed := b.st.crashed == b.idx
	b.st.mu.Unlock()
	if !crashed {
		return fleet.HealthView{Healthy: true, State: "ready"}, nil
	}
	switch b.st.mode {
	case crashDead:
		return fleet.HealthView{}, &net.OpError{Op: "dial", Net: "tcp", Err: fmt.Errorf("connection refused")}
	case crashJournaled:
		return fleet.HealthView{Healthy: false, State: "recovering"}, nil
	default:
		return fleet.HealthView{Healthy: true, State: "ready"}, nil
	}
}

func (b *crashyBackend) Recovered(ctx context.Context) (fleet.RecoveredView, error) {
	b.st.mu.Lock()
	crashed := b.st.crashed == b.idx
	b.st.mu.Unlock()
	if crashed && b.st.mode == crashJournaled {
		// The front-end's first expansion is UQ1 by construction.
		q := recovery.QueryRecord{ID: "UQ1", Keywords: []string{"metabolism", "protein"}, K: 10}
		return fleet.RecoveredView{Count: 1, Queries: []recovery.QueryRecord{q}}, nil
	}
	return fleet.RecoveredView{}, nil
}

func (b *crashyBackend) Stats(ctx context.Context) (*service.Stats, error) {
	return &service.Stats{}, nil
}
func (b *crashyBackend) Export(ctx context.Context, kw []string) (*state.TopicExport, error) {
	return &state.TopicExport{}, nil
}
func (b *crashyBackend) Import(ctx context.Context, exp *state.TopicExport) (fleet.ImportCounts, error) {
	return fleet.ImportCounts{}, nil
}
func (b *crashyBackend) Drain(ctx context.Context) (*state.TopicExport, error) {
	return &state.TopicExport{}, nil
}
func (b *crashyBackend) Close() error { return nil }

func newCrashFrontend(t *testing.T, mode crashMode, redispatch bool) (*fleet.Frontend, *crashState) {
	t.Helper()
	w, err := workload.Bio()
	if err != nil {
		t.Fatal(err)
	}
	st := &crashState{mode: mode, crashed: -1}
	backends := []fleet.Backend{
		&crashyBackend{st: st, idx: 0},
		&crashyBackend{st: st, idx: 1},
	}
	fr, err := fleet.NewFrontend(w, fleet.FrontendConfig{
		Service:    service.Config{Seed: 7, K: 10, Router: service.RouterAffinity},
		Redispatch: redispatch,
	}, backends)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fr.Close() }) //nolint:errcheck
	return fr, st
}

// TestRedispatchAfterConfirmedCrash pins the re-dispatch contract: a search
// whose connection died mid-response is resubmitted to another shard only
// after the front-end confirms the crash — the process is unreachable, or the
// restart's journal lists the query aborted — and is surfaced as an error
// when the shard turns out to be alive and unjournaled (packet loss must not
// cause double execution).
func TestRedispatchAfterConfirmedCrash(t *testing.T) {
	kw := []string{"metabolism", "protein"}

	for _, tc := range []struct {
		name string
		mode crashMode
		want bool // search answered via re-dispatch
	}{
		{"process-dead", crashDead, true},
		{"journaled-abort", crashJournaled, true},
		{"alive-unjournaled", crashAliveUnjournaled, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fr, _ := newCrashFrontend(t, tc.mode, true)
			view, err := fr.Search(context.Background(), "rec", kw, 10)
			got := fr.Metrics().Redispatches.Value()
			if tc.want {
				if err != nil {
					t.Fatalf("confirmed crash not re-dispatched: %v", err)
				}
				if view.ID != "UQ1" {
					t.Fatalf("re-dispatched answer for %s, want UQ1", view.ID)
				}
				if got != 1 {
					t.Fatalf("Redispatches = %d, want 1", got)
				}
			} else {
				if err == nil {
					t.Fatal("unconfirmed wire failure was resubmitted — double execution risk")
				}
				if got != 0 {
					t.Fatalf("Redispatches = %d, want 0", got)
				}
			}
		})
	}
}

// TestRedispatchDisabledSurfacesError pins the zero-value default: without
// Redispatch even a provably dead shard surfaces the wire error unchanged.
func TestRedispatchDisabledSurfacesError(t *testing.T) {
	fr, _ := newCrashFrontend(t, crashDead, false)
	if _, err := fr.Search(context.Background(), "rec", []string{"metabolism", "protein"}, 10); err == nil {
		t.Fatal("redispatch disabled but the failed search was answered")
	}
	if n := fr.Metrics().Redispatches.Value(); n != 0 {
		t.Fatalf("Redispatches = %d with redispatch disabled", n)
	}
}

// --- process-level kill/recover integration -------------------------------

func buildShardBin(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "qsys-shard")
	out, err := exec.Command("go", "build", "-o", bin, "repro/cmd/qsys-shard").CombinedOutput()
	if err != nil {
		t.Fatalf("build qsys-shard: %v\n%s", err, out)
	}
	return bin
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func startShardProc(t *testing.T, bin, addr string, slot int, dir string) *chaos.Proc {
	t.Helper()
	p, err := chaos.StartProc(bin, []string{
		"-addr", addr, "-shard-id", fmt.Sprint(slot), "-seed", "11",
		"-window", "0s", "-workers", "1", "-k", "10",
		"-recover-dir", dir, "-checkpoint-interval", "150ms",
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func waitShardReady(t *testing.T, url string) {
	t.Helper()
	c := fleet.NewClient(url, fleet.ClientConfig{
		Timeout: 2 * time.Second, MaxRetries: 1, BreakerThreshold: 1 << 20,
	})
	defer c.Close() //nolint:errcheck
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		hv, err := c.Health(context.Background())
		if err == nil && hv.Healthy {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("shard %s never became ready", url)
}

func answerDigest(v *fleet.ResultView) string {
	h := sha256.New()
	fleet.DigestAnswers(h, v)
	return hex.EncodeToString(h.Sum(nil))
}

// TestKillRecoverDigestIdentical is the crash-recovery gate end to end: two
// qsys-shard processes behind a re-dispatching front-end, one SIGKILLed
// mid-wave and restarted over its -recover-dir. Every query answered during
// and after the fault must digest byte-identically to a no-fault control, and
// the restarted shard must prove it warm-started from a checkpoint.
func TestKillRecoverDigestIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level integration test")
	}
	bin := buildShardBin(t)

	// No-fault control: the equivalent single-process 2-shard service
	// replaying the exact three-wave call sequence. Per-user scoring
	// coefficients evolve per call, so the comparison is per global call
	// index; answers are otherwise a pure function of the query and the
	// data — placement-independent — which is what lets a re-dispatched or
	// rerouted query still match.
	const waves = 3
	w, err := workload.Bio()
	if err != nil {
		t.Fatal(err)
	}
	single := service.New(w, service.Config{
		Seed: 11, K: 10, Shards: 2, Router: service.RouterAffinity,
		Workers: 1, BatchWindow: 0,
	})
	var control []string
	for wave := 0; wave < waves; wave++ {
		for _, kw := range fleetTopics {
			res, err := single.Search(context.Background(), "rec", kw, 10)
			if err != nil {
				t.Fatal(err)
			}
			control = append(control, answerDigest(fleet.ViewOf(res)))
		}
	}
	if err := single.Close(); err != nil {
		t.Fatal(err)
	}

	// The fleet under test: two shard processes checkpointing to recover
	// dirs, front-end with re-dispatch on.
	dirs := []string{t.TempDir(), t.TempDir()}
	addrs := []string{freeAddr(t), freeAddr(t)}
	urls := []string{"http://" + addrs[0], "http://" + addrs[1]}
	procs := []*chaos.Proc{
		startShardProc(t, bin, addrs[0], 0, dirs[0]),
		startShardProc(t, bin, addrs[1], 1, dirs[1]),
	}
	t.Cleanup(func() { procs[0].Kill(); procs[1].Kill() }) //nolint:errcheck
	waitShardReady(t, urls[0])
	waitShardReady(t, urls[1])

	var backends []fleet.Backend
	for _, u := range urls {
		backends = append(backends, fleet.NewClient(u, fleet.ClientConfig{
			MaxRetries: 2, RetryBackoff: 5 * time.Millisecond,
		}))
	}
	fr, err := fleet.NewFrontend(w, fleet.FrontendConfig{
		Service:       service.Config{Seed: 11, K: 10, Router: service.RouterAffinity},
		ProbeInterval: 100 * time.Millisecond,
		Redispatch:    true,
	}, backends)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fr.Close() }) //nolint:errcheck

	call := 0
	served := make([]int, 2)
	wave := func(name string) {
		t.Helper()
		for _, kw := range fleetTopics {
			view, err := fr.Search(context.Background(), "rec", kw, 10)
			if err != nil {
				t.Fatalf("%s call %d %v: %v", name, call, kw, err)
			}
			if got := answerDigest(view); got != control[call] {
				t.Fatalf("%s call %d %v: digest %s != control %s — wrong answer under fault",
					name, call, kw, got, control[call])
			}
			served[view.Shard]++
			call++
		}
	}

	// Wave 1 populates the shards' retained state; the checkpoint loop
	// (150ms) durably captures it before the kill. Kill the shard that
	// actually served queries — the affinity router may pin every topic to
	// one shard, and killing an empty shard would test nothing.
	wave("pre-fault")
	time.Sleep(500 * time.Millisecond)
	victim := 0
	if served[1] > served[0] {
		victim = 1
	}

	// SIGKILL the victim while wave 2 is in flight: queries racing the kill
	// are either re-dispatched (crash confirmed) or routed around (connection
	// refused), and every answer that comes back must still match control.
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		time.Sleep(20 * time.Millisecond)
		procs[victim].Kill() //nolint:errcheck
	}()
	wave("mid-fault")
	<-killed

	// Warm restart over the same recover dir: the shard must come back
	// serving from its checkpoint, not from scratch.
	procs[victim] = startShardProc(t, bin, addrs[victim], victim, dirs[victim])
	waitShardReady(t, urls[victim])

	probe := fleet.NewClient(urls[victim], fleet.ClientConfig{Timeout: 2 * time.Second})
	defer probe.Close() //nolint:errcheck
	hv, err := probe.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if hv.CheckpointGen == 0 {
		t.Fatal("restarted shard reports no checkpoint generation — cold start")
	}
	st, err := probe.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Recovery.SegmentsRecovered == 0 {
		t.Fatalf("restarted shard installed no checkpoint segments: %+v", st.Recovery)
	}

	// Let the prober see the victim healthy again, then the recovered fleet
	// must answer byte-identically to control.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if hz := fr.Healthz(context.Background()); hz.OK && hz.Shards[victim].Healthy {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	wave("post-recovery")
}
