package fleet

import (
	"context"

	"repro/internal/cq"
	"repro/internal/service"
	"repro/internal/state"
)

// Backend is one shard slot as the front-end sees it: an engine that answers
// expanded user queries and can hand topic state off. Client speaks to a
// shard process over HTTP; LocalBackend embeds the engine in-process, which
// is what the parity tests compare the distributed tier against.
type Backend interface {
	// Search executes an expanded user query.
	Search(ctx context.Context, uq *cq.UQ) (*ResultView, error)
	// Health probes the shard.
	Health(ctx context.Context) (HealthView, error)
	// Recovered lists the queries the shard's admission journal proved in
	// flight at its last crash (empty when recovery is disabled).
	Recovered(ctx context.Context) (RecoveredView, error)
	// Stats snapshots the shard's serving and execution counters.
	Stats(ctx context.Context) (*service.Stats, error)
	// Export serializes and discards the topic's idle state on the shard.
	Export(ctx context.Context, keywords []string) (*state.TopicExport, error)
	// Import stages a migrated export behind the shard's consistency gate.
	Import(ctx context.Context, exp *state.TopicExport) (ImportCounts, error)
	// Drain stops the shard's admissions and returns its full resident
	// handoff.
	Drain(ctx context.Context) (*state.TopicExport, error)
	// Close releases client-side resources; it does not stop the shard.
	Close() error
}

// LocalBackend adapts an in-process service (normally Shards=1 with the
// slot's ShardIDOffset) to the Backend interface.
type LocalBackend struct {
	Svc *service.Service
	// Shard is the in-process shard index the backend fronts (0 for a
	// single-shard service).
	Shard int
}

// Search executes the query on the wrapped service.
func (b *LocalBackend) Search(ctx context.Context, uq *cq.UQ) (*ResultView, error) {
	res, err := b.Svc.SearchUQ(ctx, uq)
	if err != nil {
		return nil, err
	}
	return ViewOf(res), nil
}

// Health reports the wrapped service as healthy; an in-process backend has
// no transport to fail, and a closed service surfaces through Search.
func (b *LocalBackend) Health(ctx context.Context) (HealthView, error) {
	return HealthView{Healthy: true}, nil
}

// Recovered reports the wrapped service's journaled crash aborts (empty
// unless the service was built over a checkpoint directory).
func (b *LocalBackend) Recovered(ctx context.Context) (RecoveredView, error) {
	recs := b.Svc.RecoveredAborts()
	return RecoveredView{Count: len(recs), Queries: recs}, nil
}

// Stats snapshots the wrapped service.
func (b *LocalBackend) Stats(ctx context.Context) (*service.Stats, error) {
	st := b.Svc.Stats()
	return &st, nil
}

// Export hands the topic's idle state off the wrapped shard.
func (b *LocalBackend) Export(ctx context.Context, keywords []string) (*state.TopicExport, error) {
	return b.Svc.ExportTopic(b.Shard, keywords)
}

// Import stages the export on the wrapped shard.
func (b *LocalBackend) Import(ctx context.Context, exp *state.TopicExport) (ImportCounts, error) {
	installed, dropped, rows, err := b.Svc.ImportTopic(b.Shard, exp)
	return ImportCounts{Installed: installed, Dropped: dropped, Rows: rows}, err
}

// Drain exports everything the wrapped shard retains.
func (b *LocalBackend) Drain(ctx context.Context) (*state.TopicExport, error) {
	return b.Svc.ExportAll(b.Shard)
}

// Close is a no-op; the wrapped service is owned by the caller.
func (b *LocalBackend) Close() error { return nil }
