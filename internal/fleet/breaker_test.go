package fleet_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fleet"
)

// TestBreakerHalfOpenSingleProbe pins the half-open contract under
// concurrency: once the cooloff passes, exactly ONE caller is admitted as the
// probe — the open window is extended so every concurrent competitor keeps
// failing fast with ErrCircuitOpen — and a successful probe closes the
// circuit for everyone.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	var phase atomic.Int32 // 0: fail everything; 1: half-open probe phase
	var probeArrivals atomic.Int32
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		switch phase.Load() {
		case 0:
			http.Error(rw, "shard on fire", http.StatusInternalServerError)
		default:
			probeArrivals.Add(1)
			<-release
			rw.Header().Set("Content-Type", "application/json")
			json.NewEncoder(rw).Encode(fleet.HealthView{Healthy: true}) //nolint:errcheck
		}
	}))
	defer srv.Close()

	const cooloff = 100 * time.Millisecond
	c := fleet.NewClient(srv.URL, fleet.ClientConfig{
		MaxRetries:       1,
		RetryBackoff:     time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooloff:   cooloff,
	})
	defer c.Close() //nolint:errcheck

	ctx := context.Background()
	// Trip the breaker: threshold consecutive 5xx failures.
	for i := 0; i < 2; i++ {
		if _, err := c.Health(ctx); err == nil {
			t.Fatal("expected failure while server is failing")
		}
	}
	// Open circuit fails fast without touching the network.
	if _, err := c.Health(ctx); !errors.Is(err, fleet.ErrCircuitOpen) {
		t.Fatalf("expected ErrCircuitOpen while open, got %v", err)
	}

	// Enter the probe phase and wait out the cooloff.
	phase.Store(1)
	time.Sleep(cooloff + 20*time.Millisecond)

	// A stampede of concurrent calls: one probe, the rest fail fast.
	const callers = 8
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Health(ctx)
		}(i)
	}
	// Give the losers time to bounce off the extended open window while the
	// probe is parked in the handler, then let the probe finish.
	deadline := time.Now().Add(2 * time.Second)
	for probeArrivals.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no probe reached the server")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := probeArrivals.Load(); got != 1 {
		t.Errorf("half-open admitted %d probes, want exactly 1", got)
	}
	var probeOK, fastFails int
	for _, err := range errs {
		switch {
		case err == nil:
			probeOK++
		case errors.Is(err, fleet.ErrCircuitOpen):
			fastFails++
		default:
			t.Errorf("unexpected error kind: %v", err)
		}
	}
	if probeOK != 1 || fastFails != callers-1 {
		t.Errorf("got %d successes and %d fast-fails, want 1 and %d", probeOK, fastFails, callers-1)
	}

	// The successful probe closed the circuit: the next call goes through.
	if _, err := c.Health(ctx); err != nil {
		t.Errorf("circuit should be closed after successful probe: %v", err)
	}
}
