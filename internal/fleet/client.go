package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/cq"
	"repro/internal/metrics"
	"repro/internal/service"
	"repro/internal/state"
)

// RPCError is a non-2xx response from a shard. Retryable is the shard's own
// claim that the request was rejected strictly before admission. Reason, when
// set, is the admission shed reason (admission.Reason* constants): the shard
// turned the request away because it is saturated or the request blew its
// latency budget — not because the shard is down. RetryAfter is the shard's
// hint on when to try again.
type RPCError struct {
	Status     int
	Msg        string
	Retryable  bool
	Reason     string
	RetryAfter time.Duration
}

// Shed reports whether the error is an overload shed rather than a failure.
func (e *RPCError) Shed() bool { return e.Reason != "" }

func (e *RPCError) Error() string {
	return fmt.Sprintf("fleet: rpc status %d: %s", e.Status, e.Msg)
}

// ErrCircuitOpen is returned without touching the network while a backend's
// circuit breaker is open.
var ErrCircuitOpen = errors.New("fleet: circuit open")

// ClientConfig tunes a shard client.
type ClientConfig struct {
	// Timeout bounds each RPC attempt (default 30s).
	Timeout time.Duration
	// MaxRetries bounds resubmissions of safely retryable failures
	// (default 3).
	MaxRetries int
	// RetryBackoff is the base backoff between attempts, jittered and doubled
	// per retry (default 25ms).
	RetryBackoff time.Duration
	// BreakerThreshold is the consecutive-failure count that opens the
	// circuit (default 5); BreakerCooloff how long it stays open before one
	// probe attempt is let through (default 2s).
	BreakerThreshold int
	BreakerCooloff   time.Duration
	// Transport, when non-nil, replaces the default HTTP transport — the
	// fault-injection seam (see the chaos package). Production leaves it nil.
	Transport http.RoundTripper
	// Metrics receives RPC and breaker counters; nil disables.
	Metrics *metrics.Fleet
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 25 * time.Millisecond
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooloff <= 0 {
		c.BreakerCooloff = 2 * time.Second
	}
	return c
}

// Client speaks the shard RPC surface to one endpoint, with per-attempt
// timeouts, bounded jittered retry of safely-retryable failures, and a
// consecutive-failure circuit breaker that fails fast while open.
//
// The retry rule is strict about idempotency: a search is resubmitted only
// when it provably never reached admission — the connection could not be
// established at all, or the shard answered 503 with the retryable flag
// (drain/closed rejection before admission). An error after the request may
// have started executing (reset mid-response, timeout, 5xx without the flag)
// is surfaced, never retried: the engine is deterministic precisely because
// each UQ is admitted exactly once.
type Client struct {
	base string
	cfg  ClientConfig
	http *http.Client

	mu        sync.Mutex
	fails     int       // consecutive transport/5xx failures
	openUntil time.Time // breaker open until this instant
	rng       *rand.Rand
}

// NewClient builds a client for a shard endpoint ("http://host:port").
func NewClient(endpoint string, cfg ClientConfig) *Client {
	cfg = cfg.withDefaults()
	return &Client{
		base: strings.TrimRight(endpoint, "/"),
		cfg:  cfg,
		http: &http.Client{Timeout: cfg.Timeout, Transport: cfg.Transport},
		rng:  rand.New(rand.NewSource(int64(len(endpoint)) + time.Now().UnixNano())),
	}
}

// Endpoint returns the shard base URL.
func (c *Client) Endpoint() string { return c.base }

// Close releases idle connections.
func (c *Client) Close() error {
	c.http.CloseIdleConnections()
	return nil
}

// breakerAllow reports whether a call may proceed: the circuit is closed, or
// it is open but the cooloff has passed, in which case this call is the
// half-open probe (the open window is extended so concurrent calls keep
// failing fast until the probe settles).
func (c *Client) breakerAllow() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fails < c.cfg.BreakerThreshold {
		return true
	}
	now := time.Now()
	if now.Before(c.openUntil) {
		return false
	}
	c.openUntil = now.Add(c.cfg.BreakerCooloff)
	return true
}

func (c *Client) noteResult(failed bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !failed {
		c.fails = 0
		return
	}
	c.fails++
	if c.fails == c.cfg.BreakerThreshold {
		c.openUntil = time.Now().Add(c.cfg.BreakerCooloff)
		if c.cfg.Metrics != nil {
			c.cfg.Metrics.CircuitOpens.Inc()
		}
	}
}

// connectFailure reports whether err means the connection was never
// established — the one transport failure after which no request bytes can
// have reached the shard.
func connectFailure(err error) bool {
	var op *net.OpError
	if errors.As(err, &op) && op.Op == "dial" {
		return true
	}
	return false
}

// retryable classifies an RPC failure per the idempotency rule above.
func retryable(err error) bool {
	var rpcErr *RPCError
	if errors.As(err, &rpcErr) {
		return rpcErr.Retryable && rpcErr.Status == http.StatusServiceUnavailable
	}
	return connectFailure(err)
}

// call performs one RPC with retry and breaker handling. in == nil sends a
// GET; out == nil discards the response body.
func (c *Client) call(ctx context.Context, path string, in, out any) error {
	if !c.breakerAllow() {
		if c.cfg.Metrics != nil {
			c.cfg.Metrics.RPCFailures.Inc()
		}
		return fmt.Errorf("%w: %s", ErrCircuitOpen, c.base)
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		if c.cfg.Metrics != nil {
			c.cfg.Metrics.RPCCalls.Inc()
		}
		t0 := time.Now()
		err := c.once(ctx, path, in, out)
		if c.cfg.Metrics != nil {
			c.cfg.Metrics.RPCLatency.Observe(time.Since(t0))
		}
		c.noteResult(err != nil && terminalTransport(err))
		if err == nil {
			return nil
		}
		lastErr = err
		if c.cfg.Metrics != nil {
			c.cfg.Metrics.RPCFailures.Inc()
		}
		if attempt >= c.cfg.MaxRetries || !retryable(err) || ctx.Err() != nil {
			return err
		}
		if c.cfg.Metrics != nil {
			c.cfg.Metrics.RPCRetries.Inc()
		}
		// A shed's Retry-After hint floors the backoff: retrying into a
		// saturated shard before its bucket refills just sheds again.
		wait := c.backoff(attempt)
		var rpcErr *RPCError
		if errors.As(err, &rpcErr) && rpcErr.RetryAfter > wait {
			wait = rpcErr.RetryAfter
		}
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return lastErr
		}
	}
}

// terminalTransport reports whether the failure should count against the
// circuit breaker: transport-level errors and 5xx responses, but not
// application rejections (4xx) — a malformed query says nothing about the
// shard's health — and not overload sheds, which mean the shard is saturated
// and alive; opening the circuit on sheds would turn backpressure into an
// outage.
func terminalTransport(err error) bool {
	var rpcErr *RPCError
	if errors.As(err, &rpcErr) {
		return rpcErr.Status >= 500 && !rpcErr.Shed()
	}
	return true
}

// backoff returns the jittered exponential delay before retry attempt+1.
func (c *Client) backoff(attempt int) time.Duration {
	base := c.cfg.RetryBackoff << uint(attempt)
	c.mu.Lock()
	j := c.rng.Int63n(int64(base) + 1)
	c.mu.Unlock()
	return base + time.Duration(j)
}

func (c *Client) once(ctx context.Context, path string, in, out any) error {
	var (
		req *http.Request
		err error
	)
	if in == nil {
		req, err = http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	} else {
		var body bytes.Buffer
		if err := json.NewEncoder(&body).Encode(in); err != nil {
			return fmt.Errorf("fleet: encode %s: %w", path, err)
		}
		req, err = http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, &body)
		if req != nil {
			req.Header.Set("Content-Type", "application/json")
		}
	}
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var we wireError
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		if json.Unmarshal(data, &we) != nil || we.Error == "" {
			we.Error = strings.TrimSpace(string(data))
		}
		return &RPCError{
			Status:     resp.StatusCode,
			Msg:        we.Error,
			Retryable:  we.Retryable,
			Reason:     we.Reason,
			RetryAfter: time.Duration(we.RetryAfterMS) * time.Millisecond,
		}
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Search ships an expanded user query to the shard.
func (c *Client) Search(ctx context.Context, uq *cq.UQ) (*ResultView, error) {
	var view ResultView
	if err := c.call(ctx, "/rpc/search", EncodeUQ(uq), &view); err != nil {
		return nil, err
	}
	return &view, nil
}

// Health probes the shard.
func (c *Client) Health(ctx context.Context) (HealthView, error) {
	var hv HealthView
	err := c.call(ctx, "/rpc/health", nil, &hv)
	return hv, err
}

// Recovered fetches the shard's journaled crash aborts.
func (c *Client) Recovered(ctx context.Context) (RecoveredView, error) {
	var rv RecoveredView
	err := c.call(ctx, "/rpc/recovered", nil, &rv)
	return rv, err
}

// Stats snapshots the shard's counters.
func (c *Client) Stats(ctx context.Context) (*service.Stats, error) {
	var st service.Stats
	if err := c.call(ctx, "/rpc/stats", nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Export asks the shard to serialize and discard the topic's idle state.
func (c *Client) Export(ctx context.Context, keywords []string) (*state.TopicExport, error) {
	var exp state.TopicExport
	if err := c.call(ctx, "/rpc/migrate/export", exportRequest{Keywords: keywords}, &exp); err != nil {
		return nil, err
	}
	return &exp, nil
}

// Import stages a migrated export on the shard.
func (c *Client) Import(ctx context.Context, exp *state.TopicExport) (ImportCounts, error) {
	var counts ImportCounts
	err := c.call(ctx, "/rpc/migrate/import", exp, &counts)
	return counts, err
}

// Drain stops the shard's admissions and collects its resident handoff.
func (c *Client) Drain(ctx context.Context) (*state.TopicExport, error) {
	var exp state.TopicExport
	if err := c.call(ctx, "/rpc/drain", struct{}{}, &exp); err != nil {
		return nil, err
	}
	return &exp, nil
}
