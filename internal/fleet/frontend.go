package fleet

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/admission"
	"repro/internal/metrics"
	"repro/internal/service"
	"repro/internal/state"
	"repro/internal/workload"
)

// FrontendConfig tunes a front-end.
type FrontendConfig struct {
	// Service carries the expansion parameters (Seed, K, MaxCQs) and the
	// Router mode; engine-side fields are ignored — the engines live in the
	// shard processes.
	Service service.Config
	// ProbeInterval is the health prober's period; 0 disables background
	// probing (backends are then marked down only by failed searches).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health probe (default 2s).
	ProbeTimeout time.Duration
	// RehomeFactor enables the topic migrator when > 1: after each search the
	// placer may suggest migrating the topic to the shard whose admission
	// mass on its keywords exceeds its pinned home's by this factor, and the
	// front-end then moves the state over the migrate RPCs. 0 disables.
	RehomeFactor float64
	// Metrics receives fleet counters; nil allocates a private set.
	Metrics *metrics.Fleet
	// Redispatch resubmits a search to another healthy shard when its shard
	// crashed with the query in flight. The front-end confirms the crash
	// first — the process is provably gone, or the restarted shard's
	// admission journal lists the query as a recovered abort — so only
	// queries whose response can never be delivered are re-run; answers are
	// a pure function of the query and the sources, so the re-run is
	// byte-identical to what the crashed shard would have returned. Off by
	// default: an unconfirmed mid-response failure is surfaced, never
	// resubmitted.
	Redispatch bool
}

// ErrNoHealthyShard is returned by Search when every backend has been marked
// down or already failed this request.
var ErrNoHealthyShard = errors.New("fleet: no healthy shard")

// Frontend is the stateless half of the distributed tier: it owns candidate
// expansion (per-user scoring coefficients, UQ ids), shard placement and
// health, but no engine state — everything it holds can be rebuilt by
// restarting it, at the cost of re-expanding and re-routing from scratch.
type Frontend struct {
	exp        *service.Expander
	placer     *service.Placer
	svc        *metrics.Service
	fm         *metrics.Fleet
	adm        *admission.Controller // nil unless rate limits are configured
	backends   []Backend
	rehome     float64
	redispatch bool

	mu   sync.Mutex
	down []bool // marked by failed probes/searches, cleared by probes

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewFrontend builds a front-end over the shard backends. The workload is
// needed only for expansion (schema, catalog, generator config) — the
// front-end never touches its data.
func NewFrontend(w *workload.Workload, cfg FrontendConfig, backends []Backend) (*Frontend, error) {
	if len(backends) == 0 {
		return nil, errors.New("fleet: front-end needs at least one backend")
	}
	svcCfg := cfg.Service
	svcCfg.Shards = len(backends)
	svc := &metrics.Service{}
	placer, err := service.NewPlacer(svcCfg.Router, len(backends), svc)
	if err != nil {
		return nil, err
	}
	fm := cfg.Metrics
	if fm == nil {
		fm = &metrics.Fleet{}
	}
	f := &Frontend{
		exp:        service.NewExpander(w, svcCfg),
		placer:     placer,
		svc:        svc,
		fm:         fm,
		adm:        admission.NewController(svcCfg.Admission),
		backends:   backends,
		rehome:     cfg.RehomeFactor,
		redispatch: cfg.Redispatch,
		down:       make([]bool, len(backends)),
		stop:       make(chan struct{}),
	}
	if cfg.ProbeInterval > 0 {
		timeout := cfg.ProbeTimeout
		if timeout <= 0 {
			timeout = 2 * time.Second
		}
		f.wg.Add(1)
		go f.probeLoop(cfg.ProbeInterval, timeout)
	}
	return f, nil
}

// Metrics returns the front-end's fleet counters.
func (f *Frontend) Metrics() *metrics.Fleet { return f.fm }

// healthy reports whether backend i is currently routable.
func (f *Frontend) healthy(i int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return !f.down[i]
}

func (f *Frontend) setDown(i int, down bool) {
	f.mu.Lock()
	changed := f.down[i] != down
	f.down[i] = down
	f.mu.Unlock()
	if changed && down {
		f.fm.HealthTrips.Inc()
	}
}

// Search expands the keyword query for the user and ships it to the placed
// shard. If the shard is unreachable (connect failure, open circuit, drain
// rejection that outlived the client's retries), the backend is marked down
// and the search fails over to the next healthy placement; an error after
// the query may have been admitted is surfaced instead — resubmitting it
// could execute the query twice. An overload shed — the front-desk rate
// limiter here, or a shard answering with a shed reason — is surfaced
// without marking anything down: saturation is backpressure, not failure.
func (f *Frontend) Search(ctx context.Context, user string, keywords []string, k int) (*ResultView, error) {
	if shed := f.adm.Admit(user, time.Now()); shed != nil {
		f.svc.Shed.Inc()
		f.svc.ShedUserRate.Inc()
		return nil, shed
	}
	uq, err := f.exp.Expand(user, keywords, k)
	if err != nil {
		return nil, err
	}
	f.svc.Requests.Inc()
	tried := make(map[int]bool)
	for {
		sh, redirected := f.placer.Route(keywords, func(i int) bool {
			return !tried[i] && f.healthy(i)
		})
		if tried[sh] {
			// The router had no admissible shard left and fell back to an
			// already-failed one: every backend is down.
			return nil, fmt.Errorf("%w for %v", ErrNoHealthyShard, keywords)
		}
		if redirected {
			f.fm.RouteUnhealthy.Inc()
		}
		view, err := f.backends[sh].Search(ctx, uq)
		if err == nil {
			view.Shard = sh
			f.maybeRehome(ctx, keywords)
			return view, nil
		}
		var rpcErr *RPCError
		if errors.As(err, &rpcErr) && rpcErr.Shed() && rpcErr.Reason != admission.ReasonDrain {
			// The shard shed the search under overload (rate, queue, or
			// deadline). It is saturated, not down — failing over would
			// defeat the rate limit and mask the saturation signal, so the
			// shed is surfaced to the caller with its retryability intact.
			f.fm.ShardSheds.Inc()
			return nil, err
		}
		if !retryable(err) && !errors.Is(err, ErrCircuitOpen) {
			if f.redispatch && transportFailure(err) && ctx.Err() == nil &&
				f.confirmAborted(ctx, sh, uq.ID) {
				// The shard crashed with the search in flight: the process is
				// provably gone, or its restart's admission journal lists the
				// query as a recovered abort. Either way the original response
				// can never be delivered, so resubmitting to another shard
				// cannot double-deliver — and the deterministic engine answers
				// the re-run byte-identically.
				f.fm.Redispatches.Inc()
				f.setDown(sh, true)
				tried[sh] = true
				continue
			}
			return nil, err
		}
		// The query provably never reached admission on sh; route around it.
		f.setDown(sh, true)
		tried[sh] = true
	}
}

// redispatchProbeTimeout bounds the crash-confirmation probes.
const redispatchProbeTimeout = 2 * time.Second

// transportFailure reports whether err is a raw transport error with no HTTP
// response behind it — the connection died mid-request, so the shard may have
// admitted the query but can no longer answer it. Client-side timeouts and
// context cancellations are excluded: there the shard is (as far as we know)
// alive and still executing.
func transportFailure(err error) bool {
	var rpcErr *RPCError
	return !errors.As(err, &rpcErr) && !errors.Is(err, ErrCircuitOpen) &&
		!errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// confirmAborted verifies that a search which died on the wire was a crash
// casualty: the shard process is unreachable at the connection level (its
// in-flight responses died with it), or it restarted and its admission
// journal lists the query as a recovered abort. Anything weaker — the shard
// answers health and does not report the query aborted — returns false and
// the original error is surfaced, preserving the strict no-double-execution
// rule for mere packet loss.
func (f *Frontend) confirmAborted(ctx context.Context, sh int, uqID string) bool {
	pctx, cancel := context.WithTimeout(ctx, redispatchProbeTimeout)
	defer cancel()
	if _, err := f.backends[sh].Health(pctx); err != nil {
		return connectFailure(err)
	}
	rv, err := f.backends[sh].Recovered(pctx)
	if err != nil {
		return false
	}
	for _, q := range rv.Queries {
		if q.ID == uqID {
			return true
		}
	}
	return false
}

// maybeRehome migrates the topic to its affinity-suggested home when the
// migrator is enabled. Failures only log: migration is an optimization, and
// a failed export/import leaves correctness to the consistency gate and
// source replay.
func (f *Frontend) maybeRehome(ctx context.Context, keywords []string) {
	if f.rehome <= 1 {
		return
	}
	from, to, ok := f.placer.SuggestRehome(keywords, f.rehome)
	if !ok || !f.healthy(to) {
		return
	}
	if err := f.MigrateTopic(ctx, keywords, from, to); err != nil {
		log.Printf("fleet: rehome %v %d->%d: %v", keywords, from, to, err)
	}
}

// MigrateTopic moves a topic's retained state between shards over the
// migrate RPCs and re-pins the placer. The export is already detached from
// the source when import runs; segments the target's consistency gate
// rejects are dropped there and re-derived by source replay.
func (f *Frontend) MigrateTopic(ctx context.Context, keywords []string, from, to int) error {
	if from == to || from < 0 || to < 0 || from >= len(f.backends) || to >= len(f.backends) {
		return fmt.Errorf("fleet: migrate %d -> %d out of range", from, to)
	}
	exp, err := f.backends[from].Export(ctx, keywords)
	if err != nil {
		return fmt.Errorf("fleet: export from shard %d: %w", from, err)
	}
	counts, err := f.backends[to].Import(ctx, exp)
	if err != nil {
		return fmt.Errorf("fleet: import into shard %d: %w", to, err)
	}
	f.placer.CommitRehome(keywords, from, to)
	f.fm.Migrations.Inc()
	f.fm.MigrationSegs.Add(int64(len(exp.Segments)))
	f.fm.MigrationRows.Add(int64(counts.Rows))
	f.fm.MigrationDrops.Add(int64(counts.Dropped))
	return nil
}

// DrainBackend drains shard i — admissions stop, in-flight searches finish —
// and imports its resident handoff into the first healthy other shard. The
// drained backend stays registered but unroutable until a probe sees it
// healthy again.
func (f *Frontend) DrainBackend(ctx context.Context, i int) (*state.TopicExport, error) {
	if i < 0 || i >= len(f.backends) {
		return nil, fmt.Errorf("fleet: drain of unknown backend %d", i)
	}
	f.setDown(i, true)
	exp, err := f.backends[i].Drain(ctx)
	if err != nil {
		return nil, err
	}
	if len(exp.Segments) == 0 {
		return exp, nil
	}
	for j := range f.backends {
		if j == i || !f.healthy(j) {
			continue
		}
		if _, err := f.backends[j].Import(ctx, exp); err != nil {
			log.Printf("fleet: drain handoff to shard %d: %v", j, err)
			continue
		}
		return exp, nil
	}
	// No healthy target: the state is simply gone, and the sources replay it
	// on demand — the same contract as a rejected segment.
	log.Printf("fleet: drain of shard %d found no healthy handoff target; %d segments dropped", i, len(exp.Segments))
	return exp, nil
}

// HealthzView aggregates per-shard health for the front-end's /healthz.
type HealthzView struct {
	OK     bool              `json:"ok"`
	Shards []ShardHealthView `json:"shards"`
}

// ShardHealthView is one backend's health as last observed.
type ShardHealthView struct {
	Shard           int    `json:"shard"`
	Endpoint        string `json:"endpoint,omitempty"`
	Healthy         bool   `json:"healthy"`
	Draining        bool   `json:"draining"`
	InFlight        int    `json:"in_flight"`
	State           string `json:"state,omitempty"`
	CheckpointGen   int    `json:"checkpoint_gen,omitempty"`
	RecoveredAborts int    `json:"recovered_aborts,omitempty"`
	Error           string `json:"error,omitempty"`
}

// Healthz probes every backend and aggregates: OK iff at least one shard is
// healthy and routable.
func (f *Frontend) Healthz(ctx context.Context) HealthzView {
	view := HealthzView{}
	for i, b := range f.backends {
		sv := ShardHealthView{Shard: i}
		if c, ok := b.(*Client); ok {
			sv.Endpoint = c.Endpoint()
		}
		hv, err := b.Health(ctx)
		if err != nil {
			sv.Error = err.Error()
			f.setDown(i, true)
		} else {
			sv.Healthy = hv.Healthy
			sv.Draining = hv.Draining
			sv.InFlight = hv.InFlight
			sv.State = hv.State
			sv.CheckpointGen = hv.CheckpointGen
			sv.RecoveredAborts = hv.RecoveredAborts
			f.setDown(i, !hv.Healthy)
		}
		if sv.Healthy {
			view.OK = true
		}
		view.Shards = append(view.Shards, sv)
	}
	return view
}

// Stats aggregates the fleet: front-end request counters and placement plus
// the sum of every reachable shard's engine counters.
func (f *Frontend) Stats(ctx context.Context) service.Stats {
	st := service.Stats{Service: f.svc.Snapshot(), Router: f.placer.Stats()}
	for i, b := range f.backends {
		bs, err := b.Stats(ctx)
		if err != nil {
			log.Printf("fleet: stats from shard %d: %v", i, err)
			continue
		}
		st.Work = st.Work.Add(bs.Work)
		for _, ss := range bs.Shards {
			ss.Shard = i
			st.Shards = append(st.Shards, ss)
		}
	}
	st.Shared = st.SharedSplit()
	return st
}

// probeLoop marks backends up/down from periodic health probes.
func (f *Frontend) probeLoop(interval, timeout time.Duration) {
	defer f.wg.Done()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-ticker.C:
		}
		for i, b := range f.backends {
			f.fm.HealthProbes.Inc()
			ctx, cancel := context.WithTimeout(context.Background(), timeout)
			hv, err := b.Health(ctx)
			cancel()
			f.setDown(i, err != nil || !hv.Healthy)
		}
	}
}

// Close stops the prober and releases the backend clients. It does not stop
// the shard processes — the front-end is stateless and restartable under
// them.
func (f *Frontend) Close() error {
	f.stopOnce.Do(func() { close(f.stop) })
	f.wg.Wait()
	var errs []error
	for _, b := range f.backends {
		if err := b.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
