package chaos

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
)

// Proc supervises one OS process for process-level fault injection: the
// failure mode the transport-level faults in this package cannot express is
// the whole shard dying — SIGKILL, no drain, no deferred cleanup, exactly
// what the crash-recovery tier must survive. Tests start a shard binary under
// a Proc, kill it mid-wave, and restart it over the same -recover-dir.
type Proc struct {
	cmd *exec.Cmd

	mu     sync.Mutex
	waited bool
	werr   error
}

// StartProc launches bin with args, wiring both output streams to logTo
// (nil = discard).
func StartProc(bin string, args []string, logTo io.Writer) (*Proc, error) {
	if logTo == nil {
		logTo = io.Discard
	}
	cmd := exec.Command(bin, args...)
	cmd.Stdout = logTo
	cmd.Stderr = logTo
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("chaos: start %s: %w", bin, err)
	}
	return &Proc{cmd: cmd}, nil
}

// Pid returns the supervised process id.
func (p *Proc) Pid() int { return p.cmd.Process.Pid }

// Kill delivers SIGKILL — the process gets no chance to flush, drain, or
// clean up — and reaps it. Idempotent.
func (p *Proc) Kill() error {
	p.cmd.Process.Kill() //nolint:errcheck // already-dead is fine
	return p.wait()
}

// Signal delivers sig without waiting (e.g. SIGTERM for a graceful drain).
func (p *Proc) Signal(sig os.Signal) error {
	return p.cmd.Process.Signal(sig)
}

// Wait reaps the process and returns its exit error. Idempotent.
func (p *Proc) Wait() error { return p.wait() }

func (p *Proc) wait() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.waited {
		p.waited = true
		p.werr = p.cmd.Wait()
	}
	return p.werr
}
