// Package chaos is the fleet tier's fault-injection harness: an
// http.RoundTripper that wraps a real transport and injects the failure modes
// a distributed serving tier must degrade through — added latency, refused
// connections, and connections that drop after the request was delivered.
//
// The injection point matters for correctness. A refusal is surfaced as a
// dial-op net.OpError, which the fleet client classifies as "provably never
// reached the shard" and may retry; a post-delivery drop is surfaced as a
// read-op error, which the client must NOT retry — the shard may have
// admitted and executed the request. The harness therefore exercises exactly
// the idempotency boundary the degradation contract pins: faults may cost
// answers or return errors, but they can never cause a query to execute
// twice.
//
// The random stream is seeded and independent of request timing only in
// count order: the i-th request through the transport sees a deterministic
// draw. Under concurrency the assignment of draws to requests varies, which
// is fine — fault-injection tests assert the contract (no wrong answers,
// front-end survives), never a particular fault placement.
package chaos

import (
	"errors"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/dist"
)

// Config tunes the injected faults. The zero value injects nothing.
type Config struct {
	// Latency is added to every request before it is sent; Jitter adds a
	// uniform extra in [0, Jitter).
	Latency time.Duration
	Jitter  time.Duration
	// RefuseProb is the probability a request fails with a connection
	// refusal before any bytes are sent (retryable at the client).
	RefuseProb float64
	// DropProb is the probability the connection "drops" after the request
	// was delivered and a response received: the response is discarded and a
	// read error surfaced (NOT retryable at the client — the request may
	// have executed).
	DropProb float64
}

// Stats counts injected faults.
type Stats struct {
	Requests int64 `json:"requests"`
	Refused  int64 `json:"refused"`
	Dropped  int64 `json:"dropped"`
}

// Transport injects faults around a base RoundTripper. Safe for concurrent
// use; SetConfig may flip the fault mix mid-flight (e.g. "healthy until wave
// 3, then flaky").
type Transport struct {
	base http.RoundTripper

	mu    sync.Mutex
	cfg   Config
	rng   *dist.RNG
	stats Stats
}

// New wraps base (nil = http.DefaultTransport) with fault injection drawn
// from a deterministic stream seeded by seed.
func New(base http.RoundTripper, seed uint64, cfg Config) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{base: base, cfg: cfg, rng: dist.New(seed)}
}

// SetConfig replaces the fault mix; in-flight requests keep the draws they
// already took.
func (t *Transport) SetConfig(cfg Config) {
	t.mu.Lock()
	t.cfg = cfg
	t.mu.Unlock()
}

// Stats snapshots the fault counters.
func (t *Transport) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// CloseIdleConnections forwards to the base transport so http.Client.
// CloseIdleConnections still releases pooled connections through the wrapper.
func (t *Transport) CloseIdleConnections() {
	if ci, ok := t.base.(interface{ CloseIdleConnections() }); ok {
		ci.CloseIdleConnections()
	}
}

// errRefused mimics a TCP connection refusal: the one failure mode after
// which the client knows no request bytes reached the server.
var errRefused = errors.New("chaos: connection refused")

// errDropped mimics a connection reset after the request was delivered.
var errDropped = errors.New("chaos: connection dropped mid-response")

// RoundTrip applies the fault plan to one request.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.Lock()
	cfg := t.cfg
	t.stats.Requests++
	refuse := cfg.RefuseProb > 0 && t.rng.Float64() < cfg.RefuseProb
	drop := cfg.DropProb > 0 && t.rng.Float64() < cfg.DropProb
	delay := cfg.Latency
	if cfg.Jitter > 0 {
		delay += time.Duration(t.rng.Float64() * float64(cfg.Jitter))
	}
	if refuse {
		t.stats.Refused++
	}
	t.mu.Unlock()

	if delay > 0 {
		timer := time.NewTimer(delay)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		}
	}
	if refuse {
		return nil, &net.OpError{Op: "dial", Net: "tcp", Err: errRefused}
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if drop {
		resp.Body.Close()
		t.mu.Lock()
		t.stats.Dropped++
		t.mu.Unlock()
		return nil, &net.OpError{Op: "read", Net: "tcp", Err: errDropped}
	}
	return resp, nil
}
