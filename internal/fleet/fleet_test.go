package fleet_test

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/service"
	"repro/internal/workload"
)

var fleetTopics = [][]string{
	{"metabolism", "protein"},
	{"membrane", "gene"},
	{"plasma membrane", "protein"},
	{"metabolism", "gene"},
	{"metabolism", "protein"},
	{"membrane", "gene"},
}

// newShardHTTP starts a shard engine for fleet slot `slot` behind a real HTTP
// server, as qsys-shard would run it.
func newShardHTTP(t *testing.T, slot int, seed uint64) (*httptest.Server, *fleet.ShardServer) {
	t.Helper()
	w, err := workload.Bio()
	if err != nil {
		t.Fatal(err)
	}
	svc := service.New(w, service.Config{
		Seed: seed, K: 10, Shards: 1, ShardIDOffset: slot,
		Workers: 1, BatchWindow: 0,
	})
	ss := fleet.NewShardServer(svc)
	srv := httptest.NewServer(ss.Handler())
	t.Cleanup(func() { srv.Close(); ss.Close() })
	return srv, ss
}

func newTestFrontend(t *testing.T, seed uint64, servers []*httptest.Server, cfg fleet.FrontendConfig) *fleet.Frontend {
	t.Helper()
	w, err := workload.Bio()
	if err != nil {
		t.Fatal(err)
	}
	var backends []fleet.Backend
	for _, srv := range servers {
		backends = append(backends, fleet.NewClient(srv.URL, fleet.ClientConfig{
			MaxRetries:   2,
			RetryBackoff: 2 * time.Millisecond,
			Metrics:      cfg.Metrics,
		}))
	}
	if cfg.Service.Seed == 0 {
		cfg.Service = service.Config{Seed: seed, K: 10, Router: service.RouterAffinity}
	}
	fr, err := fleet.NewFrontend(w, cfg, backends)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fr.Close() }) //nolint:errcheck
	return fr
}

// TestFleetDigestParityHTTP is the tentpole invariant end to end: the same
// seeded search sequence answered by a single 2-shard process and by a
// front-end over two shard HTTP servers must digest byte-identically.
func TestFleetDigestParityHTTP(t *testing.T) {
	const seed = 11

	// Single-process control.
	w, err := workload.Bio()
	if err != nil {
		t.Fatal(err)
	}
	single := service.New(w, service.Config{
		Seed: seed, K: 10, Shards: 2, Router: service.RouterAffinity,
		Workers: 1, BatchWindow: 0,
	})
	defer single.Close() //nolint:errcheck
	hSingle := sha256.New()
	for _, kw := range fleetTopics {
		res, err := single.Search(context.Background(), "parity", kw, 10)
		if err != nil {
			t.Fatal(err)
		}
		fleet.DigestView(hSingle, fleet.ViewOf(res))
	}

	// Distributed run: two shard processes (distinct workload instances —
	// generation is seeded, so the copies are byte-equivalent) + front-end.
	srv0, _ := newShardHTTP(t, 0, seed)
	srv1, _ := newShardHTTP(t, 1, seed)
	fr := newTestFrontend(t, seed, []*httptest.Server{srv0, srv1}, fleet.FrontendConfig{})
	hMulti := sha256.New()
	for _, kw := range fleetTopics {
		view, err := fr.Search(context.Background(), "parity", kw, 10)
		if err != nil {
			t.Fatal(err)
		}
		if view.Shard < 0 || view.Shard > 1 {
			t.Fatalf("result claims shard %d of a 2-slot fleet", view.Shard)
		}
		fleet.DigestView(hMulti, view)
	}

	got, want := hex.EncodeToString(hMulti.Sum(nil)), hex.EncodeToString(hSingle.Sum(nil))
	if got != want {
		t.Fatalf("multi-process digest %s != single-process digest %s", got, want)
	}
}

// TestDrainRejectsRetryablyAndFrontendFailsOver pins the drain contract: a
// draining shard turns searches away as retryable 503s, and the front-end
// routes the search to a healthy shard instead of failing it.
func TestDrainRejectsRetryablyAndFrontendFailsOver(t *testing.T) {
	srv0, _ := newShardHTTP(t, 0, 5)
	srv1, ss1 := newShardHTTP(t, 1, 5)
	fr := newTestFrontend(t, 5, []*httptest.Server{srv0, srv1}, fleet.FrontendConfig{})

	// Warm both shards so the router has real placements.
	for _, kw := range fleetTopics {
		if _, err := fr.Search(context.Background(), "drainer", kw, 5); err != nil {
			t.Fatal(err)
		}
	}

	exp, err := ss1.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !ss1.Draining() {
		t.Fatal("shard does not report draining")
	}
	_ = exp // handoff content exercised by the service-level migration tests

	// A direct client search against the draining shard must surface a
	// retryable RPC rejection (after its bounded retries).
	c := fleet.NewClient(srv1.URL, fleet.ClientConfig{MaxRetries: 1, RetryBackoff: time.Millisecond})
	w, err := workload.Bio()
	if err != nil {
		t.Fatal(err)
	}
	exp2 := service.NewExpander(w, service.Config{Seed: 5, K: 5})
	uq, err := exp2.Expand("drainer", []string{"metabolism", "protein"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Search(context.Background(), uq)
	var rpcErr *fleet.RPCError
	if !errors.As(err, &rpcErr) || rpcErr.Status != 503 || !rpcErr.Retryable {
		t.Fatalf("draining shard answered %v, want retryable 503", err)
	}

	// Every topic — including ones previously homed on shard 1 — must still
	// answer through the front-end.
	for _, kw := range fleetTopics {
		view, err := fr.Search(context.Background(), "drainer", kw, 5)
		if err != nil {
			t.Fatalf("search %v after drain: %v", kw, err)
		}
		if view.Shard == 1 {
			t.Fatalf("search %v routed to the draining shard", kw)
		}
	}

	// The aggregated healthz must show shard 1 draining and the fleet OK.
	hz := fr.Healthz(context.Background())
	if !hz.OK {
		t.Fatal("fleet healthz not OK with one healthy shard")
	}
	if !hz.Shards[1].Draining || hz.Shards[1].Healthy {
		t.Fatalf("healthz shard 1 = %+v, want draining/unhealthy", hz.Shards[1])
	}
	if !hz.Shards[0].Healthy {
		t.Fatalf("healthz shard 0 = %+v, want healthy", hz.Shards[0])
	}
}

// TestClientCircuitBreaker pins the breaker lifecycle: consecutive connect
// failures open the circuit (fail fast, no dial); the cooloff admits a single
// half-open probe, and a failed probe re-opens the circuit for the next caller.
func TestClientCircuitBreaker(t *testing.T) {
	srv, _ := newShardHTTP(t, 0, 7)
	w, err := workload.Bio()
	if err != nil {
		t.Fatal(err)
	}
	exp := service.NewExpander(w, service.Config{Seed: 7, K: 5})
	uq, err := exp.Expand("breaker", []string{"metabolism", "protein"}, 5)
	if err != nil {
		t.Fatal(err)
	}

	url := srv.URL
	srv.Close() // connections now refused

	c := fleet.NewClient(url, fleet.ClientConfig{
		MaxRetries:       1,
		RetryBackoff:     time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooloff:   50 * time.Millisecond,
	})
	// First search burns through its attempts and trips the breaker.
	if _, err := c.Search(context.Background(), uq); err == nil {
		t.Fatal("search against closed endpoint succeeded")
	}
	// Now the circuit is open: fail fast without touching the network.
	if _, err := c.Health(context.Background()); !errors.Is(err, fleet.ErrCircuitOpen) {
		t.Fatalf("open circuit returned %v, want ErrCircuitOpen", err)
	}
	// After the cooloff a probe is admitted; it still fails (endpoint is
	// gone) and the circuit stays open for the next caller.
	time.Sleep(60 * time.Millisecond)
	if _, err := c.Health(context.Background()); errors.Is(err, fleet.ErrCircuitOpen) {
		t.Fatal("cooloff did not admit a half-open probe")
	}
	if _, err := c.Health(context.Background()); !errors.Is(err, fleet.ErrCircuitOpen) {
		t.Fatalf("circuit closed after a failed probe")
	}
}

// TestFrontendRoutesAroundDeadShard kills one shard process outright: the
// front-end must mark it down on the failed search and answer from the
// survivor, and healthz must report the fleet degraded but OK.
func TestFrontendRoutesAroundDeadShard(t *testing.T) {
	srv0, _ := newShardHTTP(t, 0, 9)
	srv1, _ := newShardHTTP(t, 1, 9)
	fr := newTestFrontend(t, 9, []*httptest.Server{srv0, srv1}, fleet.FrontendConfig{})

	for _, kw := range fleetTopics {
		if _, err := fr.Search(context.Background(), "survivor", kw, 5); err != nil {
			t.Fatal(err)
		}
	}
	srv1.Close()

	for _, kw := range fleetTopics {
		view, err := fr.Search(context.Background(), "survivor", kw, 5)
		if err != nil {
			t.Fatalf("search %v with shard 1 dead: %v", kw, err)
		}
		if view.Shard != 0 {
			t.Fatalf("search %v answered by shard %d, want 0", kw, view.Shard)
		}
	}

	hz := fr.Healthz(context.Background())
	if !hz.OK {
		t.Fatal("fleet healthz not OK with one live shard")
	}
	if hz.Shards[1].Error == "" {
		t.Fatal("healthz hides the dead shard's probe failure")
	}
}

// TestMigrationOverRPC pins live migration across processes: a fleet where a
// topic is searched, migrated over the export/import RPCs and searched again
// must digest identically to a fleet where the topic stays put. Segments the
// target's consistency gate rejects (cross-process stream positions) are
// dropped and re-derived by source replay — never served wrong.
func TestMigrationOverRPC(t *testing.T) {
	topic := []string{"metabolism", "protein"}
	run := func(migrate bool) string {
		srv0, _ := newShardHTTP(t, 0, 13)
		srv1, _ := newShardHTTP(t, 1, 13)
		fr := newTestFrontend(t, 13, []*httptest.Server{srv0, srv1}, fleet.FrontendConfig{})

		h := sha256.New()
		view, err := fr.Search(context.Background(), "mover", topic, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(view.Answers) == 0 {
			t.Fatal("first search produced no answers")
		}
		fleet.DigestView(h, view)

		if migrate {
			from, to := view.Shard, 1-view.Shard
			if err := fr.MigrateTopic(context.Background(), topic, from, to); err != nil {
				t.Fatal(err)
			}
			if got := fr.Metrics().Migrations.Value(); got != 1 {
				t.Fatalf("migration counter = %d, want 1", got)
			}
			again, err := fr.Search(context.Background(), "mover", topic, 5)
			if err != nil {
				t.Fatal(err)
			}
			if again.Shard != to {
				t.Fatalf("post-migration search ran on shard %d, want %d", again.Shard, to)
			}
			fleet.DigestView(h, again)
		} else {
			again, err := fr.Search(context.Background(), "mover", topic, 5)
			if err != nil {
				t.Fatal(err)
			}
			if again.Shard != view.Shard {
				t.Fatalf("un-migrated topic moved from shard %d to %d", view.Shard, again.Shard)
			}
			fleet.DigestView(h, again)
		}
		return hex.EncodeToString(h.Sum(nil))
	}

	stay := run(false)
	migrated := run(true)
	if stay != migrated {
		t.Fatalf("migration changed results: stay=%s migrate=%s", stay, migrated)
	}
}
