// Package fleet is the distributed serving tier: it splits the single-process
// service into a stateless front-end and N shard processes connected by a
// compact HTTP/JSON RPC surface.
//
// The decomposition follows the determinism contract the digest-parity gate
// pins. The front-end owns everything whose outcome depends on the *order of
// the whole request stream* — candidate-network expansion with per-user
// scoring coefficients, UQ id assignment, and shard placement (the PR4
// affinity router) — and ships fully expanded user queries to shard
// processes. A shard process owns exactly one engine (plan graph, ATC, query
// state manager), configured with service.Config.ShardIDOffset so that its
// RNG streams are byte-identical to the corresponding in-process shard of a
// single-process service. Result digests are therefore byte-identical whether
// the shards live in one process or N.
//
// RPC surface (all JSON over POST unless noted):
//
//	POST /rpc/search          WireUQ → ResultView
//	GET  /rpc/stats           service.Stats
//	GET  /rpc/health          HealthView
//	POST /rpc/migrate/export  exportRequest → state.TopicExport
//	POST /rpc/migrate/import  state.TopicExport → ImportCounts
//	POST /rpc/drain           {} → state.TopicExport (full resident handoff)
//
// Live topic migration reuses the PR3 spill segment encoding as its wire
// format; imports are staged behind the same consistency gate as disk
// revival, so a mismatched segment is dropped and re-derived by source
// replay — never served wrong.
package fleet

import (
	"fmt"
	"hash"
	"io"
	"strings"

	"repro/internal/cq"
	"repro/internal/recovery"
	"repro/internal/scoring"
	"repro/internal/service"
	"repro/internal/tuple"
)

// WireValue is the JSON form of a tuple.Value. Kind strings mirror
// tuple.Kind.String(); float payloads round-trip exactly (encoding/json emits
// the shortest representation that parses back to the same bits).
type WireValue struct {
	Kind  string  `json:"k"`
	Int   int64   `json:"i,omitempty"`
	Float float64 `json:"f,omitempty"`
	Str   string  `json:"s,omitempty"`
}

func encodeValue(v tuple.Value) WireValue {
	switch v.Kind() {
	case tuple.KindInt:
		return WireValue{Kind: "int", Int: v.AsInt()}
	case tuple.KindFloat:
		return WireValue{Kind: "float", Float: v.AsFloat()}
	case tuple.KindString:
		return WireValue{Kind: "string", Str: v.AsString()}
	default:
		return WireValue{Kind: "null"}
	}
}

func decodeValue(w WireValue) (tuple.Value, error) {
	switch w.Kind {
	case "int":
		return tuple.Int(w.Int), nil
	case "float":
		return tuple.Float(w.Float), nil
	case "string":
		return tuple.String(w.Str), nil
	case "null", "":
		return tuple.Null(), nil
	default:
		return tuple.Value{}, fmt.Errorf("fleet: unknown value kind %q", w.Kind)
	}
}

// WireTerm is one atom argument: a variable id, or a constant when Const is
// present.
type WireTerm struct {
	Var   int        `json:"v"`
	Const *WireValue `json:"c,omitempty"`
}

// WireAtom is one relational atom of a conjunctive query.
type WireAtom struct {
	Rel  string     `json:"rel"`
	DB   string     `json:"db"`
	Args []WireTerm `json:"args"`
}

// WireModel carries a scoring model. Agg is the raw scoring.Agg ordinal.
type WireModel struct {
	Agg     uint8     `json:"agg"`
	Static  float64   `json:"static"`
	Weights []float64 `json:"weights"`
	Label   string    `json:"label"`
}

// WireCQ is one candidate network of a user query.
type WireCQ struct {
	ID       string     `json:"id"`
	UQID     string     `json:"uq_id"`
	Atoms    []WireAtom `json:"atoms"`
	Model    WireModel  `json:"model"`
	HeadVars []int      `json:"head_vars,omitempty"`
}

// WireUQ is the fully expanded user query the front-end ships to a shard.
type WireUQ struct {
	ID       string   `json:"id"`
	Keywords []string `json:"keywords"`
	K        int      `json:"k"`
	CQs      []WireCQ `json:"cqs"`
}

// EncodeUQ converts an expanded user query to its wire form.
func EncodeUQ(uq *cq.UQ) *WireUQ {
	w := &WireUQ{ID: uq.ID, Keywords: uq.Keywords, K: uq.K}
	for _, q := range uq.CQs {
		wq := WireCQ{ID: q.ID, UQID: q.UQID, HeadVars: q.HeadVars}
		for _, a := range q.Atoms {
			wa := WireAtom{Rel: a.Rel, DB: a.DB}
			for _, t := range a.Args {
				wt := WireTerm{Var: t.Var}
				if t.IsConst() {
					v := encodeValue(t.Const)
					wt.Const = &v
				}
				wa.Args = append(wa.Args, wt)
			}
			wq.Atoms = append(wq.Atoms, wa)
		}
		if q.Model != nil {
			wq.Model = WireModel{
				Agg:     uint8(q.Model.AggKind),
				Static:  q.Model.Static,
				Weights: q.Model.Weights,
				Label:   q.Model.Label,
			}
		}
		w.CQs = append(w.CQs, wq)
	}
	return w
}

// DecodeUQ reconstructs the user query and validates every member CQ — a
// shard process must never admit a structurally broken query from the wire.
func DecodeUQ(w *WireUQ) (*cq.UQ, error) {
	if w.ID == "" {
		return nil, fmt.Errorf("fleet: user query without id")
	}
	uq := &cq.UQ{ID: w.ID, Keywords: w.Keywords, K: w.K}
	for _, wq := range w.CQs {
		q := &cq.CQ{ID: wq.ID, UQID: wq.UQID, HeadVars: wq.HeadVars}
		for _, wa := range wq.Atoms {
			a := &cq.Atom{Rel: wa.Rel, DB: wa.DB}
			for _, wt := range wa.Args {
				if wt.Const != nil {
					v, err := decodeValue(*wt.Const)
					if err != nil {
						return nil, fmt.Errorf("fleet: %s: %w", wq.ID, err)
					}
					a.Args = append(a.Args, cq.C(v))
				} else {
					a.Args = append(a.Args, cq.V(wt.Var))
				}
			}
			q.Atoms = append(q.Atoms, a)
		}
		q.Model = &scoring.Model{
			AggKind: scoring.Agg(wq.Model.Agg),
			Static:  wq.Model.Static,
			Weights: wq.Model.Weights,
			Label:   wq.Model.Label,
		}
		if err := q.Validate(); err != nil {
			return nil, fmt.Errorf("fleet: wire query rejected: %w", err)
		}
		uq.CQs = append(uq.CQs, q)
	}
	return uq, nil
}

// AnswerView is one ranked answer with its base tuples reduced to their
// qualified identities ("Relation:Identity") — exactly the bytes the result
// digest is built from, so a view digests identically to the tuples it
// replaced.
type AnswerView struct {
	Rank  int      `json:"rank"`
	Score float64  `json:"score"`
	Query string   `json:"query"`
	IDs   []string `json:"ids"`
}

// ResultView is a completed search in wire form.
type ResultView struct {
	ID                string       `json:"id"`
	Keywords          []string     `json:"keywords"`
	Answers           []AnswerView `json:"answers"`
	CandidateNetworks int          `json:"candidateNetworks"`
	ExecutedNetworks  int          `json:"executedNetworks"`
	Shard             int          `json:"shard"`
	BatchSize         int          `json:"batchSize"`
	EngineLatencyNS   int64        `json:"engineLatencyNS"`
	WallLatencyNS     int64        `json:"wallLatencyNS"`
}

// ViewOf flattens a service result for the wire.
func ViewOf(res *service.Result) *ResultView {
	v := &ResultView{
		ID:                res.ID,
		Keywords:          res.Keywords,
		CandidateNetworks: res.CandidateNetworks,
		ExecutedNetworks:  res.ExecutedNetworks,
		Shard:             res.Shard,
		BatchSize:         res.BatchSize,
		EngineLatencyNS:   int64(res.EngineLatency),
		WallLatencyNS:     int64(res.WallLatency),
	}
	for _, a := range res.Answers {
		av := AnswerView{Rank: a.Rank, Score: a.Score, Query: a.Query}
		for _, t := range a.Tuples {
			av.IDs = append(av.IDs, t.QualifiedIdentity())
		}
		v.Answers = append(v.Answers, av)
	}
	return v
}

// DigestView writes the view into a result digest with byte-for-byte the
// format benchrun applies to in-process results: "id|[kw kw]|n\n" then per
// answer "rank|score|query|" followed by each tuple's qualified identity and
// '&'. A multi-process run therefore digests identically to the
// single-process run it must match.
func DigestView(h hash.Hash, v *ResultView) {
	fmt.Fprintf(h, "%s|%v|%d\n", v.ID, v.Keywords, len(v.Answers))
	for _, a := range v.Answers {
		fmt.Fprintf(h, "%d|%.9g|%s|", a.Rank, a.Score, a.Query)
		for _, id := range a.IDs {
			io.WriteString(h, id)
			io.WriteString(h, "&")
		}
		io.WriteString(h, "\n")
	}
}

// DigestAnswers folds only the view's ranked answers — rank, score,
// candidate network with the UQ prefix stripped ("UQ7.CQ2" → "CQ2"), base
// tuple identities. Two runs that issued the same logical queries compare
// equal even when their UQ numbering diverged (a run that shed some arrivals
// still numbers every expansion), which makes this the digest of the
// degradation contract: an overloaded run must answer each query it serves
// byte-identically to the unloaded run.
func DigestAnswers(h hash.Hash, v *ResultView) {
	for _, a := range v.Answers {
		q := a.Query
		if i := strings.Index(q, "."); i >= 0 {
			q = q[i+1:]
		}
		fmt.Fprintf(h, "%d|%.9g|%s|", a.Rank, a.Score, q)
		for _, id := range a.IDs {
			io.WriteString(h, id)
			io.WriteString(h, "&")
		}
		io.WriteString(h, "\n")
	}
}

// HealthView is a shard's self-reported health. State is the lifecycle
// phase: "ready", "recovering" (a warm restart is importing its checkpoint —
// the front-end must not route searches yet), or "draining". CheckpointGen
// is the newest durable checkpoint generation (0 = none / recovery
// disabled); RecoveredAborts counts the queries the admission journal proved
// in flight at the last crash.
type HealthView struct {
	Healthy         bool   `json:"healthy"`
	Draining        bool   `json:"draining"`
	InFlight        int    `json:"in_flight"`
	State           string `json:"state,omitempty"`
	CheckpointGen   int    `json:"checkpoint_gen,omitempty"`
	RecoveredAborts int    `json:"recovered_aborts,omitempty"`
}

// RecoveredView lists the queries a restarted shard's admission journal
// proved were in flight when the previous process crashed. The front-end's
// re-dispatch path consults it to confirm a failed search was a crash
// casualty before resubmitting it elsewhere.
type RecoveredView struct {
	Count   int                    `json:"count"`
	Queries []recovery.QueryRecord `json:"queries,omitempty"`
}

// ImportCounts reports what a migration import did with its segments:
// installed behind the consistency gate versus dropped (re-derived by source
// replay), plus the staged row total.
type ImportCounts struct {
	Installed int `json:"installed"`
	Dropped   int `json:"dropped"`
	Rows      int `json:"rows"`
}

// exportRequest asks a shard to serialize and discard one topic's idle state.
type exportRequest struct {
	Keywords []string `json:"keywords"`
}

// wireError is the RPC error envelope. Retryable marks rejections that
// happened strictly before admission (a draining shard turning a search
// away, an overload shed at the rate limiter or the bounded queue), which a
// client may safely resubmit; anything after admission must not be retried —
// the request may have executed. Reason carries the admission shed reason
// (admission.Reason* constants) so the front-end can tell saturation from
// failure: a shed shard is busy, not down. RetryAfterMS is the shed's
// Retry-After hint in milliseconds.
type wireError struct {
	Error        string `json:"error"`
	Retryable    bool   `json:"retryable,omitempty"`
	Reason       string `json:"reason,omitempty"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}
