package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sync"
	"time"

	"repro/internal/admission"
	"repro/internal/service"
	"repro/internal/state"
)

// ShardServer exposes one in-process service as a shard of the distributed
// tier. It owns the drain lifecycle: once draining, searches are turned away
// with a retryable 503 (they were rejected strictly before admission, so
// resubmitting elsewhere is safe), in-flight searches run to completion, and
// the resident state is exported for handoff.
type ShardServer struct {
	svc *service.Service

	// DrainDeadline bounds how long a drain waits for in-flight searches
	// before aborting them so the state handoff can complete (0 = the 60s
	// default). Set before serving.
	DrainDeadline time.Duration

	mu       sync.Mutex
	draining bool
	// recovering marks a warm restart that has not yet imported its
	// checkpoint: searches are refused (retryable — nothing was admitted) and
	// health reports unhealthy so the front-end keeps the shard unrouted
	// until the import finishes.
	recovering bool
	inflight   int
	// idle is closed when draining has been requested and the last in-flight
	// search has finished.
	idle chan struct{}
}

// NewShardServer wraps a service (normally Shards=1 with the slot's
// ShardIDOffset) for serving.
func NewShardServer(svc *service.Service) *ShardServer {
	return &ShardServer{svc: svc}
}

// Handler returns the shard's RPC mux.
func (s *ShardServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /rpc/search", s.handleSearch)
	mux.HandleFunc("GET /rpc/stats", s.handleStats)
	mux.HandleFunc("GET /rpc/health", s.handleHealth)
	mux.HandleFunc("GET /rpc/recovered", s.handleRecovered)
	mux.HandleFunc("POST /rpc/migrate/export", s.handleExport)
	mux.HandleFunc("POST /rpc/migrate/import", s.handleImport)
	mux.HandleFunc("POST /rpc/drain", s.handleDrain)
	return mux
}

// beginSearch claims an in-flight slot unless the shard is draining or still
// recovering; the refusal reason rides back for the 503. The claim and the
// state checks are one critical section, so no search can slip past a drain
// that has already counted the in-flight set or reach an engine whose
// checkpoint import has not finished.
func (s *ShardServer) beginSearch() (bool, string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.draining:
		return false, "shard draining"
	case s.recovering:
		return false, "shard recovering"
	}
	s.inflight++
	return true, ""
}

func (s *ShardServer) endSearch() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inflight--
	if s.draining && s.inflight == 0 && s.idle != nil {
		close(s.idle)
		s.idle = nil
	}
}

// Draining reports whether the shard has stopped admitting searches.
func (s *ShardServer) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// InFlight reports the number of searches currently executing.
func (s *ShardServer) InFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inflight
}

func (s *ShardServer) handleSearch(rw http.ResponseWriter, req *http.Request) {
	ok, refusal := s.beginSearch()
	if !ok {
		// Refused strictly before admission — retryable by construction.
		writeRPCError(rw, http.StatusServiceUnavailable, refusal, true)
		return
	}
	defer s.endSearch()

	var wire WireUQ
	if err := json.NewDecoder(req.Body).Decode(&wire); err != nil {
		writeRPCError(rw, http.StatusBadRequest, err.Error(), false)
		return
	}
	uq, err := DecodeUQ(&wire)
	if err != nil {
		writeRPCError(rw, http.StatusUnprocessableEntity, err.Error(), false)
		return
	}
	res, err := s.svc.SearchUQ(req.Context(), uq)
	if err != nil {
		var shed *admission.ShedError
		switch {
		case errors.As(err, &shed):
			// A load shed is a 503 that keeps its provenance: the reason and
			// Retry-After hint ride the envelope, and the retryable flag is
			// exactly the shed's pre-admission claim.
			WriteShedError(rw, shed)
		case errors.Is(err, service.ErrClosed):
			// Closed before admission ever happened: safe to resubmit.
			writeRPCError(rw, http.StatusServiceUnavailable, err.Error(), true)
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			writeRPCError(rw, http.StatusRequestTimeout, err.Error(), false)
		default:
			writeRPCError(rw, http.StatusUnprocessableEntity, err.Error(), false)
		}
		return
	}
	writeRPCJSON(rw, ViewOf(res))
}

func (s *ShardServer) handleStats(rw http.ResponseWriter, req *http.Request) {
	st := s.svc.Stats()
	writeRPCJSON(rw, &st)
}

func (s *ShardServer) handleHealth(rw http.ResponseWriter, req *http.Request) {
	s.mu.Lock()
	draining, recovering, inflight := s.draining, s.recovering, s.inflight
	s.mu.Unlock()
	st := "ready"
	switch {
	case draining:
		st = "draining"
	case recovering:
		st = "recovering"
	}
	rs := s.svc.RecoveryStats()
	writeRPCJSON(rw, HealthView{
		Healthy:         !draining && !recovering,
		Draining:        draining,
		InFlight:        inflight,
		State:           st,
		CheckpointGen:   rs.Generation,
		RecoveredAborts: rs.JournaledAborts,
	})
}

func (s *ShardServer) handleRecovered(rw http.ResponseWriter, req *http.Request) {
	recs := s.svc.RecoveredAborts()
	writeRPCJSON(rw, RecoveredView{Count: len(recs), Queries: recs})
}

func (s *ShardServer) handleExport(rw http.ResponseWriter, req *http.Request) {
	var in exportRequest
	if err := json.NewDecoder(req.Body).Decode(&in); err != nil {
		writeRPCError(rw, http.StatusBadRequest, err.Error(), false)
		return
	}
	exp, err := s.svc.ExportTopic(0, in.Keywords)
	if err != nil {
		writeRPCError(rw, http.StatusUnprocessableEntity, err.Error(), false)
		return
	}
	writeRPCJSON(rw, exp)
}

func (s *ShardServer) handleImport(rw http.ResponseWriter, req *http.Request) {
	var exp state.TopicExport
	if err := json.NewDecoder(req.Body).Decode(&exp); err != nil {
		writeRPCError(rw, http.StatusBadRequest, err.Error(), false)
		return
	}
	installed, dropped, rows, err := s.svc.ImportTopic(0, &exp)
	if err != nil {
		writeRPCError(rw, http.StatusUnprocessableEntity, err.Error(), false)
		return
	}
	writeRPCJSON(rw, ImportCounts{Installed: installed, Dropped: dropped, Rows: rows})
}

func (s *ShardServer) handleDrain(rw http.ResponseWriter, req *http.Request) {
	exp, err := s.Drain(req.Context())
	if err != nil {
		writeRPCError(rw, http.StatusUnprocessableEntity, err.Error(), false)
		return
	}
	writeRPCJSON(rw, exp)
}

// drainTimeout bounds how long a drain waits for in-flight searches.
const drainTimeout = 60 * time.Second

// drainAbortGrace bounds the post-abort re-wait: aborted handlers only need
// to observe their settled response channels and return.
const drainAbortGrace = 5 * time.Second

// Drain stops admissions, waits for in-flight searches to finish their
// merges, and exports the shard's full resident state for handoff. Idempotent
// on the flag; a second drain exports whatever (typically nothing) remains.
//
// The idle wait is bounded by DrainDeadline: a merge that never converges
// (the engine turns non-convergent rounds into per-merge errors, but a
// pathological one can still grind for a long time) must not wedge the drain
// forever. Past the deadline every in-flight search is aborted with a
// non-retryable drain shed — their merges canceled and unlinked — and the
// export handoff proceeds over the now-quiescent engine.
func (s *ShardServer) Drain(ctx context.Context) (*state.TopicExport, error) {
	s.mu.Lock()
	s.draining = true
	var idle chan struct{}
	if s.inflight > 0 {
		if s.idle == nil {
			s.idle = make(chan struct{})
		}
		idle = s.idle
	}
	s.mu.Unlock()
	if idle != nil {
		deadline := s.DrainDeadline
		if deadline <= 0 {
			deadline = drainTimeout
		}
		select {
		case <-idle:
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(deadline):
			n := s.svc.AbortInFlight(&admission.ShedError{Reason: admission.ReasonDrain})
			log.Printf("fleet: drain deadline after %v: aborted %d in-flight searches", deadline, n)
			// The aborted handlers just need to deliver their 503s and
			// return; give them a short grace before exporting regardless —
			// the engine itself is already quiescent.
			select {
			case <-idle:
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(drainAbortGrace):
			}
		}
	}
	return s.svc.ExportAll(0)
}

// SetRecovering flips the warm-restart gate. A starting shard process sets it
// before listening when a checkpoint or journal was loaded, runs the import,
// and clears it — the front-end's probes observe recovering→ready.
func (s *ShardServer) SetRecovering(v bool) {
	s.mu.Lock()
	s.recovering = v
	s.mu.Unlock()
}

// Recover imports the checkpoint staged at startup through the consistency
// gate, then opens the shard for searches regardless of the outcome: a failed
// or partial import leaves a cold-but-correct engine that re-derives state
// from source replay.
func (s *ShardServer) Recover() (*service.RecoverReport, error) {
	rep, err := s.svc.Recover(0)
	s.SetRecovering(false)
	return rep, err
}

// Close stops admissions and shuts the wrapped service down, logging — not
// swallowing — its state-teardown error.
func (s *ShardServer) Close() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	if err := s.svc.Close(); err != nil {
		log.Printf("fleet: shard close: %v", err)
	}
}

func writeRPCJSON(rw http.ResponseWriter, v any) {
	rw.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(rw).Encode(v); err != nil {
		log.Printf("fleet: encode response: %v", err)
	}
}

func writeRPCError(rw http.ResponseWriter, code int, msg string, retryable bool) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(code)
	json.NewEncoder(rw).Encode(wireError{Error: msg, Retryable: retryable}) //nolint:errcheck
}

// WriteShedError maps a load shed to its wire form: 503 with the reason, the
// shed's own retryable claim, and the Retry-After hint both in the envelope
// (milliseconds) and as the standard header (whole seconds, rounded up, for
// generic HTTP clients).
func WriteShedError(rw http.ResponseWriter, shed *admission.ShedError) {
	rw.Header().Set("Content-Type", "application/json")
	if shed.RetryAfter > 0 {
		secs := (shed.RetryAfter + time.Second - 1) / time.Second
		rw.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	}
	rw.WriteHeader(http.StatusServiceUnavailable)
	json.NewEncoder(rw).Encode(wireError{ //nolint:errcheck
		Error:        shed.Error(),
		Retryable:    shed.Retryable(),
		Reason:       shed.Reason,
		RetryAfterMS: shed.RetryAfter.Milliseconds(),
	})
}
