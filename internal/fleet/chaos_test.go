package fleet_test

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/fleet/chaos"
	"repro/internal/service"
	"repro/internal/workload"
)

// chaosSeq is the search sequence every degradation test replays: the same
// calls in the same order, so per-index comparison against a fault-free
// control run is exact (per-user scoring coefficients evolve per call, and
// expansion happens before any fault can strike).
var chaosSeq = append(append([][]string{}, fleetTopics...), fleetTopics...)

// answersDigest folds a result's answers — rank, score, candidate network,
// base tuple identities — with the UQ prefix stripped from the network id, so
// two runs that assigned different UQ numbers to the same logical query still
// compare equal. This is the "never wrong answers" half of the degradation
// contract: a degraded run may fail a query, but a query it answers must
// answer byte-identically to the unloaded run.
func answersDigest(v *fleet.ResultView) string {
	h := sha256.New()
	for _, a := range v.Answers {
		q := a.Query
		if i := strings.Index(q, "."); i >= 0 {
			q = q[i+1:]
		}
		fmt.Fprintf(h, "%d|%.9g|%s|", a.Rank, a.Score, q)
		for _, id := range a.IDs {
			h.Write([]byte(id))
			h.Write([]byte{'&'})
		}
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// miniFleet is a 2-shard fleet with explicit teardown (no t.Cleanup), so
// goroutine-leak checks can run after close().
type miniFleet struct {
	servers []*httptest.Server
	shards  []*fleet.ShardServer
	fr      *fleet.Frontend
}

func buildFleet(t *testing.T, seed uint64, transport http.RoundTripper, fcfg fleet.FrontendConfig) *miniFleet {
	t.Helper()
	m := &miniFleet{}
	for slot := 0; slot < 2; slot++ {
		w, err := workload.Bio()
		if err != nil {
			t.Fatal(err)
		}
		svc := service.New(w, service.Config{
			Seed: seed, K: 10, Shards: 1, ShardIDOffset: slot, BatchWindow: 0,
		})
		ss := fleet.NewShardServer(svc)
		m.shards = append(m.shards, ss)
		m.servers = append(m.servers, httptest.NewServer(ss.Handler()))
	}
	w, err := workload.Bio()
	if err != nil {
		t.Fatal(err)
	}
	var backends []fleet.Backend
	for _, srv := range m.servers {
		backends = append(backends, fleet.NewClient(srv.URL, fleet.ClientConfig{
			MaxRetries:   2,
			RetryBackoff: 2 * time.Millisecond,
			Transport:    transport,
			Metrics:      fcfg.Metrics,
		}))
	}
	if fcfg.Service.Seed == 0 {
		fcfg.Service = service.Config{Seed: seed, K: 10, Router: service.RouterAffinity}
	}
	fr, err := fleet.NewFrontend(w, fcfg, backends)
	if err != nil {
		t.Fatal(err)
	}
	m.fr = fr
	return m
}

func (m *miniFleet) close() {
	if m.fr != nil {
		m.fr.Close() //nolint:errcheck
	}
	for _, srv := range m.servers {
		srv.Close()
	}
	for _, ss := range m.shards {
		ss.Close()
	}
}

// controlDigests replays chaosSeq against a fault-free fleet and returns the
// per-index answer digests every degraded run must match where it succeeds.
func controlDigests(t *testing.T, seed uint64) []string {
	t.Helper()
	m := buildFleet(t, seed, nil, fleet.FrontendConfig{})
	defer m.close()
	out := make([]string, len(chaosSeq))
	for i, kw := range chaosSeq {
		view, err := m.fr.Search(context.Background(), "chaos", kw, 10)
		if err != nil {
			t.Fatalf("control search %d: %v", i, err)
		}
		out[i] = answersDigest(view)
	}
	return out
}

// waitNoLeak polls until the goroutine count settles near base.
func waitNoLeak(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d running, started with %d\n%s",
				n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosLatencyParity: injected latency (with jitter) slows everything
// down but fails nothing — results must be byte-identical to the fault-free
// run, query by query. This is the below-saturation half of the degradation
// contract over the fault dimension.
func TestChaosLatencyParity(t *testing.T) {
	const seed = 23
	base := runtime.NumGoroutine()
	want := controlDigests(t, seed)

	tr := chaos.New(nil, 1, chaos.Config{Latency: 2 * time.Millisecond, Jitter: 3 * time.Millisecond})
	m := buildFleet(t, seed, tr, fleet.FrontendConfig{})
	for i, kw := range chaosSeq {
		view, err := m.fr.Search(context.Background(), "chaos", kw, 10)
		if err != nil {
			t.Fatalf("search %d under latency: %v", i, err)
		}
		if got := answersDigest(view); got != want[i] {
			t.Errorf("query %d: answers diverged under injected latency", i)
		}
	}
	if st := tr.Stats(); st.Requests == 0 {
		t.Error("chaos transport saw no requests")
	}
	m.close()
	waitNoLeak(t, base)
}

// TestChaosFlakyConnections: refused connections (retryable — they provably
// never reached the shard) and dropped responses (not retryable — the query
// may have executed) rain on the fleet. Queries may fail, but every query
// that succeeds must return exactly the control run's answers, and the
// front-end must survive the whole sequence.
func TestChaosFlakyConnections(t *testing.T) {
	const seed = 29
	base := runtime.NumGoroutine()
	want := controlDigests(t, seed)

	tr := chaos.New(nil, 7, chaos.Config{RefuseProb: 0.25, DropProb: 0.2})
	m := buildFleet(t, seed, tr, fleet.FrontendConfig{
		// Probes ride the same chaotic transport; they re-mark a shard
		// healthy once a probe gets through, so refusals degrade service
		// instead of permanently shrinking the fleet.
		ProbeInterval: 10 * time.Millisecond,
		ProbeTimeout:  time.Second,
	})
	succeeded := 0
	for i, kw := range chaosSeq {
		view, err := m.fr.Search(context.Background(), "chaos", kw, 10)
		if err != nil {
			// Degraded, never wrong: any error class the tier defines is
			// acceptable; a wrong answer is not.
			var rpcErr *fleet.RPCError
			if !errors.As(err, &rpcErr) &&
				!errors.Is(err, fleet.ErrNoHealthyShard) &&
				!errors.Is(err, fleet.ErrCircuitOpen) &&
				!connectLike(err) {
				t.Errorf("query %d: unexpected error class: %v", i, err)
			}
			continue
		}
		succeeded++
		if got := answersDigest(view); got != want[i] {
			t.Errorf("query %d: answers diverged under flaky connections", i)
		}
	}
	if succeeded == 0 {
		t.Error("no query survived a 25%/20% fault mix on a 2-shard fleet")
	}
	t.Logf("flaky run: %d/%d succeeded, chaos stats %+v", succeeded, len(chaosSeq), tr.Stats())
	m.close()
	waitNoLeak(t, base)
}

// connectLike reports a transport-level error (dial/read failures surface
// wrapped in *url.Error from net/http).
func connectLike(err error) bool {
	var op *net.OpError
	return errors.As(err, &op)
}

// realShard is a shard engine behind a real TCP listener, so a test can
// crash it (close the server) and restart a fresh engine on the same address
// mid-sequence.
type realShard struct {
	addr string
	srv  *http.Server
	ss   *fleet.ShardServer
	done chan struct{}
}

func startShardAt(t *testing.T, addr string, slot int, seed uint64) *realShard {
	t.Helper()
	w, err := workload.Bio()
	if err != nil {
		t.Fatal(err)
	}
	svc := service.New(w, service.Config{
		Seed: seed, K: 10, Shards: 1, ShardIDOffset: slot, BatchWindow: 0,
	})
	ss := fleet.NewShardServer(svc)
	var ln net.Listener
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("bind %s: %v", addr, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	rs := &realShard{addr: ln.Addr().String(), srv: &http.Server{Handler: ss.Handler()}, ss: ss, done: make(chan struct{})}
	go func() {
		defer close(rs.done)
		rs.srv.Serve(ln) //nolint:errcheck
	}()
	return rs
}

// crash closes the HTTP server abruptly (in-flight connections cut), leaving
// the engine behind; the port is free for a restarted process.
func (rs *realShard) crash() {
	rs.srv.Close() //nolint:errcheck
	<-rs.done
	rs.ss.Close()
}

// TestShardCrashRestartMidWave: shard 1 is killed between waves and later
// restarted (fresh engine, same slot and seed, same address). Every wave must
// complete — searches placed on the dead shard fail over — and every answer
// must match the fault-free control run. The front-end survives any
// single-shard fault.
func TestShardCrashRestartMidWave(t *testing.T) {
	const seed = 31
	base := runtime.NumGoroutine()
	want := controlDigests(t, seed)
	if len(chaosSeq)%3 != 0 {
		t.Fatalf("chaosSeq length %d not divisible into 3 waves", len(chaosSeq))
	}
	wave := len(chaosSeq) / 3

	s0 := startShardAt(t, "127.0.0.1:0", 0, seed)
	s1 := startShardAt(t, "127.0.0.1:0", 1, seed)
	w, err := workload.Bio()
	if err != nil {
		t.Fatal(err)
	}
	newBackends := func() []fleet.Backend {
		return []fleet.Backend{
			fleet.NewClient("http://"+s0.addr, fleet.ClientConfig{MaxRetries: 1, RetryBackoff: 2 * time.Millisecond}),
			fleet.NewClient("http://"+s1.addr, fleet.ClientConfig{MaxRetries: 1, RetryBackoff: 2 * time.Millisecond}),
		}
	}
	fr, err := fleet.NewFrontend(w, fleet.FrontendConfig{
		Service: service.Config{Seed: seed, K: 10, Router: service.RouterAffinity},
	}, newBackends())
	if err != nil {
		t.Fatal(err)
	}

	// strict waves must answer every query; a degraded wave may fail some —
	// a query in flight when the crash is discovered can die on a cut
	// connection, and that error is correctly NOT retried (the request may
	// have been delivered) — but every answer it does return must be exact,
	// and failover must keep a majority of the wave alive.
	runWave := func(name string, from int, strict bool) {
		t.Helper()
		failed := 0
		for i := from; i < from+wave; i++ {
			view, err := fr.Search(context.Background(), "chaos", chaosSeq[i], 10)
			if err != nil {
				if strict {
					t.Fatalf("%s: query %d failed: %v", name, i, err)
				}
				failed++
				t.Logf("%s: query %d degraded to error: %v", name, i, err)
				continue
			}
			if got := answersDigest(view); got != want[i] {
				t.Errorf("%s: query %d answers diverged", name, i)
			}
		}
		if failed > wave/2 {
			t.Errorf("%s: %d/%d queries failed — failover did not keep the wave alive", name, failed, wave)
		}
	}

	runWave("wave 1 (both shards up)", 0, true)

	s1.crash()
	runWave("wave 2 (shard 1 down)", wave, false)

	// Restart slot 1: fresh engine, same seed and address — what a process
	// supervisor would do. A Healthz sweep re-marks it routable.
	s1 = startShardAt(t, s1.addr, 1, seed)
	if hz := fr.Healthz(context.Background()); !hz.OK {
		t.Fatalf("fleet unhealthy after restart: %+v", hz)
	}
	runWave("wave 3 (shard 1 restarted)", 2*wave, true)

	fr.Close() //nolint:errcheck
	s0.crash()
	s1.crash()
	waitNoLeak(t, base)
}
