package fleet_test

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"testing"

	"repro/internal/fleet"
	"repro/internal/service"
	"repro/internal/workload"
)

func TestWireUQRoundTrip(t *testing.T) {
	w, err := workload.Bio()
	if err != nil {
		t.Fatal(err)
	}
	exp := service.NewExpander(w, service.Config{Seed: 3, K: 10})
	uq, err := exp.Expand("alice", []string{"metabolism", "protein"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(uq.CQs) == 0 {
		t.Fatal("expansion produced no candidate networks")
	}

	// Encode → JSON → decode must reproduce the query exactly: same ids,
	// atoms, constants and scoring coefficients.
	data, err := json.Marshal(fleet.EncodeUQ(uq))
	if err != nil {
		t.Fatal(err)
	}
	var wire fleet.WireUQ
	if err := json.Unmarshal(data, &wire); err != nil {
		t.Fatal(err)
	}
	got, err := fleet.DecodeUQ(&wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != uq.ID || got.K != uq.K || !reflect.DeepEqual(got.Keywords, uq.Keywords) {
		t.Fatalf("header mismatch: got %v/%d/%v want %v/%d/%v",
			got.ID, got.K, got.Keywords, uq.ID, uq.K, uq.Keywords)
	}
	if len(got.CQs) != len(uq.CQs) {
		t.Fatalf("CQ count %d != %d", len(got.CQs), len(uq.CQs))
	}
	for i, q := range uq.CQs {
		g := got.CQs[i]
		if g.ID != q.ID || g.UQID != q.UQID {
			t.Fatalf("CQ %d id mismatch", i)
		}
		qe, _ := q.SubExpr(allAtomIdx(len(q.Atoms)))
		ge, _ := g.SubExpr(allAtomIdx(len(g.Atoms)))
		if qe.Key() != ge.Key() {
			t.Fatalf("CQ %d canonical key changed across the wire:\n  %s\n  %s",
				i, qe.Key(), ge.Key())
		}
		if g.Model.AggKind != q.Model.AggKind || g.Model.Static != q.Model.Static ||
			!reflect.DeepEqual(g.Model.Weights, q.Model.Weights) {
			t.Fatalf("CQ %d scoring model changed across the wire", i)
		}
	}
}

func allAtomIdx(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

func TestDecodeRejectsBrokenQuery(t *testing.T) {
	w, err := workload.Bio()
	if err != nil {
		t.Fatal(err)
	}
	exp := service.NewExpander(w, service.Config{Seed: 3, K: 10})
	uq, err := exp.Expand("alice", []string{"metabolism", "protein"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	wire := fleet.EncodeUQ(uq)
	// Break the model arity: decode must reject, not admit a malformed query.
	wire.CQs[0].Model.Weights = wire.CQs[0].Model.Weights[:len(wire.CQs[0].Model.Weights)-1]
	if _, err := fleet.DecodeUQ(wire); err == nil {
		t.Fatal("decode accepted a CQ with broken model arity")
	}
}

// TestDigestViewMatchesResultBytes pins the parity-critical invariant: the
// digest of a wire view equals the digest of the in-process result it came
// from, byte for byte, in the exact format benchrun uses.
func TestDigestViewMatchesResultBytes(t *testing.T) {
	w, err := workload.Bio()
	if err != nil {
		t.Fatal(err)
	}
	svc := service.New(w, service.Config{Seed: 3, K: 10, Workers: 1})
	defer svc.Close() //nolint:errcheck
	res, err := svc.Search(context.Background(), "alice", []string{"metabolism", "protein"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) == 0 {
		t.Fatal("no answers to digest")
	}

	// Reference bytes straight from the result, replicating
	// benchrun.digestResult's format.
	var want bytes.Buffer
	fmt.Fprintf(&want, "%s|%v|%d\n", res.ID, res.Keywords, len(res.Answers))
	for _, a := range res.Answers {
		fmt.Fprintf(&want, "%d|%.9g|%s|", a.Rank, a.Score, a.Query)
		for _, tp := range a.Tuples {
			io.WriteString(&want, tp.Schema().Name())
			io.WriteString(&want, ":")
			io.WriteString(&want, tp.Identity())
			io.WriteString(&want, "&")
		}
		io.WriteString(&want, "\n")
	}
	wantSum := sha256.Sum256(want.Bytes())

	// The view must digest identically — including after a JSON round trip,
	// which is how the bytes actually arrive at a front-end or loadgen.
	view := fleet.ViewOf(res)
	data, err := json.Marshal(view)
	if err != nil {
		t.Fatal(err)
	}
	var decoded fleet.ResultView
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	fleet.DigestView(h, &decoded)
	if got := fmt.Sprintf("%x", h.Sum(nil)); got != fmt.Sprintf("%x", wantSum) {
		t.Fatalf("view digest %s != result digest %s", got, fmt.Sprintf("%x", wantSum))
	}
}
