package remotedb

import (
	"sort"
	"testing"

	"repro/internal/cq"
	"repro/internal/dist"
	"repro/internal/relationdb"
	"repro/internal/scoring"
	"repro/internal/tuple"
)

// fixture: A(id*, term, score), B(aid, cid, sim), C(id*, score).
func fixture(seed uint64, nA, nB, nC int) *DB {
	rng := dist.New(seed)
	store := relationdb.NewStore("db")
	sa := tuple.NewSchema("A",
		tuple.Column{Name: "id", Type: tuple.KindInt, Key: true},
		tuple.Column{Name: "term", Type: tuple.KindString},
		tuple.Column{Name: "score", Type: tuple.KindFloat, Score: true},
	)
	terms := []string{"x", "y", "z"}
	var rows []*tuple.Tuple
	for i := 0; i < nA; i++ {
		rows = append(rows, tuple.New(sa, tuple.Int(int64(i)), tuple.String(terms[rng.Intn(3)]), tuple.Float(rng.Float64())))
	}
	store.Put(relationdb.NewRelation(sa, rows))

	sb := tuple.NewSchema("B",
		tuple.Column{Name: "aid", Type: tuple.KindInt},
		tuple.Column{Name: "cid", Type: tuple.KindInt},
		tuple.Column{Name: "sim", Type: tuple.KindFloat, Score: true},
	)
	rows = nil
	for i := 0; i < nB; i++ {
		rows = append(rows, tuple.New(sb, tuple.Int(int64(rng.Intn(nA))), tuple.Int(int64(rng.Intn(nC))), tuple.Float(rng.Float64())))
	}
	store.Put(relationdb.NewRelation(sb, rows))

	sc := tuple.NewSchema("C",
		tuple.Column{Name: "id", Type: tuple.KindInt, Key: true},
		tuple.Column{Name: "score", Type: tuple.KindFloat, Score: true},
	)
	rows = nil
	for i := 0; i < nC; i++ {
		rows = append(rows, tuple.New(sc, tuple.Int(int64(i)), tuple.Float(rng.Float64())))
	}
	store.Put(relationdb.NewRelation(sc, rows))
	return New(store)
}

func chainExpr(t *testing.T, withSel bool) *cq.Expr {
	t.Helper()
	selTerm := cq.V(4)
	if withSel {
		selTerm = cq.C(tuple.String("x"))
	}
	q := &cq.CQ{ID: "q", Atoms: []*cq.Atom{
		{Rel: "A", DB: "db", Args: []cq.Term{cq.V(0), selTerm, cq.V(5)}},
		{Rel: "B", DB: "db", Args: []cq.Term{cq.V(0), cq.V(1), cq.V(6)}},
		{Rel: "C", DB: "db", Args: []cq.Term{cq.V(1), cq.V(7)}},
	}, Model: scoring.Discover(3)}
	e, _ := q.SubExpr([]int{0, 1, 2})
	return e
}

// bruteForce computes the expected join results directly.
func bruteForce(db *DB, withSel bool) map[string]bool {
	a := db.Store().MustRelation("A")
	b := db.Store().MustRelation("B")
	c := db.Store().MustRelation("C")
	out := map[string]bool{}
	for _, ra := range a.Rows() {
		if withSel && ra.Val(1).AsString() != "x" {
			continue
		}
		for _, rb := range b.Rows() {
			if !rb.Val(0).Equal(ra.Val(0)) {
				continue
			}
			for _, rc := range c.Rows() {
				if !rc.Val(0).Equal(rb.Val(1)) {
					continue
				}
				out[tuple.NewRow(ra, rb, rc).Identity()] = true
			}
		}
	}
	return out
}

func TestEvaluateMatchesBruteForce(t *testing.T) {
	for _, withSel := range []bool{false, true} {
		for seed := uint64(1); seed <= 3; seed++ {
			db := fixture(seed, 40, 120, 30)
			rows, err := db.Evaluate(chainExpr(t, withSel))
			if err != nil {
				t.Fatal(err)
			}
			want := bruteForce(db, withSel)
			got := map[string]bool{}
			for _, r := range rows {
				if got[r.Identity()] {
					t.Fatalf("duplicate result %s", r.Identity())
				}
				got[r.Identity()] = true
			}
			if len(got) != len(want) {
				t.Fatalf("seed %d sel=%v: %d results, want %d", seed, withSel, len(got), len(want))
			}
			for id := range want {
				if !got[id] {
					t.Fatalf("missing result %s", id)
				}
			}
		}
	}
}

func TestEvaluateSortedByProduct(t *testing.T) {
	db := fixture(7, 40, 120, 30)
	rows, err := db.Evaluate(chainExpr(t, false))
	if err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(rows, func(i, j int) bool {
		return rows[i].ScoreProduct() > rows[j].ScoreProduct()
	}) {
		// Equal products may interleave; verify nonincreasing order only.
		for i := 1; i < len(rows); i++ {
			if rows[i].ScoreProduct() > rows[i-1].ScoreProduct()+1e-12 {
				t.Fatalf("results out of score order at %d", i)
			}
		}
	}
}

func TestEvaluateCached(t *testing.T) {
	db := fixture(9, 30, 60, 20)
	e := chainExpr(t, true)
	r1, err := db.Evaluate(e)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := db.Evaluate(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1) != len(r2) {
		t.Error("cached evaluation differs")
	}
	if len(r1) > 0 && &r1[0] != &r2[0] {
		// Same backing slice expected (materialised view cache).
		if r1[0] != r2[0] {
			t.Error("cache returned different rows")
		}
	}
}

func TestProbe(t *testing.T) {
	db := fixture(11, 40, 100, 30)
	atom := &cq.Atom{Rel: "B", DB: "db", Args: []cq.Term{cq.V(0), cq.V(1), cq.V(2)}}
	rows, err := db.Probe(atom, 0, tuple.Int(5))
	if err != nil {
		t.Fatal(err)
	}
	want := len(db.Store().MustRelation("B").Lookup(0, tuple.Int(5)))
	if len(rows) != want {
		t.Errorf("probe returned %d rows, want %d", len(rows), want)
	}
	// Probe with a selection constant filters.
	selAtom := &cq.Atom{Rel: "A", DB: "db", Args: []cq.Term{cq.V(0), cq.C(tuple.String("x")), cq.V(1)}}
	rows, err = db.Probe(selAtom, 0, tuple.Int(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Part(0).Val(1).AsString() != "x" {
			t.Error("probe ignored selection constant")
		}
	}
}

func TestFleet(t *testing.T) {
	db1 := fixture(1, 5, 5, 5)
	f := NewFleet(db1)
	if got, err := f.DB("db"); err != nil || got != db1 {
		t.Error("fleet lookup failed")
	}
	if _, err := f.DB("nope"); err == nil {
		t.Error("unknown db should error")
	}
	store2 := relationdb.NewStore("other")
	f.Add(New(store2))
	if _, err := f.DB("other"); err != nil {
		t.Error("added db not found")
	}
}

func TestEvaluateUnknownRelation(t *testing.T) {
	db := New(relationdb.NewStore("empty"))
	q := &cq.CQ{ID: "q", Atoms: []*cq.Atom{
		{Rel: "Nope", DB: "empty", Args: []cq.Term{cq.V(0)}},
	}, Model: scoring.Discover(1)}
	e, _ := q.SubExpr([]int{0})
	if _, err := db.Evaluate(e); err == nil {
		t.Error("unknown relation should error")
	}
}
