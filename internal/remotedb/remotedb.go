// Package remotedb simulates the remote SQL DBMSs the Q System middleware
// runs over (§3). Each DB wraps one database instance and offers exactly the
// two capabilities the paper requires of sources:
//
//   - streaming: evaluate a pushed-down select-project-join expression and
//     return its full result sorted in nonincreasing score order (the
//     canonical row score is the product of part scores — see DESIGN.md);
//   - random access: probe a base relation by column value, applying the
//     atom's selection constants (the "two-way semijoin" path, §7.1).
//
// Pushed-down results are materialised once per expression and cached, like
// a DBMS answering the same streamed subquery for the middleware; the
// middleware's virtual clock charges per-tuple stream delays and per-call
// probe delays at the call sites, so evaluation here is cost-free by design.
package remotedb

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/cq"
	"repro/internal/relationdb"
	"repro/internal/tuple"
)

// DB serves one database instance.
type DB struct {
	store *relationdb.Store

	mu    sync.Mutex
	views map[string][]*tuple.Row // materialised pushdown results by expr key
}

// New wraps a relation store as a remote database.
func New(store *relationdb.Store) *DB {
	return &DB{store: store, views: map[string][]*tuple.Row{}}
}

// Name returns the database instance name.
func (db *DB) Name() string { return db.store.Name() }

// Store exposes the underlying relation store (used by workload loaders).
func (db *DB) Store() *relationdb.Store { return db.store }

// Evaluate computes the pushed-down expression and returns its rows sorted by
// nonincreasing score product (ties broken by row identity for determinism).
// Row parts align with e.Atoms. Results are cached per canonical key.
func (db *DB) Evaluate(e *cq.Expr) ([]*tuple.Row, error) {
	db.mu.Lock()
	if rows, ok := db.views[e.Key()]; ok {
		db.mu.Unlock()
		return rows, nil
	}
	db.mu.Unlock()

	rows, err := db.evaluate(e)
	if err != nil {
		return nil, err
	}
	db.mu.Lock()
	db.views[e.Key()] = rows
	db.mu.Unlock()
	return rows, nil
}

func (db *DB) evaluate(e *cq.Expr) ([]*tuple.Row, error) {
	n := len(e.Atoms)
	preds := e.JoinPreds()
	// Choose a join order: most-constrained atom first (selection constants),
	// then atoms connected to what is already bound.
	order, err := db.joinOrder(e, preds)
	if err != nil {
		return nil, err
	}
	// partials maps each enumeration state to bound parts (indexed by atom).
	type partial struct{ parts []*tuple.Tuple }
	first := order[0]
	base, err := db.scanFiltered(e.Atoms[first])
	if err != nil {
		return nil, err
	}
	partials := make([]partial, 0, len(base))
	for _, t := range base {
		parts := make([]*tuple.Tuple, n)
		parts[first] = t
		partials = append(partials, partial{parts})
	}
	bound := map[int]bool{first: true}
	for _, next := range order[1:] {
		rel, err := db.store.Relation(e.Atoms[next].Rel)
		if err != nil {
			return nil, err
		}
		// Split preds touching `next`: one lookup pred + verification preds,
		// each oriented as (bound atom, bound col) -> (next, next col).
		var lookup *cq.JoinPred
		var verify []cq.JoinPred
		for _, p0 := range preds {
			var p cq.JoinPred
			switch {
			case p0.AtomB == next && bound[p0.AtomA]:
				p = p0
			case p0.AtomA == next && bound[p0.AtomB]:
				p = cq.JoinPred{AtomA: p0.AtomB, ColA: p0.ColB, AtomB: p0.AtomA, ColB: p0.ColA}
			default:
				continue
			}
			if lookup == nil {
				lp := p
				lookup = &lp
			} else {
				verify = append(verify, p)
			}
		}
		var out []partial
		for _, pt := range partials {
			var matches []*tuple.Tuple
			if lookup != nil {
				v := pt.parts[lookup.AtomA].Val(lookup.ColA)
				matches = rel.Lookup(lookup.ColB, v)
			} else {
				matches = rel.Rows() // cross join (disconnected; rare)
			}
			for _, m := range matches {
				if !atomAccepts(e.Atoms[next], m) {
					continue
				}
				ok := true
				for _, vp := range verify {
					if !pt.parts[vp.AtomA].Val(vp.ColA).Equal(m.Val(vp.ColB)) {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				parts := append([]*tuple.Tuple(nil), pt.parts...)
				parts[next] = m
				out = append(out, partial{parts})
			}
		}
		partials = out
		bound[next] = true
	}
	rows := make([]*tuple.Row, len(partials))
	for i, pt := range partials {
		rows[i] = tuple.NewRow(pt.parts...)
	}
	sort.SliceStable(rows, func(i, j int) bool {
		si, sj := rows[i].ScoreProduct(), rows[j].ScoreProduct()
		if si != sj {
			return si > sj
		}
		return rows[i].Identity() < rows[j].Identity()
	})
	return rows, nil
}

// joinOrder picks an evaluation order: the atom with the most selection
// constants (then smallest relation) first, then connected atoms.
func (db *DB) joinOrder(e *cq.Expr, preds []cq.JoinPred) ([]int, error) {
	n := len(e.Atoms)
	consts := func(a *cq.Atom) int {
		c := 0
		for _, t := range a.Args {
			if t.IsConst() {
				c++
			}
		}
		return c
	}
	card := func(a *cq.Atom) int {
		rel, err := db.store.Relation(a.Rel)
		if err != nil {
			return 1 << 30
		}
		return rel.Cardinality()
	}
	best := 0
	for i := 1; i < n; i++ {
		ci, cb := consts(e.Atoms[i]), consts(e.Atoms[best])
		if ci > cb || (ci == cb && card(e.Atoms[i]) < card(e.Atoms[best])) {
			best = i
		}
	}
	order := []int{best}
	bound := map[int]bool{best: true}
	for len(order) < n {
		next := -1
		for i := range preds {
			var cand int
			switch {
			case bound[preds[i].AtomA] && !bound[preds[i].AtomB]:
				cand = preds[i].AtomB
			case bound[preds[i].AtomB] && !bound[preds[i].AtomA]:
				cand = preds[i].AtomA
			default:
				continue
			}
			if next < 0 || card(e.Atoms[cand]) < card(e.Atoms[next]) {
				next = cand
			}
		}
		if next < 0 {
			for i := 0; i < n; i++ { // disconnected remainder
				if !bound[i] {
					next = i
					break
				}
			}
		}
		order = append(order, next)
		bound[next] = true
	}
	return order, nil
}

// scanFiltered returns the atom's relation rows satisfying its selection
// constants, in relation (score) order.
func (db *DB) scanFiltered(a *cq.Atom) ([]*tuple.Tuple, error) {
	rel, err := db.store.Relation(a.Rel)
	if err != nil {
		return nil, err
	}
	// Use an index when a constant column exists.
	for ci, t := range a.Args {
		if t.IsConst() {
			matches := rel.Lookup(ci, t.Const)
			var out []*tuple.Tuple
			for _, m := range matches {
				if atomAccepts(a, m) {
					out = append(out, m)
				}
			}
			sort.SliceStable(out, func(i, j int) bool { return out[i].Seq() < out[j].Seq() })
			return out, nil
		}
	}
	return rel.Rows(), nil
}

// atomAccepts checks every selection constant of the atom against the tuple.
func atomAccepts(a *cq.Atom, t *tuple.Tuple) bool {
	for ci, term := range a.Args {
		if term.IsConst() && !t.Val(ci).Equal(term.Const) {
			return false
		}
	}
	return true
}

// Probe performs a random access: rows of the single-atom expression whose
// column col equals v (selection constants applied). The caller charges the
// remote-probe delay.
func (db *DB) Probe(a *cq.Atom, col int, v tuple.Value) ([]*tuple.Row, error) {
	rel, err := db.store.Relation(a.Rel)
	if err != nil {
		return nil, err
	}
	var out []*tuple.Row
	for _, m := range rel.Lookup(col, v) {
		if atomAccepts(a, m) {
			out = append(out, tuple.NewRow(m))
		}
	}
	return out, nil
}

// Fleet is the set of database instances visible to the middleware, keyed by
// instance name.
type Fleet struct {
	mu  sync.RWMutex
	dbs map[string]*DB
}

// NewFleet builds a fleet over the given databases.
func NewFleet(dbs ...*DB) *Fleet {
	f := &Fleet{dbs: map[string]*DB{}}
	for _, db := range dbs {
		f.dbs[db.Name()] = db
	}
	return f
}

// Add registers another database.
func (f *Fleet) Add(db *DB) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.dbs[db.Name()] = db
}

// MustDB is DB for trusted callers.
func (f *Fleet) MustDB(name string) *DB {
	db, err := f.DB(name)
	if err != nil {
		panic(err)
	}
	return db
}

// DB returns the named database.
func (f *Fleet) DB(name string) (*DB, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	db, ok := f.dbs[name]
	if !ok {
		return nil, fmt.Errorf("remotedb: unknown database %q", name)
	}
	return db, nil
}
