package remotedb

import (
	"testing"

	"repro/internal/cq"
	"repro/internal/scoring"
	"repro/internal/tuple"
)

func benchExpr() *cq.Expr {
	q := &cq.CQ{ID: "q", Atoms: []*cq.Atom{
		{Rel: "A", DB: "db", Args: []cq.Term{cq.V(0), cq.V(4), cq.V(5)}},
		{Rel: "B", DB: "db", Args: []cq.Term{cq.V(0), cq.V(1), cq.V(6)}},
		{Rel: "C", DB: "db", Args: []cq.Term{cq.V(1), cq.V(7)}},
	}, Model: scoring.Discover(3)}
	e, _ := q.SubExpr([]int{0, 1, 2})
	return e
}

func BenchmarkEvaluatePushdown(b *testing.B) {
	e := benchExpr()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db := fixture(uint64(i)+1, 200, 600, 150)
		if _, err := db.Evaluate(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProbe(b *testing.B) {
	db := fixture(3, 400, 1200, 300)
	atom := &cq.Atom{Rel: "B", DB: "db", Args: []cq.Term{cq.V(0), cq.V(1), cq.V(2)}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := db.Probe(atom, 0, tuple.Int(int64(i%400))); err != nil {
			b.Fatal(err)
		}
	}
}
