package service

import (
	"fmt"
	"hash/fnv"
	"sync"

	"repro/internal/candidates"
	"repro/internal/cq"
	"repro/internal/dist"
	"repro/internal/workload"
)

// Expander is the front-desk half of query admission: it turns (user,
// keywords, k) into a fully expanded user query — candidate networks plus
// the user's personal scoring coefficients (§2.1) — and assigns the UQ id.
// It is the only mutable state that must live in exactly one place for a
// deterministic run: the per-user RNGs consume workload-dependent draws, so
// whoever expands must see the whole request stream. A single-process
// service embeds one; a distributed front-end owns one and ships the
// expanded UQs to shard processes, whose engines never expand anything.
type Expander struct {
	genCfg candidates.Config
	seed   uint64
	k      int

	mu     sync.Mutex
	users  map[string]*dist.RNG
	nextUQ int
}

// NewExpander builds an expander for a workload. Expansion follows the way
// the workload's own query suite was built (path lengths, match fan-out,
// scoring family); Config.MaxCQs overrides the candidate-network cap and
// Config.K the default answer count.
func NewExpander(w *workload.Workload, cfg Config) *Expander {
	cfg = cfg.withDefaults()
	genCfg := w.Gen
	genCfg.Graph = w.Schema
	genCfg.Catalog = w.Catalog
	if cfg.MaxCQs > 0 {
		genCfg.MaxCQs = cfg.MaxCQs
	}
	return &Expander{genCfg: genCfg, seed: cfg.Seed, k: cfg.K, users: map[string]*dist.RNG{}}
}

// Expand generates the user query under the front-desk lock. k <= 0 uses the
// configured default.
func (e *Expander) Expand(user string, keywords []string, k int) (*cq.UQ, error) {
	if k <= 0 {
		k = e.k
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	rng, ok := e.users[user]
	if !ok {
		// The seed is a function of the user's name alone: a user's scoring
		// coefficients (§2.1) must be the same in every run, whatever order
		// the users happened to arrive in.
		h := fnv.New64a()
		h.Write([]byte(user))
		rng = dist.New(e.seed + 1000 + h.Sum64()*77)
		e.users[user] = rng
	}
	e.nextUQ++
	id := fmt.Sprintf("UQ%d", e.nextUQ)
	return candidates.Generate(e.genCfg, id, keywords, k, rng)
}
