package service_test

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/workload"
)

// TestCancellationRacingEvictionAndSpill drives a bounded-budget,
// spill-enabled service with many concurrent users whose contexts keep
// expiring mid-flight, so cancellations (CancelMerge → unlink → park)
// interleave with evictions spilling and dropping the parked segments. The
// run must not deadlock, double-release, or corrupt the ledger: every shard's
// running total must equal the O(graph) audit at the end, and Close must
// reclaim every spill segment. This is the §6.3 lifecycle test the race
// detector watches (the service suite runs under -race in CI).
func TestCancellationRacingEvictionAndSpill(t *testing.T) {
	w, err := workload.GUS(1, workload.GUSScaleDefault())
	if err != nil {
		t.Fatal(err)
	}
	spillDir := filepath.Join(t.TempDir(), "spill")
	svc := service.New(w, service.Config{
		K:            15,
		Seed:         7,
		Shards:       2,
		BatchWindow:  2 * time.Millisecond,
		BatchSize:    3,
		MemoryBudget: 600,
		EvictPolicy:  "benefit",
		SpillDir:     spillDir,
	})

	var pool [][]string
	for _, s := range w.Submissions {
		if len(s.UQ.Keywords) > 0 {
			pool = append(pool, s.UQ.Keywords)
		}
	}
	if len(pool) == 0 {
		t.Fatal("workload has no keyword suite")
	}

	const users, requests = 6, 6
	var wg sync.WaitGroup
	var mu sync.Mutex
	completed, canceled := 0, 0
	for u := 0; u < users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(u) + 99))
			for i := 0; i < requests; i++ {
				kw := pool[rng.Intn(len(pool))]
				ctx := context.Background()
				var cancel context.CancelFunc
				if i%2 == 1 {
					// Half the requests race a tight deadline against
					// admission and execution.
					ctx, cancel = context.WithTimeout(ctx, time.Duration(1+rng.Intn(20))*time.Millisecond)
				}
				_, err := svc.Search(ctx, fmt.Sprintf("user%d", u), kw, 15)
				if cancel != nil {
					cancel()
				}
				mu.Lock()
				if err != nil {
					canceled++
				} else {
					completed++
				}
				mu.Unlock()
			}
		}(u)
	}
	wg.Wait()

	st := svc.Stats()
	if completed == 0 {
		t.Fatalf("no search completed (canceled=%d)", canceled)
	}
	for _, sh := range st.Shards {
		if sh.StateRows != sh.StateRowsAudit {
			t.Fatalf("shard %d ledger %d != audit %d — accounting corrupted",
				sh.Shard, sh.StateRows, sh.StateRowsAudit)
		}
		if sh.StateRows < 0 {
			t.Fatalf("shard %d negative resident state %d", sh.Shard, sh.StateRows)
		}
	}

	svc.Close()
	// Close reclaimed every shard's segments; only (possibly) the empty
	// parent directory may remain.
	var leaked []string
	filepath.Walk(spillDir, func(path string, info os.FileInfo, err error) error { //nolint:errcheck
		if err == nil && info != nil && !info.IsDir() {
			leaked = append(leaked, path)
		}
		return nil
	})
	if len(leaked) > 0 {
		t.Fatalf("spill segments leaked after Close: %v", leaked)
	}

	// A closed service still answers Stats and rejects new work cleanly.
	if _, err := svc.Search(context.Background(), "late", pool[0], 5); err == nil {
		t.Fatal("closed service accepted a search")
	}
}
