package service

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	"repro/internal/atc"
	"repro/internal/batcher"
	"repro/internal/catalog"
	"repro/internal/costmodel"
	"repro/internal/cq"
	"repro/internal/dist"
	"repro/internal/metrics"
	"repro/internal/mqo"
	"repro/internal/operator"
	"repro/internal/plangraph"
	"repro/internal/qsm"
	"repro/internal/recovery"
	"repro/internal/simclock"
	"repro/internal/state"
	"repro/internal/workload"
)

// request is one enqueued search.
type request struct {
	uq        *cq.UQ
	enqueued  time.Time
	deadline  time.Time // zero = no latency budget
	admitted  time.Time // set at admission; feeds the merge-time estimate
	journaled bool      // an admit record exists; settlement must close it
	ctx       context.Context
	resp      chan response
	batchSize int // set at admission
}

// expired reports whether the request's latency budget has run out.
func (r *request) expired(now time.Time) bool {
	return !r.deadline.IsZero() && now.After(r.deadline)
}

type response struct {
	res *Result
	err error
}

// shard is one complete engine — plan graph, ATC, state manager, catalog
// fork, clock — plus the single executor goroutine that owns it. Nothing
// outside the executor goroutine ever touches the engine fields after
// newShard returns.
type shard struct {
	id  int
	cfg Config
	svc *metrics.Service
	arb *state.Arbiter

	env   *operator.Env
	graph *plangraph.Graph
	ctrl  *atc.ATC
	mgr   *qsm.Manager
	cat   *catalog.Catalog

	// pending is the current admission window in arrival order; windowStart
	// is the wall arrival of pending[0]; waiters holds admitted, unfinished
	// requests by UQ id. All three are executor-goroutine state (promoted to
	// fields so drain/abort control closures can reach them).
	pending     []*request
	windowStart time.Time
	waiters     map[string]*request

	// depth mirrors the shard's admission-queue occupancy (accepted but not
	// yet admitted) for the queue-full shed check, which runs on caller
	// goroutines and therefore cannot read pending directly.
	depth atomic.Int64

	// win, when non-nil, replaces the fixed BatchWindow with the adaptive
	// admission window control loop. Only the executor goroutine reads it
	// during scheduling; its own mutex makes the Observe calls safe.
	win *admission.WindowController

	// mergeEWMA tracks recent admission-to-completion time (EWMA/4), the
	// executor's estimate of what starting one more merge costs. Deadline
	// shedding uses it to drop queued requests that could no longer finish
	// in budget — canceling a doomed merge mid-flight refunds nothing, so
	// the cheap place to shed is before the engine ever sees it. Executor
	// goroutine only.
	mergeEWMA time.Duration

	submitCh chan *request
	statsCh  chan chan ShardStats
	// ctrlCh delivers control closures (topic export/import, drain probes)
	// into the executor goroutine; every select that serves statsCh serves it
	// too, so control work interleaves between scheduling rounds and never
	// races the engine.
	ctrlCh chan func()
	stopCh chan struct{}
	doneCh chan struct{}

	// topics maps a topic key (canonical keywords joined with NUL) to the
	// plan-graph node keys its merges touched, recorded at admission from
	// merge footprints and consumed by topic export. FIFO-bounded; executor
	// goroutine only.
	topics     map[string]map[string]bool
	topicOrder []string

	// Crash-recovery tier (nil/empty unless Config.CheckpointDir is set).
	// store owns the shard's checkpoint directory; cpMu serializes its Write
	// against the periodic loop. jnl is the admission journal, confined to
	// the executor goroutine (Admit/Done in admit/respond, Rewrite inside
	// the checkpoint exec closure). pendingRecover holds a loaded checkpoint
	// until Recover imports it (executor goroutine via exec); recovered is
	// the journal's replayed in-flight set, static after newShard.
	store          *recovery.Store
	cpMu           sync.Mutex
	jnl            *recovery.Journal
	pendingRecover *state.TopicExport
	pendingGen     int
	recovered      []recovery.QueryRecord
	rec            recStats
}

// maxTopicFootprints bounds the per-shard topic→footprint table; the oldest
// topic's entry falls off first (its export then finds nothing, which is
// safe — migration degrades to not moving state, never to moving wrong
// state).
const maxTopicFootprints = 1024

func newShard(id int, w *workload.Workload, cfg Config, svc *metrics.Service, arb *state.Arbiter) *shard {
	// eid is the shard's engine identity: equal to id in-process, offset in a
	// distributed fleet so shard process i reproduces in-process shard i.
	eid := cfg.ShardIDOffset + id
	rng := dist.New(cfg.Seed + uint64(eid)*7919 + 1)
	var clock simclock.Clock
	if cfg.RealTime {
		clock = simclock.NewReal()
	} else {
		clock = simclock.NewVirtual(0)
	}
	env := &operator.Env{Clock: clock, Delays: simclock.DefaultDelays(rng), Metrics: &metrics.Counters{}}
	if svc != nil {
		env.Metrics.TeeBatch(&svc.ExecBatch, &svc.ExecBatchFlushes, &svc.ExecBatchFull)
	}
	graph := plangraph.New("")
	ctrl := atc.New(graph, env, w.Fleet)
	cat := w.Catalog.Fork()
	mgr := qsm.New(graph, ctrl, cat, costmodel.New(cat, costmodel.DefaultParams()), qsm.ShareAll)
	mgr.MemoryBudget = cfg.MemoryBudget
	policy, err := state.ParsePolicy(cfg.EvictPolicy)
	if err != nil {
		panic("service: " + err.Error())
	}
	mgr.State.SetPolicy(policy)
	if arb != nil {
		// The shard's budget is its arbitrated share of the global budget,
		// re-apportioned at every enforcement from current demand.
		ledger := mgr.State.Ledger
		mgr.State.SetBudgetFn(func() int { return arb.Allot(id, ledger.Total()) })
	}
	if cfg.SpillDir != "" {
		dir := filepath.Join(cfg.SpillDir, fmt.Sprintf("shard-%d", eid))
		if err := mgr.EnableSpill(dir, mgr.DefaultResolver()); err != nil {
			panic("service: " + err.Error())
		}
	}
	if !cfg.JointOptimize {
		mgr.Unit = qsm.UnitUQ
	}
	if cfg.BatchRows != 0 {
		ctrl.SetBatchRows(cfg.BatchRows)
	}
	if cfg.Workers > 1 {
		// Component-scheduled parallel rounds inside this shard. The seed
		// salt matches the shard's RNG derivation so per-node delay models
		// differ across shards like everything else seeded does.
		ctrl.EnableParallel(cfg.Workers, cfg.Seed+uint64(eid)*7919+2)
	}
	sh := &shard{
		id:       id,
		cfg:      cfg,
		svc:      svc,
		arb:      arb,
		env:      env,
		graph:    graph,
		ctrl:     ctrl,
		mgr:      mgr,
		cat:      cat,
		waiters:  map[string]*request{},
		submitCh: make(chan *request, cfg.MaxQueue),
		statsCh:  make(chan chan ShardStats),
		ctrlCh:   make(chan func()),
		stopCh:   make(chan struct{}),
		doneCh:   make(chan struct{}),
		topics:   map[string]map[string]bool{},
	}
	if cfg.Admission.AdaptiveWindow {
		sh.win = admission.NewWindowController(
			cfg.Admission.WindowMin, cfg.Admission.WindowMax, cfg.Admission.Deadline)
	}
	if cfg.CheckpointDir != "" {
		dir := filepath.Join(cfg.CheckpointDir, fmt.Sprintf("shard-%d", eid))
		store, err := recovery.Open(dir)
		if err != nil {
			panic("service: " + err.Error())
		}
		sh.store = store
		// A committed generation from a previous process is staged here and
		// imported by Recover — after this shard's graph exists but before
		// the front-end routes queries at it.
		cp, err := store.Load()
		if err == nil && cp != nil {
			sh.pendingRecover = cp.Export
			sh.pendingGen = cp.Generation
			sh.rec.generation.Store(int64(cp.Generation))
			sh.rec.loaded.Add(1)
			sh.rec.segsDropped.Add(int64(cp.Dropped))
			if fm := cfg.FleetMetrics; fm != nil {
				fm.CheckpointsLoaded.Inc()
				fm.SegmentsDropped.Add(int64(cp.Dropped))
			}
		}
		// Journal replay: admits without a done are the queries in flight at
		// the crash — the recovered-abort set.
		jnl, aborted, err := store.OpenJournal()
		if err != nil {
			panic("service: " + err.Error())
		}
		sh.jnl = jnl
		sh.recovered = aborted
	}
	go sh.run()
	return sh
}

// window is the current admission-window length: the adaptive controller's
// output when configured, the fixed BatchWindow otherwise.
func (sh *shard) window() time.Duration {
	if sh.win != nil {
		return sh.win.Window()
	}
	return sh.cfg.BatchWindow
}

// run is the executor loop: collect an admission window, admit it into the
// running plan graph, drive rank-merges one round at a time, and dispatch
// completions — all while polling for new arrivals so late queries graft onto
// the graph mid-execution (§6.2).
func (sh *shard) run() {
	defer close(sh.doneCh)
	stopping := false

	for {
		// Intake: block when idle, poll when busy.
		switch {
		case stopping:
			sh.drainNonblocking()
		case len(sh.pending) == 0 && len(sh.waiters) == 0:
			select {
			case r := <-sh.submitCh:
				sh.accept(r)
			case req := <-sh.statsCh:
				req <- sh.snapshot()
			case fn := <-sh.ctrlCh:
				fn()
			case <-sh.stopCh:
				stopping = true
			}
		case len(sh.waiters) == 0 && sh.windowOpen():
			// Nothing executing; sleep until the window closes or news.
			timer := time.NewTimer(time.Until(sh.windowStart.Add(sh.window())))
			select {
			case r := <-sh.submitCh:
				sh.accept(r)
			case req := <-sh.statsCh:
				req <- sh.snapshot()
			case fn := <-sh.ctrlCh:
				fn()
			case <-timer.C:
			case <-sh.stopCh:
				stopping = true
			}
			timer.Stop()
		default:
			sh.drainNonblocking()
			select {
			case <-sh.stopCh:
				stopping = true
			default:
			}
		}

		// Drop pending requests whose caller has given up or whose latency
		// budget ran out while still queued.
		sh.pruneCanceled()

		// Release the admission window when due (size, time, no-window, or
		// shutdown flush), in chunks of at most BatchSize: optimization cost
		// grows steeply with batch size (Figure 11), so a burst that drained
		// in at once is still optimized in paper-sized groups. With no window
		// configured every query is optimized alone — Figure 9's SINGLE-OPT
		// baseline — even when arrivals queued up simultaneously.
		if len(sh.pending) > 0 && (stopping || !sh.windowOpen()) {
			chunk := 1
			if sh.window() > 0 {
				chunk = sh.cfg.BatchSize
				if chunk <= 0 {
					chunk = len(sh.pending)
				}
			}
			// MaxInFlight holds excess releases in the queue: the engine
			// processor-shares rounds across every admitted merge, so an
			// unbounded in-flight set under overload drags them all past any
			// deadline together. A stopping shard flushes regardless — its
			// requests settle via the drain path, not the engine.
			limit := 0
			if !stopping {
				limit = sh.cfg.Admission.MaxInFlight
			}
			for len(sh.pending) > 0 {
				n := len(sh.pending)
				if n > chunk {
					n = chunk
				}
				if limit > 0 {
					room := limit - len(sh.waiters)
					if room <= 0 {
						break
					}
					if n > room {
						n = room
					}
				}
				sh.admit(sh.pending[:n])
				sh.pending = sh.pending[n:]
			}
			if len(sh.pending) == 0 {
				sh.pending = nil
			}
		}

		// Cancel admitted queries whose caller has given up, and shed those
		// past their latency budget: both unlink their plan segments so no
		// further work is spent on them. A deadline shed here is
		// post-admission — the merge may have partially executed — so the
		// error is non-retryable by construction.
		now := time.Now()
		for id, r := range sh.waiters {
			switch {
			case r.ctx.Err() != nil:
				sh.ctrl.CancelMerge(id)
				sh.ctrl.Forget(id)
				delete(sh.waiters, id)
				sh.respond(r, nil, r.ctx.Err())
			case r.expired(now):
				// Feed the time already invested back into the merge-time
				// EWMA as a lower-bound sample: canceled merges are exactly
				// the slow ones, and without this the estimate only ever
				// learns from survivors and stays too optimistic to keep
				// doomed work out of the engine.
				if !r.admitted.IsZero() {
					if d := now.Sub(r.admitted); d > sh.mergeEWMA {
						sh.mergeEWMA += (d - sh.mergeEWMA) / 4
					}
				}
				sh.ctrl.CancelMerge(id)
				sh.ctrl.Forget(id)
				delete(sh.waiters, id)
				sh.respond(r, nil, &admission.ShedError{Reason: admission.ReasonDeadline})
			}
		}

		// One scheduling round; dispatch whatever finished.
		if len(sh.waiters) > 0 {
			sh.ctrl.RunRound()
			finished := false
			for id, r := range sh.waiters {
				m := sh.ctrl.MergeByUQ(id)
				if m == nil || !m.Done {
					continue
				}
				delete(sh.waiters, id)
				if m.Err != nil {
					// The merge failed inside the engine (non-convergent
					// round or recovered operator panic): the caller gets a
					// failed search instead of the process dying.
					sh.respond(r, nil, fmt.Errorf("service: query %s failed: %w", id, m.Err))
				} else {
					sh.respond(r, sh.result(r, m), nil)
				}
				sh.ctrl.Forget(id)
				finished = true
			}
			if finished {
				// Feed observed statistics back so the next admission costs
				// reuse correctly (§6.1).
				sh.mgr.SyncCatalog()
			}
		}

		if stopping && len(sh.pending) == 0 && len(sh.waiters) == 0 && len(sh.submitCh) == 0 {
			return
		}
	}
}

// windowOpen reports whether the admission window should keep collecting.
func (sh *shard) windowOpen() bool {
	if len(sh.pending) == 0 {
		return false
	}
	win := sh.window()
	if win <= 0 {
		return false
	}
	if sh.cfg.BatchSize > 0 && len(sh.pending) >= sh.cfg.BatchSize {
		return false
	}
	return time.Now().Before(sh.windowStart.Add(win))
}

func (sh *shard) accept(r *request) {
	if len(sh.pending) == 0 {
		sh.windowStart = time.Now()
	}
	sh.pending = append(sh.pending, r)
	sh.depth.Add(1)
	sh.svc.Queued.Inc()
}

func (sh *shard) drainNonblocking() {
	for {
		select {
		case r := <-sh.submitCh:
			sh.accept(r)
		case req := <-sh.statsCh:
			req <- sh.snapshot()
		case fn := <-sh.ctrlCh:
			fn()
		default:
			return
		}
	}
}

// pruneCanceled drops pending requests whose caller has given up, and sheds
// those whose latency budget expired — or provably will before a merge could
// finish (remaining budget below the observed merge time) — while still
// queued. Shedding doomed work here, before admission, is what keeps goodput
// near capacity under overload: a merge canceled mid-flight has already
// burned engine rounds nothing refunds.
func (sh *shard) pruneCanceled() {
	now := time.Now()
	kept := sh.pending[:0]
	for _, r := range sh.pending {
		doomed := !r.deadline.IsZero() && sh.mergeEWMA > 0 &&
			now.Add(sh.mergeEWMA).After(r.deadline)
		switch {
		case r.ctx.Err() != nil:
			sh.depth.Add(-1)
			sh.svc.Queued.Dec()
			sh.respond(r, nil, r.ctx.Err())
		case r.expired(now) || doomed:
			sh.depth.Add(-1)
			sh.svc.Queued.Dec()
			sh.respond(r, nil, &admission.ShedError{Reason: admission.ReasonDeadline})
		default:
			kept = append(kept, r)
		}
	}
	sh.pending = kept
}

// admit grafts a released batch into the running plan graph and registers its
// callers as waiters.
func (sh *shard) admit(batch []*request) {
	waiters := sh.waiters
	now := sh.env.Clock.Now()
	subs := make([]batcher.Submission, len(batch))
	maxK := 0
	for i, r := range batch {
		subs[i] = batcher.Submission{At: now, UQ: r.uq}
		if r.uq.K > maxK {
			maxK = r.uq.K
		}
		sh.depth.Add(-1)
		sh.svc.Queued.Dec()
	}
	if sh.win != nil {
		// Feed the control loop the backlog left behind by this release: a
		// deep queue argues for a wider window (bigger shared batches), an
		// empty one for snappier admission.
		sh.win.ObserveQueue(len(sh.submitCh)+int(sh.depth.Load()), len(batch))
	}
	sh.mgr.SyncCatalog()
	sh.svc.Batches.Inc()
	sh.svc.BatchOccupancy.Observe(len(batch))
	if sh.jnl != nil {
		// Journal the batch durable BEFORE the engine sees it: an admitted
		// merge the journal does not know about could silently vanish in a
		// crash and violate the no-double-execution retry contract. A failed
		// journal write only widens what a restart re-derives — never admits
		// untracked work silently wrong, so it is best-effort here.
		recs := make([]recovery.QueryRecord, len(batch))
		for i, r := range batch {
			recs[i] = queryRecord(r)
			r.journaled = true
		}
		sh.jnl.Admit(recs)
	}
	if _, err := sh.mgr.Admit(subs, mqo.Config{K: maxK}); err != nil {
		// Admit may have registered merges for earlier batch members before
		// failing; cancel and drop them so no orphaned query keeps running.
		for _, r := range batch {
			sh.ctrl.CancelMerge(r.uq.ID)
			sh.ctrl.Forget(r.uq.ID)
			sh.respond(r, nil, fmt.Errorf("service: admit: %w", err))
		}
		return
	}
	wallNow := time.Now()
	for _, r := range batch {
		m := sh.ctrl.MergeByUQ(r.uq.ID)
		if m == nil {
			sh.respond(r, nil, fmt.Errorf("service: query %s not registered", r.uq.ID))
			continue
		}
		r.batchSize = len(batch)
		r.admitted = wallNow
		waiters[r.uq.ID] = r
		sh.noteTopic(r.uq.Keywords, m.Footprint())
	}
}

// result assembles the caller-facing view of a finished merge.
func (sh *shard) result(r *request, m *atc.MergeState) *Result {
	res := &Result{
		ID:                r.uq.ID,
		Keywords:          r.uq.Keywords,
		CandidateNetworks: len(r.uq.CQs),
		ExecutedNetworks:  m.RM.ExecutedCQs(),
		Shard:             sh.id,
		BatchSize:         r.batchSize,
		EngineLatency:     m.Latency(),
		WallLatency:       time.Since(r.enqueued),
	}
	for i, rr := range m.RM.Results() {
		res.Answers = append(res.Answers, Answer{
			Rank:   i + 1,
			Score:  rr.Score,
			Query:  rr.CQID,
			Tuples: rr.Row.Parts(),
		})
	}
	return res
}

// respond settles a request exactly once (the response channel is buffered,
// so an abandoned caller never blocks the executor) and maintains the
// request-lifecycle metrics.
func (sh *shard) respond(r *request, res *Result, err error) {
	sh.svc.InFlight.Dec()
	var shed *admission.ShedError
	switch {
	case err == nil:
		sh.svc.Completed.Inc()
		sh.svc.WallLatency.Observe(res.WallLatency)
		sh.svc.EngineLatency.Observe(res.EngineLatency)
		if sh.win != nil {
			sh.win.ObserveLatency(res.WallLatency)
		}
		if !r.admitted.IsZero() {
			d := time.Since(r.admitted)
			sh.mergeEWMA += (d - sh.mergeEWMA) / 4
		}
	case errors.As(err, &shed) && shed.Reason == admission.ReasonDeadline:
		sh.svc.DeadlineCanceled.Inc()
	case r.ctx.Err() != nil:
		sh.svc.Canceled.Inc()
	default:
		sh.svc.Rejected.Inc()
	}
	if sh.jnl != nil && r.journaled {
		// Every settlement of an admitted query — success, cancel, shed,
		// abort — closes its journal entry: a merge that reached the engine
		// and was settled is no longer a crash casualty.
		sh.jnl.Done(r.uq.ID)
	}
	r.resp <- response{res: res, err: err}
}

// abort settles every pending and admitted request with reason, canceling
// merges and unlinking plan segments. Executor goroutine only (callers go
// through exec); the drain deadline uses it to guarantee the export handoff
// completes even when a merge never converges. Returns the number aborted.
func (sh *shard) abort(reason error) int {
	sh.drainNonblocking()
	n := 0
	for _, r := range sh.pending {
		sh.depth.Add(-1)
		sh.svc.Queued.Dec()
		sh.respond(r, nil, reason)
		n++
	}
	sh.pending = nil
	for id, r := range sh.waiters {
		sh.ctrl.CancelMerge(id)
		sh.ctrl.Forget(id)
		delete(sh.waiters, id)
		sh.respond(r, nil, reason)
		n++
	}
	return n
}

// snapshot reads the engine state; only ever called from the executor
// goroutine (or after it has exited).
func (sh *shard) snapshot() ShardStats {
	// The displayed budget is a side-effect-free peek: reading stats must
	// not re-record demand in the arbiter and shift other shards' shares.
	budget := sh.cfg.MemoryBudget
	if sh.arb != nil {
		budget = sh.arb.Share(sh.id)
	}
	ss := ShardStats{
		Shard:             sh.id,
		Work:              sh.env.Metrics.Snapshot(),
		Graph:             sh.graph.Stats(),
		StateRows:         sh.mgr.StateSize(),
		StateRowsAudit:    sh.mgr.AuditStateSize(),
		ScratchRows:       sh.mgr.ScratchSize(),
		ScratchRowsAudit:  sh.mgr.AuditScratchSize(),
		Batch:             sh.env.Metrics.BatchOccupancy(),
		Budget:            budget,
		Evictions:         sh.mgr.Evictions(),
		EvictionsByPolicy: sh.mgr.State.EvictionsByPolicy(),
		Parallel:          sh.ctrl.ParallelStats(),
		Now:               sh.env.Clock.Now(),
	}
	if sp := sh.mgr.State.Spill(); sp != nil {
		ss.Spill = sp.Stats()
	}
	return ss
}

// stats fetches a snapshot through the executor, or directly once it exited.
func (sh *shard) stats() ShardStats {
	req := make(chan ShardStats, 1)
	select {
	case sh.statsCh <- req:
		return <-req
	case <-sh.doneCh:
		return sh.snapshot()
	}
}

// topicKey names a topic for footprint tracking: the canonical keyword set
// joined with NUL (the router's memo key for the same set).
func topicKey(keywords []string) string {
	return strings.Join(CanonicalKeywords(keywords), "\x00")
}

// noteTopic folds a newly admitted merge's plan-graph footprint into its
// topic's node-key set. Executor goroutine only.
func (sh *shard) noteTopic(keywords []string, nodeKeys []string) {
	key := topicKey(keywords)
	if key == "" || len(nodeKeys) == 0 {
		return
	}
	set := sh.topics[key]
	if set == nil {
		if len(sh.topicOrder) >= maxTopicFootprints {
			delete(sh.topics, sh.topicOrder[0])
			sh.topicOrder = sh.topicOrder[1:]
		}
		set = map[string]bool{}
		sh.topics[key] = set
		sh.topicOrder = append(sh.topicOrder, key)
	}
	for _, k := range nodeKeys {
		set[k] = true
	}
}

// exportTopic serializes and discards the topic's idle retained state.
// Executor goroutine only (callers go through exec). The footprint entry is
// consumed: the nodes it named are gone from this shard, and any that were
// not exportable (still feeding other topics) will be re-recorded by the
// next admission that touches them.
func (sh *shard) exportTopic(keywords []string) *state.TopicExport {
	canon := CanonicalKeywords(keywords)
	key := strings.Join(canon, "\x00")
	set := sh.topics[key]
	if len(set) == 0 {
		return &state.TopicExport{Keywords: canon, Epoch: sh.ctrl.Epoch()}
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	exp := sh.mgr.ExportNodes(keys)
	exp.Keywords = canon
	delete(sh.topics, key)
	for i, k := range sh.topicOrder {
		if k == key {
			sh.topicOrder = append(sh.topicOrder[:i], sh.topicOrder[i+1:]...)
			break
		}
	}
	return exp
}

// exportAll serializes and discards every idle evictable node the shard
// retains, whatever topic it belongs to — the drain handoff. Executor
// goroutine only (callers go through exec). Topic footprints are cleared:
// the nodes they named are gone.
func (sh *shard) exportAll() *state.TopicExport {
	exp := sh.mgr.ExportNodes(nil)
	sh.topics = map[string]map[string]bool{}
	sh.topicOrder = nil
	return exp
}

// exec runs fn on the executor goroutine and waits for it, falling back to a
// direct call once the executor has exited (the engine is quiescent then, so
// the call is safe from any goroutine).
func (sh *shard) exec(fn func()) {
	done := make(chan struct{})
	wrapped := func() { defer close(done); fn() }
	select {
	case sh.ctrlCh <- wrapped:
		<-done
	case <-sh.doneCh:
		fn()
	}
}
