// Package service is the concurrent, multi-tenant serving layer of the Q
// System reproduction: the subsystem that turns the paper's batch-oriented
// engine into an online middleware handling simultaneously arriving keyword
// queries — the setting the paper's batched multi-query optimization (§3) and
// shared plan graph (§4–§6) are designed for.
//
// Architecture (one Service):
//
//	Search ──► cluster-affinity router ──► shard 0: admission queue ─► executor goroutine
//	                                   └─► shard 1: admission queue ─► executor goroutine
//	                                   └─► …                              │
//	           per-request response channel ◄─────────────────────────────┘
//
// Each shard owns one complete engine — plan graph, ATC, query state manager,
// catalog fork, clock and delay model — and a single executor goroutine that
// is the only goroutine ever touching that engine, so the single-threaded
// engine code needs no locks. Callers talk to shards exclusively through
// channels: Search enqueues a request and blocks on a per-request response
// channel (honouring context cancellation and deadlines); the executor
// collects requests into a time/size-windowed admission batch (§3's batcher,
// online form), admits released batches through qsm.Manager.Admit — grafting
// them into the already-running plan graph exactly as §6.2 grafts late
// arrivals — and drives atc.RunRound continuously, dispatching each completed
// rank-merge back to its waiting caller.
//
// Queries are routed to shards by measured overlap affinity: the router keeps
// one decaying resident keyword set per shard (cluster.Affinity) and places
// each canonical keyword set on the shard it overlaps most, falling back to a
// fixed hash when no shard has meaningful affinity — the serving-layer
// analogue of §6.1's query clustering (ATC-CL). Identical and overlapping
// searches land on the same plan graph and share work, while disjoint topics
// execute in parallel.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/admission"
	"repro/internal/atc"
	"repro/internal/cq"
	"repro/internal/metrics"
	"repro/internal/plangraph"
	"repro/internal/recovery"
	"repro/internal/state"
	"repro/internal/tuple"
	"repro/internal/workload"
)

// ErrClosed is returned by Search once the service has begun shutting down.
var ErrClosed = errors.New("service: closed")

// Config tunes a Service.
type Config struct {
	// K is the default number of answers per search (the paper uses 50).
	K int
	// Seed drives the deterministic delay and scoring-coefficient draws.
	Seed uint64
	// MaxCQs overrides the workload's cap on candidate networks per search
	// (0 keeps the workload's own setting; paper workloads use ≤20).
	MaxCQs int
	// MemoryBudget bounds retained middleware state in rows across the whole
	// service (0 = unbounded). The budget is global: a demand-proportional
	// arbiter apportions it to shards, so a hot shard holds more state than
	// an idle one instead of every shard owning an equal island. Exceeding a
	// shard's allotment triggers eviction under EvictPolicy (§6.3).
	MemoryBudget int
	// EvictPolicy selects the eviction policy: "lru" (default; the paper's
	// least-recently-used, largest-first) or "benefit" (evict the state
	// that is cheapest to re-derive per retained row, priced by the cost
	// model). New panics on an unknown name — validate user input first.
	EvictPolicy string
	// SpillDir, when set, turns discard eviction into spill eviction: each
	// shard serializes evicted plan segments to SpillDir/shard-<n> and
	// revival reads them back as local I/O instead of re-paying source
	// reads (§6.3 disk tier). The per-shard directories are removed on
	// Close. New panics if the directory cannot be created.
	SpillDir string

	// CheckpointDir enables the crash-recovery tier: each shard owns a
	// durable checkpoint store and admission journal under
	// CheckpointDir/shard-<eid>. Unlike SpillDir the directories survive
	// Close — durability across process death is the point. A Service built
	// over a directory holding a committed checkpoint stages it; Recover
	// imports it through the consistency gate (warm restart). New panics if
	// the directory cannot be created.
	CheckpointDir string
	// CheckpointInterval is the periodic checkpoint cadence (0 disables the
	// loop; Checkpoint can still be called explicitly). Only meaningful with
	// CheckpointDir set.
	CheckpointInterval time.Duration
	// FleetMetrics, when non-nil, mirrors the recovery tier's counters
	// (checkpoints written/loaded, segments recovered/dropped) into the
	// fleet metrics a serving binary exports.
	FleetMetrics *metrics.Fleet

	// BatchSize releases an admission batch as soon as this many queries
	// collect (§7.1 uses 5). 0 means the default of 5; negative disables the
	// size trigger entirely.
	BatchSize int
	// BatchWindow releases an admission batch this long (wall time) after its
	// first member arrives. 0 admits every arrival immediately — the
	// SINGLE-OPT baseline of Figure 9.
	BatchWindow time.Duration

	// Shards is the number of independent engines (plan graph + executor
	// goroutine). Related searches share a graph while unrelated ones run in
	// parallel; Router selects how queries are placed. Default 1.
	Shards int
	// Workers sizes each shard's intra-shard parallel executor: the shared
	// plan graph's independent components (connected subgraphs — searches
	// that transitively share any node or stream stay in one component) are
	// driven concurrently on this many workers, with a barrier per
	// scheduling round. Result digests and work counters are byte-identical
	// at any worker count; 1 runs the serial engine exactly. 0 defaults to
	// GOMAXPROCS.
	Workers int
	// BatchRows is the executor's mini-batch target: join outputs flow
	// downstream in chunks of at most this many rows, with one compiled
	// probe step executed per batch instead of per row. 0 keeps the engine
	// default (operator.DefaultBatchRows, 64); <=1 selects the exact
	// per-row path. Purely a grouping knob — result digests and work
	// counters are byte-identical at any setting.
	BatchRows int
	// Router selects shard placement: "affinity" (default) routes each query
	// to the shard whose decaying resident keyword set it overlaps most —
	// §6.1's cluster-affinity idea at serving scale, with a fixed-hash
	// fallback when no shard has meaningful affinity — while "hash" always
	// uses the hash of the canonical keyword set. New panics on an unknown
	// name — validate user input with ParseRouter first.
	Router string
	// MaxQueue bounds each shard's submission queue; senders beyond it block
	// (closed-loop backpressure) until the executor drains or their context
	// expires. Default 1024.
	MaxQueue int
	// ShardIDOffset offsets the engine identity of this service's shards:
	// shard i seeds its RNGs (engine, delays, parallel executor) as engine
	// ShardIDOffset+i. A shard *process* serving slot i of a distributed
	// fleet runs Shards=1 with ShardIDOffset=i, which makes its engine
	// byte-identical to shard i of a single-process service with the same
	// Seed — the invariant the multi-process digest parity gate pins.
	ShardIDOffset int

	// RealTime makes engine delays actually sleep (live serving); the default
	// virtual clock simulates them, which is what the load generator and the
	// tests use.
	RealTime bool

	// Admission configures the overload-control layer (PR7): per-user
	// token-bucket rate limits with fair arbitration, bounded-queue shedding
	// (MaxPending), per-request latency budgets (Deadline) that cancel
	// merges past them, and the adaptive admission window that replaces the
	// fixed BatchWindow with a control loop. The zero value keeps the
	// closed-loop behavior: senders block on the shard queue, nothing sheds.
	Admission admission.Config

	// JointOptimize runs one multi-query optimization over each whole
	// admission batch (§5.1's BATCH-OPT) instead of the default per-query
	// optimization into the shared graph. Joint search cost grows steeply
	// with batch size (Figure 11); under the bounded search budget large
	// groups lose pushdown selectivity, so the default shares structurally
	// via the plan graph (§6.2) and optimizes per query.
	JointOptimize bool
}

func (c Config) withDefaults() Config {
	if c.K == 0 {
		c.K = 50
	}
	if c.BatchSize == 0 {
		c.BatchSize = 5
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 1024
	}
	c.Admission = c.Admission.Normalized()
	return c
}

// Answer is one ranked search result.
type Answer struct {
	Rank  int
	Score float64
	// Query identifies the conjunctive query (candidate network) that
	// produced the answer.
	Query string
	// Tuples are the joined base tuples in the candidate network's atom order.
	Tuples []*tuple.Tuple
}

// Result is a completed search.
type Result struct {
	// ID is the user-query id assigned by the service (UQ1, UQ2, …).
	ID string
	// Keywords echo the search.
	Keywords []string
	// Answers are the top-k results in rank order.
	Answers []Answer
	// CandidateNetworks is how many conjunctive queries the search expanded
	// into; ExecutedNetworks how many the ATC actually activated.
	CandidateNetworks int
	ExecutedNetworks  int
	// Shard is the engine the query executed on; BatchSize how many queries
	// rode in its admission batch.
	Shard     int
	BatchSize int
	// EngineLatency is the engine clock's admission-to-finish time (the
	// paper's response-time notion); WallLatency is enqueue-to-response wall
	// time including the admission wait.
	EngineLatency time.Duration
	WallLatency   time.Duration
}

// Stats reports a service's accumulated serving and execution state.
type Stats struct {
	// Service holds the request-lifecycle counters, batch occupancy and
	// latency distributions.
	Service metrics.ServiceSnapshot
	// Work sums execution counters across shards. Work.ReplayTuples over
	// Work.TuplesConsumed+ReplayTuples is the shared-work fraction: rows that
	// were served from retained state instead of being re-fetched.
	Work metrics.Snapshot
	// Router reports the shard-placement decisions and each shard's decaying
	// resident keyword set.
	Router RouterStats
	// Shared splits every row the engines processed by where it came from:
	// retained memory state, the spill tier on disk, or a fresh source read.
	Shared SharedSplit
	// Shards holds per-engine detail.
	Shards []ShardStats
	// Recovery reports the crash-recovery tier (zero when disabled):
	// checkpoint generation, checkpoints written/loaded, segments
	// recovered/dropped, journaled-abort count.
	Recovery recovery.StatsSnapshot
}

// ShardStats describes one shard's engine.
type ShardStats struct {
	Shard int
	Work  metrics.Snapshot
	Graph plangraph.Stats
	// StateRows is the shard's resident state from the running ledger;
	// StateRowsAudit recomputes it by rescanning the graph. The two must
	// agree — a drift means accounting corruption.
	StateRows      int
	StateRowsAudit int
	// ScratchRows is the shard's pooled executor scratch (free-listed part
	// vectors held between mini-batch flushes) from the ledger's separate
	// scratch dimension; ScratchRowsAudit recomputes it by rescanning. It is
	// reported beside StateRows, never inside it, so pool warmth cannot sway
	// eviction victim choice.
	ScratchRows      int
	ScratchRowsAudit int
	// Batch is the executor's batch-occupancy distribution: rows per flushed
	// mini-batch, with full-vs-output flush counts in the Work snapshot
	// (BatchFullFlushes / BatchFlushes).
	Batch metrics.SizeStats
	// Budget is the shard's current arbitrated allotment (0 = unbounded).
	Budget    int
	Evictions int
	// Parallel reports the shard's intra-shard executor: worker count, pool
	// utilization over parallel rounds, and the round-parallelism histogram
	// (how many independent plan-graph components each round drove).
	Parallel atc.ParallelStats
	// EvictionsByPolicy splits evictions by the policy that chose them.
	EvictionsByPolicy map[string]int
	// Spill reports the shard's disk-tier traffic (zero when disabled).
	Spill state.SpillStats
	// Now is the shard's engine-clock time.
	Now time.Duration
}

// SharedSplit classifies processed rows by provenance: replayed from
// retained memory state, restored from spilled segments on disk, or fetched
// fresh from the remote sources. Fractions sum to 1 when any row flowed.
type SharedSplit struct {
	MemoryHit float64 `json:"memory_hit"`
	DiskHit   float64 `json:"disk_hit"`
	FreshRead float64 `json:"fresh_read"`
}

// SharedFraction is the portion of all rows the engines processed that came
// from retained state (memory or disk) rather than fresh source work.
func (st Stats) SharedFraction() float64 {
	sp := st.SharedSplit()
	return sp.MemoryHit + sp.DiskHit
}

// SharedSplit computes the provenance split from the work counters.
func (st Stats) SharedSplit() SharedSplit {
	mem := float64(st.Work.ReplayTuples)
	disk := float64(st.Work.SpillRowsRead)
	fresh := float64(st.Work.TuplesConsumed())
	total := mem + disk + fresh
	if total == 0 {
		return SharedSplit{}
	}
	return SharedSplit{MemoryHit: mem / total, DiskHit: disk / total, FreshRead: fresh / total}
}

// Service is a concurrent keyword-search service over a workload's database
// fleet. Create with New, serve with Search from any number of goroutines,
// stop with Close.
type Service struct {
	cfg    Config
	svc    *metrics.Service
	exp    *Expander
	adm    *admission.Controller // nil unless rate limits are configured
	shards []*shard
	router *router

	// cpStop/cpDone bracket the periodic checkpoint loop (nil when no
	// CheckpointInterval is configured).
	cpStop chan struct{}
	cpDone chan struct{}

	mu     sync.Mutex
	closed bool
}

// New builds a service over a workload and starts its shard executors.
func New(w *workload.Workload, cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg: cfg,
		svc: &metrics.Service{},
		exp: NewExpander(w, cfg),
		adm: admission.NewController(cfg.Admission),
	}
	mode, err := ParseRouter(cfg.Router)
	if err != nil {
		panic(err.Error())
	}
	s.router = newRouter(mode, cfg.Shards, s.svc)
	// One global budget, arbitrated across shards by demand (§6.3 at serving
	// scale). A nil arbiter means unbounded everywhere.
	var arb *state.Arbiter
	if cfg.MemoryBudget > 0 {
		arb = state.NewArbiter(cfg.MemoryBudget, cfg.Shards)
	}
	for i := 0; i < cfg.Shards; i++ {
		s.shards = append(s.shards, newShard(i, w, cfg, s.svc, arb))
	}
	if cfg.CheckpointDir != "" && cfg.CheckpointInterval > 0 {
		s.cpStop = make(chan struct{})
		s.cpDone = make(chan struct{})
		go s.checkpointLoop(cfg.CheckpointInterval)
	}
	return s
}

// Search poses a keyword query for the given user and blocks until its top-k
// answers are known, the context is done, or the service closes. It is safe
// to call from many goroutines; concurrently arriving searches are batched
// into shared admissions. Each distinct user keeps their own scoring-function
// coefficients across calls (§2.1). k <= 0 uses the configured default.
//
// Under a configured admission rate the user's token bucket is consulted
// before any expansion work is spent; a shed returns *admission.ShedError
// (retryable — the query never reached admission) with a Retry-After hint.
func (s *Service) Search(ctx context.Context, user string, keywords []string, k int) (*Result, error) {
	if s.isClosed() {
		return nil, ErrClosed
	}
	if shed := s.adm.Admit(user, time.Now()); shed != nil {
		s.svc.Shed.Inc()
		s.svc.ShedUserRate.Inc()
		return nil, shed
	}
	uq, err := s.exp.Expand(user, keywords, k)
	if err != nil {
		return nil, err
	}
	return s.SearchUQ(ctx, uq)
}

// SearchUQ admits an already-expanded user query, bypassing candidate
// generation. The distributed serving tier depends on it: the front-end owns
// expansion — per-user scoring coefficients and UQ ids are front-desk state —
// and ships the complete UQ to a shard process, whose engine must consume
// exactly the query the single-process engine would have, or result digests
// diverge.
func (s *Service) SearchUQ(ctx context.Context, uq *cq.UQ) (*Result, error) {
	if s.isClosed() {
		return nil, ErrClosed
	}
	s.svc.Requests.Inc()
	sh := s.shards[s.route(uq.Keywords)]
	// Bounded-queue shed: when MaxPending is configured, an arrival that
	// finds the shard's admission queue full is turned away immediately
	// (retryable — it never reached admission) instead of blocking its
	// caller into the closed loop.
	if maxp := s.cfg.Admission.MaxPending; maxp > 0 {
		if int(sh.depth.Load())+len(sh.submitCh) >= maxp {
			s.svc.Shed.Inc()
			s.svc.ShedQueueFull.Inc()
			return nil, &admission.ShedError{
				Reason:     admission.ReasonQueueFull,
				RetryAfter: s.cfg.Admission.RetryAfter,
			}
		}
	}
	r := &request{uq: uq, enqueued: time.Now(), ctx: ctx, resp: make(chan response, 1)}
	if d := s.cfg.Admission.Deadline; d > 0 {
		r.deadline = r.enqueued.Add(d)
	}
	select {
	case sh.submitCh <- r:
		s.svc.InFlight.Inc()
	case <-sh.stopCh:
		s.svc.Rejected.Inc()
		return nil, ErrClosed
	case <-ctx.Done():
		s.svc.Canceled.Inc()
		return nil, ctx.Err()
	}
	select {
	case resp := <-r.resp:
		return resp.res, resp.err
	case <-ctx.Done():
		// The executor notices the dead context, unlinks the query's plan
		// segments and settles the (buffered) response channel.
		return nil, ctx.Err()
	case <-sh.doneCh:
		// Shutdown race: the send can win its select against a concurrent
		// Close after the executor already drained and exited, stranding the
		// request in the buffer. The executor settles everything it saw
		// before exiting, so check once more, then give up.
		select {
		case resp := <-r.resp:
			return resp.res, resp.err
		default:
			s.svc.InFlight.Dec()
			s.svc.Rejected.Inc()
			return nil, ErrClosed
		}
	}
}

// AbortInFlight settles every queued and admitted search on every shard with
// reason, canceling their merges and unlinking their plan segments. It is
// the drain deadline's escape hatch: a merge that never converges (or a
// backlog that outlives the drain budget) must not block the state handoff
// forever. Returns how many requests were aborted.
func (s *Service) AbortInFlight(reason error) int {
	n := 0
	for _, sh := range s.shards {
		sh.exec(func() { n += sh.abort(reason) })
	}
	return n
}

// isClosed reports whether Close has begun.
func (s *Service) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// route picks the shard for a keyword set. The set is canonicalized first —
// folded, trimmed, empties dropped, deduplicated — so surface variants of
// one search can never land on different shards and silently re-pay remote
// source reads; the configured router (affinity by default, fixed hash
// otherwise) then places the canonical set.
func (s *Service) route(keywords []string) int {
	if len(s.shards) == 1 {
		return 0
	}
	sh, _ := s.router.route(CanonicalKeywords(keywords), nil)
	return sh
}

// Stats snapshots the service. Engine-side numbers are fetched through each
// shard's executor so no lock is needed on the single-threaded engine state.
func (s *Service) Stats() Stats {
	st := Stats{Service: s.svc.Snapshot(), Router: s.router.stats()}
	for _, sh := range s.shards {
		ss := sh.stats()
		st.Shards = append(st.Shards, ss)
		st.Work = st.Work.Add(ss.Work)
	}
	st.Shared = st.SharedSplit()
	st.Recovery = s.RecoveryStats()
	return st
}

// Close stops accepting new searches, lets every enqueued and in-flight query
// run to completion, and shuts the shard executors down. It is idempotent and
// returns the joined per-shard state-teardown errors (spill directories that
// failed to remove, …) — previously swallowed, now surfaced so a serving
// process can log disk problems instead of silently leaking segments.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	// Stop the checkpoint loop before the executors: a checkpoint capture
	// needs a live executor goroutine to run its exec closure on.
	if s.cpStop != nil {
		close(s.cpStop)
		<-s.cpDone
	}
	for _, sh := range s.shards {
		close(sh.stopCh)
	}
	var errs []error
	for _, sh := range s.shards {
		<-sh.doneCh
		// The executor has exited; release the shard's parallel workers and
		// reclaim its spill segments so no run leaves goroutines or disk
		// state behind. The checkpoint directory, unlike the spill tier, is
		// deliberately NOT removed — it must outlive the process.
		sh.ctrl.Close()
		if err := sh.mgr.State.Close(); err != nil {
			errs = append(errs, fmt.Errorf("service: shard %d state teardown: %w", sh.id, err))
		}
		if err := sh.jnl.Close(); err != nil {
			errs = append(errs, fmt.Errorf("service: shard %d journal close: %w", sh.id, err))
		}
	}
	return errors.Join(errs...)
}
