package service_test

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/recovery"
	"repro/internal/service"
	"repro/internal/workload"
)

// TestCheckpointRacingEvictionSpillAndMigration churns every state-moving
// mechanism at once: a bounded-budget spill-enabled service with a fast
// periodic checkpoint loop, concurrent searches (half racing tight
// deadlines), explicit checkpoints, and a live topic migration bouncing the
// same topic between the two shards. The checkpoint capture runs on the
// executor goroutine, so none of this may corrupt the ledger, tear a
// manifest, or leak goroutines — the invariants the race detector watches
// (the service suite runs under -race in CI).
func TestCheckpointRacingEvictionSpillAndMigration(t *testing.T) {
	w, err := workload.GUS(1, workload.GUSScaleDefault())
	if err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()
	cpDir := t.TempDir()
	fm := &metrics.Fleet{}
	svc := service.New(w, service.Config{
		K:                  15,
		Seed:               7,
		Shards:             2,
		BatchWindow:        2 * time.Millisecond,
		BatchSize:          3,
		MemoryBudget:       600,
		EvictPolicy:        "benefit",
		SpillDir:           filepath.Join(t.TempDir(), "spill"),
		CheckpointDir:      cpDir,
		CheckpointInterval: 10 * time.Millisecond,
		FleetMetrics:       fm,
	})

	var pool [][]string
	for _, s := range w.Submissions {
		if len(s.UQ.Keywords) > 0 {
			pool = append(pool, s.UQ.Keywords)
		}
	}
	if len(pool) == 0 {
		t.Fatal("workload has no keyword suite")
	}

	stop := make(chan struct{})
	var churn sync.WaitGroup

	// Explicit checkpoints race the periodic loop and the executor.
	churn.Add(1)
	go func() {
		defer churn.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := svc.Checkpoint(i % 2); err != nil {
				t.Errorf("checkpoint: %v", err)
				return
			}
			time.Sleep(3 * time.Millisecond)
		}
	}()

	// Live migration bounces one topic's retained state between the shards
	// while both are being checkpointed and evicted. Export can legitimately
	// find nothing resident (evicted, or mid-merge); only hard errors fail.
	churn.Add(1)
	go func() {
		defer churn.Done()
		kw := pool[0]
		from, to := 0, 1
		for {
			select {
			case <-stop:
				return
			default:
			}
			exp, err := svc.ExportTopic(from, kw)
			if err == nil && len(exp.Segments) > 0 {
				if _, _, _, err := svc.ImportTopic(to, exp); err != nil {
					t.Errorf("import: %v", err)
					return
				}
				from, to = to, from
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	const users, requests = 6, 6
	var wg sync.WaitGroup
	var mu sync.Mutex
	completed := 0
	for u := 0; u < users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(u) + 42))
			for i := 0; i < requests; i++ {
				kw := pool[rng.Intn(len(pool))]
				ctx := context.Background()
				var cancel context.CancelFunc
				if i%2 == 1 {
					ctx, cancel = context.WithTimeout(ctx, time.Duration(1+rng.Intn(20))*time.Millisecond)
				}
				_, err := svc.Search(ctx, fmt.Sprintf("user%d", u), kw, 15)
				if cancel != nil {
					cancel()
				}
				if err == nil {
					mu.Lock()
					completed++
					mu.Unlock()
				}
			}
		}(u)
	}
	wg.Wait()
	close(stop)
	churn.Wait()

	if completed == 0 {
		t.Fatal("no search completed under churn")
	}
	st := svc.Stats()
	for _, sh := range st.Shards {
		if sh.StateRows != sh.StateRowsAudit {
			t.Fatalf("shard %d ledger %d != audit %d — checkpoint capture corrupted accounting",
				sh.Shard, sh.StateRows, sh.StateRowsAudit)
		}
	}
	if st.Recovery.CheckpointsWritten == 0 {
		t.Fatal("no checkpoint generation was written under churn")
	}
	if fm.CheckpointsWritten.Value() != st.Recovery.CheckpointsWritten {
		t.Fatalf("fleet counter %d != recovery stats %d",
			fm.CheckpointsWritten.Value(), st.Recovery.CheckpointsWritten)
	}
	if err := svc.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Every published generation must parse and verify cleanly — a torn
	// manifest or segment under churn would surface here as Dropped > 0.
	for shard := 0; shard < 2; shard++ {
		store, err := recovery.Open(filepath.Join(cpDir, fmt.Sprintf("shard-%d", shard)))
		if err != nil {
			t.Fatal(err)
		}
		cp, err := store.Load()
		if err != nil {
			t.Fatalf("shard %d checkpoint unreadable: %v", shard, err)
		}
		if cp == nil {
			t.Fatalf("shard %d has no loadable generation", shard)
		}
		if cp.Dropped > 0 {
			t.Fatalf("shard %d checkpoint has %d torn/corrupt segments", shard, cp.Dropped)
		}
	}

	// The checkpoint loop, executors and migration helpers must all be gone.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked after Close: %d > base %d\n%s",
				runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}
