package service

import (
	"reflect"
	"testing"

	"repro/internal/metrics"
)

func TestCanonicalKeywords(t *testing.T) {
	cases := []struct {
		in, want []string
	}{
		{[]string{"Apple", "apple"}, []string{"apple"}},
		{[]string{"apple", ""}, []string{"apple"}},
		{[]string{"apple"}, []string{"apple"}},
		{[]string{"  gene ", "Protein", "protein", "\t"}, []string{"gene", "protein"}},
		{[]string{"b", "a"}, []string{"a", "b"}},
		{[]string{"", "  "}, []string{}},
	}
	for _, c := range cases {
		if got := CanonicalKeywords(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("CanonicalKeywords(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestRouteCanonicalVariantsSameShard pins the routing-contract bugfix:
// surface variants of one search — case, whitespace, duplicates, empty
// tokens — must land on the same shard in BOTH router modes, or overlapping
// queries silently re-pay full remote source reads on separate plan graphs.
func TestRouteCanonicalVariantsSameShard(t *testing.T) {
	variants := [][]string{
		{"Apple", "apple"},
		{"apple", ""},
		{"apple"},
		{" APPLE\t"},
		{"apple", "apple", "apple"},
	}
	for _, mode := range []string{RouterHash, RouterAffinity} {
		s := &Service{shards: make([]*shard, 7), router: newRouter(mode, 7, &metrics.Service{})}
		want := s.route(variants[0])
		for _, kw := range variants[1:] {
			if got := s.route(kw); got != want {
				t.Errorf("%s router: %q routed to shard %d, %q to %d", mode, variants[0], want, kw, got)
			}
		}
	}
}

// TestAffinityRouterGroupsOverlap drives the affinity router directly:
// overlapping topics converge on one shard, disjoint topics fall back to the
// hash, and the decision counters add up.
func TestAffinityRouterGroupsOverlap(t *testing.T) {
	svc := &metrics.Service{}
	rt := newRouter(RouterAffinity, 5, svc)

	first, _ := rt.route([]string{"metabolism", "protein"}, nil)
	if got := svc.RouteHash.Value(); got != 1 {
		t.Fatalf("first decision should hash-fall-back (no affinity anywhere); hash routes = %d", got)
	}
	// Half-overlapping follow-ups join the topic's shard by affinity.
	for _, kw := range [][]string{
		{"metabolism", "gene"},
		{"protein", "metabolism"},
		{"gene", "protein"},
	} {
		if got, _ := rt.route(kw, nil); got != first {
			t.Errorf("%q routed to shard %d, want topic shard %d", kw, got, first)
		}
	}
	if got := svc.RouteAffinity.Value(); got != 3 {
		t.Errorf("affinity hits = %d, want 3", got)
	}
	// A disjoint topic has no meaningful affinity: fixed hash decides.
	disjoint := []string{"quartz", "basalt"}
	want := hashShard(disjoint, 5)
	if got, _ := rt.route(disjoint, nil); got != want {
		t.Errorf("disjoint topic routed to %d, want hash shard %d", got, want)
	}
	st := rt.stats()
	if st.Mode != RouterAffinity || st.Decisions != 5 || st.AffinityHits != 3 || st.HashRoutes != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.SharingMisses != 0 || st.MissRate != 0 {
		t.Errorf("affinity routing recorded sharing misses: %+v", st)
	}
	if len(st.Shards) != 5 || st.Shards[first].Keywords != 3 {
		t.Errorf("shard sets = %+v (topic shard %d should hold metabolism+protein+gene)", st.Shards, first)
	}
}

// TestHashRouterEstimatesSharingMisses: in hash mode the affinity index is
// still fed, so the router can report how often the fixed placement routed a
// query away from the shard that already held its topic.
func TestHashRouterEstimatesSharingMisses(t *testing.T) {
	svc := &metrics.Service{}
	rt := newRouter(RouterHash, 4, svc)
	// Find two overlapping keyword sets whose hashes disagree.
	base := []string{"metabolism", "protein"}
	overlapping := [][]string{
		{"metabolism", "gene"},
		{"metabolism", "membrane"},
		{"metabolism", "plasma"},
		{"metabolism", "kinase"},
	}
	home, _ := rt.route(base, nil)
	missed := false
	for _, kw := range overlapping {
		if hashShard(CanonicalKeywords(kw), 4) != home {
			rt.route(kw, nil)
			missed = true
			break
		}
	}
	if !missed {
		t.Skip("no overlapping set hashed away from the topic shard at 4 shards")
	}
	st := rt.stats()
	if st.SharingMisses != 1 || st.AffinityHits != 0 || st.HashRoutes != 2 {
		t.Errorf("stats = %+v, want exactly one sharing miss over two hash routes", st)
	}
	if st.MissRate != 0.5 {
		t.Errorf("miss rate = %v, want 0.5", st.MissRate)
	}
}

// TestParseRouter validates the knob surface.
func TestParseRouter(t *testing.T) {
	for in, want := range map[string]string{"": RouterAffinity, "affinity": RouterAffinity, "hash": RouterHash} {
		got, err := ParseRouter(in)
		if err != nil || got != want {
			t.Errorf("ParseRouter(%q) = %q, %v", in, got, err)
		}
	}
	if _, err := ParseRouter("random"); err == nil {
		t.Error("unknown router accepted")
	}
}
