package service

import (
	"fmt"

	"repro/internal/state"
)

// Live topic migration at the service layer. A topic is a canonical keyword
// set; its plan-graph footprint (the node keys its merges touched) is
// tracked by each shard's executor at admission, so exporting a topic means
// exporting exactly those of its nodes that are idle and structurally
// evictable. All engine mutation runs on the owning executor goroutine via
// shard.exec; callers only move encoded bytes between shards.

// MigrationReport summarises one topic migration.
type MigrationReport struct {
	// Segments/Rows are what the source shard serialized and discarded.
	Segments int `json:"segments"`
	Rows     int `json:"rows"`
	// Installed/Dropped split the segments at the target: staged behind the
	// consistency gate versus rejected (re-derived by source replay there).
	Installed int `json:"installed"`
	Dropped   int `json:"dropped"`
}

// ExportTopic serializes and locally discards the retained state of a
// topic's idle plan segments on the given shard. The export is empty (but
// valid) when the shard holds nothing idle for the topic.
func (s *Service) ExportTopic(shard int, keywords []string) (*state.TopicExport, error) {
	if shard < 0 || shard >= len(s.shards) {
		return nil, fmt.Errorf("service: export from unknown shard %d", shard)
	}
	var exp *state.TopicExport
	sh := s.shards[shard]
	sh.exec(func() { exp = sh.exportTopic(keywords) })
	return exp, nil
}

// ExportAll serializes and locally discards every idle plan segment the
// given shard retains — the drain handoff of a shard process shutting down.
func (s *Service) ExportAll(shard int) (*state.TopicExport, error) {
	if shard < 0 || shard >= len(s.shards) {
		return nil, fmt.Errorf("service: export from unknown shard %d", shard)
	}
	var exp *state.TopicExport
	sh := s.shards[shard]
	sh.exec(func() { exp = sh.exportAll() })
	return exp, nil
}

// ImportTopic stages a migrated export on the given shard. Returned counts
// are ImportSegments' (installed, dropped, staged rows).
func (s *Service) ImportTopic(shard int, exp *state.TopicExport) (installed, dropped, rows int, err error) {
	if shard < 0 || shard >= len(s.shards) {
		return 0, 0, 0, fmt.Errorf("service: import into unknown shard %d", shard)
	}
	if exp == nil {
		return 0, 0, 0, fmt.Errorf("service: import of nil export")
	}
	sh := s.shards[shard]
	sh.exec(func() { installed, dropped, rows = sh.mgr.ImportSegments(exp) })
	return installed, dropped, rows, nil
}

// MigrateTopic moves a topic's retained state from one shard to another and
// re-pins the router so subsequent exact repeats follow it. The in-process
// form of the distributed tier's migration RPC, and what its tests pin: a
// topic moved mid-wave must cost zero extra source-stream tuples versus
// staying put.
func (s *Service) MigrateTopic(keywords []string, from, to int) (*MigrationReport, error) {
	if from == to {
		return nil, fmt.Errorf("service: migrate from shard %d to itself", from)
	}
	if to < 0 || to >= len(s.shards) {
		return nil, fmt.Errorf("service: migrate to unknown shard %d", to)
	}
	exp, err := s.ExportTopic(from, keywords)
	if err != nil {
		return nil, err
	}
	installed, dropped, rows, err := s.ImportTopic(to, exp)
	if err != nil {
		return nil, err
	}
	_ = rows
	s.router.rehome(CanonicalKeywords(keywords), from, to)
	return &MigrationReport{
		Segments:  len(exp.Segments),
		Rows:      exp.Rows(),
		Installed: installed,
		Dropped:   dropped,
	}, nil
}
