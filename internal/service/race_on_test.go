//go:build race

package service_test

// raceEnabled reports whether the race detector is instrumenting this build.
// Wall-clock-sensitive tests (admission-window economics) skip under it: the
// ~10x instrumentation slowdown breaks their timing assumptions, not their
// subject.
const raceEnabled = true
