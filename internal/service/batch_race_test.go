package service_test

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/workload"
)

// TestBatchedExecutorUnderChurn drives the batched executor (small -batch-rows
// so flush boundaries are frequent) across parallel shards with concurrent
// users, short-deadline cancellations racing mid-batch delivery, and a memory
// budget forcing evictions between rounds. Cancellation can park a node while
// its output batch is in flight and eviction can unlink the nodes a pooled
// scratch row came from, so both ledger dimensions — retained state and
// pooled scratch — must still balance against their O(graph) audits, and
// Close must leave no goroutines behind. The service suite runs under -race
// in CI, which is the point of this test.
func TestBatchedExecutorUnderChurn(t *testing.T) {
	before := runtime.NumGoroutine()
	w, err := workload.GUS(1, workload.GUSScaleDefault())
	if err != nil {
		t.Fatal(err)
	}
	svc := service.New(w, service.Config{
		K:           10,
		Seed:        13,
		Shards:      2,
		Workers:     4,
		BatchWindow: 2 * time.Millisecond,
		BatchSize:   3,
		// Small enough that the budget evicts and the executor flushes
		// partial batches constantly.
		MemoryBudget: 800,
		BatchRows:    8,
	})

	var pool [][]string
	for _, s := range w.Submissions {
		if len(s.UQ.Keywords) > 0 {
			pool = append(pool, s.UQ.Keywords)
		}
	}
	if len(pool) == 0 {
		t.Fatal("workload has no keyword suite")
	}

	const users, requests = 6, 5
	var wg sync.WaitGroup
	var mu sync.Mutex
	completed, failed := 0, 0
	for u := 0; u < users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(u) + 47))
			for i := 0; i < requests; i++ {
				kw := pool[rng.Intn(len(pool))]
				ctx := context.Background()
				var cancel context.CancelFunc
				if i%2 == 1 {
					ctx, cancel = context.WithTimeout(ctx, time.Duration(1+rng.Intn(25))*time.Millisecond)
				}
				_, err := svc.Search(ctx, fmt.Sprintf("user%d", u), kw, 10)
				if cancel != nil {
					cancel()
				}
				mu.Lock()
				if err != nil {
					failed++
				} else {
					completed++
				}
				mu.Unlock()
			}
		}(u)
	}
	wg.Wait()

	st := svc.Stats()
	if completed == 0 {
		t.Fatalf("no search completed (failed=%d)", failed)
	}
	if st.Service.ExecBatchFlushes == 0 {
		t.Fatal("executor never flushed a batch — churn ran on the per-row path")
	}
	for _, sh := range st.Shards {
		if sh.StateRows != sh.StateRowsAudit {
			t.Fatalf("shard %d state ledger %d != audit %d — accounting corrupted under batched churn",
				sh.Shard, sh.StateRows, sh.StateRowsAudit)
		}
		if sh.ScratchRows != sh.ScratchRowsAudit {
			t.Fatalf("shard %d scratch ledger %d != audit %d — pooled rows leaked or double-freed",
				sh.Shard, sh.ScratchRows, sh.ScratchRowsAudit)
		}
	}

	svc.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before service, %d after Close", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
