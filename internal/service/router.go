package service

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"

	"repro/internal/cluster"
	"repro/internal/metrics"
)

// Router mode names accepted by Config.Router and the -router flags.
const (
	// RouterHash routes every query by the fixed hash of its canonical
	// keyword set: textually identical searches always share one shard.
	RouterHash = "hash"
	// RouterAffinity routes by measured overlap against each shard's
	// decaying resident keyword set (§6.1 at serving scale), falling back
	// to the fixed hash when no shard has meaningful affinity.
	RouterAffinity = "affinity"
)

// ParseRouter validates a router mode name; "" selects the default
// (affinity). Use it to validate user input before Config reaches New,
// which panics on unknown names.
func ParseRouter(name string) (string, error) {
	switch name {
	case "", RouterAffinity:
		return RouterAffinity, nil
	case RouterHash:
		return RouterHash, nil
	}
	return "", fmt.Errorf("service: unknown router %q (want %s or %s)", name, RouterHash, RouterAffinity)
}

// CanonicalKeywords reduces a keyword list to its canonical routing form:
// case-folded, whitespace-trimmed, empty tokens dropped, deduplicated and
// sorted. Every routing decision — hash or affinity, in-process or across the
// distributed tier — goes through this one helper, so ["Apple", "apple"],
// ["apple", ""] and ["apple"] are the same query as far as shard placement is
// concerned (the sharing contract: overlapping searches must meet on one plan
// graph). A canonical set also names a *topic* for live migration.
func CanonicalKeywords(keywords []string) []string {
	canon := make([]string, 0, len(keywords))
	seen := make(map[string]bool, len(keywords))
	for _, kw := range keywords {
		kw = strings.ToLower(strings.TrimSpace(kw))
		if kw == "" || seen[kw] {
			continue
		}
		seen[kw] = true
		canon = append(canon, kw)
	}
	sort.Strings(canon)
	return canon
}

// hashShard is the fixed fallback placement: FNV-1a over the canonical
// keyword set.
func hashShard(canon []string, shards int) int {
	h := fnv.New32a()
	for _, kw := range canon {
		h.Write([]byte(kw))
		h.Write([]byte{0})
	}
	return int(h.Sum32() % uint32(shards))
}

// router places queries on shards. Both modes maintain the affinity index —
// in hash mode it is consulted only to estimate how much sharing the fixed
// placement is missing — and both record every placement into it, so the
// index always reflects what is actually resident where.
type router struct {
	mode   string
	shards int
	svc    *metrics.Service
	minSim float64 // affinity below this falls back to the hash

	mu   sync.Mutex
	aff  *cluster.Affinity
	tick uint64
	// memo pins recently admitted canonical sets to their shard: an exact
	// repeat's retained state lives where it last ran, which keyword-level
	// similarity cannot see once several shards cover the same keywords.
	memo map[string]memoEntry
}

// memoEntry records where a canonical set last ran and when.
type memoEntry struct {
	shard int
	tick  uint64
}

// routerMemoTTL is how many routing decisions an exact-set pin survives
// without being refreshed — a few affinity half-lives, matching how long
// the decaying keyword sets consider state "recent".
const routerMemoTTL = 8 * cluster.DefaultHalfLife

// routerMinAffinity is the similarity floor below which no shard has a
// meaningful claim on a query and the fixed hash decides. It sits below
// §6.1's cluster-merge threshold (Tc = 0.5) deliberately: routing scores
// decayed resident sets, where even a just-admitted keyword weighs slightly
// under 1, and the common sharing case — a pair query overlapping a resident
// topic in one keyword — must clear the floor.
const routerMinAffinity = 0.3

// routerLoadPenalty bounds how much of a shard's affinity score its share of
// the fleet's admitted-keyword mass can cost it (the §6.1 over-sharing
// guard): at most this fraction, so load arbitrates near-ties instead of
// overruling coverage.
const routerLoadPenalty = 0.1

// routerMissTolerance is the coverage gap below which a placement away from
// the best-covered shard is not counted as a sharing miss (shards holding a
// topic equally can serve it equally).
const routerMissTolerance = 0.05

// newRouter builds a router over n shards.
func newRouter(mode string, shards int, svc *metrics.Service) *router {
	return &router{
		mode:   mode,
		shards: shards,
		svc:    svc,
		minSim: routerMinAffinity,
		aff:    cluster.NewAffinity(shards, 0),
		memo:   map[string]memoEntry{},
	}
}

// route picks the shard for one canonical keyword set and feeds the decision
// back into the affinity index. Safe for concurrent use; decisions are
// serialized so score-then-record is atomic and identical queries converge
// on one shard.
//
// healthy, when non-nil, marks which shards may take new queries (the
// distributed tier routes around probes-failed and draining shards): a memo
// pin to an unhealthy shard is ignored, unhealthy shards score zero, and the
// hash fallback scans forward to the first healthy shard. The second return
// reports whether an unhealthy shard forced the placement away from where it
// would otherwise have gone. With healthy nil every shard is eligible.
func (rt *router) route(canon []string, healthy func(int) bool) (int, bool) {
	if rt.shards == 1 {
		return 0, false
	}
	ok := func(s int) bool { return healthy == nil || healthy(s) }
	redirected := false
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.tick++
	if rt.tick%cluster.DefaultHalfLife == 0 {
		for key, e := range rt.memo {
			if rt.tick-e.tick > routerMemoTTL {
				delete(rt.memo, key)
			}
		}
	}
	memoKey := strings.Join(canon, "\x00")

	// An exact repeat of a recently admitted set goes back to its shard:
	// its retained plan state lives there, which is the strongest possible
	// affinity signal.
	if rt.mode == RouterAffinity {
		if e, pinned := rt.memo[memoKey]; pinned && rt.tick-e.tick <= routerMemoTTL {
			if ok(e.shard) {
				rt.svc.RouteAffinity.Inc()
				rt.observe(memoKey, e.shard, canon)
				return e.shard, false
			}
			redirected = true
		}
	}

	// Score every shard. Eligibility is coverage: a shard must hold a
	// meaningful fraction of the query's keywords (Sim >= minSim) to claim
	// it at all. Ranking among eligible shards is depth times a mild load
	// penalty: Mass measures how much recently admitted work on these
	// keywords lives on the shard — the proxy for replayable state, which
	// saturating coverage cannot see once several shards touch the same
	// keywords — and the penalty (bounded at routerLoadPenalty of the
	// score) lets a cooler shard win only near-ties, §6.1's over-sharing
	// guard, never outvoting a real depth difference.
	totalLoad := 0.0
	for s := 0; s < rt.shards; s++ {
		totalLoad += rt.aff.Load(s)
	}
	bestShard, bestScore := -1, 0.0
	bestSimShard, bestSim := -1, 0.0
	sims := make([]float64, rt.shards)
	for s := 0; s < rt.shards; s++ {
		sim := rt.aff.Sim(s, canon)
		sims[s] = sim
		if sim > bestSim {
			bestSim, bestSimShard = sim, s
		}
		if sim < rt.minSim {
			continue
		}
		if !ok(s) {
			redirected = true
			continue
		}
		score := rt.aff.Mass(s, canon) * (1 - routerLoadPenalty*rt.aff.Load(s)/(totalLoad+1))
		if bestShard < 0 || score > bestScore {
			bestShard, bestScore = s, score
		}
	}

	var chosen int
	if rt.mode == RouterAffinity && bestShard >= 0 {
		chosen = bestShard
		rt.svc.RouteAffinity.Inc()
	} else {
		chosen = hashShard(canon, rt.shards)
		// The hash is the placement of last resort; when it lands on an
		// unhealthy shard, scan forward (deterministically) to the nearest
		// healthy one rather than refuse the query.
		if !ok(chosen) {
			redirected = true
			for d := 1; d < rt.shards; d++ {
				if c := (chosen + d) % rt.shards; ok(c) {
					chosen = c
					break
				}
			}
		}
		rt.svc.RouteHash.Inc()
	}
	// A sharing miss: some shard already held this query's topic, yet the
	// query landed on a shard covering meaningfully less of it and will
	// re-pay source reads for state that exists in the fleet. Affinity mode
	// makes this (near) zero; hash mode measures what the fixed placement
	// costs. The tolerance keeps ties between equally covered shards from
	// counting as misses.
	if bestSimShard >= 0 && bestSim >= rt.minSim && sims[chosen] < bestSim-routerMissTolerance {
		rt.svc.RouteSharingMiss.Inc()
	}
	rt.observe(memoKey, chosen, canon)
	return chosen, redirected
}

// rehome re-pins a canonical set's exact-repeat memo to the shard its
// retained state migrated to, and moves the matching affinity mass with it.
// Callers invoke it after a successful topic migration; without the re-pin
// the memo would keep sending exact repeats to the old shard, which no
// longer holds the state.
func (rt *router) rehome(canon []string, from, to int) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.memo[strings.Join(canon, "\x00")] = memoEntry{shard: to, tick: rt.tick}
	rt.aff.Transfer(from, to, canon)
}

// suggestRehome reports whether the canonical set's pinned shard has drifted
// away from where the topic's admission mass now concentrates (see
// cluster.Affinity.ShouldRehome). Only memo-pinned sets are considered: a pin
// is the router's claim that exact repeats will keep landing on that shard,
// which is exactly the claim a migration should follow.
func (rt *router) suggestRehome(canon []string, factor float64) (from, to int, ok bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	e, pinned := rt.memo[strings.Join(canon, "\x00")]
	if !pinned || rt.tick-e.tick > routerMemoTTL {
		return 0, 0, false
	}
	to, moved := rt.aff.ShouldRehome(e.shard, canon, factor)
	if !moved {
		return e.shard, e.shard, false
	}
	return e.shard, to, true
}

// observe feeds a placement back into the affinity index and the exact-set
// memo. Callers hold rt.mu.
func (rt *router) observe(memoKey string, shard int, canon []string) {
	rt.aff.Observe(shard, canon)
	rt.memo[memoKey] = memoEntry{shard: shard, tick: rt.tick}
}

// RouterStats is the routing view of a service's stats: the per-decision
// counters plus each shard's resident keyword set.
type RouterStats struct {
	// Mode is the configured router ("hash" or "affinity").
	Mode string `json:"mode"`
	// Decisions counts multi-shard placements; AffinityHits were routed by
	// measured overlap, HashRoutes by the fixed hash (every decision in
	// hash mode; the no-meaningful-affinity fallback in affinity mode).
	Decisions    int64 `json:"decisions"`
	AffinityHits int64 `json:"affinity_hits"`
	HashRoutes   int64 `json:"hash_routes"`
	// SharingMisses counts decisions placed away from the shard whose
	// resident set best covered the query; MissRate is their fraction of
	// all decisions — the estimated sharing-miss rate of the placement.
	SharingMisses int64   `json:"sharing_misses"`
	MissRate      float64 `json:"estimated_sharing_miss_rate"`
	// Shards describes each shard's decaying resident keyword set.
	Shards []RouterShardStats `json:"shards,omitempty"`
}

// RouterShardStats is one shard's affinity-index state.
type RouterShardStats struct {
	Shard int `json:"shard"`
	// Keywords is the effective resident keyword-set size; Load the decayed
	// admitted-keyword mass the load penalty reads.
	Keywords int     `json:"keywords"`
	Load     float64 `json:"load"`
}

// stats snapshots the router.
func (rt *router) stats() RouterStats {
	st := RouterStats{
		Mode:          rt.mode,
		AffinityHits:  rt.svc.RouteAffinity.Value(),
		HashRoutes:    rt.svc.RouteHash.Value(),
		SharingMisses: rt.svc.RouteSharingMiss.Value(),
	}
	st.Decisions = st.AffinityHits + st.HashRoutes
	if st.Decisions > 0 {
		st.MissRate = float64(st.SharingMisses) / float64(st.Decisions)
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for s := 0; s < rt.shards; s++ {
		st.Shards = append(st.Shards, RouterShardStats{Shard: s, Keywords: rt.aff.Size(s), Load: rt.aff.Load(s)})
	}
	return st
}

// Placer is the shard-placement half of the service, exported for the
// distributed serving tier: a front-end process runs the same affinity
// router — canonicalization, decaying resident keyword sets, exact-set
// memo — against remote shard endpoints that it runs in-process against
// local shards, so a query lands on the same shard index either way.
type Placer struct {
	rt *router
}

// NewPlacer builds a placer over n shard slots. mode is a Router mode name
// (ParseRouter); svc receives the per-decision routing counters.
func NewPlacer(mode string, shards int, svc *metrics.Service) (*Placer, error) {
	m, err := ParseRouter(mode)
	if err != nil {
		return nil, err
	}
	return &Placer{rt: newRouter(m, shards, svc)}, nil
}

// Route places a keyword set, skipping shards healthy reports false for
// (nil admits all). It returns the shard index and whether an unhealthy
// shard forced the placement away from the router's preference.
func (p *Placer) Route(keywords []string, healthy func(int) bool) (int, bool) {
	return p.rt.route(CanonicalKeywords(keywords), healthy)
}

// Stats snapshots the placer's routing state.
func (p *Placer) Stats() RouterStats { return p.rt.stats() }

// SuggestRehome reports whether the keyword set's topic should migrate: it
// is memo-pinned to shard from, yet another shard's decayed admission mass
// on its keywords exceeds the pin's by factor (hysteresis; ≥ 2 is sensible).
func (p *Placer) SuggestRehome(keywords []string, factor float64) (from, to int, ok bool) {
	return p.rt.suggestRehome(CanonicalKeywords(keywords), factor)
}

// CommitRehome records a completed migration: exact repeats of the keyword
// set now route to shard to, and the matching affinity mass moves with them.
func (p *Placer) CommitRehome(keywords []string, from, to int) {
	p.rt.rehome(CanonicalKeywords(keywords), from, to)
}
