package service_test

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/workload"
)

// TestParallelExecutorUnderChurn drives shards running the intra-shard
// parallel executor (-workers 4) with many concurrent users, short-deadline
// cancellations racing execution, and a bounded memory budget forcing
// evictions between rounds — while the run's unlinks and ledger updates come
// from pool workers. The ledger must still balance against the O(graph)
// audit, searches must keep completing, and Close must leave no goroutines
// behind (the worker pools shut down with their shards). The service suite
// runs under -race in CI, which is the point of this test.
func TestParallelExecutorUnderChurn(t *testing.T) {
	before := runtime.NumGoroutine()
	w, err := workload.GUS(1, workload.GUSScaleDefault())
	if err != nil {
		t.Fatal(err)
	}
	svc := service.New(w, service.Config{
		K:            10,
		Seed:         11,
		Shards:       2,
		Workers:      4,
		BatchWindow:  2 * time.Millisecond,
		BatchSize:    3,
		MemoryBudget: 800,
	})

	var pool [][]string
	for _, s := range w.Submissions {
		if len(s.UQ.Keywords) > 0 {
			pool = append(pool, s.UQ.Keywords)
		}
	}
	if len(pool) == 0 {
		t.Fatal("workload has no keyword suite")
	}

	const users, requests = 6, 5
	var wg sync.WaitGroup
	var mu sync.Mutex
	completed, failed := 0, 0
	for u := 0; u < users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(u) + 31))
			for i := 0; i < requests; i++ {
				kw := pool[rng.Intn(len(pool))]
				ctx := context.Background()
				var cancel context.CancelFunc
				if i%2 == 1 {
					ctx, cancel = context.WithTimeout(ctx, time.Duration(1+rng.Intn(25))*time.Millisecond)
				}
				_, err := svc.Search(ctx, fmt.Sprintf("user%d", u), kw, 10)
				if cancel != nil {
					cancel()
				}
				mu.Lock()
				if err != nil {
					failed++
				} else {
					completed++
				}
				mu.Unlock()
			}
		}(u)
	}
	wg.Wait()

	st := svc.Stats()
	if completed == 0 {
		t.Fatalf("no search completed (failed=%d)", failed)
	}
	for _, sh := range st.Shards {
		if sh.StateRows != sh.StateRowsAudit {
			t.Fatalf("shard %d ledger %d != audit %d — accounting corrupted under parallel rounds",
				sh.Shard, sh.StateRows, sh.StateRowsAudit)
		}
		if sh.Parallel.Workers != 4 {
			t.Fatalf("shard %d parallel workers = %d, want 4", sh.Shard, sh.Parallel.Workers)
		}
		if sh.Parallel.Rounds == 0 {
			t.Fatalf("shard %d recorded no scheduling rounds", sh.Shard)
		}
	}

	svc.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before service, %d after Close", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
