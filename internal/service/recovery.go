package service

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/recovery"
	"repro/internal/state"
)

// Crash recovery at the service layer. With Config.CheckpointDir set, each
// shard owns a recovery.Store under CheckpointDir/shard-<eid>: a periodic
// checkpoint loop captures every quiescent plan node's retained state on the
// executor goroutine (qsm.CheckpointExport — non-destructive, point-in-time
// consistent by construction) and publishes it as a generation-numbered
// manifest, while an admission journal records which user queries were in
// flight. A fresh Service over the same directory loads the newest
// generation; Recover imports it through the same consistency gate that
// protects spill revival and live migration, so a checkpoint that does not
// match the rebuilt graph is dropped and re-derived from the sources —
// never installed wrong.

// recStats is one shard's recovery-tier counters. Written by the checkpoint
// loop and the startup/Recover paths, read by health/stats handlers on
// arbitrary goroutines — hence atomics.
type recStats struct {
	generation    atomic.Int64
	written       atomic.Int64 // checkpoint generations published
	loaded        atomic.Int64 // checkpoints loaded at startup
	segsWritten   atomic.Int64
	segsRecovered atomic.Int64
	segsDropped   atomic.Int64
}

// CheckpointReport summarises one published checkpoint generation.
type CheckpointReport struct {
	Generation int `json:"generation"`
	Segments   int `json:"segments"`
	Rows       int `json:"rows"`
	// Skipped is true when the shard still holds an unrecovered loaded
	// checkpoint: publishing a fresh (near-empty) generation before Recover
	// runs would garbage-collect the very state the restart is for.
	Skipped bool `json:"skipped"`
}

// RecoverReport summarises one warm-restart import.
type RecoverReport struct {
	Generation int `json:"generation"`
	Installed  int `json:"installed"`
	Dropped    int `json:"dropped"`
	Rows       int `json:"rows"`
}

// Checkpoint captures and durably publishes one checkpoint generation for
// the given shard, and compacts its admission journal to the current
// in-flight set. Safe to call concurrently with serving (the capture runs on
// the executor goroutine; only encoded bytes leave it) and with the periodic
// loop (the store write is serialized per shard).
func (s *Service) Checkpoint(shard int) (*CheckpointReport, error) {
	if shard < 0 || shard >= len(s.shards) {
		return nil, fmt.Errorf("service: checkpoint of unknown shard %d", shard)
	}
	sh := s.shards[shard]
	if sh.store == nil {
		return nil, fmt.Errorf("service: shard %d has no checkpoint store", shard)
	}
	rep := &CheckpointReport{}
	sh.cpMu.Lock()
	defer sh.cpMu.Unlock()
	var exp *state.TopicExport
	sh.exec(func() {
		if sh.pendingRecover != nil {
			rep.Skipped = true
			return
		}
		e := sh.mgr.CheckpointExport()
		// Compact the journal to the live in-flight set, sorted by UQ id so
		// the rewrite is deterministic (waiters/pending are map/slice mix).
		var inflight []recovery.QueryRecord
		for _, r := range sh.waiters {
			inflight = append(inflight, queryRecord(r))
		}
		for _, r := range sh.pending {
			inflight = append(inflight, queryRecord(r))
		}
		sort.Slice(inflight, func(i, j int) bool { return inflight[i].ID < inflight[j].ID })
		sh.jnl.Rewrite(inflight)
		exp = e
	})
	if rep.Skipped {
		return rep, nil
	}
	gen, err := sh.store.Write(exp)
	if err != nil {
		return nil, err
	}
	rep.Generation = gen
	rep.Segments = len(exp.Segments)
	rep.Rows = exp.Rows()
	sh.rec.generation.Store(int64(gen))
	sh.rec.written.Add(1)
	sh.rec.segsWritten.Add(int64(len(exp.Segments)))
	if fm := s.cfg.FleetMetrics; fm != nil {
		fm.CheckpointsWritten.Inc()
	}
	return rep, nil
}

// Recover imports the shard's loaded checkpoint (if any) through the
// consistency gate, staging its segments for revival and installing the
// catalog's streamed-prefix deltas so the optimizer re-derives the same
// plans the crashed shard ran. Idempotent: a second call (or a call on a
// cold-started shard) is a no-op.
func (s *Service) Recover(shard int) (*RecoverReport, error) {
	if shard < 0 || shard >= len(s.shards) {
		return nil, fmt.Errorf("service: recover of unknown shard %d", shard)
	}
	sh := s.shards[shard]
	rep := &RecoverReport{}
	sh.exec(func() {
		if sh.pendingRecover == nil {
			return
		}
		rep.Generation = sh.pendingGen
		rep.Installed, rep.Dropped, rep.Rows = sh.mgr.ImportSegments(sh.pendingRecover)
		sh.pendingRecover = nil
	})
	if rep.Installed > 0 || rep.Dropped > 0 {
		sh.rec.segsRecovered.Add(int64(rep.Installed))
		sh.rec.segsDropped.Add(int64(rep.Dropped))
		if fm := s.cfg.FleetMetrics; fm != nil {
			fm.SegmentsRecovered.Add(int64(rep.Installed))
			fm.SegmentsDropped.Add(int64(rep.Dropped))
		}
	}
	return rep, nil
}

// RecoveredAborts returns the queries the admission journals prove were in
// flight when the previous process crashed: admitted, never completed. They
// are reported (and shed) as non-retryable recovered-aborts; the front-end's
// re-dispatch path may resubmit them elsewhere. Static after New.
func (s *Service) RecoveredAborts() []recovery.QueryRecord {
	var out []recovery.QueryRecord
	for _, sh := range s.shards {
		out = append(out, sh.recovered...)
	}
	return out
}

// RecoveryStats aggregates the recovery tier's counters across shards.
// Cheap (atomics only) — health handlers poll it.
func (s *Service) RecoveryStats() recovery.StatsSnapshot {
	st := recovery.StatsSnapshot{}
	for _, sh := range s.shards {
		if sh.store == nil {
			continue
		}
		st.Enabled = true
		if g := int(sh.rec.generation.Load()); g > st.Generation {
			st.Generation = g
		}
		st.CheckpointsWritten += sh.rec.written.Load()
		st.CheckpointsLoaded += sh.rec.loaded.Load()
		st.SegmentsWritten += sh.rec.segsWritten.Load()
		st.SegmentsRecovered += sh.rec.segsRecovered.Load()
		st.SegmentsDropped += sh.rec.segsDropped.Load()
		st.JournaledAborts += len(sh.recovered)
	}
	return st
}

// checkpointLoop periodically checkpoints every shard. Shards still holding
// an unrecovered checkpoint are skipped inside Checkpoint itself.
func (s *Service) checkpointLoop(interval time.Duration) {
	defer close(s.cpDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.cpStop:
			return
		case <-t.C:
			for i := range s.shards {
				s.Checkpoint(i)
			}
		}
	}
}

// queryRecord projects a request into its journal record.
func queryRecord(r *request) recovery.QueryRecord {
	return recovery.QueryRecord{ID: r.uq.ID, Keywords: r.uq.Keywords, K: r.uq.K}
}
