package service

import (
	"context"
	"strings"
	"testing"

	"repro/internal/workload"
)

// TestNonConvergentMergeFailsSearchResponse pins the engine-failure contract
// end to end: a merge whose scheduling rounds exceed the drive bound must
// come back to the caller as a failed search response — the serve process
// and its executor goroutines survive, and lifting the bound restores
// service on the same shard.
func TestNonConvergentMergeFailsSearchResponse(t *testing.T) {
	w, err := workload.GUS(1, workload.GUSScaleDefault())
	if err != nil {
		t.Fatal(err)
	}
	svc := New(w, Config{K: 8, Seed: 3, Shards: 1, Workers: 2, BatchWindow: 0})
	defer svc.Close()

	kw := w.Submissions[0].UQ.Keywords
	// Cripple the bound before any request: every round then trips the
	// non-convergence error inside a pool worker.
	svc.shards[0].ctrl.SetDriveBound(1)
	if _, err := svc.Search(context.Background(), "u", kw, 8); err == nil {
		t.Fatal("crippled engine answered a search successfully")
	} else if !strings.Contains(err.Error(), "did not converge") {
		t.Fatalf("search error %v, want non-convergence", err)
	}

	// The executor must still be alive and serving: restore the bound
	// through the engine's own submission path and search again.
	svc.shards[0].ctrl.SetDriveBound(0)
	res, err := svc.Search(context.Background(), "u", kw, 8)
	if err != nil {
		t.Fatalf("search after recovery: %v", err)
	}
	if len(res.Answers) == 0 {
		t.Fatal("recovered search returned no answers")
	}
}
