package service_test

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/service"
	"repro/internal/workload"
)

func digestSearch(t *testing.T, h hash.Hash, svc *service.Service, user string, kw []string, k int) *service.Result {
	t.Helper()
	res, err := svc.Search(context.Background(), user, kw, k)
	if err != nil {
		t.Fatalf("search %v: %v", kw, err)
	}
	fleet.DigestView(h, fleet.ViewOf(res))
	return res
}

// TestMigrateTopicZeroExtraStreamTuples is the issue's acceptance probe at
// test granularity: a topic searched, migrated to the other shard and
// searched again must answer identically to the topic staying put AND cost
// zero extra source-stream tuples — the state traveled, so the sources are
// not re-read.
func TestMigrateTopicZeroExtraStreamTuples(t *testing.T) {
	topic := []string{"metabolism", "protein"}
	run := func(migrate bool) (string, int64, *service.MigrationReport, int64) {
		w, err := workload.Bio()
		if err != nil {
			t.Fatal(err)
		}
		svc := service.New(w, service.Config{
			Seed: 7, K: 10, Shards: 2, Router: service.RouterAffinity,
			Workers: 1, BatchWindow: 0,
		})
		defer svc.Close() //nolint:errcheck

		h := sha256.New()
		res := digestSearch(t, h, svc, "mig-user", topic, 10)

		var rep *service.MigrationReport
		home := res.Shard
		if migrate {
			rep, err = svc.MigrateTopic(topic, home, 1-home)
			if err != nil {
				t.Fatal(err)
			}
		}

		res = digestSearch(t, h, svc, "mig-user", topic, 10)
		if migrate && res.Shard != 1-home {
			t.Fatalf("repeat search ran on shard %d, want rehomed shard %d", res.Shard, 1-home)
		}
		st := svc.Stats()
		return hex.EncodeToString(h.Sum(nil)), st.Work.StreamTuples, rep, st.Work.MigrationRestores
	}

	stayDigest, stayStream, _, _ := run(false)
	migDigest, migStream, rep, restores := run(true)

	if rep.Segments == 0 {
		t.Fatal("migration exported no segments — the topic left no idle state behind")
	}
	if rep.Installed != rep.Segments || rep.Dropped != 0 {
		t.Fatalf("in-process migration: %d/%d segments installed, %d dropped — the gate should accept all of them",
			rep.Installed, rep.Segments, rep.Dropped)
	}
	if restores == 0 {
		t.Fatal("migrated segments were never restored — the repeat search did not consume them")
	}
	if migDigest != stayDigest {
		t.Fatalf("migration changed results: stay=%s migrate=%s", stayDigest, migDigest)
	}
	if extra := migStream - stayStream; extra != 0 {
		t.Fatalf("migration cost %d extra source-stream tuples (stay=%d migrate=%d), want 0",
			extra, stayStream, migStream)
	}
}

// TestImportRejectsCorruptSegments pins the decode half of the consistency
// gate: an export whose segment bytes were damaged in flight is dropped at
// import — all of it — and the next search re-derives the state by source
// replay, answering exactly what an undisturbed service answers.
func TestImportRejectsCorruptSegments(t *testing.T) {
	topic := []string{"metabolism", "protein"}
	run := func(corrupt bool) string {
		w, err := workload.Bio()
		if err != nil {
			t.Fatal(err)
		}
		svc := service.New(w, service.Config{
			Seed: 7, K: 10, Shards: 2, Router: service.RouterAffinity,
			Workers: 1, BatchWindow: 0,
		})
		defer svc.Close() //nolint:errcheck

		h := sha256.New()
		res := digestSearch(t, h, svc, "gate-user", topic, 10)

		if corrupt {
			home := res.Shard
			exp, err := svc.ExportTopic(home, topic)
			if err != nil {
				t.Fatal(err)
			}
			if len(exp.Segments) == 0 {
				t.Fatal("nothing exported to corrupt")
			}
			for i := range exp.Segments {
				data := exp.Segments[i].Data
				data[len(data)/2] ^= 0xff
			}
			installed, dropped, _, err := svc.ImportTopic(1-home, exp)
			if err != nil {
				t.Fatal(err)
			}
			if installed != 0 || dropped != len(exp.Segments) {
				t.Fatalf("corrupt import: %d installed, %d dropped, want 0/%d",
					installed, dropped, len(exp.Segments))
			}
			if st := svc.Stats(); st.Work.MigrationDrops < int64(len(exp.Segments)) {
				t.Fatalf("MigrationDrops = %d, want >= %d", st.Work.MigrationDrops, len(exp.Segments))
			}
		}

		// The export discarded the source copy and the import dropped the
		// wire copy: the state is gone everywhere, and the repeat search must
		// quietly rebuild it from the sources.
		digestSearch(t, h, svc, "gate-user", topic, 10)
		return hex.EncodeToString(h.Sum(nil))
	}

	control := run(false)
	damaged := run(true)
	if control != damaged {
		t.Fatalf("gate rejection changed results: control=%s damaged=%s", control, damaged)
	}
}

// TestCrossInstanceImportGateReplays pins the consume half of the gate: an
// export installed into a *different* engine instance (fresh workload copy,
// empty stream views — the cross-process shape) decodes and stages, but the
// staged stream segments fail the stream-position check when a search tries
// to consume them. They must be dropped — counted as MigrationDrops — and
// the search must answer exactly what a never-imported engine answers.
func TestCrossInstanceImportGateReplays(t *testing.T) {
	topic := []string{"metabolism", "protein"}

	newSvc := func() *service.Service {
		w, err := workload.Bio()
		if err != nil {
			t.Fatal(err)
		}
		return service.New(w, service.Config{
			Seed: 7, K: 10, Shards: 1, Workers: 1, BatchWindow: 0,
		})
	}

	// Source engine: search the topic, export its retained state.
	src := newSvc()
	defer src.Close() //nolint:errcheck
	if _, err := src.Search(context.Background(), "xuser", topic, 10); err != nil {
		t.Fatal(err)
	}
	exp, err := src.ExportTopic(0, topic)
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Segments) == 0 {
		t.Fatal("source exported no segments")
	}

	// Control: a fresh engine with no import at all.
	control := newSvc()
	defer control.Close() //nolint:errcheck
	hControl := sha256.New()
	digestSearch(t, hControl, control, "xuser", topic, 10)

	// Target: a fresh engine that imports the foreign export first.
	target := newSvc()
	defer target.Close() //nolint:errcheck
	if _, _, _, err := target.ImportTopic(0, exp); err != nil {
		t.Fatal(err)
	}
	hTarget := sha256.New()
	digestSearch(t, hTarget, target, "xuser", topic, 10)

	if got, want := hex.EncodeToString(hTarget.Sum(nil)), hex.EncodeToString(hControl.Sum(nil)); got != want {
		t.Fatalf("foreign import changed results: imported=%s control=%s", got, want)
	}
	st := target.Stats()
	if st.Work.MigrationDrops == 0 && st.Work.MigrationRestores == 0 {
		t.Fatal("imported segments neither restored nor dropped — the staged state was never touched")
	}
}

// TestMigrationRacingEviction runs live topic migrations concurrently with a
// search storm on a budgeted service — eviction, spill-format encode/decode
// and the consistency gate all racing — and requires the ledger audit to
// balance and Close to leave no goroutines behind. CI runs this under -race.
func TestMigrationRacingEviction(t *testing.T) {
	before := runtime.NumGoroutine()
	w, err := workload.GUS(1, workload.GUSScaleDefault())
	if err != nil {
		t.Fatal(err)
	}
	svc := service.New(w, service.Config{
		K:            10,
		Seed:         17,
		Shards:       2,
		Workers:      2,
		BatchWindow:  2 * time.Millisecond,
		BatchSize:    3,
		MemoryBudget: 800,
	})

	var pool [][]string
	for _, s := range w.Submissions {
		if len(s.UQ.Keywords) > 1 {
			pool = append(pool, s.UQ.Keywords)
		}
	}
	if len(pool) == 0 {
		t.Fatal("workload has no multi-keyword suite")
	}

	const users, requests = 4, 6
	var wg sync.WaitGroup
	var mu sync.Mutex
	completed := 0
	for u := 0; u < users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(u) + 41))
			for i := 0; i < requests; i++ {
				kw := pool[rng.Intn(len(pool))]
				if _, err := svc.Search(context.Background(), fmt.Sprintf("churn%d", u), kw, 10); err == nil {
					mu.Lock()
					completed++
					mu.Unlock()
				}
			}
		}(u)
	}
	// Migration storm: bounce suite topics between the two shards while the
	// searches run. Failed exports/imports are fine (the topic may be
	// mid-flight); wrong answers or unbalanced ledgers are not.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(97))
		for i := 0; i < 30; i++ {
			kw := pool[rng.Intn(len(pool))]
			from := rng.Intn(2)
			svc.MigrateTopic(kw, from, 1-from) //nolint:errcheck
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()

	if completed == 0 {
		t.Fatal("no search completed under migration churn")
	}
	st := svc.Stats()
	for _, sh := range st.Shards {
		if sh.StateRows != sh.StateRowsAudit {
			t.Fatalf("shard %d ledger %d != audit %d under migration churn",
				sh.Shard, sh.StateRows, sh.StateRowsAudit)
		}
	}

	if err := svc.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before service, %d after Close", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
