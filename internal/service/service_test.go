package service_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/service"
	"repro/internal/workload"
)

// bioKeywords are searches every Bio() schema-graph term can answer.
var bioKeywords = [][]string{
	{"metabolism", "protein"},
	{"metabolism", "gene"},
	{"membrane", "protein"},
	{"plasma membrane", "protein"},
	{"metabolism", "protein"},
	{"membrane", "gene"},
}

func newBioService(t *testing.T, cfg service.Config) *service.Service {
	t.Helper()
	w, err := workload.Bio()
	if err != nil {
		t.Fatal(err)
	}
	return service.New(w, cfg)
}

func TestSearchBasic(t *testing.T) {
	s := newBioService(t, service.Config{K: 10})
	defer s.Close()
	res, err := s.Search(context.Background(), "alice", []string{"metabolism", "protein"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) == 0 {
		t.Fatal("no answers")
	}
	if res.CandidateNetworks == 0 || res.ExecutedNetworks == 0 {
		t.Errorf("networks: candidates=%d executed=%d", res.CandidateNetworks, res.ExecutedNetworks)
	}
	for i, a := range res.Answers {
		if a.Rank != i+1 {
			t.Errorf("answer %d has rank %d", i, a.Rank)
		}
		if i > 0 && a.Score > res.Answers[i-1].Score+1e-9 {
			t.Errorf("answers not in score order at %d", i)
		}
	}
	if res.WallLatency <= 0 {
		t.Error("no wall latency recorded")
	}
}

func TestConcurrentSearchesShareBatches(t *testing.T) {
	s := newBioService(t, service.Config{K: 10, BatchSize: 8, BatchWindow: 50 * time.Millisecond})
	defer s.Close()

	const users = 24
	var wg sync.WaitGroup
	errs := make([]error, users)
	results := make([]*service.Result, users)
	for i := 0; i < users; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			kw := bioKeywords[i%len(bioKeywords)]
			results[i], errs[i] = s.Search(context.Background(), fmt.Sprintf("user%d", i), kw, 10)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("user %d: %v", i, err)
		}
		if len(results[i].Answers) == 0 {
			t.Errorf("user %d got no answers", i)
		}
	}
	st := s.Stats()
	if st.Service.Completed != users {
		t.Errorf("completed = %d, want %d", st.Service.Completed, users)
	}
	if st.Service.InFlight != 0 || st.Service.Queued != 0 {
		t.Errorf("gauges not drained: inflight=%d queued=%d", st.Service.InFlight, st.Service.Queued)
	}
	if st.Service.Batches >= users {
		t.Errorf("every query got its own batch (%d batches for %d queries); admission window never grouped",
			st.Service.Batches, users)
	}
	if st.Service.BatchOccupancy.Max < 2 {
		t.Errorf("max batch occupancy = %d, want >= 2", st.Service.BatchOccupancy.Max)
	}
}

func TestZeroWindowAdmitsImmediately(t *testing.T) {
	s := newBioService(t, service.Config{K: 5, BatchWindow: 0})
	defer s.Close()
	start := time.Now()
	if _, err := s.Search(context.Background(), "u", []string{"metabolism", "protein"}, 5); err != nil {
		t.Fatal(err)
	}
	// No admission window: a lone query must not sit waiting for co-riders.
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("zero-window search took %v", d)
	}
	if got := s.Stats().Service.Batches; got != 1 {
		t.Errorf("batches = %d, want 1", got)
	}
}

func TestTimeoutTriggeredRelease(t *testing.T) {
	// Size trigger far above arrivals: only the window timeout can release.
	s := newBioService(t, service.Config{K: 5, BatchSize: 100, BatchWindow: 30 * time.Millisecond})
	defer s.Close()
	res, err := s.Search(context.Background(), "u", []string{"metabolism", "gene"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.WallLatency < 30*time.Millisecond {
		t.Errorf("wall latency %v shorter than the 30ms admission window", res.WallLatency)
	}
	if res.BatchSize != 1 {
		t.Errorf("batch size = %d, want 1 (empty window released by timeout)", res.BatchSize)
	}
}

func TestSizeTriggeredRelease(t *testing.T) {
	// Huge window: only the size trigger can release before the test times out.
	s := newBioService(t, service.Config{K: 5, BatchSize: 3, BatchWindow: time.Hour})
	defer s.Close()
	var wg sync.WaitGroup
	results := make([]*service.Result, 3)
	errs := make([]error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.Search(context.Background(), fmt.Sprintf("u%d", i), bioKeywords[i], 5)
		}(i)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("search %d: %v", i, errs[i])
		}
		if results[i].BatchSize != 3 {
			t.Errorf("search %d rode batch of %d, want 3", i, results[i].BatchSize)
		}
	}
}

func TestContextCancellationWhileQueued(t *testing.T) {
	s := newBioService(t, service.Config{K: 5, BatchSize: 100, BatchWindow: time.Hour})
	defer s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := s.Search(ctx, "u", []string{"metabolism", "protein"}, 5)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	// The executor must eventually settle the abandoned request.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := s.Stats().Service
		if st.Canceled >= 1 && st.InFlight == 0 && st.Queued == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("abandoned request never settled: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestContextCancellationMidFlight(t *testing.T) {
	// RealTime makes execution slow enough (Poisson 2ms per remote op) that
	// cancellation lands after admission, mid-execution.
	s := newBioService(t, service.Config{K: 50, BatchWindow: 0, RealTime: true})
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := s.Search(ctx, "u", []string{"metabolism", "protein"}, 50)
		done <- err
	}()
	time.Sleep(30 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want Canceled or success", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled search never returned")
	}
	// Executor must keep serving after a cancellation.
	res, err := s.Search(context.Background(), "v", []string{"metabolism", "gene"}, 5)
	if err != nil || len(res.Answers) == 0 {
		t.Fatalf("post-cancel search: res=%v err=%v", res, err)
	}
}

func TestSearchAfterCloseFails(t *testing.T) {
	s := newBioService(t, service.Config{K: 5})
	s.Close()
	if _, err := s.Search(context.Background(), "u", []string{"metabolism", "protein"}, 5); !errors.Is(err, service.ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	s.Close() // idempotent
}

func TestCloseFlushesPendingWindow(t *testing.T) {
	s := newBioService(t, service.Config{K: 5, BatchSize: 100, BatchWindow: time.Hour})
	done := make(chan error, 1)
	go func() {
		_, err := s.Search(context.Background(), "u", []string{"metabolism", "protein"}, 5)
		done <- err
	}()
	// Wait until the request is parked in the admission window, then close:
	// shutdown must flush and answer it, not strand it for an hour.
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Service.Queued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never reached the admission window")
		}
		time.Sleep(2 * time.Millisecond)
	}
	s.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("flushed search failed: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close stranded the pending request")
	}
}

func TestShardedRouting(t *testing.T) {
	// The hash router guarantees textual-identity placement regardless of
	// arrival interleaving; the affinity router's placement contract (same
	// canonical set converges on one shard) is pinned in routing_test.go.
	s := newBioService(t, service.Config{K: 5, Shards: 3, Router: service.RouterHash, BatchWindow: 10 * time.Millisecond})
	defer s.Close()
	var wg sync.WaitGroup
	shardOf := map[string]int{}
	var mu sync.Mutex
	for i := 0; i < 18; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			kw := bioKeywords[i%len(bioKeywords)]
			res, err := s.Search(context.Background(), fmt.Sprintf("u%d", i), kw, 5)
			if err != nil {
				t.Error(err)
				return
			}
			key := fmt.Sprintf("%v", kw)
			mu.Lock()
			defer mu.Unlock()
			if prev, ok := shardOf[key]; ok && prev != res.Shard {
				t.Errorf("keywords %v routed to shards %d and %d", kw, prev, res.Shard)
			}
			shardOf[key] = res.Shard
		}(i)
	}
	wg.Wait()
	st := s.Stats()
	if len(st.Shards) != 3 {
		t.Fatalf("shard stats = %d entries", len(st.Shards))
	}
}

func TestRepeatedSearchesReuseState(t *testing.T) {
	s := newBioService(t, service.Config{K: 10, BatchWindow: 0})
	defer s.Close()
	for i := 0; i < 4; i++ {
		if _, err := s.Search(context.Background(), "u", []string{"metabolism", "protein"}, 10); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Work.ReplayTuples == 0 {
		t.Error("repeated identical searches replayed nothing — plan-state reuse broken")
	}
	if st.SharedFraction() <= 0 {
		t.Errorf("shared fraction = %v", st.SharedFraction())
	}
}

func TestStatsDuringLoad(t *testing.T) {
	s := newBioService(t, service.Config{K: 5, BatchWindow: 5 * time.Millisecond})
	defer s.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_, err := s.Search(context.Background(), "u", bioKeywords[i%len(bioKeywords)], 5)
			if err != nil {
				t.Error(err)
				return
			}
		}
	}()
	// Stats must be answerable while the executor is mid-flight.
	for i := 0; i < 20; i++ {
		st := s.Stats()
		if st.Service.Requests < st.Service.Completed {
			t.Errorf("requests %d < completed %d", st.Service.Requests, st.Service.Completed)
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
}

// TestWindowSharesSourceWork: at the same offered load over the GUS workload
// with a bounded state budget — the production regime, where retained plan
// state is evicted between admissions — a positive admission window turns
// concurrent arrivals into shared stream reads (the co-admitted queries drive
// the same live sources), so fewer source-stream tuples are read than with no
// window, where every sequentially admitted query re-pays for state that was
// already evicted. With an unbounded budget the persistent shared graph makes
// total source work invariant to batching (see EXPERIMENTS.md on cross-time
// reuse), which is why this test pins the memory-bounded case.
func TestWindowSharesSourceWork(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run GUS load in -short mode")
	}
	if raceEnabled {
		// The 25ms admission window must capture concurrently arriving
		// searches for batching to share work; race instrumentation slows the
		// engine roughly tenfold, so arrivals trickle in one per window and
		// the economics this test pins no longer apply (flaky at the seed
		// commit too, independent of engine changes).
		t.Skip("wall-clock admission-window economics are not meaningful under -race")
	}
	run := func(window time.Duration) int64 {
		w, err := workload.GUS(1, workload.GUSScaleDefault())
		if err != nil {
			t.Fatal(err)
		}
		s := service.New(w, service.Config{K: 20, Seed: 1, BatchWindow: window, BatchSize: 5, MemoryBudget: 500})
		defer s.Close()
		pool := w.Submissions
		var wg sync.WaitGroup
		for u := 0; u < 8; u++ {
			wg.Add(1)
			go func(u int) {
				defer wg.Done()
				rng := dist.New(1 + uint64(u)*977 + 3)
				zipf := dist.NewZipf(rng, len(pool), 0.8)
				for i := 0; i < 8; i++ {
					kw := pool[zipf.Next()].UQ.Keywords
					if _, err := s.Search(context.Background(), fmt.Sprintf("u%d", u), kw, 20); err != nil {
						t.Errorf("user %d: %v", u, err)
						return
					}
				}
			}(u)
		}
		wg.Wait()
		return s.Stats().Work.StreamTuples
	}
	unbatched := run(0)
	batched := run(25 * time.Millisecond)
	t.Logf("stream tuples: window=0 %d, window=25ms %d", unbatched, batched)
	if batched >= unbatched {
		t.Errorf("admission window did not reduce source work: %d >= %d", batched, unbatched)
	}
}
