package service_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/service"
)

// TestUserRateShed: with a per-user admission rate of ~1 query/sec and burst
// 1, a user's second immediate search is shed with a retryable user-rate
// ShedError and a Retry-After hint, and the shed counters record it.
func TestUserRateShed(t *testing.T) {
	s := newBioService(t, service.Config{
		K:         5,
		Admission: admission.Config{UserRate: 1, UserBurst: 1},
	})
	defer s.Close()

	if _, err := s.Search(context.Background(), "alice", bioKeywords[0], 5); err != nil {
		t.Fatalf("first search: %v", err)
	}
	_, err := s.Search(context.Background(), "alice", bioKeywords[1], 5)
	var shed *admission.ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("second search: got %v, want ShedError", err)
	}
	if shed.Reason != admission.ReasonUserRate {
		t.Errorf("reason = %q, want %q", shed.Reason, admission.ReasonUserRate)
	}
	if !shed.Retryable() {
		t.Error("pre-admission rate shed must be retryable")
	}
	if shed.RetryAfter <= 0 {
		t.Error("rate shed carries no Retry-After hint")
	}
	// A different user still has a full bucket.
	if _, err := s.Search(context.Background(), "bob", bioKeywords[0], 5); err != nil {
		t.Fatalf("other user: %v", err)
	}
	st := s.Stats().Service
	if st.Shed != 1 || st.ShedUserRate != 1 {
		t.Errorf("shed counters = %d/%d, want 1/1", st.Shed, st.ShedUserRate)
	}
}

// TestQueueFullShed: with MaxPending 1 and a long admission window, a second
// arrival finds the shard's queue full and is shed immediately instead of
// blocking its caller.
func TestQueueFullShed(t *testing.T) {
	s := newBioService(t, service.Config{
		K:           5,
		BatchSize:   8,
		BatchWindow: 300 * time.Millisecond,
		Admission:   admission.Config{MaxPending: 1},
	})
	defer s.Close()

	first := make(chan error, 1)
	go func() {
		_, err := s.Search(context.Background(), "alice", bioKeywords[0], 5)
		first <- err
	}()
	// Wait until the first search occupies the queue.
	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().Service.Queued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first search never queued")
		}
		time.Sleep(time.Millisecond)
	}

	_, err := s.Search(context.Background(), "bob", bioKeywords[1], 5)
	var shed *admission.ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("second search: got %v, want ShedError", err)
	}
	if shed.Reason != admission.ReasonQueueFull {
		t.Errorf("reason = %q, want %q", shed.Reason, admission.ReasonQueueFull)
	}
	if !shed.Retryable() {
		t.Error("queue-full shed must be retryable")
	}
	if err := <-first; err != nil {
		t.Fatalf("first search: %v", err)
	}
	st := s.Stats().Service
	if st.ShedQueueFull != 1 {
		t.Errorf("ShedQueueFull = %d, want 1", st.ShedQueueFull)
	}
}

// TestDeadlineShed: a request whose latency budget expires while it is still
// collecting in the admission window is shed with a non-retryable deadline
// ShedError and counted as DeadlineCanceled, not as a pre-admission shed.
func TestDeadlineShed(t *testing.T) {
	s := newBioService(t, service.Config{
		K:           5,
		BatchSize:   8,
		BatchWindow: 150 * time.Millisecond,
		Admission:   admission.Config{Deadline: 10 * time.Millisecond},
	})
	defer s.Close()

	_, err := s.Search(context.Background(), "alice", bioKeywords[0], 5)
	var shed *admission.ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("got %v, want ShedError", err)
	}
	if shed.Reason != admission.ReasonDeadline {
		t.Errorf("reason = %q, want %q", shed.Reason, admission.ReasonDeadline)
	}
	if shed.Retryable() {
		t.Error("deadline shed must not be retryable")
	}
	st := s.Stats().Service
	if st.DeadlineCanceled != 1 {
		t.Errorf("DeadlineCanceled = %d, want 1", st.DeadlineCanceled)
	}
	if st.Shed != 0 {
		t.Errorf("Shed = %d, want 0 (deadline sheds are post-admission)", st.Shed)
	}
}

// TestAbortInFlight: a drain abort settles a queued search with the given
// reason and reports how many requests it cut loose; the service keeps
// serving afterwards.
func TestAbortInFlight(t *testing.T) {
	s := newBioService(t, service.Config{
		K:           5,
		BatchSize:   8,
		BatchWindow: time.Second,
	})
	defer s.Close()

	got := make(chan error, 1)
	go func() {
		_, err := s.Search(context.Background(), "alice", bioKeywords[0], 5)
		got <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().Service.Queued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("search never queued")
		}
		time.Sleep(time.Millisecond)
	}

	n := s.AbortInFlight(&admission.ShedError{Reason: admission.ReasonDrain})
	if n != 1 {
		t.Errorf("aborted %d requests, want 1", n)
	}
	err := <-got
	var shed *admission.ShedError
	if !errors.As(err, &shed) || shed.Reason != admission.ReasonDrain {
		t.Fatalf("got %v, want drain ShedError", err)
	}
	if shed.Retryable() {
		t.Error("drain shed must not be retryable")
	}
	// The shard survives the abort and serves new work.
	if _, err := s.Search(context.Background(), "bob", bioKeywords[1], 5); err != nil {
		t.Fatalf("search after abort: %v", err)
	}
}

// TestAdaptiveWindowServes: with the adaptive admission window enabled the
// service behaves like a (variable-window) batching service — concurrent
// searches all complete with answers.
func TestAdaptiveWindowServes(t *testing.T) {
	s := newBioService(t, service.Config{
		K:         5,
		BatchSize: 4,
		Admission: admission.Config{
			AdaptiveWindow: true,
			WindowMax:      20 * time.Millisecond,
			Deadline:       5 * time.Second,
		},
	})
	defer s.Close()

	const n = 12
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			res, err := s.Search(context.Background(), "alice", bioKeywords[i%len(bioKeywords)], 5)
			if err == nil && len(res.Answers) == 0 {
				err = errors.New("no answers")
			}
			errs <- err
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Errorf("search %d: %v", i, err)
		}
	}
}
