package service_test

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/service"
)

// TestSearchCanonicalVariantsShareShard pins the sharing contract end to
// end: engine-valid surface variants of one search (case changes and
// duplicate keywords) must execute on the same shard in both router modes.
func TestSearchCanonicalVariantsShareShard(t *testing.T) {
	variants := [][]string{
		{"metabolism", "protein"},
		{"Metabolism", "PROTEIN"},
		{"protein", "metabolism", "protein"},
		{"METABOLISM", "metabolism", "protein"},
	}
	for _, mode := range []string{service.RouterHash, service.RouterAffinity} {
		s := newBioService(t, service.Config{K: 5, Shards: 4, Router: mode, BatchWindow: 0})
		want := -1
		for _, kw := range variants {
			res, err := s.Search(context.Background(), "u", kw, 5)
			if err != nil {
				t.Fatalf("%s router: search %q: %v", mode, kw, err)
			}
			if want < 0 {
				want = res.Shard
			} else if res.Shard != want {
				t.Errorf("%s router: %q executed on shard %d, earlier variant on %d", mode, kw, res.Shard, want)
			}
		}
		s.Close()
	}
}

// TestAffinityRoutesOverlappingTopicsTogether: with the affinity router,
// searches that overlap a shard's recently admitted keywords join that shard
// and replay its retained state instead of re-reading the sources.
func TestAffinityRoutesOverlappingTopicsTogether(t *testing.T) {
	s := newBioService(t, service.Config{K: 5, Shards: 3, Router: service.RouterAffinity, BatchWindow: 0})
	defer s.Close()
	seed, err := s.Search(context.Background(), "u", []string{"metabolism", "protein"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, kw := range [][]string{
		{"metabolism", "gene"},
		{"membrane", "protein"},
		{"metabolism", "protein"},
	} {
		res, err := s.Search(context.Background(), "u", kw, 5)
		if err != nil {
			t.Fatal(err)
		}
		if res.Shard != seed.Shard {
			t.Errorf("overlapping %q executed on shard %d, topic lives on %d", kw, res.Shard, seed.Shard)
		}
	}
	st := s.Stats()
	if st.Router.Mode != service.RouterAffinity {
		t.Errorf("router mode = %q", st.Router.Mode)
	}
	if st.Router.AffinityHits < 3 {
		t.Errorf("affinity hits = %d, want >= 3 (overlapping follow-ups)", st.Router.AffinityHits)
	}
	if st.Router.SharingMisses != 0 {
		t.Errorf("affinity routing missed sharing %d times", st.Router.SharingMisses)
	}
	if st.Work.ReplayTuples == 0 {
		t.Error("co-located overlapping searches replayed nothing")
	}
}

// TestUserCoefficientsStableAcrossArrivalOrder pins the expand-seeding
// bugfix: a user's scoring coefficients are a function of the user's name,
// not of how many other users happened to arrive first. Two services seeing
// alice and bob in opposite order must give each user identical answers.
func TestUserCoefficientsStableAcrossArrivalOrder(t *testing.T) {
	kw := []string{"metabolism", "protein"}
	search := func(s *service.Service, user string) *service.Result {
		t.Helper()
		res, err := s.Search(context.Background(), user, kw, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Answers) == 0 {
			t.Fatalf("user %s got no answers", user)
		}
		return res
	}
	a := newBioService(t, service.Config{K: 10, BatchWindow: 0})
	aliceA := search(a, "alice")
	bobA := search(a, "bob")
	a.Close()
	b := newBioService(t, service.Config{K: 10, BatchWindow: 0})
	bobB := search(b, "bob")
	aliceB := search(b, "alice")
	b.Close()

	same := func(user string, x, y *service.Result) {
		if len(x.Answers) != len(y.Answers) {
			t.Fatalf("%s: %d answers vs %d across arrival orders", user, len(x.Answers), len(y.Answers))
		}
		for i := range x.Answers {
			if x.Answers[i].Score != y.Answers[i].Score {
				t.Fatalf("%s: answer %d scored %v vs %v — coefficients depend on arrival order",
					user, i, x.Answers[i].Score, y.Answers[i].Score)
			}
		}
	}
	same("alice", aliceA, aliceB)
	same("bob", bobA, bobB)
	// The two users' coefficient draws should actually differ somewhere, or
	// the per-user scoring model is vacuous.
	differ := false
	for i := range aliceA.Answers {
		if i < len(bobA.Answers) && aliceA.Answers[i].Score != bobA.Answers[i].Score {
			differ = true
			break
		}
	}
	if !differ {
		t.Log("alice and bob drew identical coefficients on this workload (possible, but suspicious)")
	}
}

// TestAffinityRouterUnderChurn exercises the affinity router with -race:
// concurrent searches across overlapping topics (including canonical
// variants) churn the per-shard keyword sets while Stats snapshots race the
// decisions. No routing decision may panic, the decision counters must add
// up, and Close must leave no goroutines behind.
func TestAffinityRouterUnderChurn(t *testing.T) {
	before := runtime.NumGoroutine()
	s := newBioService(t, service.Config{
		K: 5, Shards: 3, Router: service.RouterAffinity,
		BatchSize: 4, BatchWindow: 2 * time.Millisecond,
	})
	topics := [][]string{
		{"metabolism", "protein"},
		{"Metabolism", "gene"},
		{"membrane", "protein", "membrane"},
		{"plasma membrane", "protein"},
		{"MEMBRANE", "gene"},
		{"metabolism", "gene", "protein"},
	}
	const workers = 8
	const perWorker = 6
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				kw := topics[(w+i)%len(topics)]
				if _, err := s.Search(context.Background(), fmt.Sprintf("u%d", w), kw, 5); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	// Snapshot stats concurrently with the churn: every routing decision
	// must increment exactly one of the two counters (monotone, bounded by
	// submitted searches), observed through racing snapshots.
	stop := make(chan struct{})
	var statsWG sync.WaitGroup
	statsWG.Add(1)
	go func() {
		defer statsWG.Done()
		var lastSeen int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := s.Stats()
			if st.Router.Decisions < lastSeen {
				t.Errorf("routing decisions went backwards: %d after %d", st.Router.Decisions, lastSeen)
				return
			}
			lastSeen = st.Router.Decisions
			if st.Router.Decisions > int64(workers*perWorker) {
				t.Errorf("routing decisions %d exceed submitted searches %d",
					st.Router.Decisions, workers*perWorker)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	close(stop)
	statsWG.Wait()

	st := s.Stats()
	total := int64(workers * perWorker)
	if st.Service.Completed != total {
		t.Errorf("completed = %d, want %d", st.Service.Completed, total)
	}
	if st.Router.Decisions != total {
		t.Errorf("routing decisions = %d, want %d", st.Router.Decisions, total)
	}
	if st.Router.MissRate < 0 || st.Router.MissRate > 1 {
		t.Errorf("miss rate = %v", st.Router.MissRate)
	}
	if len(st.Router.Shards) != 3 {
		t.Fatalf("router shard stats = %+v", st.Router.Shards)
	}
	resident := 0
	for _, rs := range st.Router.Shards {
		if rs.Keywords < 0 || rs.Load < 0 {
			t.Errorf("negative shard set: %+v", rs)
		}
		resident += rs.Keywords
	}
	if resident == 0 {
		t.Error("no shard holds any resident keywords after churn")
	}
	s.Close()

	// Close must wind down every executor; give the runtime a moment to
	// retire them before comparing against the pre-service baseline.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before service, %d after Close", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
