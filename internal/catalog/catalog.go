// Package catalog maintains the statistics the optimizer costs plans with
// (§5.1.2) and that the query state manager keeps updated across executions
// (§3: "maintains cardinality information about intermediate results ...
// such that the query optimizer can determine what can be reused").
//
// Statistics follow the classic System-R shape: relation cardinalities,
// per-column distinct counts, score maxima, and independence-based join
// selectivities, plus the top-k depth estimate of [16,29] that predicts how
// deep into a score-ordered stream a query must read to produce k results.
package catalog

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/cq"
	"repro/internal/relationdb"
	"repro/internal/tuple"
)

// RelStats summarises one relation.
type RelStats struct {
	// Name is the relation name; DB the owning instance.
	Name string
	DB   string
	// Card is the relation cardinality.
	Card float64
	// Distinct[i] is the distinct-value count of column i.
	Distinct []float64
	// MaxScore is the top score of the relation's scoring attribute
	// (tuple.NeutralScore for score-less relations).
	MaxScore float64
	// HasScore reports whether the relation has a scoring attribute — the
	// streamability condition of §5.1.1.
	HasScore bool
	// Schema is the relation schema.
	Schema *tuple.Schema
}

// Catalog holds statistics for every relation visible to the middleware and
// answers estimation queries about expressions.
type Catalog struct {
	mu   sync.RWMutex
	rels map[string]*RelStats
	// streamedSoFar tracks, per input expression key, how many result tuples
	// earlier executions already streamed into middleware state — the §6.1
	// "updated cost estimates" feed, maintained by the query state manager.
	streamedSoFar map[string]int
	// exprCard caches observed cardinalities of executed subexpressions,
	// preferred over estimates when present (§3).
	exprCard map[string]float64
	// estCache memoises pure estimates (invalidated by observations).
	estCache map[string]float64
}

// New creates an empty catalog.
func New() *Catalog {
	return &Catalog{
		rels:          map[string]*RelStats{},
		streamedSoFar: map[string]int{},
		exprCard:      map[string]float64{},
		estCache:      map[string]float64{},
	}
}

// Fork returns a catalog sharing this catalog's (read-only, fully registered)
// relation statistics but with private execution-feedback state. Each plan
// graph gets a fork: reuse accounting (§6.1) is middleware-state-local, so an
// isolated graph must not see another graph's buffered-tuple counts. Callers
// must finish registering relations before forking.
func (c *Catalog) Fork() *Catalog {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return &Catalog{
		rels:          c.rels,
		streamedSoFar: map[string]int{},
		exprCard:      map[string]float64{},
		estCache:      map[string]float64{},
	}
}

// AddRelation registers (or refreshes) stats computed from a stored relation.
func (c *Catalog) AddRelation(db string, rel *relationdb.Relation) {
	s := rel.Schema()
	st := &RelStats{
		Name:     s.Name(),
		DB:       db,
		Card:     float64(rel.Cardinality()),
		Distinct: make([]float64, s.NumCols()),
		MaxScore: rel.MaxScore(),
		HasScore: s.HasScore(),
		Schema:   s,
	}
	for i := 0; i < s.NumCols(); i++ {
		st.Distinct[i] = float64(rel.DistinctCount(i))
	}
	c.mu.Lock()
	c.rels[s.Name()] = st
	c.mu.Unlock()
}

// AddStats registers stats directly (used when relations are lazy and the
// workload generator knows the intended shape without materialising data).
func (c *Catalog) AddStats(st *RelStats) {
	c.mu.Lock()
	c.rels[st.Name] = st
	c.mu.Unlock()
}

// Relation returns stats for the named relation.
func (c *Catalog) Relation(name string) (*RelStats, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	st, ok := c.rels[name]
	if !ok {
		return nil, fmt.Errorf("catalog: unknown relation %q", name)
	}
	return st, nil
}

// MustRelation is Relation for trusted callers.
func (c *Catalog) MustRelation(name string) *RelStats {
	st, err := c.Relation(name)
	if err != nil {
		panic(err)
	}
	return st
}

// Relations returns all known relation names, sorted.
func (c *Catalog) Relations() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.rels))
	for n := range c.rels {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// --- Expression estimation -------------------------------------------------

// EstimateCard estimates the result cardinality of an expression using
// independence assumptions: Π card(atom) × Π joinSel × Π constSel. When a
// previous execution recorded the expression's true cardinality, that
// observation wins (§3, §6.1).
func (c *Catalog) EstimateCard(e *cq.Expr) float64 {
	c.mu.RLock()
	if obs, ok := c.exprCard[e.Key()]; ok {
		c.mu.RUnlock()
		return obs
	}
	if est, ok := c.estCache[e.Key()]; ok {
		c.mu.RUnlock()
		return est
	}
	c.mu.RUnlock()
	card := 1.0
	for _, a := range e.Atoms {
		st, err := c.Relation(a.Rel)
		if err != nil {
			// Unknown relation: assume a mid-sized table so planning can
			// proceed; the state manager will correct it after execution.
			card *= 1000
			continue
		}
		card *= math.Max(st.Card, 1)
		for ci, t := range a.Args {
			if t.IsConst() {
				card *= constSelectivity(st, ci)
			}
		}
	}
	for _, p := range e.JoinPreds() {
		card *= c.joinSelectivity(e.Atoms[p.AtomA], p.ColA, e.Atoms[p.AtomB], p.ColB)
	}
	if card < 0 {
		card = 0
	}
	c.mu.Lock()
	c.estCache[e.Key()] = card
	c.mu.Unlock()
	return card
}

func constSelectivity(st *RelStats, col int) float64 {
	if col < len(st.Distinct) && st.Distinct[col] > 0 {
		return 1 / st.Distinct[col]
	}
	return 0.1
}

func (c *Catalog) joinSelectivity(a *cq.Atom, ca int, b *cq.Atom, cb int) float64 {
	da, db := 100.0, 100.0
	if st, err := c.Relation(a.Rel); err == nil && ca < len(st.Distinct) && st.Distinct[ca] > 0 {
		da = st.Distinct[ca]
	}
	if st, err := c.Relation(b.Rel); err == nil && cb < len(st.Distinct) && st.Distinct[cb] > 0 {
		db = st.Distinct[cb]
	}
	return 1 / math.Max(da, db)
}

// ExpensiveJoin reports whether the expression contains a join that is not
// key/foreign-key-like: both sides' join columns have many duplicates. The
// §5.1.1 utility filter prunes such subexpressions from pushdown candidates.
func (c *Catalog) ExpensiveJoin(e *cq.Expr) bool {
	for _, p := range e.JoinPreds() {
		if c.duplication(e.Atoms[p.AtomA], p.ColA) > 4 && c.duplication(e.Atoms[p.AtomB], p.ColB) > 4 {
			return true
		}
	}
	return false
}

// duplication estimates average duplicates per value in a column.
func (c *Catalog) duplication(a *cq.Atom, col int) float64 {
	st, err := c.Relation(a.Rel)
	if err != nil || col >= len(st.Distinct) || st.Distinct[col] == 0 {
		return 1
	}
	return st.Card / st.Distinct[col]
}

// TopKDepth estimates how many tuples a score-ordered stream over e must
// deliver for the consuming queries to produce k results, following the
// depth-estimation idea of [16,29]: if the queries need k results and this
// input joins into an expected 'fanout' results per input tuple, the expected
// depth is k/fanout, clamped to the input's cardinality.
func (c *Catalog) TopKDepth(e *cq.Expr, k int, fanout float64) float64 {
	card := c.EstimateCard(e)
	if fanout <= 0 {
		fanout = 1e-9
	}
	depth := float64(k) / fanout
	return math.Min(math.Max(depth, 1), math.Max(card, 1))
}

// --- Execution feedback (§3, §6.1) ------------------------------------------

// RecordStreamed notes that an execution has streamed n tuples of input key
// into middleware state; the optimizer subtracts these from future costs.
func (c *Catalog) RecordStreamed(key string, n int) {
	c.mu.Lock()
	if n > c.streamedSoFar[key] {
		c.streamedSoFar[key] = n
	}
	c.mu.Unlock()
}

// StreamedSoFar returns how many tuples of the input are already buffered.
func (c *Catalog) StreamedSoFar(key string) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.streamedSoFar[key]
}

// ForgetStreamed clears reuse accounting for an evicted input (§6.3).
func (c *Catalog) ForgetStreamed(key string) {
	c.mu.Lock()
	delete(c.streamedSoFar, key)
	c.mu.Unlock()
}

// RecordExprCard records an observed expression cardinality, which overrides
// (and invalidates) the pure estimate.
func (c *Catalog) RecordExprCard(key string, card float64) {
	c.mu.Lock()
	c.exprCard[key] = card
	delete(c.estCache, key)
	c.mu.Unlock()
}

// MaxScoreOf returns the maximum score of the named relation (neutral when
// unknown), used to initialise thresholds (§6.2).
func (c *Catalog) MaxScoreOf(rel string) float64 {
	st, err := c.Relation(rel)
	if err != nil || !st.HasScore {
		return tuple.NeutralScore
	}
	return st.MaxScore
}
