package catalog

import (
	"math"
	"testing"

	"repro/internal/cq"
	"repro/internal/relationdb"
	"repro/internal/scoring"
	"repro/internal/tuple"
)

func buildCatalog(t *testing.T) *Catalog {
	t.Helper()
	c := New()
	a := tuple.NewSchema("A",
		tuple.Column{Name: "id", Type: tuple.KindInt, Key: true},
		tuple.Column{Name: "term", Type: tuple.KindString},
		tuple.Column{Name: "score", Type: tuple.KindFloat, Score: true},
	)
	var rows []*tuple.Tuple
	terms := []string{"x", "y"}
	for i := 0; i < 100; i++ {
		rows = append(rows, tuple.New(a, tuple.Int(int64(i)), tuple.String(terms[i%2]), tuple.Float(1/float64(i+1))))
	}
	c.AddRelation("db", relationdb.NewRelation(a, rows))

	b := tuple.NewSchema("B",
		tuple.Column{Name: "aid", Type: tuple.KindInt},
		tuple.Column{Name: "sim", Type: tuple.KindFloat, Score: true},
	)
	rows = nil
	for i := 0; i < 200; i++ {
		rows = append(rows, tuple.New(b, tuple.Int(int64(i%50)), tuple.Float(1/float64(i+1))))
	}
	c.AddRelation("db", relationdb.NewRelation(b, rows))
	return c
}

func joinAB() *cq.CQ {
	return &cq.CQ{ID: "q", Atoms: []*cq.Atom{
		{Rel: "A", DB: "db", Args: []cq.Term{cq.V(0), cq.V(1), cq.V(2)}},
		{Rel: "B", DB: "db", Args: []cq.Term{cq.V(0), cq.V(3)}},
	}, Model: scoring.Discover(2)}
}

func TestRelationStats(t *testing.T) {
	c := buildCatalog(t)
	st := c.MustRelation("A")
	if st.Card != 100 || !st.HasScore || st.DB != "db" {
		t.Errorf("stats: %+v", st)
	}
	if st.Distinct[1] != 2 {
		t.Errorf("distinct(term) = %v", st.Distinct[1])
	}
	if st.MaxScore != 1 {
		t.Errorf("max score = %v", st.MaxScore)
	}
	if _, err := c.Relation("missing"); err == nil {
		t.Error("missing relation should error")
	}
	if got := c.Relations(); len(got) != 2 || got[0] != "A" {
		t.Errorf("relations = %v", got)
	}
}

func TestEstimateCardJoin(t *testing.T) {
	c := buildCatalog(t)
	q := joinAB()
	e, _ := q.SubExpr([]int{0, 1})
	// card(A)*card(B)/max(distinct) = 100*200/100 = 200.
	if got := c.EstimateCard(e); math.Abs(got-200) > 1e-9 {
		t.Errorf("join estimate = %v, want 200", got)
	}
	// With a selection on term: /2. A fresh query — atoms are immutable once
	// canonicalized (CQ.SubExpr memoizes per index set).
	q2 := joinAB()
	q2.Atoms[0].Args[1] = cq.C(tuple.String("x"))
	e2, _ := q2.SubExpr([]int{0, 1})
	if got := c.EstimateCard(e2); math.Abs(got-100) > 1e-9 {
		t.Errorf("selected estimate = %v, want 100", got)
	}
}

func TestEstimateCardObservationWins(t *testing.T) {
	c := buildCatalog(t)
	e, _ := joinAB().SubExpr([]int{0, 1})
	est := c.EstimateCard(e)
	c.RecordExprCard(e.Key(), 42)
	if got := c.EstimateCard(e); got != 42 {
		t.Errorf("observed card ignored: %v (estimate was %v)", got, est)
	}
}

func TestEstimateCacheConsistent(t *testing.T) {
	c := buildCatalog(t)
	e, _ := joinAB().SubExpr([]int{0, 1})
	a := c.EstimateCard(e)
	b := c.EstimateCard(e) // cached path
	if a != b {
		t.Errorf("cached estimate differs: %v vs %v", a, b)
	}
}

func TestStreamedAccounting(t *testing.T) {
	c := buildCatalog(t)
	c.RecordStreamed("k", 10)
	c.RecordStreamed("k", 5) // lower never shrinks
	if c.StreamedSoFar("k") != 10 {
		t.Errorf("streamed = %d", c.StreamedSoFar("k"))
	}
	c.RecordStreamed("k", 20)
	if c.StreamedSoFar("k") != 20 {
		t.Errorf("streamed = %d", c.StreamedSoFar("k"))
	}
	c.ForgetStreamed("k")
	if c.StreamedSoFar("k") != 0 {
		t.Error("forget failed")
	}
}

func TestForkIsolation(t *testing.T) {
	c := buildCatalog(t)
	f1, f2 := c.Fork(), c.Fork()
	f1.RecordStreamed("x", 9)
	if f2.StreamedSoFar("x") != 0 || c.StreamedSoFar("x") != 0 {
		t.Error("fork leaked reuse accounting")
	}
	// Shared stats still visible.
	if f1.MustRelation("A").Card != 100 || f2.MustRelation("B").Card != 200 {
		t.Error("forks lost relation stats")
	}
}

func TestTopKDepth(t *testing.T) {
	c := buildCatalog(t)
	e, _ := joinAB().SubExpr([]int{1})
	d := c.TopKDepth(e, 50, 2)
	if d < 25-1e-9 || d > 200 {
		t.Errorf("depth = %v", d)
	}
	if got := c.TopKDepth(e, 50, 0); got <= 0 {
		t.Errorf("zero-fanout depth = %v", got)
	}
}

func TestMaxScoreOf(t *testing.T) {
	c := buildCatalog(t)
	if c.MaxScoreOf("A") != 1 {
		t.Error("max score of A")
	}
	if c.MaxScoreOf("missing") != tuple.NeutralScore {
		t.Error("unknown relation should report neutral score")
	}
}

func TestExpensiveJoin(t *testing.T) {
	c := New()
	// Two relations joining on very low-distinct columns.
	s1 := tuple.NewSchema("X", tuple.Column{Name: "g", Type: tuple.KindInt})
	s2 := tuple.NewSchema("Y", tuple.Column{Name: "g", Type: tuple.KindInt})
	var r1, r2 []*tuple.Tuple
	for i := 0; i < 100; i++ {
		r1 = append(r1, tuple.New(s1, tuple.Int(int64(i%3))))
		r2 = append(r2, tuple.New(s2, tuple.Int(int64(i%3))))
	}
	c.AddRelation("db", relationdb.NewRelation(s1, r1))
	c.AddRelation("db", relationdb.NewRelation(s2, r2))
	q := &cq.CQ{ID: "e", Atoms: []*cq.Atom{
		{Rel: "X", DB: "db", Args: []cq.Term{cq.V(0)}},
		{Rel: "Y", DB: "db", Args: []cq.Term{cq.V(0)}},
	}, Model: scoring.Discover(2)}
	e, _ := q.SubExpr([]int{0, 1})
	if !c.ExpensiveJoin(e) {
		t.Error("many-many join should be flagged expensive")
	}
}
