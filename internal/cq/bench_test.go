package cq

import "testing"

func BenchmarkCanonicalize(b *testing.B) {
	q := chainCQ("q", 6)
	idx := allIdx(6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.SubExpr(idx)
	}
}

func BenchmarkConnectedSubsets(b *testing.B) {
	q := chainCQ("q", 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.ConnectedSubsets(4)
	}
}
