package cq

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/scoring"
	"repro/internal/tuple"
)

// chainCQ builds R0(x0,x1), R1(x1,x2), ..., R_{n-1}(x_{n-1},x_n).
func chainCQ(id string, n int) *CQ {
	atoms := make([]*Atom, n)
	for i := 0; i < n; i++ {
		atoms[i] = &Atom{Rel: relName(i), DB: "db", Args: []Term{V(i), V(i + 1)}}
	}
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return &CQ{ID: id, UQID: "U", Atoms: atoms, Model: scoring.QSystem(0, w)}
}

func relName(i int) string { return string(rune('A' + i)) }

func TestValidate(t *testing.T) {
	q := chainCQ("q", 3)
	if err := q.Validate(); err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}
	bad := chainCQ("q2", 2)
	bad.Atoms[1].Args = []Term{V(90), V(91)} // disconnect
	if err := bad.Validate(); err == nil {
		t.Error("disconnected body accepted")
	}
	noModel := chainCQ("q3", 2)
	noModel.Model = nil
	if err := noModel.Validate(); err == nil {
		t.Error("nil model accepted")
	}
	arity := chainCQ("q4", 3)
	arity.Model = scoring.Discover(2)
	if err := arity.Validate(); err == nil {
		t.Error("model arity mismatch accepted")
	}
}

func TestSharesVarAndConnected(t *testing.T) {
	q := chainCQ("q", 4)
	if !q.SharesVar(0, 1) || q.SharesVar(0, 2) {
		t.Error("SharesVar wrong on chain")
	}
	if !q.Connected([]int{0, 1, 2, 3}) {
		t.Error("chain should be connected")
	}
	if q.Connected([]int{0, 2}) {
		t.Error("non-adjacent pair should be disconnected")
	}
	if !q.Connected([]int{1}) {
		t.Error("singleton is connected")
	}
	if q.Connected(nil) {
		t.Error("empty set is not connected")
	}
}

func TestJoinPreds(t *testing.T) {
	q := chainCQ("q", 3)
	preds := q.JoinPreds([]int{0, 1, 2})
	if len(preds) != 2 {
		t.Fatalf("chain of 3 should have 2 preds, got %d: %v", len(preds), preds)
	}
	// A star: R0(x0,x1), R1(x0,x2), R2(x0,x3) — one shared var, chained preds.
	star := &CQ{ID: "s", Atoms: []*Atom{
		{Rel: "A", Args: []Term{V(0), V(1)}},
		{Rel: "B", Args: []Term{V(0), V(2)}},
		{Rel: "C", Args: []Term{V(0), V(3)}},
	}, Model: scoring.Discover(3)}
	preds = star.JoinPreds([]int{0, 1, 2})
	if len(preds) != 2 {
		t.Fatalf("star var with 3 occurrences chains into 2 preds, got %d", len(preds))
	}
	// Selections contribute no preds.
	sel := &CQ{ID: "sel", Atoms: []*Atom{
		{Rel: "A", Args: []Term{V(0), C(tuple.String("x"))}},
		{Rel: "B", Args: []Term{V(0), V(1)}},
	}, Model: scoring.Discover(2)}
	if got := sel.JoinPreds([]int{0, 1}); len(got) != 1 {
		t.Errorf("selection produced pred: %v", got)
	}
}

func TestConnectedSubsetsChain(t *testing.T) {
	q := chainCQ("q", 4)
	subs := q.ConnectedSubsets(4)
	// A path of 4 has n(n+1)/2 = 10 connected subsets.
	if len(subs) != 10 {
		t.Fatalf("chain-4 connected subsets = %d, want 10", len(subs))
	}
	for _, s := range subs {
		if !q.Connected(s) {
			t.Errorf("subset %v not connected", s)
		}
	}
	capped := q.ConnectedSubsets(2)
	for _, s := range capped {
		if len(s) > 2 {
			t.Errorf("size cap violated: %v", s)
		}
	}
}

func TestSubExprCanonicalSharing(t *testing.T) {
	// The same chain with different variable numbering and atom order must
	// canonicalize identically.
	q1 := chainCQ("q1", 3)
	q2 := &CQ{ID: "q2", Atoms: []*Atom{
		{Rel: "C", DB: "db", Args: []Term{V(30), V(40)}},
		{Rel: "B", DB: "db", Args: []Term{V(20), V(30)}},
		{Rel: "A", DB: "db", Args: []Term{V(10), V(20)}},
	}, Model: scoring.Discover(3)}
	e1, m1 := q1.SubExpr([]int{0, 1, 2})
	e2, m2 := q2.SubExpr([]int{0, 1, 2})
	if e1.Key() != e2.Key() {
		t.Fatalf("isomorphic chains differ:\n%s\n%s", e1.Key(), e2.Key())
	}
	// Mappings must point at the same relations.
	for i := range m1 {
		if q1.Atoms[m1[i]].Rel != q2.Atoms[m2[i]].Rel {
			t.Errorf("mapping disagrees at %d", i)
		}
	}
}

func TestSubExprDistinguishesConstants(t *testing.T) {
	a := &CQ{ID: "a", Atoms: []*Atom{
		{Rel: "T", Args: []Term{V(0), C(tuple.String("plasma membrane"))}},
		{Rel: "G", Args: []Term{V(0), V(1)}},
	}, Model: scoring.Discover(2)}
	b := &CQ{ID: "b", Atoms: []*Atom{
		{Rel: "T", Args: []Term{V(0), C(tuple.String("metabolism"))}},
		{Rel: "G", Args: []Term{V(0), V(1)}},
	}, Model: scoring.Discover(2)}
	ea, _ := a.SubExpr([]int{0, 1})
	eb, _ := b.SubExpr([]int{0, 1})
	if ea.Key() == eb.Key() {
		t.Error("different selection constants must not share a key")
	}
}

func TestSubExprDistinguishesJoinShape(t *testing.T) {
	// A(x,y),B(y,z) vs A(x,y),B(z,y): different join columns.
	q1 := &CQ{ID: "1", Atoms: []*Atom{
		{Rel: "A", Args: []Term{V(0), V(1)}},
		{Rel: "B", Args: []Term{V(1), V(2)}},
	}, Model: scoring.Discover(2)}
	q2 := &CQ{ID: "2", Atoms: []*Atom{
		{Rel: "A", Args: []Term{V(0), V(1)}},
		{Rel: "B", Args: []Term{V(2), V(1)}},
	}, Model: scoring.Discover(2)}
	e1, _ := q1.SubExpr([]int{0, 1})
	e2, _ := q2.SubExpr([]int{0, 1})
	if e1.Key() == e2.Key() {
		t.Error("different join shapes must not share a key")
	}
}

// Property: canonicalization is invariant under random variable renaming and
// atom permutation of random connected queries.
func TestCanonicalizeInvariance(t *testing.T) {
	rng := dist.New(123)
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(5)
		q := randomConnectedCQ(rng, n)
		e1, _ := q.SubExpr(allIdx(n))

		// Rename variables with a random injective map and permute atoms.
		varMap := map[int]int{}
		perm := rng.Intn(1 << 30)
		atoms := make([]*Atom, n)
		order := randPerm(rng, n)
		for i, p := range order {
			src := q.Atoms[p]
			args := make([]Term, len(src.Args))
			for j, tm := range src.Args {
				if tm.IsConst() {
					args[j] = tm
					continue
				}
				nv, ok := varMap[tm.Var]
				if !ok {
					nv = 1000 + len(varMap)*7 + perm%3
					varMap[tm.Var] = nv
				}
				args[j] = V(nv)
			}
			atoms[i] = &Atom{Rel: src.Rel, DB: src.DB, Args: args}
		}
		q2 := &CQ{ID: "renamed", Atoms: atoms, Model: q.Model}
		e2, _ := q2.SubExpr(allIdx(n))
		if e1.Key() != e2.Key() {
			t.Fatalf("trial %d: canonical keys differ under renaming\n%s\n%s\n%s\n%s",
				trial, q, q2, e1.Key(), e2.Key())
		}
	}
}

// randomConnectedCQ builds a random connected query over distinct relations
// (tree-shaped joins with occasional selection constants).
func randomConnectedCQ(rng *dist.RNG, n int) *CQ {
	atoms := make([]*Atom, n)
	nextVar := 0
	newVar := func() int { nextVar++; return nextVar - 1 }
	for i := 0; i < n; i++ {
		arity := 2 + rng.Intn(2)
		args := make([]Term, arity)
		for j := range args {
			args[j] = V(newVar())
		}
		if i > 0 {
			// Connect to a random earlier atom via a shared variable.
			prev := atoms[rng.Intn(i)]
			pv := prev.Args[rng.Intn(len(prev.Args))]
			for pv.IsConst() {
				pv = prev.Args[rng.Intn(len(prev.Args))]
			}
			args[rng.Intn(arity)] = pv
		}
		if rng.Intn(4) == 0 {
			// Sprinkle a selection constant on a non-joining position.
			pos := rng.Intn(arity)
			if !usedElsewhere(atoms[:i], args, pos) {
				args[pos] = C(tuple.String("c" + string(rune('a'+rng.Intn(3)))))
			}
		}
		atoms[i] = &Atom{Rel: "Rel" + string(rune('A'+i)), DB: "db", Args: args}
	}
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	q := &CQ{ID: "rand", Atoms: atoms, Model: scoring.QSystem(0, w)}
	if q.Validate() != nil {
		// Constant overwrote the connecting variable; retry without consts.
		for _, a := range atoms {
			for j, tm := range a.Args {
				if tm.IsConst() {
					a.Args[j] = V(newVar())
				}
			}
		}
		// Reconnect linearly for safety.
		for i := 1; i < n; i++ {
			atoms[i].Args[0] = atoms[i-1].Args[len(atoms[i-1].Args)-1]
		}
	}
	return q
}

func usedElsewhere(prev []*Atom, args []Term, pos int) bool {
	v := args[pos]
	if v.IsConst() {
		return true
	}
	for _, a := range prev {
		for _, tm := range a.Args {
			if !tm.IsConst() && tm.Var == v.Var {
				return true
			}
		}
	}
	for j, tm := range args {
		if j != pos && !tm.IsConst() && tm.Var == v.Var {
			return true
		}
	}
	return false
}

func randPerm(rng *dist.RNG, n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

func TestExprProperties(t *testing.T) {
	q := chainCQ("q", 3)
	e, _ := q.SubExpr([]int{0, 1, 2})
	if e.Arity() != 3 || e.SingleAtom() || e.IsBase() {
		t.Error("multi-atom expr misclassified")
	}
	if e.SingleDB() != "db" {
		t.Errorf("single db = %q", e.SingleDB())
	}
	single, _ := q.SubExpr([]int{1})
	if !single.SingleAtom() || !single.IsBase() {
		t.Error("base atom misclassified")
	}
	withConst := &CQ{ID: "c", Atoms: []*Atom{
		{Rel: "T", Args: []Term{V(0), C(tuple.String("x"))}},
	}, Model: scoring.Discover(1)}
	ec, _ := withConst.SubExpr([]int{0})
	if !ec.SingleAtom() || ec.IsBase() {
		t.Error("selection atom should not be IsBase")
	}
	// Cross-DB expression.
	q2 := chainCQ("q2", 2)
	q2.Atoms[1].DB = "other"
	e2, _ := q2.SubExpr([]int{0, 1})
	if e2.SingleDB() != "" {
		t.Error("cross-db expr should report no single DB")
	}
	if !e.SharesRelation(e2) {
		t.Error("exprs sharing relation A should report overlap")
	}
}

func TestUQFields(t *testing.T) {
	uq := &UQ{ID: "UQ1", Keywords: []string{"a", "b"}, K: 10, CQs: []*CQ{chainCQ("c1", 2)}}
	if uq.K != 10 || len(uq.CQs) != 1 {
		t.Error("UQ fields")
	}
}
