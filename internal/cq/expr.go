package cq

import (
	"fmt"
	"sort"
	"strings"
)

// Expr is a canonicalized select-project-join expression: a connected set of
// atoms with variables renamed into canonical form. Expressions with equal
// Key() denote the same computation regardless of which conjunctive query —
// or which user's session — they were extracted from. Every plan-graph node
// computes exactly one Expr.
type Expr struct {
	// Atoms is the body in canonical order with canonical variable ids
	// (0, 1, 2, … in order of first occurrence).
	Atoms []*Atom
	key   string
}

// Key returns the canonical identity string.
func (e *Expr) Key() string { return e.key }

// Arity returns the number of atoms.
func (e *Expr) Arity() int { return len(e.Atoms) }

// IsBase reports whether the expression is a single atom with no selection
// constants (a bare base relation).
func (e *Expr) IsBase() bool {
	if len(e.Atoms) != 1 {
		return false
	}
	for _, t := range e.Atoms[0].Args {
		if t.IsConst() {
			return false
		}
	}
	return true
}

// SingleAtom reports whether the expression has exactly one atom (a base
// relation, possibly under selection).
func (e *Expr) SingleAtom() bool { return len(e.Atoms) == 1 }

// SingleDB returns the owning database if every atom lives in one database
// instance (the pushdown requirement, §5.1), or "" otherwise.
func (e *Expr) SingleDB() string {
	db := e.Atoms[0].DB
	for _, a := range e.Atoms[1:] {
		if a.DB != db {
			return ""
		}
	}
	return db
}

// Relations returns the relation names in atom order.
func (e *Expr) Relations() []string {
	rels := make([]string, len(e.Atoms))
	for i, a := range e.Atoms {
		rels[i] = a.Rel
	}
	return rels
}

// RelationSet returns the set of relation names in the expression.
func (e *Expr) RelationSet() map[string]bool {
	s := make(map[string]bool, len(e.Atoms))
	for _, a := range e.Atoms {
		s[a.Rel] = true
	}
	return s
}

// SharesRelation reports whether two expressions reference a common relation
// (the overlap test of Algorithm 1, line 14).
func (e *Expr) SharesRelation(o *Expr) bool {
	set := e.RelationSet()
	for _, a := range o.Atoms {
		if set[a.Rel] {
			return true
		}
	}
	return false
}

// JoinPreds returns the equi-join predicates induced by shared canonical
// variables among the expression's atoms.
func (e *Expr) JoinPreds() []JoinPred {
	q := CQ{Atoms: e.Atoms}
	idxs := make([]int, len(e.Atoms))
	for i := range idxs {
		idxs[i] = i
	}
	return q.JoinPreds(idxs)
}

// String renders the canonical form.
func (e *Expr) String() string { return e.key }

// SubExpr extracts the canonical expression induced by the given atom indexes
// of q (which must be connected). The second result maps each canonical atom
// position back to its index in q.Atoms, so consumers can translate rows and
// scores between the shared expression's order and the query's order.
//
// Results are memoized per query: canonicalization is the optimizer's hottest
// call (AND-OR enumeration, plan completion, factorization and the cost model
// all extract the same subexpressions of the same queries), and the canonical
// form of a fixed index sequence never changes. The returned mapping is a
// fresh copy on every call; the Expr is shared and immutable.
func (q *CQ) SubExpr(idxs []int) (*Expr, []int) {
	if len(q.Atoms) > 255 {
		atoms := make([]*Atom, len(idxs))
		for i, ai := range idxs {
			atoms[i] = q.Atoms[ai]
		}
		return canonSub(q, atoms, idxs)
	}
	q.subMu.Lock()
	defer q.subMu.Unlock()
	key := q.subKey[:0]
	for _, ai := range idxs {
		key = append(key, byte(ai))
	}
	q.subKey = key
	if ent, ok := q.subMemo[string(key)]; ok {
		return ent.expr, append([]int(nil), ent.mapping...)
	}
	atoms := make([]*Atom, len(idxs))
	for i, ai := range idxs {
		atoms[i] = q.Atoms[ai]
	}
	expr, mapping := canonSub(q, atoms, idxs)
	if q.subMemo == nil {
		q.subMemo = make(map[string]subEntry)
	}
	q.subMemo[string(key)] = subEntry{expr: expr, mapping: mapping}
	return expr, append([]int(nil), mapping...)
}

// subEntry is one memoized SubExpr result.
type subEntry struct {
	expr    *Expr
	mapping []int
}

// canonSub is the uncached SubExpr body.
func canonSub(q *CQ, atoms []*Atom, idxs []int) (*Expr, []int) {
	expr, perm := Canonicalize(atoms)
	mapping := make([]int, len(perm))
	for i, p := range perm {
		mapping[i] = idxs[p]
	}
	return expr, mapping
}

// Canonicalize produces the canonical Expr for the given atoms, plus the
// permutation perm with expr.Atoms[i] derived from atoms[perm[i]].
//
// The canonical form is the lexicographically least rendering over all
// breadth-first atom orderings seeded at each atom, with variables renamed in
// first-occurrence order. For the join shapes produced by candidate-network
// generation (trees and near-trees of ≤ 8 atoms) this is isomorphism-
// invariant; in adversarial symmetric cases two isomorphic expressions may
// render differently, which can only cause a *missed* sharing opportunity,
// never incorrect sharing (equal renderings are definitionally equal
// expressions).
func Canonicalize(atoms []*Atom) (*Expr, []int) {
	n := len(atoms)
	if n == 0 {
		panic("cq: Canonicalize with no atoms")
	}
	bestRender := ""
	var bestPerm []int
	for seed := 0; seed < n; seed++ {
		perm := bfsOrder(atoms, seed)
		render := renderOrdered(atoms, perm)
		if bestPerm == nil || render < bestRender {
			bestRender, bestPerm = render, perm
		}
	}
	// Build canonical atoms with renamed variables following bestPerm.
	varMap := map[int]int{}
	next := 0
	canon := make([]*Atom, n)
	for i, p := range bestPerm {
		src := atoms[p]
		args := make([]Term, len(src.Args))
		for j, t := range src.Args {
			if t.IsConst() {
				args[j] = t
				continue
			}
			id, ok := varMap[t.Var]
			if !ok {
				id = next
				next++
				varMap[t.Var] = id
			}
			args[j] = V(id)
		}
		canon[i] = &Atom{Rel: src.Rel, DB: src.DB, Args: args}
	}
	return &Expr{Atoms: canon, key: bestRender}, bestPerm
}

// bfsOrder returns a breadth-first ordering of atoms starting at seed with
// deterministic, isomorphism-invariant tie-breaking.
func bfsOrder(atoms []*Atom, seed int) []int {
	n := len(atoms)
	order := make([]int, 0, n)
	inOrder := make([]bool, n)
	varMap := map[int]int{}
	next := 0
	bind := func(a *Atom) {
		for _, t := range a.Args {
			if !t.IsConst() {
				if _, ok := varMap[t.Var]; !ok {
					varMap[t.Var] = next
					next++
				}
			}
		}
	}
	take := func(i int) {
		order = append(order, i)
		inOrder[i] = true
		bind(atoms[i])
	}
	take(seed)
	for len(order) < n {
		bestIdx := -1
		bestKey := ""
		for i := 0; i < n; i++ {
			if inOrder[i] {
				continue
			}
			connected := false
			for _, o := range order {
				if atomsShareVar(atoms[i], atoms[o]) {
					connected = true
					break
				}
			}
			key := renderAtomPartial(atoms[i], varMap)
			if !connected {
				key = "~" + key // disconnected atoms sort after connected ones
			}
			if bestIdx < 0 || key < bestKey {
				bestIdx, bestKey = i, key
			}
		}
		take(bestIdx)
	}
	return order
}

func atomsShareVar(a, b *Atom) bool {
	for _, ta := range a.Args {
		if ta.IsConst() {
			continue
		}
		for _, tb := range b.Args {
			if !tb.IsConst() && ta.Var == tb.Var {
				return true
			}
		}
	}
	return false
}

// renderAtomPartial renders an atom given the variable ids assigned so far;
// unassigned variables render as "?" so ties depend only on structure.
func renderAtomPartial(a *Atom, varMap map[int]int) string {
	var b strings.Builder
	b.WriteString(a.sig())
	b.WriteByte('[')
	for j, t := range a.Args {
		if j > 0 {
			b.WriteByte(',')
		}
		if t.IsConst() {
			b.WriteByte('=')
			continue
		}
		if id, ok := varMap[t.Var]; ok {
			fmt.Fprintf(&b, "$%d", id)
		} else {
			b.WriteByte('?')
		}
	}
	b.WriteByte(']')
	return b.String()
}

// renderOrdered renders atoms in the given order with canonical var ids.
func renderOrdered(atoms []*Atom, perm []int) string {
	varMap := map[int]int{}
	next := 0
	parts := make([]string, len(perm))
	for i, p := range perm {
		a := atoms[p]
		var b strings.Builder
		b.WriteString(a.Rel)
		b.WriteByte('@')
		b.WriteString(a.DB)
		b.WriteByte('(')
		for j, t := range a.Args {
			if j > 0 {
				b.WriteByte(',')
			}
			if t.IsConst() {
				b.WriteByte('=')
				b.WriteString(t.Const.Key())
				continue
			}
			id, ok := varMap[t.Var]
			if !ok {
				id = next
				next++
				varMap[t.Var] = id
			}
			fmt.Fprintf(&b, "$%d", id)
		}
		b.WriteByte(')')
		parts[i] = b.String()
	}
	return strings.Join(parts, ";")
}

// ExprOccurrence records where a shared expression occurs inside a specific
// conjunctive query: AtomOf[i] is the index in CQ.Atoms corresponding to the
// expression's canonical atom i.
type ExprOccurrence struct {
	CQ     *CQ
	AtomOf []int
}

// CoveredAtoms returns the sorted CQ atom indexes covered by the occurrence.
func (o *ExprOccurrence) CoveredAtoms() []int {
	idx := append([]int(nil), o.AtomOf...)
	sort.Ints(idx)
	return idx
}
