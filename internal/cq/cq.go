// Package cq represents conjunctive queries (the paper's candidate networks,
// §2.1) and their subexpressions. Its central facility is *canonical
// subexpression identity*: two subexpressions drawn from different
// conjunctive queries — possibly posed by different users at different times —
// compare equal exactly when they denote the same select-project-join
// expression up to variable renaming. Canonical keys drive common-
// subexpression detection in the optimizer (§5.1), node matching during
// grafting (§6.2), and cache lookup in the query state manager.
package cq

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/scoring"
	"repro/internal/tuple"
)

// Term is one argument position of an atom: either a variable (join/projection
// position) or a constant (a selection, e.g. T(gid, 'plasma membrane', score)).
type Term struct {
	// Var is the variable id (scoped to the enclosing query/expression), or
	// -1 when the term is the constant Const.
	Var int
	// Const is the selection constant; meaningful only when Var == -1.
	Const tuple.Value
}

// V returns a variable term.
func V(id int) Term { return Term{Var: id} }

// C returns a constant term.
func C(v tuple.Value) Term { return Term{Var: -1, Const: v} }

// IsConst reports whether the term is a selection constant.
func (t Term) IsConst() bool { return t.Var < 0 }

// Atom is one relational atom R(t₁, …, tₙ) of a conjunctive query. Args
// align positionally with the relation's schema columns.
type Atom struct {
	// Rel is the relation name.
	Rel string
	// DB names the database instance that owns the relation; pushdown
	// candidates must keep all their atoms within one DB (§5.1).
	DB string
	// Args has one term per relation column.
	Args []Term
}

// sig returns the atom's isomorphism-invariant signature: relation, database
// and the pattern of constants. Variable identities are deliberately absent.
func (a *Atom) sig() string {
	var b strings.Builder
	b.WriteString(a.Rel)
	b.WriteByte('@')
	b.WriteString(a.DB)
	b.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			b.WriteByte(',')
		}
		if t.IsConst() {
			b.WriteByte('=')
			b.WriteString(t.Const.Key())
		} else {
			b.WriteByte('_')
		}
	}
	b.WriteByte(')')
	return b.String()
}

// CQ is a conjunctive query: the relational form of one candidate network,
// paired with its monotone scoring model (§2.1). Atom order is significant —
// the scoring model's weights align with it.
type CQ struct {
	// ID identifies the query, e.g. "UQ1.CQ2".
	ID string
	// UQID names the user query this CQ helps answer.
	UQID string
	// Atoms is the query body. Treat it as immutable once any subexpression
	// has been extracted: SubExpr memoizes canonical forms per index set.
	Atoms []*Atom
	// Model scores result rows; Model.Arity() == len(Atoms).
	Model *scoring.Model
	// HeadVars lists the projected variables (display only; the engine
	// returns whole rows so any head can be projected afterwards).
	HeadVars []int

	// SubExpr memo (see expr.go). subMu guards it: admission-side group
	// optimization may canonicalize one query's subexpressions from several
	// goroutines.
	subMu   sync.Mutex
	subMemo map[string]subEntry
	subKey  []byte
}

// Clone returns a copy sharing the atoms, model and head vars but none of
// the memo state — the way to duplicate a query (a value copy would copy the
// memo's mutex).
func (q *CQ) Clone() *CQ {
	return &CQ{ID: q.ID, UQID: q.UQID, Atoms: q.Atoms, Model: q.Model, HeadVars: q.HeadVars}
}

// Validate checks internal consistency (arity of model, var usage).
func (q *CQ) Validate() error {
	if q.Model == nil {
		return fmt.Errorf("cq %s: nil scoring model", q.ID)
	}
	if q.Model.Arity() != len(q.Atoms) {
		return fmt.Errorf("cq %s: model arity %d != %d atoms", q.ID, q.Model.Arity(), len(q.Atoms))
	}
	if len(q.Atoms) == 0 {
		return fmt.Errorf("cq %s: empty body", q.ID)
	}
	if !q.Connected(allIdx(len(q.Atoms))) {
		return fmt.Errorf("cq %s: body is not connected", q.ID)
	}
	return nil
}

func allIdx(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// SharesVar reports whether atoms i and j of the query share a variable.
func (q *CQ) SharesVar(i, j int) bool {
	for _, ti := range q.Atoms[i].Args {
		if ti.IsConst() {
			continue
		}
		for _, tj := range q.Atoms[j].Args {
			if !tj.IsConst() && ti.Var == tj.Var {
				return true
			}
		}
	}
	return false
}

// Connected reports whether the given atom indexes induce a connected join
// graph (atoms adjacent when they share a variable).
func (q *CQ) Connected(idxs []int) bool {
	if len(idxs) == 0 {
		return false
	}
	seen := map[int]bool{idxs[0]: true}
	frontier := []int{idxs[0]}
	for len(frontier) > 0 {
		cur := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, j := range idxs {
			if !seen[j] && q.SharesVar(cur, j) {
				seen[j] = true
				frontier = append(frontier, j)
			}
		}
	}
	return len(seen) == len(idxs)
}

// JoinPred is one equi-join predicate between two atom argument positions.
type JoinPred struct {
	AtomA, ColA int
	AtomB, ColB int
}

// JoinPreds returns every equi-join predicate induced by shared variables
// among the given atom indexes (indices are positions in q.Atoms). Each
// unordered pair of argument positions appears once.
func (q *CQ) JoinPreds(idxs []int) []JoinPred {
	type pos struct{ atom, col int }
	byVar := map[int][]pos{}
	for _, ai := range idxs {
		for ci, t := range q.Atoms[ai].Args {
			if !t.IsConst() {
				byVar[t.Var] = append(byVar[t.Var], pos{ai, ci})
			}
		}
	}
	vars := make([]int, 0, len(byVar))
	for v := range byVar {
		vars = append(vars, v)
	}
	sort.Ints(vars)
	var preds []JoinPred
	for _, v := range vars {
		ps := byVar[v]
		// Chain the occurrences: p0=p1, p1=p2, ... (transitively complete).
		for i := 1; i < len(ps); i++ {
			preds = append(preds, JoinPred{
				AtomA: ps[i-1].atom, ColA: ps[i-1].col,
				AtomB: ps[i].atom, ColB: ps[i].col,
			})
		}
	}
	return preds
}

// ConnectedSubsets enumerates every connected subset of the query's atoms
// with size in [1, maxSize], as sorted index slices. The enumeration is
// exponential in principle but the paper's candidate networks have ≤ 8 atoms.
func (q *CQ) ConnectedSubsets(maxSize int) [][]int {
	n := len(q.Atoms)
	if n > 63 {
		panic("cq: ConnectedSubsets limited to 63 atoms")
	}
	adj := make([]uint64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && q.SharesVar(i, j) {
				adj[i] |= 1 << uint(j)
			}
		}
	}
	seen := map[uint64]bool{}
	var out [][]int
	var grow func(mask, frontier uint64)
	grow = func(mask, frontier uint64) {
		if seen[mask] {
			return
		}
		seen[mask] = true
		out = append(out, maskToIdx(mask))
		if popcount(mask) >= maxSize {
			return
		}
		// Expand by any neighbour of the current mask.
		var nb uint64
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				nb |= adj[i]
			}
		}
		nb &^= mask
		for i := 0; i < n; i++ {
			if nb&(1<<uint(i)) != 0 {
				grow(mask|1<<uint(i), 0)
			}
		}
	}
	for i := 0; i < n; i++ {
		grow(1<<uint(i), 0)
	}
	sort.Slice(out, func(a, b int) bool {
		if len(out[a]) != len(out[b]) {
			return len(out[a]) < len(out[b])
		}
		for k := range out[a] {
			if out[a][k] != out[b][k] {
				return out[a][k] < out[b][k]
			}
		}
		return false
	})
	return out
}

func maskToIdx(mask uint64) []int {
	var idx []int
	for i := 0; mask != 0; i++ {
		if mask&1 != 0 {
			idx = append(idx, i)
		}
		mask >>= 1
	}
	return idx
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// String renders the query in datalog style.
func (q *CQ) String() string {
	var b strings.Builder
	b.WriteString(q.ID)
	b.WriteString(": q(...) :- ")
	for i, a := range q.Atoms {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.Rel)
		b.WriteByte('(')
		for j, t := range a.Args {
			if j > 0 {
				b.WriteByte(',')
			}
			if t.IsConst() {
				b.WriteByte('\'')
				b.WriteString(t.Const.Text())
				b.WriteByte('\'')
			} else {
				fmt.Fprintf(&b, "x%d", t.Var)
			}
		}
		b.WriteByte(')')
	}
	return b.String()
}

// UQ is a user query: the union of conjunctive queries answering one keyword
// query (§2), ordered by nonincreasing score upper bound.
type UQ struct {
	// ID identifies the user query, e.g. "UQ1".
	ID string
	// Keywords is the original keyword query (display/diagnostics).
	Keywords []string
	// K is the number of answers requested.
	K int
	// CQs holds the member conjunctive queries in nonincreasing U(C) order.
	CQs []*CQ
}
