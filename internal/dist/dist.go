// Package dist provides the deterministic random sources the reproduction
// relies on: a seedable PRNG, Zipfian rank samplers (§7: keyword popularity,
// per-user scoring coefficients and tuple scores are Zipfian), and Poisson
// draws (§7: injected network delays are Poisson with a 2 ms mean). Everything
// here is purely seed-driven — the same seed always yields the same sequence —
// which is what makes the experiment drivers bit-reproducible.
package dist

import "math"

// RNG is a small, fast, seedable generator (splitmix64). It is not safe for
// concurrent use; give each logical actor (user, workload, delay model) its
// own instance.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG { return &RNG{state: seed + 0x9e3779b97f4a7c15} }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform draw in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform draw in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("dist: Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Zipf samples ranks in [0, n) with probability proportional to
// 1/(rank+1)^s — rank 0 is the most popular.
type Zipf struct {
	rng *RNG
	cdf []float64
}

// NewZipf builds a sampler over n ranks with exponent s, drawing from rng.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("dist: NewZipf with n <= 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1.0 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{rng: rng, cdf: cdf}
}

// Next draws the next rank.
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// ZipfScore maps rank i of n items to a Zipfian-decaying score in (0, 1]:
// the most popular item scores 1, the tail decays as 1/sqrt(rank+1). Used to
// give generated base tuples the skewed score distributions of §7.
func ZipfScore(i, n int) float64 {
	_ = n
	return 1.0 / math.Sqrt(float64(i+1))
}

// Poisson draws a Poisson-distributed count with the given mean (Knuth's
// method, split into chunks so large means stay numerically stable).
func Poisson(rng *RNG, mean float64) int {
	if mean <= 0 {
		return 0
	}
	total := 0
	for mean > 30 {
		total += poissonKnuth(rng, 30)
		mean -= 30
	}
	return total + poissonKnuth(rng, mean)
}

func poissonKnuth(rng *RNG, mean float64) int {
	limit := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= limit {
			return k
		}
		k++
	}
}
