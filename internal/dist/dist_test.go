package dist

import (
	"math"
	"testing"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	if New(1).Uint64() == New(2).Uint64() {
		t.Error("different seeds produced the same first draw")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	sum := 0.0
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	if mean := sum / 10000; mean < 0.48 || mean > 0.52 {
		t.Errorf("uniform mean = %v", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("only %d of 10 values seen", len(seen))
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(11)
	z := NewZipf(r, 100, 1.0)
	counts := make([]int, 100)
	for i := 0; i < 20000; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[10] || counts[10] <= counts[99] {
		t.Errorf("not Zipf-skewed: c0=%d c10=%d c99=%d", counts[0], counts[10], counts[99])
	}
}

func TestZipfScoreMonotone(t *testing.T) {
	if ZipfScore(0, 100) != 1.0 {
		t.Errorf("top rank score = %v, want 1", ZipfScore(0, 100))
	}
	prev := math.Inf(1)
	for i := 0; i < 100; i++ {
		s := ZipfScore(i, 100)
		if s <= 0 || s > 1 || s > prev {
			t.Fatalf("rank %d score %v not in (0,1] nonincreasing", i, s)
		}
		prev = s
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(5)
	for _, mean := range []float64{0.5, 5, 20, 100} {
		sum := 0
		const n = 20000
		for i := 0; i < n; i++ {
			sum += Poisson(r, mean)
		}
		got := float64(sum) / n
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Errorf("Poisson(%v) sample mean = %v", mean, got)
		}
	}
	if Poisson(r, 0) != 0 || Poisson(r, -1) != 0 {
		t.Error("nonpositive mean should draw 0")
	}
}
