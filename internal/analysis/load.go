package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	Path  string
	Name  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listEntry is the subset of `go list -json` output the loader consumes.
type listEntry struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
}

// goList runs `go list` in dir with the given arguments and decodes the JSON
// stream.
func goList(dir string, args ...string) ([]listEntry, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %w\n%s", args, err, stderr.String())
	}
	var entries []listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decode: %w", args, err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// Load parses and type-checks the packages matching the patterns, rooted at
// dir (the module root or anywhere inside it). Dependencies — including the
// standard library — are resolved from compiled export data via `go list
// -export`, so loading needs the go toolchain but no network and no
// third-party loader.
//
// Test files are excluded on purpose: the invariants guard engine code;
// tests measure wall time and seed ad hoc RNGs legitimately.
func Load(dir string, patterns ...string) ([]*Package, error) {
	targets, err := goList(dir, append([]string{"-json=ImportPath,Name,Dir,GoFiles"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	deps, err := goList(dir, append([]string{"-deps", "-export", "-json=ImportPath,Export"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(deps))
	for _, d := range deps {
		if d.Export != "" {
			exports[d.ImportPath] = d.Export
		}
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	})

	var out []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		pkg, err := typecheck(fset, imp, t)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// typecheck parses one target's files and type-checks them against the
// export-data importer.
func typecheck(fset *token.FileSet, imp types.Importer, t listEntry) (*Package, error) {
	files := make([]*ast.File, 0, len(t.GoFiles))
	for _, name := range t.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(t.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", t.ImportPath, err)
	}
	return &Package{
		Path:  t.ImportPath,
		Name:  tpkg.Name(),
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}
