package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestWallclock(t *testing.T) {
	analysistest.Run(t, analysis.Wallclock, "testdata/src/wallclock")
}

// Outside the determinism domain the same calls are legal: the analyzer must
// stay silent on serving-tier packages.
func TestWallclockOutsideDomain(t *testing.T) {
	analysistest.Run(t, analysis.Wallclock, "testdata/src/wallclock_outside")
}
