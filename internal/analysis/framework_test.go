package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// Strict mode (what qsys-lint runs) turns a qsys:allow naming an unknown
// analyzer into a finding, so suppressions can't rot silently.
func TestStrictUnknownAllow(t *testing.T) {
	analysistest.RunStrict(t, analysis.Wallclock, "testdata/src/allowstrict")
}

// The go list + export-data loader must type-check a real module package —
// this is the path qsys-lint takes over the whole tree.
func TestLoadModulePackage(t *testing.T) {
	pkgs, err := analysis.Load(".", "repro/internal/simclock")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("Load returned %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.Name != "simclock" || p.Types == nil || len(p.Files) == 0 {
		t.Fatalf("bad package: name=%q types=%v files=%d", p.Name, p.Types, len(p.Files))
	}
	diags, err := analysis.Run(p, analysis.All(), analysis.RunConfig{Strict: true})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("simclock should be clean, got %d findings: %+v", len(diags), diags)
	}
}
