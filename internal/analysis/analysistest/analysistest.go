// Package analysistest runs one analyzer over a fixture package and checks
// its findings against `// want "regexp"` expectations embedded in the
// fixture source — the same contract as golang.org/x/tools'
// go/analysis/analysistest, rebuilt on the standard library so fixtures stay
// runnable offline.
//
// A fixture directory holds one package. Every diagnostic the analyzer
// reports must be matched by a want expectation on its line, and every want
// expectation must be hit. Fixtures may import standard-library and module
// packages; types resolve through export data from `go list -export`, so the
// fixture exercises the analyzer exactly as qsys-lint does — including
// //qsys:allow filtering and the empty-reason finding.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// want is one expectation: a diagnostic whose message matches rx on line.
type want struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

// Run loads the fixture package in dir, runs the analyzer through the same
// allow-filtering driver qsys-lint uses, and reports any mismatch between
// findings and `// want` expectations on t.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	run(t, a, dir, analysis.RunConfig{})
}

// RunStrict is Run under the multichecker's strict mode, where a qsys:allow
// naming an unknown analyzer is itself a finding.
func RunStrict(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	run(t, a, dir, analysis.RunConfig{Strict: true})
}

func run(t *testing.T, a *analysis.Analyzer, dir string, cfg analysis.RunConfig) {
	t.Helper()
	pkg, err := loadFixture(dir)
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}
	diags, err := analysis.Run(pkg, []*analysis.Analyzer{a}, cfg)
	if err != nil {
		t.Fatalf("run %s on %s: %v", a.Name, dir, err)
	}
	wants := collectWants(t, pkg.Fset, pkg.Files)

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		hit := false
		for _, w := range wants {
			if w.matched || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.rx.MatchString(d.Message) {
				w.matched = true
				hit = true
				break
			}
		}
		if !hit {
			t.Errorf("%s: unexpected finding: %s: %s", pos, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no finding matched %q", w.file, w.line, w.rx)
		}
	}
}

// collectWants parses `// want "rx"` (one or more quoted or backquoted
// regexps) out of every comment.
var wantRE = regexp.MustCompile("// want ((?:(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)\\s*)+)")
var wantArgRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range wantArgRE.FindAllString(m[1], -1) {
					var body string
					if q[0] == '`' {
						body = q[1 : len(q)-1]
					} else {
						body = strings.ReplaceAll(q[1:len(q)-1], `\"`, `"`)
					}
					rx, err := regexp.Compile(body)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, body, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, rx: rx})
				}
			}
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	return wants
}

// loadFixture parses and type-checks the single package in dir, resolving
// its imports (stdlib and module packages alike) from `go list -export`
// compile artifacts.
func loadFixture(dir string) (*analysis.Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	imports := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			imports[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}

	exports, err := exportData(imports)
	if err != nil {
		return nil, err
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	path := "fixture/" + filepath.Base(dir)
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck fixture: %w", err)
	}
	return &analysis.Package{
		Path:  path,
		Name:  tpkg.Name(),
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// exportData maps every (transitive) dependency of the fixture imports to
// its compiled export file, building them if needed.
func exportData(imports map[string]bool) (map[string]string, error) {
	if len(imports) == 0 {
		return nil, nil
	}
	paths := make([]string, 0, len(imports))
	for imp := range imports {
		paths = append(paths, imp)
	}
	sort.Strings(paths)
	args := append([]string{"list", "-deps", "-export", "-f", "{{.ImportPath}}\t{{.Export}}"}, paths...)
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleRoot()
	out, err := cmd.Output()
	if err != nil {
		msg := ""
		if ee, ok := err.(*exec.ExitError); ok {
			msg = string(ee.Stderr)
		}
		return nil, fmt.Errorf("go list -export: %w\n%s", err, msg)
	}
	exports := map[string]string{}
	for _, line := range strings.Split(string(out), "\n") {
		path, exp, ok := strings.Cut(line, "\t")
		if ok && exp != "" {
			exports[path] = exp
		}
	}
	return exports, nil
}

// moduleRoot locates the enclosing module so fixture imports of module
// packages resolve regardless of the test's working directory.
func moduleRoot() string {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "."
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "."
	}
	return filepath.Dir(gomod)
}
