package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestRetryClass(t *testing.T) {
	analysistest.Run(t, analysis.RetryClass, "testdata/src/retryclass")
}
