// Package analysis is the invariant-lint suite: a set of custom static
// analyzers that mechanically enforce the contracts every digest gate in this
// repo rests on, plus the small driver framework they run in.
//
// The contracts (see DESIGN.md "Mechanically enforced invariants"):
//
//   - determinism-domain packages draw time and randomness only from seeded
//     simclock models and node-key-seeded RNGs, never the wall clock or the
//     global math/rand state (analyzer "wallclock");
//   - map iteration never feeds digest-affecting output — appended slices,
//     hashers, encoders, channels — without a dominating deterministic sort
//     (analyzer "maporder");
//   - every structure that grows a state.Account has a reachable release
//     path, so the accounting ledger cannot leak (analyzer "ledgerpair");
//   - fleet code surfaces errors to the client retry loop only with an
//     explicit retryable/shed classification, because retrying a request
//     that may have been admitted double-executes it (analyzer "retryclass").
//
// The framework deliberately mirrors the golang.org/x/tools go/analysis API
// (Analyzer, Pass, Diagnostic) so the analyzers port to the real multichecker
// verbatim if that dependency ever lands; it is rebuilt here on the standard
// library alone — go/parser + go/types over export data from `go list
// -export` — because the build must work hermetically offline.
//
// Intentional exceptions carry a
//
//	//qsys:allow <analyzer>: <reason>
//
// annotation on the offending line or the line above. The driver verifies
// the reason is non-empty: a silent exception is itself a finding.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in findings and in //qsys:allow
	// annotations. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph contract statement printed by qsys-lint.
	Doc string
	// Run inspects one type-checked package and reports findings on the
	// pass.
	Run func(*Pass) error
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags []Diagnostic
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// RunConfig tunes a Run over one package.
type RunConfig struct {
	// Strict flags //qsys:allow annotations naming an analyzer outside the
	// running set (typo'd annotations silently suppress nothing otherwise).
	// qsys-lint runs strict; single-analyzer fixture tests do not.
	Strict bool
}

// Run executes the analyzers over pkg, applies //qsys:allow filtering, and
// returns the surviving findings ordered by position. Allow annotations with
// an empty reason are themselves returned as findings of the analyzer they
// name — the escape hatch requires a justification.
func Run(pkg *Package, analyzers []*Analyzer, cfg RunConfig) ([]Diagnostic, error) {
	var out []Diagnostic
	allows := collectAllows(pkg.Fset, pkg.Files)
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	for _, al := range allows {
		switch {
		case known[al.analyzer] && al.reason == "":
			out = append(out, Diagnostic{
				Analyzer: al.analyzer,
				Pos:      al.pos,
				Message:  fmt.Sprintf("qsys:allow %s: empty reason; exceptions must say why they are safe", al.analyzer),
			})
		case cfg.Strict && !known[al.analyzer]:
			out = append(out, Diagnostic{
				Analyzer: "allow",
				Pos:      al.pos,
				Message:  fmt.Sprintf("qsys:allow names unknown analyzer %q", al.analyzer),
			})
		}
	}
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Path, err)
		}
		for _, d := range pass.diags {
			if !suppressed(allows, pkg.Fset, d) {
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos != out[j].Pos {
			return out[i].Pos < out[j].Pos
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// All returns the full invariant-lint suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Wallclock, MapOrder, LedgerPair, RetryClass}
}
