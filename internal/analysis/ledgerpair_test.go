package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestLedgerPair(t *testing.T) {
	analysistest.Run(t, analysis.LedgerPair, "testdata/src/ledgerpair")
}
