package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, analysis.MapOrder, "testdata/src/maporder")
}
