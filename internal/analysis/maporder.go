package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// MapOrder flags map iteration that feeds order-sensitive sinks — slice
// appends with no dominating sort, hasher/encoder/builder writes, channel
// sends. Go randomizes map iteration order on purpose; letting it reach a
// digest, a wire encoding or a worker channel is the canonical way a
// "byte-identical at any worker count" gate starts flaking.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "map iteration order is randomized; output assembled inside a map " +
		"range must be deterministically sorted before it can feed digests, " +
		"encoders or channels",
	Run: runMapOrder,
}

// orderSinkMethods are method names whose call inside a map range emits
// bytes or values in iteration order.
var orderSinkMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true, "Sum": true,
}

// fmtPrinters are the fmt functions that stream into an io.Writer.
var fmtPrinters = map[string]bool{"Fprint": true, "Fprintf": true, "Fprintln": true}

func runMapOrder(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if ok && rangesOverMap(pass, rs) {
					checkMapRange(pass, fd, rs)
				}
				return true
			})
		}
	}
	return nil
}

// rangesOverMap reports whether the range statement iterates a map — either
// directly or through the maps.Keys/Values/All iterators, which inherit the
// same randomized order.
func rangesOverMap(pass *Pass, rs *ast.RangeStmt) bool {
	if call, ok := rs.X.(*ast.CallExpr); ok {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok {
				if pn, ok := pass.Info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "maps" {
					switch sel.Sel.Name {
					case "Keys", "Values", "All":
						return true
					}
				}
			}
		}
	}
	tv, ok := pass.Info.Types[rs.X]
	if !ok {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// checkMapRange walks one map-range body for order-sensitive effects.
func checkMapRange(pass *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send inside map iteration delivers values in randomized order")
		case *ast.CallExpr:
			checkMapRangeCall(pass, fd, rs, n)
		}
		return true
	})
}

func checkMapRangeCall(pass *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, call *ast.CallExpr) {
	// x = append(x, ...) where x outlives the range and is never sorted.
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" && len(call.Args) > 0 {
		if bucketKeyedByRangeKey(pass, rs, call.Args[0]) {
			// m2[k] = append(m2[k], ...) with k the iteration key: each
			// bucket sees a deterministic subsequence; only the (invisible)
			// interleaving across buckets follows map order.
			return
		}
		if obj := rootObject(pass, call.Args[0]); obj != nil && declaredOutside(obj, rs) && !sortedInFunc(pass, fd, obj) {
			pass.Reportf(call.Pos(),
				"append to %s in map-iteration order with no deterministic sort in %s; sort it (or the map's keys) before it can feed a digest",
				obj.Name(), funcName(fd))
		}
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	// fmt.Fprint* streaming into a writer that outlives the range.
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := pass.Info.Uses[id].(*types.PkgName); ok {
			if pn.Imported().Path() == "fmt" && fmtPrinters[sel.Sel.Name] && len(call.Args) > 0 {
				if obj := rootObject(pass, call.Args[0]); obj != nil && declaredOutside(obj, rs) {
					pass.Reportf(call.Pos(), "fmt.%s into %s in map-iteration order emits nondeterministic output", sel.Sel.Name, obj.Name())
				}
			}
			return
		}
	}
	// Hasher/encoder/builder writes on a receiver that outlives the range.
	if orderSinkMethods[sel.Sel.Name] {
		if obj := rootObject(pass, sel.X); obj != nil && declaredOutside(obj, rs) {
			pass.Reportf(call.Pos(),
				"%s.%s inside map iteration feeds bytes in randomized order", obj.Name(), sel.Sel.Name)
		}
	}
}

// rootObject resolves the leftmost identifier of an expression to its
// object: buf in buf.Write, x in x.h.Sum, s in s[i].
func rootObject(pass *Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return pass.Info.Uses[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredOutside reports whether obj's declaration is outside the range
// statement: effects on loop-local state cannot leak iteration order.
func declaredOutside(obj types.Object, rs *ast.RangeStmt) bool {
	return obj.Pos() < rs.Pos() || obj.Pos() >= rs.End()
}

// bucketKeyedByRangeKey reports whether target is an index expression whose
// index mentions the range's key variable — the bucketing idiom.
func bucketKeyedByRangeKey(pass *Pass, rs *ast.RangeStmt, target ast.Expr) bool {
	keyID, ok := rs.Key.(*ast.Ident)
	if !ok || keyID.Name == "_" {
		return false
	}
	keyObj := pass.Info.Defs[keyID]
	if keyObj == nil {
		keyObj = pass.Info.Uses[keyID]
	}
	if keyObj == nil {
		return false
	}
	idx, ok := target.(*ast.IndexExpr)
	if !ok {
		return false
	}
	return mentions(pass, idx.Index, keyObj)
}

// mentions reports whether expr references obj anywhere.
func mentions(pass *Pass, expr ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// sortedInFunc reports whether the enclosing function deterministically
// sorts obj: a sort.*/slices.* call (or a Sort* method call) that mentions
// it — directly, or through an alias (a range-value variable over obj, or a
// variable bound to one of obj's buckets). Collect-then-sort is the
// sanctioned idiom for map traversal.
func sortedInFunc(pass *Pass, fd *ast.FuncDecl, obj types.Object) bool {
	targets := map[types.Object]bool{obj: true}
	// Aliases: `for k, vs := range obj` makes vs an alias of obj's content;
	// `vs := obj[k]` likewise.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if rootObject(pass, n.X) == obj && n.Value != nil {
				if id, ok := n.Value.(*ast.Ident); ok {
					if vo := pass.Info.Defs[id]; vo != nil {
						targets[vo] = true
					}
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				if ix, ok := rhs.(*ast.IndexExpr); ok && rootObject(pass, ix.X) == obj {
					if id, ok := n.Lhs[i].(*ast.Ident); ok {
						if vo := pass.Info.Defs[id]; vo != nil {
							targets[vo] = true
						} else if vo := pass.Info.Uses[id]; vo != nil {
							targets[vo] = true
						}
					}
				}
			}
		}
		return true
	})
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		sorter := false
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := pass.Info.Uses[id].(*types.PkgName); ok {
				p := pn.Imported().Path()
				sorter = p == "sort" || p == "slices"
			}
		}
		if !sorter && strings.HasPrefix(sel.Sel.Name, "Sort") {
			// x.Sort(), keys.SortStable(): receiver is the sorted value.
			if targets[rootObject(pass, sel.X)] {
				found = true
				return false
			}
		}
		if !sorter {
			return true
		}
		for _, arg := range call.Args {
			mentioned := false
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && targets[pass.Info.Uses[id]] {
					mentioned = true
					return false
				}
				return !mentioned
			})
			if mentioned {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func funcName(fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		if t := fd.Recv.List[0].Type; t != nil {
			base := t
			if st, ok := base.(*ast.StarExpr); ok {
				base = st.X
			}
			if id, ok := base.(*ast.Ident); ok {
				return id.Name + "." + fd.Name.Name
			}
		}
	}
	return fd.Name.Name
}
