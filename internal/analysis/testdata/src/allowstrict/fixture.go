// Package allowstrict exercises the multichecker's strict mode: a
// qsys:allow naming an analyzer that doesn't exist is itself a finding, so
// suppressions can't silently rot when analyzers are renamed.
package allowstrict

func typoedSuppression() int {
	x := 1 //qsys:allow wallclcok: misspelled analyzer name // want `names unknown analyzer "wallclcok"`
	return x
}
