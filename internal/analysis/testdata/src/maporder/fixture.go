// Package mapfix exercises the maporder analyzer: map iteration feeding
// order-sensitive sinks versus the sanctioned idioms.
package mapfix

import (
	"fmt"
	"hash/fnv"
	"maps"
	"os"
	"sort"
)

func flaggedAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys in map-iteration order with no deterministic sort`
	}
	return keys
}

func flaggedMapsKeysIterator(m map[string]int) []string {
	var keys []string
	for k := range maps.Keys(m) {
		keys = append(keys, k) // want `append to keys`
	}
	return keys
}

func flaggedHasher(m map[string]int) uint32 {
	h := fnv.New32a()
	for k := range m {
		h.Write([]byte(k)) // want `h.Write inside map iteration feeds bytes in randomized order`
	}
	return h.Sum32()
}

func flaggedSend(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `channel send inside map iteration delivers values in randomized order`
	}
}

func flaggedPrint(m map[string]int) {
	for k := range m {
		fmt.Fprintln(os.Stdout, k) // want `fmt.Fprintln into os in map-iteration order`
	}
}

// legal: collect then sort is the sanctioned map-traversal idiom.
func legalCollectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// legal: a loop-local hasher cannot leak iteration order.
func legalLocalHasher(m map[string]int) map[string]uint32 {
	out := make(map[string]uint32, len(m))
	for k := range m {
		h := fnv.New32a()
		h.Write([]byte(k))
		out[k] = h.Sum32()
	}
	return out
}

// legal: bucketing keyed by the iteration key — each bucket sees a
// deterministic subsequence.
func legalBucketed(m map[string][]string) map[string][]string {
	out := map[string][]string{}
	for k, vs := range m {
		for _, v := range vs {
			out[k] = append(out[k], v)
		}
	}
	return out
}

// legal: buckets sorted through the range-value alias before use.
func legalSortedViaAlias(m map[string][]string) map[string][]string {
	out := map[string][]string{}
	for k, vs := range m {
		for _, v := range vs {
			out[v] = append(out[v], k)
		}
	}
	for _, ids := range out {
		sort.Strings(ids)
	}
	return out
}

func allowedAppend(m map[string]int) []string {
	var victims []string
	for k := range m {
		//qsys:allow maporder: victims are all deleted from the same map; order is unobservable
		victims = append(victims, k)
	}
	return victims
}

func allowedEmptyReason(m map[string]int) []string {
	var victims []string
	for k := range m {
		victims = append(victims, k) //qsys:allow maporder: // want `empty reason` `append to victims`
	}
	return victims
}
