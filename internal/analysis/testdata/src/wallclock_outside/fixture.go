// Package webfront is outside the determinism domain: wall-clock reads and
// the global RNG are legitimate here (admission windows, jittered backoff).
package webfront

import (
	"math/rand"
	"time"
)

func legalEverywhere() time.Duration {
	start := time.Now()
	time.Sleep(time.Duration(rand.Intn(3)) * time.Millisecond)
	return time.Since(start)
}
