// Package fleet is a retryclass fixture: its name places it under the
// fleet tier's retry-safety contract.
package fleet

import (
	"encoding/json"
	"net/http"
	"time"
)

type wireError struct {
	Error     string
	Retryable bool
	Reason    string
}

// RPCError mirrors the real fleet wire error.
type RPCError struct {
	Status     int
	Msg        string
	Retryable  bool
	Reason     string
	RetryAfter time.Duration
}

func (e *RPCError) Error() string { return e.Msg }

// writeRPCError is the classifying writer: raw header writes inside it are
// the implementation, not a bypass.
func writeRPCError(rw http.ResponseWriter, code int, msg string, retryable bool) {
	rw.WriteHeader(code)
	_ = json.NewEncoder(rw).Encode(wireError{Error: msg, Retryable: retryable, Reason: ""})
}

func flaggedHTTPError(rw http.ResponseWriter, err error) {
	http.Error(rw, err.Error(), http.StatusInternalServerError) // want `http.Error surfaces an unclassified error to the retry loop`
}

func flaggedRawHeader(rw http.ResponseWriter) {
	rw.WriteHeader(http.StatusBadGateway) // want `raw WriteHeader outside the classifying writers`
}

func flaggedLiteral(status int, msg string) error {
	return &RPCError{Status: status, Msg: msg} // want `RPCError constructed without an explicit Retryable classification`
}

func flaggedRetryableClaim(rw http.ResponseWriter, msg string) {
	writeRPCError(rw, http.StatusInternalServerError, msg, true) // want `retryable=true on a non-503 status`
}

// legal: explicit classification, even when false.
func legalLiteral(status int, msg string) error {
	return &RPCError{Status: status, Msg: msg, Retryable: false}
}

// legal: a retryable claim on a pre-admission 503.
func legalRetryableClaim(rw http.ResponseWriter, msg string) {
	writeRPCError(rw, http.StatusServiceUnavailable, msg, true)
}

// legal: non-retryable rejection through the writer.
func legalRejection(rw http.ResponseWriter, msg string) {
	writeRPCError(rw, http.StatusUnprocessableEntity, msg, false)
}

func allowedRawHeader(rw http.ResponseWriter) {
	rw.WriteHeader(http.StatusNoContent) //qsys:allow retryclass: fixture probe response carries no error to classify
}

func allowedEmptyReason(rw http.ResponseWriter) {
	rw.WriteHeader(http.StatusNoContent) //qsys:allow retryclass: // want `empty reason` `raw WriteHeader`
}
