// Package ledgerfix exercises the ledgerpair analyzer against the real
// state.Account API: owned accounts that grow must have a release path.
package ledgerfix

import "repro/internal/state"

// leaky owns its account and grows it with no release path anywhere: the
// PR 8 ScratchRows class.
type leaky struct {
	acct *state.Account
	rows []int
}

func newLeaky(l *state.Ledger) *leaky {
	t := &leaky{}
	t.acct = l.NewAccount("leaky")
	return t
}

func (t *leaky) Append(v int) {
	t.rows = append(t.rows, v)
	t.acct.Add(1) // want `leaky.acct grows via Add but nothing in this package releases it`
}

// scratchLeak grows the pooled-scratch dimension with no release.
type scratchLeak struct {
	acct *state.Account
}

func newScratchLeak(l *state.Ledger) *scratchLeak {
	s := &scratchLeak{}
	s.acct = l.NewAccount("scratch")
	return s
}

func (s *scratchLeak) Pool(n int) {
	s.acct.AddScratch(n) // want `scratchLeak.acct grows via AddScratch`
}

// paired grows and releases: legal.
type paired struct {
	acct *state.Account
	rows []int
}

func newPaired(l *state.Ledger) *paired {
	p := &paired{}
	p.acct = l.NewAccount("paired")
	return p
}

func (p *paired) Append(v int) {
	p.rows = append(p.rows, v)
	p.acct.Add(1)
}

func (p *paired) Reset() {
	p.acct.Add(-len(p.rows))
	p.rows = nil
}

// exposed grows but returns its account for the owner to release — the
// NodeExec/ATC idiom: legal.
type exposed struct {
	acct *state.Account
}

func newExposed(l *state.Ledger) *exposed {
	return &exposed{acct: l.NewAccount("exposed")}
}

func (e *exposed) Grow()                   { e.acct.Add(1) }
func (e *exposed) Account() *state.Account { return e.acct }

// borrowed references an account someone else owns (wired in via
// SetAccount, like a Log's identity set riding the Log account): legal.
type borrowed struct {
	acct *state.Account
}

func (b *borrowed) SetAccount(a *state.Account) { b.acct = a }
func (b *borrowed) Grow()                       { b.acct.Add(1) }

// allowedLeak documents an intentional process-lifetime account.
type allowedLeak struct {
	acct *state.Account
}

func newAllowedLeak(l *state.Ledger) *allowedLeak {
	a := &allowedLeak{}
	a.acct = l.NewAccount("allowed")
	return a
}

func (a *allowedLeak) Grow() {
	//qsys:allow ledgerpair: fixture process-lifetime account, reclaimed at ledger teardown
	a.acct.Add(1)
}

// emptyReason shows the escape hatch failing without a justification.
type emptyReason struct {
	acct *state.Account
}

func newEmptyReason(l *state.Ledger) *emptyReason {
	e := &emptyReason{}
	e.acct = l.NewAccount("empty")
	return e
}

func (e *emptyReason) Grow() {
	e.acct.Add(1) //qsys:allow ledgerpair: // want `empty reason` `emptyReason.acct grows via Add`
}
