// Package operator is a wallclock fixture: its name puts it in the
// determinism domain, where ambient time and global randomness are banned.
package operator

import (
	"math/rand"
	"time"
)

func flaggedTime() {
	_ = time.Now()               // want `wall-clock time.Now in determinism-domain package operator`
	start := time.Now()          // want `wall-clock time.Now`
	_ = time.Since(start)        // want `wall-clock time.Since`
	time.Sleep(time.Millisecond) // want `wall-clock time.Sleep`
	t := time.NewTimer(0)        // want `wall-clock time.NewTimer`
	t.Stop()
}

func flaggedRand() {
	_ = rand.Intn(4)                   // want `global rand.Intn in determinism-domain package operator`
	rand.Shuffle(2, func(a, b int) {}) // want `global rand.Shuffle`
}

// legal: seeded sources, virtual durations, and instance methods draw
// nothing from ambient state.
func legal(seed int64) time.Duration {
	rng := rand.New(rand.NewSource(seed))
	_ = rng.Intn(4)
	d := 3 * time.Second
	return d + time.Duration(rng.Int63n(int64(time.Millisecond)))
}

func allowed() {
	_ = time.Now() //qsys:allow wallclock: fixture wall read feeding stats only, never digests
}

func allowedEmptyReason() {
	_ = time.Now() //qsys:allow wallclock: // want `empty reason` `wall-clock time.Now`
}
