package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// allow is one parsed //qsys:allow <analyzer>: <reason> annotation.
type allow struct {
	analyzer string
	reason   string
	pos      token.Pos
	file     string
	line     int
}

const allowPrefix = "//qsys:allow "

// collectAllows parses every qsys:allow annotation in the files. The
// annotation suppresses findings of the named analyzer on its own line and on
// the line directly below (so it works both as an end-of-line comment and as
// a standalone comment above the offending statement).
func collectAllows(fset *token.FileSet, files []*ast.File) []allow {
	var out []allow
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, allowPrefix)
				if !ok {
					continue
				}
				name, rest, ok := strings.Cut(text, ":")
				if !ok {
					continue
				}
				// Fixture files carry `// want` expectations inside the same
				// line comment; they are harness metadata, not justification.
				if i := strings.Index(rest, "// want"); i >= 0 {
					rest = rest[:i]
				}
				p := fset.Position(c.Pos())
				out = append(out, allow{
					analyzer: strings.TrimSpace(name),
					reason:   strings.TrimSpace(rest),
					pos:      c.Pos(),
					file:     p.Filename,
					line:     p.Line,
				})
			}
		}
	}
	return out
}

// suppressed reports whether a finding is covered by a non-empty-reason allow
// annotation for its analyzer.
func suppressed(allows []allow, fset *token.FileSet, d Diagnostic) bool {
	p := fset.Position(d.Pos)
	for _, al := range allows {
		if al.analyzer != d.Analyzer || al.reason == "" || al.file != p.Filename {
			continue
		}
		if al.line == p.Line || al.line+1 == p.Line {
			return true
		}
	}
	return false
}
