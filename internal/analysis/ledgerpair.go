package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LedgerPair flags struct fields holding a state.Account that some code in
// the package grows (Add/AddScratch) while nothing releases: no negative
// delta, no release-named method touching it, and no escape of the account
// to code that could release it elsewhere (Ledger.Release, an accessor, an
// aliasing assignment). This is the PR 8 ScratchRows leak class — rows that
// enter the accounting ledger and never leave silently skew every budget
// and eviction decision downstream.
var LedgerPair = &Analyzer{
	Name: "ledgerpair",
	Doc: "every state.Account grow needs a reachable release path: a negative " +
		"Add/AddScratch, a Ledger.Release, or exposing the account for its " +
		"owner to release",
	Run: runLedgerPair,
}

// releaseMethodPrefixes name functions that are themselves the release path:
// an Add with a runtime-signed delta inside ReleaseScratch or Close is
// release-side even though the sign is not syntactically visible.
var releaseMethodPrefixes = []string{"Release", "Close", "Reset", "Free", "Drop", "Shrink", "Evict", "Unlink"}

// accountUse accumulates the package-wide evidence for one Account field.
type accountUse struct {
	owner    string    // display name of the holding struct
	growPos  token.Pos // first grow-side call
	growCall string    // method name of that call
	grown    bool
	released bool
}

func runLedgerPair(pass *Pass) error {
	uses := make(map[*types.Var]*accountUse)
	var order []*types.Var
	record := func(sel *ast.SelectorExpr, fv *types.Var) *accountUse {
		u := uses[fv]
		if u == nil {
			u = &accountUse{owner: ownerName(pass, sel)}
			uses[fv] = u
			order = append(order, fv)
		}
		return u
	}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			inRelease := releaseNamed(fd.Name.Name)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					// x.f.METHOD(...) — grow, shrink, or read.
					if mSel, ok := n.Fun.(*ast.SelectorExpr); ok {
						if fSel, fv := directAccountSel(pass, mSel.X); fv != nil {
							classifyAccountCall(record(fSel, fv), mSel.Sel.Name, n, inRelease)
						}
					}
					// Ledger.Release(x.f) or any helper taking the account:
					// the callee owns the release from here.
					for _, arg := range n.Args {
						if fSel, fv := directAccountSel(pass, arg); fv != nil {
							record(fSel, fv).released = true
						}
					}
				case *ast.AssignStmt:
					// RHS aliasing hands the lifecycle to another holder;
					// LHS assignment from NewAccount is ownership
					// initialization (neutral: the owner must pair it), while
					// assignment from anything else is *borrowing* — the
					// field references an account someone else owns and
					// releases (a Log's identity set riding its Log account).
					for _, rhs := range n.Rhs {
						if fSel, fv := directAccountSel(pass, rhs); fv != nil {
							record(fSel, fv).released = true
						}
					}
					for i, lhs := range n.Lhs {
						fSel, fv := directAccountSel(pass, lhs)
						if fv == nil {
							continue
						}
						rhs := n.Rhs[0]
						if len(n.Rhs) == len(n.Lhs) {
							rhs = n.Rhs[i]
						}
						if !isNewAccountCall(rhs) {
							record(fSel, fv).released = true
						}
					}
				case *ast.ReturnStmt:
					// Accessor: the caller owns the lifecycle (this is how
					// ATC releases operator-held accounts).
					for _, res := range n.Results {
						if fSel, fv := directAccountSel(pass, res); fv != nil {
							record(fSel, fv).released = true
						}
					}
				case *ast.KeyValueExpr:
					if fSel, fv := directAccountSel(pass, n.Value); fv != nil {
						record(fSel, fv).released = true
					}
				}
				return true
			})
		}
	}

	for _, fv := range order {
		u := uses[fv]
		if u.grown && !u.released {
			owner := u.owner
			if owner == "" {
				owner = "its holder"
			}
			pass.Reportf(u.growPos,
				"%s.%s grows via %s but nothing in this package releases it: pair the grow with a negative delta, a Ledger.Release, or an accessor exposing the account",
				owner, fv.Name(), u.growCall)
		}
	}
	return nil
}

// classifyAccountCall folds one x.f.METHOD(args) call into the evidence.
func classifyAccountCall(u *accountUse, method string, call *ast.CallExpr, inRelease bool) {
	switch method {
	case "Add", "AddScratch":
		if inRelease {
			u.released = true
			return
		}
		if len(call.Args) == 1 {
			if neg, ok := call.Args[0].(*ast.UnaryExpr); ok && neg.Op == token.SUB {
				u.released = true
				return
			}
		}
		if !u.grown {
			u.grown = true
			u.growPos = call.Pos()
			u.growCall = method
		}
	case "Rows", "ScratchRows", "Live":
		// Read-only: neutral.
	default:
		// An unknown method on the account: assume lifecycle management
		// rather than fabricate a leak.
		u.released = true
	}
}

// isNewAccountCall reports whether e is a call to a NewAccount method or
// function — the one RHS that confers ownership on assignment.
func isNewAccountCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "NewAccount"
	case *ast.SelectorExpr:
		return fun.Sel.Name == "NewAccount"
	}
	return false
}

// directAccountSel unwraps parens and & and resolves e to a struct-field
// selector of type state.Account / *state.Account.
func directAccountSel(pass *Pass, e ast.Expr) (*ast.SelectorExpr, *types.Var) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil, nil
			}
			e = x.X
		case *ast.SelectorExpr:
			v, ok := pass.Info.Uses[x.Sel].(*types.Var)
			if !ok || !v.IsField() || !isAccountType(v.Type()) {
				return nil, nil
			}
			return x, v
		default:
			return nil, nil
		}
	}
}

func isAccountType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Account" && obj.Pkg() != nil && obj.Pkg().Name() == "state"
}

// ownerName renders the holding struct's name for the finding message.
func ownerName(pass *Pass, sel *ast.SelectorExpr) string {
	s, ok := pass.Info.Selections[sel]
	if !ok {
		return ""
	}
	t := s.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return strings.TrimPrefix(t.String(), "*")
}

func releaseNamed(name string) bool {
	for _, p := range releaseMethodPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}
