package analysis

import (
	"go/ast"
	"go/types"
)

// RetryClass enforces the fleet tier's retry-safety contract. The client
// retry loop resubmits a search only when its error proves the request never
// reached admission; anything else risks double-executing a UQ, which breaks
// the exactly-once admission the digest gates rest on. Three rules keep that
// classification explicit:
//
//  1. error responses leave a shard through the classifying writers
//     (writeRPCError / WriteShedError), never raw http.Error or WriteHeader —
//     a raw write silently defaults to "not retryable" today and to
//     "whatever the decoder guesses" tomorrow;
//  2. RPCError / wireError composite literals state Retryable explicitly;
//  3. retryable=true is only ever claimed for pre-admission 503s — a
//     retryable flag on any other status is a lie the client would act on.
var RetryClass = &Analyzer{
	Name: "retryclass",
	Doc: "fleet errors surfaced to the client retry loop carry an explicit " +
		"retryable/shed classification; implicit or misclassified errors " +
		"double-execute searches",
	Run: runRetryClass,
}

// retryClassWriters are the sanctioned classification seams: inside them,
// raw response writes are the implementation, not a bypass.
var retryClassWriters = map[string]bool{
	"writeRPCError":  true,
	"WriteShedError": true,
}

// retryClassLiterals are the wire-classification structs that must set
// Retryable explicitly when constructed.
var retryClassLiterals = map[string]bool{
	"RPCError":  true,
	"wireError": true,
}

func runRetryClass(pass *Pass) error {
	if pass.Pkg.Name() != "fleet" {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			inWriter := retryClassWriters[fd.Name.Name]
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					checkRetryCall(pass, n, inWriter)
				case *ast.CompositeLit:
					checkRetryLiteral(pass, n)
				}
				return true
			})
		}
	}
	return nil
}

func checkRetryCall(pass *Pass, call *ast.CallExpr, inWriter bool) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		// writeRPCError(rw, status, msg, retryable): a literal true is only
		// legal on a pre-admission 503.
		if fun.Name == "writeRPCError" && len(call.Args) >= 4 {
			if lit, ok := call.Args[3].(*ast.Ident); ok && lit.Name == "true" {
				if !isStatusServiceUnavailable(pass, call.Args[1]) {
					pass.Reportf(call.Pos(),
						"retryable=true on a non-503 status: the client only resubmits provably-pre-admission rejections")
				}
			}
		}
	case *ast.SelectorExpr:
		if inWriter {
			return
		}
		// http.Error(rw, ...) bypasses classification entirely.
		if id, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := pass.Info.Uses[id].(*types.PkgName); ok {
				if pn.Imported().Path() == "net/http" && fun.Sel.Name == "Error" {
					pass.Reportf(call.Pos(),
						"http.Error surfaces an unclassified error to the retry loop; use writeRPCError/WriteShedError")
				}
				return
			}
		}
		// rw.WriteHeader(...) on a ResponseWriter outside the writers.
		if fun.Sel.Name == "WriteHeader" && isResponseWriter(pass, fun.X) {
			pass.Reportf(call.Pos(),
				"raw WriteHeader outside the classifying writers; error responses must state their retryable/shed classification")
		}
	}
}

// checkRetryLiteral requires composite RPCError/wireError literals to set
// Retryable — by key, or positionally with every field present.
func checkRetryLiteral(pass *Pass, cl *ast.CompositeLit) {
	tv, ok := pass.Info.Types[cl]
	if !ok {
		return
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || !retryClassLiterals[named.Obj().Name()] {
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}
	if len(cl.Elts) == st.NumFields() && (len(cl.Elts) == 0 || !isKeyed(cl)) {
		if st.NumFields() > 0 {
			return // positional with every field: explicit enough
		}
	}
	for _, e := range cl.Elts {
		if kv, ok := e.(*ast.KeyValueExpr); ok {
			if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Retryable" {
				return
			}
		}
	}
	pass.Reportf(cl.Pos(),
		"%s constructed without an explicit Retryable classification; state it even when false", named.Obj().Name())
}

func isKeyed(cl *ast.CompositeLit) bool {
	for _, e := range cl.Elts {
		if _, ok := e.(*ast.KeyValueExpr); ok {
			return true
		}
	}
	return false
}

// isStatusServiceUnavailable reports whether e is (a constant equal to)
// net/http.StatusServiceUnavailable.
func isStatusServiceUnavailable(pass *Pass, e ast.Expr) bool {
	if tv, ok := pass.Info.Types[e]; ok && tv.Value != nil {
		return tv.Value.String() == "503"
	}
	return false
}

// isResponseWriter reports whether e's type is net/http.ResponseWriter.
func isResponseWriter(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "ResponseWriter" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}
