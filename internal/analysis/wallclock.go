package analysis

import (
	"go/ast"
	"go/types"
)

// determinismDomain names the engine packages whose outputs feed result
// digests. Inside them, elapsed time comes from the simclock virtual clock
// and randomness from node-key-seeded RNGs; the wall clock and the global
// math/rand state are how "byte-identical at any worker/batch/shard count"
// silently dies.
var determinismDomain = map[string]bool{
	"operator":   true,
	"atc":        true,
	"qsm":        true,
	"mqo":        true,
	"cq":         true,
	"state":      true,
	"costmodel":  true,
	"tuple":      true,
	"scoring":    true,
	"candidates": true,
}

// wallclockBanned maps an import path to the functions that read ambient
// time or ambient randomness. Constructors of explicitly-seeded sources
// (rand.New, rand.NewSource, ...) stay legal: seeding from a node key is
// exactly the sanctioned idiom.
var wallclockBanned = map[string]map[string]bool{
	"time": {
		"Now": true, "Since": true, "Until": true, "Sleep": true,
		"After": true, "AfterFunc": true, "Tick": true,
		"NewTimer": true, "NewTicker": true,
	},
	"math/rand":    nil, // nil = every function except the seeded constructors
	"math/rand/v2": nil,
}

// wallclockConstructors are the math/rand functions that build a seeded
// source rather than draw from the global one.
var wallclockConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// Wallclock flags wall-clock time and global-RNG draws in determinism-domain
// packages.
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc: "engine packages must draw time from simclock and randomness from " +
		"node-key-seeded RNGs; time.Now/Since/timers and global math/rand " +
		"calls make digests depend on the machine and the schedule",
	Run: runWallclock,
}

func runWallclock(pass *Pass) error {
	if !determinismDomain[pass.Pkg.Name()] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.Info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			path := pn.Imported().Path()
			banned, watched := wallclockBanned[path]
			if !watched {
				return true
			}
			// Only function references matter: time.Duration, rand.Rand and
			// friends are types, and package-level constants are values.
			if _, isFunc := pass.Info.Uses[sel.Sel].(*types.Func); !isFunc {
				return true
			}
			name := sel.Sel.Name
			if banned == nil { // math/rand: global draws are banned wholesale
				if !wallclockConstructors[name] {
					pass.Reportf(sel.Pos(),
						"global %s.%s in determinism-domain package %s; draw from a node-key-seeded *rand.Rand instead",
						pn.Imported().Name(), name, pass.Pkg.Name())
				}
				return true
			}
			if banned[name] {
				pass.Reportf(sel.Pos(),
					"wall-clock %s.%s in determinism-domain package %s; elapsed time must come from the simclock virtual clock",
					pn.Imported().Name(), name, pass.Pkg.Name())
			}
			return true
		})
	}
	return nil
}
