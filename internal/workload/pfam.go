package workload

import (
	"fmt"
	"time"

	"repro/internal/batcher"
	"repro/internal/candidates"
	"repro/internal/catalog"
	"repro/internal/cq"
	"repro/internal/dist"
	"repro/internal/relationdb"
	"repro/internal/remotedb"
	"repro/internal/schemagraph"
	"repro/internal/tuple"
)

// PfamScale sizes the Pfam/InterPro proxy. §7.5's finding — ATC-FULL gains
// little on the real data because it is "significantly larger" and raises
// contention — depends on this workload carrying roughly an order of
// magnitude more rows per touched relation than the GUS default.
type PfamScale struct {
	// L is the base cardinality; relation sizes are small multiples of it.
	L int
	// Years is the publication-year span for the literature score attribute.
	Years int
}

// PfamScaleDefault is the test/bench scale.
func PfamScaleDefault() PfamScale { return PfamScale{L: 8000, Years: 30} }

const pfamSeed = 0x50464d // "PFM"

// pfamRel declares one relation of the proxy schema.
type pfamRel struct {
	name string
	db   string
	cols []tuple.Column
	card int
	// termCol is the content column indexed for keywords (-1 none).
	termCol int
	terms   []string
	// keyCard: distinct values of each column (estimation).
	gen func(rng *dist.RNG, r int, card int) []tuple.Value
}

// Pfam builds the Pfam/InterPro proxy workload (§7.5): the documented
// protein-family schema split across a Pfam database and an InterPro
// database, text-match scores captured per tuple, plus one extra score
// attribute (publication year), 15 user queries of 4 conjunctive queries
// each, posed in sequence with random delays of up to 6 seconds.
func Pfam(scale PfamScale) (*Workload, error) {
	L := scale.L
	store := map[string]*relationdb.Store{
		"pfam":     relationdb.NewStore("pfam"),
		"interpro": relationdb.NewStore("interpro"),
	}
	cat := catalog.New()
	sg := schemagraph.New()
	rng := dist.New(pfamSeed)

	intCol := func(n string) tuple.Column { return tuple.Column{Name: n, Type: tuple.KindInt} }
	keyCol := func(n string) tuple.Column { return tuple.Column{Name: n, Type: tuple.KindInt, Key: true} }
	strCol := func(n string) tuple.Column { return tuple.Column{Name: n, Type: tuple.KindString} }
	scoreCol := func(n string) tuple.Column { return tuple.Column{Name: n, Type: tuple.KindFloat, Score: true} }

	famTerms := bioTerms[:24]
	entryTerms := bioTerms[8:32]
	goTerms := bioTerms[16:40]
	litTerms := bioTerms[:16]
	clanTerms := bioTerms[4:20]

	rels := []pfamRel{
		{
			name: "pfamA", db: "pfam", card: L, termCol: 2, terms: famTerms,
			cols: []tuple.Column{keyCol("pfamA_acc"), strCol("pfamA_id"), strCol("descr"), scoreCol("tscore")},
		},
		{
			name: "pfamseq", db: "pfam", card: 3 * L, termCol: 2, terms: speciesTerms,
			cols: []tuple.Column{keyCol("seq_acc"), strCol("seq_name"), strCol("species"), scoreCol("tscore")},
		},
		{
			name: "pfamA_reg", db: "pfam", card: 4 * L, termCol: -1,
			cols: []tuple.Column{intCol("pfamA_acc"), intCol("seq_acc"), scoreCol("sim")},
		},
		{
			name: "literature", db: "pfam", card: L, termCol: 1, terms: litTerms,
			cols: []tuple.Column{keyCol("pub"), strCol("title"), scoreCol("yscore")},
		},
		{
			name: "pfam_lit", db: "pfam", card: 2 * L, termCol: -1,
			cols: []tuple.Column{intCol("pfamA_acc"), intCol("pub"), scoreCol("sim")},
		},
		{
			name: "clan", db: "pfam", card: L / 10, termCol: 1, terms: clanTerms,
			cols: []tuple.Column{keyCol("clan_acc"), strCol("clan_name"), scoreCol("tscore")},
		},
		{
			name: "clan_member", db: "pfam", card: L / 2, termCol: -1,
			cols: []tuple.Column{intCol("clan_acc"), intCol("pfamA_acc"), scoreCol("sim")},
		},
		{
			// The mapping table relating Pfam families to InterPro entries.
			name: "pfam2interpro", db: "pfam", card: L, termCol: -1,
			cols: []tuple.Column{intCol("pfamA_acc"), intCol("entry"), scoreCol("sim")},
		},
		{
			name: "interpro_entry", db: "interpro", card: L, termCol: 1, terms: entryTerms,
			cols: []tuple.Column{keyCol("entry"), strCol("entry_name"), scoreCol("tscore")},
		},
		{
			name: "interpro2go", db: "interpro", card: 2 * L, termCol: -1,
			cols: []tuple.Column{intCol("entry"), intCol("go_id"), scoreCol("sim")},
		},
		{
			name: "go_term", db: "interpro", card: L / 2, termCol: 1, terms: goTerms,
			cols: []tuple.Column{keyCol("go_id"), strCol("go_name"), scoreCol("tscore")},
		},
		{
			// Score-less protein table: probed, never streamed (§5.1.1).
			name: "protein", db: "interpro", card: 3 * L, termCol: -1,
			cols: []tuple.Column{keyCol("uniprot"), strCol("prot_name"), intCol("taxon")},
		},
		{
			name: "interpro_protein", db: "interpro", card: 4 * L, termCol: -1,
			cols: []tuple.Column{intCol("entry"), intCol("uniprot"), scoreCol("sim")},
		},
	}
	// Foreign-key style joins (edges annotated with learned costs).
	edges := []pfamEdge{
		{"pfamA_reg", 0, "pfamA", 0}, {"pfamA_reg", 1, "pfamseq", 0},
		{"pfam_lit", 0, "pfamA", 0}, {"pfam_lit", 1, "literature", 0},
		{"clan_member", 0, "clan", 0}, {"clan_member", 1, "pfamA", 0},
		{"pfam2interpro", 0, "pfamA", 0}, {"pfam2interpro", 1, "interpro_entry", 0},
		{"interpro2go", 0, "interpro_entry", 0}, {"interpro2go", 1, "go_term", 0},
		{"interpro_protein", 0, "interpro_entry", 0}, {"interpro_protein", 1, "protein", 0},
	}

	// keyRange maps relation -> key cardinality for foreign key draws.
	keyRange := map[string]int{}
	for _, r := range rels {
		keyRange[r.name] = r.card
	}
	for i := range rels {
		r := rels[i]
		schema := tuple.NewSchema(r.name, r.cols...)
		dataRNG := dist.New(pfamSeed*31 + uint64(i)*101)
		relRef := r
		store[r.db].PutLazy(r.name, func() *relationdb.Relation {
			return materialisePfam(relRef, schema, dataRNG, keyRange, edges)
		})
		dist := make([]float64, len(r.cols))
		for ci := range dist {
			dist[ci] = float64(r.card)
		}
		if r.termCol >= 0 {
			dist[r.termCol] = float64(len(r.terms))
		}
		// Link tables reference their endpoints' key spaces.
		for _, e := range edges {
			if e.from == r.name {
				dist[e.fcol] = minf(r.card, keyRange[e.to])
			}
		}
		hasScore := schema.HasScore()
		cat.AddStats(&catalog.RelStats{
			Name: r.name, DB: r.db, Card: float64(r.card), Distinct: dist,
			MaxScore: 1.0, HasScore: hasScore, Schema: schema,
		})
		sg.AddNode(&schemagraph.Node{Rel: r.name, DB: r.db, Schema: schema, Authority: 0.2 * rng.Float64(), LinkTable: r.termCol < 0})
	}
	for _, e := range edges {
		sg.AddEdge(&schemagraph.Edge{From: e.from, To: e.to, FromCol: e.fcol, ToCol: e.tcol, Cost: 0.3 + rng.Float64()})
	}
	// Keyword index: MySQL-text-search-style matches on every term column.
	for _, r := range rels {
		if r.termCol < 0 {
			continue
		}
		for _, term := range r.terms {
			sg.IndexTerm(term, schemagraph.Match{Rel: r.name, Col: r.termCol, Score: 0.5 + 0.5*rng.Float64()})
		}
	}

	fleet := remotedb.NewFleet(remotedb.New(store["pfam"]), remotedb.New(store["interpro"]))
	w := &Workload{Name: "pfam", Fleet: fleet, Catalog: cat, Schema: sg}

	// 15 keyword queries, 4 CQs each, arrivals within 6 s of one another.
	cfg := candidates.Config{
		Graph:             sg,
		Catalog:           cat,
		MatchesPerKeyword: 3,
		MaxAtoms:          6,
		MaxPathLen:        4,
		PathVariants:      3,
		MaxCQs:            4,
		Family:            candidates.FamilyDiscover,
	}
	w.Gen = cfg
	terms := sg.Terms()
	qrng := dist.New(pfamSeed + 17)
	kwZipf := dist.NewZipf(qrng, len(terms), 1.6)
	arrivals := arrivalTimes(15, 6*time.Second, dist.New(pfamSeed+23).Float64)
	for i := 1; i <= 15; i++ {
		var uq *cq.UQ
		for attempt := 0; attempt < 80; attempt++ {
			k1, k2 := terms[kwZipf.Next()], terms[kwZipf.Next()]
			if k1 == k2 {
				continue
			}
			got, err := candidates.Generate(cfg, fmt.Sprintf("UQ%d", i), []string{k1, k2}, 50, dist.New(uint64(5000+i)))
			if err == nil && len(got.CQs) >= 2 {
				uq = got
				break
			}
		}
		if uq == nil {
			return nil, fmt.Errorf("workload: could not generate pfam user query %d", i)
		}
		w.Submissions = append(w.Submissions, batcher.Submission{At: arrivals[i-1], UQ: uq})
	}
	return w, nil
}

// pfamEdge is a foreign-key style join between proxy relations.
type pfamEdge struct {
	from string
	fcol int
	to   string
	tcol int
}

func materialisePfam(r pfamRel, schema *tuple.Schema, rng *dist.RNG, keyRange map[string]int, edges []pfamEdge) *relationdb.Relation {
	// Per-column foreign-key spaces, with Zipfian key popularity (§7).
	fkZipf := map[int]*dist.Zipf{}
	for _, e := range edges {
		if e.from == r.name {
			fkZipf[e.fcol] = dist.NewZipf(rng, keyRange[e.to], 0.5)
		}
	}
	var termZipf *dist.Zipf
	if r.termCol >= 0 {
		termZipf = dist.NewZipf(rng, len(r.terms), 0.9)
	}
	rows := make([]*tuple.Tuple, 0, r.card)
	for i := 0; i < r.card; i++ {
		vals := make([]tuple.Value, len(r.cols))
		for ci, c := range r.cols {
			switch {
			case c.Key:
				vals[ci] = tuple.Int(int64(i))
			case c.Score:
				vals[ci] = tuple.Float(dist.ZipfScore(i, r.card))
			case ci == r.termCol:
				vals[ci] = tuple.String(r.terms[termZipf.Next()])
			case c.Type == tuple.KindInt:
				if z, ok := fkZipf[ci]; ok {
					vals[ci] = tuple.Int(int64(z.Next()))
				} else {
					vals[ci] = tuple.Int(int64(rng.Intn(maxi(r.card, 1))))
				}
			default:
				vals[ci] = tuple.String(fmt.Sprintf("%s_%d", r.name, i))
			}
		}
		rows = append(rows, tuple.New(schema, vals...))
	}
	return relationdb.NewRelation(schema, rows)
}
