package workload

import (
	"fmt"
	"time"

	"repro/internal/batcher"
	"repro/internal/candidates"
	"repro/internal/catalog"
	"repro/internal/cq"
	"repro/internal/dist"
	"repro/internal/relationdb"
	"repro/internal/remotedb"
	"repro/internal/schemagraph"
	"repro/internal/tuple"
)

// Bio builds the Figure 1 bioinformatics-portal scenario: UniProt and
// InterPro protein databases, GeneOntology terms with synonyms, NCBI Entrez
// gene info, bridged by record-linking tables — and the running example's
// three keyword queries:
//
//	KQ1 (user 1): "protein" "plasma membrane" "gene"
//	KQ2 (user 2): "protein" "metabolism"         (concurrent with KQ1)
//	KQ3 (user 1): "membrane" "gene"              (a later refinement of KQ1)
//
// The schema is small enough to inspect by hand yet exercises every code
// path: multi-database pushdown restrictions, score-less probe sources (the
// Entry table), synonym detours (TS), and cross-time overlap (KQ3's CQs are
// subexpressions of KQ1's, Table 3).
func Bio() (*Workload, error) {
	const seed = 0xB10
	rng := dist.New(seed)

	goNames := []string{
		"plasma membrane", "metabolism", "membrane", "nucleus", "transport",
		"kinase activity", "signal transduction", "apoptosis", "binding", "catalysis",
	}
	kinds := []string{"protein", "enzyme", "receptor", "antibody", "carrier"}
	geneKinds := []string{"gene", "pseudogene", "ncrna", "snorna"}

	type relSpec struct {
		db     string
		schema *tuple.Schema
		card   int
		gen    func(r *dist.RNG, i, card int, s *tuple.Schema) *tuple.Tuple
	}
	intC := func(n string) tuple.Column { return tuple.Column{Name: n, Type: tuple.KindInt} }
	keyC := func(n string) tuple.Column { return tuple.Column{Name: n, Type: tuple.KindInt, Key: true} }
	strC := func(n string) tuple.Column { return tuple.Column{Name: n, Type: tuple.KindString} }
	scoC := func(n string) tuple.Column { return tuple.Column{Name: n, Type: tuple.KindFloat, Score: true} }

	zKind := dist.NewZipf(rng, len(kinds), 0.8)
	zGo := dist.NewZipf(rng, len(goNames), 0.7)
	zGene := dist.NewZipf(rng, len(geneKinds), 0.8)

	specs := []relSpec{
		{"uniprot", tuple.NewSchema("UP", keyC("ac"), strC("nam"), strC("kind"), scoC("score")), 3000,
			func(r *dist.RNG, i, card int, s *tuple.Schema) *tuple.Tuple {
				return tuple.New(s, tuple.Int(int64(i)), tuple.String(fmt.Sprintf("uniprot_%d", i)),
					tuple.String(kinds[zKind.Next()]), tuple.Float(dist.ZipfScore(i, card)))
			}},
		{"uniprot", tuple.NewSchema("RL", intC("ac"), intC("ent"), scoC("sim")), 3500,
			func(r *dist.RNG, i, card int, s *tuple.Schema) *tuple.Tuple {
				return tuple.New(s, tuple.Int(int64(r.Intn(3000))), tuple.Int(int64(r.Intn(2000))),
					tuple.Float(dist.ZipfScore(i, card)))
			}},
		{"interpro", tuple.NewSchema("TP", keyC("id"), strC("prot"), strC("kind"), scoC("score")), 3000,
			func(r *dist.RNG, i, card int, s *tuple.Schema) *tuple.Tuple {
				return tuple.New(s, tuple.Int(int64(i)), tuple.String(fmt.Sprintf("tblprot_%d", i)),
					tuple.String(kinds[zKind.Next()]), tuple.Float(dist.ZipfScore(i, card)))
			}},
		{"interpro", tuple.NewSchema("E", keyC("ent"), strC("ename")), 2000, // score-less: probe-only
			func(r *dist.RNG, i, card int, s *tuple.Schema) *tuple.Tuple {
				return tuple.New(s, tuple.Int(int64(i)), tuple.String(fmt.Sprintf("entry_%d", i)))
			}},
		{"interpro", tuple.NewSchema("E2M", intC("ent"), intC("id"), scoC("sim")), 4000,
			func(r *dist.RNG, i, card int, s *tuple.Schema) *tuple.Tuple {
				return tuple.New(s, tuple.Int(int64(r.Intn(2000))), tuple.Int(int64(r.Intn(3000))),
					tuple.Float(dist.ZipfScore(i, card)))
			}},
		{"interpro", tuple.NewSchema("I2G", intC("ent"), intC("gid"), scoC("sim")), 4000,
			func(r *dist.RNG, i, card int, s *tuple.Schema) *tuple.Tuple {
				return tuple.New(s, tuple.Int(int64(r.Intn(2000))), tuple.Int(int64(r.Intn(1500))),
					tuple.Float(dist.ZipfScore(i, card)))
			}},
		{"go", tuple.NewSchema("T", keyC("gid"), strC("name"), scoC("score")), 1500,
			func(r *dist.RNG, i, card int, s *tuple.Schema) *tuple.Tuple {
				return tuple.New(s, tuple.Int(int64(i)), tuple.String(goNames[zGo.Next()]),
					tuple.Float(dist.ZipfScore(i, card)))
			}},
		{"go", tuple.NewSchema("TS", intC("gid"), intC("gid2"), scoC("conf")), 2000,
			func(r *dist.RNG, i, card int, s *tuple.Schema) *tuple.Tuple {
				return tuple.New(s, tuple.Int(int64(r.Intn(1500))), tuple.Int(int64(r.Intn(1500))),
					tuple.Float(dist.ZipfScore(i, card)))
			}},
		{"go", tuple.NewSchema("G2G", intC("gid"), intC("giId"), scoC("sim")), 5000,
			func(r *dist.RNG, i, card int, s *tuple.Schema) *tuple.Tuple {
				return tuple.New(s, tuple.Int(int64(r.Intn(1500))), tuple.Int(int64(r.Intn(4000))),
					tuple.Float(dist.ZipfScore(i, card)))
			}},
		{"entrez", tuple.NewSchema("GI", keyC("giId"), strC("gene"), strC("gkind"), scoC("score")), 4000,
			func(r *dist.RNG, i, card int, s *tuple.Schema) *tuple.Tuple {
				return tuple.New(s, tuple.Int(int64(i)), tuple.String(fmt.Sprintf("gene_%d", i)),
					tuple.String(geneKinds[zGene.Next()]), tuple.Float(dist.ZipfScore(i, card)))
			}},
	}

	stores := map[string]*relationdb.Store{}
	cat := catalog.New()
	sg := schemagraph.New()
	for _, sp := range specs {
		if stores[sp.db] == nil {
			stores[sp.db] = relationdb.NewStore(sp.db)
		}
		dataRNG := dist.New(seed*131 + uint64(len(sp.schema.Name()))*977 + uint64(sp.card))
		rows := make([]*tuple.Tuple, 0, sp.card)
		for i := 0; i < sp.card; i++ {
			rows = append(rows, sp.gen(dataRNG, i, sp.card, sp.schema))
		}
		rel := relationdb.NewRelation(sp.schema, rows)
		stores[sp.db].Put(rel)
		cat.AddRelation(sp.db, rel)
		sg.AddNode(&schemagraph.Node{
			Rel: sp.schema.Name(), DB: sp.db, Schema: sp.schema,
			Authority: 0.2 * rng.Float64(), LinkTable: sp.schema.KeyCol() < 0,
		})
	}
	type e struct {
		f  string
		fc int
		t  string
		tc int
		c  float64
	}
	for _, ed := range []e{
		{"RL", 0, "UP", 0, 0.4}, {"RL", 1, "E", 0, 0.5},
		{"E2M", 1, "TP", 0, 0.4}, {"E2M", 0, "E", 0, 0.5},
		{"I2G", 0, "E", 0, 0.4}, {"I2G", 1, "T", 0, 0.3},
		{"TS", 0, "T", 0, 0.6}, {"TS", 1, "T", 0, 0.7},
		{"G2G", 0, "T", 0, 0.3}, {"G2G", 1, "GI", 0, 0.3},
		{"RL", 1, "I2G", 0, 0.6}, {"E2M", 0, "I2G", 0, 0.6},
	} {
		sg.AddEdge(&schemagraph.Edge{From: ed.f, To: ed.t, FromCol: ed.fc, ToCol: ed.tc, Cost: ed.c})
	}
	sg.IndexTerm("protein", schemagraph.Match{Rel: "TP", Col: 2, Score: 0.9})
	sg.IndexTerm("protein", schemagraph.Match{Rel: "UP", Col: 2, Score: 0.85})
	sg.IndexTerm("plasma membrane", schemagraph.Match{Rel: "T", Col: 1, Score: 0.95})
	sg.IndexTerm("membrane", schemagraph.Match{Rel: "T", Col: 1, Score: 0.9})
	sg.IndexTerm("metabolism", schemagraph.Match{Rel: "T", Col: 1, Score: 0.95})
	sg.IndexTerm("gene", schemagraph.Match{Rel: "GI", Col: 2, Score: 0.9})

	var dbs []*remotedb.DB
	for _, name := range []string{"uniprot", "interpro", "go", "entrez"} {
		dbs = append(dbs, remotedb.New(stores[name]))
	}
	w := &Workload{Name: "bio", Fleet: remotedb.NewFleet(dbs...), Catalog: cat, Schema: sg}

	cfg := candidates.Config{
		Graph:             sg,
		Catalog:           cat,
		MatchesPerKeyword: 2,
		MaxAtoms:          7,
		MaxPathLen:        4,
		PathVariants:      2,
		MaxCQs:            8,
		Family:            candidates.FamilyQSystem,
	}
	w.Gen = cfg
	kqs := []struct {
		id       string
		keywords []string
		at       time.Duration
		user     uint64
	}{
		{"UQ1", []string{"protein", "plasma membrane", "gene"}, 0, 1},
		{"UQ2", []string{"protein", "metabolism"}, 1 * time.Second, 2},
		{"UQ3", []string{"membrane", "gene"}, 20 * time.Second, 1},
	}
	for _, kq := range kqs {
		uq, err := candidates.Generate(cfg, kq.id, kq.keywords, 50, dist.New(kq.user))
		if err != nil {
			return nil, fmt.Errorf("workload: bio %s: %w", kq.id, err)
		}
		w.Submissions = append(w.Submissions, batcher.Submission{At: kq.at, UQ: uq})
	}
	return w, nil
}

// BioUQ regenerates one of the scenario's user queries with a custom id and
// k — used by examples that pose ad hoc variations.
func BioUQ(w *Workload, id string, keywords []string, k int, userSeed uint64) (*cq.UQ, error) {
	cfg := candidates.Config{
		Graph:             w.Schema,
		Catalog:           w.Catalog,
		MatchesPerKeyword: 2,
		MaxAtoms:          7,
		MaxPathLen:        4,
		PathVariants:      2,
		MaxCQs:            8,
		Family:            candidates.FamilyQSystem,
	}
	return candidates.Generate(cfg, id, keywords, k, dist.New(userSeed))
}
