package workload

import (
	"fmt"
	"time"

	"repro/internal/batcher"
	"repro/internal/candidates"
	"repro/internal/catalog"
	"repro/internal/cq"
	"repro/internal/dist"
	"repro/internal/relationdb"
	"repro/internal/remotedb"
	"repro/internal/schemagraph"
	"repro/internal/tuple"
)

// GUSScale sizes a synthetic instance. The paper populated 20,000–100,000
// tuples per relation on a dedicated server; the default here is scaled so
// the full experiment suite runs in seconds while preserving every ratio that
// drives the results (Zipf skew, fanouts, matchable fraction).
type GUSScale struct {
	// EntityMinRows/EntityMaxRows bound per-entity-table cardinalities.
	EntityMinRows, EntityMaxRows int
	// RelRowsFactor sizes relationship tables relative to their endpoints.
	RelRowsFactor float64
	// TermsPerEntity is how many vocabulary terms each matchable entity
	// table's content draws from.
	TermsPerEntity int
}

// GUSScaleDefault is the test/bench scale, sized so that per-query virtual
// response times land in the paper's seconds range — comparable to the ≤6 s
// inter-arrival gaps, which is the regime where cross-time state reuse and
// shared-graph contention balance as in §7.1/§7.3.
func GUSScaleDefault() GUSScale {
	return GUSScale{EntityMinRows: 400, EntityMaxRows: 1000, RelRowsFactor: 0.8, TermsPerEntity: 3}
}

// GUSScalePaper matches §7's 20k–100k tuples per relation.
func GUSScalePaper() GUSScale {
	return GUSScale{EntityMinRows: 20000, EntityMaxRows: 100000, RelRowsFactor: 1.0, TermsPerEntity: 3}
}

// GUS schema shape: 358 relations as in the Genomics Unified Schema [21].
const (
	gusEntities  = 150
	gusRelTables = 208      // 149 spanning-tree links + 59 extra links
	gusTopoSeed  = 0x675553 // "GUS"
)

// gusTopology describes the deterministic schema (shared by all instances).
type gusTopology struct {
	matchable []bool
	termsOf   [][]string
	// links[j] = (a, b, costA, costB) connecting entity a and b via R_j.
	links [][2]int
	costs [][2]float64
	auth  []float64
}

func buildGUSTopology(scale GUSScale) *gusTopology {
	rng := dist.New(gusTopoSeed)
	t := &gusTopology{
		matchable: make([]bool, gusEntities),
		termsOf:   make([][]string, gusEntities),
		links:     make([][2]int, gusRelTables),
		costs:     make([][2]float64, gusRelTables),
		auth:      make([]float64, gusEntities),
	}
	termZipf := dist.NewZipf(rng, len(bioTerms), 1.0)
	var matchIdx []int
	for i := 0; i < gusEntities; i++ {
		t.matchable[i] = i%5 < 2 // 40% of entity tables carry text + IR score
		t.auth[i] = 0.5 * rng.Float64()
		if t.matchable[i] {
			matchIdx = append(matchIdx, i)
			seen := map[string]bool{}
			for len(t.termsOf[i]) < scale.TermsPerEntity {
				term := bioTerms[termZipf.Next()]
				if !seen[term] {
					seen[term] = true
					t.termsOf[i] = append(t.termsOf[i], term)
				}
			}
		}
	}
	// Spanning tree first (connectivity), then extra links. Text-bearing
	// (matchable) entities are never directly adjacent: like Figure 1's
	// schema, where Term/GeneInfo/TblProtein link through Entry and
	// record-link tables, every candidate network must traverse at least one
	// score-less entity — the relations that become random-access sources
	// (§5.1.1) and give Figure 8 its probe time.
	var plainIdx []int
	for i := 0; i < gusEntities; i++ {
		if !t.matchable[i] {
			plainIdx = append(plainIdx, i)
		}
	}
	hub := dist.NewZipf(rng, gusEntities, 0.7)
	toPlainBelow := func(b, limit int) int {
		for d := 0; d < gusEntities; d++ {
			if b-d >= 0 && b-d < limit && !t.matchable[b-d] {
				return b - d
			}
			if b+d < limit && !t.matchable[b+d] {
				return b + d
			}
		}
		return b
	}
	for j := 0; j < gusRelTables; j++ {
		var a, b int
		switch {
		case j < gusEntities-1:
			a = j + 1
			b = hub.Next() % (j + 1)
			if t.matchable[a] && t.matchable[b] {
				b = toPlainBelow(b, j+1)
			}
		case rng.Float64() < 0.45:
			// Parallel link: a second relationship table between an existing
			// pair, like Figure 1's Term_Syn beside the direct Gene2GO⋈Term
			// join. Candidate networks then differ by swapping one linking
			// segment while sharing the rest identically (Tables 1 and 3) —
			// the overlap structure all the sharing machinery exploits.
			dup := t.links[rng.Intn(j)]
			a, b = dup[0], dup[1]
		default:
			a = matchIdx[rng.Intn(len(matchIdx))]
			b = plainIdx[rng.Intn(len(plainIdx))]
		}
		t.links[j] = [2]int{a, b}
		t.costs[j] = [2]float64{0.2 + 1.3*rng.Float64(), 0.2 + 1.3*rng.Float64()}
	}
	return t
}

func gusEntityName(i int) string { return fmt.Sprintf("GUS_E%03d", i) }
func gusRelName(j int) string    { return fmt.Sprintf("GUS_R%03d", j) }

func gusEntitySchema(i int, matchable bool) *tuple.Schema {
	if matchable {
		return tuple.NewSchema(gusEntityName(i),
			tuple.Column{Name: "eid", Type: tuple.KindInt, Key: true},
			tuple.Column{Name: "name", Type: tuple.KindString},
			tuple.Column{Name: "term", Type: tuple.KindString},
			tuple.Column{Name: "score", Type: tuple.KindFloat, Score: true},
		)
	}
	return tuple.NewSchema(gusEntityName(i),
		tuple.Column{Name: "eid", Type: tuple.KindInt, Key: true},
		tuple.Column{Name: "name", Type: tuple.KindString},
		tuple.Column{Name: "attr", Type: tuple.KindInt},
	)
}

func gusRelSchema(j int) *tuple.Schema {
	return tuple.NewSchema(gusRelName(j),
		tuple.Column{Name: "a_id", Type: tuple.KindInt},
		tuple.Column{Name: "b_id", Type: tuple.KindInt},
		tuple.Column{Name: "sim", Type: tuple.KindFloat, Score: true},
	)
}

// entityCard derives an entity table's cardinality deterministically from
// the instance seed, without materialising the table.
func entityCard(instance, i int, scale GUSScale) int {
	rng := dist.New(uint64(instance)*1_000_003 + uint64(i)*7 + 13)
	return scale.EntityMinRows + rng.Intn(scale.EntityMaxRows-scale.EntityMinRows+1)
}

// GUS builds synthetic instance 1..4 (any positive integer works; the paper
// used four).
func GUS(instance int, scale GUSScale) (*Workload, error) {
	topo := buildGUSTopology(scale)
	store := relationdb.NewStore("gus")
	cat := catalog.New()
	sg := schemagraph.New()

	// Declare entity tables: lazy data, upfront stats and graph nodes.
	for i := 0; i < gusEntities; i++ {
		i := i
		schema := gusEntitySchema(i, topo.matchable[i])
		card := entityCard(instance, i, scale)
		store.PutLazy(schema.Name(), func() *relationdb.Relation {
			return materialiseGUSEntity(instance, i, topo, scale, schema)
		})
		st := &catalog.RelStats{
			Name: schema.Name(), DB: "gus", Card: float64(card),
			Distinct: distinctsForEntity(schema, card, len(topo.termsOf[i])),
			MaxScore: 1.0, HasScore: topo.matchable[i], Schema: schema,
		}
		cat.AddStats(st)
		sg.AddNode(&schemagraph.Node{Rel: schema.Name(), DB: "gus", Schema: schema, Authority: topo.auth[i]})
	}
	// Relationship tables.
	for j := 0; j < gusRelTables; j++ {
		j := j
		schema := gusRelSchema(j)
		a, b := topo.links[j][0], topo.links[j][1]
		cardA, cardB := entityCard(instance, a, scale), entityCard(instance, b, scale)
		card := int(scale.RelRowsFactor * float64(cardA+cardB) / 2)
		store.PutLazy(schema.Name(), func() *relationdb.Relation {
			return materialiseGUSRel(instance, j, cardA, cardB, card, schema)
		})
		cat.AddStats(&catalog.RelStats{
			Name: schema.Name(), DB: "gus", Card: float64(card),
			Distinct: []float64{minf(card, cardA), minf(card, cardB), float64(card)},
			MaxScore: 1.0, HasScore: true, Schema: schema,
		})
		sg.AddNode(&schemagraph.Node{Rel: schema.Name(), DB: "gus", Schema: schema, LinkTable: true})
		sg.AddEdge(&schemagraph.Edge{From: schema.Name(), To: gusEntityName(a), FromCol: 0, ToCol: 0, Cost: topo.costs[j][0]})
		sg.AddEdge(&schemagraph.Edge{From: schema.Name(), To: gusEntityName(b), FromCol: 1, ToCol: 0, Cost: topo.costs[j][1]})
	}
	// Keyword index over matchable entities' term content.
	idxRNG := dist.New(gusTopoSeed + 7)
	for i := 0; i < gusEntities; i++ {
		if !topo.matchable[i] {
			continue
		}
		for _, term := range topo.termsOf[i] {
			sg.IndexTerm(term, schemagraph.Match{
				Rel: gusEntityName(i), Col: 2,
				Score: 0.6 + 0.4*idxRNG.Float64(),
			})
		}
	}

	fleet := remotedb.NewFleet(remotedb.New(store))
	w := &Workload{
		Name:    fmt.Sprintf("gus-%d", instance),
		Fleet:   fleet,
		Catalog: cat,
		Schema:  sg,
	}
	if err := generateGUSQueries(w, instance); err != nil {
		return nil, err
	}
	return w, nil
}

func distinctsForEntity(s *tuple.Schema, card, terms int) []float64 {
	d := make([]float64, s.NumCols())
	for i := range d {
		d[i] = float64(card)
	}
	if idx, ok := s.Index("term"); ok {
		d[idx] = float64(maxi(terms, 1))
	}
	if idx, ok := s.Index("attr"); ok {
		d[idx] = float64(maxi(card/10, 1))
	}
	return d
}

func minf(a, b int) float64 {
	if a < b {
		return float64(a)
	}
	return float64(b)
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func materialiseGUSEntity(instance, i int, topo *gusTopology, scale GUSScale, schema *tuple.Schema) *relationdb.Relation {
	card := entityCard(instance, i, scale)
	rng := dist.New(uint64(instance)*2_000_003 + uint64(i)*31 + 7)
	rows := make([]*tuple.Tuple, 0, card)
	if topo.matchable[i] {
		termZipf := dist.NewZipf(rng, len(topo.termsOf[i]), 0.9)
		for r := 0; r < card; r++ {
			rows = append(rows, tuple.New(schema,
				tuple.Int(int64(r)),
				tuple.String(fmt.Sprintf("E%d_%d", i, r)),
				tuple.String(topo.termsOf[i][termZipf.Next()]),
				tuple.Float(dist.ZipfScore(r, card)),
			))
		}
	} else {
		for r := 0; r < card; r++ {
			rows = append(rows, tuple.New(schema,
				tuple.Int(int64(r)),
				tuple.String(fmt.Sprintf("E%d_%d", i, r)),
				tuple.Int(int64(rng.Intn(maxi(card/10, 1)))),
			))
		}
	}
	return relationdb.NewRelation(schema, rows)
}

func materialiseGUSRel(instance, j, cardA, cardB, card int, schema *tuple.Schema) *relationdb.Relation {
	rng := dist.New(uint64(instance)*3_000_017 + uint64(j)*97 + 3)
	// Zipfian join keys (§7): popular entities link more often. The exponent
	// is mild so most probe keys stay distinct — key/foreign-key joins over
	// large key spaces are what make random-access time a major fraction of
	// execution (Figure 8).
	za := dist.NewZipf(rng, cardA, 0.2)
	zb := dist.NewZipf(rng, cardB, 0.2)
	rows := make([]*tuple.Tuple, 0, card)
	for r := 0; r < card; r++ {
		rows = append(rows, tuple.New(schema,
			tuple.Int(int64(za.Next())),
			tuple.Int(int64(zb.Next())),
			tuple.Float(dist.ZipfScore(r, card)),
		))
	}
	return relationdb.NewRelation(schema, rows)
}

// generateGUSQueries draws the 15 two-keyword user queries via Zipf over the
// vocabulary (§7), expanding each into ≤20 conjunctive queries.
func generateGUSQueries(w *Workload, instance int) error {
	cfg := candidates.Config{
		Graph:             w.Schema,
		Catalog:           w.Catalog,
		MatchesPerKeyword: 3,
		MaxAtoms:          7,
		MaxPathLen:        6,
		PathVariants:      5,
		MaxCQs:            20,
		Family:            candidates.FamilyQSystem,
	}
	w.Gen = cfg
	terms := w.Schema.Terms()
	qrng := dist.New(gusTopoSeed + 99)
	kwZipf := dist.NewZipf(qrng, len(terms), 1.25)
	arrRNG := dist.New(uint64(instance)*17 + 5)
	arrivals := arrivalTimes(15, 6*time.Second, arrRNG.Float64)

	for i := 1; i <= 15; i++ {
		var uq *cq.UQ
		for attempt := 0; attempt < 60; attempt++ {
			k1 := terms[kwZipf.Next()]
			k2 := terms[kwZipf.Next()]
			if k1 == k2 {
				continue
			}
			userRNG := dist.New(uint64(instance)*1000 + uint64(i))
			got, err := candidates.Generate(cfg, fmt.Sprintf("UQ%d", i), []string{k1, k2}, 50, userRNG)
			if err == nil && len(got.CQs) >= 2 {
				uq = got
				break
			}
		}
		if uq == nil {
			return fmt.Errorf("workload: could not generate GUS user query %d", i)
		}
		w.Submissions = append(w.Submissions, batcher.Submission{At: arrivals[i-1], UQ: uq})
	}
	return nil
}
