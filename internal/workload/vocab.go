package workload

// bioTerms is the "list of common biological terms" (§7) query keywords and
// tuple content are drawn from; ordering matters, as Zipfian draws make the
// earliest terms the most popular (like "protein" in the paper's anecdote).
var bioTerms = []string{
	"protein", "gene", "membrane", "kinase", "receptor",
	"plasma", "metabolism", "transcription", "binding", "enzyme",
	"transport", "signal", "nucleus", "mitochondria", "ribosome",
	"pathway", "domain", "homolog", "ligand", "antibody",
	"genome", "mutation", "expression", "regulation", "synthesis",
	"apoptosis", "cytoplasm", "chromosome", "peptide", "hormone",
	"catalysis", "oxidase", "reductase", "transferase", "hydrolase",
	"isomerase", "polymerase", "helicase", "channel", "motif",
}

// speciesTerms seed the Pfam/InterPro proxy's sequence species column.
var speciesTerms = []string{
	"human", "mouse", "yeast", "zebrafish", "drosophila",
	"arabidopsis", "celegans", "rat", "chicken", "xenopus",
	"plasmodium", "ecoli", "bsubtilis", "danio", "bovine",
}
