package workload

import (
	"testing"
	"time"
)

func TestBioWorkloadShape(t *testing.T) {
	w, err := Bio()
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Submissions) != 3 {
		t.Fatalf("bio has %d submissions", len(w.Submissions))
	}
	// Figure 1's relations must all exist across four databases.
	for _, rel := range []string{"UP", "RL", "TP", "E", "E2M", "I2G", "T", "TS", "G2G", "GI"} {
		if w.Schema.Node(rel) == nil {
			t.Errorf("missing relation %s", rel)
		}
		if _, err := w.Catalog.Relation(rel); err != nil {
			t.Errorf("missing stats for %s", rel)
		}
	}
	for _, db := range []string{"uniprot", "interpro", "go", "entrez"} {
		if _, err := w.Fleet.DB(db); err != nil {
			t.Errorf("missing database %s", db)
		}
	}
	// KQ3 arrives after KQ1/KQ2 (refinement over time, §2.3).
	if !(w.Submissions[0].At < w.Submissions[2].At) {
		t.Error("KQ3 must arrive later")
	}
	// The scenario's CQ5/CQ6 relationship (Table 3): UQ3's CQs must be
	// subexpressions of UQ1's atom sets.
	uq1rels := map[string]bool{}
	for _, q := range w.Submissions[0].UQ.CQs {
		for _, a := range q.Atoms {
			uq1rels[a.Rel] = true
		}
	}
	for _, q := range w.Submissions[2].UQ.CQs {
		for _, a := range q.Atoms {
			if !uq1rels[a.Rel] {
				t.Logf("note: UQ3 uses %s outside UQ1's relation set", a.Rel)
			}
		}
	}
}

func TestGUSWorkloadShape(t *testing.T) {
	w, err := GUS(1, GUSScaleDefault())
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Schema.Nodes()) != 358 {
		t.Errorf("GUS declares %d relations, want 358", len(w.Schema.Nodes()))
	}
	if len(w.Submissions) != 15 {
		t.Fatalf("GUS has %d user queries, want 15", len(w.Submissions))
	}
	for i, s := range w.Submissions {
		if len(s.UQ.Keywords) != 2 {
			t.Errorf("UQ%d keywords = %v", i+1, s.UQ.Keywords)
		}
		if len(s.UQ.CQs) < 2 || len(s.UQ.CQs) > 20 {
			t.Errorf("UQ%d has %d CQs (want 2..20)", i+1, len(s.UQ.CQs))
		}
		if s.UQ.K != 50 {
			t.Errorf("UQ%d k = %d", i+1, s.UQ.K)
		}
		for _, q := range s.UQ.CQs {
			if err := q.Validate(); err != nil {
				t.Errorf("UQ%d %s: %v", i+1, q.ID, err)
			}
		}
		if i > 0 {
			gap := s.At - w.Submissions[i-1].At
			if gap <= 0 || gap > 6*time.Second {
				t.Errorf("arrival gap %v out of (0, 6s]", gap)
			}
		}
	}
}

func TestGUSInstancesDiffer(t *testing.T) {
	w1, err := GUS(1, GUSScaleDefault())
	if err != nil {
		t.Fatal(err)
	}
	w2, err := GUS(2, GUSScaleDefault())
	if err != nil {
		t.Fatal(err)
	}
	// Same schema, different data: compare one touched relation's rows.
	rel := w1.Submissions[0].UQ.CQs[0].Atoms[0].Rel
	r1 := w1.Fleet.MustDB("gus").Store().MustRelation(rel)
	r2 := w2.Fleet.MustDB("gus").Store().MustRelation(rel)
	if r1.Cardinality() == r2.Cardinality() {
		same := true
		for i := 0; i < r1.Cardinality() && i < 20; i++ {
			if r1.Row(i).Identity() != r2.Row(i).Identity() {
				same = false
			}
		}
		if same {
			t.Error("instances 1 and 2 generated identical data")
		}
	}
}

func TestGUSDeterministic(t *testing.T) {
	a, err := GUS(1, GUSScaleDefault())
	if err != nil {
		t.Fatal(err)
	}
	b, err := GUS(1, GUSScaleDefault())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Submissions {
		if a.Submissions[i].UQ.CQs[0].String() != b.Submissions[i].UQ.CQs[0].String() {
			t.Fatal("GUS generation nondeterministic")
		}
		if a.Submissions[i].At != b.Submissions[i].At {
			t.Fatal("arrival times nondeterministic")
		}
	}
}

func TestPfamWorkloadShape(t *testing.T) {
	w, err := Pfam(PfamScaleDefault())
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Submissions) != 15 {
		t.Fatalf("pfam has %d user queries", len(w.Submissions))
	}
	for i, s := range w.Submissions {
		if len(s.UQ.CQs) < 2 || len(s.UQ.CQs) > 4 {
			t.Errorf("UQ%d has %d CQs (want 2..4, paper: 4)", i+1, len(s.UQ.CQs))
		}
	}
	// Two databases with the mapping table in pfam.
	if _, err := w.Fleet.DB("pfam"); err != nil {
		t.Error("missing pfam db")
	}
	if _, err := w.Fleet.DB("interpro"); err != nil {
		t.Error("missing interpro db")
	}
	if !w.Fleet.MustDB("pfam").Store().Has("pfam2interpro") {
		t.Error("missing mapping table")
	}
	// The protein table is the probe-only (score-less) source.
	st, err := w.Catalog.Relation("protein")
	if err != nil || st.HasScore {
		t.Error("protein should be score-less")
	}
}

func TestPrefix(t *testing.T) {
	w, err := GUS(1, GUSScaleDefault())
	if err != nil {
		t.Fatal(err)
	}
	p := w.Prefix(5)
	if len(p.Submissions) != 5 || len(w.Submissions) != 15 {
		t.Error("prefix wrong")
	}
	if p.Fleet != w.Fleet {
		t.Error("prefix must share the fleet")
	}
	if got := w.Prefix(99); len(got.Submissions) != 15 {
		t.Error("over-long prefix should clamp")
	}
}

func TestBioUQHelper(t *testing.T) {
	w, err := Bio()
	if err != nil {
		t.Fatal(err)
	}
	uq, err := BioUQ(w, "X1", []string{"metabolism", "gene"}, 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if uq.ID != "X1" || uq.K != 7 || len(uq.CQs) == 0 {
		t.Errorf("BioUQ: %+v", uq)
	}
}
