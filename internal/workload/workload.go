// Package workload generates the paper's two experimental datasets and query
// suites (§7):
//
//   - the GUS synthetic workload — the 358-relation Genomics Unified Schema
//     [21] populated with seeded random instances, Zipfian scores, join keys
//     and score-function coefficients, and 15 two-keyword user queries
//     yielding up to 20 conjunctive queries each;
//   - a Pfam/InterPro proxy — the documented protein-family schema populated
//     with significantly larger synthetic data, MySQL-style text-match
//     scores plus a publication-year score attribute, and 15 user queries of
//     4 conjunctive queries each (§7.5);
//   - the Figure 1 bioinformatics portal schema (UniProt / InterPro /
//     GeneOntology / NCBI Entrez) used by the worked examples of §1–§2.
//
// Relations materialise lazily: the schema declares all 358 GUS relations but
// only those a run touches are populated, with catalog statistics registered
// from the generator's parameters (score maxima are registered as the
// guaranteed bound 1.0, keeping thresholds sound).
package workload

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/batcher"
	"repro/internal/candidates"
	"repro/internal/catalog"
	"repro/internal/cq"
	"repro/internal/remotedb"
	"repro/internal/schemagraph"
)

// Workload bundles everything a run needs.
type Workload struct {
	// Name identifies the workload ("gus-1" … "gus-4", "pfam", "bio").
	Name string
	// Fleet holds the simulated remote databases.
	Fleet *remotedb.Fleet
	// Catalog holds the registered statistics.
	Catalog *catalog.Catalog
	// Schema is the schema graph with its keyword index.
	Schema *schemagraph.Graph
	// Submissions is the query suite with arrival times.
	Submissions []batcher.Submission
	// Gen is the candidate-generation configuration the bundled query suite
	// was built with (path lengths, match fan-out, scoring family), so that
	// sessions and services posing ad hoc searches over this workload expand
	// them the same way. Zero for custom-built workloads; Graph and Catalog
	// are (re)filled at the point of use.
	Gen candidates.Config
}

// ByName loads a bundled workload by its command-line name: "bio", "gus"
// (with its instance number) or "pfam", at the default scales.
func ByName(name string, instance int) (*Workload, error) {
	switch name {
	case "bio":
		return Bio()
	case "gus":
		return GUS(instance, GUSScaleDefault())
	case "pfam":
		return Pfam(PfamScaleDefault())
	default:
		return nil, fmt.Errorf("unknown workload %q (want bio, gus or pfam)", name)
	}
}

// UQs returns the user queries in arrival order.
func (w *Workload) UQs() []*cq.UQ {
	out := make([]*cq.UQ, len(w.Submissions))
	for i, s := range w.Submissions {
		out[i] = s.UQ
	}
	return out
}

// Prefix returns a copy of the workload truncated to the first n submissions
// (Figure 10 compares the first 5 user queries against all 15).
func (w *Workload) Prefix(n int) *Workload {
	if n > len(w.Submissions) {
		n = len(w.Submissions)
	}
	cp := *w
	cp.Submissions = w.Submissions[:n]
	return &cp
}

// OverlapVariants derives the overlapping topic variants of a multi-keyword
// search, the workload shard placement is measured on (benchrun's routing
// profile and loadgen's -overlap pool share these rules): the set minus its
// last keyword — textually different but heavily overlapping — and the set
// with a case-folded duplicate of its first keyword — canonically identical
// to the base, which pre-canonicalization routers scattered. Variants of one
// topic drive the same source relations, so every cross-shard split re-pays
// remote reads the resident shard already did. Returns nil for sets of
// fewer than two keywords.
func OverlapVariants(base []string) [][]string {
	if len(base) < 2 {
		return nil
	}
	drop := append([]string(nil), base[:len(base)-1]...)
	dup := append(append([]string(nil), base...), strings.ToUpper(base[0]))
	return [][]string{drop, dup}
}

// arrivalTimes spaces n arrivals with random gaps of up to maxGap ("posed
// within 6 seconds of one another", §7). Gaps are drawn in [0.3, 1.0]·maxGap
// so the suite spreads over the paper's ~80-second horizon rather than
// degenerating into one burst; gaps are drawn in [0.5, 1.0]·maxGap.
func arrivalTimes(n int, maxGap time.Duration, rnd func() float64) []time.Duration {
	out := make([]time.Duration, n)
	t := time.Duration(0)
	for i := 0; i < n; i++ {
		out[i] = t
		t += time.Duration((0.5 + 0.5*rnd()) * float64(maxGap))
	}
	return out
}
