package plangraph

import (
	"strings"
	"testing"

	"repro/internal/cq"
	"repro/internal/scoring"
)

func expr(t *testing.T, rels ...string) *cq.Expr {
	t.Helper()
	atoms := make([]*cq.Atom, len(rels))
	for i, r := range rels {
		atoms[i] = &cq.Atom{Rel: r, DB: "db", Args: []cq.Term{cq.V(i), cq.V(i + 1)}}
	}
	w := make([]float64, len(rels))
	for i := range w {
		w[i] = 1
	}
	q := &cq.CQ{ID: "q", Atoms: atoms, Model: scoring.QSystem(0, w)}
	idx := make([]int, len(rels))
	for i := range idx {
		idx[i] = i
	}
	e, _ := q.SubExpr(idx)
	return e
}

func TestNodeKeyEncodesKindAndScope(t *testing.T) {
	g := New("")
	e := expr(t, "A")
	ks := g.NodeKey(SourceStream, e.Key())
	kp := g.NodeKey(SourceProbe, e.Key())
	kj := g.NodeKey(Join, e.Key())
	if ks == kp || ks == kj || kp == kj {
		t.Error("kinds must produce distinct keys")
	}
	scoped := New("CQ7")
	if scoped.NodeKey(SourceStream, e.Key()) == ks {
		t.Error("scope must namespace keys")
	}
}

func TestEnsureNodeDedup(t *testing.T) {
	g := New("")
	e := expr(t, "A")
	n1 := g.EnsureNode(SourceStream, e, "db")
	n2 := g.EnsureNode(SourceStream, e, "db")
	if n1 != n2 {
		t.Error("same kind+expr must dedup")
	}
	n3 := g.EnsureNode(SourceProbe, e, "db")
	if n3 == n1 {
		t.Error("different kinds must not dedup")
	}
	if len(g.Nodes()) != 2 {
		t.Errorf("nodes = %d", len(g.Nodes()))
	}
}

// buildJoinGraph wires A ⋈ B into a join node with endpoint.
func buildJoinGraph(t *testing.T) (*Graph, *Node, *cq.CQ) {
	t.Helper()
	g := New("")
	q := &cq.CQ{ID: "CQ1", UQID: "UQ1", Atoms: []*cq.Atom{
		{Rel: "A", DB: "db", Args: []cq.Term{cq.V(0), cq.V(1)}},
		{Rel: "B", DB: "db", Args: []cq.Term{cq.V(1), cq.V(2)}},
	}, Model: scoring.Discover(2)}
	full, mapping := q.SubExpr([]int{0, 1})
	ea, ma := q.SubExpr([]int{0})
	eb, mb := q.SubExpr([]int{1})
	na := g.EnsureNode(SourceStream, ea, "db")
	nb := g.EnsureNode(SourceStream, eb, "db")
	nj := g.EnsureNode(Join, full, "")
	// AtomMap: source atom 0 -> position of its CQ atom in full's mapping.
	inv := map[int]int{}
	for p, ai := range mapping {
		inv[ai] = p
	}
	g.Connect(na, nj, []int{inv[ma[0]]}, false)
	g.Connect(nb, nj, []int{inv[mb[0]]}, false)
	g.SetEndpoint(q, nj, mapping)
	return g, nj, q
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	g, _, _ := buildJoinGraph(t)
	if err := g.Validate(); err != nil {
		t.Fatalf("well-formed graph rejected: %v", err)
	}
	st := g.Stats()
	if st.Sources != 2 || st.Joins != 1 || st.Endpoints != 1 {
		t.Errorf("stats = %+v", st)
	}
	if !strings.Contains(g.Dump(), "endpoint CQ1") {
		t.Error("dump missing endpoint")
	}
}

func TestValidateRejectsSingleInputJoin(t *testing.T) {
	g := New("")
	e := expr(t, "A", "B")
	na := g.EnsureNode(SourceStream, expr(t, "A"), "db")
	nj := g.EnsureNode(Join, e, "")
	g.Connect(na, nj, []int{0}, false)
	if err := g.Validate(); err == nil {
		t.Error("join with one input accepted")
	}
}

func TestValidateRejectsDoubleCoverage(t *testing.T) {
	g := New("")
	e := expr(t, "A", "A2")
	e.Atoms[1].Rel = "A" // force same relation at both positions
	na := g.EnsureNode(SourceStream, expr(t, "A"), "db")
	nj := g.EnsureNode(Join, e, "")
	g.Connect(na, nj, []int{0}, false)
	g.Connect(na, nj, []int{0}, false) // both map to atom 0
	if err := g.Validate(); err == nil {
		t.Error("double atom coverage accepted")
	}
}

func TestValidateRejectsAllProbeJoin(t *testing.T) {
	g := New("")
	e := expr(t, "A", "B")
	na := g.EnsureNode(SourceProbe, expr(t, "A"), "db")
	nb := g.EnsureNode(SourceProbe, expr(t, "B"), "db")
	nj := g.EnsureNode(Join, e, "")
	g.Connect(na, nj, []int{0}, true)
	g.Connect(nb, nj, []int{1}, true)
	if err := g.Validate(); err == nil {
		t.Error("probe-only join accepted")
	}
}

func TestSplitDetection(t *testing.T) {
	g, _, _ := buildJoinGraph(t)
	// Add a second consumer of A's source.
	var na *Node
	for _, n := range g.Nodes() {
		if n.Kind == SourceStream && strings.Contains(n.Key, "A@db") {
			na = n
		}
	}
	e2 := expr(t, "A", "C")
	nj2 := g.EnsureNode(Join, e2, "")
	nc := g.EnsureNode(SourceStream, expr(t, "C"), "db")
	g.Connect(na, nj2, []int{0}, false)
	g.Connect(nc, nj2, []int{1}, false)
	if !na.IsSplit() {
		t.Error("node with two consumers should be a split")
	}
	if g.Stats().Splits != 1 {
		t.Errorf("splits = %d", g.Stats().Splits)
	}
}

func TestEndpointManagement(t *testing.T) {
	g, nj, q := buildJoinGraph(t)
	if g.Endpoint(q.ID) == nil || !g.HasEndpointOn(nj) {
		t.Error("endpoint lookup failed")
	}
	g.RemoveEndpoint(q.ID)
	if g.Endpoint(q.ID) != nil || g.HasEndpointOn(nj) {
		t.Error("endpoint removal failed")
	}
}

func TestDetachAndRemove(t *testing.T) {
	g, nj, q := buildJoinGraph(t)
	g.RemoveEndpoint(q.ID)
	g.Detach(nj)
	for _, n := range g.Nodes() {
		if n == nj {
			t.Error("node still present after Detach")
		}
		if len(n.Consumers) != 0 {
			t.Error("parent retains edge to removed node")
		}
	}
}

func TestPruneOrphansRespectsEligibility(t *testing.T) {
	g, nj, q := buildJoinGraph(t)
	g.RemoveEndpoint(q.ID)
	// Not eligible: survives.
	g.PruneOrphans(map[*Node]bool{})
	if g.Node(nj.Key) == nil {
		t.Fatal("ineligible orphan pruned")
	}
	// Eligible: removed, and sources keep no consumers.
	g.PruneOrphans(map[*Node]bool{nj: true})
	if g.Node(nj.Key) != nil {
		t.Fatal("eligible orphan not pruned")
	}
	for _, n := range g.Nodes() {
		if len(n.Consumers) != 0 {
			t.Error("dangling consumer after prune")
		}
	}
}

func TestCycleDetection(t *testing.T) {
	g := New("")
	e1 := expr(t, "A", "B")
	e2 := expr(t, "B", "C")
	n1 := g.EnsureNode(Join, e1, "")
	n2 := g.EnsureNode(Join, e2, "")
	g.Connect(n1, n2, []int{0, 1}, false)
	// Force a cycle by manual edge surgery.
	g.Connect(n2, n1, []int{0, 1}, false)
	if err := g.checkAcyclic(); err == nil {
		t.Error("cycle not detected")
	}
}
