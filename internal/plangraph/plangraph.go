// Package plangraph defines the query plan graph of §4: a DAG whose nodes
// compute canonical subexpressions and whose edges carry pipelined rows.
// Source nodes wrap streaming or random-access inputs; join nodes are m-joins
// (STeM eddies); fan-out — a node with several consumers — is the paper's
// split operator; per-CQ endpoints feed the rank-merge operator of each user
// query. Node identity is the canonical expression key, which is what makes
// grafting (§6.2) and cross-batch reuse possible: a new query's plan matches
// an old node exactly when they compute the same expression.
package plangraph

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/costmodel"
	"repro/internal/cq"
)

// Kind classifies plan nodes.
type Kind int

const (
	// SourceStream reads a (possibly pushed-down) expression in score order.
	SourceStream Kind = iota
	// SourceProbe wraps a random-access source (probe-only; never drives).
	SourceProbe
	// Join is an m-join over its input edges.
	Join
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case SourceStream:
		return "stream"
	case SourceProbe:
		return "probe"
	default:
		return "mjoin"
	}
}

// Edge connects a producer node to a consumer join node.
type Edge struct {
	From, To *Node
	// InputIdx is the position of this edge among To's inputs.
	InputIdx int
	// AtomMap maps From.Expr atom positions to To.Expr atom positions.
	AtomMap []int
	// Probe marks the edge as a probe module: rows of From are fetched by
	// key on demand rather than streamed through.
	Probe bool
}

// Node is one operator in the plan graph.
type Node struct {
	// ID is a stable creation sequence number (deterministic ordering).
	ID int
	// Key identifies the node: scope-prefixed canonical expression key.
	Key string
	// Expr is the expression the node computes; row parts align with
	// Expr.Atoms.
	Expr *cq.Expr
	// Kind classifies the node.
	Kind Kind
	// DB names the owning database for source nodes.
	DB string
	// Inputs are the join node's input edges (empty for sources).
	Inputs []*Edge
	// Consumers are the edges consuming this node's output. More than one
	// consumer means an implicit split operator (§4.1).
	Consumers []*Edge
}

// IsSplit reports whether the node fans out through a split operator.
func (n *Node) IsSplit() bool { return len(n.Consumers) > 1 }

// StreamInputs returns the non-probe input edges of a join node.
func (n *Node) StreamInputs() []*Edge {
	var out []*Edge
	for _, e := range n.Inputs {
		if !e.Probe {
			out = append(out, e)
		}
	}
	return out
}

// Endpoint connects a conjunctive query to its terminal node.
type Endpoint struct {
	// CQ is the conjunctive query.
	CQ *cq.CQ
	// Node computes the query's full expression.
	Node *Node
	// AtomMap maps Node.Expr atom positions to CQ atom indexes.
	AtomMap []int
}

// Graph is a query plan graph (one per ATC).
type Graph struct {
	// Scope namespaces node keys: "" shares everything (ATC-FULL / ATC-CL);
	// a UQ or CQ id isolates plans (ATC-UQ / ATC-CQ baselines).
	Scope string

	nodes  map[string]*Node
	byID   []*Node
	ends   map[string]*Endpoint // by CQ id
	nextID int
}

// New creates an empty graph with the given sharing scope.
func New(scope string) *Graph {
	return &Graph{Scope: scope, nodes: map[string]*Node{}, ends: map[string]*Endpoint{}}
}

// NodeKey builds the scoped key for an expression and kind. The kind is part
// of the identity: a pushed-down stream computing X at a remote database and
// a middleware m-join computing X are different physical operators with
// different state, even though they are logically equivalent.
func (g *Graph) NodeKey(kind Kind, exprKey string) string {
	prefix := ""
	if g.Scope != "" {
		prefix = g.Scope + "::"
	}
	switch kind {
	case SourceStream:
		prefix += "stream::"
	case SourceProbe:
		prefix += "probe::"
	default:
		prefix += "join::"
	}
	return prefix + exprKey
}

// Node returns the node with the given scoped key, or nil.
func (g *Graph) Node(key string) *Node { return g.nodes[key] }

// Nodes returns all nodes in creation order.
func (g *Graph) Nodes() []*Node { return g.byID }

// Endpoint returns the endpoint of a CQ, or nil.
func (g *Graph) Endpoint(cqID string) *Endpoint { return g.ends[cqID] }

// Endpoints returns all endpoints sorted by CQ id.
func (g *Graph) Endpoints() []*Endpoint {
	out := make([]*Endpoint, 0, len(g.ends))
	for _, e := range g.ends {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].CQ.ID < out[j].CQ.ID })
	return out
}

// EnsureNode returns the node for (kind, expr), creating it if absent.
func (g *Graph) EnsureNode(kind Kind, expr *cq.Expr, db string) *Node {
	key := g.NodeKey(kind, expr.Key())
	if n, ok := g.nodes[key]; ok {
		return n
	}
	n := &Node{ID: g.nextID, Key: key, Expr: expr, Kind: kind, DB: db}
	g.nextID++
	g.nodes[key] = n
	g.byID = append(g.byID, n)
	return n
}

// Connect adds an edge from producer to consumer join node.
func (g *Graph) Connect(from, to *Node, atomMap []int, probe bool) *Edge {
	if to.Kind != Join {
		panic("plangraph: only join nodes take inputs")
	}
	e := &Edge{From: from, To: to, InputIdx: len(to.Inputs), AtomMap: atomMap, Probe: probe}
	to.Inputs = append(to.Inputs, e)
	from.Consumers = append(from.Consumers, e)
	return e
}

// SetEndpoint registers the terminal node of a CQ.
func (g *Graph) SetEndpoint(q *cq.CQ, node *Node, atomMap []int) *Endpoint {
	ep := &Endpoint{CQ: q, Node: node, AtomMap: atomMap}
	g.ends[q.ID] = ep
	return ep
}

// RemoveEndpoint unlinks a completed CQ's endpoint (§6.3). Nodes and state
// remain for reuse until evicted.
func (g *Graph) RemoveEndpoint(cqID string) { delete(g.ends, cqID) }

// HasEndpointOn reports whether any registered (still-active) endpoint
// terminates at the node.
func (g *Graph) HasEndpointOn(n *Node) bool {
	for _, ep := range g.ends {
		if ep.Node == n {
			return true
		}
	}
	return false
}

// Evictable reports whether the node is structurally eligible for eviction
// (§6.3): nothing consumes its output and no active endpoint terminates at
// it. Runtime liveness (attached sinks, execution bindings) is the state
// manager's side of the check.
func (g *Graph) Evictable(n *Node) bool {
	return len(n.Consumers) == 0 && !g.HasEndpointOn(n)
}

// Detach removes the node's input edges from its parents and deletes the
// node (eviction path, §6.3). The node must have no consumers.
func (g *Graph) Detach(n *Node) {
	if len(n.Consumers) > 0 {
		panic("plangraph: Detach of node with consumers: " + n.Key)
	}
	for _, e := range n.Inputs {
		for i, c := range e.From.Consumers {
			if c == e {
				e.From.Consumers = append(e.From.Consumers[:i], e.From.Consumers[i+1:]...)
				break
			}
		}
	}
	n.Inputs = nil
	g.RemoveNode(n)
}

// RemoveNode deletes a node from the graph. The caller must already have
// detached its edges.
func (g *Graph) RemoveNode(n *Node) {
	delete(g.nodes, n.Key)
	for i, x := range g.byID {
		if x == n {
			g.byID = append(g.byID[:i], g.byID[i+1:]...)
			break
		}
	}
}

// PruneOrphans removes join nodes among `eligible` that feed no consumer and
// serve no endpoint, cascading upstream. The factorizer passes the set of
// nodes it created in the current build: pre-existing consumer-less nodes are
// cached state managed by the query state manager (§6.3), never pruned here.
func (g *Graph) PruneOrphans(eligible map[*Node]bool) {
	endpointNodes := map[*Node]bool{}
	for _, ep := range g.ends {
		endpointNodes[ep.Node] = true
	}
	for changed := true; changed; {
		changed = false
		for _, n := range append([]*Node(nil), g.byID...) {
			if n.Kind != Join || len(n.Consumers) > 0 || endpointNodes[n] || !eligible[n] {
				continue
			}
			for _, e := range n.Inputs {
				for i, c := range e.From.Consumers {
					if c == e {
						e.From.Consumers = append(e.From.Consumers[:i], e.From.Consumers[i+1:]...)
						break
					}
				}
			}
			g.RemoveNode(n)
			changed = true
		}
	}
}

// Validate checks structural invariants: edges well-formed, atom maps
// bijective onto consumer positions, every endpoint's node covering the full
// query with matching relations, and acyclicity.
func (g *Graph) Validate() error {
	for _, n := range g.byID {
		if n.Kind == Join {
			if len(n.Inputs) < 2 {
				return fmt.Errorf("plangraph: join node %s has %d inputs", n.Key, len(n.Inputs))
			}
			covered := make([]int, len(n.Expr.Atoms))
			streams := 0
			for _, e := range n.Inputs {
				if !e.Probe {
					streams++
				}
				if len(e.AtomMap) != len(e.From.Expr.Atoms) {
					return fmt.Errorf("plangraph: edge %s->%s atom map arity", e.From.Key, n.Key)
				}
				for fi, ti := range e.AtomMap {
					if ti < 0 || ti >= len(n.Expr.Atoms) {
						return fmt.Errorf("plangraph: edge %s->%s maps atom out of range", e.From.Key, n.Key)
					}
					if e.From.Expr.Atoms[fi].Rel != n.Expr.Atoms[ti].Rel {
						return fmt.Errorf("plangraph: edge %s->%s relation mismatch at %d", e.From.Key, n.Key, fi)
					}
					covered[ti]++
				}
			}
			for ti, c := range covered {
				if c != 1 {
					return fmt.Errorf("plangraph: join %s atom %d covered %d times", n.Key, ti, c)
				}
			}
			if streams == 0 {
				return fmt.Errorf("plangraph: join %s has no streaming input", n.Key)
			}
		}
	}
	for id, ep := range g.ends {
		if len(ep.AtomMap) != len(ep.Node.Expr.Atoms) || len(ep.AtomMap) != len(ep.CQ.Atoms) {
			return fmt.Errorf("plangraph: endpoint %s atom map arity", id)
		}
		seen := make([]bool, len(ep.CQ.Atoms))
		for ni, ci := range ep.AtomMap {
			if ci < 0 || ci >= len(ep.CQ.Atoms) || seen[ci] {
				return fmt.Errorf("plangraph: endpoint %s atom map not bijective", id)
			}
			seen[ci] = true
			if ep.Node.Expr.Atoms[ni].Rel != ep.CQ.Atoms[ci].Rel {
				return fmt.Errorf("plangraph: endpoint %s relation mismatch at %d", id, ni)
			}
		}
	}
	return g.checkAcyclic()
}

func (g *Graph) checkAcyclic() error {
	state := map[*Node]int{} // 0 unseen, 1 visiting, 2 done
	var visit func(n *Node) error
	visit = func(n *Node) error {
		switch state[n] {
		case 1:
			return fmt.Errorf("plangraph: cycle through %s", n.Key)
		case 2:
			return nil
		}
		state[n] = 1
		for _, e := range n.Inputs {
			if err := visit(e.From); err != nil {
				return err
			}
		}
		state[n] = 2
		return nil
	}
	for _, n := range g.byID {
		if err := visit(n); err != nil {
			return err
		}
	}
	return nil
}

// Stats summarises the graph for reporting.
type Stats struct {
	Sources, Joins, Splits, Endpoints int
}

// Stats computes summary counts.
func (g *Graph) Stats() Stats {
	var s Stats
	for _, n := range g.byID {
		switch n.Kind {
		case Join:
			s.Joins++
		default:
			s.Sources++
		}
		if n.IsSplit() {
			s.Splits++
		}
	}
	s.Endpoints = len(g.ends)
	return s
}

// Dump renders the graph for debugging.
func (g *Graph) Dump() string {
	var b strings.Builder
	for _, n := range g.byID {
		fmt.Fprintf(&b, "[%d] %s %s", n.ID, n.Kind, n.Key)
		if len(n.Inputs) > 0 {
			b.WriteString(" <- ")
			for i, e := range n.Inputs {
				if i > 0 {
					b.WriteString(", ")
				}
				tag := ""
				if e.Probe {
					tag = " (probe)"
				}
				fmt.Fprintf(&b, "[%d]%s", e.From.ID, tag)
			}
		}
		b.WriteByte('\n')
	}
	for _, ep := range g.Endpoints() {
		fmt.Fprintf(&b, "endpoint %s -> [%d]\n", ep.CQ.ID, ep.Node.ID)
	}
	return b.String()
}

// SourceSpec describes the source behind a stream/probe node (used by the
// executor to open remote connections).
type SourceSpec struct {
	Node *Node
	Mode costmodel.Mode
}
