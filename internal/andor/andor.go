// Package andor implements the AND-OR memoization structure used during
// multi-query optimization (§5.1.2, following [26]): a DAG whose OR nodes are
// equivalence classes of subexpressions (keyed by canonical form, so
// subexpressions from different queries — or different users' sessions —
// coincide) and whose AND nodes record how an expression can be derived by a
// join of smaller expressions. The optimizer enumerates each query's
// connected subexpressions into this graph once; candidate generation,
// sharing counts and cost memoization all read from it.
package andor

import (
	"sort"

	"repro/internal/cq"
)

// OrNode is one equivalence class of subexpressions.
type OrNode struct {
	// Expr is the canonical expression.
	Expr *cq.Expr
	// Occurrences maps CQ id -> where the expression occurs in that query.
	// (One occurrence per query is retained; candidate networks do not repeat
	// subexpressions within one query in our generators.)
	Occurrences map[string]*cq.ExprOccurrence
	// Derivations lists the AND nodes producing this expression.
	Derivations []AndNode
}

// AndNode derives an expression as the join of two smaller expressions
// (by canonical key). Single-atom expressions have no derivations.
type AndNode struct {
	LeftKey, RightKey string
}

// Graph is the memo.
type Graph struct {
	nodes map[string]*OrNode
}

// New creates an empty memo.
func New() *Graph { return &Graph{nodes: map[string]*OrNode{}} }

// Node returns the OR node for a key, or nil.
func (g *Graph) Node(key string) *OrNode { return g.nodes[key] }

// Size returns the number of OR nodes.
func (g *Graph) Size() int { return len(g.nodes) }

// Keys returns all expression keys, sorted.
func (g *Graph) Keys() []string {
	keys := make([]string, 0, len(g.nodes))
	for k := range g.nodes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// AddQuery enumerates every connected subexpression of q up to maxAtoms atoms
// into the memo, recording occurrences and derivations.
func (g *Graph) AddQuery(q *cq.CQ, maxAtoms int) {
	subsets := q.ConnectedSubsets(maxAtoms)
	keyOf := make(map[string]string, len(subsets)) // subset signature -> expr key
	for _, idxs := range subsets {
		expr, mapping := q.SubExpr(idxs)
		node, ok := g.nodes[expr.Key()]
		if !ok {
			node = &OrNode{Expr: expr, Occurrences: map[string]*cq.ExprOccurrence{}}
			g.nodes[expr.Key()] = node
		}
		if _, seen := node.Occurrences[q.ID]; !seen {
			node.Occurrences[q.ID] = &cq.ExprOccurrence{CQ: q, AtomOf: mapping}
		}
		keyOf[sig(idxs)] = expr.Key()
		// Record derivations: all ways to split idxs into two connected
		// halves already in the memo.
		if len(idxs) >= 2 {
			g.addDerivations(node, q, idxs, keyOf)
		}
	}
}

// addDerivations records splits of idxs into two connected parts. Subsets
// arrive in nondecreasing size order, so halves are already registered.
func (g *Graph) addDerivations(node *OrNode, q *cq.CQ, idxs []int, keyOf map[string]string) {
	n := len(idxs)
	if n > 16 {
		return
	}
	seen := map[AndNode]bool{}
	for _, d := range node.Derivations {
		seen[d] = true
	}
	for mask := 1; mask < (1<<uint(n))-1; mask++ {
		var left, right []int
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				left = append(left, idxs[i])
			} else {
				right = append(right, idxs[i])
			}
		}
		lk, lok := keyOf[sig(left)]
		rk, rok := keyOf[sig(right)]
		if !lok || !rok {
			continue // a side is disconnected (not enumerated)
		}
		d := AndNode{LeftKey: lk, RightKey: rk}
		if lk > rk {
			d = AndNode{LeftKey: rk, RightKey: lk}
		}
		if !seen[d] {
			seen[d] = true
			node.Derivations = append(node.Derivations, d)
		}
	}
	sort.Slice(node.Derivations, func(i, j int) bool {
		if node.Derivations[i].LeftKey != node.Derivations[j].LeftKey {
			return node.Derivations[i].LeftKey < node.Derivations[j].LeftKey
		}
		return node.Derivations[i].RightKey < node.Derivations[j].RightKey
	})
}

func sig(idxs []int) string {
	b := make([]byte, 0, len(idxs)*2)
	for _, i := range idxs {
		b = append(b, byte('a'+i%26), byte('A'+i/26))
	}
	return string(b)
}

// SharedNodes returns the OR nodes occurring in at least minQueries distinct
// queries, sorted by decreasing sharing then key.
func (g *Graph) SharedNodes(minQueries int) []*OrNode {
	var out []*OrNode
	for _, n := range g.nodes {
		if len(n.Occurrences) >= minQueries {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Occurrences) != len(out[j].Occurrences) {
			return len(out[i].Occurrences) > len(out[j].Occurrences)
		}
		return out[i].Expr.Key() < out[j].Expr.Key()
	})
	return out
}
