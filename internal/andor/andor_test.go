package andor

import (
	"testing"

	"repro/internal/cq"
	"repro/internal/scoring"
)

func chain(id string, rels ...string) *cq.CQ {
	atoms := make([]*cq.Atom, len(rels))
	for i, r := range rels {
		atoms[i] = &cq.Atom{Rel: r, DB: "db", Args: []cq.Term{cq.V(i), cq.V(i + 1)}}
	}
	w := make([]float64, len(rels))
	for i := range w {
		w[i] = 1
	}
	return &cq.CQ{ID: id, UQID: "U", Atoms: atoms, Model: scoring.QSystem(0, w)}
}

func TestAddQueryEnumeratesSubexpressions(t *testing.T) {
	g := New()
	g.AddQuery(chain("q1", "A", "B", "C"), 3)
	// Chain of 3: subsets {A},{B},{C},{AB},{BC},{ABC} = 6 OR nodes.
	if g.Size() != 6 {
		t.Fatalf("memo size = %d, want 6 (keys: %v)", g.Size(), g.Keys())
	}
	for _, k := range g.Keys() {
		n := g.Node(k)
		if n == nil || len(n.Occurrences) != 1 {
			t.Errorf("node %q occurrences wrong", k)
		}
	}
}

func TestSharedOccurrences(t *testing.T) {
	g := New()
	g.AddQuery(chain("q1", "A", "B", "C"), 3)
	g.AddQuery(chain("q2", "A", "B", "D"), 3)
	shared := g.SharedNodes(2)
	// A, B, AB are shared (same canonical structure in both chains).
	if len(shared) != 3 {
		keys := []string{}
		for _, n := range shared {
			keys = append(keys, n.Expr.Key())
		}
		t.Fatalf("shared nodes = %d (%v), want 3", len(shared), keys)
	}
	for _, n := range shared {
		occ := n.Occurrences
		if occ["q1"] == nil || occ["q2"] == nil {
			t.Errorf("shared node %s missing an occurrence", n.Expr.Key())
		}
		// Occurrence atom maps must point at matching relations.
		for i := range n.Expr.Atoms {
			r1 := occ["q1"].CQ.Atoms[occ["q1"].AtomOf[i]].Rel
			r2 := occ["q2"].CQ.Atoms[occ["q2"].AtomOf[i]].Rel
			if r1 != n.Expr.Atoms[i].Rel || r2 != n.Expr.Atoms[i].Rel {
				t.Errorf("occurrence mapping wrong for %s", n.Expr.Key())
			}
		}
	}
}

func TestDerivations(t *testing.T) {
	g := New()
	g.AddQuery(chain("q1", "A", "B", "C"), 3)
	// Find the ABC node: it must have derivations A+BC and AB+C.
	var abc *OrNode
	for _, k := range g.Keys() {
		if g.Node(k).Expr.Arity() == 3 {
			abc = g.Node(k)
		}
	}
	if abc == nil {
		t.Fatal("no 3-atom node")
	}
	if len(abc.Derivations) != 2 {
		t.Fatalf("ABC derivations = %d, want 2 (A+BC, AB+C)", len(abc.Derivations))
	}
	for _, d := range abc.Derivations {
		if g.Node(d.LeftKey) == nil || g.Node(d.RightKey) == nil {
			t.Error("derivation references unknown node")
		}
	}
}

func TestMaxAtomsCap(t *testing.T) {
	g := New()
	g.AddQuery(chain("q1", "A", "B", "C", "D"), 2)
	for _, k := range g.Keys() {
		if g.Node(k).Expr.Arity() > 2 {
			t.Errorf("node %q exceeds atom cap", k)
		}
	}
}

func TestIdempotentAddQuery(t *testing.T) {
	g := New()
	q := chain("q1", "A", "B")
	g.AddQuery(q, 3)
	size := g.Size()
	g.AddQuery(q, 3)
	if g.Size() != size {
		t.Error("re-adding a query changed the memo size")
	}
	for _, k := range g.Keys() {
		if len(g.Node(k).Occurrences) != 1 {
			t.Error("re-adding duplicated occurrences")
		}
	}
}
