package simclock

import (
	"sync"
	"testing"
	"time"

	"repro/internal/dist"
)

func TestVirtualClockAdvance(t *testing.T) {
	c := NewVirtual(0)
	if c.Now() != 0 {
		t.Fatalf("start = %v", c.Now())
	}
	c.Advance(5 * time.Millisecond)
	c.Advance(-time.Second) // negative ignored
	if c.Now() != 5*time.Millisecond {
		t.Errorf("now = %v", c.Now())
	}
	c.AdvanceTo(3 * time.Millisecond) // past: no-op
	if c.Now() != 5*time.Millisecond {
		t.Errorf("AdvanceTo went backwards: %v", c.Now())
	}
	c.AdvanceTo(9 * time.Millisecond)
	if c.Now() != 9*time.Millisecond {
		t.Errorf("AdvanceTo failed: %v", c.Now())
	}
}

func TestVirtualClockStart(t *testing.T) {
	c := NewVirtual(42 * time.Second)
	if c.Now() != 42*time.Second {
		t.Errorf("start offset lost: %v", c.Now())
	}
}

func TestVirtualClockConcurrent(t *testing.T) {
	c := NewVirtual(0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Advance(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if c.Now() != 8*1000*time.Microsecond {
		t.Errorf("concurrent advances lost: %v", c.Now())
	}
}

func TestRealClockMonotone(t *testing.T) {
	c := NewReal()
	a := c.Now()
	c.Advance(2 * time.Millisecond)
	b := c.Now()
	if b-a < 2*time.Millisecond {
		t.Errorf("real Advance slept %v", b-a)
	}
}

func TestDelayModelDistributions(t *testing.T) {
	m := DefaultDelays(dist.New(1))
	const n = 20000
	var sumS, sumP time.Duration
	for i := 0; i < n; i++ {
		s := m.StreamRead()
		p := m.RemoteProbe()
		if s < 0 || p < 0 {
			t.Fatal("negative delay")
		}
		sumS += s
		sumP += p
	}
	meanS := sumS / n
	meanP := sumP / n
	if meanS < 1900*time.Microsecond || meanS > 2100*time.Microsecond {
		t.Errorf("stream mean = %v, want ≈2ms", meanS)
	}
	if meanP < 1900*time.Microsecond || meanP > 2100*time.Microsecond {
		t.Errorf("probe mean = %v, want ≈2ms", meanP)
	}
	if m.Join() != m.JoinCost || m.Join() <= 0 {
		t.Errorf("join cost = %v", m.Join())
	}
}

func TestDelayModelDeterministic(t *testing.T) {
	m1 := DefaultDelays(dist.New(9))
	m2 := DefaultDelays(dist.New(9))
	for i := 0; i < 100; i++ {
		if m1.StreamRead() != m2.StreamRead() {
			t.Fatal("same-seed delay models diverged")
		}
	}
}

func TestZeroMeanDelay(t *testing.T) {
	m := &DelayModel{rng: dist.New(1), StreamMean: 0, ProbeMean: 0}
	if m.StreamRead() != 0 || m.RemoteProbe() != 0 {
		t.Error("zero-mean delays should be zero")
	}
}
