// Package simclock models the passage of time in the middleware.
//
// The paper's experiments (§7 "Delays") run over a LAN with injected random
// delays — Poisson with a 2 ms mean — for every tuple read from a data stream
// and every join probe against a remote DBMS, and measure wall-clock response
// times per user query. Reproducing those measurements with real sleeps would
// make every experiment minutes long and nondeterministic, so the default
// clock is *virtual*: delays and CPU costs advance a simulated nanosecond
// counter. A plan graph is served by a single ATC "thread" (as in the paper),
// so all queries sharing a graph share one clock — which is exactly how the
// paper's contention effect (§7.1) arises. Distinct plan graphs (ATC-CQ,
// ATC-UQ, ATC-CL) get independent clocks, modelling parallel execution.
//
// A Real clock that actually sleeps is provided for the interactive demos.
package simclock

import (
	"sync/atomic"
	"time"

	"repro/internal/dist"
)

// Clock tracks elapsed time for one execution thread (one ATC).
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Duration
	// Advance moves the clock forward by d (sleeping if the clock is real).
	Advance(d time.Duration)
	// AdvanceTo moves the clock forward to at least t.
	AdvanceTo(t time.Duration)
}

// Virtual is a deterministic simulated clock. It is safe for concurrent use
// (experiment harnesses read it while an ATC goroutine advances it).
type Virtual struct {
	now atomic.Int64 // nanoseconds
}

// NewVirtual returns a virtual clock starting at start.
func NewVirtual(start time.Duration) *Virtual {
	v := &Virtual{}
	v.now.Store(int64(start))
	return v
}

// Now returns the current virtual time.
func (v *Virtual) Now() time.Duration { return time.Duration(v.now.Load()) }

// Advance moves the virtual clock forward by d (negative d is ignored).
func (v *Virtual) Advance(d time.Duration) {
	if d > 0 {
		v.now.Add(int64(d))
	}
}

// AdvanceTo moves the clock to t if t is in the future.
func (v *Virtual) AdvanceTo(t time.Duration) {
	for {
		cur := v.now.Load()
		if int64(t) <= cur {
			return
		}
		if v.now.CompareAndSwap(cur, int64(t)) {
			return
		}
	}
}

// Real is a wall-clock-backed clock: Advance sleeps. Used by the demo
// binaries to show live behaviour; never used in tests or benches.
type Real struct {
	start time.Time
}

// NewReal returns a real clock anchored at the current instant.
func NewReal() *Real { return &Real{start: time.Now()} }

// Now returns elapsed wall time since the clock was created.
func (r *Real) Now() time.Duration { return time.Since(r.start) }

// Advance sleeps for d.
func (r *Real) Advance(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// AdvanceTo sleeps until elapsed wall time reaches t.
func (r *Real) AdvanceTo(t time.Duration) {
	if d := t - r.Now(); d > 0 {
		time.Sleep(d)
	}
}

// DelayModel draws the simulated costs of the three operation classes the
// paper measures (Figure 8): reading a tuple from a streaming source,
// probing a remote random-access source, and an in-memory join probe.
type DelayModel struct {
	rng *dist.RNG
	// StreamMean and ProbeMean are the Poisson means for remote operations.
	StreamMean time.Duration
	ProbeMean  time.Duration
	// JoinCost is the fixed CPU cost charged per in-memory hash probe or
	// insert; it is deterministic (local work has no network variance).
	JoinCost time.Duration
	// SpillRowCost is the fixed local-I/O cost charged per row read back
	// from a spilled plan segment (§6.3's disk tier): sequential local disk,
	// so deterministic and orders of magnitude below a remote stream read.
	SpillRowCost time.Duration
}

// DefaultDelays mirrors §7: Poisson(mean 2 ms) per stream read and per remote
// probe. Stream delays pace each stream's *delivery* timeline (tuples flow
// into connection buffers in the background, as with the paper's JDBC
// streams); the middleware blocks only when it outruns a stream. Probes are
// synchronous round trips and block the ATC thread. The join CPU cost
// approximates a hash probe plus result assembly in the paper's 2006-era
// Java middleware (~20 µs), which is what makes CPU contention visible when
// many queries share one ATC (§6.1, §7.1).
func DefaultDelays(rng *dist.RNG) *DelayModel {
	return &DelayModel{
		rng:          rng,
		StreamMean:   2 * time.Millisecond,
		ProbeMean:    2 * time.Millisecond,
		JoinCost:     20 * time.Microsecond,
		SpillRowCost: 1 * time.Microsecond,
	}
}

// WithRNG copies the model's cost constants onto a private RNG. The parallel
// executor derives one model per source node this way: delay draws become a
// pure function of (node, operation ordinal), independent of how scheduling
// rounds interleave across workers.
func (m *DelayModel) WithRNG(rng *dist.RNG) *DelayModel {
	c := *m
	c.rng = rng
	return &c
}

// poisson draws a Poisson-distributed duration with the given mean, at 100 µs
// granularity so small means still vary (mean 2 ms → Poisson(20) ticks).
func (m *DelayModel) poisson(mean time.Duration) time.Duration {
	const tick = 100 * time.Microsecond
	if mean <= 0 {
		return 0
	}
	n := dist.Poisson(m.rng, float64(mean)/float64(tick))
	return time.Duration(n) * tick
}

// StreamRead returns the delay for reading one tuple from a streaming source.
func (m *DelayModel) StreamRead() time.Duration { return m.poisson(m.StreamMean) }

// RemoteProbe returns the delay for one probe against a random-access source.
func (m *DelayModel) RemoteProbe() time.Duration { return m.poisson(m.ProbeMean) }

// Join returns the CPU cost of one in-memory join operation.
func (m *DelayModel) Join() time.Duration { return m.JoinCost }

// SpillRead returns the local-I/O cost of reading n rows back from a
// spilled segment. It draws nothing from the RNG, so enabling the spill
// tier perturbs no other delay sequence.
func (m *DelayModel) SpillRead(n int) time.Duration {
	return time.Duration(n) * m.SpillRowCost
}
