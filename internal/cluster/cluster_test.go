package cluster

import (
	"testing"

	"repro/internal/cq"
	"repro/internal/scoring"
)

// uqOver builds a user query whose single CQ references the given relations
// `times` times each.
func uqOver(id string, times int, rels ...string) *cq.UQ {
	var atoms []*cq.Atom
	v := 0
	for _, r := range rels {
		for i := 0; i < times; i++ {
			atoms = append(atoms, &cq.Atom{Rel: r, DB: "db", Args: []cq.Term{cq.V(v), cq.V(v + 1)}})
			v++
		}
	}
	w := make([]float64, len(atoms))
	for i := range w {
		w[i] = 1
	}
	return &cq.UQ{ID: id, K: 10, CQs: []*cq.CQ{{
		ID: id + ".CQ1", UQID: id, Atoms: atoms, Model: scoring.QSystem(0, w),
	}}}
}

func TestClusterGroupsHeavySharers(t *testing.T) {
	uqs := []*cq.UQ{
		uqOver("U1", 3, "Prot", "Link"),
		uqOver("U2", 3, "Prot", "Gene"),
		uqOver("U3", 3, "Term", "Syn"),
		uqOver("U4", 1, "Prot"),
	}
	groups := Cluster(uqs, Config{Tm: 2, Tc: 0.4})
	// U1 and U2 rely on Prot heavily (>2 refs) and should group; U3 and U4
	// should not join them.
	var protGroup []*cq.UQ
	for _, g := range groups {
		for _, u := range g {
			if u.ID == "U1" {
				protGroup = g
			}
		}
	}
	ids := map[string]bool{}
	for _, u := range protGroup {
		ids[u.ID] = true
	}
	if !ids["U2"] {
		t.Errorf("U1 and U2 should cluster together: %v", ids)
	}
	if ids["U3"] || ids["U4"] {
		t.Errorf("unrelated queries clustered: %v", ids)
	}
}

func TestClusterPartition(t *testing.T) {
	uqs := []*cq.UQ{
		uqOver("U1", 3, "A", "B"), uqOver("U2", 3, "A"), uqOver("U3", 3, "B"),
		uqOver("U4", 2, "C"), uqOver("U5", 1, "D"),
	}
	groups := Cluster(uqs, Config{Tm: 1, Tc: 0.3})
	seen := map[string]int{}
	for _, g := range groups {
		if len(g) == 0 {
			t.Error("empty group")
		}
		for _, u := range g {
			seen[u.ID]++
		}
	}
	if len(seen) != 5 {
		t.Fatalf("covered %d queries, want 5", len(seen))
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("%s appears in %d groups", id, n)
		}
	}
}

func TestClusterSingletonFallback(t *testing.T) {
	// No query crosses Tm: every query should still land somewhere.
	uqs := []*cq.UQ{uqOver("U1", 1, "A"), uqOver("U2", 1, "B")}
	groups := Cluster(uqs, Config{Tm: 5, Tc: 0.5})
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	if total != 2 {
		t.Errorf("lost queries: %d", total)
	}
}

func TestAffinitySimAndObserve(t *testing.T) {
	a := NewAffinity(2, 0)
	if got := a.Sim(0, []string{"x"}); got != 0 {
		t.Fatalf("empty index sim = %v", got)
	}
	a.Observe(0, []string{"protein", "gene"})
	if got := a.Sim(0, []string{"protein", "gene"}); got != 1 {
		t.Errorf("full overlap sim = %v, want 1", got)
	}
	if got := a.Sim(0, []string{"protein", "quartz"}); got != 0.5 {
		t.Errorf("half overlap sim = %v, want 0.5", got)
	}
	if got := a.Sim(1, []string{"protein"}); got != 0 {
		t.Errorf("other group sim = %v, want 0", got)
	}
	if a.Size(0) != 2 || a.Size(1) != 0 {
		t.Errorf("sizes = %d/%d", a.Size(0), a.Size(1))
	}
	if a.Load(0) != 2 || a.Load(1) != 0 {
		t.Errorf("loads = %v/%v", a.Load(0), a.Load(1))
	}
	// Out-of-range groups are inert.
	a.Observe(9, []string{"x"})
	if a.Sim(9, []string{"x"}) != 0 || a.Size(-1) != 0 || a.Load(7) != 0 {
		t.Error("out-of-range group not inert")
	}
}

func TestAffinityDecayAndPrune(t *testing.T) {
	a := NewAffinity(2, 8) // short half-life so decay is visible
	a.Observe(0, []string{"protein"})
	// Eight observations elsewhere = one half-life: the mass halves.
	for i := 0; i < 8; i++ {
		a.Observe(1, []string{"filler"})
	}
	if got := a.Sim(0, []string{"protein"}); got <= 0.49 || got >= 0.51 {
		t.Errorf("after one half-life sim = %v, want ~0.5", got)
	}
	// Far past the prune threshold the keyword no longer counts as resident.
	for i := 0; i < 8*8; i++ {
		a.Observe(1, []string{"filler"})
	}
	if a.Size(0) != 0 {
		t.Errorf("decayed keyword still resident: size = %d", a.Size(0))
	}
	if got := a.Sim(0, []string{"protein"}); got > 0.02 {
		t.Errorf("decayed sim = %v", got)
	}
	// Re-observation folds decayed mass instead of resetting it.
	a.Observe(0, []string{"protein"})
	if got := a.Sim(0, []string{"protein"}); got != 1 {
		t.Errorf("refreshed sim = %v, want 1 (capped)", got)
	}
}

func TestClusterDeterministic(t *testing.T) {
	uqs := []*cq.UQ{
		uqOver("U1", 3, "A", "B"), uqOver("U2", 3, "A"), uqOver("U3", 2, "B"),
	}
	g1 := Cluster(uqs, Config{})
	g2 := Cluster(uqs, Config{})
	if len(g1) != len(g2) {
		t.Fatal("nondeterministic group count")
	}
	for i := range g1 {
		if len(g1[i]) != len(g2[i]) {
			t.Fatal("nondeterministic group sizes")
		}
		for j := range g1[i] {
			if g1[i][j].ID != g2[i][j].ID {
				t.Fatal("nondeterministic membership")
			}
		}
	}
}
