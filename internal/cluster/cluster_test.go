package cluster

import (
	"testing"

	"repro/internal/cq"
	"repro/internal/scoring"
)

// uqOver builds a user query whose single CQ references the given relations
// `times` times each.
func uqOver(id string, times int, rels ...string) *cq.UQ {
	var atoms []*cq.Atom
	v := 0
	for _, r := range rels {
		for i := 0; i < times; i++ {
			atoms = append(atoms, &cq.Atom{Rel: r, DB: "db", Args: []cq.Term{cq.V(v), cq.V(v + 1)}})
			v++
		}
	}
	w := make([]float64, len(atoms))
	for i := range w {
		w[i] = 1
	}
	return &cq.UQ{ID: id, K: 10, CQs: []*cq.CQ{{
		ID: id + ".CQ1", UQID: id, Atoms: atoms, Model: scoring.QSystem(0, w),
	}}}
}

func TestClusterGroupsHeavySharers(t *testing.T) {
	uqs := []*cq.UQ{
		uqOver("U1", 3, "Prot", "Link"),
		uqOver("U2", 3, "Prot", "Gene"),
		uqOver("U3", 3, "Term", "Syn"),
		uqOver("U4", 1, "Prot"),
	}
	groups := Cluster(uqs, Config{Tm: 2, Tc: 0.4})
	// U1 and U2 rely on Prot heavily (>2 refs) and should group; U3 and U4
	// should not join them.
	var protGroup []*cq.UQ
	for _, g := range groups {
		for _, u := range g {
			if u.ID == "U1" {
				protGroup = g
			}
		}
	}
	ids := map[string]bool{}
	for _, u := range protGroup {
		ids[u.ID] = true
	}
	if !ids["U2"] {
		t.Errorf("U1 and U2 should cluster together: %v", ids)
	}
	if ids["U3"] || ids["U4"] {
		t.Errorf("unrelated queries clustered: %v", ids)
	}
}

func TestClusterPartition(t *testing.T) {
	uqs := []*cq.UQ{
		uqOver("U1", 3, "A", "B"), uqOver("U2", 3, "A"), uqOver("U3", 3, "B"),
		uqOver("U4", 2, "C"), uqOver("U5", 1, "D"),
	}
	groups := Cluster(uqs, Config{Tm: 1, Tc: 0.3})
	seen := map[string]int{}
	for _, g := range groups {
		if len(g) == 0 {
			t.Error("empty group")
		}
		for _, u := range g {
			seen[u.ID]++
		}
	}
	if len(seen) != 5 {
		t.Fatalf("covered %d queries, want 5", len(seen))
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("%s appears in %d groups", id, n)
		}
	}
}

func TestClusterSingletonFallback(t *testing.T) {
	// No query crosses Tm: every query should still land somewhere.
	uqs := []*cq.UQ{uqOver("U1", 1, "A"), uqOver("U2", 1, "B")}
	groups := Cluster(uqs, Config{Tm: 5, Tc: 0.5})
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	if total != 2 {
		t.Errorf("lost queries: %d", total)
	}
}

func TestClusterDeterministic(t *testing.T) {
	uqs := []*cq.UQ{
		uqOver("U1", 3, "A", "B"), uqOver("U2", 3, "A"), uqOver("U3", 2, "B"),
	}
	g1 := Cluster(uqs, Config{})
	g2 := Cluster(uqs, Config{})
	if len(g1) != len(g2) {
		t.Fatal("nondeterministic group count")
	}
	for i := range g1 {
		if len(g1[i]) != len(g2[i]) {
			t.Fatal("nondeterministic group sizes")
		}
		for j := range g1[i] {
			if g1[i][j].ID != g2[i][j].ID {
				t.Fatal("nondeterministic membership")
			}
		}
	}
}
