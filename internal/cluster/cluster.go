// Package cluster groups user queries into separately executed plan graphs
// (§6.1 "preventing over-sharing of results"): a single shared graph can
// thrash when unrelated queries contend for the ATC, so queries are clustered
// around the workload's most frequently referenced source relations and each
// cluster gets its own graph and ATC — the ATC-CL configuration of §7.
package cluster

import (
	"math"
	"sort"

	"repro/internal/cq"
)

// Config holds the two thresholds of §6.1.
type Config struct {
	// Tm is the minimum number of references a user query must make to a
	// frequent source to join that source's initial cluster.
	Tm int
	// Tc is the Jaccard-similarity threshold above which clusters merge.
	Tc float64
}

// Defaults returns the thresholds used by the experiments: a user query
// joins a source's initial cluster only when it references the source more
// than four times across its conjunctive queries (strong reliance), and
// clusters merge above 50% Jaccard overlap. These keep clusters small and
// high-overlap, which is what lets ATC-CL retain most of sharing's savings
// while splitting the contention of a single graph (§6.1, §7.1).
func (c Config) Defaults() Config {
	if c.Tm == 0 {
		c.Tm = 4
	}
	if c.Tc == 0 {
		c.Tc = 0.5
	}
	return c
}

// Cluster partitions the user queries. Each returned group is executed on
// its own plan graph; every query appears in exactly one group.
func Cluster(uqs []*cq.UQ, cfg Config) [][]*cq.UQ {
	cfg = cfg.Defaults()
	// Count per-UQ references to each source relation.
	refs := make([]map[string]int, len(uqs))
	freq := map[string]int{}
	for i, uq := range uqs {
		refs[i] = map[string]int{}
		for _, q := range uq.CQs {
			for _, a := range q.Atoms {
				refs[i][a.Rel]++
				freq[a.Rel]++
			}
		}
	}
	// Initial clusters: one per source, holding the UQ indexes that
	// reference it more than Tm times.
	rels := make([]string, 0, len(freq))
	for r := range freq {
		rels = append(rels, r)
	}
	sort.Slice(rels, func(i, j int) bool {
		if freq[rels[i]] != freq[rels[j]] {
			return freq[rels[i]] > freq[rels[j]]
		}
		return rels[i] < rels[j]
	})
	var clusters []map[int]bool
	for _, r := range rels {
		c := map[int]bool{}
		for i := range uqs {
			if refs[i][r] > cfg.Tm {
				c[i] = true
			}
		}
		if len(c) > 0 {
			clusters = append(clusters, c)
		}
	}
	// Merge clusters whose Jaccard similarity exceeds Tc, to fixpoint.
	for merged := true; merged; {
		merged = false
		for i := 0; i < len(clusters) && !merged; i++ {
			for j := i + 1; j < len(clusters) && !merged; j++ {
				if jaccard(clusters[i], clusters[j]) > cfg.Tc {
					for k := range clusters[j] {
						clusters[i][k] = true
					}
					clusters = append(clusters[:j], clusters[j+1:]...)
					merged = true
				}
			}
		}
	}
	// Deterministic assignment: each UQ joins the largest cluster containing
	// it (ties: earliest cluster); uncovered UQs become singletons.
	order := make([]int, len(clusters))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return len(clusters[order[a]]) > len(clusters[order[b]]) })
	assigned := make([]int, len(uqs))
	for i := range assigned {
		assigned[i] = -1
	}
	for _, ci := range order {
		for k := range clusters[ci] {
			if assigned[k] < 0 {
				assigned[k] = ci
			}
		}
	}
	groups := map[int][]*cq.UQ{}
	var keys []int
	next := len(clusters)
	for i, uq := range uqs {
		g := assigned[i]
		if g < 0 {
			g = next
			next++
		}
		if _, ok := groups[g]; !ok {
			keys = append(keys, g)
		}
		groups[g] = append(groups[g], uq)
	}
	sort.Ints(keys)
	out := make([][]*cq.UQ, 0, len(keys))
	for _, k := range keys {
		out = append(out, groups[k])
	}
	return out
}

// DefaultHalfLife is the decay horizon of an Affinity index, in observations:
// a keyword's admission mass halves every this many Observe calls, so the
// resident sets track the recent workload the way §6.1's clusters track one
// batch.
const DefaultHalfLife = 256

// affEntry is one decayed quantity: a mass plus the tick it was last folded
// at. Its effective value at tick t is w·2^−((t−tick)/halfLife).
type affEntry struct {
	w    float64
	tick uint64
}

// Affinity is the online, serving-scale form of §6.1's similarity-driven
// clustering: one decaying resident keyword set per group (in the serving
// layer, per shard), fed by the canonical keyword sets of admitted queries.
// Sim measures how much of a new query's keyword set is already resident in
// a group, weighting each keyword by recency-decayed admission mass — the
// same overlap notion Cluster applies to a fixed batch, followed online.
// Load exposes each group's decayed admitted-keyword mass as a pressure
// signal for placement penalties.
//
// Affinity is not safe for concurrent use; callers (the service router)
// serialize access, like the rest of the engine code.
type Affinity struct {
	groups     int
	halfLife   float64
	pruneEvery uint64 // sweep cadence, tied to the decay horizon
	tick       uint64
	sets       []map[string]*affEntry
	load       []affEntry
}

// NewAffinity builds an index over n groups. halfLife <= 0 selects
// DefaultHalfLife.
func NewAffinity(n int, halfLife float64) *Affinity {
	if n < 1 {
		n = 1
	}
	if halfLife <= 0 {
		halfLife = DefaultHalfLife
	}
	a := &Affinity{groups: n, halfLife: halfLife, sets: make([]map[string]*affEntry, n), load: make([]affEntry, n)}
	// Sweep once per half-life: by then the oldest untouched entries have
	// lost half their mass, so the scan retires work proportional to decay
	// instead of on a cadence unrelated to the configured horizon.
	a.pruneEvery = uint64(halfLife)
	if a.pruneEvery < 1 {
		a.pruneEvery = 1
	}
	for i := range a.sets {
		a.sets[i] = map[string]*affEntry{}
	}
	return a
}

// Groups returns the number of groups the index covers.
func (a *Affinity) Groups() int { return a.groups }

// decayed folds an entry's mass forward to the current tick.
func (a *Affinity) decayed(e *affEntry) float64 {
	if e == nil || e.w == 0 {
		return 0
	}
	return e.w * math.Exp2(-float64(a.tick-e.tick)/a.halfLife)
}

// pruneThreshold drops entries whose decayed mass no longer influences
// similarity, bounding the resident sets under churn.
const pruneThreshold = 0.05

// Observe advances the index one tick and folds a query's keywords into the
// group it was placed on: each keyword gains one unit of admission mass, and
// the group's load gains the keyword count.
func (a *Affinity) Observe(group int, keywords []string) {
	if group < 0 || group >= a.groups {
		return
	}
	a.tick++
	set := a.sets[group]
	for _, kw := range keywords {
		e := set[kw]
		if e == nil {
			e = &affEntry{}
			set[kw] = e
		}
		e.w = a.decayed(e) + 1
		e.tick = a.tick
	}
	l := &a.load[group]
	l.w = a.decayed(l) + float64(len(keywords))
	l.tick = a.tick
	if a.tick%a.pruneEvery == 0 {
		a.prune()
	}
}

// prune removes entries whose decayed mass fell below the threshold.
func (a *Affinity) prune() {
	for _, set := range a.sets {
		for kw, e := range set {
			if a.decayed(e) < pruneThreshold {
				delete(set, kw)
			}
		}
	}
}

// Sim scores a query's expected overlap with a group: the fraction of its
// keywords resident in the group's decayed set, each keyword contributing
// min(1, decayed mass). 1.0 means every keyword was recently admitted there;
// 0 means the group has seen none of them.
func (a *Affinity) Sim(group int, keywords []string) float64 {
	if group < 0 || group >= a.groups || len(keywords) == 0 {
		return 0
	}
	set := a.sets[group]
	sum := 0.0
	for _, kw := range keywords {
		if w := a.decayed(set[kw]); w > 1 {
			sum += 1
		} else {
			sum += w
		}
	}
	return sum / float64(len(keywords))
}

// Mass returns the group's total decayed admission mass over the given
// keywords, uncapped: unlike Sim, which saturates per keyword and measures
// coverage, Mass measures depth — how much recently admitted work on these
// keywords lives in the group. It is the ranking signal for placement:
// between two groups covering a query equally, the one with deeper mass
// holds more replayable state.
func (a *Affinity) Mass(group int, keywords []string) float64 {
	if group < 0 || group >= a.groups {
		return 0
	}
	set := a.sets[group]
	sum := 0.0
	for _, kw := range keywords {
		sum += a.decayed(set[kw])
	}
	return sum
}

// Load returns the group's decayed admitted-keyword mass.
func (a *Affinity) Load(group int) float64 {
	if group < 0 || group >= a.groups {
		return 0
	}
	return a.decayed(&a.load[group])
}

// Size returns how many keywords are effectively resident in the group's set
// (decayed mass above the prune threshold).
func (a *Affinity) Size(group int) int {
	if group < 0 || group >= a.groups {
		return 0
	}
	n := 0
	for _, e := range a.sets[group] {
		if a.decayed(e) >= pruneThreshold {
			n++
		}
	}
	return n
}

func jaccard(a, b map[int]bool) float64 {
	inter := 0
	for k := range a {
		if b[k] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Transfer moves the decayed per-keyword mass of a migrated topic from one
// group's resident set to another's, along with the matching share of load.
// The serving tier calls it when a topic's retained state physically moves
// between shards, so the affinity index keeps describing where state actually
// lives instead of re-learning the move over a half-life.
func (a *Affinity) Transfer(from, to int, keywords []string) {
	if from < 0 || from >= a.groups || to < 0 || to >= a.groups || from == to {
		return
	}
	src, dst := a.sets[from], a.sets[to]
	moved := 0.0
	for _, kw := range keywords {
		e := src[kw]
		w := a.decayed(e)
		if w == 0 {
			continue
		}
		delete(src, kw)
		d := dst[kw]
		if d == nil {
			d = &affEntry{}
			dst[kw] = d
		}
		d.w = a.decayed(d) + w
		d.tick = a.tick
		moved += w
	}
	if moved == 0 {
		return
	}
	fl := &a.load[from]
	if w := a.decayed(fl) - moved; w > 0 {
		fl.w = w
	} else {
		fl.w = 0
	}
	fl.tick = a.tick
	tl := &a.load[to]
	tl.w = a.decayed(tl) + moved
	tl.tick = a.tick
}

// ShouldRehome decides whether a topic pinned to group cur has drifted: some
// other group now holds at least factor× cur's decayed mass on the topic's
// keywords (and a non-trivial amount of it). It returns the better group and
// whether migrating there would follow the state. Factor > 1 adds hysteresis
// so a topic does not oscillate between groups trading the lead.
func (a *Affinity) ShouldRehome(cur int, keywords []string, factor float64) (int, bool) {
	if cur < 0 || cur >= a.groups || len(keywords) == 0 || factor < 1 {
		return cur, false
	}
	curMass := a.Mass(cur, keywords)
	best, bestMass := cur, curMass
	for g := 0; g < a.groups; g++ {
		if g == cur {
			continue
		}
		if m := a.Mass(g, keywords); m > bestMass {
			best, bestMass = g, m
		}
	}
	if best == cur || bestMass < 1 || bestMass < curMass*factor {
		return cur, false
	}
	return best, true
}
