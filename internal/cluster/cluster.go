// Package cluster groups user queries into separately executed plan graphs
// (§6.1 "preventing over-sharing of results"): a single shared graph can
// thrash when unrelated queries contend for the ATC, so queries are clustered
// around the workload's most frequently referenced source relations and each
// cluster gets its own graph and ATC — the ATC-CL configuration of §7.
package cluster

import (
	"sort"

	"repro/internal/cq"
)

// Config holds the two thresholds of §6.1.
type Config struct {
	// Tm is the minimum number of references a user query must make to a
	// frequent source to join that source's initial cluster.
	Tm int
	// Tc is the Jaccard-similarity threshold above which clusters merge.
	Tc float64
}

// Defaults returns the thresholds used by the experiments: a user query
// joins a source's initial cluster only when it references the source more
// than four times across its conjunctive queries (strong reliance), and
// clusters merge above 50% Jaccard overlap. These keep clusters small and
// high-overlap, which is what lets ATC-CL retain most of sharing's savings
// while splitting the contention of a single graph (§6.1, §7.1).
func (c Config) Defaults() Config {
	if c.Tm == 0 {
		c.Tm = 4
	}
	if c.Tc == 0 {
		c.Tc = 0.5
	}
	return c
}

// Cluster partitions the user queries. Each returned group is executed on
// its own plan graph; every query appears in exactly one group.
func Cluster(uqs []*cq.UQ, cfg Config) [][]*cq.UQ {
	cfg = cfg.Defaults()
	// Count per-UQ references to each source relation.
	refs := make([]map[string]int, len(uqs))
	freq := map[string]int{}
	for i, uq := range uqs {
		refs[i] = map[string]int{}
		for _, q := range uq.CQs {
			for _, a := range q.Atoms {
				refs[i][a.Rel]++
				freq[a.Rel]++
			}
		}
	}
	// Initial clusters: one per source, holding the UQ indexes that
	// reference it more than Tm times.
	rels := make([]string, 0, len(freq))
	for r := range freq {
		rels = append(rels, r)
	}
	sort.Slice(rels, func(i, j int) bool {
		if freq[rels[i]] != freq[rels[j]] {
			return freq[rels[i]] > freq[rels[j]]
		}
		return rels[i] < rels[j]
	})
	var clusters []map[int]bool
	for _, r := range rels {
		c := map[int]bool{}
		for i := range uqs {
			if refs[i][r] > cfg.Tm {
				c[i] = true
			}
		}
		if len(c) > 0 {
			clusters = append(clusters, c)
		}
	}
	// Merge clusters whose Jaccard similarity exceeds Tc, to fixpoint.
	for merged := true; merged; {
		merged = false
		for i := 0; i < len(clusters) && !merged; i++ {
			for j := i + 1; j < len(clusters) && !merged; j++ {
				if jaccard(clusters[i], clusters[j]) > cfg.Tc {
					for k := range clusters[j] {
						clusters[i][k] = true
					}
					clusters = append(clusters[:j], clusters[j+1:]...)
					merged = true
				}
			}
		}
	}
	// Deterministic assignment: each UQ joins the largest cluster containing
	// it (ties: earliest cluster); uncovered UQs become singletons.
	order := make([]int, len(clusters))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return len(clusters[order[a]]) > len(clusters[order[b]]) })
	assigned := make([]int, len(uqs))
	for i := range assigned {
		assigned[i] = -1
	}
	for _, ci := range order {
		for k := range clusters[ci] {
			if assigned[k] < 0 {
				assigned[k] = ci
			}
		}
	}
	groups := map[int][]*cq.UQ{}
	var keys []int
	next := len(clusters)
	for i, uq := range uqs {
		g := assigned[i]
		if g < 0 {
			g = next
			next++
		}
		if _, ok := groups[g]; !ok {
			keys = append(keys, g)
		}
		groups[g] = append(groups[g], uq)
	}
	sort.Ints(keys)
	out := make([][]*cq.UQ, 0, len(keys))
	for _, k := range keys {
		out = append(out, groups[k])
	}
	return out
}

func jaccard(a, b map[int]bool) float64 {
	inter := 0
	for k := range a {
		if b[k] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}
