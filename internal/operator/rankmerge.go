package operator

import (
	"container/heap"
	"fmt"
	"math"
	"time"

	"repro/internal/cq"
	"repro/internal/state"
	"repro/internal/tuple"
)

// Result is one top-k answer delivered to a user.
type Result struct {
	// UQID / CQID identify which user query and which conjunctive query
	// produced the answer.
	UQID, CQID string
	// Score is the answer's score under the query's model.
	Score float64
	// Row holds the answer's base tuples in the CQ's atom order.
	Row *tuple.Row
	// At is the (virtual) time the answer was emitted.
	At time.Duration
}

// EntryState tracks a conjunctive query's lifecycle inside a rank-merge.
type EntryState int

const (
	// Pending: not yet activated — the query state manager activates CQs
	// incrementally, in nonincreasing U(C) order, only when their upper
	// bound could still beat the emission gate (§3, Table 4).
	Pending EntryState = iota
	// Active: reading inputs and producing candidates.
	Active
	// Pruned: deactivated because its threshold fell below the kth
	// candidate (§6.3); buffered candidates remain eligible.
	Pruned
	// Complete: all inputs exhausted and buffer drained.
	Complete
)

// String names the state.
func (s EntryState) String() string {
	switch s {
	case Pending:
		return "pending"
	case Active:
		return "active"
	case Pruned:
		return "pruned"
	default:
		return "complete"
	}
}

// ThresholdGroup ties one streaming input of a CQ to the threshold formula:
// the input covers Atoms (CQ atom indexes) and its unseen rows have score
// product at most Source.Frontier().
type ThresholdGroup struct {
	Atoms  []int
	Source *NodeExec
}

// CQEntry is the per-conjunctive-query state inside a rank-merge operator.
type CQEntry struct {
	CQ *cq.CQ
	// U is the query's overall score upper bound (activation order).
	U float64
	// State is the lifecycle state.
	State EntryState
	// Groups lists the query's streaming inputs for threshold maintenance.
	Groups []*ThresholdGroup

	maxima []float64
	buffer candidateHeap
	// seen deduplicates offered rows by identity hash (§4.1 rank-merge; it is
	// released when the CQ is unlinked, §6.3, and counted by SeenLen).
	seen *identSet
	dups int
	// acct, when set, tracks buffered candidates plus seen-set entries in
	// the state ledger (endpoint state the row counts never see, §6.3).
	acct *state.Account

	// Threshold memoisation: thresholds change only when a group's stream
	// frontier moves, so the last frontier vector is snapshotted.
	thCache     float64
	thFrontiers []float64
	thSource    *NodeExec
	thValid     bool
}

// NewCQEntry builds an entry. maxima holds the per-atom score maxima in CQ
// atom order.
func NewCQEntry(q *cq.CQ, u float64, maxima []float64) *CQEntry {
	return &CQEntry{CQ: q, U: u, maxima: append([]float64(nil), maxima...), seen: newIdentSet(0)}
}

// Threshold returns the NRA/HRJN-style corner bound on any future (unseen)
// result of this query: the max over non-exhausted streaming inputs of the
// score bound when that input's unseen product cap constrains its atoms and
// every other atom sits at its maximum (§4.1; see scoring.Model.Bound).
// It is -Inf when no input can produce new rows.
func (e *CQEntry) Threshold() float64 {
	e.refresh()
	return e.thCache
}

// PreferredSource returns the non-exhausted streaming input whose bound
// matches the threshold — the stream whose advance "will drop the score
// threshold the most" (§4.1) — or nil.
func (e *CQEntry) PreferredSource() *NodeExec {
	e.refresh()
	return e.thSource
}

// refresh recomputes the memoised threshold when any frontier moved.
func (e *CQEntry) refresh() {
	if e.thFrontiers == nil {
		e.thFrontiers = make([]float64, len(e.Groups))
		for i := range e.thFrontiers {
			e.thFrontiers[i] = math.NaN()
		}
	}
	dirty := !e.thValid
	for i, g := range e.Groups {
		f := g.Source.Frontier()
		if f != e.thFrontiers[i] {
			e.thFrontiers[i] = f
			dirty = true
		}
	}
	if !dirty {
		return
	}
	best := math.Inf(-1)
	var src *NodeExec
	for i, g := range e.Groups {
		if e.thFrontiers[i] == 0 && g.Source.Exhausted() {
			continue
		}
		b := e.CQ.Model.BoundSingleGroup(e.maxima, g.Atoms, e.thFrontiers[i])
		if b > best {
			best, src = b, g.Source
		}
	}
	e.thCache, e.thSource, e.thValid = best, src, true
}

// BufferLen returns the number of buffered candidates (memory accounting).
func (e *CQEntry) BufferLen() int { return len(e.buffer) }

// Duplicates returns how many duplicate rows the entry rejected (tests
// assert this stays zero — Algorithm 2's epoch partitioning must prevent
// re-derivation).
func (e *CQEntry) Duplicates() int { return e.dups }

// SeenLen reports the duplicate-set size in entries (§6.3 memory accounting:
// the seen set is resident state invisible to the row counts).
func (e *CQEntry) SeenLen() int { return e.seen.Len() }

// SetAccount wires the entry to a ledger account, crediting current state.
func (e *CQEntry) SetAccount(a *state.Account) {
	e.acct = a
	a.Add(len(e.buffer) + e.seen.Len())
}

// Account returns the entry's ledger account (nil outside an engine).
func (e *CQEntry) Account() *state.Account { return e.acct }

// DropSeen releases the duplicate-elimination set. The ATC calls it when the
// CQ is unlinked (§6.3): a detached sink receives no further offers, so the
// set — which otherwise grows with every distinct result ever offered — can
// be reclaimed while buffered candidates stay eligible for emission.
func (e *CQEntry) DropSeen() {
	e.acct.Add(-e.seen.Len())
	e.seen = nil
}

// offer inserts a candidate result.
func (e *CQEntry) offer(row *tuple.Row, score float64) {
	if e.seen == nil {
		e.seen = newIdentSet(0)
	}
	if !e.seen.Add(row) {
		e.dups++
		return
	}
	e.acct.Add(2) // one seen entry, one buffered candidate
	heap.Push(&e.buffer, candidate{row: row, score: score, id: row.Identity()})
}

// EndpointSink adapts a terminal node's output into a CQ entry: rows arrive
// in node atom order and are re-oriented into CQ atom order before scoring.
type EndpointSink struct {
	Entry *CQEntry
	// AtomMap maps node expression atom positions to CQ atom indexes.
	AtomMap []int
	scores  []float64 // scratch
}

// NewEndpointSink wires an entry to a terminal node.
func NewEndpointSink(entry *CQEntry, atomMap []int) *EndpointSink {
	return &EndpointSink{Entry: entry, AtomMap: atomMap, scores: make([]float64, len(atomMap))}
}

// Offer scores and buffers one output row. Duplicates are rejected on the
// producer row's cached identity (identity is part-order invariant, so the
// node-order row and its CQ-order projection share one) before any
// projection or scoring work is spent on them.
func (s *EndpointSink) Offer(env *Env, r *tuple.Row) {
	e := s.Entry
	if e.seen == nil {
		e.seen = newIdentSet(0)
	}
	if !e.seen.Add(r) {
		e.dups++
		return
	}
	e.acct.Add(2) // one seen entry, one buffered candidate
	parts := make([]*tuple.Tuple, len(s.AtomMap))
	for ni, ci := range s.AtomMap {
		parts[ci] = r.Part(ni)
	}
	row := tuple.NewRow(parts...)
	row.InheritIdentity(r)
	for i, p := range parts {
		s.scores[i] = p.Score()
	}
	heap.Push(&e.buffer, candidate{row: row, score: e.CQ.Model.Score(s.scores), id: r.Identity()})
}

// candidate is a buffered potential answer.
type candidate struct {
	row   *tuple.Row
	score float64
	id    string
}

// candidateHeap is a max-heap by score (identity ascending on ties, for
// deterministic output).
type candidateHeap []candidate

func (h candidateHeap) Len() int { return len(h) }
func (h candidateHeap) Less(i, j int) bool {
	if h[i].score != h[j].score {
		return h[i].score > h[j].score
	}
	return h[i].id < h[j].id
}
func (h candidateHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *candidateHeap) Push(x interface{}) { *h = append(*h, x.(candidate)) }
func (h *candidateHeap) Pop() interface{} {
	old := *h
	n := len(old)
	c := old[n-1]
	*h = old[:n-1]
	return c
}

// StepKind classifies what a rank-merge did in one scheduling step.
type StepKind int

const (
	// StepEmitted: one answer was emitted.
	StepEmitted StepKind = iota
	// StepRead: the operator wants one tuple read from Step.Source.
	StepRead
	// StepActivated: a pending CQ was activated (and may now need inputs).
	StepActivated
	// StepDone: the user query is finished.
	StepDone
)

// Step reports one scheduling decision.
type Step struct {
	Kind   StepKind
	Source *NodeExec
	Result *Result
	// PrunedCQs lists CQ ids deactivated by this step (§6.3 unlinking).
	PrunedCQs []string
}

// RankMerge merges the output streams of a user query's conjunctive queries
// into its top-k answers, maintaining per-CQ thresholds per the Threshold
// Algorithm / No-Random-Access Algorithm of [7] (§4.1, Figure 6).
type RankMerge struct {
	UQ      *cq.UQ
	K       int
	Entries []*CQEntry

	emitted   []Result
	activated int
	done      bool
}

// NewRankMerge builds the operator; entries must be in nonincreasing U order.
func NewRankMerge(uq *cq.UQ, entries []*CQEntry) *RankMerge {
	return &RankMerge{UQ: uq, K: uq.K, Entries: entries}
}

// Done reports completion.
func (rm *RankMerge) Done() bool { return rm.done }

// Results returns the emitted answers (in emission = rank order).
func (rm *RankMerge) Results() []Result { return rm.emitted }

// ExecutedCQs returns how many conjunctive queries were activated — the
// quantity Table 4 reports.
func (rm *RankMerge) ExecutedCQs() int { return rm.activated }

// Entry returns the entry for a CQ id, or nil.
func (rm *RankMerge) Entry(cqID string) *CQEntry {
	for _, e := range rm.Entries {
		if e.CQ.ID == cqID {
			return e
		}
	}
	return nil
}

// AddEntry grafts another conjunctive query into the operator (§6.2), kept
// sorted by nonincreasing U.
func (rm *RankMerge) AddEntry(e *CQEntry) {
	rm.Entries = append(rm.Entries, e)
	for i := len(rm.Entries) - 1; i > 0 && rm.Entries[i-1].U < rm.Entries[i].U; i-- {
		rm.Entries[i-1], rm.Entries[i] = rm.Entries[i], rm.Entries[i-1]
	}
	rm.done = false
}

// Advance performs one scheduling step:
//
//  1. if k answers are out (or nothing can produce more), finish;
//  2. if the best buffered candidate beats the gate — the max over active
//     thresholds and pending upper bounds — emit it and prune entries whose
//     threshold fell below the kth remaining candidate;
//  3. else if the gate is a pending CQ's upper bound, activate that CQ;
//  4. else request a read from the gate entry's preferred stream.
func (rm *RankMerge) Advance(env *Env) Step {
	for {
		if rm.done {
			return Step{Kind: StepDone}
		}
		if len(rm.emitted) >= rm.K {
			rm.finish()
			return Step{Kind: StepDone}
		}
		// Mark active entries with nothing left as complete.
		for _, e := range rm.Entries {
			if e.State == Active && math.IsInf(e.Threshold(), -1) && len(e.buffer) == 0 {
				e.State = Complete
			}
		}
		// Best buffered candidate across entries.
		var bestEntry *CQEntry
		bestScore := math.Inf(-1)
		for _, e := range rm.Entries {
			if len(e.buffer) == 0 {
				continue
			}
			top := e.buffer[0]
			if top.score > bestScore || (top.score == bestScore && bestEntry != nil && top.id < bestEntry.buffer[0].id) {
				bestScore, bestEntry = top.score, e
			}
		}
		// The emission gate.
		gate := math.Inf(-1)
		var gateEntry *CQEntry
		gatePending := false
		for _, e := range rm.Entries {
			switch e.State {
			case Active:
				if t := e.Threshold(); t > gate {
					gate, gateEntry, gatePending = t, e, false
				}
			case Pending:
				if e.U > gate {
					gate, gateEntry, gatePending = e.U, e, true
				}
			}
		}
		if bestEntry != nil && bestScore >= gate {
			res := rm.emit(env, bestEntry)
			pruned := rm.prune()
			return Step{Kind: StepEmitted, Result: res, PrunedCQs: pruned}
		}
		if gateEntry == nil {
			// No candidates and nothing active or pending: finished early
			// (fewer than k results exist).
			if bestEntry != nil {
				res := rm.emit(env, bestEntry)
				return Step{Kind: StepEmitted, Result: res}
			}
			rm.finish()
			return Step{Kind: StepDone}
		}
		if gatePending {
			gateEntry.State = Active
			rm.activated++
			return Step{Kind: StepActivated}
		}
		src := gateEntry.PreferredSource()
		if src == nil {
			// Threshold came from a group that exhausted concurrently;
			// loop to reclassify.
			continue
		}
		return Step{Kind: StepRead, Source: src}
	}
}

func (rm *RankMerge) emit(env *Env, e *CQEntry) *Result {
	c := heap.Pop(&e.buffer).(candidate)
	e.acct.Add(-1)
	res := Result{UQID: rm.UQ.ID, CQID: e.CQ.ID, Score: c.score, Row: c.row, At: env.Clock.Now()}
	rm.emitted = append(rm.emitted, res)
	env.Metrics.AddResult()
	return &res
}

// prune deactivates active entries whose threshold can no longer reach the
// remaining top-k slots: if (k-emitted) candidates are already buffered with
// scores above an entry's threshold, its future results cannot matter (§6.3).
func (rm *RankMerge) prune() []string {
	need := rm.K - len(rm.emitted)
	if need <= 0 {
		return nil
	}
	// Collect buffered scores to find the need'th highest.
	var scores []float64
	for _, e := range rm.Entries {
		for _, c := range e.buffer {
			scores = append(scores, c.score)
		}
	}
	if len(scores) < need {
		return nil
	}
	kth := quickSelectDesc(scores, need)
	var prunedIDs []string
	for _, e := range rm.Entries {
		if e.State != Active {
			continue
		}
		if t := e.Threshold(); t < kth {
			e.State = Pruned
			prunedIDs = append(prunedIDs, e.CQ.ID)
		}
	}
	return prunedIDs
}

func (rm *RankMerge) finish() {
	rm.done = true
	for _, e := range rm.Entries {
		if e.State == Active || e.State == Pending {
			e.State = Complete
		}
	}
}

// quickSelectDesc returns the n'th largest value (1-based) of xs.
func quickSelectDesc(xs []float64, n int) float64 {
	if n < 1 || n > len(xs) {
		panic(fmt.Sprintf("operator: quickSelect n=%d of %d", n, len(xs)))
	}
	lo, hi := 0, len(xs)-1
	k := n - 1
	for lo < hi {
		p := xs[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for xs[i] > p {
				i++
			}
			for xs[j] < p {
				j--
			}
			if i <= j {
				xs[i], xs[j] = xs[j], xs[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			break
		}
	}
	return xs[k]
}
