package operator

import (
	"fmt"
	"sort"

	"repro/internal/cq"
	"repro/internal/plangraph"
	"repro/internal/source"
	"repro/internal/state"
	"repro/internal/tuple"
)

// NodeExec is the runtime state of one plan-graph node: the opened source for
// stream/probe nodes, or the m-join machinery (access modules, join
// predicates, adaptive probe orders) for join nodes. Every node also carries
// its output Log — the arrival-ordered, epoch-tagged row history that powers
// state reuse (§6).
type NodeExec struct {
	Node *plangraph.Node

	// Stream is set for SourceStream nodes.
	Stream *source.Stream
	// RA is set for SourceProbe nodes.
	RA *source.RandomAccess

	// modules holds one access module per join input (join nodes only).
	modules []*AccessModule
	// preds are the node expression's join predicates in node atom space.
	preds []cq.JoinPred
	// cov[i][a] reports whether input i covers node atom a (precomputed from
	// the edge atom maps; edges partition the node's atoms, §4.1).
	cov [][]bool
	// plans caches the compiled probe plan per driving input: the adaptive
	// probe sequence with each step's oriented lookup predicate, verify list
	// and probe-source base column resolved once instead of on every probe of
	// every tuple. A nil entry is stale and recompiled on next use.
	plans [][]probeStep
	// stats tracks per (drive, probed) fanout for adaptation [24].
	stats map[[2]int]*probeStat
	// arrivals counts rows per input since the last adaptation.
	arrivals []int

	// scratchPartials / scratchNext are the reusable frontier buffers of
	// joinSeeds; probeBuf is the reusable candidate buffer of probeModule and
	// runStoredStep, with candOff marking per-partial boundaries when a step
	// runs batched (the scratch candidate matrix). seedBuf collects one
	// sub-batch's translated arrivals. They hold only transient per-flush
	// state — nothing downstream retains the containers.
	scratchPartials [][]*tuple.Tuple
	scratchNext     [][]*tuple.Tuple
	probeBuf        []partialRow
	candOff         []int
	seedBuf         [][]*tuple.Tuple

	// batchRows is the executor's mini-batch target: DeliverBatch flushes
	// downstream in chunks of at most batchRows rows. <=1 selects the exact
	// per-row delivery path.
	batchRows int
	// vecPool free-lists node-arity part vectors recycled from consumed
	// intermediate join frontiers; vecAccounted is how many pooled vectors
	// the ledger's scratch dimension currently reflects. Pooled vectors are
	// fully overwritten before reuse (probeModule copies all positions), so
	// they are never cleared on recycle.
	vecPool      [][]*tuple.Tuple
	vecAccounted int

	// Log is the node's output history.
	Log *Log

	// consumers are downstream join nodes fed by this node's output (the
	// fan-out across several consumers is the split operator).
	consumers []consumerBinding
	// sinks are rank-merge endpoints fed by this node's output.
	sinks []*EndpointSink

	// raResolve maps a probe-source node to its opened RandomAccess; the ATC
	// installs it so operator need not import the executor.
	raResolve func(*plangraph.Node) *source.RandomAccess

	// acct is the node's ledger account (§6.3 incremental accounting): the
	// log and every module report their size deltas into it, so the state
	// manager's budget check never rescans the graph.
	acct *state.Account

	// HistoryComplete marks that the node's log reflects every row derivable
	// from its inputs' logs; parking clears it. It is ATC bookkeeping kept on
	// the exec so it lives and dies with the node's runtime state — and so
	// the parallel executor's workers, which only ever touch nodes of their
	// own plan-graph component, never share a map of it.
	HistoryComplete bool
}

type consumerBinding struct {
	edge   *plangraph.Edge
	target *NodeExec
}

type probeStat struct {
	probes  float64
	outputs float64
}

// probeStep is one compiled step of a probe plan: everything probeModule
// needs that is invariant per (node, driving input, probed input) — the
// paper's m-join re-derives this on every tuple; we pay it only when the
// adaptive order itself is recomputed.
type probeStep struct {
	// j is the probed input.
	j int
	// edge is the probed input's plan edge.
	edge *plangraph.Edge
	// probe marks a remote random-access input.
	probe bool
	// lookup, when hasLookup, is the equality predicate used for the hash/key
	// lookup, oriented as (bound atom, bound col) -> (j atom, j col).
	lookup    cq.JoinPred
	hasLookup bool
	// verify holds the remaining predicates between bound atoms and j's
	// coverage, same orientation.
	verify []cq.JoinPred
	// baseCol is the probe source's base-relation column behind lookup
	// (probe inputs only).
	baseCol int
	// inv maps node atom -> producer part position for probe inputs (inverse
	// of edge.AtomMap; -1 outside the input's coverage).
	inv []int
	// stat is the (drive, j) fanout accumulator, resolved at compile time so
	// the per-arrival path does no map lookups.
	stat *probeStat
}

// adaptEvery is how many arrivals pass between probe-order recomputations.
const adaptEvery = 64

// DefaultBatchRows is the default mini-batch target of the batched executor:
// join outputs are delivered downstream in chunks of at most this many rows.
const DefaultBatchRows = 64

// maxPooledVecs caps a node's part-vector free list so idle nodes do not pin
// unbounded tuple references between flushes.
const maxPooledVecs = 256

// NewNodeExec builds runtime state for a plan node. Sources are opened by
// the caller (the executor knows the database fleet).
func NewNodeExec(n *plangraph.Node) *NodeExec {
	x := &NodeExec{
		Node:      n,
		Log:       &Log{},
		stats:     map[[2]int]*probeStat{},
		batchRows: DefaultBatchRows,
	}
	if n.Kind == plangraph.Join {
		x.preds = n.Expr.JoinPreds()
		x.modules = make([]*AccessModule, len(n.Inputs))
		for i, e := range n.Inputs {
			x.modules[i] = NewAccessModule(e.AtomMap)
		}
		x.rebuildInputState()
	}
	return x
}

// rebuildInputState sizes the per-input coverage masks, plan cache and
// arrival counters to the current input list.
func (x *NodeExec) rebuildInputState() {
	n := len(x.Node.Inputs)
	nAtoms := len(x.Node.Expr.Atoms)
	x.cov = make([][]bool, n)
	for i, e := range x.Node.Inputs {
		mask := make([]bool, nAtoms)
		for _, a := range e.AtomMap {
			mask[a] = true
		}
		x.cov[i] = mask
	}
	x.plans = make([][]probeStep, n)
	arrivals := make([]int, n)
	copy(arrivals, x.arrivals)
	x.arrivals = arrivals
}

// SyncInputs appends access modules for join inputs added after construction
// (grafting can extend an existing join node... it does not in the current
// state manager, but keeping modules aligned with inputs is cheap insurance).
func (x *NodeExec) SyncInputs() {
	if len(x.modules) == len(x.Node.Inputs) {
		return
	}
	for len(x.modules) < len(x.Node.Inputs) {
		e := x.Node.Inputs[len(x.modules)]
		m := NewAccessModule(e.AtomMap)
		m.SetAccount(x.acct)
		x.modules = append(x.modules, m)
	}
	x.rebuildInputState()
}

// SetAccount wires the node's log and modules to a ledger account (set once
// by the ATC when the exec is created).
func (x *NodeExec) SetAccount(a *state.Account) {
	x.acct = a
	x.Log.SetAccount(a)
	for _, m := range x.modules {
		m.SetAccount(a)
	}
}

// Account returns the node's ledger account (nil outside an engine).
func (x *NodeExec) Account() *state.Account { return x.acct }

// ImportLog reinstalls spilled log rows with their original epochs (§6.3
// revival from the disk tier). The log must be empty.
func (x *NodeExec) ImportLog(rows []*tuple.Row, epochs []int) {
	for i, r := range rows {
		x.Log.Append(r, epochs[i])
	}
}

// ImportModuleRows reinstalls spilled module rows — already in node atom
// space — into input j's module with their original epochs.
func (x *NodeExec) ImportModuleRows(j int, parts [][]*tuple.Tuple, epochs []int) {
	for i, ps := range parts {
		x.modules[j].Insert(ps, epochs[i])
	}
}

// AddConsumer wires a downstream join node.
func (x *NodeExec) AddConsumer(edge *plangraph.Edge, target *NodeExec) {
	for _, c := range x.consumers {
		if c.edge == edge {
			return
		}
	}
	x.consumers = append(x.consumers, consumerBinding{edge, target})
}

// AddSink wires a rank-merge endpoint.
func (x *NodeExec) AddSink(s *EndpointSink) {
	for _, old := range x.sinks {
		if old == s {
			return
		}
	}
	x.sinks = append(x.sinks, s)
}

// RemoveSink detaches an endpoint (CQ completion, §6.3).
func (x *NodeExec) RemoveSink(s *EndpointSink) {
	for i, old := range x.sinks {
		if old == s {
			x.sinks = append(x.sinks[:i], x.sinks[i+1:]...)
			return
		}
	}
}

// RemoveConsumerEdge detaches the runtime binding for a structural edge
// (parking, §6.3); the plan-graph edge itself is kept for future revival.
func (x *NodeExec) RemoveConsumerEdge(e *plangraph.Edge) {
	for i, c := range x.consumers {
		if c.edge == e {
			x.consumers = append(x.consumers[:i], x.consumers[i+1:]...)
			return
		}
	}
}

// HasWork reports whether anything still consumes this node's output.
func (x *NodeExec) HasWork() bool { return len(x.consumers) > 0 || len(x.sinks) > 0 }

// Module returns the i'th access module (tests and the state manager).
func (x *NodeExec) Module(i int) *AccessModule { return x.modules[i] }

// Frontier returns the score-product bound on this stream source's unread
// rows. Only meaningful for SourceStream nodes.
func (x *NodeExec) Frontier() float64 {
	if x.Stream == nil {
		return 0
	}
	return x.Stream.Frontier()
}

// Exhausted reports whether the stream source has no more rows.
func (x *NodeExec) Exhausted() bool { return x.Stream == nil || x.Stream.Exhausted() }

// ReadOne pulls one row from this stream source with a synchronous fetch:
// the ATC thread blocks for the round trip (§7's per-tuple stream delay),
// exactly like the paper's JDBC fetches — which is why queries sharing one
// ATC contend for its read bandwidth (§7.1). The row is logged and pipelined
// through every consumer (split semantics). It returns false when the stream
// is exhausted.
func (x *NodeExec) ReadOne(env *Env, epoch int) bool {
	if x.Stream == nil {
		return false
	}
	r := x.Stream.Next()
	if r == nil {
		return false
	}
	env.ChargeStreamRead(x.Node.Key)
	x.Deliver(env, r, epoch)
	return true
}

// Deliver logs an output row and pipelines it downstream: into every
// consumer m-join (which may cascade) and every endpoint sink.
func (x *NodeExec) Deliver(env *Env, r *tuple.Row, epoch int) {
	x.Log.Append(r, epoch)
	for _, s := range x.sinks {
		s.Offer(env, r)
	}
	for _, c := range x.consumers {
		c.target.Arrive(env, r, c.edge, epoch)
	}
}

// SetBatchRows sets the mini-batch target (n <= 1 disables batching and
// restores the exact per-row path; 0 keeps the default). Batch size never
// changes results: every chunk boundary is also a point the per-row path
// passes through, so digests and work counters are byte-identical at any
// setting.
func (x *NodeExec) SetBatchRows(n int) {
	switch {
	case n == 0:
		x.batchRows = DefaultBatchRows
	case n < 1:
		x.batchRows = 1
	default:
		x.batchRows = n
	}
}

// BatchRows returns the node's effective mini-batch target.
func (x *NodeExec) BatchRows() int { return x.batchRows }

// DeliverBatch logs a node's output rows and pipelines them downstream in
// mini-batches of at most batchRows rows. The serial contract is preserved
// exactly: rows are logged and offered to sinks in production order, and a
// chunk is fully cascaded before the next chunk is logged. Nodes with more
// than one consumer fall back to per-row delivery — the split operator's
// cross-consumer interleave (consumer A sees row i before consumer B, and B
// sees row i before A sees row i+1) is observable in downstream adaptation
// stats, and the batch contract is byte-identical digests AND counters.
func (x *NodeExec) DeliverBatch(env *Env, rows []*tuple.Row, epoch int) {
	if len(rows) == 0 {
		return
	}
	if len(rows) == 1 || x.batchRows <= 1 || len(x.consumers) > 1 {
		for _, r := range rows {
			x.Deliver(env, r, epoch)
		}
		return
	}
	for lo := 0; lo < len(rows); lo += x.batchRows {
		hi := lo + x.batchRows
		if hi > len(rows) {
			hi = len(rows)
		}
		chunk := rows[lo:hi]
		env.Metrics.AddBatchFlush(len(chunk), len(chunk) == x.batchRows)
		x.Log.AppendBatch(chunk, epoch)
		for _, s := range x.sinks {
			for _, r := range chunk {
				s.Offer(env, r)
			}
		}
		for _, c := range x.consumers {
			c.target.ArriveBatch(env, chunk, c.edge, epoch)
		}
	}
}

// Arrive handles a row landing on one input of a join node: it is translated
// into node space, inserted into the input's access module, and probed
// against the other modules following the adaptive probe sequence; complete
// join results are delivered downstream (fully pipelined, §4.1).
func (x *NodeExec) Arrive(env *Env, r *tuple.Row, edge *plangraph.Edge, epoch int) {
	if x.Node.Kind != plangraph.Join {
		panic("operator: Arrive on non-join node " + x.Node.Key)
	}
	idx := edge.InputIdx
	parts := x.translate(r, edge.AtomMap)
	x.modules[idx].Insert(parts, epoch)
	env.Metrics.AddJoinInsert()
	env.ChargeJoin()
	x.arrivals[idx]++
	if x.arrivals[idx]%adaptEvery == 1 {
		x.plans[idx] = nil // recompile lazily from fresh stats
	}
	x.DeliverBatch(env, x.joinFrom(env, idx, parts, MaxEpochLive), epoch)
}

// ArriveBatch handles a mini-batch of rows landing on one input of a join
// node. It replays the serial contract exactly — rows are inserted in
// production order, the probe plan recompiles at the same arrival counts,
// per-step fanout stats reach the same totals — but executes each compiled
// probeStep once over the whole surviving frontier instead of once per row.
// The batch splits at adaptation boundaries so a recompile sees exactly the
// stats the per-row path would have seen; inserting a sub-batch ahead of its
// cascades is safe because cascades never probe the driving input's module.
func (x *NodeExec) ArriveBatch(env *Env, rows []*tuple.Row, edge *plangraph.Edge, epoch int) {
	if len(rows) == 1 || x.batchRows <= 1 {
		for _, r := range rows {
			x.Arrive(env, r, edge, epoch)
		}
		return
	}
	if x.Node.Kind != plangraph.Join {
		panic("operator: ArriveBatch on non-join node " + x.Node.Key)
	}
	idx := edge.InputIdx
	for lo := 0; lo < len(rows); {
		// The sub-batch ends where the next plan recompile would fire: the
		// row that takes arrivals to ≡1 (mod adaptEvery) must see a plan
		// compiled from every earlier row's cascade stats.
		hi := len(rows)
		for k := lo + 1; k < hi; k++ {
			if (x.arrivals[idx]+(k-lo)+1)%adaptEvery == 1 {
				hi = k
				break
			}
		}
		seeds := x.seedBuf[:0]
		for _, r := range rows[lo:hi] {
			parts := x.translate(r, edge.AtomMap)
			x.modules[idx].Insert(parts, epoch)
			env.Metrics.AddJoinInsert()
			env.ChargeJoin()
			x.arrivals[idx]++
			if x.arrivals[idx]%adaptEvery == 1 {
				x.plans[idx] = nil // only the sub-batch's first row can trigger
			}
			seeds = append(seeds, parts)
		}
		x.seedBuf = seeds
		x.DeliverBatch(env, x.joinSeeds(env, idx, seeds, MaxEpochLive), epoch)
		lo = hi
	}
}

// joinFrom extends a newly arrived partial row across all other inputs,
// returning the complete join results (the single-seed form of joinSeeds).
func (x *NodeExec) joinFrom(env *Env, drive int, parts []*tuple.Tuple, maxEpoch int) []*tuple.Row {
	x.seedBuf = append(x.seedBuf[:0], parts)
	return x.joinSeeds(env, drive, x.seedBuf, maxEpoch)
}

// joinSeeds extends a mini-batch of newly arrived partial rows across all
// other inputs, returning the complete join results in exactly the order the
// per-seed serial path produces them: the frontier is step-major, and within
// every step partials are probed in frontier order, so each seed's finished
// descendants precede the next seed's at every step — the output sequence is
// the concatenation of the per-seed outputs. maxEpoch restricts which stored
// rows participate (MaxEpochLive for live arrivals; the graft epoch during
// state recovery, §6.2). Intermediate frontiers live in per-node scratch
// buffers and consumed intermediate part vectors are recycled through the
// node's free list; only the returned rows keep their vectors.
func (x *NodeExec) joinSeeds(env *Env, drive int, seeds [][]*tuple.Tuple, maxEpoch int) []*tuple.Row {
	if len(seeds) == 0 {
		return nil
	}
	steps := x.probePlan(drive)
	cur := append(x.scratchPartials[:0], seeds...)
	next := x.scratchNext[:0]
	for si := range steps {
		if len(cur) == 0 {
			break
		}
		st := &steps[si]
		next = next[:0]
		if !st.probe && st.hasLookup && len(cur) > 1 {
			next = x.runStoredStep(env, st, cur, next, maxEpoch)
		} else {
			for _, p := range cur {
				before := len(next)
				next = x.probeModule(env, st, p, maxEpoch, next)
				st.stat.probes++
				st.stat.outputs += float64(len(next) - before)
			}
		}
		if si > 0 {
			// The vectors in cur were merged outputs of the previous step and
			// are fully consumed now: recycle them. Step-0 inputs are the
			// seeds — owned by the driving module — and the final frontier's
			// vectors transfer to the returned rows; neither is pooled.
			x.recycleVecs(cur)
		}
		cur, next = next, cur
	}
	// Hand the (possibly swapped, possibly grown) buffers back for reuse; the
	// part vectors inside cur are transferred to the returned rows.
	x.scratchPartials, x.scratchNext = cur[:0], next[:0]
	x.syncScratch()
	if len(cur) == 0 {
		return nil
	}
	out := make([]*tuple.Row, len(cur))
	for i, p := range cur {
		out[i] = tuple.NewRow(p...)
	}
	return out
}

// runStoredStep executes one stored-input lookup step over the whole
// frontier: a lookup pass batches every partial's index probe into one
// scratch candidate matrix (probeBuf segmented by candOff), then a verify
// pass merges the survivors. Work counters, fanout stats and the output
// order are exactly those of probing each partial alone.
func (x *NodeExec) runStoredStep(env *Env, st *probeStep, cur, next [][]*tuple.Tuple, maxEpoch int) [][]*tuple.Tuple {
	m := x.modules[st.j]
	x.probeBuf = x.probeBuf[:0]
	x.candOff = x.candOff[:0]
	for _, p := range cur {
		env.Metrics.AddJoinProbe()
		env.ChargeJoin()
		x.probeBuf = m.AppendProbe(x.probeBuf, st.lookup.AtomB, st.lookup.ColB, p[st.lookup.AtomA].Val(st.lookup.ColA), maxEpoch)
		x.candOff = append(x.candOff, len(x.probeBuf))
	}
	lo := 0
	for pi, p := range cur {
		before := len(next)
		for _, cand := range x.probeBuf[lo:x.candOff[pi]] {
			ok := true
			for _, vp := range st.verify {
				pv := p[vp.AtomA]
				cv := cand.parts[vp.AtomB]
				if pv == nil || cv == nil || !pv.Val(vp.ColA).Equal(cv.Val(vp.ColB)) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			merged := x.getVec(len(p))
			copy(merged, p)
			for pos, t := range cand.parts {
				if t != nil {
					merged[pos] = t
				}
			}
			next = append(next, merged)
		}
		lo = x.candOff[pi]
		st.stat.probes++
		st.stat.outputs += float64(len(next) - before)
	}
	return next
}

// getVec returns a node-arity part vector from the free list, or a fresh one.
func (x *NodeExec) getVec(n int) []*tuple.Tuple {
	if k := len(x.vecPool); k > 0 {
		v := x.vecPool[k-1]
		x.vecPool[k-1] = nil
		x.vecPool = x.vecPool[:k-1]
		if cap(v) >= n {
			return v[:n]
		}
	}
	return make([]*tuple.Tuple, n)
}

// recycleVecs returns consumed intermediate part vectors to the free list,
// up to the pool cap.
func (x *NodeExec) recycleVecs(vecs [][]*tuple.Tuple) {
	for _, v := range vecs {
		if len(x.vecPool) >= maxPooledVecs {
			return
		}
		x.vecPool = append(x.vecPool, v)
	}
}

// syncScratch settles the ledger's scratch dimension with the free list's
// current size (one delta per flush instead of two atomics per vector).
func (x *NodeExec) syncScratch() {
	if d := len(x.vecPool) - x.vecAccounted; d != 0 {
		x.acct.AddScratch(d)
		x.vecAccounted = len(x.vecPool)
	}
}

// ScratchSize reports the node's pooled scratch in rows (ledger audit).
func (x *NodeExec) ScratchSize() int { return len(x.vecPool) }

// ReleaseScratch drops the node's pooled scratch memory — the part-vector
// free list and the transient frontier/candidate/seed buffers — and settles
// the ledger's scratch dimension. The ATC calls it whenever the node parks,
// so idle or evicted nodes hold no hidden pools.
func (x *NodeExec) ReleaseScratch() {
	x.vecPool = nil
	x.syncScratch()
	x.scratchPartials, x.scratchNext = nil, nil
	x.probeBuf, x.candOff, x.seedBuf = nil, nil, nil
}

// probeModule finds the rows of the step's input joinable with the bound
// positions of p, appending merged part vectors to dst. Remote random-access
// inputs are probed through their source (cached middleware-side); stored
// inputs are probed through their hash index.
func (x *NodeExec) probeModule(env *Env, st *probeStep, p []*tuple.Tuple, maxEpoch int, dst [][]*tuple.Tuple) [][]*tuple.Tuple {
	if st.probe {
		// Remote random-access source.
		if !st.hasLookup {
			// Not yet connected: cannot probe remotely without a key. The
			// connectivity-aware probe order avoids this; treat as empty.
			return dst
		}
		key := p[st.lookup.AtomA].Val(st.lookup.ColA)
		rows, cached, err := x.RAOf(st.edge).Probe(st.baseCol, key)
		if err != nil {
			panic(fmt.Sprintf("operator: probe %s: %v", st.edge.From.Key, err))
		}
		if cached {
			env.Metrics.AddProbeCacheHit()
			env.ChargeJoin()
		} else {
			env.ChargeRemoteProbe(st.edge.From.Key, len(rows))
		}
		for _, r := range rows {
			ok := true
			for _, vp := range st.verify {
				pv := p[vp.AtomA]
				cv := r.Part(st.inv[vp.AtomB])
				if pv == nil || cv == nil || !pv.Val(vp.ColA).Equal(cv.Val(vp.ColB)) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			merged := x.getVec(len(p))
			copy(merged, p)
			for fi, ti := range st.edge.AtomMap {
				merged[ti] = r.Part(fi)
			}
			dst = append(dst, merged)
		}
		return dst
	}

	env.Metrics.AddJoinProbe()
	env.ChargeJoin()
	x.probeBuf = x.probeBuf[:0]
	if st.hasLookup {
		x.probeBuf = x.modules[st.j].AppendProbe(x.probeBuf, st.lookup.AtomB, st.lookup.ColB, p[st.lookup.AtomA].Val(st.lookup.ColA), maxEpoch)
	} else {
		x.modules[st.j].EachBefore(maxEpoch, func(pr partialRow) { x.probeBuf = append(x.probeBuf, pr) })
	}
	for _, cand := range x.probeBuf {
		ok := true
		for _, vp := range st.verify {
			pv := p[vp.AtomA]
			cv := cand.parts[vp.AtomB]
			if pv == nil || cv == nil || !pv.Val(vp.ColA).Equal(cv.Val(vp.ColB)) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		merged := x.getVec(len(p))
		copy(merged, p)
		for pos, t := range cand.parts {
			if t != nil {
				merged[pos] = t
			}
		}
		dst = append(dst, merged)
	}
	return dst
}

// RAOf resolves the random-access source behind a probe edge. The executor
// fills raResolver; indirection keeps operator free of executor imports.
func (x *NodeExec) RAOf(edge *plangraph.Edge) *source.RandomAccess {
	if x.raResolve == nil {
		panic("operator: probe edge without random-access resolver on " + x.Node.Key)
	}
	ra := x.raResolve(edge.From)
	if ra == nil {
		panic("operator: no random-access source for " + edge.From.Key)
	}
	return ra
}

// SetRAResolver installs the probe-source resolver (set once by the ATC).
func (x *NodeExec) SetRAResolver(f func(*plangraph.Node) *source.RandomAccess) { x.raResolve = f }

// baseColFor translates a node-space (atom, col) into the probe source's base
// relation column. Probe sources are single-atom pushdowns whose argument
// list aligns positionally with the base relation's columns, so the column
// index carries over unchanged; this asserts that invariant instead of
// silently assuming it (a multi-atom probe source would need a real
// translation through the edge's atom map).
func (x *NodeExec) baseColFor(edge *plangraph.Edge, nodeAtom, col int) int {
	if len(edge.From.Expr.Atoms) != 1 || len(edge.AtomMap) != 1 {
		panic(fmt.Sprintf("operator: probe source %s is not single-atom (%d atoms)", edge.From.Key, len(edge.From.Expr.Atoms)))
	}
	if edge.AtomMap[0] != nodeAtom {
		panic(fmt.Sprintf("operator: probe column for atom %d but %s covers atom %d", nodeAtom, edge.From.Key, edge.AtomMap[0]))
	}
	return col
}

// translate maps a producer row (producer atom order) into this node's atom
// space using the edge's atom map.
func (x *NodeExec) translate(r *tuple.Row, atomMap []int) []*tuple.Tuple {
	parts := make([]*tuple.Tuple, len(x.Node.Expr.Atoms))
	for fi, ti := range atomMap {
		parts[ti] = r.Part(fi)
	}
	return parts
}

// probePlan returns (compiling if stale) the probe plan for a driving input:
// a connectivity-respecting order over the other inputs — cheapest observed
// fanout first, remote probes deferred on ties — with each step's lookup
// orientation, verify list and base column resolved.
func (x *NodeExec) probePlan(drive int) []probeStep {
	if plan := x.plans[drive]; plan != nil {
		return plan
	}
	n := len(x.Node.Inputs)
	nAtoms := len(x.Node.Expr.Atoms)
	bound := make([]bool, nAtoms)
	for _, a := range x.Node.Inputs[drive].AtomMap {
		bound[a] = true
	}
	remaining := n - 1
	pending := make([]bool, n)
	for j := 0; j < n; j++ {
		pending[j] = j != drive
	}
	steps := make([]probeStep, 0, remaining)
	for remaining > 0 {
		best := -1
		bestKey := [3]float64{}
		for j := 0; j < n; j++ {
			if !pending[j] {
				continue
			}
			connected := x.connectsTo(j, bound)
			fan := x.fanout(drive, j)
			remote := 0.0
			if x.Node.Inputs[j].Probe {
				remote = 1
			}
			disc := 0.0
			if !connected {
				disc = 1
			}
			key := [3]float64{disc, fan, remote*0.5 + float64(j)*1e-9}
			if best < 0 || less3(key, bestKey) {
				best, bestKey = j, key
			}
		}
		steps = append(steps, x.compileStep(drive, best, bound))
		for _, a := range x.Node.Inputs[best].AtomMap {
			bound[a] = true
		}
		pending[best] = false
		remaining--
	}
	x.plans[drive] = steps
	return steps
}

// compileStep resolves one probe step against the bound-atom set in effect
// when the step runs. The bound set at step k is exactly the union of the
// drive input's coverage and the previously probed inputs' coverages: every
// stored or merged partial is non-nil precisely on its inputs' coverage, so
// the compile-time orientation matches what the per-tuple code used to
// re-derive.
func (x *NodeExec) compileStep(drive, j int, bound []bool) probeStep {
	edge := x.Node.Inputs[j]
	st := probeStep{j: j, edge: edge, probe: edge.Probe, stat: x.stat(drive, j)}
	jc := x.cov[j]
	for _, p0 := range x.preds {
		var pr cq.JoinPred
		switch {
		case jc[p0.AtomB] && !jc[p0.AtomA] && bound[p0.AtomA]:
			pr = p0
		case jc[p0.AtomA] && !jc[p0.AtomB] && bound[p0.AtomB]:
			pr = cq.JoinPred{AtomA: p0.AtomB, ColA: p0.ColB, AtomB: p0.AtomA, ColB: p0.ColA}
		default:
			continue
		}
		if !st.hasLookup {
			st.lookup, st.hasLookup = pr, true
		} else {
			st.verify = append(st.verify, pr)
		}
	}
	if st.probe {
		st.inv = make([]int, len(x.Node.Expr.Atoms))
		for i := range st.inv {
			st.inv[i] = -1
		}
		for fi, ti := range edge.AtomMap {
			st.inv[ti] = fi
		}
		if st.hasLookup {
			st.baseCol = x.baseColFor(edge, st.lookup.AtomB, st.lookup.ColB)
		}
	}
	return st
}

func less3(a, b [3]float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func (x *NodeExec) connectsTo(j int, bound []bool) bool {
	jc := x.cov[j]
	for _, p := range x.preds {
		if (jc[p.AtomA] && bound[p.AtomB]) || (jc[p.AtomB] && bound[p.AtomA]) {
			return true
		}
	}
	return false
}

func (x *NodeExec) stat(i, j int) *probeStat {
	k := [2]int{i, j}
	st, ok := x.stats[k]
	if !ok {
		st = &probeStat{}
		x.stats[k] = st
	}
	return st
}

func (x *NodeExec) fanout(i, j int) float64 {
	st := x.stats[[2]int{i, j}]
	if st == nil || st.probes == 0 {
		return 1.0
	}
	return st.outputs / st.probes
}

// RecoverHistory computes the node's all-old join results — every
// combination whose parts all arrived before epoch e and is not already in
// the node's log — charging the in-memory join work, appending the missing
// results to the log tagged e-1, and returning how many were recovered. This
// is Algorithm 2 in bulk per-node form (see DESIGN.md): the recovered rows
// are routed only to newly grafted consumers via the log; live consumers
// already received every combination involving a newer row.
func (x *NodeExec) RecoverHistory(env *Env, e int) int {
	if x.Node.Kind != plangraph.Join {
		return 0
	}
	drive := -1
	for i, edge := range x.Node.Inputs {
		if !edge.Probe {
			drive = i
			break
		}
	}
	if drive < 0 {
		return 0
	}
	have := x.Log.IdentitySet()
	var results []*tuple.Row
	if x.batchRows <= 1 {
		x.modules[drive].EachBefore(e, func(pr partialRow) {
			env.Metrics.AddReplayTuple()
			env.ChargeJoin()
			for _, out := range x.joinFrom(env, drive, pr.parts, e) {
				if have.Add(out) {
					results = append(results, out)
				}
			}
		})
	} else {
		// Replay the driving module's pre-epoch rows as one seed batch: the
		// step-major frontier yields exactly the per-seed serial output
		// order, and the replay charges are hoisted ahead of the
		// (order-insensitive) cascade charges, so counters and virtual time
		// match the per-row path.
		seeds := x.seedBuf[:0]
		x.modules[drive].EachBefore(e, func(pr partialRow) {
			env.Metrics.AddReplayTuple()
			env.ChargeJoin()
			seeds = append(seeds, pr.parts)
		})
		x.seedBuf = seeds
		for _, out := range x.joinSeeds(env, drive, seeds, e) {
			if have.Add(out) {
				results = append(results, out)
			}
		}
	}
	sort.SliceStable(results, func(i, j int) bool {
		si, sj := results[i].ScoreProduct(), results[j].ScoreProduct()
		if si != sj {
			return si > sj
		}
		return results[i].Identity() < results[j].Identity()
	})
	for _, r := range results {
		x.Log.Append(r, e-1)
	}
	return len(results)
}

// PreloadModule bulk-inserts historical rows into input j's module with
// their original epochs (graft-time state transfer; no stream delay is
// charged — the rows are already in middleware memory).
func (x *NodeExec) PreloadModule(j int, rows []*tuple.Row, epochs []int) {
	edge := x.Node.Inputs[j]
	for i, r := range rows {
		x.modules[j].Insert(x.translate(r, edge.AtomMap), epochs[i])
	}
}

// StateSize reports the node's resident state in rows (modules + log + the
// log's materialised identity set) for the §6.3 memory accounting.
func (x *NodeExec) StateSize() int {
	n := x.Log.Len() + x.Log.IdentCount()
	for _, m := range x.modules {
		n += m.Len()
	}
	return n
}
