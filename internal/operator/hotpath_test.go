package operator

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/cq"
	"repro/internal/dist"
	"repro/internal/metrics"
	"repro/internal/plangraph"
	"repro/internal/relationdb"
	"repro/internal/remotedb"
	"repro/internal/scoring"
	"repro/internal/simclock"
	"repro/internal/source"
	"repro/internal/tuple"
)

// chainFixture is a three-input m-join A(x,y) ⋈ B(y,z) ⋈ C(z,w) with A and B
// stored (stream edges) and C behind a remote-probe edge — the mixed shape
// the compiled probe plans must handle.
type chainFixture struct {
	env   *Env
	x     *NodeExec
	edgeA *plangraph.Edge
	edgeB *plangraph.Edge
	rowsA []*tuple.Row
	rowsB []*tuple.Row
	relA  *relationdb.Relation
	relB  *relationdb.Relation
	relC  *relationdb.Relation
	// nodePos maps CQ atom index -> join-node expression atom position.
	nodePos []int
}

func newChainFixture(t testing.TB, seed uint64, nA, nB, nC, keys int) *chainFixture {
	q := &cq.CQ{
		ID:   "CQ-hot",
		UQID: "UQ-hot",
		Atoms: []*cq.Atom{
			{Rel: "A", DB: "db", Args: []cq.Term{cq.V(0), cq.V(1), cq.V(10)}},
			{Rel: "B", DB: "db", Args: []cq.Term{cq.V(1), cq.V(2), cq.V(11)}},
			{Rel: "C", DB: "db", Args: []cq.Term{cq.V(2), cq.V(3), cq.V(12)}},
		},
		Model: scoring.QSystem(0, []float64{1, 1, 1}),
	}

	rng := dist.New(seed)
	store := relationdb.NewStore("db")
	mkRel := func(name string, n int) *relationdb.Relation {
		s := tuple.NewSchema(name,
			tuple.Column{Name: "u", Type: tuple.KindInt},
			tuple.Column{Name: "v", Type: tuple.KindInt},
			tuple.Column{Name: "score", Type: tuple.KindFloat, Score: true},
		)
		var rows []*tuple.Tuple
		for i := 0; i < n; i++ {
			rows = append(rows, tuple.New(s,
				tuple.Int(int64(rng.Intn(keys))), tuple.Int(int64(rng.Intn(keys))),
				tuple.Float(0.1+0.9*rng.Float64())))
		}
		rel := relationdb.NewRelation(s, rows)
		store.Put(rel)
		return rel
	}
	relA, relB, relC := mkRel("A", nA), mkRel("B", nB), mkRel("C", nC)
	db := remotedb.New(store)

	exprFull, mapping := q.SubExpr([]int{0, 1, 2})
	nodePos := make([]int, len(mapping))
	for ni, qi := range mapping {
		nodePos[qi] = ni
	}
	exprA, _ := q.SubExpr([]int{0})
	exprB, _ := q.SubExpr([]int{1})
	exprC, _ := q.SubExpr([]int{2})

	g := plangraph.New("")
	join := g.EnsureNode(plangraph.Join, exprFull, "db")
	srcA := g.EnsureNode(plangraph.SourceStream, exprA, "db")
	srcB := g.EnsureNode(plangraph.SourceStream, exprB, "db")
	srcC := g.EnsureNode(plangraph.SourceProbe, exprC, "db")
	edgeA := g.Connect(srcA, join, []int{nodePos[0]}, false)
	edgeB := g.Connect(srcB, join, []int{nodePos[1]}, false)
	g.Connect(srcC, join, []int{nodePos[2]}, true)

	x := NewNodeExec(join)
	ra := source.OpenRandomAccess(db, exprC)
	x.SetRAResolver(func(n *plangraph.Node) *source.RandomAccess {
		if n == srcC {
			return ra
		}
		return nil
	})

	env := &Env{
		Clock:   simclock.NewVirtual(0),
		Delays:  simclock.DefaultDelays(dist.New(seed + 1)),
		Metrics: &metrics.Counters{},
	}
	fx := &chainFixture{env: env, x: x, edgeA: edgeA, edgeB: edgeB, relA: relA, relB: relB, relC: relC, nodePos: nodePos}
	for _, tp := range relA.Rows() {
		fx.rowsA = append(fx.rowsA, tuple.NewRow(tp))
	}
	for _, tp := range relB.Rows() {
		fx.rowsB = append(fx.rowsB, tuple.NewRow(tp))
	}
	return fx
}

// runInterleaved feeds A and B arrivals alternately. When invalidate is set,
// every compiled plan is discarded before each arrival, so each probe runs on
// a freshly compiled plan — the reference the cached path must match.
func (fx *chainFixture) runInterleaved(invalidate bool) {
	n := len(fx.rowsA)
	if len(fx.rowsB) > n {
		n = len(fx.rowsB)
	}
	for i := 0; i < n; i++ {
		if invalidate {
			for j := range fx.x.plans {
				fx.x.plans[j] = nil
			}
		}
		if i < len(fx.rowsA) {
			fx.x.Arrive(fx.env, fx.rowsA[i], fx.edgeA, 1)
		}
		if invalidate {
			for j := range fx.x.plans {
				fx.x.plans[j] = nil
			}
		}
		if i < len(fx.rowsB) {
			fx.x.Arrive(fx.env, fx.rowsB[i], fx.edgeB, 1)
		}
	}
}

// logIdentities returns the join results' identities in delivery order.
func logIdentities(l *Log) []string {
	out := make([]string, l.Len())
	for i := range out {
		out[i] = l.Row(i).Identity()
	}
	return out
}

// TestCompiledProbePlansMatchUncompiled compares a cached-plan execution
// against a recompile-before-every-arrival execution of the mixed
// stored/remote join. The two runs see different adaptive probe orders
// (recompiling uses fresher fanout statistics — the same drift the pre-
// compilation code had between its adaptEvery boundaries), so delivery order
// may differ; the result multiset and the insert count must not. Two
// identical cached runs must agree on every work counter exactly.
func TestCompiledProbePlansMatchUncompiled(t *testing.T) {
	// >64 arrivals per input so the adaptEvery invalidation fires mid-run too.
	cached := newChainFixture(t, 42, 150, 150, 60, 12)
	cached2 := newChainFixture(t, 42, 150, 150, 60, 12)
	fresh := newChainFixture(t, 42, 150, 150, 60, 12)

	cached.runInterleaved(false)
	cached2.runInterleaved(false)
	fresh.runInterleaved(true)

	gotIDs, wantIDs := logIdentities(cached.x.Log), logIdentities(fresh.x.Log)
	if len(gotIDs) != len(wantIDs) {
		t.Fatalf("cached plan delivered %d rows, recompiled %d", len(gotIDs), len(wantIDs))
	}
	sort.Strings(gotIDs)
	sort.Strings(wantIDs)
	for i := range gotIDs {
		if gotIDs[i] != wantIDs[i] {
			t.Fatalf("result multiset differs at %d: %q vs %q", i, gotIDs[i], wantIDs[i])
		}
	}
	a, b, c := cached.env.Metrics.Snapshot(), fresh.env.Metrics.Snapshot(), cached2.env.Metrics.Snapshot()
	if a.JoinInserts != b.JoinInserts {
		t.Fatalf("insert counts diverged: %d vs %d", a.JoinInserts, b.JoinInserts)
	}
	// Determinism of the compiled path: identical runs, identical counters.
	if a.JoinInserts != c.JoinInserts || a.JoinProbes != c.JoinProbes ||
		a.ProbeCalls != c.ProbeCalls || a.ProbeTuples != c.ProbeTuples ||
		a.ProbeCacheHits != c.ProbeCacheHits {
		t.Fatalf("identical cached runs diverged: %+v vs %+v", a, c)
	}
	ids1, ids2 := logIdentities(cached.x.Log), logIdentities(cached2.x.Log)
	for i := range ids1 {
		if ids1[i] != ids2[i] {
			t.Fatalf("identical cached runs delivered different row %d", i)
		}
	}
	if a.JoinProbes == 0 || a.ProbeCalls == 0 {
		t.Fatalf("fixture exercised no stored probes (%d) or remote probes (%d)", a.JoinProbes, a.ProbeCalls)
	}
}

// TestProbePlanMatchesDirectDerivation re-derives every step of the compiled
// plan with the original per-probe logic — jCov map rebuild, predicate
// orientation, first-match lookup selection — over the same evolving bound
// set, and requires the compiled steps to agree field for field. This is the
// "before/after compilation" equivalence at the plan level, independent of
// adaptive-order drift.
func TestProbePlanMatchesDirectDerivation(t *testing.T) {
	fx := newChainFixture(t, 11, 100, 100, 50, 10)
	check := func(when string) {
		for drive := 0; drive < len(fx.x.Node.Inputs); drive++ {
			if fx.x.Node.Inputs[drive].Probe {
				continue // probe inputs never drive
			}
			fx.x.plans[drive] = nil
			steps := fx.x.probePlan(drive)
			bound := map[int]bool{}
			for _, a := range fx.x.Node.Inputs[drive].AtomMap {
				bound[a] = true
			}
			for si := range steps {
				st := &steps[si]
				edge := fx.x.Node.Inputs[st.j]
				jCov := map[int]bool{}
				for _, a := range edge.AtomMap {
					jCov[a] = true
				}
				var lookup *cq.JoinPred
				var verify []cq.JoinPred
				for _, p0 := range fx.x.preds {
					var pr cq.JoinPred
					switch {
					case jCov[p0.AtomB] && !jCov[p0.AtomA] && bound[p0.AtomA]:
						pr = p0
					case jCov[p0.AtomA] && !jCov[p0.AtomB] && bound[p0.AtomB]:
						pr = cq.JoinPred{AtomA: p0.AtomB, ColA: p0.ColB, AtomB: p0.AtomA, ColB: p0.ColA}
					default:
						continue
					}
					if lookup == nil {
						lp := pr
						lookup = &lp
					} else {
						verify = append(verify, pr)
					}
				}
				if (lookup != nil) != st.hasLookup {
					t.Fatalf("%s drive %d step %d: lookup presence %v vs %v", when, drive, si, lookup != nil, st.hasLookup)
				}
				if lookup != nil && *lookup != st.lookup {
					t.Fatalf("%s drive %d step %d: lookup %+v vs compiled %+v", when, drive, si, *lookup, st.lookup)
				}
				if len(verify) != len(st.verify) {
					t.Fatalf("%s drive %d step %d: %d verify preds vs %d", when, drive, si, len(verify), len(st.verify))
				}
				for i := range verify {
					if verify[i] != st.verify[i] {
						t.Fatalf("%s drive %d step %d: verify %d %+v vs %+v", when, drive, si, i, verify[i], st.verify[i])
					}
				}
				if st.probe != edge.Probe {
					t.Fatalf("%s drive %d step %d: probe flag %v vs %v", when, drive, si, st.probe, edge.Probe)
				}
				for _, a := range edge.AtomMap {
					bound[a] = true
				}
			}
		}
	}
	check("cold")
	fx.runInterleaved(false) // evolve stats; adaptEvery recompiles mid-run
	check("warm")
}

// TestJoinResultsMatchBruteForce checks the m-join's output against an
// exhaustive nested-loop join of the same data.
func TestJoinResultsMatchBruteForce(t *testing.T) {
	fx := newChainFixture(t, 7, 80, 80, 40, 8)
	fx.runInterleaved(false)

	want := map[string]int{}
	total := 0
	for _, ta := range fx.relA.Rows() {
		for _, tb := range fx.relB.Rows() {
			if !ta.Val(1).Equal(tb.Val(0)) {
				continue
			}
			for _, tc := range fx.relC.Rows() {
				if !tb.Val(1).Equal(tc.Val(0)) {
					continue
				}
				parts := make([]*tuple.Tuple, 3)
				parts[fx.nodePos[0]], parts[fx.nodePos[1]], parts[fx.nodePos[2]] = ta, tb, tc
				want[tuple.NewRow(parts...).Identity()]++
				total++
			}
		}
	}
	got := logIdentities(fx.x.Log)
	if len(got) != total {
		t.Fatalf("delivered %d results, brute force found %d", len(got), total)
	}
	seen := map[string]int{}
	for _, id := range got {
		seen[id]++
	}
	for id, n := range want {
		if seen[id] != n {
			t.Fatalf("identity %q delivered %d times, want %d", id, seen[id], n)
		}
	}
}

// TestBaseColForSingleAtomInvariant pins the documented invariant: probe
// sources are single-atom, the column index carries over, and a violation
// panics instead of probing the wrong column.
func TestBaseColForSingleAtomInvariant(t *testing.T) {
	fx := newChainFixture(t, 3, 10, 10, 10, 4)
	probeEdge := fx.x.Node.Inputs[2]
	if !probeEdge.Probe {
		t.Fatal("input 2 should be the probe edge")
	}
	if got := fx.x.baseColFor(probeEdge, probeEdge.AtomMap[0], 1); got != 1 {
		t.Fatalf("baseColFor = %d, want 1", got)
	}
	// Wrong node atom for this edge must panic.
	wrongAtom := fx.nodePos[0]
	func() {
		defer func() {
			if recover() == nil {
				t.Error("baseColFor accepted a mismatched node atom")
			}
		}()
		fx.x.baseColFor(probeEdge, wrongAtom, 0)
	}()
	// A multi-atom "probe source" must panic.
	multiEdge := &plangraph.Edge{From: fx.x.Node, AtomMap: []int{0, 1, 2}, Probe: true}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("baseColFor accepted a multi-atom probe source")
			}
		}()
		fx.x.baseColFor(multiEdge, 0, 0)
	}()
}

// TestProbePathZeroAllocs locks in the zero-allocation stored-probe path: a
// warm hash index probed through AppendProbe with a reused scratch buffer
// must not allocate.
func TestProbePathZeroAllocs(t *testing.T) {
	s := tuple.NewSchema("R",
		tuple.Column{Name: "k", Type: tuple.KindInt},
		tuple.Column{Name: "score", Type: tuple.KindFloat, Score: true},
	)
	m := NewAccessModule([]int{0})
	for i := 0; i < 256; i++ {
		m.Insert([]*tuple.Tuple{tuple.New(s, tuple.Int(int64(i%32)), tuple.Float(0.5))}, 1)
	}
	scratch := make([]partialRow, 0, 16)
	m.AppendProbe(scratch, 0, 0, tuple.Int(3), MaxEpochLive) // warm the index
	allocs := testing.AllocsPerRun(200, func() {
		scratch = m.AppendProbe(scratch[:0], 0, 0, tuple.Int(3), MaxEpochLive)
	})
	if allocs != 0 {
		t.Fatalf("warm AppendProbe allocates %.1f times per run, want 0", allocs)
	}
	if len(scratch) != 8 {
		t.Fatalf("probe returned %d rows, want 8", len(scratch))
	}
}

// TestSeenSetReleaseAndAccounting covers the §6.3 satellite: the rank-merge
// seen set is visible to memory accounting and reclaimable without breaking
// later offers.
func TestSeenSetReleaseAndAccounting(t *testing.T) {
	s := rowSchema()
	q := &cq.CQ{ID: "CQ1", Atoms: []*cq.Atom{{Rel: "R", Args: []cq.Term{cq.V(0), cq.V(1)}}}, Model: scoring.QSystem(0, []float64{1})}
	entry := NewCQEntry(q, 1, []float64{1})
	sink := NewEndpointSink(entry, []int{0})
	env := &Env{Clock: simclock.NewVirtual(0), Delays: simclock.DefaultDelays(dist.New(1)), Metrics: &metrics.Counters{}}
	for i := 0; i < 10; i++ {
		sink.Offer(env, mkRow(s, i, 0.5))
	}
	sink.Offer(env, mkRow(s, 3, 0.5)) // duplicate
	if entry.SeenLen() != 10 {
		t.Fatalf("SeenLen = %d, want 10", entry.SeenLen())
	}
	if entry.Duplicates() != 1 {
		t.Fatalf("dups = %d, want 1", entry.Duplicates())
	}
	if entry.BufferLen() != 10 {
		t.Fatalf("buffer = %d, want 10", entry.BufferLen())
	}
	entry.DropSeen()
	if entry.SeenLen() != 0 {
		t.Fatalf("SeenLen after DropSeen = %d", entry.SeenLen())
	}
	// Buffered candidates stay; a (stray) later offer must not crash.
	sink.Offer(env, mkRow(s, 99, 0.4))
	if entry.BufferLen() != 11 {
		t.Fatalf("buffer after late offer = %d", entry.BufferLen())
	}
}

// TestLogEachBeforeMatchesBefore pins the epoch-partitioned iteration to the
// slice-returning form, including the unsorted-epoch fallback that recovery
// appends (epoch e-1 after live epoch e rows) can produce.
func TestLogEachBeforeMatchesBefore(t *testing.T) {
	s := rowSchema()
	var l Log
	epochs := []int{1, 1, 2, 3, 3, 1, 2} // out of order at index 5
	for i, e := range epochs {
		l.Append(mkRow(s, i, 0.5), e)
	}
	for e := 0; e <= 4; e++ {
		want := l.Before(e)
		var got []*tuple.Row
		l.EachBefore(e, func(r *tuple.Row) { got = append(got, r) })
		if len(got) != len(want) {
			t.Fatalf("EachBefore(%d) yielded %d rows, Before %d", e, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("EachBefore(%d) row %d differs", e, i)
			}
		}
	}
	// Sorted-epoch fast path: fresh log, nondecreasing epochs.
	var l2 Log
	for i, e := range []int{0, 1, 1, 2, 5} {
		l2.Append(mkRow(s, i, 0.5), e)
	}
	for e := 0; e <= 6; e++ {
		if got, want := len(l2.Before(e)), 0; true {
			l2.EachBefore(e, func(*tuple.Row) { want++ })
			if got != want {
				t.Fatalf("sorted EachBefore(%d): %d vs %d", e, want, got)
			}
		}
	}
}

// TestModuleEachBeforeMatchesScan pins the module-side iteration used by
// RecoverHistory to the slice form.
func TestModuleEachBeforeMatchesScan(t *testing.T) {
	s := rowSchema()
	m := NewAccessModule([]int{0})
	for i := 0; i < 20; i++ {
		m.Insert([]*tuple.Tuple{tuple.New(s, tuple.Int(int64(i)), tuple.Float(0.5))}, i%4)
	}
	for e := 0; e <= 5; e++ {
		want := m.Scan(e)
		var got []partialRow
		m.EachBefore(e, func(pr partialRow) { got = append(got, pr) })
		if len(got) != len(want) {
			t.Fatalf("EachBefore(%d) %d rows, Scan %d", e, len(got), len(want))
		}
		for i := range got {
			if got[i].parts[0] != want[i].parts[0] || got[i].epoch != want[i].epoch {
				t.Fatalf("EachBefore(%d) row %d differs", e, i)
			}
		}
	}
}

// TestIdentitySetMaintainedIncrementally checks the log's resident identity
// set stays consistent across appends and is dropped by Reset.
func TestIdentitySetMaintainedIncrementally(t *testing.T) {
	s := rowSchema()
	var l Log
	l.Append(mkRow(s, 1, 0.9), 1)
	set := l.IdentitySet()
	if set.Len() != 1 {
		t.Fatalf("ident set = %d", set.Len())
	}
	r2 := mkRow(s, 2, 0.8)
	if set.Has(r2) {
		t.Fatal("unseen row reported present")
	}
	l.Append(r2, 1)
	if !l.IdentitySet().Has(r2) || l.IdentCount() != 2 {
		t.Fatalf("append did not maintain ident set (count=%d)", l.IdentCount())
	}
	l.Reset()
	if l.IdentCount() != 0 {
		t.Fatalf("Reset left %d idents", l.IdentCount())
	}
}

// --- microbenchmarks ---------------------------------------------------------

// BenchmarkArrive measures the full per-tuple arrival path (translate,
// insert, compiled probe plan, verify, merge, deliver to log) on the mixed
// stored/remote three-input join.
func BenchmarkArrive(b *testing.B) {
	const batch = 512
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fx := newChainFixture(b, uint64(i)+1, batch, batch, 64, 16)
		b.StartTimer()
		fx.runInterleaved(false)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch*2), "ns/arrival")
}

// BenchmarkAccessModuleProbe measures the warm stored-probe path in
// isolation; it must stay allocation-free.
func BenchmarkAccessModuleProbe(b *testing.B) {
	s := tuple.NewSchema("R",
		tuple.Column{Name: "k", Type: tuple.KindInt},
		tuple.Column{Name: "score", Type: tuple.KindFloat, Score: true},
	)
	m := NewAccessModule([]int{0})
	for i := 0; i < 4096; i++ {
		m.Insert([]*tuple.Tuple{tuple.New(s, tuple.Int(int64(i%256)), tuple.Float(0.5))}, 1)
	}
	scratch := make([]partialRow, 0, 32)
	m.AppendProbe(scratch, 0, 0, tuple.Int(0), MaxEpochLive)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch = m.AppendProbe(scratch[:0], 0, 0, tuple.Int(int64(i%256)), MaxEpochLive)
	}
	_ = scratch
}

// BenchmarkEndpointOffer measures scoring + dedup + buffering per offered
// row, with every second row a duplicate.
func BenchmarkEndpointOffer(b *testing.B) {
	s := rowSchema()
	q := &cq.CQ{ID: "CQ1", Atoms: []*cq.Atom{{Rel: "R", Args: []cq.Term{cq.V(0), cq.V(1)}}}, Model: scoring.QSystem(0, []float64{1})}
	entry := NewCQEntry(q, 1, []float64{1})
	sink := NewEndpointSink(entry, []int{0})
	env := &Env{Clock: simclock.NewVirtual(0), Delays: simclock.DefaultDelays(dist.New(1)), Metrics: &metrics.Counters{}}
	rows := make([]*tuple.Row, 1<<16)
	for i := range rows {
		rows[i] = mkRow(s, i/2, 0.5) // every identity offered twice
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink.Offer(env, rows[i%len(rows)])
	}
	if entry.Duplicates() == 0 && b.N > 1 {
		b.Fatal(fmt.Sprintf("expected duplicates, got %d", entry.Duplicates()))
	}
}
