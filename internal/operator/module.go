package operator

import (
	"math"
	"sort"

	"repro/internal/state"
	"repro/internal/tuple"
)

// identSet is a duplicate-elimination set over row identities. Membership is
// keyed by the row's cached 64-bit identity hash; the (rare) hash collision
// is resolved by comparing the cached identity strings, so the set never
// mis-identifies two distinct rows while keeping the common path free of
// long-string hashing.
type identSet struct {
	buckets map[uint64][]string
	n       int
	// acct, when set, receives +1 per newly added identity — entries reach
	// log identity sets both through Append and directly from recovery
	// (RecoverHistory dedups via the set), so accounting lives here.
	acct *state.Account
}

func newIdentSet(capacity int) *identSet {
	return &identSet{buckets: make(map[uint64][]string, capacity)}
}

// Has reports whether the row's identity is in the set.
func (s *identSet) Has(r *tuple.Row) bool {
	b := s.buckets[r.IdentityHash()]
	if len(b) == 0 {
		return false
	}
	id := r.Identity()
	for _, x := range b {
		if x == id {
			return true
		}
	}
	return false
}

// Add inserts the row's identity, reporting whether it was newly added.
func (s *identSet) Add(r *tuple.Row) bool {
	h := r.IdentityHash()
	b := s.buckets[h]
	if len(b) > 0 {
		id := r.Identity()
		for _, x := range b {
			if x == id {
				return false
			}
		}
	}
	s.buckets[h] = append(b, r.Identity())
	s.n++
	s.acct.Add(1)
	return true
}

// Len returns the number of identities held (memory accounting, §6.3).
func (s *identSet) Len() int {
	if s == nil {
		return 0
	}
	return s.n
}

// Log records a node's delivered rows in arrival order, each tagged with the
// epoch (§6.2's logical timestamp) current when it arrived. Logs are the
// durable state the query state manager reuses across executions: they stand
// in for the paper's linked lists embedded in m-join hash tables, recording
// exactly the original arrival (score) order.
type Log struct {
	rows   []*tuple.Row
	epochs []int

	// epochsSorted tracks whether epochs are nondecreasing in append order
	// (they are in normal operation: recovery appends e-1 before live rows
	// append e). While it holds, EachBefore partitions by binary search
	// instead of scanning every row.
	epochsSorted bool
	// idents, once materialised by IdentitySet, is maintained incrementally
	// by Append so repeated recovery passes stop rebuilding it from scratch.
	// It is resident state and is counted by IdentCount / cleared by Reset.
	idents *identSet

	// acct, when set, receives every size delta (rows + identity entries) so
	// the state subsystem's ledger tracks resident state without rescans.
	acct *state.Account
}

// SetAccount wires the log (and its identity set) to a ledger account,
// crediting any rows it already holds.
func (l *Log) SetAccount(a *state.Account) {
	l.acct = a
	if l.idents != nil {
		l.idents.acct = a
	}
	a.Add(len(l.rows) + l.idents.Len())
}

// Append records a delivered row.
func (l *Log) Append(r *tuple.Row, epoch int) {
	if n := len(l.epochs); n > 0 && epoch < l.epochs[n-1] {
		l.epochsSorted = false
	} else if n == 0 {
		l.epochsSorted = true
	}
	l.rows = append(l.rows, r)
	l.epochs = append(l.epochs, epoch)
	l.acct.Add(1)
	if l.idents != nil {
		l.idents.Add(r) // accounts its own delta
	}
}

// AppendBatch records a mini-batch of delivered rows in production order —
// equivalent to appending each row alone, but the epoch-order bookkeeping
// and the ledger delta are paid once per batch, and when the identity set is
// materialised the batch's identity hashes are computed in one pass before
// the set is touched.
func (l *Log) AppendBatch(rows []*tuple.Row, epoch int) {
	if len(rows) == 0 {
		return
	}
	if n := len(l.epochs); n > 0 && epoch < l.epochs[n-1] {
		l.epochsSorted = false
	} else if n == 0 {
		l.epochsSorted = true
	}
	for _, r := range rows {
		l.rows = append(l.rows, r)
		l.epochs = append(l.epochs, epoch)
	}
	l.acct.Add(len(rows))
	if l.idents != nil {
		for _, r := range rows {
			_ = r.IdentityHash() // hash the batch in one pass, then dedup
		}
		for _, r := range rows {
			l.idents.Add(r) // accounts its own delta
		}
	}
}

// Len returns the number of logged rows.
func (l *Log) Len() int { return len(l.rows) }

// Row returns the i'th logged row.
func (l *Log) Row(i int) *tuple.Row { return l.rows[i] }

// EachBefore calls fn for every row logged with epoch < e, in arrival order —
// the pre-epoch partition Algorithm 2 replays — without materialising a
// slice. When epochs are nondecreasing (the normal case) the partition point
// is found by binary search and the prefix is walked with no per-row check.
func (l *Log) EachBefore(e int, fn func(*tuple.Row)) {
	if l.epochsSorted || len(l.epochs) == 0 {
		hi := sort.SearchInts(l.epochs, e)
		for _, r := range l.rows[:hi] {
			fn(r)
		}
		return
	}
	for i, r := range l.rows {
		if l.epochs[i] < e {
			fn(r)
		}
	}
}

// Before returns the rows logged with epoch < e, in arrival order.
func (l *Log) Before(e int) []*tuple.Row {
	var out []*tuple.Row
	l.EachBefore(e, func(r *tuple.Row) { out = append(out, r) })
	return out
}

// BeforeSorted returns the pre-epoch rows sorted by nonincreasing score
// product (join-node logs hold rows in production order; recovery streams
// them in score order so downstream thresholds stay correct).
func (l *Log) BeforeSorted(e int) []*tuple.Row {
	out := l.Before(e)
	sort.SliceStable(out, func(i, j int) bool {
		si, sj := out[i].ScoreProduct(), out[j].ScoreProduct()
		if si != sj {
			return si > sj
		}
		return out[i].Identity() < out[j].Identity()
	})
	return out
}

// RowsFrom returns the logged rows and their epochs starting at index i —
// the suffix a revived consumer missed while parked.
func (l *Log) RowsFrom(i int) ([]*tuple.Row, []int) {
	if i < 0 || i > len(l.rows) {
		i = len(l.rows)
	}
	return l.rows[i:], l.epochs[i:]
}

// Identities returns the identity set of all logged rows as a string map
// (retained for tests and callers that want a snapshot; the recovery path
// uses IdentitySet).
func (l *Log) Identities() map[string]bool {
	set := make(map[string]bool, len(l.rows))
	for _, r := range l.rows {
		set[r.Identity()] = true
	}
	return set
}

// IdentitySet returns the log's resident identity set, building it on first
// use and maintaining it incrementally afterwards (duplicate suppression
// during state recovery, §6.2).
func (l *Log) IdentitySet() *identSet {
	if l.idents == nil {
		l.idents = newIdentSet(len(l.rows))
		l.idents.acct = l.acct
		for _, r := range l.rows {
			l.idents.Add(r)
		}
	}
	return l.idents
}

// IdentCount reports the resident identity-set size in entries (0 when the
// set was never materialised). It participates in §6.3 memory accounting.
func (l *Log) IdentCount() int { return l.idents.Len() }

// Reset discards the log and its identity set (eviction, §6.3).
func (l *Log) Reset() {
	l.acct.Add(-(len(l.rows) + l.idents.Len()))
	l.rows, l.epochs = nil, nil
	l.idents = nil
	l.epochsSorted = false
}

// Export returns the log's rows and epochs in arrival order (spill
// serialization; the caller must not mutate the slices).
func (l *Log) Export() ([]*tuple.Row, []int) { return l.rows, l.epochs }

// partialRow is a row translated into a join node's atom space: parts is
// indexed by the node expression's atom positions, nil outside the
// originating input's coverage.
type partialRow struct {
	parts []*tuple.Tuple
	epoch int
}

// AccessModule is the per-input state of an m-join (§4.1): the rows received
// on one input, stored in node-space with arrival order and epochs preserved,
// and hash-indexed on demand by (atom position, column).
type AccessModule struct {
	rows []partialRow
	// indexes maps (atom<<16|col) -> comparable value key -> row positions.
	// Keys are tuple.IndexKey rather than formatted strings so inserts and
	// probes do no per-call formatting or allocation.
	indexes map[int]map[tuple.IndexKey][]int32
	// coverage lists the node atom positions this input covers.
	coverage []int
	// acct, when set, receives per-row size deltas for the state ledger.
	acct *state.Account
}

// SetAccount wires the module to a ledger account, crediting any rows it
// already holds.
func (m *AccessModule) SetAccount(a *state.Account) {
	m.acct = a
	a.Add(len(m.rows))
}

// NewAccessModule creates a module covering the given node atom positions.
func NewAccessModule(coverage []int) *AccessModule {
	return &AccessModule{indexes: map[int]map[tuple.IndexKey][]int32{}, coverage: append([]int(nil), coverage...)}
}

// Coverage returns the node atom positions this module covers.
func (m *AccessModule) Coverage() []int { return m.coverage }

// Len returns the number of stored rows (memory accounting).
func (m *AccessModule) Len() int { return len(m.rows) }

// Insert stores a translated row with its epoch and maintains any built
// indexes.
func (m *AccessModule) Insert(parts []*tuple.Tuple, epoch int) {
	pos := int32(len(m.rows))
	m.rows = append(m.rows, partialRow{parts: parts, epoch: epoch})
	m.acct.Add(1)
	for ik, idx := range m.indexes {
		atom, col := ik>>16, ik&0xffff
		if t := parts[atom]; t != nil {
			k := t.Val(col).IndexKey()
			idx[k] = append(idx[k], pos)
		}
	}
}

// index returns (building on demand) the hash index for (atom, col).
func (m *AccessModule) index(atom, col int) map[tuple.IndexKey][]int32 {
	ik := atom<<16 | col
	idx, ok := m.indexes[ik]
	if !ok {
		idx = make(map[tuple.IndexKey][]int32, len(m.rows))
		for pos, pr := range m.rows {
			if t := pr.parts[atom]; t != nil {
				k := t.Val(col).IndexKey()
				idx[k] = append(idx[k], int32(pos))
			}
		}
		m.indexes[ik] = idx
	}
	return idx
}

// AppendProbe appends to dst the stored rows whose (atom, col) value equals v
// and whose epoch is strictly below maxEpoch, returning the extended slice.
// With a warm index and sufficient dst capacity it performs no allocation —
// the m-join hot path passes a per-node scratch buffer.
func (m *AccessModule) AppendProbe(dst []partialRow, atom, col int, v tuple.Value, maxEpoch int) []partialRow {
	for _, pos := range m.index(atom, col)[v.IndexKey()] {
		if m.rows[pos].epoch < maxEpoch {
			dst = append(dst, m.rows[pos])
		}
	}
	return dst
}

// Probe returns the stored rows whose (atom, col) value equals v and whose
// epoch is strictly below maxEpoch (pass math.MaxInt for live probes; state
// recovery passes the graft epoch to see only pre-existing rows).
func (m *AccessModule) Probe(atom, col int, v tuple.Value, maxEpoch int) []partialRow {
	return m.AppendProbe(make([]partialRow, 0, 4), atom, col, v, maxEpoch)
}

// EachBefore calls fn for each stored row with epoch < maxEpoch in insertion
// order (used by state recovery when no index applies), without allocating.
func (m *AccessModule) EachBefore(maxEpoch int, fn func(partialRow)) {
	for _, pr := range m.rows {
		if pr.epoch < maxEpoch {
			fn(pr)
		}
	}
}

// Export returns the module's rows (node-space part vectors) and epochs in
// insertion order (spill serialization; the caller must not mutate).
func (m *AccessModule) Export() ([][]*tuple.Tuple, []int) {
	parts := make([][]*tuple.Tuple, len(m.rows))
	epochs := make([]int, len(m.rows))
	for i, pr := range m.rows {
		parts[i] = pr.parts
		epochs[i] = pr.epoch
	}
	return parts, epochs
}

// Scan returns stored rows with epoch < maxEpoch in insertion order.
func (m *AccessModule) Scan(maxEpoch int) []partialRow {
	var out []partialRow
	m.EachBefore(maxEpoch, func(pr partialRow) { out = append(out, pr) })
	return out
}

// MaxEpochLive is the epoch filter admitting every row.
const MaxEpochLive = math.MaxInt
