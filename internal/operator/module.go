package operator

import (
	"math"
	"sort"

	"repro/internal/tuple"
)

// Log records a node's delivered rows in arrival order, each tagged with the
// epoch (§6.2's logical timestamp) current when it arrived. Logs are the
// durable state the query state manager reuses across executions: they stand
// in for the paper's linked lists embedded in m-join hash tables, recording
// exactly the original arrival (score) order.
type Log struct {
	rows   []*tuple.Row
	epochs []int
}

// Append records a delivered row.
func (l *Log) Append(r *tuple.Row, epoch int) {
	l.rows = append(l.rows, r)
	l.epochs = append(l.epochs, epoch)
}

// Len returns the number of logged rows.
func (l *Log) Len() int { return len(l.rows) }

// Row returns the i'th logged row.
func (l *Log) Row(i int) *tuple.Row { return l.rows[i] }

// Before returns the rows logged with epoch < e, in arrival order — the
// pre-epoch partition Algorithm 2 replays.
func (l *Log) Before(e int) []*tuple.Row {
	var out []*tuple.Row
	for i, r := range l.rows {
		if l.epochs[i] < e {
			out = append(out, r)
		}
	}
	return out
}

// BeforeSorted returns the pre-epoch rows sorted by nonincreasing score
// product (join-node logs hold rows in production order; recovery streams
// them in score order so downstream thresholds stay correct).
func (l *Log) BeforeSorted(e int) []*tuple.Row {
	out := l.Before(e)
	sort.SliceStable(out, func(i, j int) bool {
		si, sj := out[i].ScoreProduct(), out[j].ScoreProduct()
		if si != sj {
			return si > sj
		}
		return out[i].Identity() < out[j].Identity()
	})
	return out
}

// RowsFrom returns the logged rows and their epochs starting at index i —
// the suffix a revived consumer missed while parked.
func (l *Log) RowsFrom(i int) ([]*tuple.Row, []int) {
	if i < 0 || i > len(l.rows) {
		i = len(l.rows)
	}
	return l.rows[i:], l.epochs[i:]
}

// Identities returns the identity set of all logged rows (duplicate
// suppression during state recovery).
func (l *Log) Identities() map[string]bool {
	set := make(map[string]bool, len(l.rows))
	for _, r := range l.rows {
		set[r.Identity()] = true
	}
	return set
}

// Reset discards the log (eviction, §6.3).
func (l *Log) Reset() { l.rows, l.epochs = nil, nil }

// partialRow is a row translated into a join node's atom space: parts is
// indexed by the node expression's atom positions, nil outside the
// originating input's coverage.
type partialRow struct {
	parts []*tuple.Tuple
	epoch int
}

// AccessModule is the per-input state of an m-join (§4.1): the rows received
// on one input, stored in node-space with arrival order and epochs preserved,
// and hash-indexed on demand by (atom position, column).
type AccessModule struct {
	rows []partialRow
	// indexes maps (atom<<16|col) -> value key -> row positions.
	indexes map[int]map[string][]int
	// coverage lists the node atom positions this input covers.
	coverage []int
}

// NewAccessModule creates a module covering the given node atom positions.
func NewAccessModule(coverage []int) *AccessModule {
	return &AccessModule{indexes: map[int]map[string][]int{}, coverage: append([]int(nil), coverage...)}
}

// Coverage returns the node atom positions this module covers.
func (m *AccessModule) Coverage() []int { return m.coverage }

// Len returns the number of stored rows (memory accounting).
func (m *AccessModule) Len() int { return len(m.rows) }

// Insert stores a translated row with its epoch and maintains any built
// indexes.
func (m *AccessModule) Insert(parts []*tuple.Tuple, epoch int) {
	pos := len(m.rows)
	m.rows = append(m.rows, partialRow{parts: parts, epoch: epoch})
	for ik, idx := range m.indexes {
		atom, col := ik>>16, ik&0xffff
		if t := parts[atom]; t != nil {
			k := t.Val(col).Key()
			idx[k] = append(idx[k], pos)
		}
	}
}

// Probe returns the stored rows whose (atom, col) value equals v and whose
// epoch is strictly below maxEpoch (pass math.MaxInt for live probes; state
// recovery passes the graft epoch to see only pre-existing rows).
func (m *AccessModule) Probe(atom, col int, v tuple.Value, maxEpoch int) []partialRow {
	ik := atom<<16 | col
	idx, ok := m.indexes[ik]
	if !ok {
		idx = map[string][]int{}
		for pos, pr := range m.rows {
			if t := pr.parts[atom]; t != nil {
				k := t.Val(col).Key()
				idx[k] = append(idx[k], pos)
			}
		}
		m.indexes[ik] = idx
	}
	positions := idx[v.Key()]
	out := make([]partialRow, 0, len(positions))
	for _, pos := range positions {
		if m.rows[pos].epoch < maxEpoch {
			out = append(out, m.rows[pos])
		}
	}
	return out
}

// Scan returns stored rows with epoch < maxEpoch in insertion order (used by
// state recovery when no index applies).
func (m *AccessModule) Scan(maxEpoch int) []partialRow {
	var out []partialRow
	for _, pr := range m.rows {
		if pr.epoch < maxEpoch {
			out = append(out, pr)
		}
	}
	return out
}

// MaxEpochLive is the epoch filter admitting every row.
const MaxEpochLive = math.MaxInt
