package operator

import (
	"math"
	"sort"
	"testing"

	"repro/internal/dist"
	"repro/internal/tuple"
)

func rowSchema() *tuple.Schema {
	return tuple.NewSchema("R",
		tuple.Column{Name: "id", Type: tuple.KindInt, Key: true},
		tuple.Column{Name: "score", Type: tuple.KindFloat, Score: true},
	)
}

func mkRow(s *tuple.Schema, id int, score float64) *tuple.Row {
	return tuple.NewRow(tuple.New(s, tuple.Int(int64(id)), tuple.Float(score)))
}

func TestLogEpochPartitions(t *testing.T) {
	s := rowSchema()
	var l Log
	l.Append(mkRow(s, 1, 0.9), 1)
	l.Append(mkRow(s, 2, 0.8), 1)
	l.Append(mkRow(s, 3, 0.7), 2)
	if l.Len() != 3 {
		t.Fatalf("len = %d", l.Len())
	}
	before := l.Before(2)
	if len(before) != 2 || before[0].Part(0).Key().AsInt() != 1 {
		t.Fatalf("Before(2) = %v", before)
	}
	if len(l.Before(1)) != 0 || len(l.Before(3)) != 3 {
		t.Error("epoch filtering wrong")
	}
	rows, epochs := l.RowsFrom(1)
	if len(rows) != 2 || epochs[0] != 1 || epochs[1] != 2 {
		t.Errorf("RowsFrom(1) = %v %v", rows, epochs)
	}
	ids := l.Identities()
	if len(ids) != 3 {
		t.Errorf("identities = %d", len(ids))
	}
	l.Reset()
	if l.Len() != 0 {
		t.Error("reset failed")
	}
}

func TestLogBeforeSortedByProduct(t *testing.T) {
	s := rowSchema()
	var l Log
	// Append out of score order (join nodes log in production order).
	l.Append(mkRow(s, 1, 0.2), 1)
	l.Append(mkRow(s, 2, 0.9), 1)
	l.Append(mkRow(s, 3, 0.5), 1)
	got := l.BeforeSorted(2)
	if !sort.SliceIsSorted(got, func(i, j int) bool {
		return got[i].ScoreProduct() > got[j].ScoreProduct()
	}) {
		t.Error("BeforeSorted not sorted")
	}
}

func TestAccessModuleProbeAndEpochs(t *testing.T) {
	s := rowSchema()
	m := NewAccessModule([]int{0})
	mk := func(id int, score float64) []*tuple.Tuple {
		return []*tuple.Tuple{tuple.New(s, tuple.Int(int64(id)), tuple.Float(score))}
	}
	m.Insert(mk(1, 0.5), 1)
	m.Insert(mk(1, 0.4), 2)
	m.Insert(mk(2, 0.3), 1)
	if m.Len() != 3 {
		t.Fatalf("len = %d", m.Len())
	}
	all := m.Probe(0, 0, tuple.Int(1), MaxEpochLive)
	if len(all) != 2 {
		t.Fatalf("live probe = %d rows", len(all))
	}
	old := m.Probe(0, 0, tuple.Int(1), 2)
	if len(old) != 1 || old[0].epoch != 1 {
		t.Fatalf("epoch-filtered probe = %v", old)
	}
	if got := m.Probe(0, 0, tuple.Int(9), MaxEpochLive); len(got) != 0 {
		t.Error("absent key should be empty")
	}
	// Insert after index built must stay consistent.
	m.Insert(mk(1, 0.2), 3)
	if got := m.Probe(0, 0, tuple.Int(1), MaxEpochLive); len(got) != 3 {
		t.Errorf("post-index insert missing: %d", len(got))
	}
	if got := m.Scan(2); len(got) != 2 {
		t.Errorf("Scan(2) = %d rows", len(got))
	}
	if len(m.Coverage()) != 1 || m.Coverage()[0] != 0 {
		t.Error("coverage wrong")
	}
}

func TestQuickSelectDesc(t *testing.T) {
	rng := dist.New(3)
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = math.Floor(rng.Float64()*10) / 10 // duplicates likely
		}
		k := 1 + rng.Intn(n)
		cp := append([]float64(nil), xs...)
		got := quickSelectDesc(cp, k)
		sorted := append([]float64(nil), xs...)
		sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
		if got != sorted[k-1] {
			t.Fatalf("quickSelect(%v, %d) = %v, want %v", xs, k, got, sorted[k-1])
		}
	}
}

func TestCandidateHeapOrdering(t *testing.T) {
	s := rowSchema()
	// Exercise the heap through a minimal entry using offer.
	entry := &CQEntry{seen: newIdentSet(0)}
	entry.offer(mkRow(s, 1, 0.5), 0.5)
	entry.offer(mkRow(s, 2, 0.9), 0.9)
	entry.offer(mkRow(s, 3, 0.7), 0.7)
	entry.offer(mkRow(s, 2, 0.9), 0.9) // duplicate
	if entry.Duplicates() != 1 {
		t.Errorf("duplicates = %d", entry.Duplicates())
	}
	if entry.BufferLen() != 3 {
		t.Fatalf("buffer len = %d", entry.BufferLen())
	}
	if entry.buffer[0].score != 0.9 {
		t.Errorf("heap top = %v", entry.buffer[0].score)
	}
}
