// Package operator implements the query plan graph's runtime operators (§4.1):
// epoch-partitioned access modules with insertion-order logs (the hash tables
// with embedded linked lists of §6.2), the m-join / STeM eddy with adaptive
// probe sequencing [24,34], the split operator (fan-out delivery), and the
// m-way rank-merge operator with TA/NRA-style thresholds [7]. The ATC drives
// these operators; every remote or CPU operation is charged to the execution
// environment's clock and counters, which is how the experiments measure the
// paper's time breakdown (Figure 8).
package operator

import (
	"repro/internal/metrics"
	"repro/internal/simclock"
)

// Env is the execution context shared by all operators of one plan graph:
// one ATC thread, one clock, one delay model, one counter set.
//
// Under the intra-shard parallel executor each plan-graph component is driven
// with its own Env fork (ForComponent): the counters stay shared (they are
// atomic, and their values are order-independent sums), while the clock is
// component-local for the duration of a round so concurrent components never
// serialize through one timeline. Remote-operation delays then come from
// per-source-node delay models (DelayFor) instead of the engine-wide RNG, so
// the delay charged for the i'th read of a source is a pure function of
// (node, i) — independent of how rounds interleave across workers.
type Env struct {
	Clock   simclock.Clock
	Delays  *simclock.DelayModel
	Metrics *metrics.Counters

	// DelayFor, when set, resolves the delay model for a source node's remote
	// operations by the node's plan-graph key. The ATC installs it when the
	// parallel executor is enabled; nil (the default) draws every delay from
	// the shared Delays model, byte-for-byte the serial engine's behaviour.
	DelayFor func(nodeKey string) *simclock.DelayModel
}

// ForComponent forks the environment for one component's scheduling round:
// same counters, same delay resolution, private clock.
func (e *Env) ForComponent(clock simclock.Clock) *Env {
	return &Env{Clock: clock, Delays: e.Delays, Metrics: e.Metrics, DelayFor: e.DelayFor}
}

// delaysFor resolves the delay model charged for a source node's operations.
func (e *Env) delaysFor(nodeKey string) *simclock.DelayModel {
	if e.DelayFor != nil {
		if dm := e.DelayFor(nodeKey); dm != nil {
			return dm
		}
	}
	return e.Delays
}

// ChargeStreamRead advances the clock by one streaming-read delay of the
// given stream-source node.
func (e *Env) ChargeStreamRead(nodeKey string) {
	d := e.delaysFor(nodeKey).StreamRead()
	e.Clock.Advance(d)
	e.Metrics.AddStreamRead(d)
}

// ChargeRemoteProbe advances the clock by one remote-probe delay of the given
// probe-source node; n is the number of tuples the probe returned.
func (e *Env) ChargeRemoteProbe(nodeKey string, n int) {
	d := e.delaysFor(nodeKey).RemoteProbe()
	e.Clock.Advance(d)
	e.Metrics.AddProbe(d, n)
}

// ChargeJoin advances the clock by one in-memory join operation.
func (e *Env) ChargeJoin() {
	d := e.Delays.Join()
	e.Clock.Advance(d)
	e.Metrics.AddJoin(d)
}

// ChargeSpillRead advances the clock by the local-I/O cost of reading rows
// back from a spilled plan segment (§6.3 disk tier) and records the read.
// Spilled rows are charged as cheap local work, not as remote source reads —
// that difference is the entire point of spilling over discarding.
func (e *Env) ChargeSpillRead(rows int, bytes int64) {
	e.Clock.Advance(e.Delays.SpillRead(rows))
	e.Metrics.AddSpillRead(int64(rows), bytes)
}
