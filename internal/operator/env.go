// Package operator implements the query plan graph's runtime operators (§4.1):
// epoch-partitioned access modules with insertion-order logs (the hash tables
// with embedded linked lists of §6.2), the m-join / STeM eddy with adaptive
// probe sequencing [24,34], the split operator (fan-out delivery), and the
// m-way rank-merge operator with TA/NRA-style thresholds [7]. The ATC drives
// these operators; every remote or CPU operation is charged to the execution
// environment's clock and counters, which is how the experiments measure the
// paper's time breakdown (Figure 8).
package operator

import (
	"repro/internal/metrics"
	"repro/internal/simclock"
)

// Env is the execution context shared by all operators of one plan graph:
// one ATC thread, one clock, one delay model, one counter set.
type Env struct {
	Clock   simclock.Clock
	Delays  *simclock.DelayModel
	Metrics *metrics.Counters
}

// ChargeStreamRead advances the clock by one streaming-read delay.
func (e *Env) ChargeStreamRead() {
	d := e.Delays.StreamRead()
	e.Clock.Advance(d)
	e.Metrics.AddStreamRead(d)
}

// ChargeRemoteProbe advances the clock by one remote-probe delay; n is the
// number of tuples the probe returned.
func (e *Env) ChargeRemoteProbe(n int) {
	d := e.Delays.RemoteProbe()
	e.Clock.Advance(d)
	e.Metrics.AddProbe(d, n)
}

// ChargeJoin advances the clock by one in-memory join operation.
func (e *Env) ChargeJoin() {
	d := e.Delays.Join()
	e.Clock.Advance(d)
	e.Metrics.AddJoin(d)
}

// ChargeSpillRead advances the clock by the local-I/O cost of reading rows
// back from a spilled plan segment (§6.3 disk tier) and records the read.
// Spilled rows are charged as cheap local work, not as remote source reads —
// that difference is the entire point of spilling over discarding.
func (e *Env) ChargeSpillRead(rows int, bytes int64) {
	e.Clock.Advance(e.Delays.SpillRead(rows))
	e.Metrics.AddSpillRead(int64(rows), bytes)
}
