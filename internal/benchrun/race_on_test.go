//go:build race

package benchrun

// raceEnabled reports whether the race detector is instrumenting this build;
// wall-clock assertions skip under it (the ~10x slowdown breaks timing, not
// semantics).
const raceEnabled = true
