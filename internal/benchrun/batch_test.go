package benchrun

import (
	"testing"

	"repro/internal/workload"
)

// TestBatchEquivalenceAcrossWorkers is the PR's engine-level equivalence
// gate for the batched executor: on both parallelism-profile workloads
// (multi-topic disjoint components and the high-overlap single component),
// result digests and work counters must be byte-identical at batch targets
// 1, 8 and 64 crossed with 1 and 4 workers. Batch 1 is the exact per-row
// engine and workers 1 the serial scheduler, so every batched/parallel
// combination is pinned against row-at-a-time serial execution. The
// high-overlap workload at 4 workers additionally exercises the
// component-aware work-stealing path (one component, many merges), which the
// gate requires to have actually engaged.
func TestBatchEquivalenceAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence gate is a 12-run workload matrix")
	}
	seedW, err := workload.GUS(1, workload.GUSScaleDefault())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{}.Defaults()
	multi := parallelTopics(seedW, 8, cfg.Seed, cfg.K)
	if len(multi) < 2 {
		t.Fatalf("found only %d disjoint topics — gate is vacuous", len(multi))
	}
	workloads := []struct {
		name   string
		topics [][]string
	}{
		{"multi-topic", multi},
		{"high-overlap", overlapTopics(seedW)},
	}
	for _, wl := range workloads {
		wl := wl
		t.Run(wl.name, func(t *testing.T) {
			ref := ParallelRun{}
			haveRef := false
			stolen := int64(0)
			for _, batch := range []int{1, 8, 64} {
				for _, workers := range []int{1, 4} {
					c := cfg
					c.BatchRows = batch
					run, err := runParallelWorkload(c, wl.topics, workers)
					if err != nil {
						t.Fatalf("batch=%d workers=%d: %v", batch, workers, err)
					}
					stolen += run.StolenMerges
					if !haveRef {
						ref, haveRef = run, true
						continue
					}
					if run.ResultDigest != ref.ResultDigest {
						t.Errorf("batch=%d workers=%d digest %s != batch=1 workers=1 digest %s",
							batch, workers, run.ResultDigest, ref.ResultDigest)
					}
					if run.Counters != ref.Counters {
						t.Errorf("batch=%d workers=%d counters diverge:\n got %+v\nwant %+v",
							batch, workers, run.Counters, ref.Counters)
					}
				}
			}
			// One component and a wave of merges at 4 workers must engage the
			// stealing scheduler; disjoint components must never need it.
			if wl.name == "high-overlap" && stolen == 0 {
				t.Error("work stealing never engaged on the one-component workload")
			}
			if wl.name == "multi-topic" && stolen != 0 {
				t.Errorf("work stealing engaged %d merges on disjoint components", stolen)
			}
		})
	}
}

// TestBatchSweepGate runs the batch-size sweep profile at reduced rounds and
// asserts its shape and semantics gates: one run per canonical size, and
// every batched run byte-identical to the batch=1 per-row run.
func TestBatchSweepGate(t *testing.T) {
	if testing.Short() {
		t.Skip("batch sweep is a multi-run workload")
	}
	p, err := RunBatchSweep(Config{Rounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Runs) != len(BatchSweepSizes) {
		t.Fatalf("sweep measured %d runs, want %d", len(p.Runs), len(BatchSweepSizes))
	}
	for i, r := range p.Runs {
		if r.BatchRows != BatchSweepSizes[i] {
			t.Fatalf("run %d measured batch=%d, want %d", i, r.BatchRows, BatchSweepSizes[i])
		}
		if r.NSPerRow <= 0 || r.Counters.Rows() == 0 {
			t.Fatalf("run batch=%d measured nothing: %+v", r.BatchRows, r)
		}
	}
	if !p.DigestsEqual {
		t.Error("batched runs' digests diverged from the batch=1 per-row path")
	}
	if !p.CountersEqual {
		t.Error("batched runs' counters diverged from the batch=1 per-row path")
	}
	if p.Machine.CPUs <= 0 || p.Machine.GOMAXPROCS <= 0 {
		t.Errorf("profile recorded no machine context: %+v", p.Machine)
	}
}
