//go:build !race

package benchrun

// raceEnabled reports whether the race detector is instrumenting this build.
const raceEnabled = false
