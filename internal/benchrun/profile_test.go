package benchrun

import (
	"os"
	"runtime"
	"testing"
)

// TestBudgetProfileSpillGate is the PR's acceptance gate for the §6.3 spill
// tier on the seeded serving workload: at a bounded budget, the spill run
// must produce byte-identical result digests to the unbounded run while
// reading measurably fewer source-stream tuples than discard eviction at the
// same budget — and it must leak no segment files.
func TestBudgetProfileSpillGate(t *testing.T) {
	if testing.Short() {
		t.Skip("bounded-budget profile is a multi-run workload")
	}
	cfg := Config{Rounds: 2, BudgetRows: 1200}
	p, err := RunBudget(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.Discard.Evictions == 0 || p.Spill.Evictions == 0 {
		t.Fatalf("budget %d evicted nothing (discard=%d spill=%d); gate is vacuous",
			p.BudgetRows, p.Discard.Evictions, p.Spill.Evictions)
	}
	if !p.SpillDigestMatchesUnbounded {
		t.Fatalf("spill digest %s != unbounded digest %s", p.Spill.ResultDigest, p.Unbounded.ResultDigest)
	}
	if p.Spill.StreamTuples >= p.Discard.StreamTuples {
		t.Fatalf("spill read %d stream tuples, discard %d — no savings",
			p.Spill.StreamTuples, p.Discard.StreamTuples)
	}
	if p.Spill.SpillRowsWritten == 0 || p.Spill.RevivalsFromSpill == 0 {
		t.Fatalf("spill lifecycle never exercised: %+v", p.Spill)
	}
	// The profile's temp spill dir is removed before RunBudget returns.
	if p.SpillDirUsed == "" {
		t.Fatal("profile did not record its spill dir")
	}
	if _, err := os.Stat(p.SpillDirUsed); !os.IsNotExist(err) {
		t.Fatalf("spill dir %s leaked: %v", p.SpillDirUsed, err)
	}
}

// TestRoutingProfileAffinityGate is the PR's acceptance gate for §6.1
// cluster-affinity placement at serving scale: on the overlapping-topic
// workload at two shards, affinity routing must read strictly fewer
// source-stream tuples than the fixed keyword hash while producing
// byte-identical result digests — placement moved work, not answers.
func TestRoutingProfileAffinityGate(t *testing.T) {
	if testing.Short() {
		t.Skip("routing profile is a multi-run workload")
	}
	p, err := RunRouting(Config{}.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if !p.DigestsEqual {
		t.Fatalf("affinity digest %s != hash digest %s", p.Affinity.ResultDigest, p.Hash.ResultDigest)
	}
	if p.Affinity.StreamTuples >= p.Hash.StreamTuples {
		t.Fatalf("affinity read %d stream tuples, hash %d — placement saved nothing",
			p.Affinity.StreamTuples, p.Hash.StreamTuples)
	}
	if p.Hash.SharingMisses == 0 {
		t.Fatal("hash routing missed no sharing on the overlapping-topic workload; gate is vacuous")
	}
	if p.Affinity.MissRate >= p.Hash.MissRate {
		t.Fatalf("affinity miss rate %.2f not below hash %.2f", p.Affinity.MissRate, p.Hash.MissRate)
	}
	if p.Affinity.AffinityHits == 0 {
		t.Fatal("affinity routing never routed by affinity")
	}
	if len(p.Affinity.ShardKeywords) != p.Shards || len(p.Hash.ShardKeywords) != p.Shards {
		t.Fatalf("shard keyword sets: hash=%v affinity=%v", p.Hash.ShardKeywords, p.Affinity.ShardKeywords)
	}
}

// TestParallelProfileDigestGate is the PR's acceptance gate for the
// intra-shard parallel executor: on the multi-topic (many-component) and
// high-overlap (one-component) workloads, result digests and work counters
// must be byte-identical at every measured worker count — the executor moves
// rounds across cores, never changes which rows flow — and the parallel runs
// must actually have scheduled multiple components. The wall-clock speedup
// is additionally asserted where it is physically observable: ≥ 4 real CPUs
// and no race instrumentation distorting the timings.
func TestParallelProfileDigestGate(t *testing.T) {
	if testing.Short() {
		t.Skip("parallelism profile is a multi-run workload")
	}
	p, err := RunParallel(Config{}.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if !p.DigestsEqual {
		t.Fatalf("multi-topic digests differ across worker counts: %+v", p.MultiTopic)
	}
	if !p.CountersEqual {
		t.Fatalf("multi-topic counters differ across worker counts: %+v", p.MultiTopic)
	}
	if !p.OverlapDigestsEqual || !p.OverlapCountersEqual {
		t.Fatalf("high-overlap runs differ across worker counts: %+v", p.Overlap)
	}
	if p.Topics < 2 {
		t.Fatalf("only %d disjoint topics — gate is vacuous", p.Topics)
	}
	par := p.MultiTopic[len(p.MultiTopic)-1]
	if par.MaxRoundComponents < 2 {
		t.Fatalf("parallel run never scheduled >1 component (max %d)", par.MaxRoundComponents)
	}
	if int(par.MaxRoundComponents) > p.Topics+1 {
		t.Fatalf("observed %d components for %d topics — components leaked across topics",
			par.MaxRoundComponents, p.Topics)
	}
	if par.Utilization <= 0 {
		t.Fatal("parallel run recorded zero pool utilization")
	}
	// The virtual-clock makespan win is deterministic and hardware-
	// independent: a serial round advances the engine clock by the sum of
	// every component's delays, a parallel round by their max. This is the
	// paper-model form of the ≥25% target and holds on any machine.
	if p.MultiTopicEngineSpeedup < 1.25 {
		t.Errorf("multi-topic engine-clock speedup %.2fx < 1.25x at %d workers",
			p.MultiTopicEngineSpeedup, par.Workers)
	}
	// Wall clock is reported, not asserted: it depends on how many idle
	// cores the test machine happens to have (a saturated 8-core box can
	// legitimately show parity). The deterministic engine-clock assertion
	// above and the bench-smoke CI step (dedicated runner, ≤110% regression
	// bound) carry the wall-side gates.
	t.Logf("wall speedup %.2fx, engine speedup %.2fx (cpus=%d, race=%v)",
		p.MultiTopicSpeedup, p.MultiTopicEngineSpeedup, runtime.NumCPU(), raceEnabled)
}

// TestFleetProfileParityGate is this PR's acceptance gate for the
// distributed serving tier: the routing-profile workload answered by a
// front-end over shard HTTP processes must digest byte-identically to the
// single-process run — the tier moves processes around, not semantics — and
// the live-migration probe must move a topic mid-wave for zero extra
// source-stream tuples with identical answers.
func TestFleetProfileParityGate(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet profile is a multi-run workload over loopback HTTP")
	}
	p, err := RunFleet(Config{}.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if !p.DigestsEqual {
		t.Fatalf("multi-process digest %s != single-process digest %s",
			p.MultiProcess.ResultDigest, p.SingleProcess.ResultDigest)
	}
	if p.Searches == 0 || p.Topics == 0 {
		t.Fatalf("profile ran no searches (%d topics); gate is vacuous", p.Topics)
	}
	m := p.Migration
	if m.Segments == 0 {
		t.Fatal("migration probe exported no segments; gate is vacuous")
	}
	if m.Installed != m.Segments || m.Dropped != 0 {
		t.Fatalf("migration probe: %d/%d installed, %d dropped — in-process gate should accept all",
			m.Installed, m.Segments, m.Dropped)
	}
	if m.ExtraStreamTuples != 0 {
		t.Fatalf("migrating the topic cost %d extra source-stream tuples (stay=%d migrate=%d), want 0",
			m.ExtraStreamTuples, m.StayStreamTuples, m.MigrateStreamTuples)
	}
	if !m.DigestsEqual {
		t.Fatal("migrated-topic answers diverged from the stay-put control")
	}
}

// BenchmarkServingWorkload runs the trajectory serving workload once per
// iteration; it exists so the fixed workload can be profiled with the
// standard pprof tooling (go test -bench ServingWorkload -cpuprofile ...).
func BenchmarkServingWorkload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := RunServing(Config{Rounds: 2}.Defaults())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("rows=%d ns/row=%.1f allocs/row=%.2f", s.Rows, s.NSPerRow, s.AllocsPerRow)
		}
	}
}
