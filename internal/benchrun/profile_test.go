package benchrun

import "testing"

// BenchmarkServingWorkload runs the trajectory serving workload once per
// iteration; it exists so the fixed workload can be profiled with the
// standard pprof tooling (go test -bench ServingWorkload -cpuprofile ...).
func BenchmarkServingWorkload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := RunServing(Config{Rounds: 2}.Defaults())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("rows=%d ns/row=%.1f allocs/row=%.2f", s.Rows, s.NSPerRow, s.AllocsPerRow)
		}
	}
}
