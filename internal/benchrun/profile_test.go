package benchrun

import (
	"os"
	"testing"
)

// TestBudgetProfileSpillGate is the PR's acceptance gate for the §6.3 spill
// tier on the seeded serving workload: at a bounded budget, the spill run
// must produce byte-identical result digests to the unbounded run while
// reading measurably fewer source-stream tuples than discard eviction at the
// same budget — and it must leak no segment files.
func TestBudgetProfileSpillGate(t *testing.T) {
	if testing.Short() {
		t.Skip("bounded-budget profile is a multi-run workload")
	}
	cfg := Config{Rounds: 2, BudgetRows: 1200}
	p, err := RunBudget(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.Discard.Evictions == 0 || p.Spill.Evictions == 0 {
		t.Fatalf("budget %d evicted nothing (discard=%d spill=%d); gate is vacuous",
			p.BudgetRows, p.Discard.Evictions, p.Spill.Evictions)
	}
	if !p.SpillDigestMatchesUnbounded {
		t.Fatalf("spill digest %s != unbounded digest %s", p.Spill.ResultDigest, p.Unbounded.ResultDigest)
	}
	if p.Spill.StreamTuples >= p.Discard.StreamTuples {
		t.Fatalf("spill read %d stream tuples, discard %d — no savings",
			p.Spill.StreamTuples, p.Discard.StreamTuples)
	}
	if p.Spill.SpillRowsWritten == 0 || p.Spill.RevivalsFromSpill == 0 {
		t.Fatalf("spill lifecycle never exercised: %+v", p.Spill)
	}
	// The profile's temp spill dir is removed before RunBudget returns.
	if p.SpillDirUsed == "" {
		t.Fatal("profile did not record its spill dir")
	}
	if _, err := os.Stat(p.SpillDirUsed); !os.IsNotExist(err) {
		t.Fatalf("spill dir %s leaked: %v", p.SpillDirUsed, err)
	}
}

// TestRoutingProfileAffinityGate is the PR's acceptance gate for §6.1
// cluster-affinity placement at serving scale: on the overlapping-topic
// workload at two shards, affinity routing must read strictly fewer
// source-stream tuples than the fixed keyword hash while producing
// byte-identical result digests — placement moved work, not answers.
func TestRoutingProfileAffinityGate(t *testing.T) {
	if testing.Short() {
		t.Skip("routing profile is a multi-run workload")
	}
	p, err := RunRouting(Config{}.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if !p.DigestsEqual {
		t.Fatalf("affinity digest %s != hash digest %s", p.Affinity.ResultDigest, p.Hash.ResultDigest)
	}
	if p.Affinity.StreamTuples >= p.Hash.StreamTuples {
		t.Fatalf("affinity read %d stream tuples, hash %d — placement saved nothing",
			p.Affinity.StreamTuples, p.Hash.StreamTuples)
	}
	if p.Hash.SharingMisses == 0 {
		t.Fatal("hash routing missed no sharing on the overlapping-topic workload; gate is vacuous")
	}
	if p.Affinity.MissRate >= p.Hash.MissRate {
		t.Fatalf("affinity miss rate %.2f not below hash %.2f", p.Affinity.MissRate, p.Hash.MissRate)
	}
	if p.Affinity.AffinityHits == 0 {
		t.Fatal("affinity routing never routed by affinity")
	}
	if len(p.Affinity.ShardKeywords) != p.Shards || len(p.Hash.ShardKeywords) != p.Shards {
		t.Fatalf("shard keyword sets: hash=%v affinity=%v", p.Hash.ShardKeywords, p.Affinity.ShardKeywords)
	}
}

// BenchmarkServingWorkload runs the trajectory serving workload once per
// iteration; it exists so the fixed workload can be profiled with the
// standard pprof tooling (go test -bench ServingWorkload -cpuprofile ...).
func BenchmarkServingWorkload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := RunServing(Config{Rounds: 2}.Defaults())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("rows=%d ns/row=%.1f allocs/row=%.2f", s.Rows, s.NSPerRow, s.AllocsPerRow)
		}
	}
}
