package benchrun

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/admission"
	"repro/internal/dist"
	"repro/internal/fleet"
	"repro/internal/service"
	"repro/internal/workload"
)

// DefaultSaturationRequests is the canonical arrival count of the saturation
// profile: enough requests that the open-loop runs see steady-state queueing,
// few enough that the profile adds seconds, not minutes. Keep stable across
// PRs.
const DefaultSaturationRequests = 120

// SaturationRun is one open-loop run of the saturation profile: a fixed
// seeded Poisson arrival schedule offered at OfferedQPS, each arrival a
// single attempt with no retries.
type SaturationRun struct {
	OfferedQPS float64 `json:"offered_qps"`
	Served     int     `json:"served"`
	Shed       int     `json:"shed"`
	Errors     int     `json:"errors"`

	// Admission counters from the service after the run.
	ShedUserRate     int64 `json:"shed_user_rate"`
	ShedQueueFull    int64 `json:"shed_queue_full"`
	DeadlineCanceled int64 `json:"deadline_canceled"`

	// GoodputQPS is served searches per wall second — the open-loop measure a
	// closed loop cannot produce, because a closed loop self-throttles at
	// capacity instead of forcing the server to shed.
	GoodputQPS float64 `json:"goodput_qps"`
	P50NS      int64   `json:"p50_ns"`
	P99NS      int64   `json:"p99_ns"`

	// DigestMismatches counts served arrivals whose answers differed from the
	// unloaded control at the same arrival index. The degradation contract
	// demands zero: overload may cost answers (sheds), never wrong ones.
	DigestMismatches int `json:"digest_mismatches"`
}

// SaturationProfile is the open-loop overload-control profile checked into
// the trajectory. An unloaded sequential control run fixes each arrival's
// expected answers and the closed-loop capacity ("knee"); then the same
// seeded arrival sequence is offered open-loop at 0.5× the knee (admission on,
// nothing should shed, every answer byte-identical to control) and at 2× the
// knee (the server must shed its way to survival: goodput stays near the
// knee instead of collapsing, served latency stays bounded by the deadline,
// and every served answer still matches control).
type SaturationProfile struct {
	Requests       int     `json:"requests"`
	Machine        Machine `json:"machine"`
	KneeQPS        float64 `json:"knee_qps"`
	UnloadedMeanNS int64   `json:"unloaded_mean_ns"`
	DeadlineNS     int64   `json:"deadline_ns"`

	Below SaturationRun `json:"below"`
	Above SaturationRun `json:"above"`

	// BelowDigestEqual gates the easy half of the contract: below saturation
	// every arrival is served and byte-identical to the unloaded run.
	BelowDigestEqual bool `json:"below_saturation_digest_equal"`
	// GoodputVsKnee is the overloaded run's goodput as a fraction of the
	// knee. Open-loop overload with admission control should hold this near
	// 1.0; without shedding it would collapse toward 0 as queues grow.
	GoodputVsKnee float64 `json:"goodput_vs_knee"`
	// P99WithinDeadline reports whether the overloaded run's served p99 is
	// bounded by the admission deadline (2x slop: deadline checks run at
	// batch boundaries, so a served search can modestly overshoot).
	P99WithinDeadline bool `json:"p99_within_deadline"`
}

// satService builds a fresh single-shard serial service for one saturation
// run. A fresh workload per run keeps the comparison honest (no run inherits
// another's materialised source views); serial single-shard keeps the knee a
// property of the engine, not the measuring machine's core count.
func satService(cfg Config, adm admission.Config) (*service.Service, [][]string, error) {
	w, err := workload.GUS(1, workload.GUSScaleDefault())
	if err != nil {
		return nil, nil, err
	}
	var pool [][]string
	for _, sub := range w.Submissions {
		if len(sub.UQ.Keywords) > 0 {
			pool = append(pool, sub.UQ.Keywords)
		}
	}
	if len(pool) == 0 {
		return nil, nil, fmt.Errorf("benchrun: workload has no keyword suite")
	}
	svc := service.New(w, service.Config{
		Seed:        cfg.Seed,
		K:           cfg.K,
		Shards:      1,
		Workers:     1,
		BatchWindow: 0,
		Admission:   adm,
	})
	return svc, pool, nil
}

// satDigest reduces one result to its answers-only digest (fleet.DigestAnswers
// semantics: UQ numbering stripped), so a loaded run that shed some arrivals
// still compares per index against the unloaded control.
func satDigest(res *service.Result) string {
	h := sha256.New()
	fleet.DigestAnswers(h, fleet.ViewOf(res))
	return hex.EncodeToString(h.Sum(nil))
}

// satUser names arrival i's user. One user per arrival index pins each
// arrival's scoring coefficients independently of execution order: the
// expander seeds a user's coefficient RNG from the name alone, so index i
// draws the same coefficients whether the run is sequential or racing under
// overload — which is what makes per-index digest comparison exact.
func satUser(i int) string { return fmt.Sprintf("sat-u%d", i) }

// satOpenLoop offers the n-arrival schedule at rate req/sec against svc and
// compares each served arrival against the control digests.
func satOpenLoop(svc *service.Service, pool [][]string, control []string, cfg Config, rate float64, k int) SaturationRun {
	n := len(control)
	kwRNG := dist.New(cfg.Seed + 3)
	zipf := dist.NewZipf(kwRNG, len(pool), 0.8)
	kws := make([][]string, n)
	for i := range kws {
		kws[i] = pool[zipf.Next()]
	}
	sched := dist.New(cfg.Seed + 11)
	times := make([]time.Duration, n)
	var clock float64
	for i := range times {
		clock += -math.Log(1-sched.Float64()) / rate
		times[i] = time.Duration(clock * float64(time.Second))
	}

	type outcome struct {
		ok, shed bool
		reason   string
		lat      time.Duration
		digest   string
	}
	outs := make([]outcome, n)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			time.Sleep(time.Until(start.Add(times[i])))
			t0 := time.Now()
			res, err := svc.Search(context.Background(), satUser(i), kws[i], k)
			d := time.Since(t0)
			var shed *admission.ShedError
			switch {
			case err == nil:
				outs[i] = outcome{ok: true, lat: d, digest: satDigest(res)}
			case errors.As(err, &shed):
				outs[i] = outcome{shed: true, reason: shed.Reason, lat: d}
			default:
				outs[i] = outcome{reason: err.Error(), lat: d}
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	run := SaturationRun{OfferedQPS: rate}
	var lats []time.Duration
	for i := range outs {
		o := &outs[i]
		switch {
		case o.ok:
			run.Served++
			lats = append(lats, o.lat)
			if o.digest != control[i] {
				run.DigestMismatches++
			}
		case o.shed:
			run.Shed++
		default:
			run.Errors++
		}
	}
	if wall > 0 {
		run.GoodputQPS = float64(run.Served) / wall.Seconds()
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(q float64) int64 {
		if len(lats) == 0 {
			return 0
		}
		i := int(q*float64(len(lats))) - 1
		if i < 0 {
			i = 0
		}
		return int64(lats[i])
	}
	run.P50NS = pct(0.50)
	run.P99NS = pct(0.99)
	ss := svc.Stats().Service
	run.ShedUserRate = ss.ShedUserRate
	run.ShedQueueFull = ss.ShedQueueFull
	run.DeadlineCanceled = ss.DeadlineCanceled
	return run
}

// RunSaturation measures the saturation profile at cfg.SaturationRequests
// arrivals.
func RunSaturation(cfg Config) (*SaturationProfile, error) {
	cfg = cfg.Defaults()
	n := cfg.SaturationRequests
	if n <= 0 {
		return nil, fmt.Errorf("benchrun: saturation profile needs > 0 requests, got %d", n)
	}
	prof := &SaturationProfile{Requests: n, Machine: machineOf()}

	// Unloaded sequential control: fixes per-index answers and the knee. The
	// keyword stream is the same seeded zipf draw the open-loop runs replay.
	svc, pool, err := satService(cfg, admission.Config{})
	if err != nil {
		return nil, err
	}
	kwRNG := dist.New(cfg.Seed + 3)
	zipf := dist.NewZipf(kwRNG, len(pool), 0.8)
	control := make([]string, n)
	start := time.Now()
	for i := 0; i < n; i++ {
		res, err := svc.Search(context.Background(), satUser(i), pool[zipf.Next()], cfg.K)
		if err != nil {
			svc.Close()
			return nil, fmt.Errorf("benchrun: saturation control search %d: %w", i, err)
		}
		control[i] = satDigest(res)
	}
	wall := time.Since(start)
	svc.Close()
	if wall <= 0 {
		return nil, fmt.Errorf("benchrun: saturation control run took no time")
	}
	prof.KneeQPS = float64(n) / wall.Seconds()
	mean := wall / time.Duration(n)
	prof.UnloadedMeanNS = int64(mean)

	// The admission deadline scales with the measured engine: generous enough
	// that below-saturation queueing never trips it, tight enough that at 2x
	// the knee it sheds the queue instead of letting latency run away.
	deadline := 25 * mean
	if deadline < 100*time.Millisecond {
		deadline = 100 * time.Millisecond
	}
	if deadline > 2*time.Second {
		deadline = 2 * time.Second
	}
	prof.DeadlineNS = int64(deadline)
	// MaxInFlight 1 commits the engine to one merge at a time: admission
	// (plan-graph optimize + graft) is the engine's serial bottleneck, so
	// every release is a sunk ~mean-sized spend and the cheapest overload
	// policy is to re-check deadlines between every commit. MaxPending 64
	// converts a runaway backlog into queue-full sheds.
	adm := admission.Config{MaxPending: 64, Deadline: deadline, MaxInFlight: 1}

	svc, pool, err = satService(cfg, adm)
	if err != nil {
		return nil, err
	}
	prof.Below = satOpenLoop(svc, pool, control, cfg, 0.5*prof.KneeQPS, cfg.K)
	svc.Close()

	svc, pool, err = satService(cfg, adm)
	if err != nil {
		return nil, err
	}
	prof.Above = satOpenLoop(svc, pool, control, cfg, 2*prof.KneeQPS, cfg.K)
	svc.Close()

	prof.BelowDigestEqual = prof.Below.Served == n && prof.Below.DigestMismatches == 0
	if prof.KneeQPS > 0 {
		prof.GoodputVsKnee = prof.Above.GoodputQPS / prof.KneeQPS
	}
	prof.P99WithinDeadline = prof.Above.P99NS <= 2*prof.DeadlineNS
	return prof, nil
}

// Summary renders the profile for the CLI.
func (p *SaturationProfile) Summary() string {
	line := func(name string, r SaturationRun) string {
		return fmt.Sprintf("  %-6s offered=%.1f/s served=%d shed=%d (queue=%d deadline=%d) errors=%d goodput=%.1f/s p99=%v mismatches=%d\n",
			name, r.OfferedQPS, r.Served, r.Shed, r.ShedQueueFull, r.DeadlineCanceled, r.Errors,
			r.GoodputQPS, time.Duration(r.P99NS).Round(time.Microsecond), r.DigestMismatches)
	}
	s := fmt.Sprintf("saturation profile (%d arrivals, knee=%.1f/s, deadline=%v):\n",
		p.Requests, p.KneeQPS, time.Duration(p.DeadlineNS))
	s += line("below", p.Below) + line("above", p.Above)
	s += fmt.Sprintf("  below digest == control: %v; goodput at 2x knee: %.2fx knee; served p99 within deadline: %v\n",
		p.BelowDigestEqual, p.GoodputVsKnee, p.P99WithinDeadline)
	return s
}
