package benchrun

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net"
	"net/http"
	"time"

	"repro/internal/fleet"
	"repro/internal/service"
	"repro/internal/workload"
)

// FleetRun is one execution of the routing-profile workload under a serving
// topology: its source-side work and its result digest.
type FleetRun struct {
	StreamTuples   int64  `json:"stream_tuples"`
	TuplesConsumed int64  `json:"tuples_consumed"`
	ReplayTuples   int64  `json:"replay_tuples"`
	ResultDigest   string `json:"result_digest"`
}

// MigrationProbe is the live-migration consistency check: one topic is
// searched, migrated to the other shard, and searched again, against a
// control run where it stays put. Moving the topic must cost zero extra
// source-stream tuples (the state traveled, so the sources are not re-read)
// and answer identically.
type MigrationProbe struct {
	// Segments/Rows are what the source shard serialized and handed off;
	// Installed/Dropped how the target's consistency gate received them.
	Segments  int `json:"segments"`
	Rows      int `json:"rows"`
	Installed int `json:"installed"`
	Dropped   int `json:"dropped"`

	StayStreamTuples    int64 `json:"stay_stream_tuples"`
	MigrateStreamTuples int64 `json:"migrate_stream_tuples"`
	// ExtraStreamTuples must be zero: migration may move work, never re-pay
	// it at the sources.
	ExtraStreamTuples int64 `json:"extra_stream_tuples"`
	DigestsEqual      bool  `json:"digests_equal"`
}

// FleetProfile is the distributed-tier parity gate checked into the
// trajectory: the routing-profile workload executed once inside a single
// process (Shards=N) and once as a fleet — a stateless front-end routing over
// N shard HTTP servers, each a separate engine seeded via ShardIDOffset. The
// two topologies must produce byte-identical result digests: the tier moves
// processes around, not semantics. The migration probe additionally pins the
// live topic-migration path.
type FleetProfile struct {
	Shards   int     `json:"shards"`
	Topics   int     `json:"topics"`
	Searches int     `json:"searches"`
	Machine  Machine `json:"machine"`

	SingleProcess FleetRun `json:"single_process"`
	MultiProcess  FleetRun `json:"multi_process"`
	DigestsEqual  bool     `json:"digests_equal"`

	Migration MigrationProbe `json:"migration"`
}

// fleetSearches runs the routing-profile search sequence through any search
// function and digests the results.
func fleetSearches(topics [][3][]string, k int, search func(keywords []string) (*fleet.ResultView, error)) (string, int, error) {
	digest := sha256.New()
	searches := 0
	for variant := 0; variant < 3; variant++ {
		for _, tp := range topics {
			view, err := search(tp[variant])
			if err != nil {
				return "", 0, fmt.Errorf("benchrun: fleet search %q: %w", tp[variant], err)
			}
			searches++
			fleet.DigestView(digest, view)
		}
	}
	return hex.EncodeToString(digest.Sum(nil)), searches, nil
}

// RunFleet measures the fleet profile at cfg.RoutingShards shard slots.
func RunFleet(cfg Config) (*FleetProfile, error) {
	cfg = cfg.Defaults()
	shards := cfg.FleetShards
	if shards < 2 {
		return nil, fmt.Errorf("benchrun: fleet profile needs >= 2 shards, got %d", shards)
	}
	prof := &FleetProfile{Shards: shards, Machine: machineOf()}

	// Single-process control: one service owning every shard engine, the
	// exact configuration of the routing profile's affinity run.
	{
		w, err := workload.GUS(1, workload.GUSScaleDefault())
		if err != nil {
			return nil, err
		}
		topics := routingTopics(w)
		if len(topics) == 0 {
			return nil, fmt.Errorf("benchrun: workload has no multi-keyword suite queries")
		}
		prof.Topics = len(topics)
		svc := service.New(w, service.Config{
			Seed: cfg.Seed, K: cfg.K, Shards: shards,
			Router: service.RouterAffinity, Workers: 1, BatchWindow: 0,
		})
		digest, searches, err := fleetSearches(topics, cfg.K, func(kw []string) (*fleet.ResultView, error) {
			res, err := svc.Search(context.Background(), "router-bench", kw, cfg.K)
			if err != nil {
				return nil, err
			}
			return fleet.ViewOf(res), nil
		})
		if err != nil {
			svc.Close()
			return nil, err
		}
		prof.Searches = searches
		st := svc.Stats()
		prof.SingleProcess = FleetRun{
			StreamTuples:   st.Work.StreamTuples,
			TuplesConsumed: st.Work.TuplesConsumed(),
			ReplayTuples:   st.Work.ReplayTuples,
			ResultDigest:   digest,
		}
		if err := svc.Close(); err != nil {
			return nil, err
		}
	}

	// Multi-process run: shard engines behind real HTTP servers on loopback,
	// a stateless front-end expanding and routing over them. Each shard
	// process builds its own workload instance — the generators are seeded,
	// so the N copies are byte-equivalent — and runs Shards=1 with
	// ShardIDOffset=i, seeding its engine identically to in-process shard i.
	{
		run, err := runFleetMulti(cfg, shards)
		if err != nil {
			return nil, err
		}
		prof.MultiProcess = *run
	}
	prof.DigestsEqual = prof.SingleProcess.ResultDigest == prof.MultiProcess.ResultDigest

	mig, err := runMigrationProbe(cfg, shards)
	if err != nil {
		return nil, err
	}
	prof.Migration = *mig
	return prof, nil
}

func runFleetMulti(cfg Config, shards int) (*FleetRun, error) {
	type shardProc struct {
		server   *http.Server
		shardSrv *fleet.ShardServer
		lis      net.Listener
	}
	var procs []*shardProc
	defer func() {
		for _, p := range procs {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			p.server.Shutdown(ctx) //nolint:errcheck
			cancel()
			p.shardSrv.Close()
		}
	}()

	var backends []fleet.Backend
	for i := 0; i < shards; i++ {
		w, err := workload.GUS(1, workload.GUSScaleDefault())
		if err != nil {
			return nil, err
		}
		svc := service.New(w, service.Config{
			Seed: cfg.Seed, K: cfg.K, Shards: 1, ShardIDOffset: i,
			Router: service.RouterAffinity, Workers: 1, BatchWindow: 0,
		})
		ss := fleet.NewShardServer(svc)
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			svc.Close()
			return nil, err
		}
		server := &http.Server{Handler: ss.Handler()}
		go server.Serve(lis) //nolint:errcheck
		procs = append(procs, &shardProc{server: server, shardSrv: ss, lis: lis})
		backends = append(backends, fleet.NewClient("http://"+lis.Addr().String(), fleet.ClientConfig{}))
	}

	wf, err := workload.GUS(1, workload.GUSScaleDefault())
	if err != nil {
		return nil, err
	}
	topics := routingTopics(wf)
	fr, err := fleet.NewFrontend(wf, fleet.FrontendConfig{
		Service: service.Config{Seed: cfg.Seed, K: cfg.K, Router: service.RouterAffinity},
	}, backends)
	if err != nil {
		return nil, err
	}
	defer fr.Close() //nolint:errcheck

	digest, _, err := fleetSearches(topics, cfg.K, func(kw []string) (*fleet.ResultView, error) {
		return fr.Search(context.Background(), "router-bench", kw, cfg.K)
	})
	if err != nil {
		return nil, err
	}
	st := fr.Stats(context.Background())
	return &FleetRun{
		StreamTuples:   st.Work.StreamTuples,
		TuplesConsumed: st.Work.TuplesConsumed(),
		ReplayTuples:   st.Work.ReplayTuples,
		ResultDigest:   digest,
	}, nil
}

// runMigrationProbe compares a topic searched, migrated and searched again
// against the same topic staying put, inside one 2+-shard service (shards of
// one process share the workload's materialized source views, so a migrated
// stream segment passes the consistency gate on the target).
func runMigrationProbe(cfg Config, shards int) (*MigrationProbe, error) {
	run := func(migrate bool) (string, int64, *service.MigrationReport, error) {
		w, err := workload.GUS(1, workload.GUSScaleDefault())
		if err != nil {
			return "", 0, nil, err
		}
		topics := routingTopics(w)
		if len(topics) == 0 {
			return "", 0, nil, fmt.Errorf("benchrun: workload has no multi-keyword suite queries")
		}
		topic := topics[0][0]
		svc := service.New(w, service.Config{
			Seed: cfg.Seed, K: cfg.K, Shards: shards,
			Router: service.RouterAffinity, Workers: 1, BatchWindow: 0,
		})
		defer svc.Close() //nolint:errcheck

		digest := sha256.New()
		res, err := svc.Search(context.Background(), "router-bench", topic, cfg.K)
		if err != nil {
			return "", 0, nil, err
		}
		digestResult(digest, res)

		var rep *service.MigrationReport
		if migrate {
			home := res.Shard
			rep, err = svc.MigrateTopic(topic, home, (home+1)%shards)
			if err != nil {
				return "", 0, nil, err
			}
		}

		res, err = svc.Search(context.Background(), "router-bench", topic, cfg.K)
		if err != nil {
			return "", 0, nil, err
		}
		digestResult(digest, res)
		st := svc.Stats()
		return hex.EncodeToString(digest.Sum(nil)), st.Work.StreamTuples, rep, nil
	}

	stayDigest, stayStream, _, err := run(false)
	if err != nil {
		return nil, err
	}
	migDigest, migStream, rep, err := run(true)
	if err != nil {
		return nil, err
	}
	return &MigrationProbe{
		Segments:            rep.Segments,
		Rows:                rep.Rows,
		Installed:           rep.Installed,
		Dropped:             rep.Dropped,
		StayStreamTuples:    stayStream,
		MigrateStreamTuples: migStream,
		ExtraStreamTuples:   migStream - stayStream,
		DigestsEqual:        stayDigest == migDigest,
	}, nil
}

// Summary renders the profile for the CLI.
func (p *FleetProfile) Summary() string {
	s := fmt.Sprintf("fleet profile (%d shard slots, %d topics x 3 variants):\n", p.Shards, p.Topics)
	line := func(name string, r FleetRun) string {
		return fmt.Sprintf("  %-14s streamTup=%-7d totalTup=%-7d replayed=%-6d digest=%s...\n",
			name, r.StreamTuples, r.TuplesConsumed, r.ReplayTuples, r.ResultDigest[:12])
	}
	s += line("single-process", p.SingleProcess) + line("multi-process", p.MultiProcess)
	s += fmt.Sprintf("  multi-process digest == single-process: %v\n", p.DigestsEqual)
	m := p.Migration
	s += fmt.Sprintf("  migration: segments=%d rows=%d installed=%d dropped=%d extraStreamTup=%d digestsEqual=%v\n",
		m.Segments, m.Rows, m.Installed, m.Dropped, m.ExtraStreamTuples, m.DigestsEqual)
	return s
}
