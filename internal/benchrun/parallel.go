package benchrun

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"io"
	"runtime"
	"time"

	"repro/internal/atc"
	"repro/internal/batcher"
	"repro/internal/candidates"
	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/dist"
	"repro/internal/mqo"
	"repro/internal/qsm"
	"repro/internal/workload"
)

// DefaultParallelWorkers is the canonical worker count of the parallelism
// profile's parallel runs. Keep stable across PRs.
const DefaultParallelWorkers = 4

// parallelRounds is how many admission waves each profile run executes: the
// first wave is cold, the second grafts onto retained state — so the profile
// covers both the cold multi-source OpenStream path and replay-heavy rounds.
const parallelRounds = 2

// ParallelRun is one execution of a parallelism workload at a worker count.
type ParallelRun struct {
	Workers int `json:"workers"`

	WallNS   int64   `json:"wall_ns"`
	Rows     int64   `json:"rows"`
	NSPerRow float64 `json:"ns_per_row"`
	// EngineNS is the engine's virtual-clock makespan: under the paper's
	// delay model (Poisson remote reads, fixed join CPU), a serial round
	// advances the clock by the SUM of every component's delays while a
	// parallel round advances it by their MAX — so this is the
	// hardware-independent, fully deterministic form of the multi-core win
	// (wall_ns shows it only when real CPUs are plural). Note the virtual
	// model assumes a worker per component: makespan is identical at any
	// worker count > 1; real pool contention shows up only in wall_ns.
	EngineNS int64 `json:"engine_ns"`

	Counters     Counters `json:"counters"`
	ResultDigest string   `json:"result_digest"`

	// MaxRoundComponents is the peak number of independent plan-graph
	// components one scheduling round drove; Utilization is worker busy time
	// over pool capacity across parallel rounds. Both are zero for the
	// serial (-workers 1) run, which never computes components.
	MaxRoundComponents int64   `json:"max_round_components,omitempty"`
	Utilization        float64 `json:"utilization,omitempty"`
	// StolenMerges counts merges executed by the component-aware
	// work-stealing scheduler (rounds with fewer components than workers);
	// zero when every round had enough components to keep the pool busy.
	StolenMerges int64 `json:"stolen_merges,omitempty"`
}

// ParallelProfile is the intra-shard parallel-executor comparison checked
// into the trajectory: the same seeded workloads executed at -workers 1 and
// -workers N inside one engine. Digests and work counters must be
// byte-identical at every worker count — the executor changes where rounds
// run, never which rows flow. Wall-clock numbers are recorded together with
// the CPU count they were measured on: a multi-core win is only observable
// when CPUs and components are both plural.
type ParallelProfile struct {
	Workers int `json:"workers"`
	// CPUs is runtime.NumCPU() at measurement time — the hardware context
	// every wall-clock delta below must be read against. Machine repeats it
	// together with GOMAXPROCS in the shape every profile block shares.
	CPUs    int     `json:"cpus"`
	Machine Machine `json:"machine"`
	Topics  int     `json:"topics"`
	Rounds  int     `json:"rounds"`

	// MultiTopic runs a low-overlap workload — topics chosen so their
	// candidate networks touch pairwise-disjoint relation sets, so every
	// topic is its own plan-graph component — at 1, 2 and N workers.
	MultiTopic []ParallelRun `json:"multi_topic"`
	// Overlap runs the workload's own high-overlap suite (one giant shared
	// component) at 1 and N workers: the executor must not regress when
	// there is nothing to parallelize.
	Overlap []ParallelRun `json:"overlap"`

	// DigestsEqual / CountersEqual gate the multi-topic runs across all
	// worker counts; the Overlap* pair gates the high-overlap runs.
	DigestsEqual         bool `json:"digests_equal"`
	CountersEqual        bool `json:"counters_equal"`
	OverlapDigestsEqual  bool `json:"overlap_digests_equal"`
	OverlapCountersEqual bool `json:"overlap_counters_equal"`

	// MultiTopicSpeedup is serial ns/row over best-parallel ns/row (>1 means
	// the parallel executor was faster); OverlapOverhead is the parallel
	// run's wall-clock fraction over serial on the one-component workload
	// (0.05 = 5% slower). MultiTopicEngineSpeedup is the same comparison on
	// the virtual-clock makespan — deterministic and independent of how
	// many real CPUs the measurement ran on.
	MultiTopicSpeedup       float64 `json:"multi_topic_speedup"`
	MultiTopicEngineSpeedup float64 `json:"multi_topic_engine_speedup"`
	OverlapOverhead         float64 `json:"overlap_overhead"`
}

// parallelTopics derives the low-overlap topic pool: keyword pairs whose
// generated candidate networks touch pairwise-disjoint relation sets. Node
// keys are canonical expressions over relations, so disjoint relation sets
// guarantee the topics share no plan-graph node — each is its own
// scheduling component, at any admission order, forever.
func parallelTopics(w *workload.Workload, max int, seed uint64, k int) [][]string {
	genCfg := w.Gen
	genCfg.Graph = w.Schema
	genCfg.Catalog = w.Catalog
	terms := w.Schema.Terms()
	claimed := map[string]bool{}
	var topics [][]string
	for i := 0; i < len(terms) && len(topics) < max; i++ {
		for j := i + 1; j < len(terms) && len(topics) < max; j++ {
			pair := []string{terms[i], terms[j]}
			uq, err := candidates.Generate(genCfg, "probe", pair, k, dist.New(seed+77))
			if err != nil || len(uq.CQs) < 2 {
				continue // unconnected or trivial: no join work to schedule
			}
			rels := map[string]bool{}
			for _, q := range uq.CQs {
				for _, a := range q.Atoms {
					rels[a.Rel] = true
				}
			}
			overlap := false
			for r := range rels {
				if claimed[r] {
					overlap = true
					break
				}
			}
			if overlap {
				continue
			}
			for r := range rels {
				claimed[r] = true
			}
			topics = append(topics, pair)
		}
	}
	return topics
}

// generateWaves expands the topic pool into per-round user queries with
// deterministic ids and scoring draws, identical inputs for every worker
// count.
func generateWaves(w *workload.Workload, topics [][]string, rounds int, seed uint64, k int) ([][]*cq.UQ, error) {
	genCfg := w.Gen
	genCfg.Graph = w.Schema
	genCfg.Catalog = w.Catalog
	waves := make([][]*cq.UQ, rounds)
	for r := 0; r < rounds; r++ {
		for t, kws := range topics {
			id := fmt.Sprintf("UQ-r%d-t%d", r, t)
			rng := dist.New(seed + uint64(r)*100003 + uint64(t)*1009)
			uq, err := candidates.Generate(genCfg, id, kws, k, rng)
			if err != nil {
				return nil, fmt.Errorf("benchrun: generate %v: %w", kws, err)
			}
			waves[r] = append(waves[r], uq)
		}
	}
	return waves, nil
}

// runParallelWorkload executes the waves inside one engine at the given
// worker count and measures it. A fresh workload is built per run so no run
// inherits another's materialised source views.
func runParallelWorkload(cfg Config, topics [][]string, workers int) (ParallelRun, error) {
	w, err := workload.GUS(1, workload.GUSScaleDefault())
	if err != nil {
		return ParallelRun{}, err
	}
	waves, err := generateWaves(w, topics, parallelRounds, cfg.Seed, cfg.K)
	if err != nil {
		return ParallelRun{}, err
	}
	p := core.NewPipeline(w.Fleet, w.Catalog, core.Options{Mode: qsm.ShareAll, Seed: cfg.Seed, BatchRows: cfg.BatchRows})
	p.Manager.Unit = qsm.UnitUQ
	if workers > 1 {
		p.ATC.EnableParallel(workers, cfg.Seed)
		defer p.ATC.Close()
	}

	digest := sha256.New()
	start := time.Now()
	for _, wave := range waves {
		now := p.Env.Clock.Now()
		subs := make([]batcher.Submission, len(wave))
		maxK := 0
		for i, uq := range wave {
			subs[i] = batcher.Submission{At: now, UQ: uq}
			if uq.K > maxK {
				maxK = uq.K
			}
		}
		p.Manager.SyncCatalog()
		if _, err := p.Admit(subs, mqo.Config{K: maxK}); err != nil {
			return ParallelRun{}, fmt.Errorf("benchrun: admit wave: %w", err)
		}
		for p.ATC.RunRound() {
		}
		for _, uq := range wave {
			m := p.ATC.MergeByUQ(uq.ID)
			if m == nil {
				return ParallelRun{}, fmt.Errorf("benchrun: %s not registered", uq.ID)
			}
			if m.Err != nil {
				return ParallelRun{}, fmt.Errorf("benchrun: %s failed: %w", uq.ID, m.Err)
			}
			digestMerge(digest, m)
		}
	}
	wall := time.Since(start)

	counters := countersOf(p.Snapshot())
	rows := counters.Rows()
	if rows == 0 {
		return ParallelRun{}, fmt.Errorf("benchrun: parallel run processed no rows")
	}
	run := ParallelRun{
		Workers:      workers,
		WallNS:       int64(wall),
		Rows:         rows,
		NSPerRow:     float64(wall) / float64(rows),
		EngineNS:     int64(p.Env.Clock.Now()),
		Counters:     counters,
		ResultDigest: hex.EncodeToString(digest.Sum(nil)),
	}
	if ps := p.ATC.ParallelStats(); ps.Workers > 0 {
		run.MaxRoundComponents = ps.Components.Max
		run.Utilization = ps.Utilization
		run.StolenMerges = ps.StolenMerges
	}
	return run, nil
}

// digestMerge folds one finished merge's answers into the running digest —
// rank, score, producing CQ and base-tuple identities, like digestResult on
// the serving surface.
func digestMerge(h hash.Hash, m *atc.MergeState) {
	results := m.RM.Results()
	fmt.Fprintf(h, "%s|%v|%d\n", m.RM.UQ.ID, m.RM.UQ.Keywords, len(results))
	for i, r := range results {
		fmt.Fprintf(h, "%d|%.9g|%s|", i+1, r.Score, r.CQID)
		for _, t := range r.Row.Parts() {
			io.WriteString(h, t.Schema().Name())
			io.WriteString(h, ":")
			io.WriteString(h, t.Identity())
			io.WriteString(h, "&")
		}
		io.WriteString(h, "\n")
	}
}

// overlapTopics is the high-overlap pool: the workload's own suite keywords,
// whose shared terms collapse every query into one plan-graph component.
func overlapTopics(w *workload.Workload) [][]string {
	var topics [][]string
	for _, sub := range w.Submissions {
		topics = append(topics, append([]string(nil), sub.UQ.Keywords...))
	}
	return topics
}

// RunParallel measures the parallelism profile at cfg.ParallelWorkers.
func RunParallel(cfg Config) (*ParallelProfile, error) {
	cfg = cfg.Defaults()
	workers := cfg.ParallelWorkers
	if workers < 2 {
		return nil, fmt.Errorf("benchrun: parallelism profile needs >= 2 workers, got %d", workers)
	}
	seedW, err := workload.GUS(1, workload.GUSScaleDefault())
	if err != nil {
		return nil, err
	}
	topics := parallelTopics(seedW, 8, cfg.Seed, cfg.K)
	if len(topics) < 2 {
		return nil, fmt.Errorf("benchrun: found only %d disjoint topics", len(topics))
	}
	prof := &ParallelProfile{
		Workers: workers,
		CPUs:    runtime.NumCPU(),
		Machine: machineOf(),
		Topics:  len(topics),
		Rounds:  parallelRounds,
	}

	// Multi-topic (many components): serial, half, and full worker counts.
	counts := []int{1}
	if workers > 2 {
		counts = append(counts, (workers+1)/2)
	}
	counts = append(counts, workers)
	for _, n := range counts {
		run, err := runParallelWorkload(cfg, topics, n)
		if err != nil {
			return nil, err
		}
		prof.MultiTopic = append(prof.MultiTopic, run)
	}
	prof.DigestsEqual, prof.CountersEqual = runsAgree(prof.MultiTopic)
	serial, best := prof.MultiTopic[0], prof.MultiTopic[len(prof.MultiTopic)-1]
	if best.NSPerRow > 0 {
		prof.MultiTopicSpeedup = serial.NSPerRow / best.NSPerRow
	}
	if best.EngineNS > 0 {
		prof.MultiTopicEngineSpeedup = float64(serial.EngineNS) / float64(best.EngineNS)
	}

	// High-overlap (one giant component): the parallel executor must not
	// regress when every query shares one subgraph.
	overlap := overlapTopics(seedW)
	for _, n := range []int{1, workers} {
		run, err := runParallelWorkload(cfg, overlap, n)
		if err != nil {
			return nil, err
		}
		prof.Overlap = append(prof.Overlap, run)
	}
	prof.OverlapDigestsEqual, prof.OverlapCountersEqual = runsAgree(prof.Overlap)
	if prof.Overlap[0].WallNS > 0 {
		prof.OverlapOverhead = float64(prof.Overlap[1].WallNS)/float64(prof.Overlap[0].WallNS) - 1
	}
	return prof, nil
}

// runsAgree reports whether every run's digest and counters match the first.
func runsAgree(runs []ParallelRun) (digests, counters bool) {
	digests, counters = true, true
	for _, r := range runs[1:] {
		if r.ResultDigest != runs[0].ResultDigest {
			digests = false
		}
		if r.Counters != runs[0].Counters {
			counters = false
		}
	}
	return digests, counters
}

// Summary renders the profile for the CLI.
func (p *ParallelProfile) Summary() string {
	line := func(r ParallelRun) string {
		extra := ""
		if r.Workers > 1 {
			extra = fmt.Sprintf(" comps<=%d util=%.2f", r.MaxRoundComponents, r.Utilization)
		}
		return fmt.Sprintf("  workers=%-2d %8.1f ns/row  engine=%v  (%d rows)%s\n",
			r.Workers, r.NSPerRow, time.Duration(r.EngineNS).Round(time.Millisecond), r.Rows, extra)
	}
	s := fmt.Sprintf("parallelism profile (%d topics x %d rounds, %d cpus):\n", p.Topics, p.Rounds, p.CPUs)
	s += " multi-topic (disjoint components):\n"
	for _, r := range p.MultiTopic {
		s += line(r)
	}
	s += fmt.Sprintf("  digests_equal=%v counters_equal=%v wall_speedup=%.2fx engine_speedup=%.2fx\n",
		p.DigestsEqual, p.CountersEqual, p.MultiTopicSpeedup, p.MultiTopicEngineSpeedup)
	s += " high-overlap (one component):\n"
	for _, r := range p.Overlap {
		s += line(r)
	}
	s += fmt.Sprintf("  digests_equal=%v counters_equal=%v overhead=%+.1f%%\n",
		p.OverlapDigestsEqual, p.OverlapCountersEqual, 100*p.OverlapOverhead)
	return s
}
