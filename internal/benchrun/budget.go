package benchrun

import (
	"fmt"
	"os"

	"repro/internal/service"
)

// BudgetRun is one bounded-budget execution of the seeded serving workload:
// its source-side work, its state-lifecycle traffic, and its result digest.
type BudgetRun struct {
	Mode string `json:"mode"` // unbounded | discard | spill

	StreamTuples   int64 `json:"stream_tuples"`
	TuplesConsumed int64 `json:"tuples_consumed"`
	ReplayTuples   int64 `json:"replay_tuples"`

	Evictions          int   `json:"evictions"`
	SpillRowsWritten   int64 `json:"spill_rows_written,omitempty"`
	SpillRowsRead      int64 `json:"spill_rows_read,omitempty"`
	RevivalsFromSpill  int64 `json:"revivals_from_spill,omitempty"`
	RevivalsFromSource int64 `json:"revivals_from_source,omitempty"`

	ResultDigest string `json:"result_digest"`
}

// BudgetProfile is the §6.3 state-lifecycle comparison checked into the
// trajectory: the same seeded workload unbounded, with discard eviction and
// with spill eviction at one row budget. The spill run must reproduce the
// unbounded digest byte-for-byte while reading fewer source-stream tuples
// than the discard run — eviction bounded the memory, the disk tier kept the
// work shared.
type BudgetProfile struct {
	BudgetRows int     `json:"budget_rows"`
	Policy     string  `json:"policy"`
	Machine    Machine `json:"machine"`

	Unbounded BudgetRun `json:"unbounded"`
	Discard   BudgetRun `json:"discard"`
	Spill     BudgetRun `json:"spill"`

	// SpillDigestMatchesUnbounded gates semantics; SpillStreamSavings is the
	// source-stream tuples the disk tier saved against discard eviction at
	// the same budget.
	SpillDigestMatchesUnbounded   bool  `json:"spill_digest_matches_unbounded"`
	DiscardDigestMatchesUnbounded bool  `json:"discard_digest_matches_unbounded"`
	SpillStreamSavings            int64 `json:"spill_stream_savings_vs_discard"`

	// SpillDirUsed is the temp directory the spill run used, already removed
	// by the time RunBudget returns (tests stat it for leak checks).
	SpillDirUsed string `json:"-"`
}

// RunBudget measures the bounded-budget profile at cfg.BudgetRows.
func RunBudget(cfg Config) (*BudgetProfile, error) {
	cfg = cfg.Defaults()
	if cfg.BudgetRows <= 0 {
		return nil, fmt.Errorf("benchrun: budget profile needs a positive BudgetRows")
	}
	prof := &BudgetProfile{BudgetRows: cfg.BudgetRows, Policy: "lru", Machine: machineOf()}

	run := func(mode string, override service.Config) (BudgetRun, error) {
		serving, stats, err := runServingWith(cfg, override)
		if err != nil {
			return BudgetRun{}, fmt.Errorf("benchrun: %s run: %w", mode, err)
		}
		evictions := 0
		for _, sh := range stats.Shards {
			evictions += sh.Evictions
		}
		c := serving.Counters
		return BudgetRun{
			Mode:               mode,
			StreamTuples:       c.StreamTuples,
			TuplesConsumed:     c.StreamTuples + c.ProbeTuples,
			ReplayTuples:       c.ReplayTuples,
			Evictions:          evictions,
			SpillRowsWritten:   c.SpillRowsWritten,
			SpillRowsRead:      c.SpillRowsRead,
			RevivalsFromSpill:  c.RevivalsFromSpill,
			RevivalsFromSource: c.RevivalsFromSource,
			ResultDigest:       serving.ResultDigest,
		}, nil
	}

	var err error
	if prof.Unbounded, err = run("unbounded", service.Config{}); err != nil {
		return nil, err
	}
	if prof.Discard, err = run("discard", service.Config{MemoryBudget: cfg.BudgetRows, EvictPolicy: prof.Policy}); err != nil {
		return nil, err
	}
	spillDir, err := os.MkdirTemp("", "qsys-bench-spill-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(spillDir)
	prof.SpillDirUsed = spillDir
	if prof.Spill, err = run("spill", service.Config{MemoryBudget: cfg.BudgetRows, EvictPolicy: prof.Policy, SpillDir: spillDir}); err != nil {
		return nil, err
	}

	prof.SpillDigestMatchesUnbounded = prof.Spill.ResultDigest == prof.Unbounded.ResultDigest
	prof.DiscardDigestMatchesUnbounded = prof.Discard.ResultDigest == prof.Unbounded.ResultDigest
	prof.SpillStreamSavings = prof.Discard.StreamTuples - prof.Spill.StreamTuples
	return prof, nil
}

// Summary renders the profile for the CLI.
func (p *BudgetProfile) Summary() string {
	line := func(r BudgetRun) string {
		return fmt.Sprintf("  %-9s streamTup=%-7d totalTup=%-7d replayed=%-6d evict=%-4d spillW=%-6d spillR=%-6d revSp=%d revSrc=%d\n",
			r.Mode, r.StreamTuples, r.TuplesConsumed, r.ReplayTuples, r.Evictions,
			r.SpillRowsWritten, r.SpillRowsRead, r.RevivalsFromSpill, r.RevivalsFromSource)
	}
	s := fmt.Sprintf("budget profile (%d rows, %s):\n", p.BudgetRows, p.Policy)
	s += line(p.Unbounded) + line(p.Discard) + line(p.Spill)
	s += fmt.Sprintf("  spill digest == unbounded: %v; stream tuples saved vs discard: %d\n",
		p.SpillDigestMatchesUnbounded, p.SpillStreamSavings)
	return s
}
