// Package benchrun is the repository's performance-trajectory harness: it
// runs a fixed, seeded serving workload through internal/service plus the §7
// experiment drivers, and reduces the run to machine-readable numbers (wall
// time, ns/row, allocs/row, tuple counters, latency percentiles) together
// with output digests. Every BENCH_*.json checked into the repository root is
// one emission of this harness; comparing the "current" block of one PR
// against the next gives the perf trajectory, and the digests prove that an
// optimization changed cost, not semantics.
package benchrun

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"io"
	"regexp"
	"runtime"
	"time"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/service"
	"repro/internal/workload"
)

// Schema tags the JSON layout emitted by this package.
const Schema = "qsys-bench/v1"

// Config fixes the seeded serving workload. The zero value is replaced by
// Defaults; keep the defaults stable across PRs or trajectory points stop
// being comparable.
type Config struct {
	// Seed drives the service's deterministic delay and coefficient draws.
	Seed uint64 `json:"seed"`
	// Rounds replays the workload's 15-query suite this many times, so later
	// rounds exercise state reuse against retained plan-graph state.
	Rounds int `json:"rounds"`
	// Users cycles searches across this many distinct users (distinct scoring
	// coefficients, §2.1).
	Users int `json:"users"`
	// K is the top-k cut-off per search.
	K int `json:"k"`
	// Experiments enables the §7 driver pass (Table 4 and Figures 7–12 at the
	// single-instance scale); disable for quick smoke runs.
	Experiments bool `json:"experiments"`
	// BudgetRows is the bounded-budget profile's row budget (§6.3): the
	// serving workload is re-run unbounded, with discard eviction, and with
	// spill eviction at this budget, comparing source-tuple counts and
	// result digests. 0 skips the profile.
	BudgetRows int `json:"budget_rows,omitempty"`
	// RoutingShards is the routing profile's shard count (§6.1 at serving
	// scale): the overlapping-topic workload is run once under hash routing
	// and once under affinity routing, comparing source-tuple counts and
	// result digests. 0 skips the profile.
	RoutingShards int `json:"routing_shards,omitempty"`
	// ParallelWorkers is the parallelism profile's worker count: the
	// multi-topic (many-component) and high-overlap (one-component)
	// workloads are executed at -workers 1 and -workers N inside one
	// engine, comparing wall clock, result digests and work counters.
	// 0 skips the profile.
	ParallelWorkers int `json:"parallel_workers,omitempty"`
	// FleetShards is the distributed-tier parity profile's shard-slot count:
	// the routing workload runs once inside a single process and once as a
	// stateless front-end over that many shard HTTP servers, comparing result
	// digests byte-for-byte, plus a live topic-migration probe that must cost
	// zero extra source-stream tuples. 0 skips the profile.
	FleetShards int `json:"fleet_shards,omitempty"`
	// SaturationRequests is the overload-control profile's arrival count: an
	// unloaded control run fixes per-arrival answers and the capacity knee,
	// then seeded open-loop Poisson arrivals are offered at 0.5x and 2x the
	// knee under admission control, gating the degradation contract (no
	// wrong answers, goodput holds, served p99 bounded by the deadline).
	// 0 skips the profile.
	SaturationRequests int `json:"saturation_requests,omitempty"`
	// BatchRows overrides the executor's mini-batch row target for the
	// serving run (0 = engine default; 1 = exact per-row path). Digests and
	// counters are identical at any value, so this knob only moves cost.
	BatchRows int `json:"batch_rows,omitempty"`
	// BatchSweep adds the batch-size sweep profile: the serving workload
	// re-measured at each BatchSweepSizes target, with the batch=1 per-row
	// run pinned byte-identical to every batched run.
	BatchSweep bool `json:"batch_sweep,omitempty"`
}

// Defaults fills zero fields with the canonical trajectory configuration.
func (c Config) Defaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Rounds == 0 {
		c.Rounds = 4
	}
	if c.Users == 0 {
		c.Users = 3
	}
	if c.K == 0 {
		c.K = 50
	}
	if c.BudgetRows == 0 {
		c.BudgetRows = DefaultBudgetRows
	}
	if c.RoutingShards == 0 {
		c.RoutingShards = DefaultRoutingShards
	}
	if c.ParallelWorkers == 0 {
		c.ParallelWorkers = DefaultParallelWorkers
	}
	if c.FleetShards == 0 {
		c.FleetShards = DefaultRoutingShards
	}
	if c.SaturationRequests == 0 {
		c.SaturationRequests = DefaultSaturationRequests
	}
	return c
}

// DefaultBudgetRows is the canonical row budget of the bounded-budget
// profile: small enough that the 4-round serving workload must evict, large
// enough that every query still completes. Keep stable across PRs.
const DefaultBudgetRows = 2000

// Counters is the JSON form of the engine work counters. These must be
// identical across an optimization PR's baseline and current runs: the
// overhaul changes cost, not how many tuples flow.
type Counters struct {
	StreamTuples   int64 `json:"stream_tuples"`
	ProbeCalls     int64 `json:"probe_calls"`
	ProbeCacheHits int64 `json:"probe_cache_hits"`
	ProbeTuples    int64 `json:"probe_tuples"`
	JoinInserts    int64 `json:"join_inserts"`
	JoinProbes     int64 `json:"join_probes"`
	ReplayTuples   int64 `json:"replay_tuples"`
	ResultsEmitted int64 `json:"results_emitted"`

	// State-lifecycle traffic (§6.3 disk tier); zero on unbounded runs, so
	// the counters-equal gate against pre-subsystem baselines still holds.
	SpillRowsWritten   int64 `json:"spill_rows_written,omitempty"`
	SpillRowsRead      int64 `json:"spill_rows_read,omitempty"`
	RevivalsFromSpill  int64 `json:"revivals_from_spill,omitempty"`
	RevivalsFromSource int64 `json:"revivals_from_source,omitempty"`
}

func countersOf(s metrics.Snapshot) Counters {
	return Counters{
		StreamTuples:   s.StreamTuples,
		ProbeCalls:     s.ProbeCalls,
		ProbeCacheHits: s.ProbeCacheHits,
		ProbeTuples:    s.ProbeTuples,
		JoinInserts:    s.JoinInserts,
		JoinProbes:     s.JoinProbes,
		ReplayTuples:   s.ReplayTuples,
		ResultsEmitted: s.ResultsEmitted,

		SpillRowsWritten:   s.SpillRowsWritten,
		SpillRowsRead:      s.SpillRowsRead,
		RevivalsFromSpill:  s.RevivalsFromSpill,
		RevivalsFromSource: s.RevivalsFromSource,
	}
}

// Rows is the per-row denominator: every tuple the middleware brought in or
// pushed through a join, live or replayed.
func (c Counters) Rows() int64 {
	return c.StreamTuples + c.ProbeTuples + c.JoinInserts + c.ReplayTuples
}

// Machine records the hardware context a profile block was measured on:
// runtime.NumCPU and the scheduler's GOMAXPROCS at measurement time. Every
// profile block carries one, because wall-clock numbers are only comparable
// between points taken on like machines; digests and counters are
// machine-independent, so a mismatch here never weakens a semantics gate.
type Machine struct {
	CPUs       int `json:"cpus"`
	GOMAXPROCS int `json:"gomaxprocs"`
}

func machineOf() Machine {
	return Machine{CPUs: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
}

// Latency is the JSON form of an engine-latency distribution.
type Latency struct {
	Count  int64 `json:"count"`
	MeanNS int64 `json:"mean_ns"`
	P50NS  int64 `json:"p50_ns"`
	P95NS  int64 `json:"p95_ns"`
	P99NS  int64 `json:"p99_ns"`
	MaxNS  int64 `json:"max_ns"`
}

func latencyOf(s metrics.LatencyStats) Latency {
	return Latency{
		Count:  s.Count,
		MeanNS: int64(s.Mean),
		P50NS:  int64(s.P50),
		P95NS:  int64(s.P95),
		P99NS:  int64(s.P99),
		MaxNS:  int64(s.Max),
	}
}

// Serving is the measured outcome of the seeded serving workload.
type Serving struct {
	WallNS       int64   `json:"wall_ns"`
	Rows         int64   `json:"rows"`
	NSPerRow     float64 `json:"ns_per_row"`
	AllocsPerRow float64 `json:"allocs_per_row"`
	BytesPerRow  float64 `json:"bytes_per_row"`

	// Machine is zero when decoded from a point older than the field.
	Machine Machine `json:"machine"`

	Searches      int      `json:"searches"`
	Counters      Counters `json:"counters"`
	EngineLatency Latency  `json:"engine_latency"`

	// ResultDigest is a SHA-256 over every answer's rank, score, producing CQ
	// and base-tuple identities, in search order. It must not move across an
	// optimization PR.
	ResultDigest string `json:"result_digest"`
}

// Experiment is one §7 driver's wall time and output digest.
type Experiment struct {
	Name   string `json:"name"`
	WallNS int64  `json:"wall_ns"`
	// Digest is a SHA-256 of the driver's formatted output; the experiment
	// output is deterministic, so this is the byte-identical gate.
	Digest string `json:"digest"`
}

// Point is one measured trajectory point: serving numbers, the §7 pass, the
// bounded-budget state-lifecycle profile and the shard-routing profile.
type Point struct {
	GoVersion   string             `json:"go_version"`
	Config      Config             `json:"config"`
	Serving     Serving            `json:"serving"`
	Experiments []Experiment       `json:"experiments,omitempty"`
	Batch       *BatchProfile      `json:"batch_sweep,omitempty"`
	Budget      *BudgetProfile     `json:"budget,omitempty"`
	Routing     *RoutingProfile    `json:"routing,omitempty"`
	Parallel    *ParallelProfile   `json:"parallel,omitempty"`
	Fleet       *FleetProfile      `json:"fleet,omitempty"`
	Saturation  *SaturationProfile `json:"saturation,omitempty"`
}

// Delta summarizes current against baseline (negative = improvement).
type Delta struct {
	NSPerRow        float64 `json:"ns_per_row"`
	AllocsPerRow    float64 `json:"allocs_per_row"`
	CountersEqual   bool    `json:"counters_equal"`
	DigestsEqual    bool    `json:"digests_equal"`
	ExperimentsSame bool    `json:"experiment_digests_equal"`
}

// Report is the checked-in BENCH_*.json document.
type Report struct {
	Schema      string `json:"schema"`
	PR          string `json:"pr"`
	GeneratedAt string `json:"generated_at"`

	// Baseline is the same workload measured on the code before this PR's
	// hot-path changes (absent on pure harness runs).
	Baseline *Point `json:"baseline,omitempty"`
	Current  Point  `json:"current"`
	Delta    *Delta `json:"delta,omitempty"`
}

// RunServing executes the seeded serving workload once and measures it.
//
// The run is sequential and single-shard: determinism matters more than
// saturation here, because the digest and the counters double as the
// semantics gate for hot-path changes. Throughput under concurrency is the
// load generator's job (cmd/qsys-loadgen).
func RunServing(cfg Config) (*Serving, error) {
	s, _, err := runServingWith(cfg, service.Config{})
	return s, err
}

// runServingWith runs the seeded workload with state-lifecycle overrides
// (memory budget, eviction policy, spill dir) taken from override, returning
// the measurements together with the final service stats.
func runServingWith(cfg Config, override service.Config) (*Serving, *service.Stats, error) {
	cfg = cfg.Defaults()
	w, err := workload.GUS(1, workload.GUSScaleDefault())
	if err != nil {
		return nil, nil, err
	}
	batchRows := override.BatchRows
	if batchRows == 0 {
		batchRows = cfg.BatchRows
	}
	svc := service.New(w, service.Config{
		Seed:   cfg.Seed,
		K:      cfg.K,
		Shards: 1,
		// Workers 1 pins the serial engine: the serving/budget trajectory
		// blocks must be byte-reproducible on any machine, and the default
		// (GOMAXPROCS) would swap the engine-wide delay RNG for per-node
		// models wherever the measuring box has >1 core, shifting the
		// virtual-clock latency numbers (digests and counters would still
		// agree — that is the parallel profile's own gate).
		Workers: 1,
		// BatchWindow 0 admits each search alone: the per-tuple engine cost is
		// what this harness tracks, and window-free admission keeps the digest
		// independent of wall-clock batching races.
		BatchWindow:  0,
		MemoryBudget: override.MemoryBudget,
		EvictPolicy:  override.EvictPolicy,
		SpillDir:     override.SpillDir,
		// The executor batch target: the override (batch-sweep runs) wins,
		// then the config knob, then the engine default.
		BatchRows: batchRows,
	})
	defer svc.Close()

	digest := sha256.New()
	searches := 0
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for round := 0; round < cfg.Rounds; round++ {
		for i, sub := range w.Submissions {
			user := fmt.Sprintf("user-%d", (round*len(w.Submissions)+i)%cfg.Users)
			res, err := svc.Search(context.Background(), user, sub.UQ.Keywords, cfg.K)
			if err != nil {
				return nil, nil, fmt.Errorf("benchrun: search %q: %w", sub.UQ.Keywords, err)
			}
			searches++
			digestResult(digest, res)
		}
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)

	st := svc.Stats()
	counters := countersOf(st.Work)
	rows := counters.Rows()
	if rows == 0 {
		return nil, nil, fmt.Errorf("benchrun: serving run processed no rows")
	}
	return &Serving{
		WallNS:        int64(wall),
		Rows:          rows,
		NSPerRow:      float64(wall) / float64(rows),
		AllocsPerRow:  float64(after.Mallocs-before.Mallocs) / float64(rows),
		BytesPerRow:   float64(after.TotalAlloc-before.TotalAlloc) / float64(rows),
		Machine:       machineOf(),
		Searches:      searches,
		Counters:      counters,
		EngineLatency: latencyOf(st.Service.EngineLatency),
		ResultDigest:  hex.EncodeToString(digest.Sum(nil)),
	}, &st, nil
}

// digestResult folds one search result into the running digest.
func digestResult(h hash.Hash, res *service.Result) {
	fmt.Fprintf(h, "%s|%v|%d\n", res.ID, res.Keywords, len(res.Answers))
	for _, a := range res.Answers {
		fmt.Fprintf(h, "%d|%.9g|%s|", a.Rank, a.Score, a.Query)
		for _, t := range a.Tuples {
			io.WriteString(h, t.Schema().Name())
			io.WriteString(h, ":")
			io.WriteString(h, t.Identity())
			io.WriteString(h, "&")
		}
		io.WriteString(h, "\n")
	}
}

// RunExperiments times each §7 driver once at single-instance scale and
// digests its formatted output.
func RunExperiments() ([]Experiment, error) {
	cfg := experiments.Config{Instances: []int{1}, Seeds: []uint64{1}}.Defaults()
	drivers := []struct {
		name string
		run  func() (interface{ Format() string }, error)
	}{
		{"table4", func() (interface{ Format() string }, error) { return experiments.Table4(cfg) }},
		{"fig7", func() (interface{ Format() string }, error) { return experiments.Figure7(cfg) }},
		{"fig8", func() (interface{ Format() string }, error) { return experiments.Figure8(cfg) }},
		{"fig9", func() (interface{ Format() string }, error) { return experiments.Figure9(cfg) }},
		{"fig10", func() (interface{ Format() string }, error) { return experiments.Figure10(cfg) }},
		{"fig11", func() (interface{ Format() string }, error) { return experiments.Figure11(cfg) }},
		{"fig12", func() (interface{ Format() string }, error) { return experiments.Figure12(cfg) }},
	}
	var out []Experiment
	for _, d := range drivers {
		start := time.Now()
		res, err := d.run()
		if err != nil {
			return nil, fmt.Errorf("benchrun: %s: %w", d.name, err)
		}
		wall := time.Since(start)
		sum := sha256.Sum256([]byte(canonicalOutput(res.Format())))
		out = append(out, Experiment{Name: d.name, WallNS: int64(wall), Digest: hex.EncodeToString(sum[:])})
	}
	return out, nil
}

// durationToken matches rendered time.Duration values ("16.29ms", "1.52s")
// together with their column padding (the padding width tracks the rendered
// length). Figure 11 reports measured optimization wall time — the one
// real-time column in otherwise virtual-clock output — so digests mask it;
// everything else (counts, virtual-clock seconds) must stay byte-identical.
var durationToken = regexp.MustCompile(`[ \t]*\d+(\.\d+)?(ns|µs|ms|m|h|s)\b`)

func canonicalOutput(s string) string { return durationToken.ReplaceAllString(s, " <dur>") }

// Run measures one full trajectory point.
func Run(cfg Config) (*Point, error) {
	cfg = cfg.Defaults()
	serving, err := RunServing(cfg)
	if err != nil {
		return nil, err
	}
	p := &Point{GoVersion: runtime.Version(), Config: cfg, Serving: *serving}
	if cfg.Experiments {
		exps, err := RunExperiments()
		if err != nil {
			return nil, err
		}
		p.Experiments = exps
	}
	if cfg.BatchSweep {
		sweep, err := RunBatchSweep(cfg)
		if err != nil {
			return nil, err
		}
		p.Batch = sweep
	}
	if cfg.BudgetRows > 0 {
		budget, err := RunBudget(cfg)
		if err != nil {
			return nil, err
		}
		p.Budget = budget
	}
	if cfg.RoutingShards > 0 {
		routing, err := RunRouting(cfg)
		if err != nil {
			return nil, err
		}
		p.Routing = routing
	}
	if cfg.ParallelWorkers > 0 {
		parallel, err := RunParallel(cfg)
		if err != nil {
			return nil, err
		}
		p.Parallel = parallel
	}
	if cfg.FleetShards > 0 {
		flt, err := RunFleet(cfg)
		if err != nil {
			return nil, err
		}
		p.Fleet = flt
	}
	if cfg.SaturationRequests > 0 {
		sat, err := RunSaturation(cfg)
		if err != nil {
			return nil, err
		}
		p.Saturation = sat
	}
	return p, nil
}

// NewReport assembles the checked-in document. baseline may be nil.
func NewReport(pr string, baseline *Point, current Point) *Report {
	r := &Report{
		Schema:      Schema,
		PR:          pr,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Baseline:    baseline,
		Current:     current,
	}
	if baseline != nil {
		d := &Delta{
			NSPerRow:      ratio(current.Serving.NSPerRow, baseline.Serving.NSPerRow),
			AllocsPerRow:  ratio(current.Serving.AllocsPerRow, baseline.Serving.AllocsPerRow),
			CountersEqual: current.Serving.Counters == baseline.Serving.Counters,
			DigestsEqual:  current.Serving.ResultDigest == baseline.Serving.ResultDigest,
		}
		d.ExperimentsSame = experimentDigestsEqual(baseline.Experiments, current.Experiments)
		r.Delta = d
	}
	return r
}

func ratio(cur, base float64) float64 {
	if base == 0 {
		return 0
	}
	return cur/base - 1
}

func experimentDigestsEqual(a, b []Experiment) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Digest != b[i].Digest {
			return false
		}
	}
	return true
}

// Encode writes the report as indented JSON.
func (r *Report) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Decode reads a report written by Encode.
func Decode(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, err
	}
	return &r, nil
}

// Summary renders the human-readable one-screen view the CLI prints.
func (r *Report) Summary() string {
	c := r.Current.Serving
	s := fmt.Sprintf("serving: %d searches, %d rows in %v  (%.1f ns/row, %.3f allocs/row, %.1f B/row)\n",
		c.Searches, c.Rows, time.Duration(c.WallNS).Round(time.Millisecond), c.NSPerRow, c.AllocsPerRow, c.BytesPerRow)
	s += fmt.Sprintf("engine latency: p50 %v  p95 %v  p99 %v\n",
		time.Duration(c.EngineLatency.P50NS), time.Duration(c.EngineLatency.P95NS), time.Duration(c.EngineLatency.P99NS))
	if r.Delta != nil {
		b := r.Baseline.Serving
		s += fmt.Sprintf("baseline: %.1f ns/row, %.3f allocs/row  →  delta %+.1f%% ns/row, %+.1f%% allocs/row\n",
			b.NSPerRow, b.AllocsPerRow, 100*r.Delta.NSPerRow, 100*r.Delta.AllocsPerRow)
		s += fmt.Sprintf("semantics: counters_equal=%v result_digest_equal=%v experiment_digests_equal=%v\n",
			r.Delta.CountersEqual, r.Delta.DigestsEqual, r.Delta.ExperimentsSame)
	}
	if r.Current.Batch != nil {
		s += r.Current.Batch.Summary()
	}
	if r.Current.Budget != nil {
		s += r.Current.Budget.Summary()
	}
	if r.Current.Routing != nil {
		s += r.Current.Routing.Summary()
	}
	if r.Current.Parallel != nil {
		s += r.Current.Parallel.Summary()
	}
	if r.Current.Fleet != nil {
		s += r.Current.Fleet.Summary()
	}
	if r.Current.Saturation != nil {
		s += r.Current.Saturation.Summary()
	}
	return s
}
