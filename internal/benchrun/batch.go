package benchrun

import (
	"fmt"

	"repro/internal/service"
)

// BatchSweepSizes are the executor mini-batch targets the sweep measures:
// the exact per-row path, a small batch, the engine default, and an
// oversized batch beyond most operators' natural flush points. Keep stable
// across PRs so sweep points stay comparable.
var BatchSweepSizes = []int{1, 8, 64, 256}

// BatchRun is the seeded serving workload measured at one fixed executor
// mini-batch target.
type BatchRun struct {
	BatchRows    int      `json:"batch_rows"`
	WallNS       int64    `json:"wall_ns"`
	NSPerRow     float64  `json:"ns_per_row"`
	AllocsPerRow float64  `json:"allocs_per_row"`
	Counters     Counters `json:"counters"`
	ResultDigest string   `json:"result_digest"`
}

// BatchProfile is the batch-size sweep: the serving workload re-run at each
// BatchSweepSizes target. The batch=1 run takes the exact per-row delivery
// path, so the gates pin every batched run byte-identical to row-at-a-time
// execution — batching changes cost, never which rows flow or how they rank.
type BatchProfile struct {
	Machine Machine    `json:"machine"`
	Runs    []BatchRun `json:"runs"`

	// DigestsEqual / CountersEqual gate every run against the batch=1 run.
	DigestsEqual  bool `json:"digests_equal"`
	CountersEqual bool `json:"counters_equal"`
}

// RunBatchSweep measures the batch-size sweep profile.
func RunBatchSweep(cfg Config) (*BatchProfile, error) {
	cfg = cfg.Defaults()
	prof := &BatchProfile{Machine: machineOf()}
	for _, n := range BatchSweepSizes {
		s, _, err := runServingWith(cfg, service.Config{BatchRows: n})
		if err != nil {
			return nil, fmt.Errorf("benchrun: batch=%d run: %w", n, err)
		}
		prof.Runs = append(prof.Runs, BatchRun{
			BatchRows:    n,
			WallNS:       s.WallNS,
			NSPerRow:     s.NSPerRow,
			AllocsPerRow: s.AllocsPerRow,
			Counters:     s.Counters,
			ResultDigest: s.ResultDigest,
		})
	}
	base := prof.Runs[0] // batch=1: the exact per-row path
	prof.DigestsEqual, prof.CountersEqual = true, true
	for _, r := range prof.Runs[1:] {
		if r.ResultDigest != base.ResultDigest {
			prof.DigestsEqual = false
		}
		if r.Counters != base.Counters {
			prof.CountersEqual = false
		}
	}
	return prof, nil
}

// Summary renders the profile for the CLI.
func (p *BatchProfile) Summary() string {
	s := fmt.Sprintf("batch sweep (%d cpus, gomaxprocs %d):\n", p.Machine.CPUs, p.Machine.GOMAXPROCS)
	for _, r := range p.Runs {
		s += fmt.Sprintf("  batch=%-4d %8.1f ns/row  %7.3f allocs/row\n", r.BatchRows, r.NSPerRow, r.AllocsPerRow)
	}
	s += fmt.Sprintf("  digests_equal=%v counters_equal=%v (vs batch=1 per-row path)\n", p.DigestsEqual, p.CountersEqual)
	return s
}
