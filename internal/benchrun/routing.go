package benchrun

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/service"
	"repro/internal/workload"
)

// DefaultRoutingShards is the canonical shard count of the routing profile:
// the smallest fleet on which placement can miss sharing at all. Keep stable
// across PRs.
const DefaultRoutingShards = 2

// RoutingRun is one sequential execution of the overlapping-topic workload
// under a router mode: its source-side work, its placement decisions, and
// its result digest.
type RoutingRun struct {
	Router string `json:"router"` // hash | affinity

	StreamTuples   int64 `json:"stream_tuples"`
	TuplesConsumed int64 `json:"tuples_consumed"`
	ReplayTuples   int64 `json:"replay_tuples"`

	AffinityHits  int64   `json:"affinity_hits"`
	HashRoutes    int64   `json:"hash_routes"`
	SharingMisses int64   `json:"sharing_misses"`
	MissRate      float64 `json:"estimated_sharing_miss_rate"`
	// ShardKeywords is each shard's resident keyword-set size at the end of
	// the run.
	ShardKeywords []int `json:"shard_keywords"`

	ResultDigest string `json:"result_digest"`
}

// RoutingProfile is the §6.1 serving-scale placement comparison checked into
// the trajectory: the same seeded overlapping-topic workload routed by the
// fixed keyword hash and by cluster affinity, at the same shard count. The
// affinity run must reproduce the hash run's result digest byte-for-byte
// while reading fewer source-stream tuples — placement changed where work
// ran, not what the queries answered, and co-locating overlapping topics
// turned cross-shard sharing misses into replays.
type RoutingProfile struct {
	Shards   int     `json:"shards"`
	Topics   int     `json:"topics"`
	Searches int     `json:"searches"`
	Machine  Machine `json:"machine"`

	Hash     RoutingRun `json:"hash"`
	Affinity RoutingRun `json:"affinity"`

	// DigestsEqual gates semantics; AffinityStreamSavings is the
	// source-stream tuples affinity placement saved against the fixed hash
	// on identical offered load.
	DigestsEqual          bool  `json:"digests_equal"`
	AffinityStreamSavings int64 `json:"affinity_stream_savings_vs_hash"`
}

// routingTopics derives the overlapping-topic workload from a workload's
// bundled query suite: each multi-keyword suite query is one topic, searched
// as the base set plus its workload.OverlapVariants (drop-last and
// case-folded-duplicate — the same rules loadgen's -overlap pool uses, so
// the checked-in profile and the CI loadgen comparison measure one
// workload).
func routingTopics(w *workload.Workload) [][3][]string {
	var topics [][3][]string
	for _, sub := range w.Submissions {
		kws := sub.UQ.Keywords
		variants := workload.OverlapVariants(kws)
		if variants == nil {
			continue
		}
		base := append([]string(nil), kws...)
		topics = append(topics, [3][]string{base, variants[0], variants[1]})
	}
	return topics
}

// RunRouting measures the routing profile at cfg.RoutingShards.
func RunRouting(cfg Config) (*RoutingProfile, error) {
	cfg = cfg.Defaults()
	shards := cfg.RoutingShards
	if shards < 2 {
		return nil, fmt.Errorf("benchrun: routing profile needs >= 2 shards, got %d", shards)
	}
	prof := &RoutingProfile{Shards: shards, Machine: machineOf()}

	run := func(mode string) (RoutingRun, error) {
		// A fresh workload per mode keeps the comparison honest: no run
		// inherits the other's materialised source views.
		w, err := workload.GUS(1, workload.GUSScaleDefault())
		if err != nil {
			return RoutingRun{}, err
		}
		topics := routingTopics(w)
		if len(topics) == 0 {
			return RoutingRun{}, fmt.Errorf("benchrun: workload has no multi-keyword suite queries")
		}
		prof.Topics = len(topics)
		svc := service.New(w, service.Config{
			Seed:   cfg.Seed,
			K:      cfg.K,
			Shards: shards,
			Router: mode,
			// Serial engine + sequential, window-free admission: the
			// profile measures placement, and determinism — independent of
			// the measuring machine's core count — is what makes the
			// digest a gate.
			Workers:     1,
			BatchWindow: 0,
		})
		defer svc.Close()

		digest := sha256.New()
		searches := 0
		// Interleave topics within a pass and variants across passes: the
		// base pass seeds each topic's resident shard, the later passes are
		// the overlapping searches whose placement is under test.
		for variant := 0; variant < 3; variant++ {
			for _, tp := range topics {
				res, err := svc.Search(context.Background(), "router-bench", tp[variant], cfg.K)
				if err != nil {
					return RoutingRun{}, fmt.Errorf("benchrun: %s routing search %q: %w", mode, tp[variant], err)
				}
				searches++
				digestResult(digest, res)
			}
		}
		prof.Searches = searches

		st := svc.Stats()
		out := RoutingRun{
			Router:         mode,
			StreamTuples:   st.Work.StreamTuples,
			TuplesConsumed: st.Work.TuplesConsumed(),
			ReplayTuples:   st.Work.ReplayTuples,
			AffinityHits:   st.Router.AffinityHits,
			HashRoutes:     st.Router.HashRoutes,
			SharingMisses:  st.Router.SharingMisses,
			MissRate:       st.Router.MissRate,
			ResultDigest:   hex.EncodeToString(digest.Sum(nil)),
		}
		for _, rs := range st.Router.Shards {
			out.ShardKeywords = append(out.ShardKeywords, rs.Keywords)
		}
		return out, nil
	}

	var err error
	if prof.Hash, err = run(service.RouterHash); err != nil {
		return nil, err
	}
	if prof.Affinity, err = run(service.RouterAffinity); err != nil {
		return nil, err
	}
	prof.DigestsEqual = prof.Hash.ResultDigest == prof.Affinity.ResultDigest
	prof.AffinityStreamSavings = prof.Hash.StreamTuples - prof.Affinity.StreamTuples
	return prof, nil
}

// Summary renders the profile for the CLI.
func (p *RoutingProfile) Summary() string {
	line := func(r RoutingRun) string {
		return fmt.Sprintf("  %-9s streamTup=%-7d totalTup=%-7d replayed=%-6d affinity=%-3d hash=%-3d missRate=%.2f kwSets=%v\n",
			r.Router, r.StreamTuples, r.TuplesConsumed, r.ReplayTuples,
			r.AffinityHits, r.HashRoutes, r.MissRate, r.ShardKeywords)
	}
	s := fmt.Sprintf("routing profile (%d shards, %d topics x 3 variants):\n", p.Shards, p.Topics)
	s += line(p.Hash) + line(p.Affinity)
	s += fmt.Sprintf("  affinity digest == hash: %v; stream tuples saved vs hash: %d\n",
		p.DigestsEqual, p.AffinityStreamSavings)
	return s
}
