package state

// Manager bundles one engine's state subsystem: the accounting ledger, the
// eviction policy, the optional spill tier and the budget source. The query
// state manager (internal/qsm) owns the graph mechanics of eviction and
// revival; this Manager owns the bookkeeping those mechanics consult.
type Manager struct {
	Ledger *Ledger

	policy   Policy
	spill    *Spill
	budgetFn func() int

	evictions         int
	evictionsByPolicy map[string]int
}

// NewManager creates a manager with a fresh ledger, the LRU policy and no
// spill tier.
func NewManager() *Manager {
	return &Manager{
		Ledger:            NewLedger(),
		policy:            LRU{},
		evictionsByPolicy: map[string]int{},
	}
}

// Policy returns the active eviction policy.
func (m *Manager) Policy() Policy { return m.policy }

// SetPolicy installs an eviction policy (nil restores LRU).
func (m *Manager) SetPolicy(p Policy) {
	if p == nil {
		p = LRU{}
	}
	m.policy = p
}

// Spill returns the spill tier, or nil when eviction discards.
func (m *Manager) Spill() *Spill { return m.spill }

// AttachSpill installs a spill tier.
func (m *Manager) AttachSpill(s *Spill) { m.spill = s }

// SetBudgetFn installs a dynamic budget source (cross-shard arbitration);
// nil reverts to the caller's static budget.
func (m *Manager) SetBudgetFn(fn func() int) { m.budgetFn = fn }

// Budget resolves the current budget: the dynamic source when installed,
// otherwise fallback. 0 means unbounded.
func (m *Manager) Budget(fallback int) int {
	if m.budgetFn != nil {
		return m.budgetFn()
	}
	return fallback
}

// NoteEviction records one eviction under the given policy name.
func (m *Manager) NoteEviction(policy string) {
	m.evictions++
	m.evictionsByPolicy[policy]++
}

// Evictions returns the total evictions recorded.
func (m *Manager) Evictions() int { return m.evictions }

// EvictionsByPolicy returns a copy of the per-policy eviction counts.
func (m *Manager) EvictionsByPolicy() map[string]int {
	out := make(map[string]int, len(m.evictionsByPolicy))
	for k, v := range m.evictionsByPolicy {
		out[k] = v
	}
	return out
}

// Close releases the spill tier's disk space.
func (m *Manager) Close() error {
	if m.spill != nil {
		return m.spill.Close()
	}
	return nil
}
