package state

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"

	"repro/internal/tuple"
)

// TupleResolver maps a spilled base-tuple reference — relation name plus the
// tuple's position in that relation's score order — back to the canonical
// in-memory tuple. Spilled rows reference base tuples instead of embedding
// their values: every structure in the middleware aliases the same backing
// tuples by pointer (see tuple.Tuple), so resolution restores exactly the
// rows that were evicted, identity caches included.
type TupleResolver func(rel string, seq int64) (*tuple.Tuple, error)

// ModuleSnapshot is one access module's spilled state, together with the
// structural fingerprint of the input edge it belonged to. Revival only
// reinstalls a module when the regrafted node's edge matches the
// fingerprint — a re-optimized plan may partition the same expression over
// different inputs, and reinstalling rows across that mismatch would corrupt
// the join state.
type ModuleSnapshot struct {
	// ProducerKey is the scoped key of the node feeding the input.
	ProducerKey string
	// Coverage is the edge's atom map (producer atom -> node atom).
	Coverage []int
	// Probe marks a random-access input.
	Probe bool
	// Parts holds the module's rows in insertion order, in node atom space
	// (nil outside the input's coverage); Epochs are their §6.2 stamps.
	Parts  [][]*tuple.Tuple
	Epochs []int
}

// NodeSnapshot is everything a parked plan segment needs to come back: the
// node's output log (epoch-stamped, arrival order), its stream position for
// source nodes, and its access modules for join nodes.
type NodeSnapshot struct {
	// Key is the node's scoped plan-graph key; Kind its plangraph.Kind.
	Key  string
	Kind int
	// StreamPos is how many rows the stream source had delivered.
	StreamPos int
	// LogRows / LogEpochs are the node's output history.
	LogRows   []*tuple.Row
	LogEpochs []int
	// Modules holds per-input module state (join nodes).
	Modules []ModuleSnapshot
}

func (s *NodeSnapshot) rows() int {
	n := len(s.LogRows)
	for _, m := range s.Modules {
		n += len(m.Parts)
	}
	return n
}

// SpillStats counts a spill store's traffic.
type SpillStats struct {
	SegmentsWritten, RowsWritten int64
	BytesWritten                 int64
	SegmentsRead, RowsRead       int64
	BytesRead                    int64
	Dropped                      int64 // segments discarded as structurally stale
	Resident                     int   // segments currently on disk
}

// Spill is the disk tier for one shard's evicted plan segments. Each evicted
// node becomes one segment file under the store's directory, written in a
// length-prefixed binary format; Take reads a segment back (removing it) and
// resolves its base-tuple references through the TupleResolver. A Spill is
// confined to its engine's executor goroutine.
type Spill struct {
	dir     string
	resolve TupleResolver
	index   map[string]string // node key -> segment path
	stats   SpillStats
}

// NewSpill opens (creating) a spill directory. The directory should be
// private to one shard; Close removes it entirely.
func NewSpill(dir string, resolve TupleResolver) (*Spill, error) {
	if dir == "" {
		return nil, fmt.Errorf("state: spill needs a directory")
	}
	if resolve == nil {
		return nil, fmt.Errorf("state: spill needs a tuple resolver")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("state: spill dir: %w", err)
	}
	// A crash between staging and rename leaves orphan temp files; they were
	// never published, so discard them. (Pre-existing .seg files are also
	// orphans — the index is in-memory only — but harmless: Write replaces
	// them per key and Close removes the directory.)
	if tmps, err := filepath.Glob(filepath.Join(dir, "*.tmp")); err == nil {
		for _, t := range tmps {
			os.Remove(t)
		}
	}
	return &Spill{dir: dir, resolve: resolve, index: map[string]string{}}, nil
}

// syncDir fsyncs a directory so a just-renamed entry is durable. Best
// effort: some filesystems refuse directory fsync, and the rename itself
// already guarantees atomicity for readers.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// Dir returns the store's directory.
func (s *Spill) Dir() string { return s.dir }

// Stats returns traffic counts.
func (s *Spill) Stats() SpillStats {
	st := s.stats
	st.Resident = len(s.index)
	return st
}

// Has reports whether a segment exists for the node key.
func (s *Spill) Has(key string) bool {
	if s == nil {
		return false
	}
	_, ok := s.index[key]
	return ok
}

// Write serializes a snapshot to a segment file, replacing any previous
// segment for the same key. It returns the rows and bytes written. The
// segment is staged in a temp file and published by rename so a crash
// mid-write can never leave a torn segment under the final name — readers
// see either the old complete segment or the new one.
func (s *Spill) Write(snap *NodeSnapshot) (rows int, bytes int64, err error) {
	path := filepath.Join(s.dir, segmentName(snap.Key))
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return 0, 0, err
	}
	w := bufio.NewWriter(f)
	cw := &countWriter{w: w}
	if err := encodeSnapshot(cw, snap); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, 0, err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, 0, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, 0, err
	}
	syncDir(s.dir)
	s.index[snap.Key] = path
	rows = snap.rows()
	s.stats.SegmentsWritten++
	s.stats.RowsWritten += int64(rows)
	s.stats.BytesWritten += cw.n
	return rows, cw.n, nil
}

// Take reads and removes the segment for a node key, resolving its rows.
// A missing segment returns (nil, 0, 0, nil).
func (s *Spill) Take(key string) (*NodeSnapshot, int, int64, error) {
	if s == nil {
		return nil, 0, 0, nil
	}
	path, ok := s.index[key]
	if !ok {
		return nil, 0, 0, nil
	}
	delete(s.index, key)
	f, err := os.Open(path)
	if err != nil {
		os.Remove(path) // never orphan an unreadable segment on disk
		return nil, 0, 0, err
	}
	cr := &countReader{r: bufio.NewReader(f)}
	snap, err := decodeSnapshot(cr, s.resolve)
	f.Close()
	os.Remove(path)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("state: segment %s: %w", path, err)
	}
	if snap.Key != key {
		// Filename hash collision (astronomically unlikely); the stored key
		// is authoritative, so treat as a miss.
		return nil, 0, 0, nil
	}
	rows := snap.rows()
	s.stats.SegmentsRead++
	s.stats.RowsRead += int64(rows)
	s.stats.BytesRead += cr.n
	return snap, rows, cr.n, nil
}

// NoteDropped records a segment discarded as structurally stale (taken but
// not reinstalled).
func (s *Spill) NoteDropped() {
	if s != nil {
		s.stats.Dropped++
	}
}

// Close removes every segment and the store's directory.
func (s *Spill) Close() error {
	if s == nil {
		return nil
	}
	s.index = map[string]string{}
	return os.RemoveAll(s.dir)
}

func segmentName(key string) string {
	h := fnv.New64a()
	h.Write([]byte(key))
	return fmt.Sprintf("%016x.seg", h.Sum64())
}

// --- segment encoding ---------------------------------------------------
//
// A segment is a length-prefixed binary document:
//
//	magic "QSPL1\n"
//	key, kind, streamPos
//	relation table (distinct relation names, referenced by index)
//	log rows, then per-module (producer key, coverage, probe, rows)
//
// Rows are arrays of base-tuple references: 0 for a nil part, else
// 1+relation-table-index followed by the tuple's score-order sequence
// number. Integers are unsigned/signed varints; strings are
// length-prefixed.

const segMagic = "QSPL1\n"

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

type countReader struct {
	r io.ByteReader
	n int64
}

func (c *countReader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err == nil {
		c.n++
	}
	return b, err
}

func writeUvarint(w io.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func writeVarint(w io.Writer, v int64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func writeString(w io.Writer, s string) error {
	if err := writeUvarint(w, uint64(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r *countReader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	const maxString = 1 << 20
	if n > maxString {
		return "", fmt.Errorf("string length %d exceeds limit", n)
	}
	buf := make([]byte, n)
	for i := range buf {
		b, err := r.ReadByte()
		if err != nil {
			return "", err
		}
		buf[i] = b
	}
	return string(buf), nil
}

// relTable interns relation names for compact part references.
type relTable struct {
	names []string
	idx   map[string]int
}

func (t *relTable) id(name string) int {
	if i, ok := t.idx[name]; ok {
		return i
	}
	if t.idx == nil {
		t.idx = map[string]int{}
	}
	i := len(t.names)
	t.names = append(t.names, name)
	t.idx[name] = i
	return i
}

func buildRelTable(snap *NodeSnapshot) *relTable {
	t := &relTable{}
	addRow := func(parts []*tuple.Tuple) {
		for _, p := range parts {
			if p != nil {
				t.id(p.Schema().Name())
			}
		}
	}
	for _, r := range snap.LogRows {
		addRow(r.Parts())
	}
	for _, m := range snap.Modules {
		for _, parts := range m.Parts {
			addRow(parts)
		}
	}
	return t
}

func encodeParts(w io.Writer, t *relTable, parts []*tuple.Tuple) error {
	if err := writeUvarint(w, uint64(len(parts))); err != nil {
		return err
	}
	for _, p := range parts {
		if p == nil {
			if err := writeUvarint(w, 0); err != nil {
				return err
			}
			continue
		}
		if err := writeUvarint(w, uint64(t.id(p.Schema().Name())+1)); err != nil {
			return err
		}
		if err := writeVarint(w, p.Seq()); err != nil {
			return err
		}
	}
	return nil
}

func decodeParts(r *countReader, rels []string, resolve TupleResolver) ([]*tuple.Tuple, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	const maxParts = 1 << 16
	if n > maxParts {
		return nil, fmt.Errorf("row arity %d exceeds limit", n)
	}
	parts := make([]*tuple.Tuple, n)
	for i := range parts {
		ref, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		if ref == 0 {
			continue
		}
		if int(ref) > len(rels) {
			return nil, fmt.Errorf("relation ref %d out of table", ref)
		}
		seq, err := binary.ReadVarint(r)
		if err != nil {
			return nil, err
		}
		t, err := resolve(rels[ref-1], seq)
		if err != nil {
			return nil, err
		}
		parts[i] = t
	}
	return parts, nil
}

func encodeRowSet(w io.Writer, t *relTable, parts [][]*tuple.Tuple, epochs []int) error {
	if err := writeUvarint(w, uint64(len(parts))); err != nil {
		return err
	}
	for i, ps := range parts {
		if err := writeVarint(w, int64(epochs[i])); err != nil {
			return err
		}
		if err := encodeParts(w, t, ps); err != nil {
			return err
		}
	}
	return nil
}

func decodeRowSet(r *countReader, rels []string, resolve TupleResolver) ([][]*tuple.Tuple, []int, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, nil, err
	}
	const maxRows = 1 << 28
	if n > maxRows {
		return nil, nil, fmt.Errorf("row count %d exceeds limit", n)
	}
	parts := make([][]*tuple.Tuple, n)
	epochs := make([]int, n)
	for i := range parts {
		e, err := binary.ReadVarint(r)
		if err != nil {
			return nil, nil, err
		}
		epochs[i] = int(e)
		ps, err := decodeParts(r, rels, resolve)
		if err != nil {
			return nil, nil, err
		}
		parts[i] = ps
	}
	return parts, epochs, nil
}

func encodeSnapshot(w io.Writer, snap *NodeSnapshot) error {
	if _, err := io.WriteString(w, segMagic); err != nil {
		return err
	}
	if err := writeString(w, snap.Key); err != nil {
		return err
	}
	if err := writeUvarint(w, uint64(snap.Kind)); err != nil {
		return err
	}
	if err := writeUvarint(w, uint64(snap.StreamPos)); err != nil {
		return err
	}
	t := buildRelTable(snap)
	if err := writeUvarint(w, uint64(len(t.names))); err != nil {
		return err
	}
	for _, name := range t.names {
		if err := writeString(w, name); err != nil {
			return err
		}
	}
	logParts := make([][]*tuple.Tuple, len(snap.LogRows))
	for i, r := range snap.LogRows {
		logParts[i] = r.Parts()
	}
	if err := encodeRowSet(w, t, logParts, snap.LogEpochs); err != nil {
		return err
	}
	if err := writeUvarint(w, uint64(len(snap.Modules))); err != nil {
		return err
	}
	for _, m := range snap.Modules {
		if err := writeString(w, m.ProducerKey); err != nil {
			return err
		}
		if err := writeUvarint(w, uint64(len(m.Coverage))); err != nil {
			return err
		}
		for _, a := range m.Coverage {
			if err := writeVarint(w, int64(a)); err != nil {
				return err
			}
		}
		probe := uint64(0)
		if m.Probe {
			probe = 1
		}
		if err := writeUvarint(w, probe); err != nil {
			return err
		}
		if err := encodeRowSet(w, t, m.Parts, m.Epochs); err != nil {
			return err
		}
	}
	return nil
}

func decodeSnapshot(r *countReader, resolve TupleResolver) (*NodeSnapshot, error) {
	for i := 0; i < len(segMagic); i++ {
		b, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		if b != segMagic[i] {
			return nil, fmt.Errorf("bad segment magic")
		}
	}
	snap := &NodeSnapshot{}
	var err error
	if snap.Key, err = readString(r); err != nil {
		return nil, err
	}
	kind, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	snap.Kind = int(kind)
	pos, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	snap.StreamPos = int(pos)
	nRels, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	const maxRels = 1 << 16
	if nRels > maxRels {
		return nil, fmt.Errorf("relation table size %d exceeds limit", nRels)
	}
	rels := make([]string, nRels)
	for i := range rels {
		if rels[i], err = readString(r); err != nil {
			return nil, err
		}
	}
	logParts, logEpochs, err := decodeRowSet(r, rels, resolve)
	if err != nil {
		return nil, err
	}
	snap.LogRows = make([]*tuple.Row, len(logParts))
	snap.LogEpochs = logEpochs
	for i, ps := range logParts {
		snap.LogRows[i] = tuple.NewRow(ps...)
	}
	nMods, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	const maxModules = 1 << 10
	if nMods > maxModules {
		return nil, fmt.Errorf("module count %d exceeds limit", nMods)
	}
	snap.Modules = make([]ModuleSnapshot, nMods)
	for i := range snap.Modules {
		m := &snap.Modules[i]
		if m.ProducerKey, err = readString(r); err != nil {
			return nil, err
		}
		nCov, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		const maxCov = 1 << 16
		if nCov > maxCov {
			return nil, fmt.Errorf("coverage size %d exceeds limit", nCov)
		}
		m.Coverage = make([]int, nCov)
		for j := range m.Coverage {
			a, err := binary.ReadVarint(r)
			if err != nil {
				return nil, err
			}
			m.Coverage[j] = int(a)
		}
		probe, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		m.Probe = probe == 1
		if m.Parts, m.Epochs, err = decodeRowSet(r, rels, resolve); err != nil {
			return nil, err
		}
	}
	return snap, nil
}
