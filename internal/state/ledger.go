// Package state is the execution-state subsystem of §6: the one place that
// knows how much retained operator state exists, which of it to give up under
// memory pressure, and how to keep evicted state recoverable at local-I/O
// cost instead of re-paying remote source reads.
//
// It has four parts, each usable on its own:
//
//   - the accounting Ledger: every retained structure (access modules, node
//     logs, rank-merge seen-sets, endpoint buffers) holds an Account and
//     registers size deltas as rows arrive, so the total resident state is a
//     running sum instead of an O(graph) rescan (§6.3 accounting);
//   - pluggable eviction Policies: the paper's LRU-largest-first plus a
//     benefit-aware policy scoring victims by estimated re-derivation cost
//     per retained row;
//   - the Spill tier: parked plan segments serialize their epoch-stamped log
//     and module rows to per-shard disk segments on eviction, and revival
//     (§6.2, Algorithm 2) reads them back as cheap local I/O, falling back
//     to source replay only when no segment exists;
//   - the cross-shard budget Arbiter: one global row budget apportioned to
//     shards in proportion to their demand instead of per-shard islands.
//
// The package is deliberately free of engine imports (operator, atc, qsm):
// the engine registers deltas and extracts/reinstalls rows; state owns the
// bookkeeping, the victim choice and the bytes on disk.
package state

import "sync/atomic"

// Ledger is the incremental accounting of all retained execution state of
// one engine (one plan graph), in rows. It replaces the per-victim
// StateSize() rescan of the pre-subsystem eviction loop: structures call
// Account.Add as rows arrive and leave, and Total is a running sum.
//
// The ledger-wide aggregates are atomic: under the intra-shard parallel
// executor, workers driving disjoint plan-graph components register deltas
// into the one shared ledger concurrently. Each Account itself stays owned
// by exactly one component (structures never span components), so only the
// cross-account sums need to be concurrency-safe — and atomic addition is
// order-independent, which keeps Total deterministic at any worker count.
type Ledger struct {
	total    atomic.Int64
	accounts atomic.Int64
	// scratch tracks pooled executor scratch memory (free-listed part
	// vectors, batch buffers) in rows. It is kept out of Total on purpose:
	// scratch is reclaimable instantly (dropping a free list frees it) and
	// charging it against the eviction budget would perturb victim choice —
	// and therefore result digests — by how warm a node's pools happen to
	// be. It is surfaced separately so operators still see true footprint.
	scratch atomic.Int64
}

// NewLedger creates an empty ledger.
func NewLedger() *Ledger { return &Ledger{} }

// Total returns the resident state across all live accounts, in rows.
func (l *Ledger) Total() int64 {
	if l == nil {
		return 0
	}
	return l.total.Load()
}

// Scratch returns the pooled executor scratch held across all live
// accounts, in rows. Scratch is reported beside Total, never inside it.
func (l *Ledger) Scratch() int64 {
	if l == nil {
		return 0
	}
	return l.scratch.Load()
}

// Accounts returns how many live accounts the ledger tracks.
func (l *Ledger) Accounts() int {
	if l == nil {
		return 0
	}
	return int(l.accounts.Load())
}

// NewAccount opens an account for one retained structure (a node exec, an
// endpoint entry). The label is diagnostic only.
func (l *Ledger) NewAccount(label string) *Account {
	if l == nil {
		return nil
	}
	l.accounts.Add(1)
	return &Account{ledger: l, label: label}
}

// Release closes an account: its rows leave the total and all further Adds
// on it are ignored. Releasing nil or an already-released account is a
// no-op, so eviction racing cancellation cannot double-release. Like Add,
// Release must come from the account's owning component (or from the
// executor between rounds).
func (l *Ledger) Release(a *Account) {
	if l == nil || a == nil || a.dead {
		return
	}
	a.dead = true
	l.total.Add(-a.rows)
	l.scratch.Add(-a.scratch)
	l.accounts.Add(-1)
}

// Account is one structure's running row count within a ledger. All methods
// are safe on a nil receiver: operator structures created outside an engine
// (unit tests, ad hoc use) simply go unaccounted. An account's own fields
// are deliberately not atomic — every account belongs to exactly one
// plan-graph component, and the parallel executor's round barrier orders a
// component's writes before any other goroutine reads them.
type Account struct {
	ledger  *Ledger
	label   string
	rows    int64
	scratch int64
	dead    bool
}

// Add registers a size delta in rows (negative deltas release rows).
func (a *Account) Add(delta int) {
	if a == nil || a.dead {
		return
	}
	a.rows += int64(delta)
	a.ledger.total.Add(int64(delta))
}

// AddScratch registers a pooled-scratch delta in rows (free-listed part
// vectors held for reuse). Scratch rides the same ownership rules as Add but
// lands in the ledger's separate scratch aggregate, not the eviction total.
func (a *Account) AddScratch(delta int) {
	if a == nil || a.dead {
		return
	}
	a.scratch += int64(delta)
	a.ledger.scratch.Add(int64(delta))
}

// ScratchRows returns the account's pooled-scratch row count.
func (a *Account) ScratchRows() int64 {
	if a == nil {
		return 0
	}
	return a.scratch
}

// Rows returns the account's current row count.
func (a *Account) Rows() int64 {
	if a == nil {
		return 0
	}
	return a.rows
}

// Live reports whether the account is still open.
func (a *Account) Live() bool { return a != nil && !a.dead }
