package state

import "fmt"

// Candidate describes one evictable structure for a policy decision. The
// caller (the query state manager) builds candidates in plan-graph creation
// order, which every policy uses as the final tie-break so victim choice is
// deterministic.
type Candidate struct {
	// Key identifies the structure (the plan node's scoped key).
	Key string
	// LastUse is the epoch the structure was last referenced.
	LastUse int
	// Rows is the structure's resident state, from its ledger account.
	Rows int64
	// RebuildCost estimates what re-deriving the state would cost if it were
	// discarded (source reads for streams, in-memory join work for m-joins),
	// in cost-model units.
	RebuildCost float64
}

// Policy chooses an eviction victim among candidates (§6.3). Pick returns
// the index of the victim, or -1 to decline (nothing worth evicting).
type Policy interface {
	Name() string
	Pick(cands []Candidate) int
}

// LRU is the paper's §6.3 policy: evict the least-recently-used structure,
// breaking ties toward larger state. It reproduces the pre-subsystem
// eviction order exactly (pinned by TestEnforceBudgetMatchesLegacy).
type LRU struct{}

// Name returns "lru".
func (LRU) Name() string { return "lru" }

// Pick chooses the oldest candidate, largest first on ties.
func (LRU) Pick(cands []Candidate) int {
	best := -1
	var bestUse int
	var bestRows int64
	for i, c := range cands {
		if best < 0 || c.LastUse < bestUse || (c.LastUse == bestUse && c.Rows > bestRows) {
			best, bestUse, bestRows = i, c.LastUse, c.Rows
		}
	}
	return best
}

// Benefit is the cost-aware policy: each candidate is scored by its
// estimated re-derivation cost per retained row — the benefit its memory
// buys — and the candidate whose rows buy the least is evicted first. Ties
// fall back to LRU order. Scores come from the cost model at candidate
// collection time (estimated source reads to rebuild), so a cheap-to-replay
// structure loses its memory before an expensive one of equal size.
type Benefit struct{}

// Name returns "benefit".
func (Benefit) Name() string { return "benefit" }

// Pick chooses the candidate with the lowest rebuild cost per row.
func (Benefit) Pick(cands []Candidate) int {
	best := -1
	var bestScore float64
	var bestUse int
	var bestRows int64
	for i, c := range cands {
		if c.Rows <= 0 {
			continue
		}
		score := c.RebuildCost / float64(c.Rows)
		if best < 0 || score < bestScore ||
			(score == bestScore && (c.LastUse < bestUse || (c.LastUse == bestUse && c.Rows > bestRows))) {
			best, bestScore, bestUse, bestRows = i, score, c.LastUse, c.Rows
		}
	}
	return best
}

// ParsePolicy resolves a policy by name; "" defaults to LRU.
func ParsePolicy(name string) (Policy, error) {
	switch name {
	case "", "lru":
		return LRU{}, nil
	case "benefit", "cost":
		return Benefit{}, nil
	default:
		return nil, fmt.Errorf("state: unknown eviction policy %q (want lru or benefit)", name)
	}
}
