package state

import (
	"bytes"
	"fmt"
)

// This file gives the PR3 spill segment format a second life as a *wire*
// format: EncodeSegment/DecodeSegment serialize a NodeSnapshot to and from a
// byte slice without touching disk, and TopicExport bundles the encoded
// segments of one topic's retained plan state for shipping between shard
// processes. The encoding is byte-identical to the disk tier's segment files
// (magic "QSPL1\n", varints, relation table, base-tuple refs), so the same
// consistency gate that protects spill revival protects migration: a decoded
// segment that does not match the receiving graph's structure is dropped and
// the state is re-derived by source replay — never reinstalled wrong.

// EncodeSegment serializes a snapshot into a standalone segment byte slice,
// returning the encoding together with the snapshot's row count.
func EncodeSegment(snap *NodeSnapshot) ([]byte, int, error) {
	if snap == nil {
		return nil, 0, fmt.Errorf("state: nil snapshot")
	}
	var buf bytes.Buffer
	if err := encodeSnapshot(&buf, snap); err != nil {
		return nil, 0, err
	}
	return buf.Bytes(), snap.rows(), nil
}

// DecodeSegment decodes a segment produced by EncodeSegment (or read from a
// spill file), resolving its base-tuple references against the receiving
// engine's canonical relation stores. Corrupt or truncated data returns an
// error; callers treat that as a dropped segment.
func DecodeSegment(data []byte, resolve TupleResolver) (*NodeSnapshot, error) {
	if resolve == nil {
		return nil, fmt.Errorf("state: segment decode needs a tuple resolver")
	}
	r := &countReader{r: bytes.NewReader(data)}
	snap, err := decodeSnapshot(r, resolve)
	if err != nil {
		return nil, fmt.Errorf("state: segment decode: %w", err)
	}
	return snap, nil
}

// TopicSegment is one node's encoded state in a topic export, annotated with
// the structural facts the receiving shard needs before it decodes anything:
// the node key (where it installs), the expression key (how the catalog
// prices it), and the stream position / observed cardinality that let the
// receiver's optimizer cost the migrated prefix as resident state.
type TopicSegment struct {
	// Key is the node's scoped plan-graph key; ExprKey the canonical
	// expression key (catalog accounting); Kind the plangraph.Kind.
	Key     string `json:"key"`
	ExprKey string `json:"expr_key"`
	Kind    int    `json:"kind"`
	// StreamPos is the exported stream's delivered prefix (stream nodes);
	// Card the expression's observed cardinality when the stream was
	// exhausted at export, else -1.
	StreamPos int     `json:"stream_pos"`
	Card      float64 `json:"card"`
	// Rows counts the segment's retained rows; Data is the EncodeSegment
	// payload (JSON marshals it as base64).
	Rows int    `json:"rows"`
	Data []byte `json:"data"`
}

// TopicExport is the retained state of one topic (or, with Keywords nil, of a
// draining shard's whole graph), serialized for migration. Epoch is the
// source engine's logical clock at export; the importer advances its own
// clock past it so every migrated row is strictly historical there.
type TopicExport struct {
	Keywords []string       `json:"keywords,omitempty"`
	Epoch    int            `json:"epoch"`
	Segments []TopicSegment `json:"segments"`
}

// RowCount reports the snapshot's retained rows (log plus module rows).
func (s *NodeSnapshot) RowCount() int { return s.rows() }

// Rows sums the export's retained rows.
func (e *TopicExport) Rows() int {
	n := 0
	for i := range e.Segments {
		n += e.Segments[i].Rows
	}
	return n
}
