package state

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/tuple"
)

func TestLedgerRunningTotals(t *testing.T) {
	l := NewLedger()
	a := l.NewAccount("a")
	b := l.NewAccount("b")
	a.Add(10)
	b.Add(5)
	a.Add(-3)
	if l.Total() != 12 || a.Rows() != 7 || b.Rows() != 5 {
		t.Fatalf("total=%d a=%d b=%d", l.Total(), a.Rows(), b.Rows())
	}
	l.Release(a)
	if l.Total() != 5 {
		t.Fatalf("after release total=%d", l.Total())
	}
	// Adds on a released account and double-release are no-ops (eviction
	// racing cancellation must not corrupt the ledger).
	a.Add(100)
	l.Release(a)
	if l.Total() != 5 || l.Accounts() != 1 {
		t.Fatalf("after dead adds total=%d accounts=%d", l.Total(), l.Accounts())
	}
	// Nil receivers are inert.
	var nilAcct *Account
	nilAcct.Add(1)
	if nilAcct.Rows() != 0 || nilAcct.Live() {
		t.Fatal("nil account not inert")
	}
}

func TestLRUPolicyOrder(t *testing.T) {
	cands := []Candidate{
		{Key: "n0", LastUse: 3, Rows: 10},
		{Key: "n1", LastUse: 1, Rows: 5},
		{Key: "n2", LastUse: 1, Rows: 9},
		{Key: "n3", LastUse: 2, Rows: 50},
	}
	if got := (LRU{}).Pick(cands); got != 2 {
		t.Fatalf("LRU picked %d, want 2 (oldest use, larger on tie)", got)
	}
	if got := (LRU{}).Pick(nil); got != -1 {
		t.Fatalf("LRU on empty picked %d", got)
	}
}

func TestBenefitPolicyPicksCheapestPerRow(t *testing.T) {
	cands := []Candidate{
		{Key: "expensive", LastUse: 1, Rows: 10, RebuildCost: 20000}, // 2000/row
		{Key: "cheap", LastUse: 9, Rows: 100, RebuildCost: 500},      // 5/row
		{Key: "mid", LastUse: 0, Rows: 10, RebuildCost: 1000},        // 100/row
	}
	if got := (Benefit{}).Pick(cands); got != 1 {
		t.Fatalf("benefit picked %d, want 1 (lowest rebuild cost per row)", got)
	}
}

func TestParsePolicy(t *testing.T) {
	for name, want := range map[string]string{"": "lru", "lru": "lru", "benefit": "benefit", "cost": "benefit"} {
		p, err := ParsePolicy(name)
		if err != nil || p.Name() != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", name, p, err)
		}
	}
	if _, err := ParsePolicy("random"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// spillFixture builds two tiny relations and a resolver over them.
func spillFixture(t *testing.T) (map[string][]*tuple.Tuple, TupleResolver) {
	t.Helper()
	mk := func(name string, n int) []*tuple.Tuple {
		s := tuple.NewSchema(name,
			tuple.Column{Name: "id", Type: tuple.KindInt, Key: true},
			tuple.Column{Name: "score", Type: tuple.KindFloat, Score: true},
		)
		out := make([]*tuple.Tuple, n)
		for i := 0; i < n; i++ {
			out[i] = tuple.New(s, tuple.Int(int64(i)), tuple.Float(1-float64(i)/float64(n))).WithSeq(int64(i))
		}
		return out
	}
	rels := map[string][]*tuple.Tuple{"R": mk("R", 8), "S": mk("S", 6)}
	resolve := func(rel string, seq int64) (*tuple.Tuple, error) {
		rows, ok := rels[rel]
		if !ok || seq < 0 || int(seq) >= len(rows) {
			return nil, fmt.Errorf("no %s[%d]", rel, seq)
		}
		return rows[seq], nil
	}
	return rels, resolve
}

func TestSpillRoundTrip(t *testing.T) {
	rels, resolve := spillFixture(t)
	sp, err := NewSpill(filepath.Join(t.TempDir(), "shard-0"), resolve)
	if err != nil {
		t.Fatal(err)
	}
	snap := &NodeSnapshot{
		Key:       "join::R&S",
		Kind:      2,
		StreamPos: 0,
		LogRows:   []*tuple.Row{tuple.NewRow(rels["R"][0], rels["S"][1]), tuple.NewRow(rels["R"][2], rels["S"][3])},
		LogEpochs: []int{1, 2},
		Modules: []ModuleSnapshot{
			{
				ProducerKey: "stream::R", Coverage: []int{0},
				Parts:  [][]*tuple.Tuple{{rels["R"][0], nil}, {rels["R"][2], nil}},
				Epochs: []int{1, 2},
			},
			{
				ProducerKey: "stream::S", Coverage: []int{1}, Probe: true,
				Parts:  [][]*tuple.Tuple{{nil, rels["S"][1]}},
				Epochs: []int{1},
			},
		},
	}
	rows, bytes, err := sp.Write(snap)
	if err != nil {
		t.Fatal(err)
	}
	if rows != 5 || bytes <= 0 {
		t.Fatalf("write rows=%d bytes=%d", rows, bytes)
	}
	if !sp.Has("join::R&S") {
		t.Fatal("segment not indexed")
	}

	got, rrows, rbytes, err := sp.Take("join::R&S")
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || rrows != rows || rbytes != bytes {
		t.Fatalf("take rows=%d bytes=%d snap=%v", rrows, rbytes, got)
	}
	if got.Kind != 2 || len(got.LogRows) != 2 || len(got.Modules) != 2 {
		t.Fatalf("shape: %+v", got)
	}
	// Resolution restores the canonical pointers, not copies.
	if got.LogRows[0].Part(0) != rels["R"][0] || got.LogRows[0].Part(1) != rels["S"][1] {
		t.Fatal("log row parts not canonical tuples")
	}
	if got.LogRows[0].Identity() != snap.LogRows[0].Identity() {
		t.Fatal("row identity changed across spill")
	}
	if got.Modules[0].Parts[1][0] != rels["R"][2] || got.Modules[0].Parts[1][1] != nil {
		t.Fatal("module parts wrong")
	}
	if !got.Modules[1].Probe || got.Modules[1].ProducerKey != "stream::S" {
		t.Fatalf("module meta: %+v", got.Modules[1])
	}
	if got.LogEpochs[1] != 2 || got.Modules[0].Epochs[1] != 2 {
		t.Fatal("epochs lost")
	}

	// Taken segments are gone — a second Take is a clean miss, and the file
	// was removed from disk.
	if again, _, _, err := sp.Take("join::R&S"); err != nil || again != nil {
		t.Fatalf("second take: %v %v", again, err)
	}
	entries, err := os.ReadDir(sp.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("segments leaked: %v", entries)
	}

	st := sp.Stats()
	if st.SegmentsWritten != 1 || st.SegmentsRead != 1 || st.RowsWritten != int64(rows) || st.Resident != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestSpillTornWriteNeverServed pins the crash-safety contract of the disk
// tier: Write stages into a temp file and publishes by rename, so a crash
// mid-write leaves only an orphan .tmp (cleaned on reopen), never a torn
// segment under the final name — and even a segment torn by outside forces
// decodes to an error, never to garbage state.
func TestSpillTornWriteNeverServed(t *testing.T) {
	rels, resolve := spillFixture(t)
	dir := filepath.Join(t.TempDir(), "shard-0")
	sp, err := NewSpill(dir, resolve)
	if err != nil {
		t.Fatal(err)
	}
	snap := &NodeSnapshot{
		Key:       "join::R&S",
		Kind:      2,
		LogRows:   []*tuple.Row{tuple.NewRow(rels["R"][0], rels["S"][1]), tuple.NewRow(rels["R"][2], rels["S"][3])},
		LogEpochs: []int{1, 2},
	}
	if _, _, err := sp.Write(snap); err != nil {
		t.Fatal(err)
	}
	// No temp file survives a successful publish.
	if tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(tmps) != 0 {
		t.Fatalf("temp files left after Write: %v", tmps)
	}

	// Tear the published segment (as a crashed kernel page-out might) and
	// confirm Take reports an error instead of returning partial state.
	path := sp.index[snap.Key]
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if got, _, _, err := sp.Take(snap.Key); err == nil {
		t.Fatalf("torn segment served: %+v", got)
	}

	// A crash between staging and rename leaves an orphan .tmp; a fresh
	// Spill over the same directory removes it.
	orphan := filepath.Join(dir, "deadbeefdeadbeef.seg.tmp")
	if err := os.WriteFile(orphan, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewSpill(dir, resolve); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphan temp survived reopen: %v", err)
	}
}

func TestSpillCloseRemovesDir(t *testing.T) {
	_, resolve := spillFixture(t)
	dir := filepath.Join(t.TempDir(), "spill", "shard-3")
	sp, err := NewSpill(dir, resolve)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sp.Write(&NodeSnapshot{Key: "stream::R", Kind: 0, StreamPos: 4}); err != nil {
		t.Fatal(err)
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatalf("spill dir survived Close: %v", err)
	}
}

func TestArbiterApportionsByDemand(t *testing.T) {
	a := NewArbiter(1000, 2)
	// A lone active shard converges to (almost) the whole budget.
	if got := a.Allot(0, 5000); got < 990 {
		t.Fatalf("lone shard allotment %d", got)
	}
	// A second shard with equal demand splits the budget.
	got1 := a.Allot(1, 5000)
	got0 := a.Allot(0, 5000)
	if got0 < 450 || got0 > 550 || got1 < 450 || got1 > 550 {
		t.Fatalf("equal demand split %d/%d", got0, got1)
	}
	// Demand-weighted: the busy shard gets the lion's share.
	a.Allot(1, 100)
	if got := a.Allot(0, 9900); got < 900 {
		t.Fatalf("busy shard allotment %d", got)
	}
	// Single-shard arbiter hands the full budget over.
	s := NewArbiter(500, 1)
	if got := s.Allot(0, 123); got != 500 {
		t.Fatalf("single shard allotment %d", got)
	}
	// Unbounded budget disables enforcement.
	u := NewArbiter(0, 4)
	if got := u.Allot(2, 10); got != 0 {
		t.Fatalf("unbounded allotment %d", got)
	}
}

// TestArbiterSharesNeverOverCommit pins the sum-safety fix: for any demand
// profile with budget >= shards, the shares of one snapshot must sum to the
// budget exactly (floor division used to leak rows and the 1-row clamp used
// to mint them on top of the pool), and every shard keeps the 1-row floor.
func TestArbiterSharesNeverOverCommit(t *testing.T) {
	profiles := [][]int64{
		{0, 0, 0, 0, 0},
		{1, 1, 1, 1, 1},
		{5000, 0, 0, 0, 0},
		{9999, 1, 37, 0, 12345},
		{7, 7, 7, 6, 7},
		{1 << 40, 3, 1 << 39, 0, 9},
	}
	for _, budget := range []int{5, 6, 100, 999, 2000} {
		for _, demands := range profiles {
			a := NewArbiter(budget, len(demands))
			for i, d := range demands {
				a.Allot(i, d)
			}
			sum, min := 0, 1<<62
			for i := range demands {
				sh := a.Share(i)
				sum += sh
				if sh < min {
					min = sh
				}
			}
			if sum != budget {
				t.Errorf("budget=%d demands=%v: Σ shares = %d", budget, demands, sum)
			}
			if min < 1 {
				t.Errorf("budget=%d demands=%v: a shard starved to %d (0 means unbounded)", budget, demands, min)
			}
		}
	}
	// Degenerate case, documented on Arbiter: with budget < shards the 1-row
	// floor wins (an allotment of 0 would mean unbounded), so the fleet
	// over-commits to exactly one row per shard — never more.
	a := NewArbiter(3, 5)
	a.Allot(0, 1000)
	sum := 0
	for i := 0; i < 5; i++ {
		sum += a.Share(i)
	}
	if sum != 5 {
		t.Errorf("budget<shards: Σ shares = %d, want one floor row per shard", sum)
	}
}
