package state

import "sync"

// Arbiter apportions one global state budget (in rows) across an engine's
// shards by demand. Each shard periodically reports its resident state and
// receives its current allotment: a demand-proportional share of the global
// budget, so a hot shard working a popular topic can hold more state than an
// idle one instead of every shard owning an equal island.
//
// Allot is called from shard executor goroutines concurrently; the arbiter
// is the only piece of the state subsystem shared across goroutines.
type Arbiter struct {
	mu     sync.Mutex
	budget int64
	demand []int64
}

// NewArbiter creates an arbiter for a global budget over n shards. A budget
// of 0 disables enforcement (every shard's allotment is 0 = unbounded).
func NewArbiter(budget int, shards int) *Arbiter {
	if shards < 1 {
		shards = 1
	}
	return &Arbiter{budget: int64(budget), demand: make([]int64, shards)}
}

// Budget returns the global budget.
func (a *Arbiter) Budget() int { return int(a.budget) }

// Allot records the shard's current demand (its resident state in rows) and
// returns the shard's allotment. Shares are proportional to demand+1 — the
// +1 keeps idle shards from starving to exactly zero and makes a lone active
// shard's share converge to the full budget.
func (a *Arbiter) Allot(shard int, demand int64) int {
	if a == nil || a.budget <= 0 {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if shard < 0 || shard >= len(a.demand) {
		return int(a.budget) / len(a.demand)
	}
	if demand < 0 {
		demand = 0
	}
	a.demand[shard] = demand
	var sum int64
	for _, d := range a.demand {
		sum += d + 1
	}
	share := a.budget * (demand + 1) / sum
	if share < 1 {
		share = 1
	}
	return int(share)
}

// Share returns the shard's allotment from the demands already on record,
// without updating anything — the side-effect-free read the stats path
// uses, so observing a service never shifts its eviction behavior.
func (a *Arbiter) Share(shard int) int {
	if a == nil || a.budget <= 0 {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if shard < 0 || shard >= len(a.demand) {
		return int(a.budget) / len(a.demand)
	}
	var sum int64
	for _, d := range a.demand {
		sum += d + 1
	}
	share := a.budget * (a.demand[shard] + 1) / sum
	if share < 1 {
		share = 1
	}
	return int(share)
}
