package state

import "sync"

// Arbiter apportions one global state budget (in rows) across an engine's
// shards by demand. Each shard periodically reports its resident state and
// receives its current allotment: a demand-proportional share of the global
// budget, so a hot shard working a popular topic can hold more state than an
// idle one instead of every shard owning an equal island.
//
// Apportionment is sum-safe: the shares of any one demand snapshot are
// computed together by largest-remainder division, with every shard's
// 1-row floor charged against the pool first, so Σ Share(i) == Budget
// exactly whenever Budget >= shards. The one degenerate case is
// Budget < shards: an allotment of 0 means unbounded, so every shard still
// receives the 1-row floor and the fleet over-commits to exactly one row
// per shard — the tightest enforceable bound the allotment encoding can
// express. (Shares read at different times come from different snapshots,
// so a shard acting on a stale share can transiently exceed its next one;
// within a snapshot the sum invariant always holds.)
//
// Allot is called from shard executor goroutines concurrently; the arbiter
// is the only piece of the state subsystem shared across goroutines.
type Arbiter struct {
	mu     sync.Mutex
	budget int64
	demand []int64
}

// NewArbiter creates an arbiter for a global budget over n shards. A budget
// of 0 disables enforcement (every shard's allotment is 0 = unbounded).
func NewArbiter(budget int, shards int) *Arbiter {
	if shards < 1 {
		shards = 1
	}
	return &Arbiter{budget: int64(budget), demand: make([]int64, shards)}
}

// Budget returns the global budget.
func (a *Arbiter) Budget() int { return int(a.budget) }

// apportionLocked computes every shard's share of the budget from the
// current demand table. Weights are demand+1 — the +1 keeps idle shards
// from starving to exactly zero and makes a lone active shard's share
// converge to the full budget. Each shard is first floored at 1 row
// (0 would mean unbounded), the floors are charged against the pool, and
// the remainder is split by largest-remainder division so the shares sum
// to the budget exactly.
func (a *Arbiter) apportionLocked() []int64 {
	n := int64(len(a.demand))
	shares := make([]int64, n)
	pool := a.budget - n
	if pool < 0 {
		pool = 0 // degenerate budget < shards: floors alone over-commit
	}
	var wsum int64
	for _, d := range a.demand {
		wsum += d + 1
	}
	type rem struct {
		shard int
		frac  int64
	}
	rems := make([]rem, n)
	var given int64
	for i, d := range a.demand {
		w := d + 1
		shares[i] = 1 + pool*w/wsum
		given += pool * w / wsum
		rems[i] = rem{shard: i, frac: pool * w % wsum}
	}
	// Hand the leftover rows to the largest remainders (ties: lower shard),
	// via selection — shard counts are tiny.
	for left := pool - given; left > 0; left-- {
		best := -1
		for i := range rems {
			if rems[i].frac >= 0 && (best < 0 || rems[i].frac > rems[best].frac) {
				best = i
			}
		}
		shares[rems[best].shard]++
		rems[best].frac = -1
	}
	return shares
}

// Allot records the shard's current demand (its resident state in rows) and
// returns the shard's allotment from the updated snapshot.
func (a *Arbiter) Allot(shard int, demand int64) int {
	if a == nil || a.budget <= 0 {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if shard < 0 || shard >= len(a.demand) {
		return int(a.budget) / len(a.demand)
	}
	if demand < 0 {
		demand = 0
	}
	a.demand[shard] = demand
	return int(a.apportionLocked()[shard])
}

// Share returns the shard's allotment from the demands already on record,
// without updating anything — the side-effect-free read the stats path
// uses, so observing a service never shifts its eviction behavior. All
// Shares read from one unchanged demand table sum to the budget exactly
// (budget >= shards).
func (a *Arbiter) Share(shard int) int {
	if a == nil || a.budget <= 0 {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if shard < 0 || shard >= len(a.demand) {
		return int(a.budget) / len(a.demand)
	}
	return int(a.apportionLocked()[shard])
}
