package schemagraph

import (
	"testing"

	"repro/internal/tuple"
)

func buildGraph(t *testing.T) *Graph {
	t.Helper()
	g := New()
	mk := func(name string) *tuple.Schema {
		return tuple.NewSchema(name,
			tuple.Column{Name: "id", Type: tuple.KindInt, Key: true},
			tuple.Column{Name: "txt", Type: tuple.KindString},
		)
	}
	g.AddNode(&Node{Rel: "A", DB: "d1", Schema: mk("A"), Authority: 0.1})
	g.AddNode(&Node{Rel: "B", DB: "d1", Schema: mk("B"), LinkTable: true})
	g.AddNode(&Node{Rel: "C", DB: "d2", Schema: mk("C")})
	g.AddEdge(&Edge{From: "A", To: "B", FromCol: 0, ToCol: 0, Cost: 0.5})
	g.AddEdge(&Edge{From: "B", To: "C", FromCol: 1, ToCol: 0, Cost: 0.7})
	return g
}

func TestNodesAndEdges(t *testing.T) {
	g := buildGraph(t)
	if len(g.Nodes()) != 3 || g.NumEdges() != 2 {
		t.Fatalf("nodes=%d edges=%d", len(g.Nodes()), g.NumEdges())
	}
	if g.Node("A") == nil || g.Node("A").DB != "d1" {
		t.Error("node lookup")
	}
	if g.Node("missing") != nil {
		t.Error("missing node should be nil")
	}
	// Edges are bidirectional.
	fromB := g.EdgesFrom("B")
	if len(fromB) != 2 {
		t.Fatalf("B has %d edges, want 2", len(fromB))
	}
	for _, e := range fromB {
		if e.From != "B" {
			t.Error("reverse edge not normalised")
		}
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	g := buildGraph(t)
	defer func() {
		if recover() == nil {
			t.Error("duplicate node should panic")
		}
	}()
	g.AddNode(&Node{Rel: "A", DB: "d1"})
}

func TestEdgeUnknownEndpointPanics(t *testing.T) {
	g := buildGraph(t)
	defer func() {
		if recover() == nil {
			t.Error("edge to unknown node should panic")
		}
	}()
	g.AddEdge(&Edge{From: "A", To: "ZZZ"})
}

func TestKeywordIndex(t *testing.T) {
	g := buildGraph(t)
	g.IndexTerm("Protein", Match{Rel: "A", Col: 1, Score: 0.7})
	g.IndexTerm("protein", Match{Rel: "C", Col: 1, Score: 0.9})
	ms := g.Lookup("PROTEIN") // case-insensitive
	if len(ms) != 2 {
		t.Fatalf("matches = %d", len(ms))
	}
	if ms[0].Score < ms[1].Score {
		t.Error("matches not sorted by score")
	}
	if ms[0].Rel != "C" {
		t.Errorf("best match = %s", ms[0].Rel)
	}
	if len(g.Lookup("nothing")) != 0 {
		t.Error("unknown keyword should match nothing")
	}
	terms := g.Terms()
	if len(terms) != 1 || terms[0] != "protein" {
		t.Errorf("terms = %v", terms)
	}
}

func TestEdgesDeterministicOrder(t *testing.T) {
	g := buildGraph(t)
	e1 := g.EdgesFrom("B")
	e2 := g.EdgesFrom("B")
	for i := range e1 {
		if e1[i].To != e2[i].To {
			t.Fatal("edge order nondeterministic")
		}
	}
}
