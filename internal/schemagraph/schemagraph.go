// Package schemagraph models the known schema graph of Figure 1: relations
// from (possibly many) database instances as nodes, with edges for foreign
// keys, hyperlinks and record-linking join relationships, each annotated with
// a cost (the Q System's learned edge costs, §2.1). It also hosts the keyword
// index that matches search terms to relations — either by name/metadata or
// through an inverted index over content — producing the scored matches that
// seed candidate-network generation.
package schemagraph

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/tuple"
)

// Node is one relation in the schema graph.
type Node struct {
	// Rel is the relation name (unique across the graph).
	Rel string
	// DB names the owning database instance.
	DB string
	// Schema is the relation schema.
	Schema *tuple.Schema
	// Authority is the Q System node cost: lower is more authoritative.
	Authority float64
	// LinkTable marks record-linking relations (orange squares in Fig. 1).
	LinkTable bool
}

// Edge is a potential join relationship between two relations.
type Edge struct {
	// From/To are relation names; edges are undirected for search purposes.
	From, To string
	// FromCol/ToCol are the joinable column indexes.
	FromCol, ToCol int
	// Cost is the learned edge cost (§2.1, Q System model): the static score
	// component accumulates these.
	Cost float64
}

// Graph is the schema graph plus the keyword index.
type Graph struct {
	mu    sync.RWMutex
	nodes map[string]*Node
	adj   map[string][]*Edge

	// inverted maps lower-cased keyword -> matches.
	inverted map[string][]Match
}

// Match is one keyword-to-relation match with its IR-style similarity score
// (Figure 1: a keyword may match a table by name or by content).
type Match struct {
	// Rel is the matched relation.
	Rel string
	// Col is the column the keyword matched (-1 for a metadata/name match).
	Col int
	// Term is the stored term that matched.
	Term string
	// Score is the match similarity in (0, 1].
	Score float64
	// Exact marks name/metadata matches, which require no selection constant;
	// content matches add the selection Rel.Col = Term to generated queries.
	Exact bool
}

// New creates an empty graph.
func New() *Graph {
	return &Graph{
		nodes:    map[string]*Node{},
		adj:      map[string][]*Edge{},
		inverted: map[string][]Match{},
	}
}

// AddNode registers a relation node; relation names must be globally unique.
func (g *Graph) AddNode(n *Node) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, dup := g.nodes[n.Rel]; dup {
		panic(fmt.Sprintf("schemagraph: duplicate node %q", n.Rel))
	}
	g.nodes[n.Rel] = n
}

// AddEdge registers a join relationship; both endpoints must exist.
func (g *Graph) AddEdge(e *Edge) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.nodes[e.From] == nil || g.nodes[e.To] == nil {
		panic(fmt.Sprintf("schemagraph: edge %s-%s references unknown node", e.From, e.To))
	}
	g.adj[e.From] = append(g.adj[e.From], e)
	rev := &Edge{From: e.To, To: e.From, FromCol: e.ToCol, ToCol: e.FromCol, Cost: e.Cost}
	g.adj[e.To] = append(g.adj[e.To], rev)
}

// Node returns the named node, or nil.
func (g *Graph) Node(rel string) *Node {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.nodes[rel]
}

// Nodes returns all relation names, sorted.
func (g *Graph) Nodes() []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	names := make([]string, 0, len(g.nodes))
	for n := range g.nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// EdgesFrom returns the outgoing edges of rel (deterministically ordered).
func (g *Graph) EdgesFrom(rel string) []*Edge {
	g.mu.RLock()
	defer g.mu.RUnlock()
	edges := append([]*Edge(nil), g.adj[rel]...)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].To != edges[j].To {
			return edges[i].To < edges[j].To
		}
		if edges[i].FromCol != edges[j].FromCol {
			return edges[i].FromCol < edges[j].FromCol
		}
		return edges[i].ToCol < edges[j].ToCol
	})
	return edges
}

// NumEdges returns the number of (undirected) edges.
func (g *Graph) NumEdges() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	total := 0
	for _, es := range g.adj {
		total += len(es)
	}
	return total / 2
}

// IndexTerm registers a keyword match in the inverted index.
func (g *Graph) IndexTerm(term string, m Match) {
	g.mu.Lock()
	defer g.mu.Unlock()
	m.Term = term
	g.inverted[strings.ToLower(term)] = append(g.inverted[strings.ToLower(term)], m)
}

// Lookup returns the matches for a keyword, best score first.
func (g *Graph) Lookup(keyword string) []Match {
	g.mu.RLock()
	defer g.mu.RUnlock()
	ms := append([]Match(nil), g.inverted[strings.ToLower(keyword)]...)
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Score != ms[j].Score {
			return ms[i].Score > ms[j].Score
		}
		if ms[i].Rel != ms[j].Rel {
			return ms[i].Rel < ms[j].Rel
		}
		return ms[i].Col < ms[j].Col
	})
	return ms
}

// Terms returns all indexed keywords, sorted (used by workload generators to
// pick query keywords).
func (g *Graph) Terms() []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	ts := make([]string, 0, len(g.inverted))
	for t := range g.inverted {
		ts = append(ts, t)
	}
	sort.Strings(ts)
	return ts
}
