package mqo

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/costmodel"
	"repro/internal/cq"
	"repro/internal/dist"
	"repro/internal/relationdb"
	"repro/internal/scoring"
	"repro/internal/tuple"
)

// fixture builds relations R0..Rn-1 (chained by shared keys) plus a catalog.
func fixture(t *testing.T, nRels int, cardBase int) *costmodel.Model {
	t.Helper()
	cat := catalog.New()
	for i := 0; i < nRels; i++ {
		s := tuple.NewSchema(rel(i),
			tuple.Column{Name: "a", Type: tuple.KindInt},
			tuple.Column{Name: "b", Type: tuple.KindInt},
			tuple.Column{Name: "score", Type: tuple.KindFloat, Score: true},
		)
		rng := dist.New(uint64(i) + 5)
		var rows []*tuple.Tuple
		card := cardBase + i*100
		for r := 0; r < card; r++ {
			rows = append(rows, tuple.New(s,
				tuple.Int(int64(rng.Intn(card))),
				tuple.Int(int64(rng.Intn(card))),
				tuple.Float(rng.Float64())))
		}
		cat.AddRelation("db", relationdb.NewRelation(s, rows))
	}
	return costmodel.New(cat, costmodel.DefaultParams())
}

func rel(i int) string { return string(rune('P' + i)) }

// chain builds rel(start)(x0,x1) ⋈ rel(start+1)(x1,x2) ⋈ ...
func chain(id string, start, n int) *cq.CQ {
	atoms := make([]*cq.Atom, n)
	for i := 0; i < n; i++ {
		atoms[i] = &cq.Atom{Rel: rel(start + i), DB: "db", Args: []cq.Term{cq.V(i), cq.V(i + 1), cq.V(100 + i)}}
	}
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return &cq.CQ{ID: id, UQID: "U", Atoms: atoms, Model: scoring.QSystem(0, w)}
}

func TestOptimizeSingleQueryValid(t *testing.T) {
	cm := fixture(t, 4, 300)
	q := chain("q1", 0, 4)
	res, err := Optimize([]*cq.CQ{q}, cm, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate([]*cq.CQ{q}, res.Inputs); err != nil {
		t.Fatalf("invalid assignment: %v", err)
	}
	if res.Cost <= 0 || res.SearchNodes == 0 {
		t.Errorf("cost=%v nodes=%d", res.Cost, res.SearchNodes)
	}
}

func TestOptimizeSharedBatchValid(t *testing.T) {
	cm := fixture(t, 6, 300)
	qs := []*cq.CQ{
		chain("q1", 0, 4),
		chain("q2", 0, 3), // prefix overlap with q1
		chain("q3", 2, 4), // suffix overlap
	}
	res, err := Optimize(qs, cm, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(qs, res.Inputs); err != nil {
		t.Fatalf("invalid shared assignment: %v", err)
	}
	// The shared prefix should be covered for q1 and q2 by a common input.
	sharedInputs := 0
	for _, in := range res.Inputs {
		if len(in.Uses) >= 2 {
			sharedInputs++
		}
	}
	if sharedInputs == 0 {
		t.Error("batch with overlapping queries produced no shared inputs")
	}
}

// Property: over random batches of random chain queries, BestPlan always
// returns a valid assignment (Definition 1) within budget.
func TestOptimizeValidityProperty(t *testing.T) {
	cm := fixture(t, 8, 250)
	rng := dist.New(99)
	for trial := 0; trial < 60; trial++ {
		nq := 1 + rng.Intn(4)
		var qs []*cq.CQ
		for i := 0; i < nq; i++ {
			start := rng.Intn(4)
			n := 2 + rng.Intn(4)
			qs = append(qs, chain(rel(start)+string(rune('0'+i))+"-q", start, n))
		}
		res, err := Optimize(qs, cm, Config{MaxCandidates: 6, SearchNodeBudget: 5000})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := Validate(qs, res.Inputs); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestOptimizeEmptyBatch(t *testing.T) {
	cm := fixture(t, 2, 100)
	if _, err := Optimize(nil, cm, Config{}); err == nil {
		t.Error("empty batch should error")
	}
}

func TestReuseDiscountSteersPlan(t *testing.T) {
	cm := fixture(t, 4, 400)
	q := chain("q1", 0, 3)
	res1, err := Optimize([]*cq.CQ{q}, cm, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Mark every chosen stream as fully buffered; cost must drop.
	for _, in := range res1.Inputs {
		if in.Mode == costmodel.Stream {
			cm.Cat.RecordStreamed(in.Expr.Key(), 1<<20)
		}
	}
	res2, err := Optimize([]*cq.CQ{q}, cm, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Cost >= res1.Cost {
		t.Errorf("buffered state did not reduce plan cost: %v -> %v", res1.Cost, res2.Cost)
	}
}

func TestValidateCatchesBadAssignments(t *testing.T) {
	cm := fixture(t, 3, 200)
	q := chain("q1", 0, 3)
	res, err := Optimize([]*cq.CQ{q}, cm, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Remove one input's use: should fail coverage.
	var victim string
	for _, in := range res.Inputs {
		if _, ok := in.Uses[q.ID]; ok {
			victim = in.Expr.Key()
			delete(in.Uses, q.ID)
			break
		}
	}
	if err := Validate([]*cq.CQ{q}, res.Inputs); err == nil {
		t.Errorf("dropped coverage of %s not detected", victim)
	}
}

func TestMaxCandidatesCap(t *testing.T) {
	cm := fixture(t, 8, 250)
	qs := []*cq.CQ{chain("q1", 0, 5), chain("q2", 0, 5), chain("q3", 1, 5)}
	res, err := Optimize(qs, cm, Config{MaxCandidates: 3})
	if err != nil {
		t.Fatal(err)
	}
	multi := 0
	for _, in := range res.Inputs {
		if !in.Expr.SingleAtom() {
			multi++
		}
	}
	if multi > 3 {
		t.Errorf("plan uses %d multi-atom inputs despite cap 3", multi)
	}
}
