// Package mqo is the multiple-query optimizer of §5.1: it factors a batch of
// conjunctive queries into an input assignment (I, I) — subexpressions
// evaluated at the remote databases, each shared by the queries in I[J] —
// by enumerating candidate subexpressions into an AND-OR memo, pruning them
// with the paper's four heuristics (§5.1.1), and running the BestPlan
// top-down search with memoization (Algorithm 1) under the cost model.
package mqo

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/andor"
	"repro/internal/costmodel"
	"repro/internal/cq"
)

// Config tunes candidate generation and search.
type Config struct {
	// K is the per-query result target used for depth estimation.
	K int
	// MaxCandidateAtoms bounds the size of pushdown candidates.
	MaxCandidateAtoms int
	// MinShare is the minimum number of consuming queries for a candidate
	// that is not low-cardinality (§5.1.1 "filter subexpressions by
	// estimated utility").
	MinShare int
	// LowCardThreshold admits low-cardinality candidates regardless of
	// sharing.
	LowCardThreshold float64
	// MaxCandidates caps the candidate set fed to BestPlan (the search is
	// exponential in this number — Figure 11).
	MaxCandidates int
	// SearchNodeBudget aborts pathological searches (safety valve; the
	// heuristics keep real workloads well under it).
	SearchNodeBudget int
}

// Defaults fills zero fields.
func (c Config) Defaults() Config {
	if c.K == 0 {
		c.K = 50
	}
	if c.MaxCandidateAtoms == 0 {
		c.MaxCandidateAtoms = 4
	}
	if c.MinShare == 0 {
		c.MinShare = 2
	}
	if c.LowCardThreshold == 0 {
		c.LowCardThreshold = 200
	}
	if c.MaxCandidates == 0 {
		c.MaxCandidates = 16
	}
	if c.SearchNodeBudget == 0 {
		c.SearchNodeBudget = 30000
	}
	return c
}

// Result is the optimizer's output.
type Result struct {
	// Inputs is the chosen input assignment (I with its I[J] sets).
	Inputs []*costmodel.Input
	// Cost is the estimated cost of the assignment.
	Cost float64
	// CandidateCount is the number of pushdown candidates searched
	// (Figure 11's x-axis).
	CandidateCount int
	// SearchNodes counts BestPlan invocations (memoised and not).
	SearchNodes int
	// Memo is the AND-OR graph (reused by the factorizer).
	Memo *andor.Graph
}

// candidate is one searchable subexpression with its (restrictable) use set.
type candidate struct {
	// idx is the candidate's ordinal in the searched set; restricted copies
	// share it (memo keys intern on it instead of the expression string).
	idx  int
	expr *cq.Expr
	// uses is the full occurrence map; only original candidates carry it.
	// Restricted copies (Algorithm 1 line 14) carry the surviving consumer
	// set purely as bits — the occurrence pointers are recovered from the
	// original candidate at completion time.
	uses map[string]*cq.ExprOccurrence
	gain float64
	// bits is the consuming-query set as a bitset over the searcher's
	// lexicographic CQ ordering: the restriction step and the memo key both
	// reduce to word operations instead of per-call map iteration.
	bits []uint64
}

// Optimize runs multi-query optimization over the batch.
func Optimize(qs []*cq.CQ, cm *costmodel.Model, cfg Config) (*Result, error) {
	cfg = cfg.Defaults()
	if len(qs) == 0 {
		return nil, fmt.Errorf("mqo: empty query batch")
	}
	memo := andor.New()
	for _, q := range qs {
		if err := q.Validate(); err != nil {
			return nil, err
		}
		memo.AddQuery(q, cfg.MaxCandidateAtoms)
	}
	cands := collectCandidates(qs, memo, cm, cfg)
	// CQs are ordered lexicographically by id: the bit position doubles as
	// the completion-time use order (the paper's deterministic tie-break).
	cqIDs := make([]string, 0, len(qs))
	for _, q := range qs {
		cqIDs = append(cqIDs, q.ID)
	}
	sort.Strings(cqIDs)
	cqOrd := make(map[string]int, len(cqIDs))
	for i, id := range cqIDs {
		cqOrd[id] = i
	}
	words := (len(cqIDs) + 63) / 64
	origByIdx := make([]*candidate, len(cands))
	for i, c := range cands {
		c.idx = i
		origByIdx[i] = c
		c.bits = make([]uint64, words)
		for id := range c.uses {
			ord := cqOrd[id]
			c.bits[ord/64] |= 1 << uint(ord%64)
		}
	}
	// Precompute the pairwise relation-overlap matrix (Algorithm 1 line 14's
	// test), invariant under restriction.
	overlap := make([][]bool, len(cands))
	for i, a := range cands {
		overlap[i] = make([]bool, len(cands))
		for j, b := range cands {
			if i != j {
				overlap[i][j] = a.expr.SharesRelation(b.expr)
			}
		}
	}
	s := &searcher{
		qs:        qs,
		cm:        cm,
		cfg:       cfg,
		cqIDs:     cqIDs,
		cqOrd:     cqOrd,
		words:     words,
		origByIdx: origByIdx,
		overlap:   overlap,
		memo:      map[string]searchResult{},
		budget:    cfg.SearchNodeBudget,
		qOrd:      make([]int, len(qs)),
		covered:   make([][]bool, len(cqIDs)),
		singles:   make([][]singleUse, len(qs)),

		inputsScratch: map[string]*costmodel.Input{},
		costScratch:   costmodel.NewScratch(),
	}
	for i, q := range qs {
		s.qOrd[i] = cqOrd[q.ID]
		s.covered[s.qOrd[i]] = make([]bool, len(q.Atoms))
		s.singles[i] = make([]singleUse, len(q.Atoms))
	}
	// chosen's backing array is preallocated to the deepest possible DFS path
	// so the append at every recursion step writes in place instead of
	// reallocating (siblings reuse the slot after the prior subtree returns;
	// nothing a memo entry retains aliases chosen).
	best := s.bestPlan(cands, make([]*candidate, 0, len(cands)))
	if best.inputs == nil {
		return nil, fmt.Errorf("mqo: search failed to produce a valid plan")
	}
	return &Result{
		Inputs:         best.inputs,
		Cost:           best.cost,
		CandidateCount: len(cands),
		SearchNodes:    s.nodes,
		Memo:           memo,
	}, nil
}

// collectCandidates applies the §5.1.1 pruning heuristics.
func collectCandidates(qs []*cq.CQ, memo *andor.Graph, cm *costmodel.Model, cfg Config) []*candidate {
	// Query relation sets for the overlap rule, and full-query cardinalities
	// for the small-query rule.
	relSets := make(map[string]map[string]bool, len(qs))
	fullCard := make(map[string]float64, len(qs))
	for _, q := range qs {
		set := map[string]bool{}
		for _, a := range q.Atoms {
			set[a.Rel] = true
		}
		relSets[q.ID] = set
		fullCard[q.ID] = cm.Cat.EstimateCard(cm.FullExpr(q))
	}
	var cands []*candidate
	for _, key := range memo.Keys() {
		node := memo.Node(key)
		e := node.Expr
		multi := !e.SingleAtom()
		if multi {
			// Pushdown requires a single owning database (§5.1).
			if e.SingleDB() == "" {
				continue
			}
			// Streamability (§5.1.1 "only stream relations that have scoring
			// attributes"): every member of a pushed-down stream must carry a
			// scoring attribute — a score-less relation is served by random
			// access instead — unless the whole result is small.
			if !exprAllScored(e, cm) && cm.Cat.EstimateCard(e) > cfg.LowCardThreshold {
				continue
			}
			// Expensive source joins are pruned (§5.1.1).
			if cm.Cat.ExpensiveJoin(e) {
				continue
			}
			// Utility: shared enough, or low-cardinality (§5.1.1).
			if len(node.Occurrences) < cfg.MinShare && cm.Cat.EstimateCard(e) > cfg.LowCardThreshold {
				continue
			}
			// Small-query rule: skip single-use subexpressions of queries
			// that produce few results anyway (§5.1.1 "consider queries as
			// shared subexpressions").
			if len(node.Occurrences) == 1 {
				small := false
				for cqID := range node.Occurrences {
					if fullCard[cqID] <= float64(cfg.K) {
						small = true
					}
				}
				if small {
					continue
				}
			}
			// Non-overlap (§5.1.1): a query either uses a candidate as a
			// proper subexpression or not at all — never partially. Candidate
			// occurrences are exact subexpression matches by construction
			// (the AND-OR memo records only exact occurrences), and Algorithm
			// 1's restriction step (bestPlan) prevents any query from being
			// covered by two relation-overlapping inputs. Pruning candidates
			// merely for *sharing a relation* with some query would reject
			// the paper's own Example 5 (G2G⋈GI⋈T is kept for CQ2 although
			// its relations also appear in CQ1), so no further check is
			// needed here.
		}
		uses := make(map[string]*cq.ExprOccurrence, len(node.Occurrences))
		for id, occ := range node.Occurrences {
			uses[id] = occ
		}
		baseCard := 0.0
		for _, a := range e.Atoms {
			if st, err := cm.Cat.Relation(a.Rel); err == nil {
				baseCard += st.Card
			}
		}
		gain := float64(len(uses)) * (baseCard - cm.Cat.EstimateCard(e))
		cands = append(cands, &candidate{expr: e, uses: uses, gain: gain})
	}
	// Multi-atom candidates are the search's combinatorial dimension; keep
	// the most promising ones. Single-atom candidates (base relations,
	// §5.1.1 "always designate base relations ... as useful") are kept only
	// when they give the search a way to partially reject a multi-atom
	// candidate, i.e. when they overlap one.
	var multi, single []*candidate
	for _, c := range cands {
		if c.expr.SingleAtom() {
			single = append(single, c)
		} else {
			multi = append(multi, c)
		}
	}
	sort.Slice(multi, func(i, j int) bool {
		if multi[i].gain != multi[j].gain {
			return multi[i].gain > multi[j].gain
		}
		return multi[i].expr.Key() < multi[j].expr.Key()
	})
	if len(multi) > cfg.MaxCandidates {
		multi = multi[:cfg.MaxCandidates]
	}
	coveredRels := map[string]bool{}
	for _, c := range multi {
		for _, a := range c.expr.Atoms {
			coveredRels[a.Rel] = true
		}
	}
	out := multi
	for _, c := range single {
		if coveredRels[c.expr.Atoms[0].Rel] {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].gain != out[j].gain {
			return out[i].gain > out[j].gain
		}
		return out[i].expr.Key() < out[j].expr.Key()
	})
	return out
}

func exprAllScored(e *cq.Expr, cm *costmodel.Model) bool {
	for _, a := range e.Atoms {
		st, err := cm.Cat.Relation(a.Rel)
		if err != nil || !st.HasScore {
			return false
		}
	}
	return true
}

func allIdx(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// --- BestPlan (Algorithm 1) --------------------------------------------------

type searchResult struct {
	inputs []*costmodel.Input
	cost   float64
}

type searcher struct {
	qs    []*cq.CQ
	cm    *costmodel.Model
	cfg   Config
	cqIDs []string // lexicographic; bit position = index here
	cqOrd map[string]int
	// words is the bitset width in 64-bit words.
	words int
	// origByIdx recovers each candidate's full occurrence map from its
	// ordinal (restricted copies carry only bits).
	origByIdx []*candidate
	// overlap[i][j] caches expr i SharesRelation expr j.
	overlap [][]bool
	memo    map[string]searchResult
	nodes   int
	budget  int

	// keyBuf and candScratch are reusable state-key scratch: keys are built
	// in place and looked up via the compiler's map[string(buf)] optimization,
	// so a memo hit allocates nothing.
	keyBuf      []byte
	candScratch []*candidate

	// restScratch[d] is the depth-d restriction buffer, and candPool a
	// mark/release pool of restricted candidate copies: both are dead the
	// moment the recursion they fed returns (nothing a memo entry retains
	// points at them), so the search reuses them instead of allocating at
	// every (state, candidate) step.
	restScratch [][]*candidate
	candPool    []*candidate
	candPoolPos int

	// qOrd maps each position in qs to its lexicographic ordinal; covered is
	// the completion scratch (covered[ord][atom]), reset per complete call;
	// singles caches each query's single-atom completion inputs — complete
	// runs at every search leaf and re-derives the same coverage rows.
	qOrd    []int
	covered [][]bool
	singles [][]singleUse

	// inputsScratch and costScratch are completion-time working maps:
	// complete builds its input set and prices it at every search leaf, and
	// neither structure outlives the call (only the final list and the Input
	// values escape into the memo), so both are reused across leaves.
	inputsScratch map[string]*costmodel.Input
	costScratch   *costmodel.Scratch
}

// singleUse is one cached single-atom completion input of a query.
type singleUse struct {
	expr *cq.Expr
	occ  *cq.ExprOccurrence
}

// bestPlan implements Algorithm 1: it either completes the partial input
// assignment `chosen` into a full plan (when no candidates remain or the
// budget is spent), or tries each remaining candidate as the next input,
// restricting the others per line 14 and recursing.
func (s *searcher) bestPlan(remaining []*candidate, chosen []*candidate) searchResult {
	s.nodes++
	key := s.stateKey(chosen)
	if r, ok := s.memo[string(key)]; ok {
		return r
	}
	if len(remaining) == 0 || s.nodes > s.budget {
		r := s.complete(chosen)
		s.memo[string(key)] = r
		return r
	}
	stored := string(key) // materialise once; key's buffer is reused below
	depth := len(chosen)
	for depth >= len(s.restScratch) {
		s.restScratch = append(s.restScratch, nil)
	}
	best := searchResult{cost: -1}
	for i, j := range remaining {
		// Line 12-17: restrict the other candidates against J.
		rest := s.restScratch[depth][:0]
		mark := s.candPoolPos
		for k2, j2 := range remaining {
			if k2 == i {
				continue
			}
			if !s.overlap[j.idx][j2.idx] {
				rest = append(rest, j2)
				continue
			}
			if rc := s.restrict(j2, j); rc != nil {
				rest = append(rest, rc)
			}
		}
		r := s.bestPlan(rest, append(chosen, j))
		s.restScratch[depth] = rest
		s.candPoolPos = mark
		if r.inputs != nil && (best.cost < 0 || r.cost < best.cost) {
			best = r
		}
	}
	if best.inputs == nil {
		best = s.complete(chosen)
	}
	s.memo[stored] = best
	return best
}

// restrict returns j2 restricted against chosen candidate j (Algorithm 1
// line 14): a pooled copy of j2 whose consumer set drops j's consumers, or
// nil when no consumer survives. The copy comes from the mark/release pool —
// the caller rewinds candPoolPos once the recursion it fed returns.
func (s *searcher) restrict(j2, j *candidate) *candidate {
	var c *candidate
	if s.candPoolPos < len(s.candPool) {
		c = s.candPool[s.candPoolPos]
	} else {
		c = &candidate{bits: make([]uint64, s.words)}
		s.candPool = append(s.candPool, c)
	}
	bits := c.bits[:s.words]
	var any uint64
	for i := range bits {
		v := j2.bits[i] &^ j.bits[i]
		bits[i] = v
		any |= v
	}
	if any == 0 {
		return nil // c stays pooled for the next restriction
	}
	s.candPoolPos++
	c.idx, c.expr, c.uses, c.gain, c.bits = j2.idx, j2.expr, nil, j2.gain, bits
	return c
}

// stateKey interns the chosen set (Algorithm 1's memo on A) compactly: per
// candidate in ordinal order, its ordinal plus the consumer bitset. The
// returned slice aliases the searcher's scratch buffer — valid until the
// next call — which lets memo lookups run without allocating.
func (s *searcher) stateKey(chosen []*candidate) []byte {
	// Insertion sort of the candidates themselves by ordinal: chosen sets are
	// small (≤ MaxCandidates) and this avoids both the int-slice sort and the
	// quadratic ordinal→candidate rescan.
	scratch := append(s.candScratch[:0], chosen...)
	for i := 1; i < len(scratch); i++ {
		for j := i; j > 0 && scratch[j].idx < scratch[j-1].idx; j-- {
			scratch[j], scratch[j-1] = scratch[j-1], scratch[j]
		}
	}
	s.candScratch = scratch[:0]

	entrySize := 2 + 8*s.words
	if cap(s.keyBuf) < entrySize*len(chosen) {
		s.keyBuf = make([]byte, entrySize*len(chosen))
	}
	buf := s.keyBuf[:0]
	for _, c := range scratch {
		buf = append(buf, byte(c.idx>>8), byte(c.idx))
		for _, w := range c.bits {
			buf = append(buf,
				byte(w>>56), byte(w>>48), byte(w>>40), byte(w>>32),
				byte(w>>24), byte(w>>16), byte(w>>8), byte(w))
		}
	}
	s.keyBuf = buf[:0]
	return buf
}

// eachUse calls fn for the candidate's surviving consumers in lexicographic
// CQ-id order, recovering occurrence pointers from the original candidate.
func (s *searcher) eachUse(c *candidate, fn func(ord int, occ *cq.ExprOccurrence)) {
	orig := s.origByIdx[c.idx]
	for w, word := range c.bits {
		for word != 0 {
			ord := w*64 + bits.TrailingZeros64(word)
			fn(ord, orig.uses[s.cqIDs[ord]])
			word &= word - 1
		}
	}
}

// singleUseOf resolves (caching) query qi's single-atom input for atom ai.
// The occurrence is immutable, so sharing one pointer across every
// completion that needs it is safe.
func (s *searcher) singleUseOf(qi, ai int) singleUse {
	su := s.singles[qi][ai]
	if su.expr == nil {
		q := s.qs[qi]
		e, mapping := q.SubExpr([]int{ai})
		su = singleUse{expr: e, occ: &cq.ExprOccurrence{CQ: q, AtomOf: mapping}}
		s.singles[qi][ai] = su
	}
	return su
}

// complete turns a set of chosen candidates into a valid input assignment:
// every (query, relation) pair not yet covered is covered by that query's own
// single-atom expression (shared across queries via canonical keys), modes
// are assigned per §5.1.1, and every query is guaranteed a streaming input.
func (s *searcher) complete(chosen []*candidate) searchResult {
	inputs := s.inputsScratch // the map is per-leaf scratch; its values escape
	clear(inputs)
	covered := s.covered // covered[ord][atom]; complete runs at every leaf
	for _, row := range covered {
		for i := range row {
			row[i] = false
		}
	}
	addUse := func(e *cq.Expr, ord int, occ *cq.ExprOccurrence) bool {
		cov := covered[ord]
		for _, ai := range occ.AtomOf {
			if cov[ai] {
				return false // would double-cover an atom; skip this use
			}
		}
		in, ok := inputs[e.Key()]
		if !ok {
			in = &costmodel.Input{Expr: e, DB: e.SingleDB(), Uses: map[string]*cq.ExprOccurrence{}}
			inputs[e.Key()] = in
		}
		in.Uses[s.cqIDs[ord]] = occ
		for _, ai := range occ.AtomOf {
			cov[ai] = true
		}
		return true
	}
	for _, c := range chosen {
		s.eachUse(c, func(ord int, occ *cq.ExprOccurrence) {
			addUse(c.expr, ord, occ)
		})
	}
	// Completion with single-atom inputs.
	for qi, q := range s.qs {
		ord := s.qOrd[qi]
		for ai := range q.Atoms {
			if covered[ord][ai] {
				continue
			}
			su := s.singleUseOf(qi, ai)
			addUse(su.expr, ord, su.occ)
		}
	}
	// Assign modes, then guarantee each query at least one streaming input.
	list := make([]*costmodel.Input, 0, len(inputs))
	for _, in := range inputs {
		in.Mode = s.cm.ChooseMode(in.Expr)
		//qsys:allow maporder: the hand-rolled insertion sort below canonicalizes list by Expr.Key before any order-sensitive use
		list = append(list, in)
	}
	// Insertion sort by canonical key: lists are small (one entry per
	// distinct input expression) and this runs at every leaf, so the
	// reflection-based sort.Slice is measurable overhead here.
	for i := 1; i < len(list); i++ {
		for j := i; j > 0 && list[j].Expr.Key() < list[j-1].Expr.Key(); j-- {
			list[j], list[j-1] = list[j-1], list[j]
		}
	}
	for _, q := range s.qs {
		hasStream := false
		var smallest *costmodel.Input
		var smallestCard float64
		for _, in := range list {
			if _, uses := in.Uses[q.ID]; !uses {
				continue
			}
			if in.Mode == costmodel.Stream {
				hasStream = true
				break
			}
			card := s.cm.Cat.EstimateCard(in.Expr)
			if smallest == nil || card < smallestCard {
				smallest, smallestCard = in, card
			}
		}
		if !hasStream && smallest != nil {
			smallest.Mode = costmodel.Stream
		}
	}
	cost := s.cm.AssignmentCostScratch(s.qs, list, s.cfg.K, s.costScratch)
	return searchResult{inputs: list, cost: cost}
}

// Validate checks Definition 1: every relation occurrence (atom) of every
// query is covered by exactly one input that uses the query.
func Validate(qs []*cq.CQ, inputs []*costmodel.Input) error {
	for _, q := range qs {
		count := make([]int, len(q.Atoms))
		streams := 0
		for _, in := range inputs {
			occ, ok := in.Uses[q.ID]
			if !ok {
				continue
			}
			if in.Mode == costmodel.Stream {
				streams++
			}
			for i, ai := range occ.AtomOf {
				if ai < 0 || ai >= len(q.Atoms) {
					return fmt.Errorf("mqo: input %s maps atom out of range for %s", in.Expr.Key(), q.ID)
				}
				if in.Expr.Atoms[i].Rel != q.Atoms[ai].Rel {
					return fmt.Errorf("mqo: input %s atom %d relation mismatch for %s", in.Expr.Key(), i, q.ID)
				}
				count[ai]++
			}
		}
		for ai, c := range count {
			if c != 1 {
				return fmt.Errorf("mqo: query %s atom %d (%s) covered %d times", q.ID, ai, q.Atoms[ai].Rel, c)
			}
		}
		if streams == 0 {
			return fmt.Errorf("mqo: query %s has no streaming input", q.ID)
		}
	}
	return nil
}
