package atc_test

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/atc"
	"repro/internal/batcher"
	"repro/internal/catalog"
	"repro/internal/costmodel"
	"repro/internal/cq"
	"repro/internal/dist"
	"repro/internal/metrics"
	"repro/internal/mqo"
	"repro/internal/operator"
	"repro/internal/plangraph"
	"repro/internal/qsm"
	"repro/internal/relationdb"
	"repro/internal/remotedb"
	"repro/internal/scoring"
	"repro/internal/simclock"
	"repro/internal/tuple"
)

// multiHarness builds nStars independent star databases (A<i> ⋈ B<i> ⋈ C<i>)
// in one store: queries on different stars share no relation, so their plan
// segments are guaranteed-disjoint components; queries on one star share its
// pushdown streams.
type multiHarness struct {
	env   *operator.Env
	graph *plangraph.Graph
	ctrl  *atc.ATC
	mgr   *qsm.Manager
}

func newMultiHarness(t *testing.T, seed uint64, nStars, workers int) *multiHarness {
	t.Helper()
	rng := dist.New(seed)
	store := relationdb.NewStore("db")
	cat := catalog.New()
	for s := 0; s < nStars; s++ {
		sa := tuple.NewSchema(fmt.Sprintf("A%d", s),
			tuple.Column{Name: "id", Type: tuple.KindInt, Key: true},
			tuple.Column{Name: "term", Type: tuple.KindString},
			tuple.Column{Name: "score", Type: tuple.KindFloat, Score: true},
		)
		var rows []*tuple.Tuple
		nA := 24 + s*4
		for i := 0; i < nA; i++ {
			term := "x"
			if rng.Intn(2) == 1 {
				term = "y"
			}
			rows = append(rows, tuple.New(sa, tuple.Int(int64(i)), tuple.String(term), tuple.Float(0.1+0.9*rng.Float64())))
		}
		relA := relationdb.NewRelation(sa, rows)
		store.Put(relA)
		cat.AddRelation("db", relA)

		sb := tuple.NewSchema(fmt.Sprintf("B%d", s),
			tuple.Column{Name: "aid", Type: tuple.KindInt},
			tuple.Column{Name: "cid", Type: tuple.KindInt},
			tuple.Column{Name: "sim", Type: tuple.KindFloat, Score: true},
		)
		rows = nil
		nC := 20 + s*3
		for i := 0; i < 60+s*8; i++ {
			rows = append(rows, tuple.New(sb,
				tuple.Int(int64(rng.Intn(nA))), tuple.Int(int64(rng.Intn(nC))), tuple.Float(0.1+0.9*rng.Float64())))
		}
		relB := relationdb.NewRelation(sb, rows)
		store.Put(relB)
		cat.AddRelation("db", relB)

		sc := tuple.NewSchema(fmt.Sprintf("C%d", s),
			tuple.Column{Name: "id", Type: tuple.KindInt, Key: true},
			tuple.Column{Name: "score", Type: tuple.KindFloat, Score: true},
		)
		rows = nil
		for i := 0; i < nC; i++ {
			rows = append(rows, tuple.New(sc, tuple.Int(int64(i)), tuple.Float(0.1+0.9*rng.Float64())))
		}
		relC := relationdb.NewRelation(sc, rows)
		store.Put(relC)
		cat.AddRelation("db", relC)
	}

	env := &operator.Env{
		Clock:   simclock.NewVirtual(0),
		Delays:  simclock.DefaultDelays(dist.New(seed + 9)),
		Metrics: &metrics.Counters{},
	}
	graph := plangraph.New("")
	ctrl := atc.New(graph, env, remotedb.NewFleet(remotedb.New(store)))
	mgr := qsm.New(graph, ctrl, cat, costmodel.New(cat, costmodel.DefaultParams()), qsm.ShareAll)
	mgr.Unit = qsm.UnitUQ
	if workers > 1 {
		ctrl.EnableParallel(workers, seed)
		t.Cleanup(ctrl.Close)
	}
	return &multiHarness{env: env, graph: graph, ctrl: ctrl, mgr: mgr}
}

// starNCQ is one conjunctive query over star s. Identical structure on one
// star yields identical expression keys, so such queries share plan nodes.
func starNCQ(s int, id string, model *scoring.Model) *cq.CQ {
	return &cq.CQ{
		ID:   id,
		UQID: "U-" + id,
		Atoms: []*cq.Atom{
			{Rel: fmt.Sprintf("A%d", s), DB: "db", Args: []cq.Term{cq.V(0), cq.C(tuple.String("x")), cq.V(11)}},
			{Rel: fmt.Sprintf("B%d", s), DB: "db", Args: []cq.Term{cq.V(0), cq.V(1), cq.V(12)}},
			{Rel: fmt.Sprintf("C%d", s), DB: "db", Args: []cq.Term{cq.V(1), cq.V(13)}},
		},
		Model: model,
	}
}

// uqOn builds one user query with one CQ per listed star.
func uqOn(id string, k int, stars ...int) *cq.UQ {
	model := scoring.QSystem(0.5, []float64{1, 1, 0.9})
	uq := &cq.UQ{ID: id, K: k}
	for i, s := range stars {
		uq.CQs = append(uq.CQs, starNCQ(s, fmt.Sprintf("%s-cq%d", id, i), model))
	}
	return uq
}

func (h *multiHarness) admit(t *testing.T, uqs ...*cq.UQ) {
	t.Helper()
	var subs []batcher.Submission
	maxK := 1
	for _, uq := range uqs {
		subs = append(subs, batcher.Submission{At: h.env.Clock.Now(), UQ: uq})
		if uq.K > maxK {
			maxK = uq.K
		}
	}
	if _, err := h.mgr.Admit(subs, mqo.Config{K: maxK}); err != nil {
		t.Fatalf("admit: %v", err)
	}
}

// refPartition recomputes the component partition from scratch: a union-find
// over the unfinished merges' captured footprints, independent of the
// controller's cached index.
func refPartition(ctrl *atc.ATC) [][]string {
	var ids []string
	for _, m := range ctrl.Merges() {
		if !m.Done {
			ids = append(ids, m.RM.UQ.ID)
		}
	}
	parent := make([]int, len(ids))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	owner := map[string]int{}
	for i, id := range ids {
		for _, k := range ctrl.MergeNodeKeys(id) {
			if o, ok := owner[k]; ok {
				ra, rb := find(i), find(o)
				if ra != rb {
					if ra < rb {
						parent[rb] = ra
					} else {
						parent[ra] = rb
					}
				}
			} else {
				owner[k] = i
			}
		}
	}
	slot := map[int]int{}
	var out [][]string
	for i, id := range ids {
		r := find(i)
		s, ok := slot[r]
		if !ok {
			s = len(out)
			slot[r] = s
			out = append(out, nil)
		}
		out[s] = append(out[s], id)
	}
	return out
}

func partitionString(p [][]string) string {
	var parts []string
	for _, comp := range p {
		parts = append(parts, strings.Join(comp, "+"))
	}
	return strings.Join(parts, " | ")
}

func checkPartition(t *testing.T, ctrl *atc.ATC, when string) {
	t.Helper()
	got := partitionString(ctrl.ComponentIDs())
	want := partitionString(refPartition(ctrl))
	if got != want {
		t.Fatalf("%s: component index %q != from-scratch union-find %q", when, got, want)
	}
}

// TestComponentIndexMatchesScratch churns the controller through
// submissions, partial execution, cancellation and Forget, checking after
// every event that the incrementally maintained component partition equals a
// from-scratch union-find over the live merges' plan-graph footprints — and
// that the partition has the shapes the star layout dictates.
func TestComponentIndexMatchesScratch(t *testing.T) {
	h := newMultiHarness(t, 42, 4, 1)

	h.admit(t, uqOn("U1", 4, 0))
	checkPartition(t, h.ctrl, "after U1")
	h.admit(t, uqOn("U2", 4, 1))
	checkPartition(t, h.ctrl, "after U2")
	h.admit(t, uqOn("U3", 4, 0)) // shares star 0 with U1
	checkPartition(t, h.ctrl, "after U3")
	h.admit(t, uqOn("U4", 4, 1, 2)) // bridges star 1 (U2) and star 2
	checkPartition(t, h.ctrl, "after U4")
	h.admit(t, uqOn("U5", 4, 3))
	checkPartition(t, h.ctrl, "after U5")

	want := "U1+U3 | U2+U4 | U5"
	if got := partitionString(h.ctrl.ComponentIDs()); got != want {
		t.Fatalf("partition %q, want %q", got, want)
	}

	// Disjoint stars must have disjoint footprints.
	seen := map[string]string{}
	for _, id := range []string{"U1", "U2", "U5"} {
		keys := h.ctrl.MergeNodeKeys(id)
		if len(keys) == 0 {
			t.Fatalf("%s has empty footprint", id)
		}
		for _, k := range keys {
			if other, dup := seen[k]; dup {
				t.Fatalf("node %s in footprints of both %s and %s", k, other, id)
			}
			seen[k] = id
		}
	}

	// Cancel the bridge: star 1 and star 2 fall apart once U4 leaves.
	h.ctrl.CancelMerge("U4")
	h.ctrl.Forget("U4")
	checkPartition(t, h.ctrl, "after cancel U4")
	if got := partitionString(h.ctrl.ComponentIDs()); got != "U1+U3 | U2 | U5" {
		t.Fatalf("partition after cancel %q", got)
	}

	// Drive to completion one round at a time; the partition must track the
	// shrinking active set at every step.
	for i := 0; h.ctrl.RunRound(); i++ {
		checkPartition(t, h.ctrl, fmt.Sprintf("round %d", i))
	}
	for _, m := range h.ctrl.Merges() {
		if m.RM.UQ.ID != "U4" && (!m.Done || m.Err != nil) {
			t.Fatalf("%s done=%v err=%v", m.RM.UQ.ID, m.Done, m.Err)
		}
	}
	if got := len(h.ctrl.ComponentIDs()); got != 0 {
		t.Fatalf("%d components after completion", got)
	}

	// New work after the churn still indexes correctly.
	h.admit(t, uqOn("U6", 4, 2))
	checkPartition(t, h.ctrl, "after U6")
}

// contentCounters projects a snapshot onto its order-independent content
// counters — what must be identical between the serial engine and the
// parallel executor. (Virtual-time buckets differ by design: the serial
// engine draws delays from one engine-wide RNG sequence, the parallel
// executor from per-node models.)
func contentCounters(s metrics.Snapshot) [8]int64 {
	return [8]int64{s.StreamTuples, s.ProbeCalls, s.ProbeCacheHits, s.ProbeTuples,
		s.JoinInserts, s.JoinProbes, s.ResultsEmitted, s.ReplayTuples}
}

// runAll drives everything to completion and returns each merge's rendered
// results keyed by UQ id.
func runAll(t *testing.T, h *multiHarness) map[string]string {
	t.Helper()
	for h.ctrl.RunRound() {
	}
	out := map[string]string{}
	for _, m := range h.ctrl.Merges() {
		if !m.Done {
			t.Fatalf("%s not done", m.RM.UQ.ID)
		}
		if m.Err != nil {
			t.Fatalf("%s failed: %v", m.RM.UQ.ID, m.Err)
		}
		var b strings.Builder
		for i, r := range m.RM.Results() {
			fmt.Fprintf(&b, "%d|%.12g|%s|%s\n", i+1, r.Score, r.CQID, r.Row.Identity())
		}
		out[m.RM.UQ.ID] = b.String()
	}
	return out
}

// TestParallelRoundsMatchSerial is the engine-level determinism gate: the
// same workload — mixed disjoint and shared topics, two admission waves —
// must produce identical per-query results and identical content counters at
// workers 1, 2 and 4. The two parallel runs must additionally agree on the
// virtual-time buckets (their per-node delay discipline is identical).
func TestParallelRoundsMatchSerial(t *testing.T) {
	wave1 := func() []*cq.UQ {
		return []*cq.UQ{
			uqOn("U1", 6, 0), uqOn("U2", 6, 1), uqOn("U3", 5, 2),
			uqOn("U4", 5, 0), uqOn("U5", 4, 3), uqOn("U6", 4, 1, 2),
		}
	}
	wave2 := func() []*cq.UQ {
		return []*cq.UQ{uqOn("U7", 5, 2), uqOn("U8", 6, 3), uqOn("U9", 4, 0)}
	}
	type outcome struct {
		results map[string]string
		content [8]int64
		snap    metrics.Snapshot
	}
	runAt := func(workers int) outcome {
		h := newMultiHarness(t, 42, 4, workers)
		h.admit(t, wave1()...)
		// Partial progress, then a second wave grafts mid-execution.
		for i := 0; i < 40; i++ {
			h.ctrl.RunRound()
		}
		h.admit(t, wave2()...)
		res := runAll(t, h)
		snap := h.env.Metrics.Snapshot()
		return outcome{results: res, content: contentCounters(snap), snap: snap}
	}

	serial := runAt(1)
	par2 := runAt(2)
	par4 := runAt(4)

	for id, want := range serial.results {
		if par2.results[id] != want {
			t.Fatalf("workers=2: %s results differ from serial:\n%s\nvs\n%s", id, par2.results[id], want)
		}
		if par4.results[id] != want {
			t.Fatalf("workers=4: %s results differ from serial:\n%s\nvs\n%s", id, par4.results[id], want)
		}
	}
	if par2.content != serial.content || par4.content != serial.content {
		t.Fatalf("content counters differ: serial=%v w2=%v w4=%v", serial.content, par2.content, par4.content)
	}
	if par2.snap != par4.snap {
		t.Fatalf("parallel runs disagree on full snapshots:\n%+v\nvs\n%+v", par2.snap, par4.snap)
	}
	ps := 0
	for range serial.results {
		ps++
	}
	if ps != 9 {
		t.Fatalf("expected 9 merges, got %d", ps)
	}
}

// TestNonConvergenceFailsMergeNotProcess pins the failure path: a scheduling
// round that exceeds its step bound must fail that merge with an error —
// not panic — leave the controller serviceable, and not poison later
// queries.
func TestNonConvergenceFailsMergeNotProcess(t *testing.T) {
	for _, workers := range []int{1, 4} {
		h := newMultiHarness(t, 7, 2, workers)
		h.ctrl.SetDriveBound(1) // nothing real converges in one step
		h.admit(t, uqOn("U1", 5, 0), uqOn("U2", 5, 1))
		for h.ctrl.RunRound() {
		}
		for _, id := range []string{"U1", "U2"} {
			m := h.ctrl.MergeByUQ(id)
			if m == nil || !m.Done {
				t.Fatalf("workers=%d: %s not done", workers, id)
			}
			if m.Err == nil || !strings.Contains(m.Err.Error(), "did not converge") {
				t.Fatalf("workers=%d: %s err = %v, want non-convergence", workers, id, m.Err)
			}
			h.ctrl.Forget(id)
		}
		if !h.ctrl.AllDone() {
			t.Fatalf("workers=%d: controller stuck", workers)
		}

		// Restore the bound; fresh queries must run to a clean result.
		h.ctrl.SetDriveBound(0)
		h.admit(t, uqOn("U3", 5, 0))
		for h.ctrl.RunRound() {
		}
		m := h.ctrl.MergeByUQ("U3")
		if m == nil || !m.Done || m.Err != nil {
			t.Fatalf("workers=%d: recovery query failed: %+v", workers, m)
		}
		if len(m.RM.Results()) == 0 {
			t.Fatalf("workers=%d: recovery query produced no results", workers)
		}
		if s := m.RM.Results()[0].Score; math.IsNaN(s) || s <= 0 {
			t.Fatalf("workers=%d: bad top score %v", workers, s)
		}
	}
}
